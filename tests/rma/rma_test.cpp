#include "itoyori/rma/window.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace ir = ityr::rma;
namespace is = ityr::sim;
namespace ic = ityr::common;

namespace {

ic::options det_opts(int nodes, int rpn) {
  ic::options o;
  o.n_nodes = nodes;
  o.ranks_per_node = rpn;
  o.deterministic = true;
  return o;
}

}  // namespace

TEST(Rma, GetMovesRemoteData) {
  is::engine e(det_opts(2, 1));
  ir::context rma(e);
  std::vector<std::byte> mem0(256), mem1(256);
  ir::window* w = rma.create_window({{mem0.data(), 256}, {mem1.data(), 256}});

  e.run([&](int r) {
    if (r == 0) {
      std::memset(mem0.data(), 0x5a, 256);
      e.advance(1e-6);
    } else {
      // Wait long enough that rank 0's write is in the causal past.
      e.advance(1e-3);
      std::byte buf[64];
      rma.get_nb(*w, 0, 16, buf, 64);
      rma.flush();
      EXPECT_EQ(buf[0], std::byte{0x5a});
      EXPECT_EQ(buf[63], std::byte{0x5a});
    }
  });
}

TEST(Rma, PutMovesDataToTarget) {
  is::engine e(det_opts(2, 1));
  ir::context rma(e);
  std::vector<std::byte> mem0(128), mem1(128);
  ir::window* w = rma.create_window({{mem0.data(), 128}, {mem1.data(), 128}});

  e.run([&](int r) {
    if (r == 1) {
      std::byte buf[32];
      std::memset(buf, 0x7e, 32);
      rma.put_nb(*w, 0, 96, buf, 32);
      rma.flush();
    }
  });
  EXPECT_EQ(mem0[96], std::byte{0x7e});
  EXPECT_EQ(mem0[127], std::byte{0x7e});
  EXPECT_EQ(mem0[95], std::byte{0});
}

TEST(Rma, FlushAdvancesTimeByLatencyAndBandwidth) {
  auto o = det_opts(2, 1);
  o.net.inter_latency = 1e-6;
  o.net.inter_bandwidth = 1e9;  // 1 GB/s -> 1 MB takes 1 ms
  o.net.injection_overhead = 0;
  is::engine e(o);
  ir::context rma(e);
  std::vector<std::byte> mem0(1 << 20), mem1(1);
  ir::window* w = rma.create_window({{mem0.data(), mem0.size()}, {mem1.data(), 1}});

  double elapsed = 0;
  e.run([&](int r) {
    if (r == 1) {
      std::vector<std::byte> buf(1 << 20);
      const double t0 = e.now();
      rma.get_nb(*w, 0, 0, buf.data(), buf.size());
      rma.flush();
      elapsed = e.now() - t0;
    }
  });
  // ~1 ms of bandwidth + 1 us latency.
  EXPECT_NEAR(elapsed, 1.049e-3, 0.1e-3);
}

TEST(Rma, NonblockingGetsPipeline) {
  // Two messages back to back share the channel: total time should be about
  // 2*(bytes/bw) + 1 latency, not 2*(bytes/bw + latency).
  auto o = det_opts(2, 1);
  o.net.inter_latency = 1e-3;  // exaggerate latency
  o.net.inter_bandwidth = 1e9;
  o.net.injection_overhead = 0;
  is::engine e(o);
  ir::context rma(e);
  std::vector<std::byte> mem0(1 << 20), mem1(1);
  ir::window* w = rma.create_window({{mem0.data(), mem0.size()}, {mem1.data(), 1}});

  double elapsed = 0;
  e.run([&](int r) {
    if (r == 1) {
      std::vector<std::byte> buf(1 << 20);
      const double t0 = e.now();
      rma.get_nb(*w, 0, 0, buf.data(), 512 * 1024);
      rma.get_nb(*w, 0, 512 * 1024, buf.data() + 512 * 1024, 512 * 1024);
      rma.flush();
      elapsed = e.now() - t0;
    }
  });
  EXPECT_NEAR(elapsed, 1e-3 /*bw*/ + 1e-3 /*one latency*/, 0.2e-3);
}

TEST(Rma, IntraNodeCheaperThanInterNode) {
  auto o = det_opts(2, 2);  // ranks 0,1 on node 0; rank 2,3 on node 1
  is::engine e(o);
  ir::context rma(e);
  std::vector<std::vector<std::byte>> mem(4, std::vector<std::byte>(1 << 16));
  ir::window* w = rma.create_window(
      {{mem[0].data(), mem[0].size()},
       {mem[1].data(), mem[1].size()},
       {mem[2].data(), mem[2].size()},
       {mem[3].data(), mem[3].size()}});

  double intra = 0, inter = 0;
  e.run([&](int r) {
    if (r == 0) {
      std::vector<std::byte> buf(1 << 16);
      double t0 = e.now();
      rma.get_nb(*w, 1, 0, buf.data(), buf.size());  // same node
      rma.flush();
      intra = e.now() - t0;
      t0 = e.now();
      rma.get_nb(*w, 2, 0, buf.data(), buf.size());  // other node
      rma.flush();
      inter = e.now() - t0;
    }
  });
  EXPECT_LT(intra, inter);
}

TEST(Rma, CompareAndSwapSemantics) {
  is::engine e(det_opts(2, 1));
  ir::context rma(e);
  alignas(8) std::uint64_t word0 = 10, word1 = 0;
  ir::window* w = rma.create_window({{reinterpret_cast<std::byte*>(&word0), 8},
                                     {reinterpret_cast<std::byte*>(&word1), 8}});
  e.run([&](int r) {
    if (r == 1) {
      EXPECT_EQ(rma.compare_and_swap(*w, 0, 0, 99, 50), 10u);  // mismatch: no-op
      EXPECT_EQ(word0, 10u);
      EXPECT_EQ(rma.compare_and_swap(*w, 0, 0, 10, 50), 10u);  // match: swap
      EXPECT_EQ(word0, 50u);
    }
  });
}

TEST(Rma, FetchAndAdd) {
  is::engine e(det_opts(1, 3));
  ir::context rma(e);
  alignas(8) std::uint64_t counter = 0;
  std::vector<ir::window::region> regs(3);
  regs[0] = {reinterpret_cast<std::byte*>(&counter), 8};
  ir::window* w = rma.create_window(regs);
  e.run([&](int) {
    for (int i = 0; i < 10; i++) rma.fetch_and_add(*w, 0, 0, 1);
  });
  EXPECT_EQ(counter, 30u);
}

TEST(Rma, AtomicMaxConvergesUnderContention) {
  is::engine e(det_opts(2, 2));
  ir::context rma(e);
  alignas(8) std::uint64_t m = 0;
  std::vector<ir::window::region> regs(4);
  regs[0] = {reinterpret_cast<std::byte*>(&m), 8};
  ir::window* w = rma.create_window(regs);
  e.run([&](int r) {
    // All ranks race to set their own value; the final value must be the max.
    rma.atomic_max(*w, 0, 0, static_cast<std::uint64_t>(r * 7 + 1));
  });
  EXPECT_EQ(m, 3u * 7 + 1);
}

TEST(Rma, AtomicMaxIsMonotone) {
  is::engine e(det_opts(1, 1));
  ir::context rma(e);
  alignas(8) std::uint64_t m = 5;
  ir::window* w = rma.create_window({{reinterpret_cast<std::byte*>(&m), 8}});
  e.run([&](int) {
    rma.atomic_max(*w, 0, 0, 3);  // smaller: no effect
    EXPECT_EQ(m, 5u);
    rma.atomic_max(*w, 0, 0, 9);
    EXPECT_EQ(m, 9u);
  });
}

TEST(Rma, CountersTrackTraffic) {
  is::engine e(det_opts(2, 1));
  ir::context rma(e);
  std::vector<std::byte> mem0(4096), mem1(4096);
  ir::window* w = rma.create_window({{mem0.data(), 4096}, {mem1.data(), 4096}});
  e.run([&](int r) {
    if (r == 1) {
      std::byte buf[256];
      rma.get_nb(*w, 0, 0, buf, 256);
      rma.put_nb(*w, 0, 256, buf, 128);
      rma.flush();
    }
  });
  EXPECT_EQ(rma.n_gets(), 1u);
  EXPECT_EQ(rma.n_puts(), 1u);
  EXPECT_EQ(rma.net().total_bytes(), 384u);
  EXPECT_EQ(rma.net().total_messages(), 2u);
}
