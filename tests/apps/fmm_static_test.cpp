// Unit tests of the static-baseline machinery (paper Table 2's subject):
// partitioning, idleness metric, and agreement with the work-stealing solve.

#include <gtest/gtest.h>

#include "../support/fixture.hpp"
#include "itoyori/apps/fmm/fmm.hpp"

namespace f = ityr::apps::fmm;

TEST(FmmStaticMetric, IdlenessZeroWhenPerfectlyBalanced) {
  f::static_run_result r;
  r.busy = {1.0, 1.0, 1.0, 1.0};
  r.makespan = 1.0;
  EXPECT_NEAR(r.idleness(), 0.0, 1e-12);
}

TEST(FmmStaticMetric, IdlenessGrowsWithImbalance) {
  f::static_run_result r;
  r.busy = {1.0, 0.5, 0.5, 0.5};
  r.makespan = 1.0;
  EXPECT_NEAR(r.idleness(), 1.0 - 2.5 / 4.0, 1e-12);

  f::static_run_result worse;
  worse.busy = {1.0, 0.1, 0.1, 0.1};
  worse.makespan = 1.0;
  EXPECT_GT(worse.idleness(), r.idleness());
}

TEST(FmmStaticMetric, SingleRankIdlenessIsZero) {
  f::static_run_result r;
  r.busy = {0.8};
  r.makespan = 0.8;
  EXPECT_NEAR(r.idleness(), 0.0, 1e-12);
}

TEST(FmmStatic, StaticAndStolenSolvesAgree) {
  // Both execution strategies must compute the same physics (same tree, same
  // kernels): compare the resulting potentials directly.
  auto o = ityr::test::tiny_opts(2, 2);
  o.coll_heap_per_rank = 16 * ityr::common::MiB;
  o.cache_size = 512 * ityr::common::KiB;
  ityr::runtime rt(o);
  rt.spmd([&] {
    const std::size_t n = 1500;
    auto bodies = ityr::coll_new<f::body>(n);
    ityr::root_exec([=] { f::fmm_generate_bodies(bodies, n, 11, 256); });
    f::fmm_config cfg;
    cfg.theta = 0.5;
    cfg.ncrit = 16;
    cfg.nspawn = 64;
    f::fmm_tree t = f::fmm_build_tree(bodies, n, cfg);

    // Work-stealing solve; snapshot a few potentials.
    std::vector<double> stolen(8);
    ityr::root_exec([=] { f::fmm_solve(t); });
    ityr::barrier();
    if (ityr::my_rank() == 0) {
      for (int i = 0; i < 8; i++) {
        stolen[static_cast<std::size_t>(i)] = ityr::get(t.acc + i * 100).p;
      }
    }
    ityr::barrier();

    // Static solve on the same tree.
    auto res = f::fmm_solve_static(t);
    ityr::barrier();
    if (ityr::my_rank() == 0) {
      for (int i = 0; i < 8; i++) {
        const double s = ityr::get(t.acc + i * 100).p;
        // Same kernels but a different (flat) interaction decomposition:
        // agreement within the method's approximation error.
        EXPECT_NEAR(s, stolen[static_cast<std::size_t>(i)],
                    2e-3 * std::abs(stolen[static_cast<std::size_t>(i)]) + 1e-9)
            << "body " << i * 100;
      }
      EXPECT_GE(res.idleness(), 0.0);
    }
    ityr::barrier();
    f::fmm_destroy_tree(t);
    ityr::coll_delete(bodies, n);
  });
}
