#include "itoyori/apps/cilksort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "../support/fixture.hpp"

namespace ia = ityr::apps;

namespace {

ityr::options app_opts(int nodes = 2, int rpn = 2) {
  auto o = ityr::test::tiny_opts(nodes, rpn);
  o.coll_heap_per_rank = 4 * ityr::common::MiB;
  o.cache_size = 128 * ityr::common::KiB;
  return o;
}

}  // namespace

TEST(CilksortSerial, QuicksortSortsRandom) {
  std::mt19937_64 gen(1);
  std::vector<int> v(4097);
  for (auto& x : v) x = static_cast<int>(gen() % 100000);
  auto ref = v;
  ia::detail::quicksort_serial(v.data(), v.size());
  std::sort(ref.begin(), ref.end());
  EXPECT_EQ(v, ref);
}

TEST(CilksortSerial, QuicksortEdgeCases) {
  // Empty, single, all-equal, already sorted, reverse sorted.
  std::vector<int> empty;
  ia::detail::quicksort_serial(empty.data(), 0);

  std::vector<int> one{5};
  ia::detail::quicksort_serial(one.data(), 1);
  EXPECT_EQ(one[0], 5);

  std::vector<int> eq(1000, 7);
  ia::detail::quicksort_serial(eq.data(), eq.size());
  EXPECT_TRUE(std::all_of(eq.begin(), eq.end(), [](int x) { return x == 7; }));

  std::vector<int> rev(1000);
  for (int i = 0; i < 1000; i++) rev[static_cast<std::size_t>(i)] = 1000 - i;
  ia::detail::quicksort_serial(rev.data(), rev.size());
  EXPECT_TRUE(std::is_sorted(rev.begin(), rev.end()));
}

TEST(CilksortSerial, MergeInterleaves) {
  std::vector<int> a{1, 3, 5, 7}, b{2, 4, 6, 8, 10}, d(9);
  ia::detail::merge_serial(a.data(), a.size(), b.data(), b.size(), d.data());
  EXPECT_EQ(d, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8, 10}));
}

TEST(CilksortSerial, MergeEmptySides) {
  std::vector<int> a{1, 2}, d(2);
  ia::detail::merge_serial<int>(a.data(), a.size(), nullptr, 0, d.data());
  EXPECT_EQ(d, a);
  ia::detail::merge_serial<int>(nullptr, 0, a.data(), a.size(), d.data());
  EXPECT_EQ(d, a);
}

class CilksortParam : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(CilksortParam, SortsCorrectly) {
  const auto [n, cutoff] = GetParam();
  ityr::runtime rt(app_opts());
  rt.spmd([&, n = n, cutoff = cutoff] {
    auto a = ityr::coll_new<std::uint32_t>(n);
    auto b = ityr::coll_new<std::uint32_t>(n);
    bool ok = ityr::root_exec([=] {
      ia::cilksort_generate(a, n, 42, 1024);
      ia::cilksort(ityr::global_span<std::uint32_t>(a, n),
                   ityr::global_span<std::uint32_t>(b, n), cutoff);
      return ia::cilksort_validate(a, n, 42, 1024);
    });
    EXPECT_TRUE(ok) << "n=" << n << " cutoff=" << cutoff;
    ityr::coll_delete(a, n);
    ityr::coll_delete(b, n);
  });
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndCutoffs, CilksortParam,
    ::testing::Values(std::make_tuple(std::size_t{1000}, std::size_t{64}),
                      std::make_tuple(std::size_t{4096}, std::size_t{64}),
                      std::make_tuple(std::size_t{10000}, std::size_t{256}),
                      std::make_tuple(std::size_t{65536}, std::size_t{1024}),
                      std::make_tuple(std::size_t{100000}, std::size_t{4096}),
                      std::make_tuple(std::size_t{12345}, std::size_t{128})));

TEST(Cilksort, WorksUnderEveryCachePolicy) {
  for (auto policy : {ityr::cache_policy::none, ityr::cache_policy::write_through,
                      ityr::cache_policy::write_back, ityr::cache_policy::write_back_lazy}) {
    auto o = app_opts();
    o.policy = policy;
    ityr::runtime rt(o);
    rt.spmd([&] {
      const std::size_t n = 20000;
      auto a = ityr::coll_new<std::uint32_t>(n);
      auto b = ityr::coll_new<std::uint32_t>(n);
      bool ok = ityr::root_exec([=] {
        ia::cilksort_generate(a, n, 7, 512);
        ia::cilksort(ityr::global_span<std::uint32_t>(a, n),
                     ityr::global_span<std::uint32_t>(b, n), 512);
        return ia::cilksort_validate(a, n, 7, 512);
      });
      EXPECT_TRUE(ok) << "policy=" << ityr::common::to_string(policy);
      ityr::coll_delete(a, n);
      ityr::coll_delete(b, n);
    });
  }
}

TEST(Cilksort, LargerThanCacheWorkingSet) {
  // 1M uint32 = 4 MB per buffer; cache is 128 KiB per rank: heavy eviction.
  auto o = app_opts(2, 2);
  o.coll_heap_per_rank = 8 * ityr::common::MiB;
  ityr::runtime rt(o);
  rt.spmd([&] {
    const std::size_t n = 1 << 20;
    auto a = ityr::coll_new<std::uint32_t>(n);
    auto b = ityr::coll_new<std::uint32_t>(n);
    bool ok = ityr::root_exec([=] {
      ia::cilksort_generate(a, n, 3, 8192);
      ia::cilksort(ityr::global_span<std::uint32_t>(a, n), ityr::global_span<std::uint32_t>(b, n),
                   16384);
      return ia::cilksort_validate(a, n, 3, 8192);
    });
    EXPECT_TRUE(ok);
    ityr::coll_delete(a, n);
    ityr::coll_delete(b, n);
  });
  EXPECT_GT(rt.pgas().aggregate_stats().cache_evictions, 0u);
}
