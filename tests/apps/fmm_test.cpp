#include "itoyori/apps/fmm/fmm.hpp"

#include <gtest/gtest.h>

#include "../support/fixture.hpp"

namespace f = ityr::apps::fmm;

namespace {

ityr::options fmm_opts(int nodes = 2, int rpn = 2) {
  auto o = ityr::test::tiny_opts(nodes, rpn);
  o.coll_heap_per_rank = 16 * ityr::common::MiB;
  o.cache_size = 512 * ityr::common::KiB;
  return o;
}

f::fmm_config small_cfg() {
  f::fmm_config cfg;
  cfg.theta = 0.5;
  cfg.ncrit = 16;
  cfg.nspawn = 64;
  return cfg;
}

}  // namespace

TEST(FmmTree, BuildCoversAllBodies) {
  ityr::runtime rt(fmm_opts());
  rt.spmd([&] {
    const std::size_t n = 2000;
    auto bodies = ityr::coll_new<f::body>(n);
    ityr::root_exec([=] { f::fmm_generate_bodies(bodies, n, 1, 256); });
    auto cfg = small_cfg();
    f::fmm_tree t = f::fmm_build_tree(bodies, n, cfg);

    EXPECT_GT(t.n_cells, 1u);
    if (ityr::my_rank() == 0) {
      // Root covers everything; children partition each parent's bodies.
      auto root = ityr::get(t.cells);
      EXPECT_EQ(root.n_bodies, n);
      std::uint64_t leaf_bodies = 0;
      std::uint64_t max_leaf = 0;
      for (std::size_t c = 0; c < t.n_cells; c++) {
        auto m = ityr::get(t.cells + static_cast<std::ptrdiff_t>(c));
        if (m.is_leaf()) {
          leaf_bodies += m.n_bodies;
          max_leaf = std::max<std::uint64_t>(max_leaf, m.n_bodies);
        } else {
          // Children cover the parent exactly and contiguously.
          std::uint32_t covered = 0;
          for (std::int32_t k = m.child_begin; k < m.child_begin + m.n_children; k++) {
            covered += ityr::get(t.cells + k).n_bodies;
          }
          EXPECT_EQ(covered, m.n_bodies);
        }
      }
      EXPECT_EQ(leaf_bodies, n);
      EXPECT_LE(max_leaf, cfg.ncrit);
    }
    ityr::barrier();
    f::fmm_destroy_tree(t);
    ityr::coll_delete(bodies, n);
  });
}

TEST(FmmTree, BodiesSortedByMortonWithinTree) {
  ityr::runtime rt(fmm_opts(1, 2));
  rt.spmd([&] {
    const std::size_t n = 1000;
    auto bodies = ityr::coll_new<f::body>(n);
    ityr::root_exec([=] { f::fmm_generate_bodies(bodies, n, 2, 256); });
    auto cfg = small_cfg();
    f::fmm_tree t = f::fmm_build_tree(bodies, n, cfg);
    if (ityr::my_rank() == 0) {
      // Every leaf's bodies must lie inside the leaf's cube.
      for (std::size_t c = 0; c < t.n_cells; c++) {
        auto m = ityr::get(t.cells + static_cast<std::ptrdiff_t>(c));
        if (!m.is_leaf()) continue;
        for (std::uint32_t b = 0; b < m.n_bodies; b++) {
          auto body = ityr::get(t.bodies + static_cast<std::ptrdiff_t>(m.body_offset + b));
          EXPECT_LE(std::abs(body.X.x - m.X.x), m.R * 1.0001);
          EXPECT_LE(std::abs(body.X.y - m.X.y), m.R * 1.0001);
          EXPECT_LE(std::abs(body.X.z - m.X.z), m.R * 1.0001);
        }
      }
    }
    ityr::barrier();
    f::fmm_destroy_tree(t);
    ityr::coll_delete(bodies, n);
  });
}

TEST(FmmSolve, MatchesDirectSummation) {
  ityr::runtime rt(fmm_opts(2, 2));
  rt.spmd([&] {
    const std::size_t n = 3000;
    auto bodies = ityr::coll_new<f::body>(n);
    ityr::root_exec([=] { f::fmm_generate_bodies(bodies, n, 3, 256); });
    auto cfg = small_cfg();
    f::fmm_tree t = f::fmm_build_tree(bodies, n, cfg);
    auto err = ityr::root_exec([=] {
      f::fmm_solve(t);
      return f::fmm_check(t, 100);
    });
    EXPECT_LT(err.pot, 2e-3) << "potential error too large";
    EXPECT_LT(err.grad, 5e-2) << "gradient error too large";
    f::fmm_destroy_tree(t);
    ityr::coll_delete(bodies, n);
  });
}

TEST(FmmSolve, TighterThetaIsMoreAccurate) {
  ityr::runtime rt(fmm_opts(1, 2));
  rt.spmd([&] {
    const std::size_t n = 1500;
    auto bodies = ityr::coll_new<f::body>(n);
    ityr::root_exec([=] { f::fmm_generate_bodies(bodies, n, 4, 256); });

    double errs[2];
    int i = 0;
    for (double theta : {0.9, 0.35}) {
      auto cfg = small_cfg();
      cfg.theta = theta;
      f::fmm_tree t = f::fmm_build_tree(bodies, n, cfg);
      auto err = ityr::root_exec([=] {
        f::fmm_solve(t);
        return f::fmm_check(t, 64);
      });
      errs[i++] = err.pot;
      f::fmm_destroy_tree(t);
    }
    EXPECT_LT(errs[1], errs[0]);
    ityr::coll_delete(bodies, n);
  });
}

TEST(FmmSolve, RepeatedSolvesAreIdempotent) {
  // acc is zeroed at the start of fmm_solve, but M/L accumulate; spell out
  // that a fresh tree gives the same answer (catches missing resets).
  ityr::runtime rt(fmm_opts(1, 2));
  rt.spmd([&] {
    const std::size_t n = 800;
    auto bodies = ityr::coll_new<f::body>(n);
    ityr::root_exec([=] { f::fmm_generate_bodies(bodies, n, 5, 256); });
    auto cfg = small_cfg();

    double pot1 = 0, pot2 = 0;
    {
      f::fmm_tree t = f::fmm_build_tree(bodies, n, cfg);
      pot1 = ityr::root_exec([=] {
        f::fmm_solve(t);
        return ityr::get(t.acc).p;
      });
      f::fmm_destroy_tree(t);
    }
    {
      f::fmm_tree t = f::fmm_build_tree(bodies, n, cfg);
      pot2 = ityr::root_exec([=] {
        f::fmm_solve(t);
        return ityr::get(t.acc).p;
      });
      f::fmm_destroy_tree(t);
    }
    EXPECT_DOUBLE_EQ(pot1, pot2);
    ityr::coll_delete(bodies, n);
  });
}

TEST(FmmSolve, WorksUnderEveryCachePolicy) {
  for (auto policy : {ityr::cache_policy::none, ityr::cache_policy::write_through,
                      ityr::cache_policy::write_back, ityr::cache_policy::write_back_lazy}) {
    auto o = fmm_opts(2, 1);
    o.policy = policy;
    ityr::runtime rt(o);
    rt.spmd([&] {
      const std::size_t n = 1200;
      auto bodies = ityr::coll_new<f::body>(n);
      ityr::root_exec([=] { f::fmm_generate_bodies(bodies, n, 6, 256); });
      auto cfg = small_cfg();
      f::fmm_tree t = f::fmm_build_tree(bodies, n, cfg);
      auto err = ityr::root_exec([=] {
        f::fmm_solve(t);
        return f::fmm_check(t, 50);
      });
      EXPECT_LT(err.pot, 2e-3) << "policy=" << ityr::common::to_string(policy);
      f::fmm_destroy_tree(t);
      ityr::coll_delete(bodies, n);
    });
  }
}

TEST(FmmStatic, MatchesDirectSummation) {
  ityr::runtime rt(fmm_opts(2, 2));
  rt.spmd([&] {
    const std::size_t n = 2000;
    auto bodies = ityr::coll_new<f::body>(n);
    ityr::root_exec([=] { f::fmm_generate_bodies(bodies, n, 7, 256); });
    auto cfg = small_cfg();
    f::fmm_tree t = f::fmm_build_tree(bodies, n, cfg);

    auto res = f::fmm_solve_static(t);
    ityr::barrier();
    if (ityr::my_rank() == 0) {
      auto err = f::fmm_check(t, 64);
      EXPECT_LT(err.pot, 2e-3);
      EXPECT_GE(res.idleness(), 0.0);
      EXPECT_LT(res.idleness(), 1.0);
      EXPECT_EQ(res.busy.size(), static_cast<std::size_t>(ityr::n_ranks()));
    }
    ityr::barrier();
    f::fmm_destroy_tree(t);
    ityr::coll_delete(bodies, n);
  });
}
