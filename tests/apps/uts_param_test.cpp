// Parameterized UTS sweep: for a spread of tree shapes and seeds, the
// work-stolen parallel count, the in-memory build, and the global-memory
// traversal must all agree with the serial generator.

#include <gtest/gtest.h>

#include "../support/fixture.hpp"
#include "itoyori/apps/uts.hpp"

namespace ia = ityr::apps;

namespace {

struct uts_case {
  const char* name;
  ia::uts_params params;
};

ia::uts_params geo(double b0, int gen_mx, int seed) {
  ia::uts_params p;
  p.kind = ia::uts_params::tree_kind::geometric;
  p.b0 = b0;
  p.gen_mx = gen_mx;
  p.root_seed = seed;
  return p;
}

ia::uts_params bin(int m, double q, int seed) {
  ia::uts_params p;
  p.kind = ia::uts_params::tree_kind::binomial;
  p.m_child = m;
  p.q = q;
  p.root_seed = seed;
  return p;
}

const uts_case kCases[] = {
    {"geo_shallow_wide", geo(8.0, 4, 1)},
    {"geo_deep_narrow", geo(2.0, 14, 2)},
    {"geo_mid", geo(4.0, 9, 3)},
    {"geo_other_seed", geo(4.0, 9, 77)},
    {"bin_subcritical", bin(4, 0.2, 4)},
    {"bin_bushy", bin(8, 0.11, 5)},
    {"bin_sparse", bin(2, 0.4, 6)},
};

class UtsShapes : public ::testing::TestWithParam<uts_case> {};

}  // namespace

TEST_P(UtsShapes, AllCountsAgree) {
  const auto& c = GetParam();
  const std::uint64_t expect = ia::uts_count_serial(c.params);
  ASSERT_GT(expect, 0u);

  auto o = ityr::test::tiny_opts(2, 2);
  o.noncoll_heap_per_rank = 16 * ityr::common::MiB;
  ityr::runtime rt(o);
  rt.spmd([&] {
    auto p = c.params;
    auto res = ityr::root_exec([p] {
      const std::uint64_t counted = ia::uts_count_parallel(p);
      auto tree = ia::uts_mem_build(p);
      const std::uint64_t traversed = ia::uts_mem_traverse(tree.root);
      ia::uts_mem_destroy(tree.root);
      struct r {
        std::uint64_t counted, built, traversed;
      };
      return r{counted, tree.n_nodes, traversed};
    });
    EXPECT_EQ(res.counted, expect) << c.name;
    EXPECT_EQ(res.built, expect) << c.name;
    EXPECT_EQ(res.traversed, expect) << c.name;
  });
}

INSTANTIATE_TEST_SUITE_P(Shapes, UtsShapes, ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<uts_case>& info) {
                           return info.param.name;
                         });
