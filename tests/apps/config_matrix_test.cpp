// Cross-configuration checks that the big apps stay correct under the
// option combinations the individual suites do not already cover.

#include <gtest/gtest.h>

#include "../support/fixture.hpp"
#include "itoyori/apps/cilksort.hpp"
#include "itoyori/apps/uts.hpp"
#include "itoyori/core/scan.hpp"

namespace {

ityr::options base_opts() {
  auto o = ityr::test::tiny_opts(2, 2);
  o.coll_heap_per_rank = 2 * ityr::common::MiB;
  o.noncoll_heap_per_rank = 8 * ityr::common::MiB;
  return o;
}

}  // namespace

TEST(ConfigMatrix, CilksortUnderBlockDistribution) {
  auto o = base_opts();
  o.default_dist = ityr::dist_policy::block;
  ityr::runtime rt(o);
  rt.spmd([&] {
    const std::size_t n = 30000;
    auto a = ityr::coll_new<std::uint32_t>(n);
    auto b = ityr::coll_new<std::uint32_t>(n);
    bool ok = ityr::root_exec([=] {
      ityr::apps::cilksort_generate(a, n, 5, 512);
      ityr::apps::cilksort(ityr::global_span<std::uint32_t>(a, n),
                           ityr::global_span<std::uint32_t>(b, n), 512);
      return ityr::apps::cilksort_validate(a, n, 5, 512);
    });
    EXPECT_TRUE(ok);
    ityr::coll_delete(a, n);
    ityr::coll_delete(b, n);
  });
}

TEST(ConfigMatrix, CilksortUnderNodeFirstStealing) {
  auto o = base_opts();
  o.steal = ityr::common::steal_policy::node_first;
  ityr::runtime rt(o);
  rt.spmd([&] {
    const std::size_t n = 30000;
    auto a = ityr::coll_new<std::uint32_t>(n);
    auto b = ityr::coll_new<std::uint32_t>(n);
    bool ok = ityr::root_exec([=] {
      ityr::apps::cilksort_generate(a, n, 6, 512);
      ityr::apps::cilksort(ityr::global_span<std::uint32_t>(a, n),
                           ityr::global_span<std::uint32_t>(b, n), 512);
      return ityr::apps::cilksort_validate(a, n, 6, 512);
    });
    EXPECT_TRUE(ok);
    ityr::coll_delete(a, n);
    ityr::coll_delete(b, n);
  });
}

TEST(ConfigMatrix, UtsMemWithTinySubBlocks) {
  auto o = base_opts();
  o.sub_block_size = 256;  // extreme fetch granularity
  ityr::apps::uts_params p;
  p.b0 = 3.0;
  p.gen_mx = 8;
  const auto expect = ityr::apps::uts_count_serial(p);
  ityr::runtime rt(o);
  rt.spmd([&] {
    auto got = ityr::root_exec([p] {
      auto t = ityr::apps::uts_mem_build(p);
      return ityr::apps::uts_mem_traverse(t.root);
    });
    EXPECT_EQ(got, expect);
  });
}

TEST(ConfigMatrix, UtsMemWithSubBlockEqualBlock) {
  auto o = base_opts();
  o.sub_block_size = o.block_size;  // whole-block fetches
  ityr::apps::uts_params p;
  p.b0 = 3.0;
  p.gen_mx = 8;
  const auto expect = ityr::apps::uts_count_serial(p);
  ityr::runtime rt(o);
  rt.spmd([&] {
    auto got = ityr::root_exec([p] {
      auto t = ityr::apps::uts_mem_build(p);
      return ityr::apps::uts_mem_traverse(t.root);
    });
    EXPECT_EQ(got, expect);
  });
}

TEST(ConfigMatrix, ScanUnderNoCachePolicy) {
  auto o = base_opts();
  o.policy = ityr::cache_policy::none;
  ityr::runtime rt(o);
  rt.spmd([&] {
    const std::size_t n = 3000;
    auto a = ityr::coll_new<long>(n);
    bool ok = ityr::root_exec([=] {
      ityr::parallel_fill(a, n, 128, 2L);
      long total = ityr::parallel_scan_inclusive(a, a, n, 128, 0L,
                                                 [](long x, long y) { return x + y; });
      return total == static_cast<long>(2 * n) && ityr::get(a + static_cast<int>(n) - 1) ==
                                                      static_cast<long>(2 * n);
    });
    EXPECT_TRUE(ok);
    ityr::coll_delete(a, n);
  });
}

TEST(ConfigMatrix, DeterministicModeRunsApps) {
  auto o = base_opts();
  o.deterministic = true;
  ityr::runtime rt(o);
  rt.spmd([&] {
    const std::size_t n = 20000;
    auto a = ityr::coll_new<std::uint32_t>(n);
    auto b = ityr::coll_new<std::uint32_t>(n);
    bool ok = ityr::root_exec([=] {
      ityr::apps::cilksort_generate(a, n, 8, 512);
      ityr::apps::cilksort(ityr::global_span<std::uint32_t>(a, n),
                           ityr::global_span<std::uint32_t>(b, n), 512);
      return ityr::apps::cilksort_validate(a, n, 8, 512);
    });
    EXPECT_TRUE(ok);
    ityr::coll_delete(a, n);
    ityr::coll_delete(b, n);
  });
}
