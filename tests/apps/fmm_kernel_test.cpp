#include "itoyori/apps/fmm/kernels.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace f = ityr::apps::fmm;

namespace {

struct cluster {
  std::vector<f::body> bodies;
  f::vec3 center;
};

cluster make_cluster(f::vec3 center, f::real_t radius, std::size_t n, unsigned seed) {
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> u(-radius, radius);
  cluster c{{}, center};
  c.bodies.resize(n);
  for (auto& b : c.bodies) {
    b.X = center + f::vec3{u(gen), u(gen), u(gen)};
    b.q = u(gen) / radius + 1.0;
  }
  return c;
}

double pot_rel_err(const std::vector<f::body_acc>& got, const std::vector<f::body_acc>& want) {
  double e = 0, r = 0;
  for (std::size_t i = 0; i < got.size(); i++) {
    e += (got[i].p - want[i].p) * (got[i].p - want[i].p);
    r += want[i].p * want[i].p;
  }
  return std::sqrt(e / (r + 1e-300));
}

double grad_rel_err(const std::vector<f::body_acc>& got, const std::vector<f::body_acc>& want) {
  double e = 0, r = 0;
  for (std::size_t i = 0; i < got.size(); i++) {
    e += norm2(got[i].dphi - want[i].dphi);
    r += norm2(want[i].dphi);
  }
  return std::sqrt(e / (r + 1e-300));
}

}  // namespace

TEST(FmmGeometry, Cart2SphRoundTrip) {
  f::real_t r, theta, phi;
  f::cart2sph({1, 0, 0}, r, theta, phi);
  EXPECT_NEAR(r, 1.0, 1e-12);
  EXPECT_NEAR(theta, M_PI / 2, 1e-12);
  EXPECT_NEAR(phi, 0.0, 1e-12);
  f::cart2sph({0, 0, 2}, r, theta, phi);
  EXPECT_NEAR(theta, 0.0, 1e-12);
  EXPECT_NEAR(r, 2.0, 1e-12);
}

TEST(FmmGeometry, MortonKeysPreserveLocality) {
  const f::vec3 c{0, 0, 0};
  const f::real_t R = 1.0;
  auto k1 = f::morton_key({-0.9, -0.9, -0.9}, c, R);
  auto k2 = f::morton_key({-0.89, -0.9, -0.9}, c, R);
  auto k3 = f::morton_key({0.9, 0.9, 0.9}, c, R);
  EXPECT_LT(k1, k3);
  EXPECT_LT(std::max(k1, k2) - std::min(k1, k2), k3 - k1);
  // Octant extraction at the top level.
  EXPECT_EQ(f::key_octant(f::morton_key({-0.5, -0.5, -0.5}, c, R), 0), 0);
  EXPECT_EQ(f::key_octant(f::morton_key({0.5, 0.5, 0.5}, c, R), 0), 7);
  EXPECT_EQ(f::key_octant(f::morton_key({0.5, -0.5, -0.5}, c, R), 0), 4);
}

TEST(FmmKernels, P2PPotentialAndGradient) {
  std::vector<f::body> src{{{0, 0, 0}, 2.0}};
  std::vector<f::body> tgt{{{3, 0, 0}, 1.0}};
  std::vector<f::body_acc> acc(1);
  f::p2p(tgt.data(), 1, acc.data(), src.data(), 1);
  EXPECT_NEAR(acc[0].p, 2.0 / 3.0, 1e-12);
  // grad(q/r) = -q x / r^3
  EXPECT_NEAR(acc[0].dphi.x, -2.0 * 3 / 27, 1e-12);
  EXPECT_NEAR(acc[0].dphi.y, 0, 1e-12);
}

TEST(FmmKernels, P2PSkipsSelfInteraction) {
  std::vector<f::body> b{{{1, 1, 1}, 1.0}, {{2, 2, 2}, 1.0}};
  std::vector<f::body_acc> acc(2);
  f::p2p(b.data(), 2, acc.data(), b.data(), 2);
  const double d = std::sqrt(3.0);
  EXPECT_NEAR(acc[0].p, 1.0 / d, 1e-12);
  EXPECT_NEAR(acc[1].p, 1.0 / d, 1e-12);
}

TEST(FmmKernels, P2MM2PMatchesDirectFarField) {
  auto src = make_cluster({0, 0, 0}, 0.3, 50, 1);
  auto tgt = make_cluster({5, 4, 3}, 0.3, 20, 2);

  std::vector<f::body_acc> exact(20), approx(20);
  f::p2p(tgt.bodies.data(), 20, exact.data(), src.bodies.data(), 50);

  f::complex_t M[f::kNTerm] = {};
  f::p2m(src.bodies.data(), 50, src.center, M);
  f::m2p(M, src.center, tgt.bodies.data(), 20, approx.data());
  EXPECT_LT(pot_rel_err(approx, exact), 1e-4);
}

TEST(FmmKernels, M2MPreservesFarField) {
  auto src = make_cluster({0.1, -0.1, 0.2}, 0.2, 30, 3);
  auto tgt = make_cluster({6, 5, 4}, 0.2, 10, 4);

  f::complex_t Mc[f::kNTerm] = {}, Mp[f::kNTerm] = {};
  f::p2m(src.bodies.data(), 30, src.center, Mc);
  const f::vec3 parent_center{0, 0, 0};
  f::m2m(Mc, src.center, parent_center, Mp);

  std::vector<f::body_acc> via_child(10), via_parent(10);
  f::m2p(Mc, src.center, tgt.bodies.data(), 10, via_child.data());
  f::m2p(Mp, parent_center, tgt.bodies.data(), 10, via_parent.data());
  EXPECT_LT(pot_rel_err(via_parent, via_child), 1e-4);
}

TEST(FmmKernels, M2LL2PMatchesDirect) {
  auto src = make_cluster({0, 0, 0}, 0.25, 40, 5);
  auto tgt = make_cluster({4, 3, 2}, 0.25, 15, 6);

  std::vector<f::body_acc> exact(15), approx(15);
  f::p2p(tgt.bodies.data(), 15, exact.data(), src.bodies.data(), 40);

  f::complex_t M[f::kNTerm] = {}, L[f::kNTerm] = {};
  f::p2m(src.bodies.data(), 40, src.center, M);
  f::m2l(M, src.center, tgt.center, L);
  f::l2p(L, tgt.center, tgt.bodies.data(), 15, approx.data());

  EXPECT_LT(pot_rel_err(approx, exact), 1e-3);
  EXPECT_LT(grad_rel_err(approx, exact), 1e-2);
}

TEST(FmmKernels, L2LPreservesLocalField) {
  auto src = make_cluster({0, 0, 0}, 0.25, 40, 7);
  auto tgt = make_cluster({4.2, 3.1, 2.4}, 0.15, 12, 8);

  f::complex_t M[f::kNTerm] = {}, Lp[f::kNTerm] = {}, Lc[f::kNTerm] = {};
  f::p2m(src.bodies.data(), 40, src.center, M);
  const f::vec3 parent_center{4.0, 3.0, 2.2};
  f::m2l(M, src.center, parent_center, Lp);
  f::l2l(Lp, parent_center, tgt.center, Lc);

  std::vector<f::body_acc> via_parent(12), via_child(12);
  f::l2p(Lp, parent_center, tgt.bodies.data(), 12, via_parent.data());
  f::l2p(Lc, tgt.center, tgt.bodies.data(), 12, via_child.data());
  EXPECT_LT(pot_rel_err(via_child, via_parent), 1e-3);
}

TEST(FmmKernels, AccuracyImprovesWithDistance) {
  auto src = make_cluster({0, 0, 0}, 0.3, 30, 9);
  double prev_err = 1.0;
  for (double dist : {2.0, 4.0, 8.0}) {
    auto tgt = make_cluster({dist, 0.2, 0.1}, 0.1, 10, 10);
    std::vector<f::body_acc> exact(10), approx(10);
    f::p2p(tgt.bodies.data(), 10, exact.data(), src.bodies.data(), 30);
    f::complex_t M[f::kNTerm] = {};
    f::p2m(src.bodies.data(), 30, src.center, M);
    f::m2p(M, src.center, tgt.bodies.data(), 10, approx.data());
    const double err = pot_rel_err(approx, exact);
    EXPECT_LT(err, prev_err) << "dist=" << dist;
    prev_err = err;
  }
}

TEST(FmmKernels, MultipoleOfPointChargeAtCenter) {
  // A single unit charge at the expansion center: M[0] = q, higher terms ~ 0,
  // and the far potential is q/r.
  std::vector<f::body> src{{{0, 0, 0}, 1.0}};
  f::complex_t M[f::kNTerm] = {};
  f::p2m(src.data(), 1, {0, 0, 0}, M);
  EXPECT_NEAR(std::abs(M[0]), 1.0, 1e-12);
  for (int i = 1; i < f::kNTerm; i++) EXPECT_NEAR(std::abs(M[i]), 0.0, 1e-12);

  std::vector<f::body> tgt{{{0, 0, 7}, 1.0}};
  std::vector<f::body_acc> acc(1);
  f::m2p(M, {0, 0, 0}, tgt.data(), 1, acc.data());
  EXPECT_NEAR(acc[0].p, 1.0 / 7.0, 1e-9);
}
