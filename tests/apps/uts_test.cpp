#include "itoyori/apps/uts.hpp"

#include <gtest/gtest.h>

#include "../support/fixture.hpp"

namespace ia = ityr::apps;

namespace {

ityr::options uts_opts(int nodes = 2, int rpn = 2) {
  auto o = ityr::test::tiny_opts(nodes, rpn);
  o.noncoll_heap_per_rank = 8 * ityr::common::MiB;
  return o;
}

ia::uts_params small_geo() {
  ia::uts_params p;
  p.kind = ia::uts_params::tree_kind::geometric;
  p.b0 = 3.0;
  p.gen_mx = 8;
  p.root_seed = 19;
  return p;
}

ia::uts_params small_bin() {
  ia::uts_params p;
  p.kind = ia::uts_params::tree_kind::binomial;
  p.m_child = 4;
  p.q = 0.20;
  p.root_seed = 42;
  return p;
}

}  // namespace

TEST(Uts, RootAndChildrenDeterministic) {
  auto p = small_geo();
  auto r1 = ia::uts_root(p);
  auto r2 = ia::uts_root(p);
  EXPECT_EQ(r1.state, r2.state);
  auto c0 = ia::uts_child(r1, 0);
  auto c1 = ia::uts_child(r1, 1);
  EXPECT_NE(c0.state, c1.state);
  EXPECT_EQ(ia::uts_child(r1, 0).state, c0.state);
}

TEST(Uts, DifferentSeedsGiveDifferentTrees) {
  auto p1 = small_geo();
  auto p2 = small_geo();
  p2.root_seed = 20;
  EXPECT_NE(ia::uts_count_serial(p1), ia::uts_count_serial(p2));
}

TEST(Uts, GeometricDepthLimitHolds) {
  auto p = small_geo();
  // At depth >= gen_mx nodes must have no children.
  auto root = ia::uts_root(p);
  EXPECT_EQ(ia::uts_num_children(p, root, p.gen_mx), 0);
  EXPECT_EQ(ia::uts_num_children(p, root, p.gen_mx + 5), 0);
}

TEST(Uts, SerialCountIsStable) {
  auto p = small_geo();
  const auto c1 = ia::uts_count_serial(p);
  const auto c2 = ia::uts_count_serial(p);
  EXPECT_EQ(c1, c2);
  EXPECT_GT(c1, 100u);  // nontrivial tree
}

TEST(Uts, ParallelCountMatchesSerial) {
  auto p = small_geo();
  const auto expect = ia::uts_count_serial(p);
  ityr::runtime rt(uts_opts());
  rt.spmd([&] {
    auto got = ityr::root_exec([p] { return ia::uts_count_parallel(p); });
    EXPECT_EQ(got, expect);
  });
}

TEST(Uts, BinomialParallelCountMatchesSerial) {
  auto p = small_bin();
  const auto expect = ia::uts_count_serial(p);
  ityr::runtime rt(uts_opts());
  rt.spmd([&] {
    auto got = ityr::root_exec([p] { return ia::uts_count_parallel(p); });
    EXPECT_EQ(got, expect);
  });
}

TEST(UtsMem, BuildCountMatchesSerial) {
  auto p = small_geo();
  const auto expect = ia::uts_count_serial(p);
  ityr::runtime rt(uts_opts());
  rt.spmd([&] {
    auto built = ityr::root_exec([p] {
      auto tree = ia::uts_mem_build(p);
      return tree.n_nodes;
    });
    EXPECT_EQ(built, expect);
  });
}

TEST(UtsMem, TraverseCountsEveryNode) {
  auto p = small_geo();
  const auto expect = ia::uts_count_serial(p);
  ityr::runtime rt(uts_opts());
  rt.spmd([&] {
    auto counts = ityr::root_exec([p] {
      auto tree = ia::uts_mem_build(p);
      auto traversed = ia::uts_mem_traverse(tree.root);
      return std::pair<std::uint64_t, std::uint64_t>(tree.n_nodes, traversed);
    });
    EXPECT_EQ(counts.first, expect);
    EXPECT_EQ(counts.second, expect);
  });
}

TEST(UtsMem, TraverseTwiceSameResult) {
  auto p = small_geo();
  ityr::runtime rt(uts_opts());
  rt.spmd([&] {
    auto pairv = ityr::root_exec([p] {
      auto tree = ia::uts_mem_build(p);
      auto t1 = ia::uts_mem_traverse(tree.root);
      auto t2 = ia::uts_mem_traverse(tree.root);
      return std::pair<std::uint64_t, std::uint64_t>(t1, t2);
    });
    EXPECT_EQ(pairv.first, pairv.second);
  });
}

TEST(UtsMem, DestroyReturnsAllMemory) {
  auto p = small_geo();
  p.gen_mx = 6;  // small
  ityr::runtime rt(uts_opts(1, 2));
  rt.spmd([&] {
    std::uint64_t used_before = 0;
    for (int r = 0; r < ityr::n_ranks(); r++) {
      used_before += ityr::rt().pgas().heap().nc_bytes_in_use(r);
    }
    ityr::root_exec([p] {
      auto tree = ia::uts_mem_build(p);
      ia::uts_mem_destroy(tree.root);
    });
    ityr::barrier();
    // Drain remote-free queues on every rank.
    ityr::rt().pgas().heap().poll();
    ityr::barrier();
    std::uint64_t used_after = 0;
    for (int r = 0; r < ityr::n_ranks(); r++) {
      used_after += ityr::rt().pgas().heap().nc_bytes_in_use(r);
    }
    EXPECT_EQ(used_before, used_after);
  });
}

TEST(UtsMem, BuildDistributesAllocationsAcrossRanks) {
  auto p = small_geo();
  p.b0 = 4.0;
  p.gen_mx = 10;
  ityr::runtime rt(uts_opts(2, 2));
  rt.spmd([&] {
    ityr::root_exec([p] {
      auto tree = ia::uts_mem_build(p);
      (void)tree;
    });
    ityr::barrier();
    if (ityr::my_rank() == 0) {
      int ranks_with_allocs = 0;
      for (int r = 0; r < ityr::n_ranks(); r++) {
        if (ityr::rt().pgas().heap().nc_bytes_in_use(r) > 0) ranks_with_allocs++;
      }
      // Work stealing should have spread construction over several ranks.
      EXPECT_GT(ranks_with_allocs, 1);
    }
  });
}

TEST(UtsMem, WorksWithoutCache) {
  auto p = small_geo();
  p.gen_mx = 7;
  const auto expect = ia::uts_count_serial(p);
  auto o = uts_opts();
  o.policy = ityr::cache_policy::none;
  ityr::runtime rt(o);
  rt.spmd([&] {
    auto got = ityr::root_exec([p] {
      auto tree = ia::uts_mem_build(p);
      return ia::uts_mem_traverse(tree.root);
    });
    EXPECT_EQ(got, expect);
  });
}
