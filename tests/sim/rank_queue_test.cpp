#include "itoyori/sim/rank_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "itoyori/common/rng.hpp"
#include "itoyori/sim/engine.hpp"

namespace is = ityr::sim;
namespace ic = ityr::common;

namespace {

ic::options det_opts(int nodes, int rpn, ic::sim_sched_kind sched,
                     std::uint64_t seed = 42) {
  ic::options o;
  o.n_nodes = nodes;
  o.ranks_per_node = rpn;
  o.deterministic = true;
  o.seed = seed;
  o.sim_sched = sched;
  return o;
}

/// Drive both queue implementations through an identical op sequence and
/// assert every top() agrees. Clock increments are drawn from a small set of
/// exact doubles so ties are frequent (the interesting case).
void fuzz_against_oracle(int n, std::uint64_t seed) {
  is::rank_queue heap(n, ic::sim_sched_kind::indexed);
  is::rank_queue oracle(n, ic::sim_sched_kind::linear);
  std::vector<double> clock(static_cast<std::size_t>(n), 0.0);
  std::vector<bool> alive(static_cast<std::size_t>(n), true);
  ic::xoshiro256ss rng(seed);
  const double steps[] = {0.0, 0.25, 0.25, 0.5, 1.0};  // exact in binary; tie-heavy
  int left = n;
  while (left > 0) {
    const int r = heap.top();
    ASSERT_EQ(r, oracle.top());
    ASSERT_GE(r, 0);
    ASSERT_TRUE(alive[static_cast<std::size_t>(r)]);
    if (rng.below(8) == 0) {  // rank finishes
      heap.remove(r);
      oracle.remove(r);
      alive[static_cast<std::size_t>(r)] = false;
      left--;
      continue;
    }
    clock[static_cast<std::size_t>(r)] += steps[rng.below(5)];
    heap.update(r, clock[static_cast<std::size_t>(r)]);
    oracle.update(r, clock[static_cast<std::size_t>(r)]);
  }
  EXPECT_EQ(heap.top(), -1);
  EXPECT_EQ(oracle.top(), -1);
  EXPECT_TRUE(heap.empty());
}

/// One engine run, returning the exact resume order and per-resume committed
/// clocks (the simulator's full execution fingerprint).
struct run_fingerprint {
  std::vector<int> order;
  std::vector<double> clocks;        ///< committed clock after each resume
  std::vector<double> final_clocks;  ///< per-rank clock at termination
};

run_fingerprint run_engine(const ic::options& o,
                           const std::function<void(is::engine&, int)>& body) {
  run_fingerprint fp;
  is::engine e(o);
  e.set_resume_hook([&](int r, double clk) {
    fp.order.push_back(r);
    fp.clocks.push_back(clk);
  });
  e.run([&](int r) { body(e, r); });
  for (int r = 0; r < e.n_ranks(); r++) fp.final_clocks.push_back(e.clock_of(r));
  return fp;
}

void expect_identical(const run_fingerprint& a, const run_fingerprint& b) {
  ASSERT_EQ(a.order, b.order);  // exact resume order, every event
  ASSERT_EQ(a.clocks.size(), b.clocks.size());
  for (std::size_t i = 0; i < a.clocks.size(); i++) {
    EXPECT_EQ(a.clocks[i], b.clocks[i]) << "clock diverged at resume " << i;  // bitwise
  }
  ASSERT_EQ(a.final_clocks.size(), b.final_clocks.size());
  for (std::size_t i = 0; i < a.final_clocks.size(); i++) {
    EXPECT_EQ(a.final_clocks[i], b.final_clocks[i]) << "final clock of rank " << i;
  }
}

}  // namespace

TEST(RankQueue, InitialOrderIsRankOrder) {
  is::rank_queue q(8, ic::sim_sched_kind::indexed);
  // All clocks equal: ties must break toward the lowest rank, repeatedly.
  for (int r = 0; r < 8; r++) {
    EXPECT_EQ(q.top(), r);
    q.remove(r);
  }
  EXPECT_EQ(q.top(), -1);
}

TEST(RankQueue, TieBreakIsLowestRankAfterUpdates) {
  is::rank_queue q(4, ic::sim_sched_kind::indexed);
  // Bring every rank to the same clock via different update sequences.
  q.update(0, 2.0);
  q.update(1, 2.0);
  q.update(3, 2.0);
  q.update(2, 2.0);
  for (int r = 0; r < 4; r++) {
    EXPECT_EQ(q.top(), r);
    q.remove(r);
  }
}

TEST(RankQueue, FuzzMatchesLinearOracle) {
  for (std::uint64_t seed = 1; seed <= 10; seed++) {
    fuzz_against_oracle(33, seed);   // non-power-of-two, deep heap
    fuzz_against_oracle(257, seed);  // crosses several 4-ary levels
  }
}

// The pinned determinism guarantee from the scheduling refactor: the indexed
// heap reproduces the linear scan's resume order and final clocks exactly,
// across seeds, on a workload with rank-dependent advances.
TEST(EngineSched, HeapMatchesLinearScanAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 10; seed++) {
    auto body = [](is::engine& e, int r) {
      for (int i = 0; i < 20; i++) {
        // Mix of rank-skewed and rng-driven advances, plus O(1) charges that
        // the queue only observes at the next yield.
        e.charge(0.125 * static_cast<double>(r % 3));
        e.advance(0.25 * static_cast<double>(1 + e.rng().below(4)));
      }
    };
    const auto heap = run_engine(det_opts(4, 4, ic::sim_sched_kind::indexed, seed), body);
    const auto lin = run_engine(det_opts(4, 4, ic::sim_sched_kind::linear, seed), body);
    expect_identical(heap, lin);
  }
}

// Tie-heavy workload: every rank advances by the same exact dt, so the queue
// is all-ties all the time — the stress case for tie-break stability.
TEST(EngineSched, HeapMatchesLinearScanOnUniformTies) {
  auto body = [](is::engine& e, int) {
    for (int i = 0; i < 50; i++) e.advance(0.5);
  };
  const auto heap = run_engine(det_opts(2, 8, ic::sim_sched_kind::indexed), body);
  const auto lin = run_engine(det_opts(2, 8, ic::sim_sched_kind::linear), body);
  expect_identical(heap, lin);
  // With all-equal clocks the resume order must cycle 0..n-1.
  for (std::size_t i = 0; i < heap.order.size(); i++) {
    EXPECT_EQ(heap.order[i], static_cast<int>(i % 16));
  }
}
