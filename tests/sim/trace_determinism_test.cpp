// Observability determinism: with options::deterministic set, two runs with
// the same seed and configuration must produce byte-identical trace JSON and
// byte-identical metrics-registry JSON. This is what makes traces diffable
// across runs and lets BENCH_observability assert virtual-time invariance.

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "../support/fixture.hpp"
#include "itoyori/apps/cilksort.hpp"
#include "itoyori/common/trace.hpp"
#include "itoyori/core/metrics.hpp"

namespace {

struct run_dump {
  std::string trace_json;
  std::string metrics_json;
};

run_dump run_traced_cilksort(std::uint64_t seed, bool prefetch = false) {
  auto o = ityr::test::tiny_opts(2, 2);
  o.coll_heap_per_rank = 2 * ityr::common::MiB;
  o.seed = seed;
  o.metrics_sample_interval = 1.0e-5;
  o.prefetch = prefetch;
  ityr::runtime rt(o);
  rt.trace().set_enabled(true);
  rt.spmd([] {
    const std::size_t n = 30000;
    auto a = ityr::coll_new<std::uint32_t>(n);
    auto b = ityr::coll_new<std::uint32_t>(n);
    ityr::root_exec([=] {
      ityr::apps::cilksort_generate(a, n, 9, 512);
      ityr::apps::cilksort(ityr::global_span<std::uint32_t>(a, n),
                           ityr::global_span<std::uint32_t>(b, n), 512);
    });
    ityr::coll_delete(a, n);
    ityr::coll_delete(b, n);
  });
  return {rt.trace().to_json(), rt.metrics().to_json()};
}

}  // namespace

TEST(TraceDeterminism, SameSeedGivesByteIdenticalTraceAndStats) {
  const run_dump a = run_traced_cilksort(42);
  const run_dump b = run_traced_cilksort(42);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.metrics_json, b.metrics_json);

  // And the dump is non-trivial, valid trace JSON with real content.
  const auto r = ityr::common::validate_trace_json(a.trace_json);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.n_spans, 0u);
  EXPECT_GT(r.n_flows, 0u);
  EXPECT_GT(r.n_counters, 0u);
}

TEST(TraceDeterminism, PrefetchEnabledRunsAreByteIdentical) {
  // The prefetcher's timestamps all derive from the virtual clock, so a
  // prefetch-enabled run is just as reproducible as the baseline: identical
  // sort results, byte-identical trace and metrics dumps.
  const run_dump a = run_traced_cilksort(42, /*prefetch=*/true);
  const run_dump b = run_traced_cilksort(42, /*prefetch=*/true);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.metrics_json, b.metrics_json);

  const auto r = ityr::common::validate_trace_json(a.trace_json);
  EXPECT_TRUE(r.ok) << r.error;
  // Prefetch lifecycle discipline: in a complete trace every issue flow has
  // exactly one consume-or-evict terminator.
  if (r.dropped_events == 0) {
    EXPECT_EQ(r.n_prefetch_flows, r.n_prefetch_consumes + r.n_prefetch_evicts);
  }
}

TEST(TraceDeterminism, DifferentSeedsGiveDifferentTraces) {
  const run_dump a = run_traced_cilksort(42);
  const run_dump b = run_traced_cilksort(43);
  // Different victim-selection streams change the schedule, which shows up
  // in the timeline.
  EXPECT_NE(a.trace_json, b.trace_json);
}
