#include "itoyori/sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace is = ityr::sim;
namespace ic = ityr::common;

namespace {

ic::options det_opts(int nodes, int rpn) {
  ic::options o;
  o.n_nodes = nodes;
  o.ranks_per_node = rpn;
  o.deterministic = true;
  return o;
}

}  // namespace

TEST(Fiber, RunsAndSwitchesBack) {
  is::fiber_context main_ctx;
  bool ran = false;
  is::fiber f(64 * 1024, [&] {
    ran = true;
    is::fiber_exit_to(&main_ctx);
  });
  is::fiber_switch(&main_ctx, f.context());
  EXPECT_TRUE(ran);
}

TEST(Fiber, PingPong) {
  is::fiber_context main_ctx;
  std::vector<int> trace;
  is::fiber f(64 * 1024, [&] {
    trace.push_back(1);
    is::fiber_switch(f.context(), &main_ctx);
    trace.push_back(3);
    is::fiber_exit_to(&main_ctx);
  });
  is::fiber_switch(&main_ctx, f.context());
  trace.push_back(2);
  is::fiber_switch(&main_ctx, f.context());
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
}

TEST(Fiber, PoolRecyclesStacks) {
  is::fiber_pool pool(64 * 1024);
  is::fiber_context main_ctx;
  int runs = 0;
  is::fiber* f1 = pool.acquire([&] {
    runs++;
    is::fiber_exit_to(&main_ctx);
  });
  is::fiber_switch(&main_ctx, f1->context());
  pool.release(f1);
  is::fiber* f2 = pool.acquire([&] {
    runs += 10;
    is::fiber_exit_to(&main_ctx);
  });
  EXPECT_EQ(f1, f2);  // stack reused
  is::fiber_switch(&main_ctx, f2->context());
  pool.release(f2);
  EXPECT_EQ(runs, 11);
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(Engine, RunsAllRanks) {
  is::engine e(det_opts(2, 3));
  std::vector<int> ran(6, 0);
  e.run([&](int r) { ran[static_cast<std::size_t>(r)] = 1; });
  for (int r = 0; r < 6; r++) EXPECT_EQ(ran[static_cast<std::size_t>(r)], 1) << r;
}

TEST(Engine, TopologyMapping) {
  is::engine e(det_opts(3, 4));
  EXPECT_EQ(e.n_ranks(), 12);
  EXPECT_EQ(e.node_of(0), 0);
  EXPECT_EQ(e.node_of(3), 0);
  EXPECT_EQ(e.node_of(4), 1);
  EXPECT_EQ(e.node_of(11), 2);
  EXPECT_TRUE(e.same_node(4, 7));
  EXPECT_FALSE(e.same_node(3, 4));
}

TEST(Engine, VirtualTimeAdvances) {
  is::engine e(det_opts(1, 2));
  double t_end[2] = {0, 0};
  e.run([&](int r) {
    EXPECT_EQ(e.my_rank(), r);
    e.advance(r == 0 ? 1.0 : 2.0);
    t_end[r] = e.now();
  });
  EXPECT_GE(t_end[0], 1.0);
  EXPECT_GE(t_end[1], 2.0);
  EXPECT_LT(t_end[0], 1.1);
  EXPECT_LT(t_end[1], 2.1);
}

// The DES must interleave ranks in virtual-time order: a rank that advances
// far into the future cannot run again until others catch up.
TEST(Engine, MinClockOrdering) {
  is::engine e(det_opts(1, 2));
  std::vector<int> order;
  e.run([&](int r) {
    if (r == 0) {
      order.push_back(0);
      e.advance(10.0);  // jump far ahead
      order.push_back(2);
    } else {
      e.advance(1.0);
      order.push_back(1);  // must run while rank 0 is "ahead"
      e.advance(1.0);
    }
  });
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Engine, ChargeWithoutYield) {
  is::engine e(det_opts(1, 1));
  e.run([&](int) {
    double t0 = e.now();
    e.charge(5.0);
    EXPECT_DOUBLE_EQ(e.now(), t0 + 5.0);
  });
}

TEST(Engine, CrossRankCausality) {
  // Rank 0 writes a flag at t=1; rank 1 polls until it sees it. The DES
  // guarantees rank 1 observes the write once its clock passes the writer's.
  is::engine e(det_opts(1, 2));
  bool flag = false;
  double seen_at = 0;
  e.run([&](int r) {
    if (r == 0) {
      e.advance(1.0);
      flag = true;
    } else {
      while (!flag) e.advance(0.1);
      seen_at = e.now();
    }
  });
  EXPECT_GE(seen_at, 1.0);
}

TEST(Engine, RethrowsRankException) {
  is::engine e(det_opts(1, 2));
  EXPECT_THROW(e.run([&](int r) {
    if (r == 1) throw std::runtime_error("boom");
  }),
               std::runtime_error);
}

TEST(Engine, RngIsPerRankDeterministic) {
  std::vector<std::uint64_t> draws_a, draws_b;
  {
    is::engine e(det_opts(1, 2));
    e.run([&](int) { draws_a.push_back(e.rng()()); });
  }
  {
    is::engine e(det_opts(1, 2));
    e.run([&](int) { draws_b.push_back(e.rng()()); });
  }
  EXPECT_EQ(draws_a, draws_b);
  EXPECT_NE(draws_a[0], draws_a[1]);  // ranks get distinct streams
}

TEST(Engine, SwitchToFiberAndBack) {
  is::engine e(det_opts(1, 1));
  std::vector<int> trace;
  e.run([&](int) {
    is::fiber* main_fiber = e.current_fiber();
    is::fiber* f = e.spawn_fiber([&] {
      trace.push_back(2);
      e.yield();  // DES resumes this same fiber (sole rank)
      trace.push_back(3);
      e.exit_to(main_fiber);
    });
    trace.push_back(1);
    e.switch_to(f);
    trace.push_back(4);
    e.free_fiber(f);
  });
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Engine, DeterministicClocksAreReproducible) {
  auto run_once = [] {
    is::engine e(det_opts(2, 2));
    e.run([&](int r) {
      for (int i = 0; i < r + 1; i++) e.advance(0.25);
    });
    std::vector<double> clocks;
    for (int r = 0; r < e.n_ranks(); r++) clocks.push_back(e.clock_of(r));
    return clocks;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, MaxClockReflectsSlowestRank) {
  is::engine e(det_opts(1, 3));
  e.run([&](int r) { e.advance(static_cast<double>(r)); });
  EXPECT_GE(e.max_clock(), 2.0);
}
