// End-to-end determinism: with options::deterministic set, the entire
// simulation — schedules, steal counts, virtual clocks, traffic — must be
// bit-reproducible across runs. This is what makes the simulator usable for
// debugging runs of the full runtime.

#include <gtest/gtest.h>

#include <vector>

#include "../support/fixture.hpp"
#include "itoyori/apps/cilksort.hpp"
#include "itoyori/apps/uts.hpp"

namespace {

struct run_fingerprint {
  std::vector<double> clocks;
  std::uint64_t steals = 0;
  std::uint64_t forks = 0;
  std::uint64_t fetched = 0;
  std::uint64_t messages = 0;

  friend bool operator==(const run_fingerprint&, const run_fingerprint&) = default;
};

run_fingerprint run_cilksort_once(std::uint64_t seed) {
  auto o = ityr::test::tiny_opts(2, 2);
  o.coll_heap_per_rank = 2 * ityr::common::MiB;
  o.seed = seed;
  ityr::runtime rt(o);
  rt.spmd([] {
    const std::size_t n = 30000;
    auto a = ityr::coll_new<std::uint32_t>(n);
    auto b = ityr::coll_new<std::uint32_t>(n);
    ityr::root_exec([=] {
      ityr::apps::cilksort_generate(a, n, 9, 512);
      ityr::apps::cilksort(ityr::global_span<std::uint32_t>(a, n),
                           ityr::global_span<std::uint32_t>(b, n), 512);
    });
    ityr::coll_delete(a, n);
    ityr::coll_delete(b, n);
  });
  run_fingerprint fp;
  for (int r = 0; r < rt.eng().n_ranks(); r++) fp.clocks.push_back(rt.eng().clock_of(r));
  fp.steals = rt.sched().get_stats().steals;
  fp.forks = rt.sched().get_stats().forks;
  fp.fetched = rt.pgas().aggregate_stats().fetched_bytes;
  fp.messages = rt.rma().net().total_messages();
  return fp;
}

run_fingerprint run_uts_once(std::uint64_t seed) {
  ityr::apps::uts_params p;
  p.b0 = 3.0;
  p.gen_mx = 8;
  auto o = ityr::test::tiny_opts(2, 2);
  o.noncoll_heap_per_rank = 4 * ityr::common::MiB;
  o.seed = seed;
  ityr::runtime rt(o);
  rt.spmd([p] {
    ityr::root_exec([p] {
      auto t = ityr::apps::uts_mem_build(p);
      (void)ityr::apps::uts_mem_traverse(t.root);
    });
  });
  run_fingerprint fp;
  for (int r = 0; r < rt.eng().n_ranks(); r++) fp.clocks.push_back(rt.eng().clock_of(r));
  fp.steals = rt.sched().get_stats().steals;
  fp.forks = rt.sched().get_stats().forks;
  fp.fetched = rt.pgas().aggregate_stats().fetched_bytes;
  fp.messages = rt.rma().net().total_messages();
  return fp;
}

}  // namespace

TEST(Determinism, CilksortRunsAreBitReproducible) {
  auto a = run_cilksort_once(42);
  auto b = run_cilksort_once(42);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.steals, 0u);
}

TEST(Determinism, DifferentSeedsGiveDifferentSchedules) {
  auto a = run_cilksort_once(42);
  auto b = run_cilksort_once(43);
  // Same program, different victim-selection streams: schedules diverge
  // (steal counts and clocks), results stay correct (checked elsewhere).
  EXPECT_NE(a.clocks, b.clocks);
}

TEST(Determinism, UtsMemRunsAreBitReproducible) {
  auto a = run_uts_once(7);
  auto b = run_uts_once(7);
  EXPECT_EQ(a, b);
}
