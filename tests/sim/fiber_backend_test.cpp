#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "itoyori/sim/engine.hpp"
#include "itoyori/sim/fiber.hpp"

namespace is = ityr::sim;
namespace ic = ityr::common;

namespace {

/// Scoped override of the process-global fiber backend (restores on exit so
/// test order doesn't matter).
struct backend_guard {
  explicit backend_guard(ic::fiber_backend_kind k) : prev(is::fiber_backend()) {
    is::set_fiber_backend(k);
  }
  ~backend_guard() { is::set_fiber_backend(prev); }
  ic::fiber_backend_kind prev;
};

ic::options det_opts(int nodes, int rpn, ic::fiber_backend_kind backend) {
  ic::options o;
  o.n_nodes = nodes;
  o.ranks_per_node = rpn;
  o.deterministic = true;
  o.fiber_backend = backend;
  return o;
}

void ping_pong_roundtrip() {
  is::fiber_context main_ctx;
  std::vector<int> trace;
  is::fiber f(64 * 1024, [&] {
    trace.push_back(1);
    is::fiber_switch(f.context(), &main_ctx);
    trace.push_back(3);
    is::fiber_exit_to(&main_ctx);
  });
  is::fiber_switch(&main_ctx, f.context());
  trace.push_back(2);
  is::fiber_switch(&main_ctx, f.context());
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
}

}  // namespace

TEST(FiberBackend, AsmPingPong) {
  if (!ic::asm_fiber_backend_supported()) GTEST_SKIP() << "asm backend unsupported here";
  backend_guard g(ic::fiber_backend_kind::asm_switch);
  ping_pong_roundtrip();
}

TEST(FiberBackend, UcontextPingPong) {
  backend_guard g(ic::fiber_backend_kind::ucontext);
  ping_pong_roundtrip();
}

TEST(FiberBackend, AsmReusePreparesFreshFrame) {
  if (!ic::asm_fiber_backend_supported()) GTEST_SKIP() << "asm backend unsupported here";
  backend_guard g(ic::fiber_backend_kind::asm_switch);
  is::fiber_pool pool(64 * 1024);
  is::fiber_context main_ctx;
  int runs = 0;
  for (int i = 0; i < 3; i++) {
    is::fiber* f = pool.acquire([&] {
      runs++;
      is::fiber_exit_to(&main_ctx);
    });
    is::fiber_switch(&main_ctx, f->context());
    pool.release(f);
  }
  EXPECT_EQ(runs, 3);
  EXPECT_EQ(pool.created(), 1u);  // one stack, reset (not re-mmap'd) per reuse
  EXPECT_EQ(pool.reused(), 2u);
}

// Engine-level workloads that never migrate fibers must produce bitwise
// identical virtual clocks under both backends (the cost model sees no
// backend-dependent input; live_stack_bytes only feeds *migration* costs).
TEST(FiberBackend, EngineClocksMatchAcrossBackends) {
  if (!ic::asm_fiber_backend_supported()) GTEST_SKIP() << "asm backend unsupported here";
  auto run_once = [](ic::fiber_backend_kind backend) {
    is::engine e(det_opts(2, 2, backend));
    e.run([&](int r) {
      for (int i = 0; i < 10; i++) e.advance(0.5 * static_cast<double>(r + 1));
    });
    std::vector<double> clocks;
    for (int r = 0; r < e.n_ranks(); r++) clocks.push_back(e.clock_of(r));
    return clocks;
  };
  const auto asm_clocks = run_once(ic::fiber_backend_kind::asm_switch);
  const auto uc_clocks = run_once(ic::fiber_backend_kind::ucontext);
  ASSERT_EQ(asm_clocks.size(), uc_clocks.size());
  for (std::size_t i = 0; i < asm_clocks.size(); i++) {
    EXPECT_EQ(asm_clocks[i], uc_clocks[i]);
  }
}

TEST(FiberBackend, LiveStackBytesWithinStack) {
  is::fiber_context main_ctx;
  is::fiber f(64 * 1024, [&] {
    is::fiber_switch(f.context(), &main_ctx);
    is::fiber_exit_to(&main_ctx);
  });
  is::fiber_switch(&main_ctx, f.context());
  // Suspended inside the entry: some stack is live, bounded by the region.
  EXPECT_GT(f.live_stack_bytes(), 0u);
  EXPECT_LE(f.live_stack_bytes(), f.stack_size());
  is::fiber_switch(&main_ctx, f.context());  // let it exit cleanly
}

// Regression test for unbounded pool retention: a burst of outstanding
// fibers must not pin its footprint — releases beyond the cap unmap.
TEST(FiberPool, CapBoundsRetentionAndTracksHighWater) {
  is::fiber_pool pool(64 * 1024, /*cap=*/4);
  is::fiber_context main_ctx;
  std::vector<is::fiber*> live;
  for (int i = 0; i < 10; i++) {
    is::fiber* f = pool.acquire([&] { is::fiber_exit_to(&main_ctx); });
    is::fiber_switch(&main_ctx, f->context());  // run to completion
    live.push_back(f);
  }
  EXPECT_EQ(pool.outstanding(), 10u);
  EXPECT_EQ(pool.high_water(), 10u);
  for (is::fiber* f : live) pool.release(f);
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_EQ(pool.idle(), 4u);     // capped
  EXPECT_EQ(pool.dropped(), 6u);  // the rest were unmapped
  EXPECT_EQ(pool.high_water(), 10u);

  // Churn within the cap reuses stacks (no new creations).
  const auto created_before = pool.created();
  for (int i = 0; i < 100; i++) {
    is::fiber* f = pool.acquire([&] { is::fiber_exit_to(&main_ctx); });
    is::fiber_switch(&main_ctx, f->context());
    pool.release(f);
  }
  EXPECT_EQ(pool.created(), created_before);
  EXPECT_GE(pool.reused(), 100u);
}
