/// With RMA coalescing on (the default), deterministic runs must stay
/// bit-reproducible: coalescing changes message counts and costs, but for a
/// fixed configuration two runs must agree on every virtual clock, steal
/// count, and traffic counter — and switching coalescing off must change
/// costs only, never application results.

#include <gtest/gtest.h>

#include <vector>

#include "../support/fixture.hpp"
#include "itoyori/apps/cilksort.hpp"
#include "itoyori/core/ityr.hpp"
#include "itoyori/core/runtime.hpp"

namespace ic = ityr::common;

namespace {

struct run_fingerprint {
  std::vector<double> clocks;
  std::uint64_t steals = 0;
  std::uint64_t messages = 0;
  std::uint64_t coalesced = 0;
  bool sorted = false;

  friend bool operator==(const run_fingerprint&, const run_fingerprint&) = default;
};

run_fingerprint run_once(bool coalesce) {
  auto o = ityr::test::tiny_opts(2, 2);
  o.coll_heap_per_rank = 2 * ic::MiB;
  o.coalesce_rma = coalesce;
  ityr::runtime rt(o);
  bool sorted = false;
  rt.spmd([&] {
    const std::size_t n = 30000;
    auto a = ityr::coll_new<std::uint32_t>(n);
    auto b = ityr::coll_new<std::uint32_t>(n);
    bool ok = ityr::root_exec([=] {
      ityr::apps::cilksort_generate(a, n, 13, 512);
      ityr::apps::cilksort(ityr::global_span<std::uint32_t>(a, n),
                           ityr::global_span<std::uint32_t>(b, n), 512);
      return ityr::apps::cilksort_validate(a, n, 13, 512);
    });
    if (ityr::my_rank() == 0) sorted = ok;
    ityr::coll_delete(a, n);
    ityr::coll_delete(b, n);
  });
  run_fingerprint fp;
  for (int r = 0; r < rt.eng().n_ranks(); r++) fp.clocks.push_back(rt.eng().clock_of(r));
  fp.steals = rt.sched().get_stats().steals;
  fp.messages = rt.rma().net().total_messages();
  fp.coalesced = rt.pgas().aggregate_stats().coalesced_messages;
  fp.sorted = sorted;
  return fp;
}

}  // namespace

TEST(CoalesceDeterminism, CoalescedRunsAreBitIdentical) {
  const auto a = run_once(true);
  const auto b = run_once(true);
  EXPECT_TRUE(a.sorted);
  EXPECT_EQ(a, b);  // virtual clocks included, bit-for-bit
}

TEST(CoalesceDeterminism, CoalescingChangesCostsNotResults) {
  const auto on = run_once(true);
  const auto off = run_once(false);
  EXPECT_TRUE(on.sorted);
  EXPECT_TRUE(off.sorted);
  EXPECT_EQ(off.coalesced, 0u);
}
