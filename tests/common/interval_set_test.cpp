#include "itoyori/common/interval_set.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace ic = ityr::common;

using ic::interval;
using ic::interval_set;

TEST(IntervalSet, StartsEmpty) {
  interval_set s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.count(), 0u);
}

TEST(IntervalSet, AddSingle) {
  interval_set s;
  s.add({10, 20});
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.size(), 10u);
  EXPECT_TRUE(s.contains({10, 20}));
  EXPECT_TRUE(s.contains({12, 15}));
  EXPECT_FALSE(s.contains({9, 11}));
  EXPECT_FALSE(s.contains({19, 21}));
}

TEST(IntervalSet, AddEmptyIsNoop) {
  interval_set s;
  s.add({5, 5});
  EXPECT_TRUE(s.empty());
  s.add({7, 3});
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, CoalescesAdjacent) {
  interval_set s;
  s.add({0, 10});
  s.add({10, 20});
  EXPECT_EQ(s.count(), 1u);
  EXPECT_TRUE(s.contains({0, 20}));
}

TEST(IntervalSet, CoalescesOverlapping) {
  interval_set s;
  s.add({0, 15});
  s.add({10, 30});
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.size(), 30u);
}

TEST(IntervalSet, AddBridgesGap) {
  interval_set s;
  s.add({0, 10});
  s.add({20, 30});
  EXPECT_EQ(s.count(), 2u);
  s.add({5, 25});
  EXPECT_EQ(s.count(), 1u);
  EXPECT_TRUE(s.contains({0, 30}));
}

TEST(IntervalSet, AddAbsorbsManyRuns) {
  interval_set s;
  for (std::uint64_t i = 0; i < 10; i++) s.add({i * 10, i * 10 + 5});
  EXPECT_EQ(s.count(), 10u);
  s.add({0, 100});
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.size(), 100u);
}

TEST(IntervalSet, SubtractMiddleSplits) {
  interval_set s;
  s.add({0, 30});
  s.subtract({10, 20});
  EXPECT_EQ(s.count(), 2u);
  EXPECT_TRUE(s.contains({0, 10}));
  EXPECT_TRUE(s.contains({20, 30}));
  EXPECT_FALSE(s.overlaps({10, 20}));
}

TEST(IntervalSet, SubtractHeadAndTail) {
  interval_set s;
  s.add({10, 30});
  s.subtract({0, 15});
  EXPECT_TRUE(s.contains({15, 30}));
  EXPECT_FALSE(s.overlaps({0, 15}));
  s.subtract({25, 40});
  EXPECT_TRUE(s.contains({15, 25}));
  EXPECT_EQ(s.size(), 10u);
}

TEST(IntervalSet, SubtractSpanningMultipleRuns) {
  interval_set s;
  s.add({0, 10});
  s.add({20, 30});
  s.add({40, 50});
  s.subtract({5, 45});
  EXPECT_EQ(s.count(), 2u);
  EXPECT_TRUE(s.contains({0, 5}));
  EXPECT_TRUE(s.contains({45, 50}));
}

TEST(IntervalSet, SubtractExact) {
  interval_set s;
  s.add({10, 20});
  s.subtract({10, 20});
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, SubtractFromEmpty) {
  interval_set s;
  s.subtract({0, 100});
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, OverlapsPartial) {
  interval_set s;
  s.add({10, 20});
  EXPECT_TRUE(s.overlaps({15, 25}));
  EXPECT_TRUE(s.overlaps({5, 11}));
  EXPECT_FALSE(s.overlaps({20, 30}));  // half-open: 20 not included
  EXPECT_FALSE(s.overlaps({0, 10}));
}

TEST(IntervalSet, MissingOfDisjointQuery) {
  interval_set s;
  s.add({10, 20});
  auto m = s.missing({30, 40});
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], (interval{30, 40}));
}

TEST(IntervalSet, MissingFullyCovered) {
  interval_set s;
  s.add({0, 100});
  EXPECT_TRUE(s.missing({10, 90}).empty());
}

TEST(IntervalSet, MissingWithHoles) {
  interval_set s;
  s.add({10, 20});
  s.add({30, 40});
  auto m = s.missing({0, 50});
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0], (interval{0, 10}));
  EXPECT_EQ(m[1], (interval{20, 30}));
  EXPECT_EQ(m[2], (interval{40, 50}));
}

TEST(IntervalSet, MissingClipsToQuery) {
  interval_set s;
  s.add({10, 20});
  auto m = s.missing({15, 35});
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], (interval{20, 35}));
}

TEST(IntervalSet, OverlappingPieces) {
  interval_set s;
  s.add({10, 20});
  s.add({30, 40});
  auto o = s.overlapping({15, 35});
  ASSERT_EQ(o.size(), 2u);
  EXPECT_EQ(o[0], (interval{15, 20}));
  EXPECT_EQ(o[1], (interval{30, 35}));
}

TEST(IntervalSet, ClearResets) {
  interval_set s;
  s.add({0, 10});
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.overlaps({0, 10}));
}

// Property test: interval_set must agree with a brute-force bitmap model
// under random add/subtract sequences.
class IntervalSetProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(IntervalSetProperty, MatchesBitmapModel) {
  constexpr std::uint64_t kUniverse = 256;
  std::mt19937_64 gen(GetParam());
  std::uniform_int_distribution<std::uint64_t> pos(0, kUniverse);

  interval_set s;
  std::vector<bool> model(kUniverse, false);

  for (int step = 0; step < 400; step++) {
    std::uint64_t a = pos(gen), b = pos(gen);
    if (a > b) std::swap(a, b);
    const bool do_add = gen() % 2 == 0;
    if (do_add) {
      s.add({a, b});
      for (auto i = a; i < b; i++) model[i] = true;
    } else {
      s.subtract({a, b});
      for (auto i = a; i < b; i++) model[i] = false;
    }

    // Sizes agree.
    const auto model_size =
        static_cast<std::uint64_t>(std::count(model.begin(), model.end(), true));
    ASSERT_EQ(s.size(), model_size) << "step " << step;

    // Random containment probes agree.
    for (int probe = 0; probe < 8; probe++) {
      std::uint64_t x = pos(gen), y = pos(gen);
      if (x > y) std::swap(x, y);
      bool all = true, any = false;
      for (auto i = x; i < y; i++) {
        all = all && model[i];
        any = any || model[i];
      }
      ASSERT_EQ(s.contains({x, y}), all || x == y);
      ASSERT_EQ(s.overlaps({x, y}), any);

      // missing() pieces exactly cover the false bits of the query.
      std::uint64_t missing_bytes = 0;
      for (const auto& iv : s.missing({x, y})) {
        ASSERT_LE(x, iv.begin);
        ASSERT_LE(iv.end, y);
        ASSERT_LT(iv.begin, iv.end);
        for (auto i = iv.begin; i < iv.end; i++) ASSERT_FALSE(model[i]);
        missing_bytes += iv.size();
      }
      std::uint64_t expect_missing = 0;
      for (auto i = x; i < y; i++) expect_missing += model[i] ? 0 : 1;
      ASSERT_EQ(missing_bytes, expect_missing);
    }

    // Runs are disjoint, sorted, and coalesced.
    auto v = s.to_vector();
    for (std::size_t i = 1; i < v.size(); i++) {
      ASSERT_LT(v[i - 1].end, v[i].begin);  // strictly separated (coalesced)
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetProperty,
                         ::testing::Values(1u, 2u, 3u, 7u, 1234u, 99999u));
