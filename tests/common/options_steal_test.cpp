#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "itoyori/common/options.hpp"

namespace ic = ityr::common;

// Startup validation of the steal-path knobs (ITYR_STEAL_POLICY /
// ITYR_STEAL_BATCH / ITYR_STEAL_ESCALATION_ROUNDS /
// ITYR_STEAL_ADAPTIVE_BACKOFF): round-trips through the environment and
// clear errors for malformed values.

namespace {

void clear_steal_env() {
  ::unsetenv("ITYR_STEAL_POLICY");
  ::unsetenv("ITYR_NODE_FIRST_PROB");
  ::unsetenv("ITYR_STEAL_BATCH");
  ::unsetenv("ITYR_STEAL_ESCALATION_ROUNDS");
  ::unsetenv("ITYR_STEAL_ADAPTIVE_BACKOFF");
}

}  // namespace

TEST(OptionsSteal, EnvDefaultsAreThePaperProtocol) {
  clear_steal_env();
  auto o = ic::options::from_env();
  // All three PR-9 knobs default off: random single-entry victim selection
  // with no per-victim suppression, bit-identical to pre-knob runs.
  EXPECT_EQ(o.steal, ic::steal_policy::random);
  EXPECT_EQ(o.steal_batch, 1u);
  EXPECT_FALSE(o.steal_adaptive_backoff);
  EXPECT_GE(o.steal_escalation_rounds, 1);
}

TEST(OptionsSteal, EnvRoundTrip) {
  clear_steal_env();
  ::setenv("ITYR_STEAL_POLICY", "hierarchical", 1);
  ::setenv("ITYR_STEAL_BATCH", "4", 1);
  ::setenv("ITYR_NODE_FIRST_PROB", "0.9", 1);
  ::setenv("ITYR_STEAL_ESCALATION_ROUNDS", "3", 1);
  ::setenv("ITYR_STEAL_ADAPTIVE_BACKOFF", "1", 1);
  auto o = ic::options::from_env();
  EXPECT_EQ(o.steal, ic::steal_policy::hierarchical);
  EXPECT_EQ(o.steal_batch, 4u);
  EXPECT_DOUBLE_EQ(o.node_first_prob, 0.9);
  EXPECT_EQ(o.steal_escalation_rounds, 3);
  EXPECT_TRUE(o.steal_adaptive_backoff);
  ::setenv("ITYR_STEAL_POLICY", "node_first", 1);
  ::setenv("ITYR_STEAL_ADAPTIVE_BACKOFF", "0", 1);
  auto o2 = ic::options::from_env();
  EXPECT_EQ(o2.steal, ic::steal_policy::node_first);
  EXPECT_FALSE(o2.steal_adaptive_backoff);
  clear_steal_env();
}

TEST(OptionsSteal, PolicyNamesRoundTripThroughStrings) {
  for (auto p : {ic::steal_policy::random, ic::steal_policy::node_first,
                 ic::steal_policy::hierarchical}) {
    EXPECT_EQ(ic::steal_policy_from_string(ic::to_string(p)), p);
  }
}

TEST(OptionsSteal, BogusPolicyThrows) {
  clear_steal_env();
  // Unknown enum names are API misuse (api_error), matching the other
  // enum-valued knobs; out-of-range numerics below are ic::error.
  ::setenv("ITYR_STEAL_POLICY", "nearest_neighbor", 1);
  EXPECT_THROW(ic::options::from_env(), ic::api_error);
  try {
    ic::options::from_env();
    FAIL() << "expected ic::api_error";
  } catch (const ic::api_error& e) {
    // The message lists the legal policy names so a typo is diagnosable from
    // the exception alone.
    EXPECT_NE(std::string(e.what()).find("hierarchical"), std::string::npos);
  }
  clear_steal_env();
}

TEST(OptionsSteal, ZeroBatchThrows) {
  clear_steal_env();
  ::setenv("ITYR_STEAL_BATCH", "0", 1);
  EXPECT_THROW(ic::options::from_env(), ic::error);
  try {
    ic::options::from_env();
    FAIL() << "expected ic::error";
  } catch (const ic::error& e) {
    EXPECT_NE(std::string(e.what()).find("ITYR_STEAL_BATCH"), std::string::npos);
  }
  clear_steal_env();
}

TEST(OptionsSteal, OutOfRangeProbThrows) {
  clear_steal_env();
  ::setenv("ITYR_NODE_FIRST_PROB", "1.5", 1);
  EXPECT_THROW(ic::options::from_env(), ic::error);
  ::setenv("ITYR_NODE_FIRST_PROB", "-0.1", 1);
  EXPECT_THROW(ic::options::from_env(), ic::error);
  ::setenv("ITYR_NODE_FIRST_PROB", "1.0", 1);  // boundary is legal
  EXPECT_DOUBLE_EQ(ic::options::from_env().node_first_prob, 1.0);
  clear_steal_env();
}

TEST(OptionsSteal, ZeroEscalationRoundsThrows) {
  clear_steal_env();
  ::setenv("ITYR_STEAL_ESCALATION_ROUNDS", "0", 1);
  EXPECT_THROW(ic::options::from_env(), ic::error);
  try {
    ic::options::from_env();
    FAIL() << "expected ic::error";
  } catch (const ic::error& e) {
    EXPECT_NE(std::string(e.what()).find("ITYR_STEAL_ESCALATION_ROUNDS"), std::string::npos);
  }
  ::setenv("ITYR_STEAL_ESCALATION_ROUNDS", "1", 1);  // boundary is legal
  EXPECT_EQ(ic::options::from_env().steal_escalation_rounds, 1);
  clear_steal_env();
}

TEST(OptionsSteal, ValidateDirectly) {
  // The validator is callable on programmatically built options too (benches
  // and tests construct options without from_env).
  EXPECT_NO_THROW(ic::validate_steal(1, 1, 0.0));
  EXPECT_NO_THROW(ic::validate_steal(64, 3, 0.9));
  EXPECT_THROW(ic::validate_steal(0, 3, 0.5), ic::error);
  EXPECT_THROW(ic::validate_steal(1, 0, 0.5), ic::error);
  EXPECT_THROW(ic::validate_steal(1, 3, 1.5), ic::error);
}
