#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "itoyori/common/lru_list.hpp"
#include "itoyori/common/rng.hpp"

namespace ic = ityr::common;

TEST(Rng, DeterministicForSameSeed) {
  ic::xoshiro256ss a(123), b(123);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  ic::xoshiro256ss a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; i++) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  ic::xoshiro256ss g(7);
  for (int i = 0; i < 1000; i++) {
    EXPECT_LT(g.below(10), 10u);
    EXPECT_EQ(g.below(1), 0u);
  }
}

TEST(Rng, BelowCoversRange) {
  ic::xoshiro256ss g(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; i++) seen.insert(g.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval) {
  ic::xoshiro256ss g(3);
  double sum = 0;
  for (int i = 0; i < 10000; i++) {
    double u = g.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

namespace {
struct item : ic::lru_hook {
  explicit item(int v) : value(v) {}
  int value;
};
}  // namespace

TEST(LruList, PushAndEvictOrder) {
  ic::lru_list l;
  item a(1), b(2), c(3);
  l.push_back(a);
  l.push_back(b);
  l.push_back(c);
  EXPECT_EQ(l.size(), 3u);
  EXPECT_EQ(static_cast<item*>(l.lru())->value, 1);
}

TEST(LruList, TouchMovesToMru) {
  ic::lru_list l;
  item a(1), b(2), c(3);
  l.push_back(a);
  l.push_back(b);
  l.push_back(c);
  l.touch(a);
  EXPECT_EQ(static_cast<item*>(l.lru())->value, 2);
  l.touch(b);
  EXPECT_EQ(static_cast<item*>(l.lru())->value, 3);
}

TEST(LruList, EraseUnlinks) {
  ic::lru_list l;
  item a(1), b(2);
  l.push_back(a);
  l.push_back(b);
  l.erase(a);
  EXPECT_FALSE(a.linked());
  EXPECT_EQ(l.size(), 1u);
  EXPECT_EQ(static_cast<item*>(l.lru())->value, 2);
  l.erase(b);
  EXPECT_TRUE(l.empty());
  EXPECT_EQ(l.lru(), nullptr);
}

TEST(LruList, FindFromLruScansInOrder) {
  ic::lru_list l;
  item a(1), b(2), c(3);
  l.push_back(a);
  l.push_back(b);
  l.push_back(c);
  std::vector<int> order;
  l.find_from_lru([&](ic::lru_hook& h) {
    order.push_back(static_cast<item&>(h).value);
    return false;
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));

  auto* hit = l.find_from_lru([](ic::lru_hook& h) { return static_cast<item&>(h).value == 2; });
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(static_cast<item*>(hit)->value, 2);
}
