#include "itoyori/common/trace.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ityr::common {
namespace {

tracer make_tracer(int n_ranks = 2, int rpn = 2, std::size_t cap = 1 << 10) {
  tracer t;
  t.configure(n_ranks, rpn, cap);
  t.set_enabled(true);
  return t;
}

TEST(TraceTest, DisabledRecordsNothing) {
  tracer t;
  t.configure(2, 2, 1 << 10);
  ASSERT_FALSE(t.enabled());
  t.span_begin(0, 0.0, "A");
  t.span_end(0, 1.0, "A");
  t.instant(1, 0.5, "X");
  EXPECT_EQ(t.flow(0, 0.1, 1, 0.2, "F"), 0u);
  t.counter(0, 0.3, "c", 1.0);
  EXPECT_EQ(t.total_events(), 0u);
}

TEST(TraceTest, SpanNestingRoundTrip) {
  tracer t = make_tracer();
  t.span_begin(0, 0.0, "Outer");
  t.span_begin(0, 0.25, "Inner");
  t.instant(0, 0.5, "tick");
  t.span_end(0, 0.75, "Inner");
  t.span_end(0, 1.0, "Outer");
  t.span_begin(1, 0.0, "Other");
  t.span_end(1, 2.0, "Other");

  const auto r = validate_trace_json(t.to_json());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.n_spans, 3u);
  EXPECT_EQ(r.n_flows, 0u);
}

TEST(TraceTest, OpenSpansClosedAtDump) {
  tracer t = make_tracer();
  t.span_begin(0, 0.0, "Outer");
  t.span_begin(0, 0.5, "Inner");
  t.instant(0, 1.0, "last");
  // Neither span ended: the dump must auto-close both at the rank's last
  // timestamp so the checker still sees balanced pairs.
  const auto r = validate_trace_json(t.to_json());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.n_spans, 2u);
}

TEST(TraceTest, CapEvictionCountsAndRepairs) {
  tracer t;
  t.configure(1, 1, tracer::min_cap);
  t.set_enabled(true);
  // 3x the cap of nested spans: the oldest begins are evicted, leaving
  // orphan end events the dump has to skip.
  const int total = static_cast<int>(tracer::min_cap) * 3;
  for (int i = 0; i < total; i++) {
    t.span_begin(0, i * 1.0, "S");
    t.span_end(0, i * 1.0 + 0.5, "S");
  }
  EXPECT_EQ(t.n_events(0), tracer::min_cap);
  EXPECT_EQ(t.dropped(0), static_cast<std::uint64_t>(2 * total - tracer::min_cap));
  EXPECT_EQ(t.total_dropped(), t.dropped(0));

  const auto r = validate_trace_json(t.to_json());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.n_spans, 0u);
}

TEST(TraceTest, CapIsClamped) {
  tracer t;
  t.configure(1, 1, 0);  // malformed ITYR_TRACE_CAP parses as 0
  t.set_enabled(true);
  for (int i = 0; i < 100; i++) t.instant(0, i * 1.0, "x");
  EXPECT_EQ(t.n_events(0), tracer::min_cap);
  EXPECT_EQ(t.dropped(0), 100u - tracer::min_cap);
}

TEST(TraceTest, FlowPairingSurvivesDump) {
  tracer t = make_tracer();
  const auto id1 = t.flow(0, 0.1, 1, 0.2, "steal");
  const auto id2 = t.flow(1, 0.3, 0, 0.4, "rma");
  EXPECT_NE(id1, 0u);
  EXPECT_NE(id2, id1);

  const auto r = validate_trace_json(t.to_json());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.n_flows, 2u);
}

TEST(TraceTest, HalfEvictedFlowIsDropped) {
  // Rank 0 has min_cap capacity; record a flow, then push enough events on
  // rank 0 to evict its flow_start half. The dump must then drop the
  // surviving flow_finish on rank 1 too, or the checker would reject the
  // trace as having an unpaired flow.
  tracer t;
  t.configure(2, 2, tracer::min_cap);
  t.set_enabled(true);
  t.flow(0, 0.0, 1, 0.1, "steal");
  for (int i = 0; i < static_cast<int>(tracer::min_cap) + 4; i++) {
    t.instant(0, 1.0 + i, "x");
  }
  EXPECT_GT(t.dropped(0), 0u);

  const auto r = validate_trace_json(t.to_json());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.n_flows, 0u);
}

TEST(TraceTest, CounterSamplesAndPolling) {
  tracer t = make_tracer();
  int fired = 0;
  t.set_sample_interval(1.0);
  t.set_sampler([&](int rank, double now) {
    fired++;
    t.counter(rank, now, "c", static_cast<double>(fired));
  });
  t.poll_sample(0, 0.0);   // fires (first sample)
  t.poll_sample(0, 0.5);   // within interval: no fire
  t.poll_sample(0, 1.25);  // fires
  EXPECT_EQ(fired, 2);

  const auto r = validate_trace_json(t.to_json());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.n_counters, 2u);
}

TEST(TraceTest, SamplingDisabledByNonPositiveInterval) {
  tracer t = make_tracer();
  int fired = 0;
  t.set_sample_interval(0.0);  // malformed env value parses as 0 -> disabled
  t.set_sampler([&](int, double) { fired++; });
  t.poll_sample(0, 0.0);
  t.poll_sample(0, 10.0);
  EXPECT_EQ(fired, 0);
}

TEST(TraceTest, ClearResets) {
  tracer t = make_tracer();
  t.span_begin(0, 0.0, "A");
  t.span_end(0, 1.0, "A");
  EXPECT_GT(t.total_events(), 0u);
  t.clear();
  EXPECT_EQ(t.total_events(), 0u);
  EXPECT_EQ(t.total_dropped(), 0u);
}

// ---- validate_trace_json on handcrafted inputs ----

std::string wrap(const std::string& events) { return "{\"traceEvents\": [" + events + "]}"; }

TEST(TraceCheckTest, AcceptsMinimalValidTrace) {
  const auto r = validate_trace_json(
      wrap("{\"ph\": \"B\", \"pid\": 0, \"tid\": 0, \"ts\": 0.0, \"name\": \"A\"},"
           "{\"ph\": \"E\", \"pid\": 0, \"tid\": 0, \"ts\": 1.0, \"name\": \"A\"}"));
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.n_spans, 1u);
}

TEST(TraceCheckTest, RejectsMalformedJson) {
  EXPECT_FALSE(validate_trace_json("{\"traceEvents\": [").ok);
  EXPECT_FALSE(validate_trace_json("not json").ok);
  EXPECT_FALSE(validate_trace_json("{}").ok);  // no traceEvents
  EXPECT_FALSE(validate_trace_json(wrap("") + "garbage").ok);
}

TEST(TraceCheckTest, RejectsNameMismatchedEnd) {
  const auto r = validate_trace_json(
      wrap("{\"ph\": \"B\", \"pid\": 0, \"tid\": 0, \"ts\": 0.0, \"name\": \"A\"},"
           "{\"ph\": \"E\", \"pid\": 0, \"tid\": 0, \"ts\": 1.0, \"name\": \"B\"}"));
  EXPECT_FALSE(r.ok);
}

TEST(TraceCheckTest, RejectsUnclosedSpan) {
  const auto r = validate_trace_json(
      wrap("{\"ph\": \"B\", \"pid\": 0, \"tid\": 0, \"ts\": 0.0, \"name\": \"A\"}"));
  EXPECT_FALSE(r.ok);
}

TEST(TraceCheckTest, RejectsEndWithoutBegin) {
  const auto r = validate_trace_json(
      wrap("{\"ph\": \"E\", \"pid\": 0, \"tid\": 0, \"ts\": 0.0, \"name\": \"A\"}"));
  EXPECT_FALSE(r.ok);
}

TEST(TraceCheckTest, RejectsUnpairedFlow) {
  const auto r = validate_trace_json(
      wrap("{\"ph\": \"s\", \"pid\": 0, \"tid\": 0, \"ts\": 0.0, \"name\": \"F\", \"id\": 1}"));
  EXPECT_FALSE(r.ok);
}

TEST(TraceCheckTest, TracksAreIndependent) {
  // Overlapping spans on different (pid,tid) tracks are fine.
  const auto r = validate_trace_json(
      wrap("{\"ph\": \"B\", \"pid\": 0, \"tid\": 0, \"ts\": 0.0, \"name\": \"A\"},"
           "{\"ph\": \"B\", \"pid\": 0, \"tid\": 1, \"ts\": 0.5, \"name\": \"B\"},"
           "{\"ph\": \"E\", \"pid\": 0, \"tid\": 0, \"ts\": 1.0, \"name\": \"A\"},"
           "{\"ph\": \"E\", \"pid\": 0, \"tid\": 1, \"ts\": 1.5, \"name\": \"B\"}"));
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.n_spans, 2u);
}

// ---- phase_timeline ----

TEST(PhaseTimelineTest, AccountsPhases) {
  phase_timeline tl;
  tl.configure(2);

  tl.begin_region(0, 0.0);
  tl.enter(0, phase_timeline::phase::busy, 1.0);   // idle [0,1)
  tl.enter(0, phase_timeline::phase::steal, 3.0);  // busy [1,3)
  tl.enter(0, phase_timeline::phase::busy, 3.5);   // steal [3,3.5)
  tl.end_region(0, 4.0);                           // busy [3.5,4)

  tl.begin_region(1, 0.0);
  tl.enter(1, phase_timeline::phase::busy, 0.0);
  tl.end_region(1, 4.0);

  EXPECT_DOUBLE_EQ(tl.idle_of(0), 1.0);
  EXPECT_DOUBLE_EQ(tl.busy_of(0), 2.5);
  EXPECT_DOUBLE_EQ(tl.steal_of(0), 0.5);
  EXPECT_DOUBLE_EQ(tl.busy_of(1), 4.0);
  EXPECT_DOUBLE_EQ(tl.total_busy(), 6.5);
  EXPECT_DOUBLE_EQ(tl.total_steal(), 0.5);
  EXPECT_DOUBLE_EQ(tl.total_idle(), 1.0);
  EXPECT_DOUBLE_EQ(tl.makespan(), 4.0);
  // 1 - 6.5 / (2 * 4)
  EXPECT_NEAR(tl.idleness(), 1.0 - 6.5 / 8.0, 1e-12);
}

TEST(PhaseTimelineTest, EnterIsIdempotentAndRegionGated) {
  phase_timeline tl;
  tl.configure(1);
  // Before begin_region: transitions are ignored.
  tl.enter(0, phase_timeline::phase::busy, 1.0);
  EXPECT_DOUBLE_EQ(tl.busy_of(0), 0.0);

  tl.begin_region(0, 0.0);
  tl.enter(0, phase_timeline::phase::busy, 1.0);
  tl.enter(0, phase_timeline::phase::busy, 2.0);  // no-op, stays since t=1
  tl.end_region(0, 3.0);
  EXPECT_DOUBLE_EQ(tl.busy_of(0), 2.0);

  // end_region is final until the next begin_region.
  tl.enter(0, phase_timeline::phase::busy, 3.0);
  tl.end_region(0, 5.0);
  EXPECT_DOUBLE_EQ(tl.busy_of(0), 2.0);
}

TEST(PhaseTimelineTest, BeginRegionResets) {
  phase_timeline tl;
  tl.configure(1);
  tl.begin_region(0, 0.0);
  tl.enter(0, phase_timeline::phase::busy, 0.0);
  tl.end_region(0, 2.0);
  EXPECT_DOUBLE_EQ(tl.busy_of(0), 2.0);

  tl.begin_region(0, 10.0);
  tl.enter(0, phase_timeline::phase::busy, 10.5);
  tl.end_region(0, 11.0);
  EXPECT_DOUBLE_EQ(tl.busy_of(0), 0.5);
  EXPECT_DOUBLE_EQ(tl.idle_of(0), 0.5);
  EXPECT_DOUBLE_EQ(tl.makespan(), 1.0);
}

TEST(PhaseTimelineTest, StealIdleStealRoundTrip) {
  // Regression: the worker loop's steal backoff transitions steal -> idle ->
  // steal repeatedly; each leg must be attributed to the phase that was
  // active, never double-counted or dropped.
  phase_timeline tl;
  tl.configure(1);

  tl.begin_region(0, 0.0);
  tl.enter(0, phase_timeline::phase::steal, 1.0);  // idle  [0,1)
  tl.enter(0, phase_timeline::phase::idle, 3.0);   // steal [1,3)
  tl.enter(0, phase_timeline::phase::steal, 4.0);  // idle  [3,4)
  tl.enter(0, phase_timeline::phase::busy, 6.0);   // steal [4,6)
  tl.end_region(0, 7.0);                           // busy  [6,7)

  EXPECT_DOUBLE_EQ(tl.busy_of(0), 1.0);
  EXPECT_DOUBLE_EQ(tl.steal_of(0), 4.0);
  EXPECT_DOUBLE_EQ(tl.idle_of(0), 2.0);
  EXPECT_DOUBLE_EQ(tl.makespan(), 7.0);
}

TEST(PhaseTimelineTest, RejectsTimeGoingBackwards) {
  // Virtual time is monotone per rank; a transition stamped before the
  // current phase began can only be an accounting bug upstream.
  phase_timeline tl;
  tl.configure(1);
  tl.begin_region(0, 0.0);
  tl.enter(0, phase_timeline::phase::busy, 2.0);
  EXPECT_DEATH(tl.enter(0, phase_timeline::phase::idle, 1.0), "");
}

TEST(PhaseTimelineTest, EmitsBusySpansIntoTracer) {
  tracer t = make_tracer(1, 1);
  phase_timeline tl;
  tl.configure(1);
  tl.set_tracer(&t);

  tl.begin_region(0, 0.0);
  tl.enter(0, phase_timeline::phase::busy, 1.0);
  tl.enter(0, phase_timeline::phase::idle, 2.0);
  tl.enter(0, phase_timeline::phase::busy, 3.0);
  tl.end_region(0, 4.0);

  const auto r = validate_trace_json(t.to_json());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.n_spans, 2u);  // two "Busy" slices
}

}  // namespace
}  // namespace ityr::common
