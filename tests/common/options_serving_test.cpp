#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "itoyori/common/options.hpp"

namespace ic = ityr::common;

// Startup validation of the multi-job serving knobs (ITYR_SERVE /
// ITYR_SERVE_ARRIVAL_RATE / ITYR_SERVE_JOBS / ITYR_SERVE_MIX /
// ITYR_STEAL_FAIRNESS / ITYR_CACHE_JOB_QUOTA): round-trips through the
// environment and clear errors for malformed values.

namespace {

void clear_serving_env() {
  ::unsetenv("ITYR_SERVE");
  ::unsetenv("ITYR_SERVE_ARRIVAL_RATE");
  ::unsetenv("ITYR_SERVE_JOBS");
  ::unsetenv("ITYR_SERVE_MIX");
  ::unsetenv("ITYR_STEAL_FAIRNESS");
  ::unsetenv("ITYR_CACHE_JOB_QUOTA");
}

}  // namespace

TEST(OptionsServing, EnvDefaultsAreSingleJobMode) {
  clear_serving_env();
  auto o = ic::options::from_env();
  // Everything defaults off: one root task per region, no fairness scan, no
  // quota — bit-identical to pre-serving runs (the differential test pins
  // the off path down).
  EXPECT_FALSE(o.serve);
  EXPECT_DOUBLE_EQ(o.serve_arrival_rate, 1000.0);
  EXPECT_EQ(o.serve_jobs, 16u);
  EXPECT_EQ(o.serve_mix, "cilksort");
  EXPECT_EQ(o.steal_fairness, ic::steal_fairness_kind::off);
  EXPECT_EQ(o.cache_job_quota, 0u);
}

TEST(OptionsServing, EnvRoundTrip) {
  clear_serving_env();
  ::setenv("ITYR_SERVE", "1", 1);
  ::setenv("ITYR_SERVE_ARRIVAL_RATE", "250.5", 1);
  ::setenv("ITYR_SERVE_JOBS", "32", 1);
  ::setenv("ITYR_SERVE_MIX", "cilksort:3,uts:1,taskbench:2", 1);
  ::setenv("ITYR_STEAL_FAIRNESS", "job_weighted", 1);
  ::setenv("ITYR_CACHE_JOB_QUOTA", "65536", 1);
  auto o = ic::options::from_env();
  EXPECT_TRUE(o.serve);
  EXPECT_DOUBLE_EQ(o.serve_arrival_rate, 250.5);
  EXPECT_EQ(o.serve_jobs, 32u);
  EXPECT_EQ(o.serve_mix, "cilksort:3,uts:1,taskbench:2");
  EXPECT_EQ(o.steal_fairness, ic::steal_fairness_kind::job_weighted);
  EXPECT_EQ(o.cache_job_quota, 65536u);
  ::setenv("ITYR_STEAL_FAIRNESS", "off", 1);
  ::setenv("ITYR_SERVE", "0", 1);
  auto o2 = ic::options::from_env();
  EXPECT_FALSE(o2.serve);
  EXPECT_EQ(o2.steal_fairness, ic::steal_fairness_kind::off);
  clear_serving_env();
}

TEST(OptionsServing, FairnessNamesRoundTripThroughStrings) {
  for (auto k : {ic::steal_fairness_kind::off, ic::steal_fairness_kind::job_weighted}) {
    EXPECT_EQ(ic::steal_fairness_from_string(ic::to_string(k)), k);
  }
}

TEST(OptionsServing, BogusFairnessThrows) {
  clear_serving_env();
  // Unknown enum names are API misuse (api_error), matching the other
  // enum-valued knobs; out-of-range numerics below are ic::error.
  ::setenv("ITYR_STEAL_FAIRNESS", "round_robin", 1);
  EXPECT_THROW(ic::options::from_env(), ic::api_error);
  try {
    ic::options::from_env();
    FAIL() << "expected ic::api_error";
  } catch (const ic::api_error& e) {
    // The message lists the legal names so a typo is diagnosable from the
    // exception alone.
    EXPECT_NE(std::string(e.what()).find("job_weighted"), std::string::npos);
  }
  clear_serving_env();
}

TEST(OptionsServing, NonPositiveArrivalRateThrows) {
  clear_serving_env();
  ::setenv("ITYR_SERVE_ARRIVAL_RATE", "0", 1);
  EXPECT_THROW(ic::options::from_env(), ic::error);
  ::setenv("ITYR_SERVE_ARRIVAL_RATE", "-5.0", 1);
  EXPECT_THROW(ic::options::from_env(), ic::error);
  try {
    ic::options::from_env();
    FAIL() << "expected ic::error";
  } catch (const ic::error& e) {
    EXPECT_NE(std::string(e.what()).find("ITYR_SERVE_ARRIVAL_RATE"), std::string::npos);
  }
  clear_serving_env();
}

TEST(OptionsServing, ZeroJobsThrowsOnlyWhenServing) {
  clear_serving_env();
  // serve_jobs = 0 is only meaningful (and only rejected) when ITYR_SERVE is
  // on; off, the driver never reads it.
  ::setenv("ITYR_SERVE_JOBS", "0", 1);
  EXPECT_NO_THROW(ic::options::from_env());
  ::setenv("ITYR_SERVE", "1", 1);
  EXPECT_THROW(ic::options::from_env(), ic::error);
  try {
    ic::options::from_env();
    FAIL() << "expected ic::error";
  } catch (const ic::error& e) {
    EXPECT_NE(std::string(e.what()).find("ITYR_SERVE_JOBS"), std::string::npos);
  }
  clear_serving_env();
}

TEST(OptionsServing, MalformedMixThrows) {
  clear_serving_env();
  // Unknown workload name.
  ::setenv("ITYR_SERVE_MIX", "quicksort", 1);
  EXPECT_THROW(ic::options::from_env(), ic::api_error);
  // Empty token (trailing comma).
  ::setenv("ITYR_SERVE_MIX", "cilksort,", 1);
  EXPECT_THROW(ic::options::from_env(), ic::api_error);
  // Non-numeric and non-positive weights.
  ::setenv("ITYR_SERVE_MIX", "cilksort:lots", 1);
  EXPECT_THROW(ic::options::from_env(), ic::api_error);
  ::setenv("ITYR_SERVE_MIX", "uts:0", 1);
  EXPECT_THROW(ic::options::from_env(), ic::api_error);
  try {
    ic::options::from_env();
    FAIL() << "expected ic::api_error";
  } catch (const ic::api_error& e) {
    EXPECT_NE(std::string(e.what()).find("ITYR_SERVE_MIX"), std::string::npos);
  }
  clear_serving_env();
}

TEST(OptionsServing, MixParsesNamesAndWeights) {
  const auto mix = ic::parse_serve_mix("cilksort:3,uts,taskbench:2");
  ASSERT_EQ(mix.size(), 3u);
  EXPECT_EQ(mix[0].first, "cilksort");
  EXPECT_EQ(mix[0].second, 3);
  EXPECT_EQ(mix[1].first, "uts");
  EXPECT_EQ(mix[1].second, 1);  // weight defaults to 1
  EXPECT_EQ(mix[2].first, "taskbench");
  EXPECT_EQ(mix[2].second, 2);
}

TEST(OptionsServing, ValidateDirectly) {
  // The validator is callable on programmatically built options too (benches
  // and tests construct options without from_env).
  EXPECT_NO_THROW(ic::validate_serving(false, 1000.0, 16, "cilksort"));
  EXPECT_NO_THROW(ic::validate_serving(true, 0.5, 1, "cilksort:2,uts"));
  EXPECT_THROW(ic::validate_serving(true, 0.0, 16, "cilksort"), ic::error);
  EXPECT_THROW(ic::validate_serving(true, 1000.0, 0, "cilksort"), ic::error);
  EXPECT_THROW(ic::validate_serving(false, 1000.0, 16, "bogus"), ic::api_error);
}
