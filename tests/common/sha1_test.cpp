#include "itoyori/common/sha1.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace {

std::string hex(const ityr::common::sha1::digest_type& d) {
  static const char* k = "0123456789abcdef";
  std::string s;
  for (auto b : d) {
    s += k[b >> 4];
    s += k[b & 0xf];
  }
  return s;
}

std::string sha1_hex(const std::string& msg) {
  return hex(ityr::common::sha1::hash(msg.data(), msg.size()));
}

}  // namespace

// FIPS 180-1 / well-known test vectors.
TEST(Sha1, EmptyString) {
  EXPECT_EQ(sha1_hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(sha1_hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(sha1_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  ityr::common::sha1 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; i++) h.update(chunk.data(), chunk.size());
  EXPECT_EQ(hex(h.finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, QuickBrownFox) {
  EXPECT_EQ(sha1_hex("The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

// Incremental updates with odd split points must agree with one-shot.
TEST(Sha1, IncrementalSplitsAgree) {
  const std::string msg =
      "Itoyori is the Japanese name of the fish threadfin breams. "
      "0123456789 0123456789 0123456789 0123456789 0123456789";
  const auto ref = sha1_hex(msg);
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    ityr::common::sha1 h;
    h.update(msg.data(), split);
    h.update(msg.data() + split, msg.size() - split);
    EXPECT_EQ(hex(h.finish()), ref) << "split=" << split;
  }
}

// Boundary lengths around the 64-byte block / 56-byte padding threshold.
TEST(Sha1, PaddingBoundaries) {
  for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string m(len, 'x');
    ityr::common::sha1 a;
    a.update(m.data(), m.size());
    auto one = hex(a.finish());

    ityr::common::sha1 b;
    for (char c : m) b.update(&c, 1);
    auto bytewise = hex(b.finish());
    EXPECT_EQ(one, bytewise) << "len=" << len;
  }
}

TEST(Sha1, ResetReusesObject) {
  ityr::common::sha1 h;
  h.update("garbage", 7);
  h.reset();
  h.update("abc", 3);
  EXPECT_EQ(hex(h.finish()), "a9993e364706816aba3e25717850c26c9cd0d89d");
}
