// Unit tests for the mergeable log2-bucketed histogram behind the hist.*
// metrics (docs/observability.md): bucket geometry, percentile bounds, and
// the merge algebra that per-rank collection relies on — merging must be
// associative and independent of rank order, or the finalize-time collapse
// of O(1000) per-rank histograms would not be deterministic.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "itoyori/common/histogram.hpp"
#include "itoyori/common/rng.hpp"

namespace {

using ityr::common::log_histogram;

TEST(Histogram, BucketGeometryAndEdgeCases) {
  log_histogram h(8, 1.0);
  ASSERT_EQ(h.n_buckets(), 8u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 4.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(3), 8.0);

  h.record(0.5);     // below the floor -> bucket 0
  h.record(1.0);     // == min_value: intervals are lo-open, so bucket 0
  h.record(1.5);     // (1, 2]  -> bucket 1
  h.record(2.0);     // exact power of two belongs to the lower bucket
  h.record(2.0001);  // (2, 4]  -> bucket 2
  h.record(1.0e30);  // beyond the range -> clamped into the last bucket
  h.record(-3.0);    // negatives -> bucket 0 (never out of range)
  h.record(0.0);     // zero -> bucket 0

  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.bucket_count(0), 4u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(7), 1u);

  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < h.n_buckets(); i++) sum += h.bucket_count(i);
  EXPECT_EQ(sum, h.count());
}

TEST(Histogram, ConfigureClampsGeometry) {
  log_histogram lo(2, 1.0);
  EXPECT_EQ(lo.n_buckets(), 4u);  // floor of the valid ITYR_HIST_BUCKETS range
  log_histogram hi(100000, 1.0);
  EXPECT_EQ(hi.n_buckets(), 512u);  // ceiling
  log_histogram bad(16, -5.0);
  EXPECT_GT(bad.min_value(), 0.0);  // nonsense floors fall back to the default

  bad.record(1.0);
  EXPECT_EQ(bad.count(), 1u);
  bad.configure(16, 1.0);  // re-geometry drops counts
  EXPECT_EQ(bad.count(), 0u);
}

TEST(Histogram, PercentileStaysInsideSampleBucketAndIsMonotone) {
  // All samples equal: every percentile must land inside that value's bucket.
  log_histogram h(16, 1.0);
  for (int i = 0; i < 100; i++) h.record(3.7);  // bucket (2, 4]
  for (double p : {1.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_GT(h.percentile(p), 2.0) << "p" << p;
    EXPECT_LE(h.percentile(p), 4.0) << "p" << p;
  }

  // Random samples: percentiles are monotone non-decreasing in p and bounded
  // by the overall range of the histogram.
  log_histogram r(48, 1.0e-9);
  ityr::common::xoshiro256ss rng(7);
  for (int i = 0; i < 1000; i++) {
    r.record(1.0e-9 * std::exp2(rng.uniform() * 30.0));  // spread over 30 octaves
  }
  double prev = 0.0;
  for (double p = 0.0; p <= 100.0; p += 5.0) {
    const double v = r.percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    EXPECT_LE(v, r.bucket_hi(r.n_buckets() - 1));
    prev = v;
  }

  log_histogram empty(8, 1.0);
  EXPECT_DOUBLE_EQ(empty.percentile(50.0), 0.0);
}

TEST(Histogram, MergeIsAssociativeAndRankOrderIndependent) {
  // Six "per-rank" histograms with different contents.
  constexpr int n_ranks = 6;
  std::vector<log_histogram> per_rank(n_ranks, log_histogram(48, 1.0e-9));
  ityr::common::xoshiro256ss rng(42);
  for (int r = 0; r < n_ranks; r++) {
    const int n = 50 + static_cast<int>(rng.below(200));
    for (int i = 0; i < n; i++) {
      per_rank[static_cast<std::size_t>(r)].record(1.0e-9 * std::exp2(rng.uniform() * 25.0));
    }
  }

  // (a + b) + c == a + (b + c).
  log_histogram left(48, 1.0e-9);
  left.merge(per_rank[0]);
  left.merge(per_rank[1]);  // (a + b)
  left.merge(per_rank[2]);  // ... + c
  log_histogram bc(48, 1.0e-9);
  bc.merge(per_rank[1]);
  bc.merge(per_rank[2]);  // (b + c)
  log_histogram right(48, 1.0e-9);
  right.merge(per_rank[0]);
  right.merge(bc);  // a + ...
  EXPECT_EQ(left.buckets(), right.buckets());
  EXPECT_EQ(left.count(), right.count());

  // Merging all ranks in any permutation yields bit-identical counts and
  // therefore bit-identical percentiles.
  std::vector<int> order(n_ranks);
  std::iota(order.begin(), order.end(), 0);
  log_histogram forward(48, 1.0e-9);
  for (int r : order) forward.merge(per_rank[static_cast<std::size_t>(r)]);
  for (int perm = 0; perm < 10; perm++) {
    std::next_permutation(order.begin(), order.end());
    log_histogram shuffled(48, 1.0e-9);
    for (int r : order) shuffled.merge(per_rank[static_cast<std::size_t>(r)]);
    ASSERT_EQ(forward.buckets(), shuffled.buckets()) << "permutation " << perm;
    for (double p : {50.0, 90.0, 99.0}) {
      ASSERT_DOUBLE_EQ(forward.percentile(p), shuffled.percentile(p)) << "p" << p;
    }
  }
}

TEST(Histogram, SubtractRecoversRegionDelta) {
  log_histogram base(16, 1.0);
  base.record(1.5);
  base.record(3.0);

  log_histogram now = base;
  now.record(3.5);
  now.record(100.0);
  now.record(0.2);

  log_histogram d = now;
  d.subtract(base);
  EXPECT_EQ(d.count(), 3u);
  EXPECT_EQ(d.bucket_count(0), 1u);  // 0.2
  EXPECT_EQ(d.bucket_count(2), 1u);  // 3.5 in (2, 4]
  EXPECT_EQ(d.bucket_count(7), 1u);  // 100 in (64, 128]

  // Subtracting a superset saturates at zero instead of wrapping.
  log_histogram z = base;
  z.subtract(now);
  EXPECT_EQ(z.count(), 0u);
  for (std::size_t i = 0; i < z.n_buckets(); i++) EXPECT_EQ(z.bucket_count(i), 0u);
}

}  // namespace
