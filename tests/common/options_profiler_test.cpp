#include <gtest/gtest.h>

#include <cstdlib>

#include "itoyori/common/options.hpp"
#include "itoyori/common/profiler.hpp"
#include "itoyori/common/trace.hpp"

namespace ic = ityr::common;

TEST(Options, DefaultsAreSane) {
  ic::options o;
  EXPECT_EQ(o.n_ranks(), o.n_nodes * o.ranks_per_node);
  EXPECT_GT(o.block_size, 0u);
  EXPECT_EQ(o.block_size % o.sub_block_size, 0u);
  EXPECT_GE(o.cache_size, o.block_size);
  EXPECT_EQ(o.policy, ic::cache_policy::write_back_lazy);
}

TEST(Options, FromEnvOverrides) {
  ::setenv("ITYR_N_NODES", "7", 1);
  ::setenv("ITYR_RANKS_PER_NODE", "3", 1);
  ::setenv("ITYR_POLICY", "write_through", 1);
  ::setenv("ITYR_CACHE_SIZE", "1048576", 1);
  ::setenv("ITYR_DETERMINISTIC", "1", 1);
  ::setenv("ITYR_SEED", "999", 1);
  auto o = ic::options::from_env();
  EXPECT_EQ(o.n_nodes, 7);
  EXPECT_EQ(o.ranks_per_node, 3);
  EXPECT_EQ(o.n_ranks(), 21);
  EXPECT_EQ(o.policy, ic::cache_policy::write_through);
  EXPECT_EQ(o.cache_size, 1048576u);
  EXPECT_TRUE(o.deterministic);
  EXPECT_EQ(o.seed, 999u);
  ::unsetenv("ITYR_N_NODES");
  ::unsetenv("ITYR_RANKS_PER_NODE");
  ::unsetenv("ITYR_POLICY");
  ::unsetenv("ITYR_CACHE_SIZE");
  ::unsetenv("ITYR_DETERMINISTIC");
  ::unsetenv("ITYR_SEED");
}

TEST(Options, ObservabilityEnvRoundTrip) {
  ::setenv("ITYR_TRACE", "/tmp/out.json", 1);
  ::setenv("ITYR_TRACE_CAP", "4096", 1);
  ::setenv("ITYR_STATS_JSON", "/tmp/stats.json", 1);
  ::setenv("ITYR_METRICS_SAMPLE_INTERVAL", "0.0025", 1);
  auto o = ic::options::from_env();
  EXPECT_EQ(o.trace_path, "/tmp/out.json");
  EXPECT_EQ(o.trace_cap, 4096u);
  EXPECT_EQ(o.stats_json_path, "/tmp/stats.json");
  EXPECT_DOUBLE_EQ(o.metrics_sample_interval, 0.0025);
  ::unsetenv("ITYR_TRACE");
  ::unsetenv("ITYR_TRACE_CAP");
  ::unsetenv("ITYR_STATS_JSON");
  ::unsetenv("ITYR_METRICS_SAMPLE_INTERVAL");
}

TEST(Options, ObservabilityEnvDefaults) {
  ::unsetenv("ITYR_TRACE");
  ::unsetenv("ITYR_TRACE_CAP");
  ::unsetenv("ITYR_STATS_JSON");
  ::unsetenv("ITYR_METRICS_SAMPLE_INTERVAL");
  auto o = ic::options::from_env();
  EXPECT_TRUE(o.trace_path.empty());  // tracing off by default
  EXPECT_TRUE(o.stats_json_path.empty());
  EXPECT_GT(o.trace_cap, 0u);
  EXPECT_GT(o.metrics_sample_interval, 0.0);
}

TEST(Options, MalformedObservabilityEnvIsBenign) {
  // Malformed numbers parse to 0: the tracer clamps a 0 cap to min_cap and
  // a 0 sample interval disables sampling — no crash, no surprises.
  ::setenv("ITYR_TRACE_CAP", "not-a-number", 1);
  ::setenv("ITYR_METRICS_SAMPLE_INTERVAL", "bogus", 1);
  auto o = ic::options::from_env();
  EXPECT_EQ(o.trace_cap, 0u);
  EXPECT_DOUBLE_EQ(o.metrics_sample_interval, 0.0);

  ic::tracer t;
  t.configure(1, 1, o.trace_cap);
  t.set_enabled(true);
  t.set_sample_interval(o.metrics_sample_interval);
  int fired = 0;
  t.set_sampler([&](int, double) { fired++; });
  for (int i = 0; i < 100; i++) {
    t.instant(0, i * 1.0, "x");
    t.poll_sample(0, i * 1.0);
  }
  EXPECT_EQ(t.n_events(0), ic::tracer::min_cap);  // clamped, ring intact
  EXPECT_EQ(fired, 0);                            // sampling disabled

  ::unsetenv("ITYR_TRACE_CAP");
  ::unsetenv("ITYR_METRICS_SAMPLE_INTERVAL");
}

TEST(Options, PrefetchEnvRoundTrip) {
  ::setenv("ITYR_PREFETCH", "1", 1);
  ::setenv("ITYR_PREFETCH_DEPTH", "16", 1);
  ::setenv("ITYR_PREFETCH_MAX_INFLIGHT", "262144", 1);
  auto o = ic::options::from_env();
  EXPECT_TRUE(o.prefetch);
  EXPECT_EQ(o.prefetch_depth, 16u);
  EXPECT_EQ(o.prefetch_max_inflight, 262144u);
  ::setenv("ITYR_PREFETCH", "true", 1);
  EXPECT_TRUE(ic::options::from_env().prefetch);
  ::setenv("ITYR_PREFETCH", "0", 1);
  EXPECT_FALSE(ic::options::from_env().prefetch);
  ::unsetenv("ITYR_PREFETCH");
  ::unsetenv("ITYR_PREFETCH_DEPTH");
  ::unsetenv("ITYR_PREFETCH_MAX_INFLIGHT");
}

TEST(Options, PrefetchEnvDefaults) {
  ::unsetenv("ITYR_PREFETCH");
  ::unsetenv("ITYR_PREFETCH_DEPTH");
  ::unsetenv("ITYR_PREFETCH_MAX_INFLIGHT");
  auto o = ic::options::from_env();
  EXPECT_FALSE(o.prefetch);  // strictly additive: off by default
  EXPECT_GT(o.prefetch_depth, 0u);
  EXPECT_GT(o.prefetch_max_inflight, 0u);
}

TEST(Options, MalformedPrefetchEnvIsBenign) {
  // A bool that isn't "1"/"true" reads as false; malformed integers parse
  // to 0, and a 0 depth or 0 in-flight budget disables prefetching — no
  // crash, no partial configuration.
  ::setenv("ITYR_PREFETCH", "maybe", 1);
  ::setenv("ITYR_PREFETCH_DEPTH", "not-a-number", 1);
  ::setenv("ITYR_PREFETCH_MAX_INFLIGHT", "bogus", 1);
  auto o = ic::options::from_env();
  EXPECT_FALSE(o.prefetch);
  EXPECT_EQ(o.prefetch_depth, 0u);
  EXPECT_EQ(o.prefetch_max_inflight, 0u);
  ::unsetenv("ITYR_PREFETCH");
  ::unsetenv("ITYR_PREFETCH_DEPTH");
  ::unsetenv("ITYR_PREFETCH_MAX_INFLIGHT");
}

TEST(Options, BadPolicyStringThrows) {
  EXPECT_THROW(ic::cache_policy_from_string("bogus"), ic::api_error);
}

TEST(Options, EvictionPolicyEnvRoundTrip) {
  ::unsetenv("ITYR_EVICTION_POLICY");
  EXPECT_EQ(ic::options::from_env().eviction, ic::eviction_kind::lru);  // default
  ::setenv("ITYR_EVICTION_POLICY", "clock", 1);
  EXPECT_EQ(ic::options::from_env().eviction, ic::eviction_kind::clock);
  ::setenv("ITYR_EVICTION_POLICY", "lru", 1);
  EXPECT_EQ(ic::options::from_env().eviction, ic::eviction_kind::lru);
  ::setenv("ITYR_EVICTION_POLICY", "fifo", 1);
  EXPECT_THROW(ic::options::from_env(), ic::api_error);
  ::unsetenv("ITYR_EVICTION_POLICY");
  for (auto k : {ic::eviction_kind::lru, ic::eviction_kind::clock}) {
    EXPECT_EQ(ic::eviction_kind_from_string(ic::to_string(k)), k);
  }
}

TEST(Options, CacheGeometryValidation) {
  // Direct checks: power-of-two block and sub-block, block page-aligned,
  // sub <= block.
  ic::validate_cache_geometry(4096, 1024);  // must not throw
  ic::validate_cache_geometry(8192, 8192);
  EXPECT_THROW(ic::validate_cache_geometry(3000, 1024), ic::error);
  EXPECT_THROW(ic::validate_cache_geometry(0, 1024), ic::error);
  EXPECT_THROW(ic::validate_cache_geometry(4096, 1000), ic::error);
  EXPECT_THROW(ic::validate_cache_geometry(4096, 0), ic::error);
  EXPECT_THROW(ic::validate_cache_geometry(1024, 4096), ic::error);  // sub > block
  EXPECT_THROW(ic::validate_cache_geometry(64, 64), ic::error);      // below page size
  // The error message names the offending knob so a bad env override is
  // diagnosable from the exception alone.
  try {
    ic::validate_cache_geometry(3000, 1024);
    FAIL() << "expected ic::error";
  } catch (const ic::error& e) {
    EXPECT_NE(std::string(e.what()).find("ITYR_BLOCK_SIZE"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("3000"), std::string::npos);
  }
}

TEST(Options, BadCacheGeometryEnvThrows) {
  ::setenv("ITYR_BLOCK_SIZE", "3000", 1);
  EXPECT_THROW(ic::options::from_env(), ic::error);
  ::setenv("ITYR_BLOCK_SIZE", "4096", 1);
  ::setenv("ITYR_SUB_BLOCK_SIZE", "8192", 1);  // sub > block
  EXPECT_THROW(ic::options::from_env(), ic::error);
  ::setenv("ITYR_SUB_BLOCK_SIZE", "256", 1);
  EXPECT_EQ(ic::options::from_env().block_size, 4096u);  // valid pair passes
  ::unsetenv("ITYR_BLOCK_SIZE");
  ::unsetenv("ITYR_SUB_BLOCK_SIZE");
}

TEST(Options, PolicyRoundTrip) {
  for (auto p : {ic::cache_policy::none, ic::cache_policy::write_through,
                 ic::cache_policy::write_back, ic::cache_policy::write_back_lazy}) {
    EXPECT_EQ(ic::cache_policy_from_string(ic::to_string(p)), p);
  }
}

namespace {

/// Profiler harness with a hand-cranked clock.
struct prof_fixture {
  double now = 0;
  int rank = 0;
  ic::profiler prof;

  prof_fixture() {
    prof.configure(
        2, [this] { return now; }, [this] { return rank; });
    prof.set_enabled(true);
  }
};

}  // namespace

TEST(Profiler, SimpleScopeAttribution) {
  prof_fixture f;
  f.prof.begin(ic::prof_event::checkout);
  f.now = 5;
  f.prof.end(ic::prof_event::checkout);
  EXPECT_DOUBLE_EQ(f.prof.accumulated(0, ic::prof_event::checkout), 5);
  EXPECT_DOUBLE_EQ(f.prof.accumulated(1, ic::prof_event::checkout), 0);
}

TEST(Profiler, NestedScopesAreExclusive) {
  prof_fixture f;
  f.prof.begin(ic::prof_event::checkout);  // t=0
  f.now = 1;
  f.prof.begin(ic::prof_event::get);  // nested
  f.now = 4;
  f.prof.end(ic::prof_event::get);  // get self = 3
  f.now = 6;
  f.prof.end(ic::prof_event::checkout);  // checkout self = 6 - 3 = 3
  EXPECT_DOUBLE_EQ(f.prof.total(ic::prof_event::get), 3);
  EXPECT_DOUBLE_EQ(f.prof.total(ic::prof_event::checkout), 3);
  EXPECT_DOUBLE_EQ(f.prof.total_all_events(), 6);
}

TEST(Profiler, SiblingScopesAccumulate) {
  prof_fixture f;
  for (int i = 0; i < 3; i++) {
    f.prof.begin(ic::prof_event::release);
    f.now += 2;
    f.prof.end(ic::prof_event::release);
    f.now += 1;  // unattributed gap
  }
  EXPECT_DOUBLE_EQ(f.prof.total(ic::prof_event::release), 6);
}

TEST(Profiler, PerRankSeparation) {
  prof_fixture f;
  f.prof.begin(ic::prof_event::steal);
  f.now = 2;
  f.prof.end(ic::prof_event::steal);
  f.rank = 1;
  f.prof.begin(ic::prof_event::steal);
  f.now = 7;
  f.prof.end(ic::prof_event::steal);
  EXPECT_DOUBLE_EQ(f.prof.accumulated(0, ic::prof_event::steal), 2);
  EXPECT_DOUBLE_EQ(f.prof.accumulated(1, ic::prof_event::steal), 5);
  EXPECT_DOUBLE_EQ(f.prof.total(ic::prof_event::steal), 7);
}

TEST(Profiler, DisabledProfilerIsFree) {
  prof_fixture f;
  f.prof.set_enabled(false);
  f.prof.begin(ic::prof_event::acquire);
  f.now = 100;
  f.prof.end(ic::prof_event::acquire);
  EXPECT_DOUBLE_EQ(f.prof.total(ic::prof_event::acquire), 0);
}

TEST(Profiler, ResetClearsAccumulators) {
  prof_fixture f;
  f.prof.begin(ic::prof_event::checkin);
  f.now = 3;
  f.prof.end(ic::prof_event::checkin);
  f.prof.reset();
  EXPECT_DOUBLE_EQ(f.prof.total_all_events(), 0);
}

TEST(Profiler, MaybeScopeWithNull) {
  // Must be safe and a no-op with a null profiler.
  { ic::profiler::maybe_scope sc(nullptr, ic::prof_event::get); }
  SUCCEED();
}

TEST(Profiler, CountsAndMaxDuration) {
  prof_fixture f;
  f.prof.begin(ic::prof_event::get);
  f.now = 2;
  f.prof.end(ic::prof_event::get);  // duration 2
  f.prof.begin(ic::prof_event::get);
  f.now = 7;
  f.prof.end(ic::prof_event::get);  // duration 5
  EXPECT_EQ(f.prof.count_of(0, ic::prof_event::get), 2u);
  EXPECT_EQ(f.prof.total_count(ic::prof_event::get), 2u);
  EXPECT_DOUBLE_EQ(f.prof.max_duration_of(0, ic::prof_event::get), 5);
  EXPECT_DOUBLE_EQ(f.prof.max_duration(ic::prof_event::get), 5);
}

TEST(Profiler, MaxDurationIsInclusive) {
  prof_fixture f;
  f.prof.begin(ic::prof_event::checkout);  // t=0
  f.now = 1;
  f.prof.begin(ic::prof_event::get);
  f.now = 4;
  f.prof.end(ic::prof_event::get);
  f.now = 5;
  f.prof.end(ic::prof_event::checkout);
  // Self time of checkout is 2, but max duration reports the inclusive 5.
  EXPECT_DOUBLE_EQ(f.prof.total(ic::prof_event::checkout), 2);
  EXPECT_DOUBLE_EQ(f.prof.max_duration(ic::prof_event::checkout), 5);
}

TEST(Profiler, ConfigureOnLiveProfilerThrows) {
  prof_fixture f;
  f.prof.begin(ic::prof_event::checkout);  // open scope -> live
  EXPECT_THROW(f.prof.configure(
                   2, [] { return 0.0; }, [] { return 0; }),
               ic::api_error);
  f.now = 1;
  f.prof.end(ic::prof_event::checkout);  // closed scope, but data accumulated
  EXPECT_THROW(f.prof.configure(
                   2, [] { return 0.0; }, [] { return 0; }),
               ic::api_error);
  f.prof.reset();  // scopes closed and data cleared -> reconfigure is fine
  f.prof.configure(
      2, [] { return 0.0; }, [] { return 0; });
  SUCCEED();
}

TEST(ProfilerDeathTest, AggregateReadWithOpenScopeDies) {
  prof_fixture f;
  f.prof.begin(ic::prof_event::checkout);
  // Aggregate accessors assert that every per-rank scope stack is empty; a
  // read mid-scope would silently under-report.
  EXPECT_DEATH((void)f.prof.total(ic::prof_event::checkout), "check failed");
  EXPECT_DEATH((void)f.prof.total_all_events(), "check failed");
}

TEST(Profiler, TracerMakesDisabledProfilerActive) {
  // An attached, enabled tracer turns scope begin/end into trace spans even
  // with stats accumulation disabled.
  prof_fixture f;
  f.prof.set_enabled(false);
  ic::tracer t;
  t.configure(2, 2, 1 << 10);
  t.set_enabled(true);
  f.prof.set_tracer(&t);
  EXPECT_TRUE(f.prof.active());

  f.prof.begin(ic::prof_event::checkout);
  f.now = 5;
  f.prof.end(ic::prof_event::checkout);
  const auto r = ic::validate_trace_json(t.to_json());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.n_spans, 1u);
}
