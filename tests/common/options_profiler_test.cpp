#include <gtest/gtest.h>

#include <cstdlib>

#include "itoyori/common/options.hpp"
#include "itoyori/common/profiler.hpp"

namespace ic = ityr::common;

TEST(Options, DefaultsAreSane) {
  ic::options o;
  EXPECT_EQ(o.n_ranks(), o.n_nodes * o.ranks_per_node);
  EXPECT_GT(o.block_size, 0u);
  EXPECT_EQ(o.block_size % o.sub_block_size, 0u);
  EXPECT_GE(o.cache_size, o.block_size);
  EXPECT_EQ(o.policy, ic::cache_policy::write_back_lazy);
}

TEST(Options, FromEnvOverrides) {
  ::setenv("ITYR_N_NODES", "7", 1);
  ::setenv("ITYR_RANKS_PER_NODE", "3", 1);
  ::setenv("ITYR_POLICY", "write_through", 1);
  ::setenv("ITYR_CACHE_SIZE", "1048576", 1);
  ::setenv("ITYR_DETERMINISTIC", "1", 1);
  ::setenv("ITYR_SEED", "999", 1);
  auto o = ic::options::from_env();
  EXPECT_EQ(o.n_nodes, 7);
  EXPECT_EQ(o.ranks_per_node, 3);
  EXPECT_EQ(o.n_ranks(), 21);
  EXPECT_EQ(o.policy, ic::cache_policy::write_through);
  EXPECT_EQ(o.cache_size, 1048576u);
  EXPECT_TRUE(o.deterministic);
  EXPECT_EQ(o.seed, 999u);
  ::unsetenv("ITYR_N_NODES");
  ::unsetenv("ITYR_RANKS_PER_NODE");
  ::unsetenv("ITYR_POLICY");
  ::unsetenv("ITYR_CACHE_SIZE");
  ::unsetenv("ITYR_DETERMINISTIC");
  ::unsetenv("ITYR_SEED");
}

TEST(Options, BadPolicyStringThrows) {
  EXPECT_THROW(ic::cache_policy_from_string("bogus"), ic::api_error);
}

TEST(Options, PolicyRoundTrip) {
  for (auto p : {ic::cache_policy::none, ic::cache_policy::write_through,
                 ic::cache_policy::write_back, ic::cache_policy::write_back_lazy}) {
    EXPECT_EQ(ic::cache_policy_from_string(ic::to_string(p)), p);
  }
}

namespace {

/// Profiler harness with a hand-cranked clock.
struct prof_fixture {
  double now = 0;
  int rank = 0;
  ic::profiler prof;

  prof_fixture() {
    prof.configure(
        2, [this] { return now; }, [this] { return rank; });
    prof.set_enabled(true);
  }
};

}  // namespace

TEST(Profiler, SimpleScopeAttribution) {
  prof_fixture f;
  f.prof.begin(ic::prof_event::checkout);
  f.now = 5;
  f.prof.end(ic::prof_event::checkout);
  EXPECT_DOUBLE_EQ(f.prof.accumulated(0, ic::prof_event::checkout), 5);
  EXPECT_DOUBLE_EQ(f.prof.accumulated(1, ic::prof_event::checkout), 0);
}

TEST(Profiler, NestedScopesAreExclusive) {
  prof_fixture f;
  f.prof.begin(ic::prof_event::checkout);  // t=0
  f.now = 1;
  f.prof.begin(ic::prof_event::get);  // nested
  f.now = 4;
  f.prof.end(ic::prof_event::get);  // get self = 3
  f.now = 6;
  f.prof.end(ic::prof_event::checkout);  // checkout self = 6 - 3 = 3
  EXPECT_DOUBLE_EQ(f.prof.total(ic::prof_event::get), 3);
  EXPECT_DOUBLE_EQ(f.prof.total(ic::prof_event::checkout), 3);
  EXPECT_DOUBLE_EQ(f.prof.total_all_events(), 6);
}

TEST(Profiler, SiblingScopesAccumulate) {
  prof_fixture f;
  for (int i = 0; i < 3; i++) {
    f.prof.begin(ic::prof_event::release);
    f.now += 2;
    f.prof.end(ic::prof_event::release);
    f.now += 1;  // unattributed gap
  }
  EXPECT_DOUBLE_EQ(f.prof.total(ic::prof_event::release), 6);
}

TEST(Profiler, PerRankSeparation) {
  prof_fixture f;
  f.prof.begin(ic::prof_event::steal);
  f.now = 2;
  f.prof.end(ic::prof_event::steal);
  f.rank = 1;
  f.prof.begin(ic::prof_event::steal);
  f.now = 7;
  f.prof.end(ic::prof_event::steal);
  EXPECT_DOUBLE_EQ(f.prof.accumulated(0, ic::prof_event::steal), 2);
  EXPECT_DOUBLE_EQ(f.prof.accumulated(1, ic::prof_event::steal), 5);
  EXPECT_DOUBLE_EQ(f.prof.total(ic::prof_event::steal), 7);
}

TEST(Profiler, DisabledProfilerIsFree) {
  prof_fixture f;
  f.prof.set_enabled(false);
  f.prof.begin(ic::prof_event::acquire);
  f.now = 100;
  f.prof.end(ic::prof_event::acquire);
  EXPECT_DOUBLE_EQ(f.prof.total(ic::prof_event::acquire), 0);
}

TEST(Profiler, ResetClearsAccumulators) {
  prof_fixture f;
  f.prof.begin(ic::prof_event::checkin);
  f.now = 3;
  f.prof.end(ic::prof_event::checkin);
  f.prof.reset();
  EXPECT_DOUBLE_EQ(f.prof.total_all_events(), 0);
}

TEST(Profiler, MaybeScopeWithNull) {
  // Must be safe and a no-op with a null profiler.
  { ic::profiler::maybe_scope sc(nullptr, ic::prof_event::get); }
  SUCCEED();
}
