/// Randomized differential test: the flat interval_set against a trivial
/// reference model (a std::set of covered byte offsets). Every operation the
/// checkout path relies on — add, subtract, contains, overlaps, missing,
/// overlapping, size/count — is cross-checked over ~10^5 random operations.

#include "itoyori/common/interval_set.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "itoyori/common/rng.hpp"

namespace ic = ityr::common;

using ic::interval;
using ic::interval_set;

namespace {

/// Bytes-in-a-set reference model over a small domain.
class byte_model {
public:
  void add(interval iv) {
    for (std::uint64_t b = iv.begin; b < iv.end; b++) bytes_.insert(b);
  }
  void subtract(interval iv) {
    for (std::uint64_t b = iv.begin; b < iv.end; b++) bytes_.erase(b);
  }
  bool contains(interval iv) const {
    if (iv.empty()) return true;
    for (std::uint64_t b = iv.begin; b < iv.end; b++) {
      if (bytes_.count(b) == 0) return false;
    }
    return true;
  }
  bool overlaps(interval iv) const {
    for (std::uint64_t b = iv.begin; b < iv.end; b++) {
      if (bytes_.count(b) > 0) return true;
    }
    return false;
  }
  std::uint64_t size() const { return bytes_.size(); }

  /// Maximal runs of present (or, over `query`, absent) bytes.
  std::vector<interval> runs() const {
    std::vector<interval> out;
    for (std::uint64_t b : bytes_) {
      if (!out.empty() && out.back().end == b) {
        out.back().end = b + 1;
      } else {
        out.push_back({b, b + 1});
      }
    }
    return out;
  }
  std::vector<interval> missing(interval query) const {
    std::vector<interval> out;
    for (std::uint64_t b = query.begin; b < query.end; b++) {
      if (bytes_.count(b) > 0) continue;
      if (!out.empty() && out.back().end == b) {
        out.back().end = b + 1;
      } else {
        out.push_back({b, b + 1});
      }
    }
    return out;
  }
  std::vector<interval> overlapping(interval query) const {
    std::vector<interval> out;
    for (const auto& run : runs()) {
      auto iv = intersect(run, query);
      if (!iv.empty()) out.push_back(iv);
    }
    return out;
  }

private:
  std::set<std::uint64_t> bytes_;
};

}  // namespace

TEST(IntervalSetRandom, MatchesByteModel) {
  constexpr std::uint64_t kDomain = 512;
  constexpr int kOps = 100000;
  ic::xoshiro256ss rng(20230817);

  const auto random_interval = [&]() -> interval {
    const std::uint64_t a = rng.below(kDomain + 1);
    const std::uint64_t len = rng.below(kDomain / 8);  // mostly short runs
    return {a, std::min(a + len, kDomain)};
  };

  interval_set s;
  byte_model ref;

  for (int op = 0; op < kOps; op++) {
    const auto iv = random_interval();
    if (rng.below(2) == 0) {
      s.add(iv);
      ref.add(iv);
    } else {
      s.subtract(iv);
      ref.subtract(iv);
    }

    // Cheap probes every operation.
    const auto q = random_interval();
    ASSERT_EQ(s.contains(q), ref.contains(q)) << "op " << op << " query " << q;
    ASSERT_EQ(s.overlaps(q), ref.overlaps(q)) << "op " << op << " query " << q;
    ASSERT_EQ(s.missing(q), ref.missing(q)) << "op " << op << " query " << q;
    ASSERT_EQ(s.overlapping(q), ref.overlapping(q)) << "op " << op << " query " << q;

    // Full-structure check periodically (and always near the start, where
    // the interesting split/merge edge cases concentrate).
    if (op < 256 || op % 509 == 0) {
      ASSERT_EQ(s.size(), ref.size()) << "op " << op;
      ASSERT_EQ(s.to_vector(), ref.runs()) << "op " << op;
      ASSERT_EQ(s.count(), ref.runs().size()) << "op " << op;
    }
  }
}

TEST(IntervalSetRandom, FullDomainSweeps) {
  // Degenerate shapes the uniform sampler rarely produces: whole-domain
  // adds/subtracts alternating with single-byte noise.
  constexpr std::uint64_t kDomain = 128;
  ic::xoshiro256ss rng(7);
  interval_set s;
  byte_model ref;
  for (int op = 0; op < 2000; op++) {
    switch (rng.below(4)) {
      case 0:
        s.add({0, kDomain});
        ref.add({0, kDomain});
        break;
      case 1:
        s.subtract({0, kDomain});
        ref.subtract({0, kDomain});
        break;
      case 2: {
        const std::uint64_t b = rng.below(kDomain);
        s.add({b, b + 1});
        ref.add({b, b + 1});
        break;
      }
      default: {
        const std::uint64_t b = rng.below(kDomain);
        s.subtract({b, b + 1});
        ref.subtract({b, b + 1});
        break;
      }
    }
    ASSERT_EQ(s.to_vector(), ref.runs()) << "op " << op;
  }
}
