#include "itoyori/common/topology.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "itoyori/common/options.hpp"

namespace ic = ityr::common;

namespace {

/// Scoped env var override (unset or restore on exit) for from_env round
/// trips.
struct env_guard {
  env_guard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    ::setenv(name, value, 1);
  }
  ~env_guard() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

ic::network_model nm() {
  ic::network_model m;
  return m;  // defaults: distinct intra/inter latency and bandwidth
}

}  // namespace

TEST(TopologySpec, ParsesFlat) {
  const auto s = ic::topology_spec::parse("flat");
  EXPECT_EQ(s.kind, ic::topology_kind::flat);
  EXPECT_EQ(s.str(), "flat");
}

TEST(TopologySpec, ParsesFatTree) {
  const auto s = ic::topology_spec::parse("fat_tree:4,3");
  EXPECT_EQ(s.kind, ic::topology_kind::fat_tree);
  EXPECT_EQ(s.fat_tree_arity, 4);
  EXPECT_EQ(s.fat_tree_levels, 3);
  EXPECT_EQ(s.str(), "fat_tree:4,3");
}

TEST(TopologySpec, ParsesDragonfly) {
  const auto s = ic::topology_spec::parse("dragonfly:8");
  EXPECT_EQ(s.kind, ic::topology_kind::dragonfly);
  EXPECT_EQ(s.dragonfly_groups, 8);
  EXPECT_EQ(s.str(), "dragonfly:8");
}

TEST(TopologySpec, RejectsMalformedStrings) {
  EXPECT_THROW(ic::topology_spec::parse(""), ic::error);
  EXPECT_THROW(ic::topology_spec::parse("mesh"), ic::error);
  EXPECT_THROW(ic::topology_spec::parse("flat:1"), ic::error);
  EXPECT_THROW(ic::topology_spec::parse("fat_tree"), ic::error);
  EXPECT_THROW(ic::topology_spec::parse("fat_tree:4"), ic::error);
  EXPECT_THROW(ic::topology_spec::parse("fat_tree:a,b"), ic::error);
  EXPECT_THROW(ic::topology_spec::parse("fat_tree:4,3,2"), ic::error);
  EXPECT_THROW(ic::topology_spec::parse("dragonfly"), ic::error);
  EXPECT_THROW(ic::topology_spec::parse("dragonfly:"), ic::error);
  EXPECT_THROW(ic::topology_spec::parse("dragonfly:2x"), ic::error);
}

TEST(TopologyValidate, RejectsBadClusterShape) {
  const ic::topology_spec flat;
  EXPECT_THROW(ic::validate_topology(0, 4, flat), ic::error);
  EXPECT_THROW(ic::validate_topology(-1, 4, flat), ic::error);
  EXPECT_THROW(ic::validate_topology(4, 0, flat), ic::error);
  EXPECT_THROW(ic::validate_topology(4, -2, flat), ic::error);
  EXPECT_NO_THROW(ic::validate_topology(4, 4, flat));
}

TEST(TopologyValidate, RejectsUndersizedFatTree) {
  auto s = ic::topology_spec::parse("fat_tree:2,2");  // capacity 4 nodes
  EXPECT_NO_THROW(ic::validate_topology(4, 1, s));
  EXPECT_THROW(ic::validate_topology(5, 1, s), ic::error);
}

TEST(TopologyValidate, RejectsBadDragonflyGroups) {
  auto s = ic::topology_spec::parse("dragonfly:8");
  EXPECT_NO_THROW(ic::validate_topology(8, 1, s));
  EXPECT_THROW(ic::validate_topology(4, 1, s), ic::error);  // groups > n_nodes
}

// Malformed/bad env must surface as a clear startup error through the real
// options::from_env path, not as corrupt distance math later.
TEST(TopologyEnv, MalformedTopologyStringThrowsFromEnv) {
  env_guard g("ITYR_TOPOLOGY", "fat_tree:banana");
  EXPECT_THROW(ic::options::from_env(), ic::error);
}

TEST(TopologyEnv, UndersizedTopologyThrowsFromEnv) {
  env_guard nodes("ITYR_N_NODES", "9");
  env_guard g("ITYR_TOPOLOGY", "fat_tree:2,3");  // capacity 8 < 9 nodes
  EXPECT_THROW(ic::options::from_env(), ic::error);
}

TEST(TopologyEnv, BadRanksPerNodeThrowsFromEnv) {
  env_guard g("ITYR_RANKS_PER_NODE", "0");
  EXPECT_THROW(ic::options::from_env(), ic::error);
}

TEST(TopologyEnv, WellFormedTopologyRoundTrips) {
  env_guard nodes("ITYR_N_NODES", "8");
  env_guard g("ITYR_TOPOLOGY", "fat_tree:2,3");
  const auto o = ic::options::from_env();
  EXPECT_EQ(o.topology.str(), "fat_tree:2,3");
}

TEST(Topology, FlatMatchesTwoTierModel) {
  const auto m = nm();
  ic::topology t(4, 2, ic::topology_spec{}, m);
  EXPECT_EQ(t.n_classes(), 2);
  // Same node (incl. self) is class 0 at intra cost; everything else class 1
  // at the exact historic inter values (bit-identical doubles).
  EXPECT_EQ(t.class_of(0, 1), 0);
  EXPECT_EQ(t.class_of(3, 3), 0);
  EXPECT_EQ(t.class_of(0, 2), 1);
  EXPECT_EQ(t.class_of(0, 7), 1);
  EXPECT_EQ(t.latency(0, 1), m.intra_latency);
  EXPECT_EQ(t.bandwidth(0, 1), m.intra_bandwidth);
  EXPECT_EQ(t.latency(0, 7), m.inter_latency);
  EXPECT_EQ(t.bandwidth(0, 7), m.inter_bandwidth);
}

TEST(Topology, FatTreeClassIsLcaLevel) {
  const auto m = nm();
  // 8 nodes under a binary tree with 3 switch levels:
  // leaves {0,1} {2,3} ... share a level-1 switch; {0..3} {4..7} level-2;
  // everything level-3.
  ic::topology t(8, 1, ic::topology_spec::parse("fat_tree:2,3"), m);
  EXPECT_EQ(t.n_classes(), 4);  // class 0 + levels 1..3
  EXPECT_EQ(t.class_of(0, 1), 1);
  EXPECT_EQ(t.class_of(0, 2), 2);
  EXPECT_EQ(t.class_of(0, 3), 2);
  EXPECT_EQ(t.class_of(0, 4), 3);
  EXPECT_EQ(t.class_of(3, 4), 3);
  EXPECT_EQ(t.class_of(6, 7), 1);
  // Latency scales with LCA level; bandwidth halves per level above 1.
  EXPECT_EQ(t.latency_of_class(1), m.inter_latency);
  EXPECT_EQ(t.latency_of_class(2), m.inter_latency * 2.0);
  EXPECT_EQ(t.latency_of_class(3), m.inter_latency * 3.0);
  EXPECT_EQ(t.bandwidth_of_class(1), m.inter_bandwidth);
  EXPECT_EQ(t.bandwidth_of_class(2), m.inter_bandwidth / 2.0);
  EXPECT_EQ(t.bandwidth_of_class(3), m.inter_bandwidth / 4.0);
}

TEST(Topology, DragonflyGroupsSplitInterTier) {
  const auto m = nm();
  // 8 nodes in 2 groups of 4: {0..3} and {4..7}.
  ic::topology t(8, 1, ic::topology_spec::parse("dragonfly:2"), m);
  EXPECT_EQ(t.n_classes(), 3);
  EXPECT_EQ(t.class_of(0, 1), 1);  // same group
  EXPECT_EQ(t.class_of(0, 4), 2);  // cross-group
  EXPECT_EQ(t.latency_of_class(1), m.inter_latency);
  EXPECT_EQ(t.latency_of_class(2), m.inter_latency * 2.0);
  EXPECT_EQ(t.bandwidth_of_class(2), m.inter_bandwidth * 0.5);
}

TEST(Topology, ClassMatrixIsSymmetric) {
  const auto m = nm();
  ic::topology t(8, 2, ic::topology_spec::parse("fat_tree:2,3"), m);
  for (int a = 0; a < t.n_ranks(); a++) {
    for (int b = 0; b < t.n_ranks(); b++) {
      EXPECT_EQ(t.class_of(a, b), t.class_of(b, a)) << a << "," << b;
    }
  }
}
