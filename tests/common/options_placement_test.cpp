#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "itoyori/common/options.hpp"

namespace ic = ityr::common;

// Startup validation of the dynamic data-placement knobs (ITYR_MIGRATION /
// ITYR_REPLICATION / ITYR_HOT_BLOCKS_TOPN): round-trips through the
// environment and clear errors for malformed combinations.

namespace {

void clear_placement_env() {
  ::unsetenv("ITYR_MIGRATION");
  ::unsetenv("ITYR_MIGRATION_INTERVAL");
  ::unsetenv("ITYR_MIGRATION_MIN_BYTES");
  ::unsetenv("ITYR_MIGRATION_SHARE");
  ::unsetenv("ITYR_MIGRATION_POOL_BLOCKS");
  ::unsetenv("ITYR_REPLICATION");
  ::unsetenv("ITYR_REPLICATION_MIN_BYTES");
  ::unsetenv("ITYR_REPLICATION_MIN_READERS");
  ::unsetenv("ITYR_REPLICATION_POOL_BLOCKS");
  ::unsetenv("ITYR_HOT_BLOCKS_TOPN");
}

}  // namespace

TEST(OptionsPlacement, EnvDefaultsAreOff) {
  clear_placement_env();
  auto o = ic::options::from_env();
  EXPECT_FALSE(o.migration);  // strictly additive: off by default
  EXPECT_FALSE(o.replication);
  EXPECT_EQ(o.hot_blocks_topn, 0u);
  EXPECT_GT(o.placement_interval, 0.0);
  EXPECT_GT(o.migration_share, 0.0);
  EXPECT_LE(o.migration_share, 1.0);
  EXPECT_GE(o.replication_min_readers, 2);
  EXPECT_GT(o.migration_pool_blocks, 0u);
  EXPECT_GT(o.replication_pool_blocks, 0u);
}

TEST(OptionsPlacement, EnvRoundTrip) {
  ::setenv("ITYR_MIGRATION", "1", 1);
  ::setenv("ITYR_MIGRATION_INTERVAL", "0.005", 1);
  ::setenv("ITYR_MIGRATION_MIN_BYTES", "8192", 1);
  ::setenv("ITYR_MIGRATION_SHARE", "0.75", 1);
  ::setenv("ITYR_MIGRATION_POOL_BLOCKS", "32", 1);
  ::setenv("ITYR_REPLICATION", "true", 1);
  ::setenv("ITYR_REPLICATION_MIN_BYTES", "16384", 1);
  ::setenv("ITYR_REPLICATION_MIN_READERS", "3", 1);
  ::setenv("ITYR_REPLICATION_POOL_BLOCKS", "64", 1);
  ::setenv("ITYR_HOT_BLOCKS_TOPN", "20", 1);
  auto o = ic::options::from_env();
  EXPECT_TRUE(o.migration);
  EXPECT_DOUBLE_EQ(o.placement_interval, 0.005);
  EXPECT_EQ(o.migration_min_bytes, 8192u);
  EXPECT_DOUBLE_EQ(o.migration_share, 0.75);
  EXPECT_EQ(o.migration_pool_blocks, 32u);
  EXPECT_TRUE(o.replication);
  EXPECT_EQ(o.replication_min_bytes, 16384u);
  EXPECT_EQ(o.replication_min_readers, 3);
  EXPECT_EQ(o.replication_pool_blocks, 64u);
  EXPECT_EQ(o.hot_blocks_topn, 20u);
  ::setenv("ITYR_MIGRATION", "0", 1);
  ::setenv("ITYR_REPLICATION", "0", 1);
  auto o2 = ic::options::from_env();
  EXPECT_FALSE(o2.migration);
  EXPECT_FALSE(o2.replication);
  clear_placement_env();
}

TEST(OptionsPlacement, MalformedIntervalThrows) {
  clear_placement_env();
  // Malformed numbers parse to 0, and a non-positive pass interval is
  // rejected outright rather than spinning the placement pass every poll.
  ::setenv("ITYR_MIGRATION_INTERVAL", "not-a-number", 1);
  EXPECT_THROW(ic::options::from_env(), ic::error);
  ::setenv("ITYR_MIGRATION_INTERVAL", "-1", 1);
  EXPECT_THROW(ic::options::from_env(), ic::error);
  try {
    ic::options::from_env();
    FAIL() << "expected ic::error";
  } catch (const ic::error& e) {
    // The message names the offending knob so a bad override is diagnosable
    // from the exception alone.
    EXPECT_NE(std::string(e.what()).find("ITYR_MIGRATION_INTERVAL"), std::string::npos);
  }
  clear_placement_env();
}

TEST(OptionsPlacement, MalformedShareThrows) {
  clear_placement_env();
  ::setenv("ITYR_MIGRATION_SHARE", "1.5", 1);
  EXPECT_THROW(ic::options::from_env(), ic::error);
  ::setenv("ITYR_MIGRATION_SHARE", "0", 1);
  EXPECT_THROW(ic::options::from_env(), ic::error);
  ::setenv("ITYR_MIGRATION_SHARE", "bogus", 1);  // parses to 0: rejected too
  EXPECT_THROW(ic::options::from_env(), ic::error);
  ::setenv("ITYR_MIGRATION_SHARE", "1.0", 1);  // boundary is legal
  EXPECT_DOUBLE_EQ(ic::options::from_env().migration_share, 1.0);
  clear_placement_env();
}

TEST(OptionsPlacement, ZeroPoolWithFeatureEnabledThrows) {
  clear_placement_env();
  // A zero pool is only an error when the feature needing it is on.
  ::setenv("ITYR_MIGRATION_POOL_BLOCKS", "0", 1);
  EXPECT_NO_THROW(ic::options::from_env());
  ::setenv("ITYR_MIGRATION", "1", 1);
  EXPECT_THROW(ic::options::from_env(), ic::error);
  clear_placement_env();
  ::setenv("ITYR_REPLICATION_POOL_BLOCKS", "0", 1);
  EXPECT_NO_THROW(ic::options::from_env());
  ::setenv("ITYR_REPLICATION", "1", 1);
  EXPECT_THROW(ic::options::from_env(), ic::error);
  clear_placement_env();
}

TEST(OptionsPlacement, BadReaderThresholdThrows) {
  clear_placement_env();
  ::setenv("ITYR_REPLICATION_MIN_READERS", "1", 1);
  EXPECT_THROW(ic::options::from_env(), ic::error);
  try {
    ic::options::from_env();
    FAIL() << "expected ic::error";
  } catch (const ic::error& e) {
    EXPECT_NE(std::string(e.what()).find("ITYR_REPLICATION_MIN_READERS"), std::string::npos);
  }
  clear_placement_env();
}

TEST(OptionsPlacement, AbsurdHotBlocksTopnThrows) {
  clear_placement_env();
  ::setenv("ITYR_HOT_BLOCKS_TOPN", "100000", 1);
  EXPECT_THROW(ic::options::from_env(), ic::error);
  ::setenv("ITYR_HOT_BLOCKS_TOPN", "65536", 1);  // boundary is legal
  EXPECT_EQ(ic::options::from_env().hot_blocks_topn, 65536u);
  clear_placement_env();
}

TEST(OptionsPlacement, ValidateDirectly) {
  // The validator is callable on programmatically built options too (benches
  // and tests construct options without from_env).
  EXPECT_NO_THROW(ic::validate_placement(true, true, 1e-3, 0.5, 16, 16, 2, 10));
  EXPECT_THROW(ic::validate_placement(false, false, 0.0, 0.5, 16, 16, 2, 0), ic::error);
  EXPECT_THROW(ic::validate_placement(false, false, 1e-3, 2.0, 16, 16, 2, 0), ic::error);
  EXPECT_THROW(ic::validate_placement(true, false, 1e-3, 0.5, 0, 16, 2, 0), ic::error);
  EXPECT_THROW(ic::validate_placement(false, true, 1e-3, 0.5, 16, 0, 2, 0), ic::error);
  EXPECT_THROW(ic::validate_placement(false, true, 1e-3, 0.5, 16, 16, 1, 0), ic::error);
  EXPECT_THROW(ic::validate_placement(false, false, 1e-3, 0.5, 16, 16, 2, 1 << 20), ic::error);
}
