#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "itoyori/rma/window.hpp"
#include "itoyori/sim/engine.hpp"

namespace ityr::test {

/// Scripted rma::channel for unit-testing the cache engines without booting
/// the full network model. Data moves by memcpy at issue time (the same
/// admissible completion order the real context uses); completion times
/// follow a fixed linear latency model so tests can predict stalls exactly;
/// every operation is recorded for assertions. flush() and wait_until()
/// advance the calling rank's virtual clock the way the network does, so the
/// engines' stall accounting (fetch_stall_s, release_stall_s) is observable.
class mock_channel final : public rma::channel {
public:
  struct op {
    bool is_put = false;
    int target = -1;
    std::uint64_t off = 0;
    std::size_t len = 0;  ///< total bytes (multi ops: sum over segments)
  };

  explicit mock_channel(sim::engine& eng, double latency = 1.0e-6, double per_byte = 1.0e-9)
      : eng_(eng), latency_(latency), per_byte_(per_byte) {}

  double get_nb(rma::window& w, int target, std::uint64_t off, void* dst,
                std::size_t len) override {
    std::memcpy(dst, w.addr(target, off, len), len);
    return record({false, target, off, len});
  }

  double put_nb(rma::window& w, int target, std::uint64_t off, const void* src,
                std::size_t len) override {
    std::memcpy(w.addr(target, off, len), src, len);
    return record({true, target, off, len});
  }

  double get_nb_multi(rma::window& w, int target, const rma::io_segment* segs,
                      std::size_t n) override {
    std::size_t total = 0;
    for (std::size_t i = 0; i < n; i++) {
      std::memcpy(segs[i].local, w.addr(target, segs[i].off, segs[i].len), segs[i].len);
      total += segs[i].len;
    }
    return record({false, target, segs[0].off, total});
  }

  double put_nb_multi(rma::window& w, int target, const rma::io_segment* segs,
                      std::size_t n) override {
    std::size_t total = 0;
    for (std::size_t i = 0; i < n; i++) {
      std::memcpy(w.addr(target, segs[i].off, segs[i].len), segs[i].local, segs[i].len);
      total += segs[i].len;
    }
    return record({true, target, segs[0].off, total});
  }

  void flush() override {
    flushes_++;
    if (pending_until_ > eng_.now()) eng_.charge(pending_until_ - eng_.now());
  }

  void wait_until(double t) override {
    waits_.push_back(t);
    if (t > eng_.now()) eng_.charge(t - eng_.now());
  }

  std::uint64_t get_value(rma::window& w, int target, std::uint64_t off) override {
    std::uint64_t v;
    std::memcpy(&v, w.addr(target, off, sizeof(v)), sizeof(v));
    value_gets_++;
    return v;
  }

  void atomic_max(rma::window& w, int target, std::uint64_t off, std::uint64_t value) override {
    auto* p = reinterpret_cast<std::uint64_t*>(w.addr(target, off, sizeof(std::uint64_t)));
    *p = std::max(*p, value);
    atomic_maxes_++;
  }

  // ---- assertions ----
  const std::vector<op>& ops() const { return ops_; }
  const std::vector<double>& waits() const { return waits_; }  ///< wait_until args
  std::size_t n_flushes() const { return flushes_; }
  std::size_t n_value_gets() const { return value_gets_; }
  std::size_t n_atomic_maxes() const { return atomic_maxes_; }
  /// Latest modelled completion over everything issued so far.
  double pending_until() const { return pending_until_; }
  /// True when nothing issued is still in flight at the caller's clock.
  bool drained() const { return pending_until_ <= eng_.now(); }

private:
  double record(op o) {
    ops_.push_back(o);
    const double done = eng_.now() + latency_ + per_byte_ * static_cast<double>(o.len);
    pending_until_ = std::max(pending_until_, done);
    return done;
  }

  sim::engine& eng_;
  const double latency_;
  const double per_byte_;
  std::vector<op> ops_;
  std::vector<double> waits_;
  double pending_until_ = 0;
  std::size_t flushes_ = 0;
  std::size_t value_gets_ = 0;
  std::size_t atomic_maxes_ = 0;
};

}  // namespace ityr::test
