#pragma once

#include <cstdlib>
#include <functional>

#include "itoyori/common/options.hpp"
#include "itoyori/pgas/pgas_space.hpp"
#include "itoyori/rma/window.hpp"
#include "itoyori/sim/engine.hpp"

namespace ityr::test {

/// Small, fast, deterministic cluster configuration for unit tests:
/// 4 KiB blocks, 1 KiB sub-blocks, a 16-block cache.
inline common::options tiny_opts(int nodes = 2, int rpn = 2) {
  common::options o;
  o.n_nodes = nodes;
  o.ranks_per_node = rpn;
  o.deterministic = true;
  o.block_size = 4 * common::KiB;
  o.sub_block_size = 1 * common::KiB;
  o.cache_size = 64 * common::KiB;
  o.coll_heap_per_rank = 256 * common::KiB;
  o.noncoll_heap_per_rank = 128 * common::KiB;
  // Tests build their options directly, so the usual from_env() path never
  // runs; honor ITYR_ASYNC_RELEASE here so the whole suite can be re-run
  // with the asynchronous release protocol (the itoyori_tests_async_release
  // ctest) without editing every test.
  if (const char* v = std::getenv("ITYR_ASYNC_RELEASE")) {
    o.async_release = std::string(v) == "1" || std::string(v) == "true";
  }
  return o;
}

/// Builds engine + RMA + PGAS and runs `body(rank, space)` on every rank.
inline void run_pgas(const common::options& o,
                     const std::function<void(int, pgas::pgas_space&)>& body) {
  sim::engine eng(o);
  rma::context rma(eng);
  pgas::pgas_space space(eng, rma);
  eng.run([&](int r) { body(r, space); });
}

}  // namespace ityr::test
