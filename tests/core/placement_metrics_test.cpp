// Metrics-registry export of the dynamic data-placement engine: the pgas.*
// series and the hot_blocks JSON section exist exactly when the engine does,
// so stats files written with ITYR_MIGRATION=0 ITYR_REPLICATION=0 stay
// byte-identical to pre-placement ones.

#include <gtest/gtest.h>

#include <string>

#include "../support/fixture.hpp"
#include "itoyori/apps/cilksort.hpp"
#include "itoyori/core/metrics.hpp"

namespace {

std::string run_cilksort_stats(bool migration, bool replication, std::size_t topn) {
  auto o = ityr::test::tiny_opts(2, 2);
  o.coll_heap_per_rank = 2 * ityr::common::MiB;
  o.migration = migration;
  o.replication = replication;
  o.hot_blocks_topn = topn;
  o.placement_interval = 2.0e-4;
  ityr::runtime rt(o);
  rt.spmd([] {
    const std::size_t n = 30000;
    auto a = ityr::coll_new<std::uint32_t>(n);
    auto b = ityr::coll_new<std::uint32_t>(n);
    ityr::root_exec([=] {
      ityr::apps::cilksort_generate(a, n, 9, 512);
      ityr::apps::cilksort(ityr::global_span<std::uint32_t>(a, n),
                           ityr::global_span<std::uint32_t>(b, n), 512);
    });
    ityr::coll_delete(a, n);
    ityr::coll_delete(b, n);
  });
  return rt.metrics().to_json();
}

}  // namespace

TEST(PlacementMetrics, OffPathEmitsNoPlacementSeries) {
  const std::string json = run_cilksort_stats(false, false, 0);
  EXPECT_EQ(json.find("pgas."), std::string::npos);
  EXPECT_EQ(json.find("hot_blocks"), std::string::npos);
}

TEST(PlacementMetrics, EnabledRunExportsPlacementSeries) {
  const std::string json = run_cilksort_stats(true, true, 0);
  EXPECT_NE(json.find("\"pgas.placement_passes\""), std::string::npos);
  EXPECT_NE(json.find("\"pgas.migrations\""), std::string::npos);
  EXPECT_NE(json.find("\"pgas.replicas\""), std::string::npos);
  EXPECT_NE(json.find("\"pgas.forward_retries\""), std::string::npos);
  EXPECT_NE(json.find("\"pgas.bytes_saved.class0\""), std::string::npos);
  // topn == 0: the series exist but no hot-block section is emitted.
  EXPECT_EQ(json.find("hot_blocks"), std::string::npos);
}

TEST(PlacementMetrics, TopnEmitsHotBlockSection) {
  const std::string json = run_cilksort_stats(false, false, 8);
  EXPECT_NE(json.find("\"hot_blocks\""), std::string::npos);
  EXPECT_NE(json.find("\"block"), std::string::npos);
  EXPECT_NE(json.find("\"reader_mask\": \"0x"), std::string::npos);
  EXPECT_NE(json.find("\"fetch_bytes\""), std::string::npos);
}
