#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "../support/fixture.hpp"
#include "itoyori/core/global_vector.hpp"
#include "itoyori/core/scan.hpp"
#include "itoyori/core/thread.hpp"

namespace {

ityr::options opts(int nodes = 2, int rpn = 2) {
  auto o = ityr::test::tiny_opts(nodes, rpn);
  o.coll_heap_per_rank = 2 * ityr::common::MiB;
  o.noncoll_heap_per_rank = 4 * ityr::common::MiB;
  return o;
}

}  // namespace

TEST(GlobalVector, StartsEmpty) {
  ityr::runtime rt(opts(1, 1));
  rt.spmd([&] {
    ityr::global_vector<int> v;
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.size(), 0u);
    EXPECT_EQ(v.capacity(), 0u);
    v.destroy();  // no-op on empty
  });
}

TEST(GlobalVector, PushBackGrowsAndPreservesValues) {
  ityr::runtime rt(opts(1, 1));
  rt.spmd([&] {
    ityr::global_vector<int> v;
    for (int i = 0; i < 1000; i++) v.push_back(i * 3);
    EXPECT_EQ(v.size(), 1000u);
    EXPECT_GE(v.capacity(), 1000u);
    for (int i = 0; i < 1000; i += 37) EXPECT_EQ(v.get(static_cast<std::size_t>(i)), i * 3);
    v.destroy();
  });
}

TEST(GlobalVector, ReserveRelocatesAcrossBlocks) {
  ityr::runtime rt(opts(1, 1));
  rt.spmd([&] {
    // Elements larger than a sub-block, enough to span multiple 4 KiB blocks.
    struct big {
      std::uint64_t vals[32];
    };
    ityr::global_vector<big> v;
    for (std::uint64_t i = 0; i < 64; i++) {
      big b{};
      b.vals[0] = i;
      b.vals[31] = i * 7;
      v.push_back(b);
    }
    for (std::uint64_t i = 0; i < 64; i += 13) {
      auto b = v.get(i);
      EXPECT_EQ(b.vals[0], i);
      EXPECT_EQ(b.vals[31], i * 7);
    }
    v.destroy();
  });
}

TEST(GlobalVector, HandleStoredInGlobalMemory) {
  // The vector handle is itself a global object inside another structure —
  // the ExaFMM pattern (cells contain vectors; paper Section 6.4).
  ityr::runtime rt(opts(1, 2));
  rt.spmd([&] {
    struct cell {
      int id;
      ityr::global_vector<double> samples;
    };
    ityr::root_exec([] {
      auto c = ityr::noncoll_new<cell>(1);
      ityr::with_checkout(c, 1, ityr::access_mode::write, [](cell* p) {
        p->id = 5;
        p->samples = ityr::global_vector<double>();
      });
      // Mutate the vector through the enclosing global object.
      for (int i = 0; i < 20; i++) {
        auto v = ityr::with_checkout(c, 1, ityr::access_mode::read,
                                     [](const cell* p) { return p->samples; });
        v.push_back(i * 0.5);
        ityr::with_checkout(c, 1, ityr::access_mode::read_write,
                            [&](cell* p) { p->samples = v; });
      }
      auto v = ityr::with_checkout(c, 1, ityr::access_mode::read,
                                   [](const cell* p) { return p->samples; });
      EXPECT_EQ(v.size(), 20u);
      EXPECT_DOUBLE_EQ(v.get(19), 9.5);
      v.destroy();
      ityr::noncoll_delete(c, 1);
    });
  });
}

TEST(GlobalVector, ClearKeepsCapacity) {
  ityr::runtime rt(opts(1, 1));
  rt.spmd([&] {
    ityr::global_vector<int> v(100);
    const auto cap = v.capacity();
    v.clear();
    EXPECT_EQ(v.size(), 0u);
    EXPECT_EQ(v.capacity(), cap);
    v.destroy();
  });
}

TEST(Thread, JoinReturnsValue) {
  ityr::runtime rt(opts(1, 2));
  rt.spmd([&] {
    int v = ityr::root_exec([] {
      ityr::thread<int> th([] { return 41 + 1; });
      EXPECT_TRUE(th.joinable());
      return th.join();
    });
    EXPECT_EQ(v, 42);
  });
}

TEST(Thread, VoidThreadAndDeduction) {
  ityr::runtime rt(opts(1, 1));
  rt.spmd([&] {
    ityr::root_exec([] {
      int side_effect = 0;
      // NOTE: capturing the local is safe here only because the child joins
      // before the enclosing frame can move (single rank).
      ityr::thread th([&side_effect] { side_effect = 7; });
      static_assert(std::is_same_v<decltype(th), ityr::thread<void>>);
      th.join();
      EXPECT_EQ(side_effect, 7);
    });
  });
}

TEST(Thread, ManyConcurrentThreads) {
  ityr::runtime rt(opts(2, 2));
  rt.spmd([&] {
    long total = ityr::root_exec([] {
      std::vector<ityr::thread<long>> threads;
      threads.reserve(16);
      for (long k = 0; k < 16; k++) {
        threads.emplace_back([k] {
          long s = 0;
          for (long i = 0; i < 1000; i++) s += k * i;
          return s;
        });
      }
      long sum = 0;
      for (auto& th : threads) sum += th.join();
      return sum;
    });
    long expect = 0;
    for (long k = 0; k < 16; k++) expect += k * (1000L * 999 / 2);
    EXPECT_EQ(total, expect);
  });
}

TEST(Thread, SerializedFlagOnSingleRank) {
  ityr::runtime rt(opts(1, 1));
  rt.spmd([&] {
    ityr::root_exec([] {
      ityr::thread<int> th([] { return 1; });
      EXPECT_TRUE(th.serialized());  // no thief exists
      th.join();
    });
  });
}

class ScanParam : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ScanParam, InclusiveScanMatchesSerial) {
  const auto [n, grain] = GetParam();
  ityr::runtime rt(opts());
  rt.spmd([&, n = n, grain = grain] {
    auto in = ityr::coll_new<long>(n);
    auto out = ityr::coll_new<long>(n);
    bool ok = ityr::root_exec([=] {
      ityr::parallel_for_each(in, n, grain, ityr::access_mode::write,
                              [](long& x, std::size_t i) {
                                x = static_cast<long>((i * 2654435761u) % 1000) - 500;
                              });
      long total = ityr::parallel_scan_inclusive(in, out, n, grain, 0L,
                                                 [](long a, long b) { return a + b; });
      // Serial verification against a local replay.
      bool good = true;
      long running = 0;
      for (std::size_t base = 0; base < n && good; base += grain) {
        const std::size_t len = std::min(grain, n - base);
        ityr::with_checkout(in + static_cast<std::ptrdiff_t>(base), len,
                            ityr::access_mode::read, [&](const long* pi) {
                              ityr::with_checkout(out + static_cast<std::ptrdiff_t>(base), len,
                                                  ityr::access_mode::read, [&](const long* po) {
                                                    for (std::size_t i = 0; i < len; i++) {
                                                      running += pi[i];
                                                      if (po[i] != running) good = false;
                                                    }
                                                  });
                            });
      }
      return good && total == running;
    });
    EXPECT_TRUE(ok) << "n=" << n << " grain=" << grain;
    ityr::coll_delete(in, n);
    ityr::coll_delete(out, n);
  });
}

INSTANTIATE_TEST_SUITE_P(Shapes, ScanParam,
                         ::testing::Values(std::make_tuple(std::size_t{1}, std::size_t{64}),
                                           std::make_tuple(std::size_t{63}, std::size_t{64}),
                                           std::make_tuple(std::size_t{64}, std::size_t{64}),
                                           std::make_tuple(std::size_t{1000}, std::size_t{64}),
                                           std::make_tuple(std::size_t{4096}, std::size_t{256}),
                                           std::make_tuple(std::size_t{10007}, std::size_t{128})));

TEST(Scan, InPlaceScanWorks) {
  ityr::runtime rt(opts(1, 2));
  rt.spmd([&] {
    const std::size_t n = 1000;
    auto a = ityr::coll_new<int>(n);
    bool ok = ityr::root_exec([=] {
      ityr::parallel_fill(a, n, 100, 1);
      ityr::parallel_scan_inclusive(a, a, n, 100, 0, [](int x, int y) { return x + y; });
      // a[i] must now be i+1.
      return ityr::with_checkout(a, n, ityr::access_mode::read, [&](const int* p) {
        for (std::size_t i = 0; i < n; i++) {
          if (p[i] != static_cast<int>(i) + 1) return false;
        }
        return true;
      });
    });
    EXPECT_TRUE(ok);
    ityr::coll_delete(a, n);
  });
}

TEST(Scan, NonCommutativeOperatorKeepsOrder) {
  // Scan with string-like composition modelled as 2x2 integer matrices
  // (associative, non-commutative): any reordering bug changes the result.
  struct mat {
    unsigned long a, b, c, d;  // unsigned: wraparound is defined (mod 2^64)
  };
  auto mul = [](mat x, mat y) {
    return mat{x.a * y.a + x.b * y.c, x.a * y.b + x.b * y.d, x.c * y.a + x.d * y.c,
               x.c * y.b + x.d * y.d};
  };
  ityr::runtime rt(opts());
  rt.spmd([&] {
    const std::size_t n = 300;
    auto in = ityr::coll_new<mat>(n);
    auto out = ityr::coll_new<mat>(n);
    bool ok = ityr::root_exec([=] {
      ityr::parallel_for_each(in, n, 32, ityr::access_mode::write,
                              [](mat& m, std::size_t i) {
                                // Fibonacci-ish generators with small variation.
                                m = {1, 1 + static_cast<unsigned long>(i % 2), 1, 0};
                              });
      mat total = ityr::parallel_scan_inclusive(in, out, n, 32, mat{1, 0, 0, 1}, mul);
      // Serial replay.
      mat run{1, 0, 0, 1};
      bool good = true;
      for (std::size_t i = 0; i < n; i++) {
        mat x = ityr::get(in + static_cast<std::ptrdiff_t>(i));
        run = mul(run, x);
        mat got = ityr::get(out + static_cast<std::ptrdiff_t>(i));
        if (got.a != run.a || got.b != run.b || got.c != run.c || got.d != run.d) good = false;
      }
      return good && total.a == run.a && total.d == run.d;
    });
    EXPECT_TRUE(ok);
    ityr::coll_delete(in, n);
    ityr::coll_delete(out, n);
  });
}

