#include "itoyori/core/ityr.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../support/fixture.hpp"

namespace {

ityr::options api_opts(int nodes = 2, int rpn = 2) {
  auto o = ityr::test::tiny_opts(nodes, rpn);
  o.coll_heap_per_rank = 1 * ityr::common::MiB;
  return o;
}

}  // namespace

TEST(CoreApi, GlobalPtrArithmetic) {
  ityr::global_ptr<int> p(0x10000);
  EXPECT_EQ((p + 4).raw(), 0x10000u + 16);
  EXPECT_EQ((p + 4) - p, 4);
  EXPECT_TRUE(p < p + 1);
  EXPECT_FALSE(ityr::global_ptr<int>{});
  auto q = p.cast<char>();
  EXPECT_EQ(q.raw(), p.raw());
}

TEST(CoreApi, GlobalSpanSplit) {
  ityr::global_span<int> s(ityr::global_ptr<int>(0x10000), 10);
  auto [a, b] = ityr::split_two(s);
  EXPECT_EQ(a.size(), 5u);
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(b.data() - a.data(), 5);
  auto [c, d] = ityr::split_at(s, 3);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(d.size(), 7u);
}

TEST(CoreApi, PutGetRoundTrip) {
  ityr::runtime rt(api_opts());
  rt.spmd([&] {
    auto a = ityr::coll_new<long>(1024);
    if (ityr::my_rank() == 0) {
      for (int i = 0; i < 1024; i += 64) ityr::put(a + i, long{i} * 3);
      ityr::rt().pgas().release();
    }
    ityr::barrier();
    if (ityr::my_rank() == 3) {
      for (int i = 0; i < 1024; i += 64) EXPECT_EQ(ityr::get(a + i), long{i} * 3);
    }
    ityr::barrier();
    ityr::coll_delete(a, 1024);
  });
}

TEST(CoreApi, ParallelFillAndReduce) {
  ityr::runtime rt(api_opts());
  rt.spmd([&] {
    auto a = ityr::coll_new<int>(10000);
    long sum = ityr::root_exec([=] {
      ityr::parallel_fill(a, 10000, 256, 7);
      return ityr::parallel_reduce(
          a, 10000, 256, 0L, [](int x) { return static_cast<long>(x); },
          [](long x, long y) { return x + y; });
    });
    EXPECT_EQ(sum, 70000);
    ityr::coll_delete(a, 10000);
  });
}

TEST(CoreApi, ParallelForEachWithIndex) {
  ityr::runtime rt(api_opts());
  rt.spmd([&] {
    auto a = ityr::coll_new<std::uint64_t>(4096);
    ityr::root_exec([=] {
      ityr::parallel_for_each(a, 4096, 128, ityr::access_mode::write,
                              [](std::uint64_t& x, std::size_t i) { x = i * i; });
      // Verify with a reduction over (value - i*i).
      std::uint64_t bad = ityr::parallel_reduce(
          a, 4096, 128, std::uint64_t{0},
          [](std::uint64_t v) { return v; },
          [](std::uint64_t x, std::uint64_t y) { return x + y; });
      std::uint64_t expect = 0;
      for (std::uint64_t i = 0; i < 4096; i++) expect += i * i;
      EXPECT_EQ(bad, expect);
    });
    ityr::coll_delete(a, 4096);
  });
}

TEST(CoreApi, ParallelTransform) {
  ityr::runtime rt(api_opts());
  rt.spmd([&] {
    auto in = ityr::coll_new<int>(2048);
    auto out = ityr::coll_new<long>(2048);
    ityr::root_exec([=] {
      ityr::parallel_for_each(in, 2048, 128, ityr::access_mode::write,
                              [](int& x, std::size_t i) { x = static_cast<int>(i); });
      ityr::parallel_transform(in, out, 2048, 128, [](int x) { return long{x} * 2 + 1; });
      long sum = ityr::parallel_reduce(
          out, 2048, 128, 0L, [](long v) { return v; }, [](long a, long b) { return a + b; });
      EXPECT_EQ(sum, 2048L * 2047 + 2048);  // sum(2i+1) = 2*sum(i) + n
    });
    ityr::coll_delete(in, 2048);
    ityr::coll_delete(out, 2048);
  });
}

TEST(CoreApi, RepeatedMutationRoundsUnderStealing) {
  // DRF increments across rounds: every round is separated by fork-join
  // synchronization, so all caches must observe the previous round.
  ityr::runtime rt(api_opts(2, 2));
  rt.spmd([&] {
    const std::size_t n = 2048;
    auto a = ityr::coll_new<int>(n);
    ityr::root_exec([=] {
      ityr::parallel_fill(a, n, 64, 0);
      for (int round = 0; round < 5; round++) {
        ityr::parallel_for_each(a, n, 64, ityr::access_mode::read_write,
                                [](int& x, std::size_t) { x++; });
      }
      long sum = ityr::parallel_reduce(
          a, n, 64, 0L, [](int v) { return static_cast<long>(v); },
          [](long x, long y) { return x + y; });
      EXPECT_EQ(sum, static_cast<long>(n) * 5);
    });
    ityr::coll_delete(a, n);
  });
  EXPECT_GT(rt.sched().get_stats().steals, 0u);
}

namespace {
struct nontrivial {
  std::string name;
  std::vector<int> values;
  nontrivial(std::string n, std::vector<int> v) : name(std::move(n)), values(std::move(v)) {}
};
}  // namespace

TEST(CoreApi, NontriviallyCopyableGlobalObjects) {
  // Checkout/checkin never changes an object's virtual address, so types
  // with internal invariants can live in global memory (paper Section 3.2).
  // NOTE: containers holding *local heap* pointers (like std::vector) are
  // only safe under the simulator's shared-memory substitution; this test
  // documents the paper's API property with a self-contained type instead.
  ityr::runtime rt(api_opts(1, 1));
  rt.spmd([&] {
    struct fixed_obj {
      int header;
      std::array<double, 4> payload;
      fixed_obj(int h, double base) : header(h), payload{base, base + 1, base + 2, base + 3} {}
      ~fixed_obj() { header = -1; }
    };
    auto p = ityr::make_global<fixed_obj>(7, 1.5);
    ityr::with_checkout(p, 1, ityr::access_mode::read, [](const fixed_obj* o) {
      EXPECT_EQ(o->header, 7);
      EXPECT_DOUBLE_EQ(o->payload[3], 4.5);
    });
    ityr::destroy_global(p);
  });
}

TEST(CoreApi, NoCachePolicyUsesGetPut) {
  auto o = api_opts(2, 1);
  o.policy = ityr::cache_policy::none;
  ityr::runtime rt(o);
  rt.spmd([&] {
    auto a = ityr::coll_new<int>(4096);
    ityr::root_exec([=] {
      ityr::parallel_fill(a, 4096, 256, 5);
      long sum = ityr::parallel_reduce(
          a, 4096, 256, 0L, [](int v) { return static_cast<long>(v); },
          [](long x, long y) { return x + y; });
      EXPECT_EQ(sum, 4096L * 5);
    });
    // checkout() proper must reject policy none.
    EXPECT_THROW(ityr::checkout(a, 1, ityr::access_mode::read), ityr::common::api_error);
    ityr::coll_delete(a, 4096);
  });
  // The cache must have stayed cold.
  EXPECT_EQ(rt.pgas().aggregate_stats().checkouts, 0u);
}

TEST(CoreApi, CheckoutSpanRaii) {
  ityr::runtime rt(api_opts(1, 1));
  rt.spmd([&] {
    auto a = ityr::coll_new<int>(64);
    {
      ityr::checkout_span<int> cs(a, 64, ityr::access_mode::write);
      for (std::size_t i = 0; i < cs.size(); i++) cs[i] = static_cast<int>(i);
    }
    {
      ityr::checkout_span<int> cs(a, 64, ityr::access_mode::read);
      EXPECT_EQ(cs[63], 63);
    }
    EXPECT_EQ(rt.pgas().cache_of(0).checked_out_bytes(), 0u);
    ityr::coll_delete(a, 64);
  });
}

TEST(CoreApi, NoncollectiveNewDelete) {
  ityr::runtime rt(api_opts(1, 2));
  rt.spmd([&] {
    auto p = ityr::noncoll_new<double>(16);
    ityr::with_checkout(p, 16, ityr::access_mode::write, [](double* d) {
      for (int i = 0; i < 16; i++) d[i] = i * 0.5;
    });
    ityr::with_checkout(p, 16, ityr::access_mode::read,
                        [](const double* d) { EXPECT_DOUBLE_EQ(d[15], 7.5); });
    ityr::noncoll_delete(p, 16);
  });
}

TEST(CoreApi, ProfilerAttributesEvents) {
  auto o = api_opts(2, 1);
  o.deterministic = false;  // measured time: cheap ops get real nonzero cost
  ityr::runtime rt(o);
  rt.prof().set_enabled(true);
  rt.spmd([&] {
    auto a = ityr::coll_new<int>(8192);
    ityr::root_exec([=] {
      ityr::parallel_fill(a, 8192, 512, 3);
      (void)ityr::parallel_reduce(
          a, 8192, 512, 0L, [](int v) { return static_cast<long>(v); },
          [](long x, long y) { return x + y; });
    });
    ityr::coll_delete(a, 8192);
  });
  using ityr::common::prof_event;
  EXPECT_GT(rt.prof().total(prof_event::checkout), 0.0);
  EXPECT_GT(rt.prof().total(prof_event::checkin), 0.0);
  EXPECT_GT(rt.prof().total(prof_event::spmd), 0.0);
}
