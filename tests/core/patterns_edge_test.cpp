// Edge cases of the range patterns: empty ranges, grain >= n, grain = 1,
// single elements, and misaligned spans crossing block boundaries.

#include <gtest/gtest.h>

#include "../support/fixture.hpp"
#include "itoyori/core/ityr.hpp"

namespace {

ityr::options opts() {
  auto o = ityr::test::tiny_opts(2, 2);
  o.coll_heap_per_rank = 1 * ityr::common::MiB;
  return o;
}

}  // namespace

TEST(PatternsEdge, EmptyRangeIsNoop) {
  ityr::runtime rt(opts());
  rt.spmd([&] {
    auto a = ityr::coll_new<int>(16);
    ityr::root_exec([=] {
      ityr::parallel_for_each(a, 0, 4, ityr::access_mode::write,
                              [](int&, std::size_t) { FAIL() << "must not be called"; });
      long s = ityr::parallel_reduce(
          a, 0, 4, -7L, [](int v) { return static_cast<long>(v); },
          [](long x, long y) { return x + y; });
      EXPECT_EQ(s, -7);  // init returned untouched
    });
    ityr::coll_delete(a, 16);
  });
}

TEST(PatternsEdge, SingleElement) {
  ityr::runtime rt(opts());
  rt.spmd([&] {
    auto a = ityr::coll_new<int>(1);
    ityr::root_exec([=] {
      ityr::parallel_fill(a, 1, 16, 99);
      EXPECT_EQ(ityr::get(a), 99);
      long s = ityr::parallel_reduce(
          a, 1, 16, 0L, [](int v) { return static_cast<long>(v); },
          [](long x, long y) { return x + y; });
      EXPECT_EQ(s, 99);
    });
    ityr::coll_delete(a, 1);
  });
}

TEST(PatternsEdge, GrainLargerThanRange) {
  ityr::runtime rt(opts());
  rt.spmd([&] {
    auto a = ityr::coll_new<int>(100);
    ityr::root_exec([=] {
      ityr::parallel_for_each(a, 100, 100000, ityr::access_mode::write,
                              [](int& x, std::size_t i) { x = static_cast<int>(i); });
      long s = ityr::parallel_reduce(
          a, 100, 100000, 0L, [](int v) { return static_cast<long>(v); },
          [](long x, long y) { return x + y; });
      EXPECT_EQ(s, 99L * 100 / 2);
    });
    ityr::coll_delete(a, 100);
  });
}

TEST(PatternsEdge, GrainOfOneMaximizesTasks) {
  ityr::runtime rt(opts());
  rt.spmd([&] {
    auto a = ityr::coll_new<int>(64);
    ityr::root_exec([=] {
      ityr::parallel_for_each(a, 64, 1, ityr::access_mode::write,
                              [](int& x, std::size_t i) { x = static_cast<int>(2 * i); });
      long s = ityr::parallel_reduce(
          a, 64, 1, 0L, [](int v) { return static_cast<long>(v); },
          [](long x, long y) { return x + y; });
      EXPECT_EQ(s, 2L * 63 * 64 / 2);
    });
    ityr::coll_delete(a, 64);
  });
  EXPECT_GE(rt.sched().get_stats().forks, 63u);  // full binary splits
}

TEST(PatternsEdge, MisalignedSpanAcrossBlocks) {
  // A range starting mid-block and ending mid-block, covering several block
  // boundaries with odd sizes.
  ityr::runtime rt(opts());
  rt.spmd([&] {
    auto base = ityr::coll_new<std::uint8_t>(6 * 4096);
    auto a = (base + 1237).cast<std::uint8_t>();
    const std::size_t n = 3 * 4096 + 531;
    ityr::root_exec([=] {
      ityr::parallel_for_each(a, n, 700, ityr::access_mode::write,
                              [](std::uint8_t& x, std::size_t i) {
                                x = static_cast<std::uint8_t>(i * 13);
                              });
      long s = ityr::parallel_reduce(
          a, n, 700, 0L, [](std::uint8_t v) { return static_cast<long>(v); },
          [](long x, long y) { return x + y; });
      long expect = 0;
      for (std::size_t i = 0; i < n; i++) expect += static_cast<std::uint8_t>(i * 13);
      EXPECT_EQ(s, expect);
    });
    ityr::coll_delete(base, 6 * 4096);
  });
}

TEST(PatternsEdge, TransformBetweenDifferentElementSizes) {
  ityr::runtime rt(opts());
  rt.spmd([&] {
    const std::size_t n = 513;
    auto in = ityr::coll_new<std::uint8_t>(n);
    auto out = ityr::coll_new<std::uint64_t>(n);
    ityr::root_exec([=] {
      ityr::parallel_for_each(in, n, 64, ityr::access_mode::write,
                              [](std::uint8_t& x, std::size_t i) {
                                x = static_cast<std::uint8_t>(i);
                              });
      ityr::parallel_transform(in, out, n, 64,
                               [](std::uint8_t v) { return std::uint64_t{v} * 1000; });
      EXPECT_EQ(ityr::get(out + 300), std::uint64_t{300 % 256} * 1000);
    });
    ityr::coll_delete(in, n);
    ityr::coll_delete(out, n);
  });
}

TEST(PatternsEdge, ReduceWithNonCommutativeCombineKeepsLeftToRightOrder) {
  // parallel_reduce guarantees an ordered reduction tree over contiguous
  // subranges, so associative-but-non-commutative combines are safe.
  ityr::runtime rt(opts());
  rt.spmd([&] {
    const std::size_t n = 200;
    auto a = ityr::coll_new<char>(n);
    ityr::root_exec([=] {
      ityr::parallel_for_each(a, n, 16, ityr::access_mode::write,
                              [](char& c, std::size_t i) { c = 'a' + static_cast<char>(i % 26); });
      // Build a 64-bit rolling hash (order-sensitive, associative via
      // length-tagged composition).
      struct tagged {
        std::uint64_t hash;
        std::uint64_t pow;  // 31^len
      };
      tagged h = ityr::parallel_reduce(
          a, n, 16, tagged{0, 1},
          [](char c) { return tagged{static_cast<std::uint64_t>(c), 31}; },
          [](tagged x, tagged y) {
            return tagged{x.hash * y.pow + y.hash, x.pow * y.pow};
          });
      std::uint64_t expect = 0;
      for (std::size_t i = 0; i < n; i++) {
        expect = expect * 31 + static_cast<std::uint64_t>('a' + static_cast<char>(i % 26));
      }
      EXPECT_EQ(h.hash, expect);
    });
    ityr::coll_delete(a, n);
  });
}

TEST(PatternsEdge, SpanOverloads) {
  ityr::runtime rt(opts());
  rt.spmd([&] {
    const std::size_t n = 500;
    auto a = ityr::coll_new<int>(n);
    ityr::global_span<int> s(a, n);
    ityr::root_exec([=] {
      ityr::parallel_fill(s, 64, 3);
      ityr::parallel_for_each(s, 64, ityr::access_mode::read_write,
                              [](int& x, std::size_t i) { x += static_cast<int>(i); });
      long sum = ityr::parallel_reduce(
          s, 64, 0L, [](int v) { return static_cast<long>(v); },
          [](long x, long y) { return x + y; });
      EXPECT_EQ(sum, 3L * 500 + 499L * 500 / 2);
    });
    ityr::coll_delete(a, n);
  });
}
