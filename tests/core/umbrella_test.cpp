// The umbrella header must be self-sufficient and expose the whole API.

#include "itoyori/itoyori.hpp"

#include <gtest/gtest.h>

#include "../support/fixture.hpp"

TEST(Umbrella, EverythingCompilesAndRuns) {
  auto o = ityr::test::tiny_opts(1, 2);
  ityr::runtime rt(o);
  rt.spmd([] {
    auto a = ityr::coll_new<int>(256);
    int total = ityr::root_exec([=] {
      ityr::parallel_fill(a, 256, 64, 2);
      ityr::thread<int> th(
          [=] { return static_cast<int>(ityr::parallel_scan_inclusive(
                    a, a, 256, 64, 0, [](int x, int y) { return x + y; })); });
      ityr::global_vector<int> v;
      v.push_back(th.join());
      int r = v.get(0);
      v.destroy();
      return r;
    });
    EXPECT_EQ(total, 512);
    ityr::coll_delete(a, 256);
  });
}
