/// Direct unit tests for the block_directory layer: slot allocation and
/// reuse, the client escalation hooks (dirty flush before declaring
/// too-much-checkout), and the eviction_policy seam — strict LRU vs
/// clock/second-chance pick observably different victims under the same
/// access sequence.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>

#include "../support/fixture.hpp"
#include "itoyori/common/error.hpp"
#include "itoyori/pgas/block_directory.hpp"
#include "itoyori/pgas/eviction_policy.hpp"

namespace ip = ityr::pgas;
namespace ic = ityr::common;
namespace it = ityr::test;

namespace {

constexpr std::size_t kBlock = 4 * ic::KiB;

/// Forwarding client so tests can observe/wire the directory's callbacks
/// after construction.
struct test_client final : ip::block_directory::client {
  std::function<void(ip::mem_block&)> on_evict;
  std::function<void()> on_flush;
  void on_block_evicted(ip::mem_block& mb) override {
    if (on_evict) on_evict(mb);
  }
  void flush_dirty_for_eviction() override {
    if (on_flush) on_flush();
  }
};

ip::home_loc remote_home(std::uint64_t mb_id) {
  ip::home_loc h;
  h.rank = 1;
  h.pool_off = mb_id * kBlock;
  return h;
}

/// Runs `body` on rank 0 of a 2-node x 1-rank cluster with a directory over
/// a `cache_blocks`-slot cache and the given eviction policy.
void with_directory(ic::eviction_kind kind, std::size_t cache_blocks,
                    const std::function<void(ip::block_directory&, test_client&,
                                             ip::cache_stats&)>& body) {
  auto o = it::tiny_opts(2, 1);
  o.cache_size = cache_blocks * kBlock;
  ityr::sim::engine eng(o);
  eng.run([&](int r) {
    if (r != 0) return;
    auto evict = ip::make_eviction_policy(kind);
    test_client cl;
    ip::cache_stats st;
    ip::block_directory dir(eng, *evict, cl, st, kBlock, /*view_size=*/64 * kBlock,
                            o.cache_size, /*rank=*/0);
    body(dir, cl, st);
  });
}

}  // namespace

TEST(BlockDirectory, SlotsAreReusedAfterEviction) {
  with_directory(ic::eviction_kind::lru, 2, [](ip::block_directory& dir, test_client&,
                                               ip::cache_stats& st) {
    EXPECT_EQ(dir.n_cache_blocks(), 2u);
    ip::mem_block& a = dir.get_cache_block(0, remote_home(0));
    ip::mem_block& b = dir.get_cache_block(1, remote_home(1));
    EXPECT_NE(a.slot, b.slot);
    const std::size_t slot_a = a.slot;
    // Third block: the cache is full, the untouched LRU block (a) dies and
    // its slot is recycled.
    ip::mem_block& c = dir.get_cache_block(2, remote_home(2));
    EXPECT_EQ(c.slot, slot_a);
    EXPECT_EQ(st.cache_evictions, 1u);
    EXPECT_EQ(dir.find_cache_block(0), nullptr);
    EXPECT_NE(dir.find_cache_block(1), nullptr);
  });
}

TEST(BlockDirectory, EvictionCallbackFiresBeforeBlockDies) {
  with_directory(ic::eviction_kind::lru, 1, [](ip::block_directory& dir, test_client& cl,
                                               ip::cache_stats&) {
    std::uint64_t evicted = ~std::uint64_t{0};
    bool was_alive = false;
    cl.on_evict = [&](ip::mem_block& mb) {
      evicted = mb.mb_id;
      was_alive = dir.find_cache_block(mb.mb_id) == &mb;  // not yet destroyed
    };
    dir.get_cache_block(7, remote_home(7));
    dir.get_cache_block(8, remote_home(8));
    EXPECT_EQ(evicted, 7u);
    EXPECT_TRUE(was_alive);
  });
}

TEST(BlockDirectory, DirtyBlocksEscalateThroughClientFlush) {
  with_directory(ic::eviction_kind::lru, 1, [](ip::block_directory& dir, test_client& cl,
                                               ip::cache_stats&) {
    ip::mem_block& a = dir.get_cache_block(0, remote_home(0));
    a.dirty.add({0, 64});  // dirty and unpinned: unevictable until flushed
    bool flushed = false;
    cl.on_flush = [&] {
      flushed = true;
      a.dirty.clear();
    };
    // The only slot is dirty; allocation must ask the client to write back,
    // then succeed on retry.
    dir.get_cache_block(1, remote_home(1));
    EXPECT_TRUE(flushed);
    EXPECT_EQ(dir.find_cache_block(0), nullptr);
  });
}

TEST(BlockDirectory, AllPinnedThrowsTooMuchCheckout) {
  with_directory(ic::eviction_kind::lru, 1, [](ip::block_directory& dir, test_client&,
                                               ip::cache_stats&) {
    ip::mem_block& a = dir.get_cache_block(0, remote_home(0));
    a.ref_count = 1;  // pinned: the flush escalation cannot help
    EXPECT_THROW(dir.get_cache_block(1, remote_home(1)), ic::too_much_checkout_error);
    a.ref_count = 0;
  });
}

/// The same access sequence must pick different victims under LRU and clock:
/// insert A,B,C; touch A; evict twice (allocating D then E).
///  * LRU moves A to MRU, so the list reads B,C,A and the victims are B, C.
///  * Clock leaves A in place with its reference bit set; the first sweep
///    spends A's second chance and takes B, the second finds A cold and
///    takes it — victims B, A.
TEST(BlockDirectory, LruEvictsInRecencyOrder) {
  with_directory(ic::eviction_kind::lru, 3, [](ip::block_directory& dir, test_client&,
                                               ip::cache_stats&) {
    dir.get_cache_block(0, remote_home(0));  // A
    dir.get_cache_block(1, remote_home(1));  // B
    dir.get_cache_block(2, remote_home(2));  // C
    dir.touch(*dir.find_cache_block(0));     // A used again
    dir.get_cache_block(3, remote_home(3));  // evicts B
    EXPECT_EQ(dir.find_cache_block(1), nullptr);
    dir.get_cache_block(4, remote_home(4));  // evicts C
    EXPECT_EQ(dir.find_cache_block(2), nullptr);
    EXPECT_NE(dir.find_cache_block(0), nullptr);  // A survives
  });
}

TEST(BlockDirectory, ClockGivesSecondChanceThenEvicts) {
  with_directory(ic::eviction_kind::clock, 3, [](ip::block_directory& dir, test_client&,
                                                 ip::cache_stats&) {
    dir.get_cache_block(0, remote_home(0));  // A
    dir.get_cache_block(1, remote_home(1));  // B
    dir.get_cache_block(2, remote_home(2));  // C
    dir.touch(*dir.find_cache_block(0));     // sets A's reference bit only
    EXPECT_TRUE(dir.find_cache_block(0)->referenced);
    dir.get_cache_block(3, remote_home(3));  // sweep clears A's bit, evicts B
    EXPECT_EQ(dir.find_cache_block(1), nullptr);
    EXPECT_FALSE(dir.find_cache_block(0)->referenced);  // second chance spent
    dir.get_cache_block(4, remote_home(4));  // A is cold now: evicted before C
    EXPECT_EQ(dir.find_cache_block(0), nullptr);
    EXPECT_NE(dir.find_cache_block(2), nullptr);  // C survives under clock
  });
}
