/// Direct unit tests for the fetch_engine layer against a mock rma::channel:
/// demand rounds (gap collection, coalesced issue, stall accounting), and
/// the prefetcher's fault paths — a stalled in-flight byte budget that
/// recovers once transfers drain, and eviction of a block with in-flight
/// prefetch segments.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "../support/fixture.hpp"
#include "../support/mock_channel.hpp"
#include "itoyori/pgas/block_directory.hpp"
#include "itoyori/pgas/eviction_policy.hpp"
#include "itoyori/pgas/fetch_engine.hpp"

namespace ip = ityr::pgas;
namespace ic = ityr::common;
namespace it = ityr::test;

namespace {

constexpr std::size_t kBlock = 4 * ic::KiB;
constexpr std::size_t kSub = 1 * ic::KiB;

/// Every block lives on (remote) rank 1 at pool offset mb_id * kBlock, up to
/// `n_blocks`; beyond that is unallocated territory (streams must die there).
struct fake_locator final : ip::block_locator {
  ityr::rma::window* win = nullptr;
  std::size_t n_blocks = 0;
  bool try_locate_block(std::uint64_t mb_id, ip::home_loc& out) const override {
    if (mb_id >= n_blocks) return false;
    out.rank = 1;
    out.pool_off = mb_id * kBlock;
    out.win = win;
    return true;
  }
  std::size_t total_size() const override { return n_blocks * kBlock; }
};

struct null_client final : ip::block_directory::client {
  std::function<void(ip::mem_block&)> on_evict;
  void on_block_evicted(ip::mem_block& mb) override {
    if (on_evict) on_evict(mb);
  }
  void flush_dirty_for_eviction() override {}
};

/// Wires engine + mock channel + directory + fetch_engine on rank 0 of a
/// 2-node x 1-rank cluster, with an 8-block remote heap backed by `remote`.
struct fetch_fixture {
  static constexpr std::size_t kHeapBlocks = 8;

  ityr::sim::engine& eng;
  it::mock_channel ch;
  ityr::rma::window win;
  std::vector<std::byte> remote;
  fake_locator loc;
  null_client cl;
  ip::cache_stats st;
  std::unique_ptr<ip::eviction_policy> evict;
  ip::block_directory dir;
  ip::fetch_engine fetch;

  fetch_fixture(ityr::sim::engine& e, std::size_t cache_blocks, bool prefetch,
                std::size_t depth = 8, std::size_t max_inflight = 1 * ic::MiB)
      : eng(e),
        ch(e),
        remote(kHeapBlocks * kBlock),
        evict(ip::make_eviction_policy(ic::eviction_kind::lru)),
        dir(e, *evict, cl, st, kBlock, kHeapBlocks * kBlock, cache_blocks * kBlock, 0),
        fetch(e, ch, dir, loc, st,
              {kBlock, kSub, /*coalesce=*/true, prefetch, depth, max_inflight, /*rank=*/0}) {
    win.regions.resize(2);
    win.regions[1] = {remote.data(), remote.size()};
    loc.win = &win;
    loc.n_blocks = kHeapBlocks;
    for (std::size_t i = 0; i < remote.size(); i++) {
      remote[i] = static_cast<std::byte>(i * 31 + 7);
    }
  }

  ip::home_loc home(std::uint64_t mb_id) {
    ip::home_loc h;
    EXPECT_TRUE(loc.try_locate_block(mb_id, h));
    return h;
  }

  /// Confirm a forward stream over sub-blocks starting at `sub0` (two
  /// sequential demand-miss touches); the confirmation issues prefetches.
  void confirm_stream(std::int64_t sub0) {
    fetch.feed_stream(sub0, sub0, /*was_miss=*/true);      // seeds a candidate
    fetch.feed_stream(sub0 + 1, sub0 + 1, /*was_miss=*/true);  // confirms fwd
  }
};

void on_rank0(const ic::options& o, const std::function<void(ityr::sim::engine&)>& body) {
  ityr::sim::engine eng(o);
  eng.run([&](int r) {
    if (r == 0) body(eng);
  });
}

}  // namespace

TEST(FetchEngine, DemandRoundFetchesGapsCoalesced) {
  on_rank0(it::tiny_opts(2, 1), [](ityr::sim::engine& eng) {
    fetch_fixture f(eng, /*cache_blocks=*/4, /*prefetch=*/false);
    ip::mem_block& mb = f.dir.get_cache_block(0, f.home(0));

    f.fetch.begin_round();
    f.fetch.queue_demand(mb, f.fetch.pad_to_sub_blocks({100, 200}));
    // Padding widens [100,200) to one whole sub-block and the range is
    // claimed valid as soon as it is queued.
    EXPECT_EQ(f.st.fetched_bytes, kSub);
    EXPECT_TRUE(mb.valid.contains({0, kSub}));
    EXPECT_FALSE(mb.fully_valid);

    // A second gap in the same block rides the same round; both leave as one
    // coalesced message because they target the same (window, rank).
    f.fetch.queue_demand(mb, f.fetch.pad_to_sub_blocks({2 * kSub, 2 * kSub + 1}));
    const double done = f.fetch.issue_round();
    EXPECT_GT(done, eng.now());
    ASSERT_EQ(f.ch.ops().size(), 1u);
    EXPECT_FALSE(f.ch.ops()[0].is_put);
    EXPECT_EQ(f.ch.ops()[0].len, 2 * kSub);
    EXPECT_EQ(f.st.coalesced_messages, 1u);

    // The fetched bytes landed in the block's cache slot.
    EXPECT_EQ(std::memcmp(f.dir.slot_ptr(mb), f.remote.data(), kSub), 0);

    // Without prefetching the round wait is a full flush; the stall is
    // charged to fetch_stall_s.
    f.fetch.wait_round(done);
    EXPECT_EQ(f.ch.n_flushes(), 1u);
    EXPECT_DOUBLE_EQ(eng.now(), done);
    EXPECT_GT(f.st.fetch_stall_s, 0.0);
  });
}

TEST(FetchEngine, PrefetchStallsAtInflightBudgetAndRecovers) {
  on_rank0(it::tiny_opts(2, 1), [](ityr::sim::engine& eng) {
    // Budget of exactly two sub-blocks: the confirmed stream wants to run
    // `depth` ahead but must stop after two segments.
    fetch_fixture f(eng, /*cache_blocks=*/8, /*prefetch=*/true, /*depth=*/8,
                    /*max_inflight=*/2 * kSub);
    f.confirm_stream(0);
    EXPECT_EQ(f.st.prefetch_issued, 2u);
    EXPECT_EQ(f.st.prefetch_issued_bytes, 2 * kSub);
    EXPECT_EQ(f.ch.ops().size(), 2u);

    // Nothing drains at a frozen clock: advancing the stream again issues
    // nothing new (still over budget).
    f.fetch.feed_stream(2, 2, /*was_miss=*/false);
    EXPECT_EQ(f.st.prefetch_issued, 2u);

    // Once virtual time passes the modelled completions, the budget frees
    // and the stream tops back up.
    eng.advance(f.ch.pending_until() - eng.now() + 1.0e-9);
    ASSERT_TRUE(f.ch.drained());
    f.fetch.feed_stream(3, 3, /*was_miss=*/false);
    EXPECT_GT(f.st.prefetch_issued, 2u);
  });
}

TEST(FetchEngine, EvictionDropsInflightPrefetchAsWasted) {
  on_rank0(it::tiny_opts(2, 1), [](ityr::sim::engine& eng) {
    fetch_fixture f(eng, /*cache_blocks=*/4, /*prefetch=*/true);
    f.cl.on_evict = [&](ip::mem_block& mb) { f.fetch.drop_prefetched(mb); };

    f.confirm_stream(0);
    ASSERT_GT(f.st.prefetch_issued_bytes, 0u);
    const auto issued = f.st.prefetch_issued_bytes;

    // The prefetched blocks have unretired in-flight segments; evicting one
    // must retire them as wasted (nothing was ever read).
    bool any_inflight = false;
    f.dir.for_each_cache_block([&](ip::mem_block& b) { any_inflight |= !b.pf_segs.empty(); });
    ASSERT_TRUE(any_inflight);
    ASSERT_TRUE(f.dir.try_evict_cache_block());
    EXPECT_GT(f.st.prefetch_wasted_bytes, 0u);

    // Evict the rest: every issued byte must be accounted useful or wasted.
    while (f.dir.try_evict_cache_block()) {
    }
    EXPECT_EQ(f.st.prefetch_wasted_bytes + f.st.prefetch_useful_bytes, issued);
  });
}

TEST(FetchEngine, ConsumeRecordsLatePrefetchWait) {
  on_rank0(it::tiny_opts(2, 1), [](ityr::sim::engine& eng) {
    fetch_fixture f(eng, /*cache_blocks=*/8, /*prefetch=*/true);
    f.confirm_stream(0);
    ip::mem_block* mb = nullptr;
    f.dir.for_each_cache_block([&](ip::mem_block& b) {
      if (!b.pf_segs.empty() && mb == nullptr) mb = &b;
    });
    ASSERT_NE(mb, nullptr);
    const ic::interval span = mb->pf_segs.front().iv;
    const double ready = mb->pf_segs.front().ready_at;
    ASSERT_GT(ready, eng.now());

    // Consuming an in-flight segment forces the round to wait out its
    // completion: wait_round must advance the clock to ready_at even though
    // the demand round itself fetched nothing.
    f.fetch.begin_round();
    f.fetch.consume_prefetch(*mb, span, /*is_write=*/false);
    EXPECT_GT(f.st.prefetch_useful_bytes, 0u);
    f.fetch.wait_round(f.fetch.issue_round());
    EXPECT_GE(eng.now(), ready);
    EXPECT_EQ(f.st.prefetch_late, 1u);
  });
}
