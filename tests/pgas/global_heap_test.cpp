#include "itoyori/pgas/global_heap.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "../support/fixture.hpp"

namespace ip = ityr::pgas;
namespace it = ityr::test;

TEST(GlobalHeap, CollAllocReturnsSameAddressOnAllRanks) {
  std::vector<ip::gaddr_t> results(4, 0);
  it::run_pgas(it::tiny_opts(), [&](int r, ip::pgas_space& s) {
    results[static_cast<std::size_t>(r)] =
        s.heap().coll_alloc(100 * 1024, ityr::common::dist_policy::block_cyclic);
  });
  EXPECT_NE(results[0], ip::null_gaddr);
  for (int r = 1; r < 4; r++) EXPECT_EQ(results[static_cast<std::size_t>(r)], results[0]);
}

TEST(GlobalHeap, BlockCyclicHomesRoundRobin) {
  it::run_pgas(it::tiny_opts(), [&](int r, ip::pgas_space& s) {
    const std::size_t bs = s.heap().block_size();
    auto g = s.heap().coll_alloc(bs * 8, ityr::common::dist_policy::block_cyclic);
    if (r == 0) {
      for (std::uint64_t j = 0; j < 8; j++) {
        auto home = s.heap().locate_block(s.heap().block_id_of(g + j * bs));
        EXPECT_EQ(home.rank, static_cast<int>(j % 4)) << "block " << j;
      }
      // Blocks of the same rank land at consecutive pool offsets.
      auto h0 = s.heap().locate_block(s.heap().block_id_of(g));
      auto h4 = s.heap().locate_block(s.heap().block_id_of(g + 4 * bs));
      EXPECT_EQ(h4.pool_off, h0.pool_off + bs);
    }
  });
}

TEST(GlobalHeap, BlockPolicyGivesContiguousHomes) {
  it::run_pgas(it::tiny_opts(), [&](int r, ip::pgas_space& s) {
    const std::size_t bs = s.heap().block_size();
    auto g = s.heap().coll_alloc(bs * 8, ityr::common::dist_policy::block);
    if (r == 0) {
      // 8 blocks over 4 ranks -> 2 consecutive blocks per rank.
      for (std::uint64_t j = 0; j < 8; j++) {
        auto home = s.heap().locate_block(s.heap().block_id_of(g + j * bs));
        EXPECT_EQ(home.rank, static_cast<int>(j / 2)) << "block " << j;
      }
    }
  });
}

TEST(GlobalHeap, CollFreeAllowsReuse) {
  it::run_pgas(it::tiny_opts(), [&](int, ip::pgas_space& s) {
    auto g1 = s.heap().coll_alloc(64 * 1024, ityr::common::dist_policy::block_cyclic);
    s.heap().coll_free(g1);
    auto g2 = s.heap().coll_alloc(64 * 1024, ityr::common::dist_policy::block_cyclic);
    EXPECT_EQ(g1, g2);
    EXPECT_EQ(s.heap().live_coll_allocs(), 1u);
  });
}

TEST(GlobalHeap, LocateOutsideLiveAllocationThrows) {
  it::run_pgas(it::tiny_opts(), [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(4096, ityr::common::dist_policy::block_cyclic);
    s.barrier();
    s.heap().coll_free(g);
    if (r == 0) {
      EXPECT_THROW(s.heap().locate_block(s.heap().block_id_of(g)), ityr::common::api_error);
    }
  });
}

TEST(GlobalHeap, NoncollectiveAllocIsHomeLocal) {
  it::run_pgas(it::tiny_opts(), [&](int r, ip::pgas_space& s) {
    auto g = s.heap().alloc(256);
    auto home = s.heap().locate_block(s.heap().block_id_of(g));
    EXPECT_EQ(home.rank, r);
  });
}

TEST(GlobalHeap, NoncollectiveDistinctAcrossRanks) {
  std::vector<ip::gaddr_t> gs(4, 0);
  it::run_pgas(it::tiny_opts(), [&](int r, ip::pgas_space& s) {
    gs[static_cast<std::size_t>(r)] = s.heap().alloc(128);
  });
  std::set<ip::gaddr_t> uniq(gs.begin(), gs.end());
  EXPECT_EQ(uniq.size(), 4u);
}

TEST(GlobalHeap, RemoteFreeReclaimedAtOwnerPoll) {
  it::run_pgas(it::tiny_opts(1, 2), [&](int r, ip::pgas_space& s) {
    static ip::gaddr_t shared_g = 0;
    if (r == 0) {
      shared_g = s.heap().alloc(1024);
      s.barrier();
      s.barrier();  // wait for rank 1's free
      EXPECT_GT(s.heap().nc_bytes_in_use(0), 0u);
      s.heap().poll();
      EXPECT_EQ(s.heap().nc_bytes_in_use(0), 0u);
    } else {
      s.barrier();
      s.heap().free(shared_g, 1024);  // remote free
      s.barrier();
    }
  });
}

TEST(GlobalHeap, NoncollectiveExhaustionThrows) {
  it::run_pgas(it::tiny_opts(1, 1), [&](int, ip::pgas_space& s) {
    // Segment is 128 KiB; allocate beyond it.
    EXPECT_THROW(
        {
          for (int i = 0; i < 4096; i++) s.heap().alloc(1024);
        },
        ityr::common::resource_error);
  });
}

TEST(GlobalHeap, CollectiveExhaustionThrows) {
  it::run_pgas(it::tiny_opts(1, 1), [&](int, ip::pgas_space& s) {
    EXPECT_THROW(s.heap().coll_alloc(1 << 30, ityr::common::dist_policy::block_cyclic),
                 ityr::common::resource_error);
  });
}

TEST(GlobalHeap, GaddrViewRoundTrip) {
  it::run_pgas(it::tiny_opts(), [&](int r, ip::pgas_space& s) {
    if (r != 0) return;
    auto g = s.heap().coll_alloc(4096, ityr::common::dist_policy::block);
    EXPECT_EQ(s.heap().gaddr_of_view(s.heap().view_off(g)), g);
    EXPECT_TRUE(s.heap().in_heap(g, 4096));
    EXPECT_FALSE(s.heap().in_heap(0, 1));
  });
}

TEST(GlobalHeap, NoncollectiveAllocationDoesNotFragment) {
  // Regression: odd-sized allocations must consume whole alignment quanta,
  // otherwise every allocation strands a dead sub-quantum fragment and
  // first-fit degrades to O(allocations^2).
  auto o = it::tiny_opts(1, 1);
  o.noncoll_heap_per_rank = 4 * ityr::common::MiB;
  it::run_pgas(o, [&](int, ip::pgas_space& s) {
    std::vector<ip::gaddr_t> live;
    for (int i = 0; i < 5000; i++) live.push_back(s.heap().alloc(40));  // not a multiple of 64
    EXPECT_LE(s.heap().nc_fragments(0), 4u);
    for (auto g : live) s.heap().free(g, 40);
    EXPECT_EQ(s.heap().nc_bytes_in_use(0), 0u);
    EXPECT_EQ(s.heap().nc_fragments(0), 1u);  // fully coalesced
  });
}
