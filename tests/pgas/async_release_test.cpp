// Asynchronous epoch-pipelined write-back (ITYR_ASYNC_RELEASE): epoch ring
// monotonicity, the in-flight byte budget, opportunistic idle flushing, the
// no-op release counter, and the off-path guarantee that every async counter
// stays zero when the feature is disabled.

#include <gtest/gtest.h>

#include <cstdint>

#include "../support/fixture.hpp"

namespace ip = ityr::pgas;
namespace ic = ityr::common;
namespace it = ityr::test;

using ip::access_mode;

namespace {

// 2 nodes x 1 rank: the second half of a block-distributed array is homed on
// rank 1, so rank 0's dirty data always needs real remote puts on release.
ic::options async_opts(bool on) {
  auto o = it::tiny_opts(2, 1);
  o.async_release = on;
  return o;
}

constexpr std::size_t kBytes = 64 * 1024;  // 16 blocks; second half remote
constexpr std::size_t kHalf = kBytes / 2;
constexpr std::size_t kChunk = 1024;  // = tiny_opts sub_block_size

/// Dirty one remote sub-block (round r writes chunk r).
void dirty_chunk(ip::pgas_space& s, ityr::pgas::gaddr_t g, std::size_t r) {
  auto gj = g + kHalf + r * kChunk;
  auto* p = static_cast<std::uint64_t*>(s.checkout(gj, kChunk, access_mode::write));
  p[0] = r + 1;
  s.checkin(gj, kChunk, access_mode::write);
}

}  // namespace

TEST(AsyncRelease, RoundsAdvanceEpochsAndRingStaysMonotone) {
  it::run_pgas(async_opts(true), [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(kBytes, ic::dist_policy::block);
    s.barrier();
    if (r == 0) {
      constexpr std::size_t kRounds = 6;
      for (std::size_t i = 0; i < kRounds; i++) {
        dirty_chunk(s, g, i);
        s.release();  // issues one async round, advances the epoch at issue
        EXPECT_FALSE(s.cache().has_dirty());
      }
      const auto& c = s.cache();
      const auto st = c.get_stats();
      EXPECT_EQ(st.async_wb_rounds, kRounds);
      EXPECT_GE(st.releases, kRounds);
      EXPECT_GE(st.epochs_in_flight, 1u);
      EXPECT_GT(c.visibility_watermark(), 0.0);
      // Epoch 0 means "nothing to wait for"; later epochs' ready times are
      // non-decreasing (the ring stores a running max).
      EXPECT_EQ(c.release_ready_at(0), 0.0);
      double prev = 0.0;
      for (std::uint64_t e = 1; e <= kRounds; e++) {
        const double ready = c.release_ready_at(e);
        EXPECT_GE(ready, prev) << "epoch " << e;
        prev = ready;
      }
      EXPECT_GT(prev, 0.0);
      // An epoch beyond the current word falls back to the latest completion.
      EXPECT_GE(c.release_ready_at(kRounds + 100), prev);
    }
    s.barrier();
  });
}

TEST(AsyncRelease, ByteBudgetStallsFencesBoundedly) {
  auto o = async_opts(true);
  o.async_wb_max_inflight = 256;  // far below one sub-block round
  it::run_pgas(o, [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(kBytes, ic::dist_policy::block);
    s.barrier();
    if (r == 0) {
      dirty_chunk(s, g, 0);
      s.release();  // first round exceeds the budget but has nothing to wait on
      dirty_chunk(s, g, 1);
      s.release();  // must stall until round 1 completes before issuing
      const auto st = s.cache().get_stats();
      EXPECT_EQ(st.async_wb_rounds, 2u);
      EXPECT_GT(st.release_stall_s, 0.0);
    }
    s.barrier();
  });
}

TEST(AsyncRelease, IdleFlushWritesBackAndBailsWhenBudgetFull) {
  auto o = async_opts(true);
  it::run_pgas(o, [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(kBytes, ic::dist_policy::block);
    s.barrier();
    if (r == 0) {
      // Clean cache: idle_flush is a no-op.
      s.idle_flush();
      EXPECT_EQ(s.cache().get_stats().idle_flush_bytes, 0u);
      // Dirty data and a free budget: the idle loop flushes it.
      dirty_chunk(s, g, 0);
      s.idle_flush();
      EXPECT_FALSE(s.cache().has_dirty());
      const auto st = s.cache().get_stats();
      EXPECT_EQ(st.idle_flush_bytes, kChunk);
      EXPECT_EQ(st.async_wb_rounds, 1u);
    }
    s.barrier();
  });

  // With a saturated in-flight budget the opportunistic round bails instead
  // of stalling: the dirty data stays for the next real fence.
  auto tight = async_opts(true);
  tight.async_wb_max_inflight = 256;
  it::run_pgas(tight, [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(kBytes, ic::dist_policy::block);
    s.barrier();
    if (r == 0) {
      dirty_chunk(s, g, 0);
      s.release();  // saturates the 256-byte budget
      dirty_chunk(s, g, 1);
      s.idle_flush();  // must not stall, must not flush
      EXPECT_TRUE(s.cache().has_dirty());
      EXPECT_EQ(s.cache().get_stats().idle_flush_bytes, 0u);
    }
    s.barrier();
  });
}

TEST(AsyncRelease, NoopReleasesAreCounted) {
  for (const bool on : {false, true}) {
    it::run_pgas(async_opts(on), [&](int r, ip::pgas_space& s) {
      if (r == 0) {
        s.release();  // nothing dirty
        s.release();
        EXPECT_EQ(s.cache().get_stats().releases_noop, 2u);
        EXPECT_EQ(s.cache().get_stats().releases, 0u);
      }
      s.barrier();
    });
  }
}

TEST(AsyncRelease, OffPathKeepsAsyncCountersZero) {
  it::run_pgas(async_opts(false), [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(kBytes, ic::dist_policy::block);
    s.barrier();
    if (r == 0) {
      dirty_chunk(s, g, 0);
      s.release();
      s.idle_flush();  // no-op when disabled
      const auto& c = s.cache();
      const auto st = c.get_stats();
      EXPECT_EQ(st.async_wb_rounds, 0u);
      EXPECT_EQ(st.idle_flush_bytes, 0u);
      EXPECT_EQ(st.epochs_in_flight, 0u);
      // Blocking releases flush synchronously, so the watermark machinery
      // never engages and every wait degenerates to a no-op.
      EXPECT_EQ(c.visibility_watermark(), 0.0);
      EXPECT_EQ(c.release_ready_at(1), 0.0);
      // The synchronous flush stall is still accounted (both modes share the
      // counter so ablations compare like with like).
      EXPECT_GT(st.release_stall_s, 0.0);
    }
    s.barrier();
  });
}
