#include "itoyori/pgas/free_list.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

using ityr::pgas::free_list;

TEST(FreeList, FirstFitFromZero) {
  free_list fl(1024);
  EXPECT_EQ(fl.alloc(100).value(), 0u);
  EXPECT_EQ(fl.alloc(100).value(), 100u);
  EXPECT_EQ(fl.bytes_in_use(), 200u);
}

TEST(FreeList, RespectsAlignment) {
  free_list fl(1024);
  EXPECT_EQ(fl.alloc(10).value(), 0u);
  EXPECT_EQ(fl.alloc(10, 64).value(), 64u);
  EXPECT_EQ(fl.alloc(10, 256).value(), 256u);
}

TEST(FreeList, ExhaustionReturnsNullopt) {
  free_list fl(128);
  EXPECT_TRUE(fl.alloc(128).has_value());
  EXPECT_FALSE(fl.alloc(1).has_value());
}

TEST(FreeList, OversizeRequestFails) {
  free_list fl(128);
  EXPECT_FALSE(fl.alloc(129).has_value());
}

TEST(FreeList, ReusesFreedSpace) {
  free_list fl(256);
  auto a = fl.alloc(64).value();
  auto b = fl.alloc(64).value();
  fl.dealloc(a, 64);
  auto c = fl.alloc(64).value();
  EXPECT_EQ(c, a);  // first fit reuses the hole
  EXPECT_NE(b, c);
}

TEST(FreeList, CoalescesNeighbours) {
  free_list fl(192);
  auto a = fl.alloc(64).value();
  auto b = fl.alloc(64).value();
  auto c = fl.alloc(64).value();
  // Free in an order that requires both-side coalescing.
  fl.dealloc(a, 64);
  fl.dealloc(c, 64);
  fl.dealloc(b, 64);
  EXPECT_EQ(fl.fragments(), 1u);
  EXPECT_EQ(fl.alloc(192).value(), 0u);
}

TEST(FreeList, AlignmentGapRemainsUsable) {
  free_list fl(256);
  ASSERT_EQ(fl.alloc(10).value(), 0u);
  ASSERT_EQ(fl.alloc(10, 128).value(), 128u);
  // The gap [10,128) must still be allocatable.
  EXPECT_EQ(fl.alloc(100).value(), 10u);
}

TEST(FreeList, RandomizedNoOverlapAndFullRecovery) {
  std::mt19937_64 gen(42);
  free_list fl(1 << 16);
  struct alloc {
    std::uint64_t off, size;
  };
  std::vector<alloc> live;
  for (int step = 0; step < 2000; step++) {
    if (live.empty() || gen() % 3 != 0) {
      std::uint64_t size = 1 + gen() % 512;
      auto off = fl.alloc(size, 1ull << (gen() % 6));
      if (off) {
        // No overlap with any live allocation.
        for (const auto& a : live) {
          ASSERT_TRUE(*off + size <= a.off || a.off + a.size <= *off);
        }
        live.push_back({*off, size});
      }
    } else {
      std::size_t i = gen() % live.size();
      fl.dealloc(live[i].off, live[i].size);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  for (const auto& a : live) fl.dealloc(a.off, a.size);
  EXPECT_EQ(fl.bytes_in_use(), 0u);
  EXPECT_EQ(fl.fragments(), 1u);
  EXPECT_EQ(fl.alloc(1 << 16).value(), 0u);
}
