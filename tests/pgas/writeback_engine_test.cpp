/// Direct unit tests for the writeback_engine layer against a mock
/// rma::channel: blocking write-back rounds, the async pipeline's fault
/// paths (stall at the in-flight byte budget, opportunistic idle_flush
/// bailing instead of stalling), fences against a drained channel, and the
/// remote-handler / DoReleaseIfRequested protocol words.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "../support/fixture.hpp"
#include "../support/mock_channel.hpp"
#include "itoyori/pgas/block_directory.hpp"
#include "itoyori/pgas/eviction_policy.hpp"
#include "itoyori/pgas/writeback_engine.hpp"

namespace ip = ityr::pgas;
namespace ic = ityr::common;
namespace it = ityr::test;

namespace {

constexpr std::size_t kBlock = 4 * ic::KiB;

struct null_client final : ip::block_directory::client {
  void on_block_evicted(ip::mem_block&) override {}
  void flush_dirty_for_eviction() override {}
};

/// Engine + mock channel + directory + writeback_engine on rank 0 of a
/// 2-node x 1-rank cluster. The control window exposes the two epoch words
/// per rank (offsets 0 and 8); the home window backs rank 1's heap blocks.
struct wb_fixture {
  ityr::sim::engine& eng;
  it::mock_channel ch;
  std::vector<std::uint64_t> ctrl;  ///< [0..1]=rank 0 words, [2..3]=rank 1
  ityr::rma::window ctrl_win;
  std::vector<std::byte> remote;
  ityr::rma::window home_win;
  null_client cl;
  ip::cache_stats st;
  std::unique_ptr<ip::eviction_policy> evict;
  ip::block_directory dir;
  ip::writeback_engine wb;

  wb_fixture(ityr::sim::engine& e, bool async, std::size_t wb_max_inflight = 0)
      : eng(e),
        ch(e),
        ctrl(4, 0),
        remote(8 * kBlock),
        evict(ip::make_eviction_policy(ic::eviction_kind::lru)),
        dir(e, *evict, cl, st, kBlock, 8 * kBlock, 8 * kBlock, 0),
        wb(e, ch, dir, ctrl_win, st,
           {/*coalesce=*/true, async, wb_max_inflight, /*rank=*/0}) {
    ctrl_win.regions.resize(2);
    ctrl_win.regions[0] = {reinterpret_cast<std::byte*>(&ctrl[0]), 2 * sizeof(std::uint64_t)};
    ctrl_win.regions[1] = {reinterpret_cast<std::byte*>(&ctrl[2]), 2 * sizeof(std::uint64_t)};
    home_win.regions.resize(2);
    home_win.regions[1] = {remote.data(), remote.size()};
  }

  /// A cache block homed on rank 1 with `bytes` of pattern data marked dirty.
  ip::mem_block& dirty_block(std::uint64_t mb_id, std::size_t bytes, int pattern) {
    ip::home_loc h;
    h.rank = 1;
    h.pool_off = mb_id * kBlock;
    h.win = &home_win;
    ip::mem_block* mb = dir.find_cache_block(mb_id);
    if (mb == nullptr) mb = &dir.get_cache_block(mb_id, h);
    std::memset(dir.slot_ptr(*mb), pattern, bytes);
    wb.mark_dirty(*mb, {0, bytes});
    return *mb;
  }
};

void on_rank0(const ic::options& o, const std::function<void(ityr::sim::engine&)>& body) {
  ityr::sim::engine eng(o);
  eng.run([&](int r) {
    if (r == 0) body(eng);
  });
}

}  // namespace

TEST(WritebackEngine, BlockingRoundFlushesDataAndBumpsEpoch) {
  on_rank0(it::tiny_opts(2, 1), [](ityr::sim::engine& eng) {
    wb_fixture f(eng, /*async=*/false);
    f.dirty_block(0, 512, 0xAB);
    ASSERT_TRUE(f.wb.has_dirty());

    f.wb.writeback_all();
    ASSERT_EQ(f.ch.ops().size(), 1u);
    EXPECT_TRUE(f.ch.ops()[0].is_put);
    EXPECT_EQ(f.ch.ops()[0].len, 512u);
    EXPECT_EQ(f.st.written_back_bytes, 512u);
    EXPECT_EQ(f.wb.current_epoch(), 1u);
    EXPECT_EQ(f.st.releases, 1u);
    // The synchronous round flushes: the stall was charged and the data is
    // visible at the home before the call returns.
    EXPECT_EQ(f.ch.n_flushes(), 1u);
    EXPECT_GT(f.st.release_stall_s, 0.0);
    EXPECT_EQ(static_cast<unsigned char>(f.remote[0]), 0xABu);
    EXPECT_EQ(static_cast<unsigned char>(f.remote[511]), 0xABu);
    EXPECT_FALSE(f.wb.has_dirty());

    // Clean release is a counted no-op, and idle_flush is inert outside the
    // async pipeline.
    f.wb.writeback_all();
    EXPECT_EQ(f.st.releases_noop, 1u);
    f.wb.idle_flush();
    EXPECT_EQ(f.st.idle_flush_bytes, 0u);
    EXPECT_DOUBLE_EQ(f.wb.visibility_watermark(), 0.0);
  });
}

TEST(WritebackEngine, AsyncRoundStallsAtInflightBudget) {
  on_rank0(it::tiny_opts(2, 1), [](ityr::sim::engine& eng) {
    // Budget of exactly one round: the second back-to-back round must stall
    // until the first one's modelled completion, not queue unboundedly.
    wb_fixture f(eng, /*async=*/true, /*wb_max_inflight=*/1024);
    f.dirty_block(0, 1024, 0x11);
    f.wb.writeback_all();
    const double round1_done = f.wb.release_ready_at(1);
    EXPECT_EQ(f.wb.current_epoch(), 1u);
    EXPECT_GT(round1_done, eng.now());             // issued, not flushed
    EXPECT_DOUBLE_EQ(f.st.release_stall_s, 0.0);   // budget had room
    EXPECT_DOUBLE_EQ(f.wb.visibility_watermark(), round1_done);

    f.dirty_block(1, 1024, 0x22);
    f.wb.writeback_all();
    EXPECT_EQ(f.wb.current_epoch(), 2u);
    EXPECT_EQ(f.st.async_wb_rounds, 2u);
    // The budget stall was a targeted wait to round 1's completion, charged
    // as release stall time.
    EXPECT_GE(eng.now(), round1_done);
    EXPECT_GT(f.st.release_stall_s, 0.0);
    ASSERT_EQ(f.ch.waits().size(), 1u);
    EXPECT_DOUBLE_EQ(f.ch.waits()[0], round1_done);
    // ready_at is monotone in the epoch.
    EXPECT_GE(f.wb.release_ready_at(2), round1_done);
    EXPECT_DOUBLE_EQ(f.wb.release_ready_at(0), 0.0);
  });
}

TEST(WritebackEngine, IdleFlushBailsOverBudgetThenIssuesAfterDrain) {
  on_rank0(it::tiny_opts(2, 1), [](ityr::sim::engine& eng) {
    wb_fixture f(eng, /*async=*/true, /*wb_max_inflight=*/1024);
    f.dirty_block(0, 1024, 0x33);
    f.wb.writeback_all();  // fills the budget exactly

    // Opportunistic flush over budget must bail (no stall, dirty data kept),
    // not block the worker's backoff loop.
    f.dirty_block(1, 512, 0x44);
    const double before = eng.now();
    f.wb.idle_flush();
    EXPECT_EQ(f.st.idle_flush_bytes, 0u);
    EXPECT_TRUE(f.wb.has_dirty());
    EXPECT_EQ(f.st.async_wb_rounds, 1u);
    EXPECT_DOUBLE_EQ(eng.now(), before);  // bailed without charging time

    // Once virtual time passes round 1's completion the budget drains and
    // the same idle_flush goes through.
    eng.advance(f.ch.pending_until() - eng.now() + 1.0e-9);
    f.wb.idle_flush();
    EXPECT_EQ(f.st.idle_flush_bytes, 512u);
    EXPECT_FALSE(f.wb.has_dirty());
    EXPECT_EQ(f.st.async_wb_rounds, 2u);
    EXPECT_EQ(f.wb.current_epoch(), 2u);
  });
}

TEST(WritebackEngine, FenceOnDrainedChannelDoesNotStall) {
  on_rank0(it::tiny_opts(2, 1), [](ityr::sim::engine& eng) {
    wb_fixture f(eng, /*async=*/true, /*wb_max_inflight=*/1 * ic::MiB);
    f.dirty_block(0, 256, 0x55);
    const ityr::pgas::release_handler h = f.wb.release_lazy();
    ASSERT_TRUE(h.needed());
    EXPECT_EQ(h.rank, 0);
    EXPECT_EQ(h.epoch, 1u);

    // A local fence performs the round and waits out its visibility.
    f.wb.wait_handler(h);
    EXPECT_EQ(f.wb.current_epoch(), 1u);
    EXPECT_GE(eng.now(), f.wb.release_ready_at(1));

    // Re-fencing the same epoch against a now-drained channel must not move
    // the clock or issue anything new.
    eng.advance(1.0e-6);
    const double t = eng.now();
    const std::size_t n_ops = f.ch.ops().size();
    f.wb.wait_handler(h);
    EXPECT_DOUBLE_EQ(eng.now(), t);
    EXPECT_EQ(f.ch.ops().size(), n_ops);

    // An Unneeded handler (nothing was dirty at capture) is a no-op fence.
    const ityr::pgas::release_handler none = f.wb.release_lazy();
    EXPECT_FALSE(none.needed());
    f.wb.wait_handler(none);
    EXPECT_DOUBLE_EQ(eng.now(), t);
  });
}

TEST(WritebackEngine, RemoteHandlerAlreadySatisfiedExitsWithoutRequest) {
  on_rank0(it::tiny_opts(2, 1), [](ityr::sim::engine& eng) {
    wb_fixture f(eng, /*async=*/true, /*wb_max_inflight=*/1 * ic::MiB);
    // The releaser (rank 1) already reached epoch 5; its round completed in
    // the past as far as the peer-ready oracle is concerned.
    f.ctrl[2] = 5;
    f.wb.set_peer_ready([](int, std::uint64_t) { return 0.0; });

    const double t = eng.now();
    f.wb.wait_handler({/*rank=*/1, /*epoch=*/3});
    // One epoch-word read, no write-back request, no poll-waiting, no stall.
    EXPECT_EQ(f.ch.n_value_gets(), 1u);
    EXPECT_EQ(f.ch.n_atomic_maxes(), 0u);
    EXPECT_EQ(f.st.lazy_release_waits, 0u);
    EXPECT_DOUBLE_EQ(eng.now(), t);
  });
}

TEST(WritebackEngine, PollAnswersRemoteRequest) {
  on_rank0(it::tiny_opts(2, 1), [](ityr::sim::engine& eng) {
    wb_fixture f(eng, /*async=*/false);
    // No request pending: poll is inert.
    f.wb.poll();
    EXPECT_EQ(f.wb.current_epoch(), 0u);

    // A thief wrote requestEpoch=1 while we hold dirty data: poll must run
    // the write-back round (DoReleaseIfRequested).
    f.dirty_block(0, 128, 0x66);
    f.ctrl[1] = 1;
    f.wb.poll();
    EXPECT_EQ(f.wb.current_epoch(), 1u);
    EXPECT_EQ(f.st.written_back_bytes, 128u);

    // Request for an epoch whose data was already flushed elsewhere: the
    // epoch still advances so the acquirer makes progress.
    f.ctrl[1] = 2;
    f.wb.poll();
    EXPECT_EQ(f.wb.current_epoch(), 2u);
    EXPECT_EQ(f.st.releases, 2u);
    EXPECT_FALSE(f.wb.has_dirty());
  });
}
