#include <gtest/gtest.h>

#include "../support/fixture.hpp"

namespace ip = ityr::pgas;
namespace ic = ityr::common;
namespace it = ityr::test;

using ip::access_mode;

// Direct exercises of the epoch-based lazy release protocol (paper Fig. 6),
// without the scheduler: rank 0 plays the victim (whose continuation was
// stolen), rank 1 plays the thief.

TEST(Coherence, LazyReleaseUnneededWhenClean) {
  it::run_pgas(it::tiny_opts(2, 1), [&](int r, ip::pgas_space& s) {
    if (r == 0) {
      auto h = s.release_lazy();
      EXPECT_FALSE(h.needed());
    }
  });
}

TEST(Coherence, LazyReleaseHandlerPointsToNextEpoch) {
  it::run_pgas(it::tiny_opts(2, 1), [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(2 * 4096, ic::dist_policy::block_cyclic);
    if (r == 0) {
      auto* p = static_cast<int*>(s.checkout(g + 4096, 8, access_mode::write));
      p[0] = 1;
      s.checkin(g + 4096, 8, access_mode::write);
      const auto e0 = s.cache().current_epoch();
      auto h = s.release_lazy();
      ASSERT_TRUE(h.needed());
      EXPECT_EQ(h.rank, 0);
      EXPECT_EQ(h.epoch, e0 + 1);
      // A lazy release does NOT write anything back by itself.
      EXPECT_TRUE(s.cache().has_dirty());
      s.release();  // cleanup so the run ends clean
    }
    s.barrier();
  });
}

TEST(Coherence, AcquireWaitsForVictimWriteback) {
  it::run_pgas(it::tiny_opts(2, 1), [&](int r, ip::pgas_space& s) {
    static ip::release_handler handler;
    static bool handler_ready = false;
    auto g = s.heap().coll_alloc(2 * 4096, ic::dist_policy::block_cyclic);
    auto g1 = g + 4096;  // homes on rank 1; remote (cached+dirty) on rank 0

    if (r == 0) {
      // Victim: dirty the cache, publish a lazy-release handler, then keep
      // "computing" while polling (DoReleaseIfRequested).
      auto* p = static_cast<int*>(s.checkout(g1, 8, access_mode::write));
      p[0] = 777;
      s.checkin(g1, 8, access_mode::write);
      handler = s.release_lazy();
      handler_ready = true;
      // Simulate a long-running victim that only polls periodically.
      for (int i = 0; i < 1000; i++) {
        ityr::sim::current_engine().advance(1e-6);
        s.poll();
        if (!s.cache().has_dirty()) break;  // write-back was requested & done
      }
      EXPECT_FALSE(s.cache().has_dirty());
    } else {
      // Thief: wait for the handler, acquire through it, then observe the
      // victim's write at its own home memory.
      while (!handler_ready) ityr::sim::current_engine().advance(1e-6);
      s.acquire(handler);
      auto* p = static_cast<const int*>(s.checkout(g1, 8, access_mode::read));
      EXPECT_EQ(p[0], 777);
      s.checkin(g1, 8, access_mode::read);
      EXPECT_EQ(s.cache_of(1).get_stats().lazy_release_waits, 1u);
    }
  });
}

TEST(Coherence, AcquireReturnsImmediatelyIfEpochAlreadyReached) {
  it::run_pgas(it::tiny_opts(2, 1), [&](int r, ip::pgas_space& s) {
    static ip::release_handler handler;
    static bool handler_ready = false;
    static bool released = false;
    auto g = s.heap().coll_alloc(2 * 4096, ic::dist_policy::block_cyclic);

    if (r == 0) {
      auto* p = static_cast<int*>(s.checkout(g + 4096, 8, access_mode::write));
      p[0] = 5;
      s.checkin(g + 4096, 8, access_mode::write);
      handler = s.release_lazy();
      handler_ready = true;
      // Victim releases on its own (e.g., a later normal release) before the
      // thief ever acquires.
      s.release();
      released = true;
    } else {
      while (!handler_ready || !released) ityr::sim::current_engine().advance(1e-6);
      ityr::sim::current_engine().advance(1e-3);  // let the epoch store settle
      s.acquire(handler);
      // No wait was necessary.
      EXPECT_EQ(s.cache_of(1).get_stats().lazy_release_waits, 0u);
    }
  });
}

TEST(Coherence, MultipleAcquirersOnlyNeedOneWriteback) {
  it::run_pgas(it::tiny_opts(3, 1), [&](int r, ip::pgas_space& s) {
    static ip::release_handler handler;
    static bool handler_ready = false;
    auto g = s.heap().coll_alloc(3 * 4096, ic::dist_policy::block_cyclic);
    auto g1 = g + 4096;

    if (r == 0) {
      auto* p = static_cast<int*>(s.checkout(g1, 8, access_mode::write));
      p[0] = 42;
      s.checkin(g1, 8, access_mode::write);
      handler = s.release_lazy();
      handler_ready = true;
      for (int i = 0; i < 2000; i++) {
        ityr::sim::current_engine().advance(1e-6);
        s.poll();
      }
      const auto& st = s.cache_of(0).get_stats();
      EXPECT_EQ(st.releases, 1u);  // single write-back served both thieves
    } else {
      while (!handler_ready) ityr::sim::current_engine().advance(1e-6);
      s.acquire(handler);
      auto* p = static_cast<const int*>(s.checkout(g1, 8, access_mode::read));
      EXPECT_EQ(p[0], 42);
      s.checkin(g1, 8, access_mode::read);
    }
  });
}

TEST(Coherence, PollIsCheapWhenNotRequested) {
  it::run_pgas(it::tiny_opts(1, 1), [&](int, ip::pgas_space& s) {
    const auto e0 = s.cache().current_epoch();
    for (int i = 0; i < 100; i++) s.poll();
    EXPECT_EQ(s.cache().current_epoch(), e0);
    EXPECT_EQ(s.cache().get_stats().releases, 0u);
  });
}

TEST(Coherence, EpochMonotonicallyIncreasesAcrossReleases) {
  it::run_pgas(it::tiny_opts(2, 1), [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(2 * 4096, ic::dist_policy::block_cyclic);
    if (r == 0) {
      auto e0 = s.cache().current_epoch();
      for (int i = 0; i < 3; i++) {
        auto* p = static_cast<int*>(s.checkout(g + 4096, 8, access_mode::write));
        p[0] = i;
        s.checkin(g + 4096, 8, access_mode::write);
        s.release();
      }
      EXPECT_EQ(s.cache().current_epoch(), e0 + 3);
      // Releases with a clean cache do not bump the epoch.
      s.release();
      EXPECT_EQ(s.cache().current_epoch(), e0 + 3);
    }
    s.barrier();
  });
}

TEST(Coherence, SelfHandlerResolvedLocally) {
  it::run_pgas(it::tiny_opts(2, 1), [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(2 * 4096, ic::dist_policy::block_cyclic);
    if (r == 0) {
      auto* p = static_cast<int*>(s.checkout(g + 4096, 8, access_mode::write));
      p[0] = 9;
      s.checkin(g + 4096, 8, access_mode::write);
      auto h = s.release_lazy();
      // Degenerate continuation-not-stolen-but-acquired path: write-back
      // happens locally, no remote wait.
      s.acquire(h);
      EXPECT_FALSE(s.cache().has_dirty());
      EXPECT_EQ(s.cache().get_stats().lazy_release_waits, 0u);
    }
    s.barrier();
  });
}
