#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>

#include "../support/fixture.hpp"
#include "itoyori/pgas/placement.hpp"

namespace ip = ityr::pgas;
namespace ic = ityr::common;
namespace it = ityr::test;

using ip::access_mode;

// Exercises of the dynamic data-placement engine (ITYR_MIGRATION /
// ITYR_REPLICATION): home migration with the forwarding generation,
// per-node read-only replication with invalidation-on-write, and the
// migration-on/off determinism contract.

namespace {

/// tiny_opts with placement features switched on and thresholds lowered so a
/// single block's traffic crosses them.
ityr::common::options placement_opts(int nodes = 2, int rpn = 2) {
  auto o = it::tiny_opts(nodes, rpn);
  o.migration = true;
  o.replication = true;
  o.placement_interval = 1.0e-4;
  o.migration_min_bytes = 1;
  o.migration_share = 0.5;
  o.migration_pool_blocks = 8;
  o.replication_min_bytes = 1;
  o.replication_min_readers = 2;
  o.replication_pool_blocks = 8;
  return o;
}

constexpr std::size_t kBlock = 4096;  // tiny_opts block size

void fill_block(ip::pgas_space& s, ip::gaddr_t g, std::uint32_t tag) {
  auto* p = static_cast<std::uint32_t*>(s.checkout(g, kBlock, access_mode::write));
  for (std::size_t i = 0; i < kBlock / 4; i++) p[i] = tag + static_cast<std::uint32_t>(i);
  s.checkin(g, kBlock, access_mode::write);
}

void expect_block(ip::pgas_space& s, ip::gaddr_t g, std::uint32_t tag) {
  auto* p = static_cast<const std::uint32_t*>(s.checkout(g, kBlock, access_mode::read));
  for (std::size_t i = 0; i < kBlock / 4; i++) {
    ASSERT_EQ(p[i], tag + static_cast<std::uint32_t>(i)) << "word " << i;
  }
  s.checkin(g, kBlock, access_mode::read);
}

}  // namespace

TEST(Placement, DisabledMeansNoEngine) {
  it::run_pgas(it::tiny_opts(2, 2), [&](int, ip::pgas_space& s) {
    EXPECT_EQ(s.placement(), nullptr);
    s.placement_poll();  // must be a no-op, not a crash
  });
}

TEST(Placement, RequestMigrationMovesHomeAndData) {
  it::run_pgas(placement_opts(2, 2), [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(kBlock, ic::dist_policy::block);  // homed rank 0
    const auto mb = s.heap().block_id_of(g);
    ASSERT_NE(s.placement(), nullptr);
    EXPECT_EQ(s.heap().locate_block(mb).rank, 0);

    if (r == 0) fill_block(s, g, 0xA000);
    s.barrier();

    if (r == 0) {
      EXPECT_TRUE(s.placement()->request_migration(mb, 2));
      EXPECT_EQ(s.placement()->stats().migrations, 1u);
      EXPECT_EQ(s.placement()->stats().migration_bytes, kBlock);
      EXPECT_EQ(s.placement()->n_overrides(), 1u);
    }
    s.barrier();

    // Every rank resolves the new home, with a bumped forwarding generation.
    const auto h = s.heap().locate_block(mb);
    EXPECT_EQ(h.rank, 2);
    EXPECT_GT(h.gen, 0u);
    // The data followed the home: a remote reader and the new owner (home
    // path) both observe the original values.
    if (r == 3 || r == 2) expect_block(s, g, 0xA000);
    s.barrier();
  });
}

TEST(Placement, UnmigrationRestoresBaseHomeAndFreesSlot) {
  it::run_pgas(placement_opts(2, 2), [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(kBlock, ic::dist_policy::block);
    const auto mb = s.heap().block_id_of(g);
    if (r == 0) fill_block(s, g, 0xB000);
    s.barrier();
    if (r == 0) {
      EXPECT_TRUE(s.placement()->request_migration(mb, 3));
      EXPECT_EQ(s.heap().locate_block(mb).rank, 3);
      const auto gen1 = s.heap().locate_block(mb).gen;
      // Migrating back to the allocation-time owner releases the pool slot
      // (no override record) but keeps the generation monotone.
      EXPECT_TRUE(s.placement()->request_migration(mb, 0));
      EXPECT_EQ(s.placement()->n_overrides(), 0u);
      const auto h = s.heap().locate_block(mb);
      EXPECT_EQ(h.rank, 0);
      EXPECT_GT(h.gen, gen1);
    }
    s.barrier();
    if (r == 1) expect_block(s, g, 0xB000);
    s.barrier();
  });
}

TEST(Placement, PinnedOrDirtyBlockRefusesMigration) {
  it::run_pgas(placement_opts(2, 2), [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(2 * kBlock, ic::dist_policy::block_cyclic);
    const auto mb1 = s.heap().block_id_of(g + kBlock);  // homed rank 1 (node 0)
    s.barrier();
    if (r == 2) {
      // Writer on node 1: the cross-node home forces the cache path (a
      // same-node writer would write the home bytes directly — never dirty).
      // Pinned: checked out somewhere.
      auto* p = static_cast<std::uint32_t*>(s.checkout(g + kBlock, 64, access_mode::write));
      p[0] = 7;
      EXPECT_FALSE(s.placement()->request_migration(mb1, 3));
      EXPECT_EQ(s.placement()->stats().migrations_skipped, 1u);
      s.checkin(g + kBlock, 64, access_mode::write);
      // Dirty: checked in but not yet released (write-back policy).
      EXPECT_FALSE(s.placement()->request_migration(mb1, 3));
      EXPECT_EQ(s.placement()->stats().migrations_skipped, 2u);
      s.release();
      // Clean and unpinned: the home may move now.
      EXPECT_TRUE(s.placement()->request_migration(mb1, 3));
    }
    s.barrier();
  });
}

TEST(Placement, DirtyHomeMigratedBetweenReleaseAndAcquire) {
  // The acceptance scenario: a writer releases, the (previously dirtied)
  // block's home migrates, and a stealing rank's acquire still observes the
  // written values at the new home.
  it::run_pgas(placement_opts(2, 2), [&](int r, ip::pgas_space& s) {
    static bool migrated = false;
    auto g = s.heap().coll_alloc(2 * kBlock, ic::dist_policy::block_cyclic);
    const auto g1 = g + kBlock;  // homed rank 1 (node 0)
    const auto mb1 = s.heap().block_id_of(g1);

    if (r == 2) {
      // Writer on node 1: dirty the cross-node block, release (write-back to
      // rank 1), then migrate its home onto this node.
      fill_block(s, g1, 0xC000);
      EXPECT_TRUE(s.cache_of(2).has_dirty());
      s.release();
      EXPECT_TRUE(s.placement()->request_migration(mb1, 3));
      migrated = true;
    } else if (r == 0) {
      // Thief: acquire after the migration and read through the new home.
      while (!migrated) ityr::sim::current_engine().advance(1e-6);
      s.acquire();
      EXPECT_EQ(s.heap().locate_block(mb1).rank, 3);
      expect_block(s, g1, 0xC000);
    }
    s.barrier();
  });
}

TEST(Placement, PoolExhaustionRefusesMigration) {
  auto o = placement_opts(2, 2);
  o.migration_pool_blocks = 1;
  it::run_pgas(o, [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(4 * kBlock, ic::dist_policy::block);  // all homed rank 0
    s.barrier();
    if (r == 0) {
      EXPECT_TRUE(s.placement()->request_migration(s.heap().block_id_of(g), 2));
      // Rank 2's single pool slot is taken; the next candidate is refused.
      EXPECT_FALSE(s.placement()->request_migration(s.heap().block_id_of(g + kBlock), 2));
      EXPECT_GE(s.placement()->stats().pool_full_skips, 1u);
      // A different target still has space.
      EXPECT_TRUE(s.placement()->request_migration(s.heap().block_id_of(g + kBlock), 3));
    }
    s.barrier();
  });
}

TEST(Placement, PassMigratesToDominantConsumer) {
  it::run_pgas(placement_opts(2, 2), [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(kBlock, ic::dist_policy::block);  // homed rank 0
    const auto mb = s.heap().block_id_of(g);
    if (r == 0) fill_block(s, g, 0xD000);
    s.barrier();

    // Rank 2 dominates the block's miss traffic: write-heavy rounds whose
    // write-backs (plus refetches) feed the Misra-Gries candidate.
    for (int round = 0; round < 3; round++) {
      if (r == 2) {
        auto* p = static_cast<std::uint32_t*>(s.checkout(g, kBlock, access_mode::read_write));
        for (std::size_t i = 0; i < kBlock / 4; i++) p[i] ^= 0x5A5A5A5Au;
        s.checkin(g, kBlock, access_mode::read_write);
        s.release();
      }
      s.barrier();
    }

    if (r == 2) {
      ityr::sim::current_engine().advance(10 * 1.0e-4);
      s.poll();  // crosses the pass deadline
      EXPECT_GE(s.placement()->stats().passes, 1u);
      EXPECT_EQ(s.placement()->stats().migrations, 1u);
      EXPECT_EQ(s.heap().locate_block(mb).rank, 2);
    }
    s.barrier();
    // Data correct everywhere after the autonomous move (3 XOR rounds).
    if (r == 1) {
      s.acquire();
      auto* p = static_cast<const std::uint32_t*>(s.checkout(g, kBlock, access_mode::read));
      for (std::size_t i = 0; i < kBlock / 4; i++) {
        ASSERT_EQ(p[i], (0xD000 + static_cast<std::uint32_t>(i)) ^ 0x5A5A5A5Au);
      }
      s.checkin(g, kBlock, access_mode::read);
    }
    s.barrier();
  });
}

TEST(Placement, ReadMostlyBlockReplicatedAndInvalidatedOnWrite) {
  // 3 nodes x 2 ranks: owner on node 0, readers on nodes 1 and 2.
  it::run_pgas(placement_opts(3, 2), [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(kBlock, ic::dist_policy::block);  // homed rank 0
    if (r == 0) fill_block(s, g, 0xE000);
    s.barrier();

    // Two reader nodes fetch the whole block (the barrier acquire already
    // invalidated their caches).
    if (r == 2 || r == 4) expect_block(s, g, 0xE000);
    s.barrier();

    if (r == 0) {
      ityr::sim::current_engine().advance(10 * 1.0e-4);
      s.poll();
      EXPECT_GE(s.placement()->stats().replicas, 2u);
      EXPECT_EQ(s.placement()->n_replica_copies(), 2u);
      EXPECT_EQ(s.placement()->stats().migrations, 0u);  // mutually exclusive
    }
    s.barrier();

    // Refetches are now served by the reader's node replica: intra-node
    // traffic, counted both as replica bytes and as bytes saved vs the base
    // home's distance class.
    if (r == 2 || r == 4) {
      expect_block(s, g, 0xE000);
      EXPECT_GE(s.cache_of(r).get_stats().replica_fetch_bytes, kBlock);
      std::uint64_t saved = 0;
      for (int c = 0; c < ip::cache_stats::max_stall_classes; c++) {
        saved += s.placement()->bytes_saved_of(r, c);
      }
      EXPECT_GE(saved, kBlock);
    }
    s.barrier();

    // A write intent kills every copy before its bytes can be fetched again.
    if (r == 0) {
      fill_block(s, g, 0xF000);
      EXPECT_EQ(s.placement()->n_replica_copies(), 0u);
      EXPECT_GE(s.placement()->stats().replica_invalidations, 2u);
      s.release();
    }
    s.barrier();
    if (r == 2 || r == 4) expect_block(s, g, 0xF000);  // fresh values, from the home
    s.barrier();
  });
}

TEST(Placement, MigrationUnderInflightPrefetchStreamIsSafe) {
  auto o = placement_opts(2, 1);
  o.prefetch = true;
  o.prefetch_depth = 4;
  o.prefetch_max_inflight = 1 << 20;
  o.cache_size = 256 * ic::KiB;
  it::run_pgas(o, [&](int r, ip::pgas_space& s) {
    // 16 blocks on rank 0, 16 on rank 1; rank 0 streams through rank 1's
    // half so the prefetcher runs ahead with in-flight segments.
    auto g = s.heap().coll_alloc(32 * kBlock, ic::dist_policy::block);
    if (r == 1) {
      for (int b = 16; b < 32; b++) fill_block(s, g + b * kBlock, 0x1000 * b);
    }
    s.barrier();
    if (r == 0) {
      for (int b = 16; b < 32; b++) {
        if (b == 24) {
          // Mid-stream, migrate a block the prefetcher is likely ahead on:
          // its directory record (including any unretired prefetch segments)
          // must be dropped, never fetched from the old home.
          const auto mb = s.heap().block_id_of(g + 28 * kBlock);
          EXPECT_TRUE(s.placement()->request_migration(mb, 0));
        }
        expect_block(s, g + b * kBlock, 0x1000 * b);
      }
      EXPECT_GT(s.cache_of(0).get_stats().prefetch_issued, 0u);
      // The stale-home forwarding retry is defensive: migration purges every
      // record up front, so the stream must never have followed an old home.
      EXPECT_EQ(s.cache_of(0).get_stats().forward_retries, 0u);
    }
    s.barrier();
  });
}

TEST(Placement, HotBlockExportRanksByFetchBytes) {
  auto o = it::tiny_opts(2, 2);
  o.hot_blocks_topn = 4;  // export alone: no migration, no replication
  it::run_pgas(o, [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(4 * kBlock, ic::dist_policy::block_cyclic);
    ASSERT_NE(s.placement(), nullptr);
    EXPECT_FALSE(s.placement()->migration_enabled());
    EXPECT_FALSE(s.placement()->replication_enabled());
    s.barrier();
    if (r == 2) {
      // Block 1 (homed rank 1) fetched twice, block 0 once.
      auto touch = [&](ip::gaddr_t a, std::size_t n) {
        auto* p = static_cast<const std::uint8_t*>(s.checkout(a, n, access_mode::read));
        (void)p;
        s.checkin(a, n, access_mode::read);
      };
      touch(g + kBlock, kBlock);
      s.acquire();
      touch(g + kBlock, kBlock);
      touch(g, 64);
    }
    s.barrier();
    if (r == 0) {
      const auto hot = s.placement()->hottest(4);
      ASSERT_GE(hot.size(), 2u);
      EXPECT_EQ(hot[0].mb_id, s.heap().block_id_of(g + kBlock));
      EXPECT_EQ(hot[0].owner, 1);
      EXPECT_EQ(hot[0].reader_mask & (1u << 2), 1u << 2);
      EXPECT_GE(hot[0].fetch_bytes, 2 * kBlock);
      EXPECT_GE(hot[0].fetch_bytes, hot[1].fetch_bytes);  // sorted desc
    }
    s.barrier();
  });
}

namespace {

/// A small skewed-ownership workload: ranks 2/3 concentrate their writes on
/// the first two blocks (homed on node 0), everyone reads scattered words.
/// Returns an FNV-1a digest of the final array contents.
std::uint64_t run_differential_workload(bool placement_on, unsigned seed) {
  auto o = it::tiny_opts(2, 2);
  if (placement_on) {
    o.migration = true;
    o.replication = true;
    o.placement_interval = 5.0e-5;
    o.migration_min_bytes = 1;
    o.replication_min_bytes = 1;
    o.migration_pool_blocks = 16;
    o.replication_pool_blocks = 16;
  }
  constexpr int kBlocks = 16;
  constexpr std::size_t kWords = kBlocks * kBlock / 8;
  static std::uint64_t digest;
  digest = 0;
  it::run_pgas(o, [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(kBlocks * kBlock, ic::dist_policy::block_cyclic);
    std::mt19937_64 rng(seed * 1315423911u + static_cast<unsigned>(r) * 2654435761u);
    for (int iter = 0; iter < 12; iter++) {
      s.barrier();
      // Write phase: word indices with residue r (disjoint across ranks).
      for (int k = 0; k < 6; k++) {
        const std::uint64_t idx =
            r >= 2 ? (rng() % (kBlock / 16)) * 4 + static_cast<std::uint64_t>(r)  // blocks 0/1
                   : (rng() % (kWords / 4)) * 4 + static_cast<std::uint64_t>(r);
        const std::uint64_t v = rng();
        auto* p = static_cast<std::uint64_t*>(s.checkout(g + idx * 8, 8, access_mode::write));
        p[0] = v;
        s.checkin(g + idx * 8, 8, access_mode::write);
      }
      s.barrier();
      // Read phase: anything goes (no writes are concurrent).
      for (int k = 0; k < 4; k++) {
        const std::uint64_t idx = rng() % kWords;
        auto* p =
            static_cast<const std::uint64_t*>(s.checkout(g + idx * 8, 8, access_mode::read));
        (void)p[0];
        s.checkin(g + idx * 8, 8, access_mode::read);
      }
      s.barrier();
      if (r == (iter & 3)) {
        ityr::sim::current_engine().advance(2.0e-4);
        s.poll();  // placement pass when on; harmless when off
      }
    }
    s.barrier();
    if (r == 0) {
      std::uint64_t h = 1469598103934665603ull;
      for (int b = 0; b < kBlocks; b++) {
        auto* p = static_cast<const std::uint8_t*>(
            s.checkout(g + b * kBlock, kBlock, access_mode::read));
        for (std::size_t i = 0; i < kBlock; i++) {
          h = (h ^ p[i]) * 1099511628211ull;
        }
        s.checkin(g + b * kBlock, kBlock, access_mode::read);
      }
      digest = h;
    }
    s.barrier();
  });
  return digest;
}

}  // namespace

TEST(Placement, MigrationOnOffChecksumDifferential) {
  // Placement moves bytes around but must never change program-visible
  // values: ten seeds, identical digests with the engine off and on.
  for (unsigned seed = 0; seed < 10; seed++) {
    const std::uint64_t off = run_differential_workload(false, seed);
    const std::uint64_t on = run_differential_workload(true, seed);
    EXPECT_EQ(off, on) << "seed " << seed;
  }
}
