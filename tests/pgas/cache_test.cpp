#include "itoyori/pgas/cache_system.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "../support/fixture.hpp"

namespace ip = ityr::pgas;
namespace ic = ityr::common;
namespace it = ityr::test;

using ip::access_mode;

namespace {

/// 1 node x 2 ranks: rank 1's collective blocks are remote to rank 0 only if
/// they are on another node, so for cache-path tests use 2 nodes x 1 rank.
ityr::common::options remote_opts() { return it::tiny_opts(2, 1); }

}  // namespace

TEST(Cache, LocalHomeCheckoutIsDirect) {
  it::run_pgas(it::tiny_opts(1, 1), [&](int, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(8192, ic::dist_policy::block);
    auto* p = static_cast<int*>(s.checkout(g, 8192, access_mode::write));
    for (int i = 0; i < 2048; i++) p[i] = i;
    s.checkin(g, 8192, access_mode::write);
    // Data is directly in the home pool (no cache involved).
    auto home = s.heap().locate_block(s.heap().block_id_of(g));
    EXPECT_EQ(*reinterpret_cast<const int*>(home.pool->at(home.pool_off)), 0);
    EXPECT_EQ(*reinterpret_cast<const int*>(home.pool->at(home.pool_off + 4 * 100)), 100);
    EXPECT_EQ(s.cache().get_stats().fetched_bytes, 0u);
  });
}

TEST(Cache, RemoteReadFetchesFromHome) {
  it::run_pgas(remote_opts(), [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(2 * 4096, ic::dist_policy::block_cyclic);
    // Block 0 homes on rank 0, block 1 on rank 1.
    if (r == 0) {
      auto* p = static_cast<int*>(s.checkout(g, 4096, access_mode::write));
      for (int i = 0; i < 1024; i++) p[i] = 7 * i;
      s.checkin(g, 4096, access_mode::write);
    }
    s.barrier();
    if (r == 1) {
      auto* p = static_cast<const int*>(s.checkout(g, 4096, access_mode::read));
      for (int i = 0; i < 1024; i++) ASSERT_EQ(p[i], 7 * i);
      s.checkin(g, 4096, access_mode::read);
      EXPECT_GT(s.cache().get_stats().fetched_bytes, 0u);
    }
  });
}

TEST(Cache, RepeatedReadHitsCache) {
  it::run_pgas(remote_opts(), [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(2 * 4096, ic::dist_policy::block_cyclic);
    s.barrier();
    if (r == 0) {
      // Block 1 homes on rank 1: remote for rank 0.
      auto g1 = g + 4096;
      s.checkout(g1, 4096, access_mode::read);
      s.checkin(g1, 4096, access_mode::read);
      const auto fetched_once = s.cache().get_stats().fetched_bytes;
      EXPECT_GT(fetched_once, 0u);
      for (int i = 0; i < 10; i++) {
        s.checkout(g1, 4096, access_mode::read);
        s.checkin(g1, 4096, access_mode::read);
      }
      EXPECT_EQ(s.cache().get_stats().fetched_bytes, fetched_once);
      EXPECT_GE(s.cache().get_stats().block_hits, 10u);
    }
    s.barrier();
  });
}

TEST(Cache, SubBlockFetchGranularity) {
  it::run_pgas(remote_opts(), [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(2 * 4096, ic::dist_policy::block_cyclic);
    s.barrier();
    if (r == 0) {
      auto g1 = g + 4096;  // remote block
      // Read 8 bytes: fetch must be exactly one 1 KiB sub-block.
      s.checkout(g1 + 100, 8, access_mode::read);
      s.checkin(g1 + 100, 8, access_mode::read);
      EXPECT_EQ(s.cache().get_stats().fetched_bytes, 1024u);
      // Reading elsewhere in the same sub-block: no new fetch.
      s.checkout(g1 + 200, 8, access_mode::read);
      s.checkin(g1 + 200, 8, access_mode::read);
      EXPECT_EQ(s.cache().get_stats().fetched_bytes, 1024u);
      // Straddling into the next sub-block fetches only the missing one.
      s.checkout(g1 + 1020, 8, access_mode::read);
      s.checkin(g1 + 1020, 8, access_mode::read);
      EXPECT_EQ(s.cache().get_stats().fetched_bytes, 2048u);
    }
    s.barrier();
  });
}

TEST(Cache, WriteBackFlushesOnRelease) {
  it::run_pgas(remote_opts(), [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(2 * 4096, ic::dist_policy::block_cyclic);
    auto g1 = g + 4096;  // homes on rank 1
    if (r == 0) {
      auto* p = static_cast<int*>(s.checkout(g1, 256, access_mode::write));
      for (int i = 0; i < 64; i++) p[i] = i + 1;
      s.checkin(g1, 256, access_mode::write);
      EXPECT_TRUE(s.cache().has_dirty());
      auto home = s.heap().locate_block(s.heap().block_id_of(g1));
      // Not yet at home (write-back policy).
      EXPECT_EQ(*reinterpret_cast<const int*>(home.pool->at(home.pool_off)), 0);
      s.release();
      EXPECT_FALSE(s.cache().has_dirty());
      EXPECT_EQ(*reinterpret_cast<const int*>(home.pool->at(home.pool_off)), 1);
      EXPECT_EQ(s.cache().get_stats().written_back_bytes, 256u);
    }
    s.barrier();
    if (r == 1) {
      auto* p = static_cast<const int*>(s.checkout(g1, 256, access_mode::read));
      for (int i = 0; i < 64; i++) ASSERT_EQ(p[i], i + 1);
      s.checkin(g1, 256, access_mode::read);
    }
  });
}

TEST(Cache, WriteThroughFlushesOnCheckin) {
  auto o = remote_opts();
  o.policy = ic::cache_policy::write_through;
  it::run_pgas(o, [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(2 * 4096, ic::dist_policy::block_cyclic);
    auto g1 = g + 4096;
    if (r == 0) {
      auto* p = static_cast<int*>(s.checkout(g1, 128, access_mode::write));
      p[0] = 42;
      s.checkin(g1, 128, access_mode::write);
      EXPECT_FALSE(s.cache().has_dirty());
      auto home = s.heap().locate_block(s.heap().block_id_of(g1));
      EXPECT_EQ(*reinterpret_cast<const int*>(home.pool->at(home.pool_off)), 42);
      EXPECT_EQ(s.cache().get_stats().write_through_bytes, 128u);
      EXPECT_EQ(s.cache().get_stats().written_back_bytes, 0u);
    }
    s.barrier();
  });
}

TEST(Cache, AcquireInvalidatesStaleData) {
  it::run_pgas(remote_opts(), [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(2 * 4096, ic::dist_policy::block_cyclic);
    auto g1 = g + 4096;  // homes on rank 1
    if (r == 0) {
      // Populate cache with the initial (zero) contents.
      auto* p = static_cast<const int*>(s.checkout(g1, 64, access_mode::read));
      EXPECT_EQ(p[0], 0);
      s.checkin(g1, 64, access_mode::read);
    }
    s.barrier();  // rank 1 writes after this
    if (r == 1) {
      auto* p = static_cast<int*>(s.checkout(g1, 64, access_mode::read_write));
      p[0] = 99;
      s.checkin(g1, 64, access_mode::read_write);
      // Home write is direct (rank 1 owns it): no release needed here.
    }
    s.barrier();  // includes release+acquire
    if (r == 0) {
      auto* p = static_cast<const int*>(s.checkout(g1, 64, access_mode::read));
      EXPECT_EQ(p[0], 99);  // stale cache was invalidated and refetched
      s.checkin(g1, 64, access_mode::read);
    }
  });
}

TEST(Cache, DirtyDataSurvivesRefetchOfSameBlock) {
  // A dirty byte range must not be overwritten when the surrounding block
  // is fetched later (Fig. 4 line 19: already-valid regions are excluded
  // from the fetch).
  it::run_pgas(remote_opts(), [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(2 * 4096, ic::dist_policy::block_cyclic);
    auto g1 = g + 4096;
    if (r == 0) {
      // Dirty a small piece in write mode (no fetch).
      auto* p = static_cast<int*>(s.checkout(g1, 8, access_mode::write));
      p[0] = 123;
      p[1] = 456;
      s.checkin(g1, 8, access_mode::write);
      // Now read a larger range covering the dirty piece.
      auto* q = static_cast<const int*>(s.checkout(g1, 4096, access_mode::read));
      EXPECT_EQ(q[0], 123);
      EXPECT_EQ(q[1], 456);
      EXPECT_EQ(q[2], 0);  // rest fetched from home
      s.checkin(g1, 4096, access_mode::read);
    }
    s.barrier();
  });
}

TEST(Cache, LruEvictionOnSweep) {
  it::run_pgas(remote_opts(), [&](int r, ip::pgas_space& s) {
    // Cache is 16 blocks of 4 KiB; sweep a 48-block remote region.
    const std::size_t n_blocks = 48;
    auto g = s.heap().coll_alloc(2 * n_blocks * 4096, ic::dist_policy::block_cyclic);
    s.barrier();
    if (r == 0) {
      for (std::size_t j = 0; j < n_blocks; j++) {
        auto gj = g + (2 * j + 1) * 4096;  // odd blocks home on rank 1
        s.checkout(gj, 4096, access_mode::read);
        s.checkin(gj, 4096, access_mode::read);
      }
      EXPECT_GT(s.cache().get_stats().cache_evictions, 0u);
      EXPECT_EQ(s.cache().get_stats().fetched_bytes, n_blocks * 4096u);
    }
    s.barrier();
  });
}

TEST(Cache, TooMuchCheckoutThrows) {
  it::run_pgas(remote_opts(), [&](int r, ip::pgas_space& s) {
    // Request more than the 64 KiB cache in one checkout of remote memory.
    auto g = s.heap().coll_alloc(2 * 40 * 4096, ic::dist_policy::block);
    s.barrier();
    if (r == 0) {
      // Second half homes on rank 1 (block policy): 40 remote blocks > 16.
      auto g_remote = g + 40 * 4096;
      EXPECT_THROW(s.checkout(g_remote, 40 * 4096, access_mode::read),
                   ic::too_much_checkout_error);
    }
    s.barrier();
  });
}

TEST(Cache, RefCountPinsNestedCheckouts) {
  it::run_pgas(remote_opts(), [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(2 * 4096, ic::dist_policy::block_cyclic);
    s.barrier();
    if (r == 0) {
      auto g1 = g + 4096;
      // Two overlapping checkouts of the same region (allowed within one
      // process, Section 3.3).
      auto* p1 = static_cast<const int*>(s.checkout(g1, 512, access_mode::read));
      auto* p2 = static_cast<const int*>(s.checkout(g1 + 128, 128, access_mode::read));
      EXPECT_EQ(static_cast<const void*>(p1 + 32), static_cast<const void*>(p2));
      s.checkin(g1 + 128, 128, access_mode::read);
      EXPECT_EQ(p1[0], 0);  // still accessible: refcount held
      s.checkin(g1, 512, access_mode::read);
    }
    s.barrier();
  });
}

TEST(Cache, CheckinWithoutCheckoutThrows) {
  it::run_pgas(it::tiny_opts(1, 1), [&](int, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(4096, ic::dist_policy::block);
    EXPECT_THROW(s.checkin(g, 64, access_mode::read), ic::api_error);
  });
}

TEST(Cache, CheckoutOutsideHeapThrows) {
  it::run_pgas(it::tiny_opts(1, 1), [&](int, ip::pgas_space& s) {
    EXPECT_THROW(s.checkout(1, 8, access_mode::read), ic::api_error);
  });
}

TEST(Cache, WriteBackThenEvictionPreservesData) {
  it::run_pgas(remote_opts(), [&](int r, ip::pgas_space& s) {
    const std::size_t n_blocks = 48;
    auto g = s.heap().coll_alloc(2 * n_blocks * 4096, ic::dist_policy::block_cyclic);
    if (r == 0) {
      // Dirty many remote blocks, forcing eviction-time write-backs.
      for (std::size_t j = 0; j < n_blocks; j++) {
        auto gj = g + (2 * j + 1) * 4096;
        auto* p = static_cast<std::uint32_t*>(s.checkout(gj, 4096, access_mode::write));
        for (int i = 0; i < 1024; i++) p[i] = static_cast<std::uint32_t>(j * 10000 + i);
        s.checkin(gj, 4096, access_mode::write);
      }
      s.release();
    }
    s.barrier();
    if (r == 1) {
      // All data must be at home now; verify via direct home access.
      for (std::size_t j = 0; j < n_blocks; j++) {
        auto gj = g + (2 * j + 1) * 4096;
        auto* p = static_cast<const std::uint32_t*>(s.checkout(gj, 4096, access_mode::read));
        for (int i = 0; i < 1024; i += 97) {
          ASSERT_EQ(p[i], static_cast<std::uint32_t>(j * 10000 + i));
        }
        s.checkin(gj, 4096, access_mode::read);
      }
    }
  });
}

TEST(Cache, IntraNodeHomeSharedWithoutFetch) {
  // 1 node x 2 ranks: rank 1's home blocks are mapped directly by rank 0.
  it::run_pgas(it::tiny_opts(1, 2), [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(2 * 4096, ic::dist_policy::block_cyclic);
    if (r == 1) {
      auto* p = static_cast<int*>(s.checkout(g + 4096, 64, access_mode::write));
      p[0] = 31337;
      s.checkin(g + 4096, 64, access_mode::write);
    }
    s.barrier();
    if (r == 0) {
      auto* p = static_cast<const int*>(s.checkout(g + 4096, 64, access_mode::read));
      EXPECT_EQ(p[0], 31337);
      s.checkin(g + 4096, 64, access_mode::read);
      EXPECT_EQ(s.cache().get_stats().fetched_bytes, 0u);  // zero-copy shm
    }
    s.barrier();
  });
}

TEST(Cache, HomeBlockMappingEvictionAndRemap) {
  auto o = it::tiny_opts(1, 1);
  o.max_map_entries = 40;  // tiny budget: home_mapped_limit floors at 64
  o.coll_heap_per_rank = 512 * ic::KiB;
  it::run_pgas(o, [&](int, ip::pgas_space& s) {
    EXPECT_GE(s.cache().home_mapped_limit(), 64u);
    const std::size_t sweep = s.cache().home_mapped_limit() + 16;
    auto g = s.heap().coll_alloc(sweep * 4096, ic::dist_policy::block);
    for (std::size_t j = 0; j < sweep; j++) {
      auto* p = static_cast<std::uint64_t*>(s.checkout(g + j * 4096, 8, access_mode::write));
      *p = j;
      s.checkin(g + j * 4096, 8, access_mode::write);
    }
    EXPECT_GT(s.cache().get_stats().home_evictions, 0u);
    // Re-read everything: evicted home blocks remap with data intact.
    for (std::size_t j = 0; j < sweep; j++) {
      auto* p = static_cast<const std::uint64_t*>(s.checkout(g + j * 4096, 8, access_mode::read));
      ASSERT_EQ(*p, j);
      s.checkin(g + j * 4096, 8, access_mode::read);
    }
  });
}

TEST(Cache, CheckoutSpansHomeAndRemoteBlocks) {
  it::run_pgas(remote_opts(), [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(2 * 4096, ic::dist_policy::block_cyclic);
    if (r == 0) {
      // One checkout spanning a local home block and a remote cached block:
      // the returned pointer must be contiguous across the boundary.
      auto* p = static_cast<std::uint8_t*>(s.checkout(g, 2 * 4096, access_mode::write));
      for (std::size_t i = 0; i < 2 * 4096; i++) p[i] = static_cast<std::uint8_t>(i % 251);
      s.checkin(g, 2 * 4096, access_mode::write);
      s.release();
    }
    s.barrier();
    if (r == 1) {
      auto* p = static_cast<const std::uint8_t*>(s.checkout(g, 2 * 4096, access_mode::read));
      for (std::size_t i = 0; i < 2 * 4096; i += 119) {
        ASSERT_EQ(p[i], static_cast<std::uint8_t>(i % 251));
      }
      s.checkin(g, 2 * 4096, access_mode::read);
    }
  });
}

TEST(Cache, GetPutBaselineRoundTrip) {
  it::run_pgas(remote_opts(), [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(4096 * sizeof(int) + 4096, ic::dist_policy::block_cyclic);
    if (r == 0) {
      std::vector<int> buf(4096);
      std::iota(buf.begin(), buf.end(), 1000);
      s.put(buf.data(), g + 100, buf.size() * sizeof(int));
    }
    s.barrier();
    if (r == 1) {
      std::vector<int> buf(4096, 0);
      s.get(g + 100, buf.data(), buf.size() * sizeof(int));
      for (int i = 0; i < 4096; i++) ASSERT_EQ(buf[i], 1000 + i);
    }
  });
}

TEST(Cache, NoncollectiveRemoteAccessWorks) {
  it::run_pgas(remote_opts(), [&](int r, ip::pgas_space& s) {
    static ip::gaddr_t shared = 0;
    if (r == 0) {
      shared = s.heap().alloc(64);
      auto* p = static_cast<std::uint64_t*>(s.checkout(shared, 8, access_mode::write));
      *p = 0xfeedface;
      s.checkin(shared, 8, access_mode::write);
      // Local home: already visible.
    }
    s.barrier();
    if (r == 1) {
      auto* p = static_cast<const std::uint64_t*>(s.checkout(shared, 8, access_mode::read));
      EXPECT_EQ(*p, 0xfeedfaceu);
      s.checkin(shared, 8, access_mode::read);
    }
    s.barrier();
  });
}
