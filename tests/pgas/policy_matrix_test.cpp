// Property-style matrix: the same DRF workloads must produce identical
// results under every (cache policy x topology) combination — SC-for-DRF
// makes the policy observable only in performance, never in outcomes.

#include <gtest/gtest.h>

#include <tuple>

#include "../support/fixture.hpp"
#include "itoyori/core/ityr.hpp"

namespace {

using param_t = std::tuple<ityr::cache_policy, int /*nodes*/, int /*rpn*/>;

class PolicyMatrix : public ::testing::TestWithParam<param_t> {
protected:
  ityr::options make_opts() const {
    auto [policy, nodes, rpn] = GetParam();
    auto o = ityr::test::tiny_opts(nodes, rpn);
    o.policy = policy;
    o.coll_heap_per_rank = 2 * ityr::common::MiB;
    return o;
  }
};

TEST_P(PolicyMatrix, PhasedIncrementsConverge) {
  ityr::runtime rt(make_opts());
  rt.spmd([&] {
    const std::size_t n = 1500;  // deliberately not block-aligned
    auto a = ityr::coll_new<int>(n);
    long sum = ityr::root_exec([=] {
      ityr::parallel_fill(a, n, 100, 0);
      for (int round = 0; round < 4; round++) {
        ityr::parallel_for_each(a, n, 100, ityr::access_mode::read_write,
                                [round](int& x, std::size_t i) {
                                  x += static_cast<int>(i % 7) + round;
                                });
      }
      return ityr::parallel_reduce(
          a, n, 100, 0L, [](int v) { return static_cast<long>(v); },
          [](long x, long y) { return x + y; });
    });
    long expect = 0;
    for (std::size_t i = 0; i < n; i++) expect += 4 * static_cast<long>(i % 7) + (0 + 1 + 2 + 3);
    EXPECT_EQ(sum, expect);
    ityr::coll_delete(a, n);
  });
}

TEST_P(PolicyMatrix, ScatterGatherWithUnalignedSpans) {
  ityr::runtime rt(make_opts());
  rt.spmd([&] {
    const std::size_t n = 3037;  // prime: every block/sub-block boundary hit
    auto a = ityr::coll_new<std::uint16_t>(n);
    auto b = ityr::coll_new<std::uint16_t>(n);
    bool ok = ityr::root_exec([=] {
      ityr::parallel_for_each(a, n, 64, ityr::access_mode::write,
                              [](std::uint16_t& x, std::size_t i) {
                                x = static_cast<std::uint16_t>(i * 31 + 7);
                              });
      // Reverse into b via element-wise remote reads.
      ityr::parallel_for_each(b, n, 64, ityr::access_mode::write,
                              [=](std::uint16_t& x, std::size_t i) {
                                x = ityr::get(a + static_cast<std::ptrdiff_t>(n - 1 - i));
                              });
      return ityr::parallel_reduce(
          b, n, 64, true,
          [](std::uint16_t) { return true; },
          [](bool x, bool y) { return x && y; });
    });
    EXPECT_TRUE(ok);
    // Spot-check the reversal from another rank.
    if (ityr::my_rank() == ityr::n_ranks() - 1) {
      for (std::size_t i = 0; i < n; i += 501) {
        EXPECT_EQ(ityr::get(b + static_cast<std::ptrdiff_t>(i)),
                  static_cast<std::uint16_t>((n - 1 - i) * 31 + 7));
      }
    }
    ityr::barrier();
    ityr::coll_delete(a, n);
    ityr::coll_delete(b, n);
  });
}

TEST_P(PolicyMatrix, NoncollectiveObjectsSurviveHandoffs) {
  ityr::runtime rt(make_opts());
  rt.spmd([&] {
    struct record {
      std::uint64_t id;
      std::uint64_t payload[6];
    };
    const int n_records = 64;
    long sum = ityr::root_exec([=] {
      // Allocate records from whatever rank executes each task, link them
      // into a global array of pointers, then read them all back.
      auto index = ityr::noncoll_new<ityr::global_ptr<record>>(n_records);
      ityr::parallel_for_each(index, n_records, 4, ityr::access_mode::write,
                              [](ityr::global_ptr<record>& slot, std::size_t i) {
                                auto r = ityr::noncoll_new<record>(1);
                                ityr::with_checkout(r, 1, ityr::access_mode::write,
                                                    [i](record* p) {
                                                      p->id = i;
                                                      for (auto& w : p->payload) w = i * 10;
                                                    });
                                slot = r;
                              });
      long total = 0;
      for (int i = 0; i < n_records; i++) {
        auto r = ityr::get(index + i);
        total += ityr::with_checkout(r, 1, ityr::access_mode::read, [](const record* p) {
          return static_cast<long>(p->id + p->payload[5]);
        });
        ityr::noncoll_delete(r, 1);
      }
      ityr::noncoll_delete(index, n_records);
      return total;
    });
    long expect = 0;
    for (int i = 0; i < n_records; i++) expect += i + i * 10;
    EXPECT_EQ(sum, expect);
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyMatrix,
    ::testing::Combine(::testing::Values(ityr::cache_policy::none,
                                         ityr::cache_policy::write_through,
                                         ityr::cache_policy::write_back,
                                         ityr::cache_policy::write_back_lazy),
                       ::testing::Values(1, 3), ::testing::Values(1, 2)),
    [](const ::testing::TestParamInfo<param_t>& info) {
      return std::string(ityr::common::to_string(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param)) + "n" +
             std::to_string(std::get<2>(info.param)) + "r";
    });

}  // namespace
