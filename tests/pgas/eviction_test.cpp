// Eviction-pressure corner cases: interactions between LRU eviction, dirty
// data, the lazy-release epoch protocol, and the mapping-entry ledger.

#include <gtest/gtest.h>

#include "../support/fixture.hpp"

namespace ip = ityr::pgas;
namespace ic = ityr::common;
namespace it = ityr::test;

using ip::access_mode;

namespace {
// 2 nodes x 1 rank: every cross-rank access is remote (cached).
ityr::common::options remote_opts() { return it::tiny_opts(2, 1); }
}  // namespace

TEST(Eviction, DirtyEvictionWriteback_SatisfiesLazyHandler) {
  // A handler was issued for dirty data; before any thief asks, cache
  // pressure forces a write-back-all. The epoch bump from that eviction
  // write-back must satisfy the handler so the (later) acquirer never waits.
  it::run_pgas(remote_opts(), [&](int r, ip::pgas_space& s) {
    static ip::release_handler handler;
    static bool ready = false;
    const std::size_t n_blocks = 40;  // cache is 16 blocks
    auto g = s.heap().coll_alloc(2 * n_blocks * 4096, ic::dist_policy::block_cyclic);

    if (r == 0) {
      // Dirty the ENTIRE cache (16 blocks of 4 KiB), publish the handler.
      // Clean blocks are always preferred for eviction, so only a fully
      // dirty cache forces the eviction-time write-back-all.
      const std::size_t n_cache = s.cache().n_cache_blocks();
      for (std::size_t j = 0; j < n_cache; j++) {
        auto gj = g + (2 * j + 1) * 4096;
        auto* p = static_cast<int*>(s.checkout(gj, 8, access_mode::write));
        p[0] = 1234 + static_cast<int>(j);
        s.checkin(gj, 8, access_mode::write);
      }
      handler = s.release_lazy();
      ASSERT_TRUE(handler.needed());
      // One more remote block: no clean evictable block exists, so the
      // cache performs write-back-all (bumping the epoch) and retries.
      auto extra = g + (2 * n_cache + 1) * 4096;
      s.checkout(extra, 4096, access_mode::read);
      s.checkin(extra, 4096, access_mode::read);
      EXPECT_FALSE(s.cache().has_dirty());
      EXPECT_GE(s.cache().current_epoch(), handler.epoch);
      ready = true;
    } else {
      while (!ready) ityr::sim::current_engine().advance(1e-6);
      // Acquire must return without a wait loop (epoch already reached).
      s.acquire(handler);
      EXPECT_EQ(s.cache_of(1).get_stats().lazy_release_waits, 0u);
      auto* p = static_cast<const int*>(s.checkout(g + 4096, 8, access_mode::read));
      EXPECT_EQ(p[0], 1234);  // j = 0 block, home on rank 1: read directly
      s.checkin(g + 4096, 8, access_mode::read);
    }
  });
}

TEST(Eviction, PinnedBlocksAreNeverEvicted) {
  it::run_pgas(remote_opts(), [&](int r, ip::pgas_space& s) {
    const std::size_t n_blocks = 40;
    auto g = s.heap().coll_alloc(2 * n_blocks * 4096, ic::dist_policy::block_cyclic);
    s.barrier();
    if (r == 0) {
      // Pin one remote block by keeping it checked out, fill it with a
      // sentinel via a dirty write.
      auto g_pinned = g + 4096;
      auto* pinned = static_cast<int*>(s.checkout(g_pinned, 4096, access_mode::read_write));
      pinned[7] = 777;
      // Sweep enough other remote blocks to churn the whole cache.
      for (std::size_t j = 1; j < n_blocks; j++) {
        auto gj = g + (2 * j + 1) * 4096;
        s.checkout(gj, 4096, access_mode::read);
        s.checkin(gj, 4096, access_mode::read);
      }
      // The pinned mapping must still be intact and hold our write.
      EXPECT_EQ(pinned[7], 777);
      s.checkin(g_pinned, 4096, access_mode::read_write);
      s.release();
    }
    s.barrier();
    if (r == 1) {
      auto* p = static_cast<const int*>(s.checkout(g + 4096, 4096, access_mode::read));
      EXPECT_EQ(p[7], 777);
      s.checkin(g + 4096, 4096, access_mode::read);
    }
  });
}

TEST(Eviction, MapEntryEstimateStaysBounded) {
  // However hard the cache churns, the view's worst-case VMA ledger must
  // stay within the per-rank budget derived from max_map_entries (§4.3.2).
  it::run_pgas(remote_opts(), [&](int r, ip::pgas_space& s) {
    const std::size_t n_blocks = 60;
    auto g = s.heap().coll_alloc(2 * n_blocks * 4096, ic::dist_policy::block_cyclic);
    s.barrier();
    if (r == 0) {
      std::size_t max_entries = 0;
      for (int round = 0; round < 3; round++) {
        for (std::size_t j = 0; j < n_blocks; j++) {
          auto gj = g + (2 * j + 1) * 4096;
          s.checkout(gj, 4096, access_mode::read);
          s.checkin(gj, 4096, access_mode::read);
          max_entries = std::max(max_entries, s.cache().view().map_entry_estimate());
        }
      }
      const std::size_t budget =
          2 * (s.cache().n_cache_blocks() + s.cache().home_mapped_limit()) + 1;
      EXPECT_LE(max_entries, budget);
      EXPECT_GT(s.cache().view().map_calls(), 0u);
    }
    s.barrier();
  });
}

TEST(Eviction, EvictedBlockRefetchesFreshData) {
  // After a block is evicted and its slot reused, re-checkout must fetch
  // from home again (no stale aliasing through the recycled slot).
  it::run_pgas(remote_opts(), [&](int r, ip::pgas_space& s) {
    const std::size_t n_blocks = 40;
    auto g = s.heap().coll_alloc(2 * n_blocks * 4096, ic::dist_policy::block_cyclic);
    auto g1 = g + 4096;  // homes on rank 1
    if (r == 1) {
      auto* p = static_cast<int*>(s.checkout(g1, 16, access_mode::write));
      p[0] = 1;
      s.checkin(g1, 16, access_mode::write);
      // rank 1 owns this memory... actually it is home-local: direct write.
    }
    s.barrier();
    if (r == 0) {
      auto* p = static_cast<const int*>(s.checkout(g1, 16, access_mode::read));
      EXPECT_EQ(p[0], 1);
      s.checkin(g1, 16, access_mode::read);
      const auto evictions_before = s.cache().get_stats().cache_evictions;
      // Churn the cache so g1's block is evicted.
      for (std::size_t j = 1; j < n_blocks; j++) {
        auto gj = g + (2 * j + 1) * 4096;
        s.checkout(gj, 4096, access_mode::read);
        s.checkin(gj, 4096, access_mode::read);
      }
      EXPECT_GT(s.cache().get_stats().cache_evictions, evictions_before);
    }
    s.barrier();
    if (r == 1) {
      auto* p = static_cast<int*>(s.checkout(g1, 16, access_mode::read_write));
      p[0] = 2;  // home-direct update
      s.checkin(g1, 16, access_mode::read_write);
    }
    s.barrier();
    if (r == 0) {
      auto* p = static_cast<const int*>(s.checkout(g1, 16, access_mode::read));
      EXPECT_EQ(p[0], 2) << "recycled slot must not alias stale data";
      s.checkin(g1, 16, access_mode::read);
    }
  });
}

TEST(Eviction, WriteThroughBlocksAlwaysEvictable) {
  auto o = remote_opts();
  o.policy = ic::cache_policy::write_through;
  it::run_pgas(o, [&](int r, ip::pgas_space& s) {
    const std::size_t n_blocks = 50;
    auto g = s.heap().coll_alloc(2 * n_blocks * 4096, ic::dist_policy::block_cyclic);
    s.barrier();
    if (r == 0) {
      // Write-through leaves no dirty blocks, so a pure write sweep through
      // many more blocks than the cache holds must never throw.
      for (std::size_t j = 0; j < n_blocks; j++) {
        auto gj = g + (2 * j + 1) * 4096;
        auto* p = static_cast<int*>(s.checkout(gj, 4096, access_mode::write));
        p[0] = static_cast<int>(j);
        s.checkin(gj, 4096, access_mode::write);
      }
      EXPECT_FALSE(s.cache().has_dirty());
      EXPECT_GT(s.cache().get_stats().cache_evictions, 0u);
    }
    s.barrier();
  });
}

TEST(Eviction, ClockPolicyRunsFullWorkloadCorrectly) {
  // End-to-end run with the clock/second-chance eviction policy selected via
  // the options seam (what ITYR_EVICTION_POLICY=clock resolves to): a write
  // sweep over many more remote blocks than the cache holds must evict, stay
  // coherent, and read back every value.
  auto o = remote_opts();
  o.eviction = ic::eviction_kind::clock;
  it::run_pgas(o, [&](int r, ip::pgas_space& s) {
    const std::size_t n_blocks = 50;
    auto g = s.heap().coll_alloc(2 * n_blocks * 4096, ic::dist_policy::block_cyclic);
    s.barrier();
    if (r == 0) {
      for (std::size_t j = 0; j < n_blocks; j++) {
        auto gj = g + (2 * j + 1) * 4096;
        auto* p = static_cast<int*>(s.checkout(gj, 4096, access_mode::write));
        p[0] = static_cast<int>(1000 + j);
        s.checkin(gj, 4096, access_mode::write);
      }
      EXPECT_GT(s.cache().get_stats().cache_evictions, 0u);
      s.release();
    }
    s.barrier();
    if (r == 1) {
      for (std::size_t j = 0; j < n_blocks; j++) {
        auto gj = g + (2 * j + 1) * 4096;
        auto* p = static_cast<const int*>(s.checkout(gj, 4, access_mode::read));
        EXPECT_EQ(p[0], static_cast<int>(1000 + j));
        s.checkin(gj, 4, access_mode::read);
      }
    }
    s.barrier();
  });
}

TEST(Eviction, BadCacheGeometryRejectedAtConstruction) {
  // The construction route (not just from_env) validates the geometry, so a
  // programmatically built bad configuration fails fast with a clear error
  // instead of corrupting interval bookkeeping deep in the cache.
  auto o = remote_opts();
  o.block_size = 3000;  // not a power of two
  EXPECT_THROW(it::run_pgas(o, [&](int, ip::pgas_space&) {}), ic::error);
  auto o2 = remote_opts();
  o2.block_size = 1024;
  o2.sub_block_size = 4096;  // sub > block
  EXPECT_THROW(it::run_pgas(o2, [&](int, ip::pgas_space&) {}), ic::error);
}

TEST(Eviction, HomeBlockPinExhaustionThrows) {
  // All home-block mapping entries pinned by outstanding checkouts: the
  // next distinct home block must raise too-much-checkout (Section 4.3.2's
  // budget is a hard resource).
  auto o = it::tiny_opts(1, 1);
  o.max_map_entries = 40;  // -> home_mapped_limit floors at 64
  o.coll_heap_per_rank = 512 * ic::KiB;
  it::run_pgas(o, [&](int, ip::pgas_space& s) {
    const std::size_t limit = s.cache().home_mapped_limit();
    ASSERT_LT(limit, 128u);
    auto g = s.heap().coll_alloc((limit + 1) * 4096, ic::dist_policy::block);
    for (std::size_t j = 0; j < limit; j++) {
      s.checkout(g + j * 4096, 8, access_mode::read);
    }
    EXPECT_THROW(s.checkout(g + limit * 4096, 8, access_mode::read),
                 ic::too_much_checkout_error);
    // Unpin everything; the region becomes usable again.
    for (std::size_t j = 0; j < limit; j++) {
      s.checkin(g + j * 4096, 8, access_mode::read);
    }
    s.checkout(g + limit * 4096, 8, access_mode::read);
    s.checkin(g + limit * 4096, 8, access_mode::read);
  });
}
