/// Pins down the visit-accounting invariant of cache_system::stats: every
/// (checkout, block) pair increments block_visits and exactly one of
/// block_hits / block_misses / write_skips, so
///   block_hits + block_misses + write_skips == block_visits
/// holds at all times — including on the front-table fast path.

#include "itoyori/pgas/cache_system.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "../support/fixture.hpp"
#include "itoyori/apps/cilksort.hpp"
#include "itoyori/core/ityr.hpp"
#include "itoyori/core/runtime.hpp"

namespace ip = ityr::pgas;
namespace ic = ityr::common;
namespace it = ityr::test;

using ip::access_mode;

namespace {

void expect_invariant(const ip::cache_system::stats& st) {
  EXPECT_EQ(st.block_hits + st.block_misses + st.write_skips, st.block_visits);
}

struct delta {
  std::uint64_t visits, hits, misses, skips, fast;
};

delta diff(const ip::cache_system::stats& a, const ip::cache_system::stats& b) {
  return {b.block_visits - a.block_visits, b.block_hits - a.block_hits,
          b.block_misses - a.block_misses, b.write_skips - a.write_skips,
          b.fast_path_hits - a.fast_path_hits};
}

}  // namespace

TEST(CacheStats, EveryBlockVisitCountedOnce) {
  // 2 nodes x 1 rank: rank 1's blocks are genuinely remote to rank 0.
  it::run_pgas(it::tiny_opts(2, 1), [&](int r, ip::pgas_space& s) {
    const std::size_t bs = 4 * ic::KiB;
    // block_cyclic: even blocks home on rank 0, odd on rank 1.
    auto g = s.heap().coll_alloc(8 * bs, ic::dist_policy::block_cyclic);
    if (r == 1) {
      auto* p = static_cast<int*>(s.checkout(g + bs, bs, access_mode::write));
      for (std::size_t i = 0; i < bs / sizeof(int); i++) p[i] = static_cast<int>(3 * i);
      s.checkin(g + bs, bs, access_mode::write);
    }
    s.barrier();
    if (r == 0) {
      auto st0 = s.cache().get_stats();

      // Home-block write: one visit, one hit (home blocks never fetch).
      s.checkout(g, bs, access_mode::write);
      s.checkin(g, bs, access_mode::write);
      auto st1 = s.cache().get_stats();
      auto d = diff(st0, st1);
      EXPECT_EQ(d.visits, 1u);
      EXPECT_EQ(d.hits, 1u);
      EXPECT_EQ(d.misses, 0u);
      EXPECT_EQ(d.skips, 0u);

      // Cold remote read: one visit, one miss.
      auto* p = static_cast<const int*>(s.checkout(g + bs, bs, access_mode::read));
      EXPECT_EQ(p[5], 15);
      s.checkin(g + bs, bs, access_mode::read);
      auto st2 = s.cache().get_stats();
      d = diff(st1, st2);
      EXPECT_EQ(d.visits, 1u);
      EXPECT_EQ(d.hits, 0u);
      EXPECT_EQ(d.misses, 1u);

      // Warm remote read: one visit, one hit — via the front-table fast path
      // (the block is now fully valid and memoized).
      p = static_cast<const int*>(s.checkout(g + bs, bs, access_mode::read));
      EXPECT_EQ(p[7], 21);
      s.checkin(g + bs, bs, access_mode::read);
      auto st3 = s.cache().get_stats();
      d = diff(st2, st3);
      EXPECT_EQ(d.visits, 1u);
      EXPECT_EQ(d.hits, 1u);
      EXPECT_EQ(d.misses, 0u);
      EXPECT_EQ(d.fast, 1u);

      // Write-mode remote visit: the fetch is elided — a write skip, not a
      // hit and not a miss.
      s.checkout(g + 3 * bs, bs, access_mode::write);
      s.checkin(g + 3 * bs, bs, access_mode::write);
      auto st4 = s.cache().get_stats();
      d = diff(st3, st4);
      EXPECT_EQ(d.visits, 1u);
      EXPECT_EQ(d.hits, 0u);
      EXPECT_EQ(d.misses, 0u);
      EXPECT_EQ(d.skips, 1u);

      // Multi-block span (blocks 4..7): two home visits (hits), one cold
      // remote (miss), one cold remote in read mode (miss).
      s.checkout(g + 4 * bs, 4 * bs, access_mode::read);
      s.checkin(g + 4 * bs, 4 * bs, access_mode::read);
      auto st5 = s.cache().get_stats();
      d = diff(st4, st5);
      EXPECT_EQ(d.visits, 4u);
      EXPECT_EQ(d.hits, 2u);
      EXPECT_EQ(d.misses, 2u);
      EXPECT_EQ(d.skips, 0u);

      expect_invariant(st5);
    }
    s.barrier();
    expect_invariant(s.cache().get_stats());
  });
}

TEST(CacheStats, InvariantHoldsOverFullRuntimeRun) {
  // A real fork-join workload (steals, evictions, rollbacks, fences): the
  // aggregate accounting must still balance exactly.
  auto o = it::tiny_opts(2, 2);
  o.coll_heap_per_rank = 2 * ic::MiB;
  ityr::runtime rt(o);
  rt.spmd([] {
    const std::size_t n = 30000;
    auto a = ityr::coll_new<std::uint32_t>(n);
    auto b = ityr::coll_new<std::uint32_t>(n);
    ityr::root_exec([=] {
      ityr::apps::cilksort_generate(a, n, 11, 512);
      ityr::apps::cilksort(ityr::global_span<std::uint32_t>(a, n),
                           ityr::global_span<std::uint32_t>(b, n), 512);
    });
    ityr::coll_delete(a, n);
    ityr::coll_delete(b, n);
  });
  const auto st = rt.pgas().aggregate_stats();
  EXPECT_GT(st.block_visits, 0u);
  EXPECT_GT(st.fast_path_hits, 0u);
  expect_invariant(st);
}
