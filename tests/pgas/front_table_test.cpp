/// Regression tests for the front-table fast path: memoized entries must be
/// purged on eviction and on invalidate_all (acquire fences), hits must be
/// observable through stats.fast_path_hits, and disabling the table
/// (ITYR_FRONT_TABLE_SIZE=0) must change performance only, never results.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "../support/fixture.hpp"
#include "itoyori/pgas/cache_system.hpp"

namespace ip = ityr::pgas;
namespace ic = ityr::common;
namespace it = ityr::test;

using ip::access_mode;

namespace {

/// 2 nodes x 1 rank: every odd block (block_cyclic) is remote to rank 0.
ic::options front_opts(std::size_t front_table_size) {
  auto o = it::tiny_opts(2, 1);
  o.front_table_size = front_table_size;
  return o;
}

}  // namespace

TEST(FrontTable, FastPathHitsAreCounted) {
  it::run_pgas(front_opts(64), [&](int r, ip::pgas_space& s) {
    const std::size_t bs = 4 * ic::KiB;
    auto g = s.heap().coll_alloc(2 * bs, ic::dist_policy::block_cyclic);
    if (r == 1) {
      auto* p = static_cast<std::uint32_t*>(s.checkout(g + bs, bs, access_mode::write));
      for (std::size_t i = 0; i < bs / 4; i++) p[i] = static_cast<std::uint32_t>(i);
      s.checkin(g + bs, bs, access_mode::write);
    }
    s.barrier();
    if (r == 0) {
      EXPECT_GT(s.cache().front_table_entries(), 0u);
      // Cold full-block read: generic path, makes the block fully valid and
      // memoizes it.
      s.checkout(g + bs, bs, access_mode::read);
      s.checkin(g + bs, bs, access_mode::read);
      const auto before = s.cache().get_stats().fast_path_hits;
      for (int i = 0; i < 10; i++) {
        auto* p = static_cast<const std::uint32_t*>(
            s.checkout(g + bs + 64 * i, 64, access_mode::read));
        EXPECT_EQ(*p, static_cast<std::uint32_t>(16 * i));
        s.checkin(g + bs + 64 * i, 64, access_mode::read);
      }
      EXPECT_EQ(s.cache().get_stats().fast_path_hits, before + 10);
    }
    s.barrier();
  });
}

TEST(FrontTable, DisabledTableNeverHits) {
  it::run_pgas(front_opts(0), [&](int r, ip::pgas_space& s) {
    const std::size_t bs = 4 * ic::KiB;
    auto g = s.heap().coll_alloc(2 * bs, ic::dist_policy::block_cyclic);
    s.barrier();
    if (r == 0) {
      EXPECT_EQ(s.cache().front_table_entries(), 0u);
      s.checkout(g + bs, bs, access_mode::read);
      s.checkin(g + bs, bs, access_mode::read);
      for (int i = 0; i < 10; i++) {
        s.checkout(g + bs, 64, access_mode::read);
        s.checkin(g + bs, 64, access_mode::read);
      }
      EXPECT_EQ(s.cache().get_stats().fast_path_hits, 0u);
    }
    s.barrier();
  });
}

TEST(FrontTable, EvictionPurgesMemoizedBlock) {
  // The tiny cache holds 16 blocks. Memoize one remote block, sweep 31 other
  // remote blocks through the cache to force its eviction, then check the
  // block out again: the probe must NOT be served from the stale memo (the
  // mem_block was destroyed) — the re-checkout misses, refetches, and the
  // data is intact.
  it::run_pgas(front_opts(64), [&](int r, ip::pgas_space& s) {
    const std::size_t bs = 4 * ic::KiB;
    const std::size_t n_blocks = 64;  // 256 KiB, 32 of them remote to rank 0
    auto g = s.heap().coll_alloc(n_blocks * bs, ic::dist_policy::block_cyclic);
    if (r == 1) {
      for (std::size_t b = 1; b < n_blocks; b += 2) {
        auto* p = static_cast<std::uint32_t*>(s.checkout(g + b * bs, bs, access_mode::write));
        for (std::size_t i = 0; i < bs / 4; i++)
          p[i] = static_cast<std::uint32_t>(b * 1000 + i);
        s.checkin(g + b * bs, bs, access_mode::write);
      }
    }
    s.barrier();
    if (r == 0) {
      // Memoize remote block 1 (fully valid after a full-block read).
      s.checkout(g + bs, bs, access_mode::read);
      s.checkin(g + bs, bs, access_mode::read);
      const auto fast0 = s.cache().get_stats().fast_path_hits;
      const auto evict0 = s.cache().get_stats().cache_evictions;

      // Sweep every other remote block through the 16-slot cache.
      for (std::size_t b = 3; b < n_blocks; b += 2) {
        s.checkout(g + b * bs, bs, access_mode::read);
        s.checkin(g + b * bs, bs, access_mode::read);
      }
      EXPECT_GT(s.cache().get_stats().cache_evictions, evict0);

      // Re-checkout the memoized-then-evicted block: correct data, and the
      // visit was a genuine miss, not a (dangling) fast-path hit.
      const auto miss0 = s.cache().get_stats().block_misses;
      auto* p = static_cast<const std::uint32_t*>(s.checkout(g + bs, bs, access_mode::read));
      EXPECT_EQ(p[0], 1000u);
      EXPECT_EQ(p[123], 1123u);
      s.checkin(g + bs, bs, access_mode::read);
      EXPECT_EQ(s.cache().get_stats().fast_path_hits, fast0);
      EXPECT_EQ(s.cache().get_stats().block_misses, miss0 + 1);
    }
    s.barrier();
  });
}

TEST(FrontTable, InvalidateAllPurgesWholeTable) {
  // An acquire fence (barrier) wipes cache validity; a memoized fully-valid
  // block must not keep serving stale bytes through the fast path.
  it::run_pgas(front_opts(64), [&](int r, ip::pgas_space& s) {
    const std::size_t bs = 4 * ic::KiB;
    auto g = s.heap().coll_alloc(2 * bs, ic::dist_policy::block_cyclic);
    if (r == 1) {
      auto* p = static_cast<std::uint32_t*>(s.checkout(g + bs, bs, access_mode::write));
      for (std::size_t i = 0; i < bs / 4; i++) p[i] = 1;
      s.checkin(g + bs, bs, access_mode::write);
    }
    s.barrier();
    if (r == 0) {
      // Memoize the remote block with the old contents.
      auto* p = static_cast<const std::uint32_t*>(s.checkout(g + bs, bs, access_mode::read));
      EXPECT_EQ(p[10], 1u);
      s.checkin(g + bs, bs, access_mode::read);
    }
    s.barrier();
    if (r == 1) {
      auto* p = static_cast<std::uint32_t*>(s.checkout(g + bs, bs, access_mode::write));
      for (std::size_t i = 0; i < bs / 4; i++) p[i] = 2;
      s.checkin(g + bs, bs, access_mode::write);
    }
    s.barrier();  // rank 0's acquire must invalidate the memoized block
    if (r == 0) {
      auto* p = static_cast<const std::uint32_t*>(s.checkout(g + bs, bs, access_mode::read));
      EXPECT_EQ(p[10], 2u);
      EXPECT_EQ(p[1000], 2u);
      s.checkin(g + bs, bs, access_mode::read);
    }
    s.barrier();
  });
}

TEST(FrontTable, ResultsIdenticalWithAndWithoutTable) {
  // Differential run: the same access pattern with the front table on and
  // off must produce byte-identical results (the table is a pure memo).
  std::vector<std::uint32_t> results[2];
  const std::size_t table_sizes[2] = {64, 0};
  for (int cfg = 0; cfg < 2; cfg++) {
    it::run_pgas(front_opts(table_sizes[cfg]), [&](int r, ip::pgas_space& s) {
      const std::size_t bs = 4 * ic::KiB;
      const std::size_t n = 8 * bs / 4;
      auto g = s.heap().coll_alloc(8 * bs, ic::dist_policy::block_cyclic);
      if (r == 0) {
        auto* p = static_cast<std::uint32_t*>(s.checkout(g, 8 * bs, access_mode::write));
        for (std::size_t i = 0; i < n; i++) p[i] = static_cast<std::uint32_t>(7 * i + 1);
        s.checkin(g, 8 * bs, access_mode::write);
      }
      s.barrier();
      if (r == 1) {
        // Read-modify-write through mixed single-block checkouts.
        for (std::size_t b = 0; b < 8; b++) {
          auto* p = static_cast<std::uint32_t*>(
              s.checkout(g + b * bs, bs, access_mode::read_write));
          for (std::size_t i = 0; i < bs / 4; i++) p[i] += static_cast<std::uint32_t>(b);
          s.checkin(g + b * bs, bs, access_mode::read_write);
        }
      }
      s.barrier();
      if (r == 0) {
        auto* p = static_cast<const std::uint32_t*>(s.checkout(g, 8 * bs, access_mode::read));
        results[cfg].assign(p, p + n);
        s.checkin(g, 8 * bs, access_mode::read);
      }
      s.barrier();
    });
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0][0], 1u);
}
