// Adaptive sub-block prefetching (ITYR_PREFETCH): stream detection, the
// nonblocking fetch pipeline, useful/wasted byte accounting, mid-point LRU
// insertion, and the pinned-cache capacity error.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "../support/fixture.hpp"
#include "itoyori/common/lru_list.hpp"

namespace ip = ityr::pgas;
namespace ic = ityr::common;
namespace it = ityr::test;

using ip::access_mode;

namespace {

// 2 nodes x 1 rank: every cross-rank access is remote (cached). tiny_opts:
// 4 KiB blocks, 1 KiB sub-blocks, 16-block cache.
ic::options prefetch_opts(bool prefetch) {
  auto o = it::tiny_opts(2, 1);
  o.prefetch = prefetch;
  return o;
}

constexpr std::size_t kSub = 1024;          // = tiny_opts sub_block_size
constexpr std::size_t kBytes = 96 * 1024;   // 24 blocks, block dist -> 12 remote
constexpr std::size_t kHalf = kBytes / 2;   // second half homed on rank 1
constexpr std::size_t kChunks = kHalf / kSub;

struct scan_result {
  ip::cache_system::stats st;
  bool data_ok = true;
};

/// Rank 1 stamps the first word of each of its home sub-blocks, then rank 0
/// reads them one sub-block per checkout in the given order.
scan_result run_scan(const ic::options& o, const std::vector<std::size_t>& order) {
  scan_result res;
  it::run_pgas(o, [&](int r, ip::pgas_space& s) {
    auto g = s.heap().coll_alloc(kBytes, ic::dist_policy::block);
    if (r == 1) {
      for (std::size_t j = 0; j < kChunks; j++) {
        auto gj = g + kHalf + j * kSub;
        auto* p = static_cast<std::uint64_t*>(s.checkout(gj, 8, access_mode::write));
        p[0] = j;
        s.checkin(gj, 8, access_mode::write);
      }
    }
    s.barrier();
    if (r == 0) {
      for (const std::size_t j : order) {
        auto gj = g + kHalf + j * kSub;
        auto* p = static_cast<const std::uint64_t*>(s.checkout(gj, kSub, access_mode::read));
        if (p[0] != j) res.data_ok = false;
        s.checkin(gj, kSub, access_mode::read);
      }
      res.st = s.cache().get_stats();
    }
    s.barrier();
  });
  return res;
}

std::vector<std::size_t> seq_order() {
  std::vector<std::size_t> v;
  for (std::size_t j = 0; j < kChunks; j++) v.push_back(j);
  return v;
}

std::vector<std::size_t> shuffled_order() {
  auto v = seq_order();
  std::uint64_t s = 0x9e3779b97f4a7c15ull;  // fixed-seed xorshift Fisher-Yates
  for (std::size_t i = v.size() - 1; i > 0; i--) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    std::swap(v[i], v[s % (i + 1)]);
  }
  return v;
}

}  // namespace

TEST(Prefetch, SequentialScanPrefetchesWithCorrectData) {
  const scan_result r = run_scan(prefetch_opts(true), seq_order());
  EXPECT_TRUE(r.data_ok) << "prefetched data must equal demand-fetched data";
  EXPECT_GT(r.st.prefetch_issued, 0u);
  EXPECT_GT(r.st.prefetch_issued_bytes, 0u);
  // A pure sequential scan consumes nearly everything it prefetches (the
  // stream dies cleanly at the end of the allocation).
  EXPECT_GE(static_cast<double>(r.st.prefetch_useful_bytes),
            0.8 * static_cast<double>(r.st.prefetch_issued_bytes));
  // Byte accounting never invents bytes.
  EXPECT_LE(r.st.prefetch_useful_bytes + r.st.prefetch_wasted_bytes,
            r.st.prefetch_issued_bytes);
}

TEST(Prefetch, SequentialScanReducesFetchStall) {
  const scan_result off = run_scan(prefetch_opts(false), seq_order());
  const scan_result on = run_scan(prefetch_opts(true), seq_order());
  EXPECT_TRUE(off.data_ok);
  EXPECT_TRUE(on.data_ok);
  EXPECT_EQ(off.st.prefetch_issued, 0u);
  EXPECT_GT(off.st.fetch_stall_s, 0.0);
  // The acceptance bar: >= 30% less virtual time stalled on fetches.
  EXPECT_LT(on.st.fetch_stall_s, 0.7 * off.st.fetch_stall_s)
      << "off=" << off.st.fetch_stall_s << "s on=" << on.st.fetch_stall_s << "s";
  // Same demand work either way.
  EXPECT_EQ(on.st.checkouts, off.st.checkouts);
}

TEST(Prefetch, RandomScanDoesNotRegressStall) {
  // Accidental stream confirmations on a shuffled scan must not make the
  // demand path wait longer than plain stop-and-wait fetching (the <=2%
  // regression budget from the ablation).
  const scan_result off = run_scan(prefetch_opts(false), shuffled_order());
  const scan_result on = run_scan(prefetch_opts(true), shuffled_order());
  EXPECT_TRUE(off.data_ok);
  EXPECT_TRUE(on.data_ok);
  EXPECT_LE(on.st.fetch_stall_s, 1.02 * off.st.fetch_stall_s)
      << "off=" << off.st.fetch_stall_s << "s on=" << on.st.fetch_stall_s << "s";
  EXPECT_LE(on.st.prefetch_useful_bytes + on.st.prefetch_wasted_bytes,
            on.st.prefetch_issued_bytes);
}

TEST(Prefetch, ZeroDepthOrZeroBudgetDisables) {
  auto o = prefetch_opts(true);
  o.prefetch_depth = 0;
  EXPECT_EQ(run_scan(o, seq_order()).st.prefetch_issued, 0u);
  o = prefetch_opts(true);
  o.prefetch_max_inflight = 0;
  EXPECT_EQ(run_scan(o, seq_order()).st.prefetch_issued, 0u);
}

TEST(Prefetch, OffPathTouchesNoPrefetchCounters) {
  const scan_result r = run_scan(prefetch_opts(false), seq_order());
  EXPECT_TRUE(r.data_ok);
  EXPECT_EQ(r.st.prefetch_issued, 0u);
  EXPECT_EQ(r.st.prefetch_issued_bytes, 0u);
  EXPECT_EQ(r.st.prefetch_useful_bytes, 0u);
  EXPECT_EQ(r.st.prefetch_wasted_bytes, 0u);
  EXPECT_EQ(r.st.prefetch_late, 0u);
}

TEST(Prefetch, StridedScanAccountsWastedBytes) {
  // Stride-2 over sub-blocks: a confirmed stream prefetches the skipped
  // sub-blocks too; those unread bytes must surface as wasted, not vanish.
  std::vector<std::size_t> order;
  for (std::size_t j = 0; j < kChunks; j += 2) order.push_back(j);
  const scan_result r = run_scan(prefetch_opts(true), order);
  EXPECT_TRUE(r.data_ok);
  if (r.st.prefetch_issued_bytes > 0) {
    EXPECT_GT(r.st.prefetch_wasted_bytes + r.st.prefetch_useful_bytes, 0u);
    EXPECT_LE(r.st.prefetch_useful_bytes + r.st.prefetch_wasted_bytes,
              r.st.prefetch_issued_bytes);
  }
}

TEST(Prefetch, PinnedCacheExhaustionThrowsCommonError) {
  // All cache blocks pinned by outstanding checkouts: the next distinct
  // remote block must raise a clear ityr::common::error rather than loop or
  // corrupt the LRU list.
  it::run_pgas(it::tiny_opts(2, 1), [&](int r, ip::pgas_space& s) {
    const std::size_t n_blocks = 40;
    auto g = s.heap().coll_alloc(2 * n_blocks * 4096, ic::dist_policy::block_cyclic);
    s.barrier();
    if (r == 0) {
      const std::size_t n_cache = s.cache().n_cache_blocks();
      for (std::size_t j = 0; j < n_cache; j++) {
        s.checkout(g + (2 * j + 1) * 4096, 4096, access_mode::read);
      }
      auto extra = g + (2 * n_cache + 1) * 4096;
      EXPECT_THROW(s.checkout(extra, 8, access_mode::read), ic::error);
      try {
        s.checkout(extra, 8, access_mode::read);
        FAIL() << "expected too-much-checkout";
      } catch (const ic::error& e) {
        EXPECT_NE(std::string(e.what()).find("pinned"), std::string::npos) << e.what();
      }
      // Unpinning makes the cache usable again.
      for (std::size_t j = 0; j < n_cache; j++) {
        s.checkin(g + (2 * j + 1) * 4096, 4096, access_mode::read);
      }
      s.checkout(extra, 8, access_mode::read);
      s.checkin(extra, 8, access_mode::read);
    }
    s.barrier();
  });
}

namespace {
struct lru_node : ic::lru_hook {
  int id = 0;
};
}  // namespace

TEST(Prefetch, LruInsertMiddle) {
  ic::lru_list l;
  lru_node n[6];
  for (int i = 0; i < 6; i++) n[i].id = i;

  // Empty list: mid-point insertion degenerates to push_back.
  l.insert_middle(n[0]);
  EXPECT_EQ(l.size(), 1u);
  EXPECT_EQ(static_cast<lru_node*>(l.lru())->id, 0);
  l.erase(n[0]);

  for (int i = 0; i < 4; i++) l.push_back(n[i]);  // LRU order: 0 1 2 3
  l.insert_middle(n[4]);                          // -> 0 1 4 2 3
  std::vector<int> order;
  l.find_from_lru([&](ic::lru_hook& h) {
    order.push_back(static_cast<lru_node&>(h).id);
    return false;
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 4, 2, 3}));
  // A mid-point resident is evicted before the demand-MRU tail.
  EXPECT_EQ(static_cast<lru_node*>(l.lru())->id, 0);
}
