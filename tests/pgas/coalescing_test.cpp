/// Cross-block RMA coalescing: a multi-block checkout whose home blocks are
/// pool-contiguous on one rank must ride fewer messages with
/// ITYR_COALESCE_RMA on, with byte-identical results. Also covers the
/// writeback side (dirty runs batched at a release fence).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "../support/fixture.hpp"
#include "itoyori/pgas/cache_system.hpp"
#include "itoyori/rma/window.hpp"
#include "itoyori/sim/engine.hpp"

namespace ip = ityr::pgas;
namespace ic = ityr::common;
namespace it = ityr::test;

using ip::access_mode;

namespace {

struct run_result {
  std::vector<std::uint32_t> data;
  std::uint64_t messages = 0;
  std::uint64_t coalesced = 0;
};

/// Like test::run_pgas, but keeps the RMA context visible so the network
/// message counter can be read back.
run_result run_span_workload(bool coalesce) {
  auto o = it::tiny_opts(2, 1);
  o.coalesce_rma = coalesce;
  ityr::sim::engine eng(o);
  ityr::rma::context rma(eng);
  ip::pgas_space space(eng, rma);

  run_result res;
  const std::size_t bs = 4 * ic::KiB;
  const std::size_t n_blocks = 8;  // dist_policy::block: 4 contiguous per rank
  eng.run([&](int r) {
    auto& s = space;
    auto g = s.heap().coll_alloc(n_blocks * bs, ic::dist_policy::block);
    if (r == 1) {
      // Initialize the remote half (blocks 4..7, pool-contiguous on rank 1).
      auto* p = static_cast<std::uint32_t*>(
          s.checkout(g + 4 * bs, 4 * bs, access_mode::write));
      for (std::size_t i = 0; i < 4 * bs / 4; i++) p[i] = static_cast<std::uint32_t>(i ^ 0x5a);
      s.checkin(g + 4 * bs, 4 * bs, access_mode::write);
    }
    s.barrier();
    if (r == 0) {
      // One cold 4-block checkout: with coalescing this is a single get
      // spanning all four blocks; without, at least one get per block.
      auto* p = static_cast<const std::uint32_t*>(
          s.checkout(g + 4 * bs, 4 * bs, access_mode::read));
      res.data.assign(p, p + 4 * bs / 4);
      s.checkin(g + 4 * bs, 4 * bs, access_mode::read);

      // Dirty the same remote span, then release: the writeback runs must
      // batch the same way.
      auto* w = static_cast<std::uint32_t*>(
          s.checkout(g + 4 * bs, 4 * bs, access_mode::read_write));
      for (std::size_t i = 0; i < 4 * bs / 4; i++) w[i] += 1;
      s.checkin(g + 4 * bs, 4 * bs, access_mode::read_write);
      s.release();
    }
    s.barrier();
  });
  res.messages = rma.net().total_messages();
  res.coalesced = space.aggregate_stats().coalesced_messages;
  return res;
}

}  // namespace

TEST(Coalescing, MultiBlockSpanFewerMessagesSameData) {
  const auto on = run_span_workload(true);
  const auto off = run_span_workload(false);

  // Same bytes observed either way.
  ASSERT_EQ(on.data.size(), off.data.size());
  EXPECT_EQ(on.data, off.data);
  EXPECT_EQ(on.data[3], 3u ^ 0x5au);

  // Coalescing must actually save messages, and account for the savings.
  EXPECT_LT(on.messages, off.messages);
  EXPECT_GT(on.coalesced, 0u);
  EXPECT_EQ(off.coalesced, 0u);
  // The fetch of 4 contiguous blocks plus the writeback of 4 dirty runs save
  // at least 3 messages each.
  EXPECT_GE(off.messages - on.messages, 6u);
}
