#include <gtest/gtest.h>

#include <cstring>

#include "itoyori/vm/physical_pool.hpp"
#include "itoyori/vm/view_region.hpp"

namespace iv = ityr::vm;

namespace {
constexpr std::size_t kBlk = 64 * 1024;
}

TEST(PhysicalPool, AllocatesAndZeroes) {
  iv::physical_pool pool(kBlk, 4, "test-pool");
  EXPECT_EQ(pool.bytes(), 4 * kBlk);
  // memfd pages start zeroed.
  for (std::size_t i = 0; i < 4; i++) {
    EXPECT_EQ(*pool.block_ptr(i), std::byte{0});
  }
  std::memset(pool.block_ptr(2), 0xab, kBlk);
  EXPECT_EQ(*pool.at(2 * kBlk + 100), std::byte{0xab});
}

TEST(ViewRegion, MapExposesPoolPages) {
  iv::physical_pool pool(kBlk, 4, "test-pool");
  iv::view_region view(16 * kBlk);

  std::memset(pool.block_ptr(1), 0x5c, kBlk);
  view.map(3 * kBlk, pool, 1 * kBlk, kBlk);
  EXPECT_TRUE(view.is_mapped(3 * kBlk, kBlk));
  EXPECT_EQ(*view.at(3 * kBlk), std::byte{0x5c});

  // Writes through the view hit the same physical pages.
  *view.at(3 * kBlk + 7) = std::byte{0x11};
  EXPECT_EQ(*pool.at(1 * kBlk + 7), std::byte{0x11});
}

TEST(ViewRegion, SameBlockMappableAtTwoViews) {
  // The same physical cache block can be remapped elsewhere later; also two
  // view offsets may alias one block transiently.
  iv::physical_pool pool(kBlk, 1, "test-pool");
  iv::view_region view(8 * kBlk);
  view.map(0, pool, 0, kBlk);
  view.map(5 * kBlk, pool, 0, kBlk);
  *view.at(10) = std::byte{0x77};
  EXPECT_EQ(*view.at(5 * kBlk + 10), std::byte{0x77});
}

TEST(ViewRegion, UnmapPreservesReservationAndPhysicalData) {
  iv::physical_pool pool(kBlk, 2, "test-pool");
  iv::view_region view(8 * kBlk);
  view.map(2 * kBlk, pool, 0, kBlk);
  *view.at(2 * kBlk) = std::byte{0x42};
  view.unmap(2 * kBlk, kBlk);
  EXPECT_FALSE(view.is_mapped(2 * kBlk, kBlk));
  // Physical data survives unmapping of the view.
  EXPECT_EQ(*pool.at(0), std::byte{0x42});
  // Remap somewhere else: data still there.
  view.map(4 * kBlk, pool, 0, kBlk);
  EXPECT_EQ(*view.at(4 * kBlk), std::byte{0x42});
}

TEST(ViewRegion, LedgerTracksRunsAndEntries) {
  iv::physical_pool pool(kBlk, 8, "test-pool");
  iv::view_region view(32 * kBlk);
  EXPECT_EQ(view.mapped_runs(), 0u);
  EXPECT_EQ(view.map_entry_estimate(), 1u);

  view.map(0, pool, 0, kBlk);
  view.map(2 * kBlk, pool, 2 * kBlk, kBlk);  // gap at block 1 -> 2 runs
  EXPECT_EQ(view.mapped_runs(), 2u);
  EXPECT_EQ(view.map_entry_estimate(), 5u);  // 2N+1 worst case

  view.map(1 * kBlk, pool, 1 * kBlk, kBlk);  // fills the gap -> coalesced
  EXPECT_EQ(view.mapped_runs(), 1u);
  EXPECT_EQ(view.map_entry_estimate(), 3u);
  EXPECT_EQ(view.mapped_bytes(), 3 * kBlk);

  view.unmap(1 * kBlk, kBlk);
  EXPECT_EQ(view.mapped_runs(), 2u);
  EXPECT_EQ(view.map_calls(), 4u);
}

TEST(ViewRegion, RemapReplacesPreviousMapping) {
  iv::physical_pool pool(kBlk, 2, "test-pool");
  iv::view_region view(4 * kBlk);
  std::memset(pool.block_ptr(0), 0x01, kBlk);
  std::memset(pool.block_ptr(1), 0x02, kBlk);
  view.map(0, pool, 0, kBlk);
  EXPECT_EQ(*view.at(0), std::byte{0x01});
  view.map(0, pool, kBlk, kBlk);
  EXPECT_EQ(*view.at(0), std::byte{0x02});
  EXPECT_EQ(view.mapped_runs(), 1u);
}
