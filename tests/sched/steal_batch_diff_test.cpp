// Differential tests for the PR-9 steal-path knobs (victim policy, steal-half
// batching, adaptive backoff). The contract is two-sided:
//
//  * OFF-PATH: with every knob at its default the run must be bit-identical
//    to a run that sets those defaults explicitly, and knobs that are only
//    read on their own policy path (escalation rounds, node-first
//    probability) must be inert under the default random policy. "Bit
//    identical" is checked on per-rank virtual clocks (deterministic resume
//    cost makes them exact), scheduler counters, and the final heap state —
//    identical RNG consumption is the only way all three line up.
//
//  * ON-PATH: hierarchical + batch + backoff may reshuffle the steal
//    schedule arbitrarily but must still produce the sequential oracle's
//    heap state (DAG consistency is schedule-independent).
//
// The steal schedule is varied via the engine seed across 10 runs.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "../support/fixture.hpp"
#include "itoyori/common/rng.hpp"
#include "itoyori/common/topology.hpp"
#include "itoyori/core/ityr.hpp"

namespace {

// Random fork-join plan (same shape as release_diff_test): leaves mutate
// slices, internal nodes fork halves in parallel and then run a follow-up
// leaf over the whole range so parents read children's writes.
struct plan_node {
  bool leaf = false;
  std::size_t lo = 0, hi = 0;
  std::uint32_t salt = 0;
  int left = -1, right = -1;
  int next = -1;
};

struct plan {
  std::vector<plan_node> nodes;
  int root = -1;
  std::size_t array_size = 0;
};

int build_plan(plan& p, ityr::common::xoshiro256ss& rng, std::size_t lo, std::size_t hi,
               int depth) {
  const int id = static_cast<int>(p.nodes.size());
  p.nodes.push_back({});
  if (depth == 0 || hi - lo < 8) {
    p.nodes[id] = {true, lo, hi, static_cast<std::uint32_t>(rng()), -1, -1, -1};
    return id;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  const int l = build_plan(p, rng, lo, mid, depth - 1);
  const int r = build_plan(p, rng, mid, hi, depth - 1);
  const int f = static_cast<int>(p.nodes.size());
  p.nodes.push_back({true, lo, hi, static_cast<std::uint32_t>(rng()), -1, -1, -1});
  p.nodes[id] = {false, lo, hi, 0, l, r, f};
  return id;
}

constexpr std::uint32_t mutate(std::uint32_t x, std::uint32_t salt, std::uint32_t idx) {
  return x * 1664525u + salt + idx * 1013904223u;
}

void run_serial(const plan& p, int id, std::vector<std::uint32_t>& a) {
  const plan_node& n = p.nodes[static_cast<std::size_t>(id)];
  if (n.leaf) {
    for (std::size_t i = n.lo; i < n.hi; i++) {
      a[i] = mutate(a[i], n.salt, static_cast<std::uint32_t>(i));
    }
    return;
  }
  run_serial(p, n.left, a);
  run_serial(p, n.right, a);
  run_serial(p, n.next, a);
}

void run_parallel(const plan* p, int id, ityr::global_ptr<std::uint32_t> a) {
  const plan_node& n = p->nodes[static_cast<std::size_t>(id)];
  if (n.leaf) {
    ityr::with_checkout(a + static_cast<std::ptrdiff_t>(n.lo), n.hi - n.lo,
                        ityr::access_mode::read_write, [&](std::uint32_t* ptr) {
                          for (std::size_t i = 0; i < n.hi - n.lo; i++) {
                            ptr[i] = mutate(ptr[i], n.salt,
                                            static_cast<std::uint32_t>(n.lo + i));
                          }
                        });
    return;
  }
  const int l = n.left, r = n.right, f = n.next;
  ityr::parallel_invoke([p, l, a] { run_parallel(p, l, a); },
                        [p, r, a] { run_parallel(p, r, a); });
  run_parallel(p, f, a);
}

/// Everything a steal-schedule change would perturb: per-rank virtual
/// clocks (exact under deterministic resume costs), the scheduler's
/// counters, and the final heap contents.
struct fingerprint {
  std::vector<double> clocks;
  std::vector<std::uint32_t> final_state;
  ityr::sched::scheduler::stats st;
};

fingerprint run_fp(const plan& p, unsigned seed, int nodes, int rpn,
                   const std::function<void(ityr::common::options&)>& tweak) {
  fingerprint fp;
  auto o = ityr::test::tiny_opts(nodes, rpn);
  o.seed = seed;  // varies victim selection -> varies the steal schedule
  tweak(o);
  ityr::runtime rt(o);
  fp.clocks.assign(static_cast<std::size_t>(nodes * rpn), 0.0);
  rt.spmd([&] {
    auto a = ityr::coll_new<std::uint32_t>(p.array_size);
    const plan* pp = &p;
    ityr::root_exec([pp, a] {
      ityr::parallel_fill(a, pp->array_size, 64, std::uint32_t{0});
      run_parallel(pp, pp->root, a);
    });
    if (ityr::my_rank() == 0) {
      fp.final_state.resize(p.array_size);
      ityr::with_checkout(a, p.array_size, ityr::access_mode::read,
                          [&](const std::uint32_t* got) {
                            for (std::size_t i = 0; i < p.array_size; i++) {
                              fp.final_state[i] = got[i];
                            }
                          });
    }
    ityr::barrier();
    fp.clocks[static_cast<std::size_t>(ityr::my_rank())] = rt.eng().now();
    ityr::coll_delete(a, p.array_size);
  });
  fp.st = rt.sched().get_stats();
  return fp;
}

void expect_bit_identical(const fingerprint& a, const fingerprint& b) {
  ASSERT_EQ(a.clocks.size(), b.clocks.size());
  for (std::size_t r = 0; r < a.clocks.size(); r++) {
    // Exact double equality on purpose: any divergence in RNG consumption or
    // advance() sequencing shows up here first.
    EXPECT_EQ(a.clocks[r], b.clocks[r]) << "rank " << r << " clock diverged";
  }
  EXPECT_EQ(a.st.forks, b.st.forks);
  EXPECT_EQ(a.st.steal_attempts, b.st.steal_attempts);
  EXPECT_EQ(a.st.steals, b.st.steals);
  EXPECT_EQ(a.st.intra_node_steals, b.st.intra_node_steals);
  EXPECT_EQ(a.st.local_pops, b.st.local_pops);
  EXPECT_EQ(a.st.migrations, b.st.migrations);
  EXPECT_EQ(a.st.migrated_stack_bytes, b.st.migrated_stack_bytes);
  EXPECT_EQ(a.final_state, b.final_state);
}

class StealKnobDifferential : public ::testing::TestWithParam<unsigned> {
 protected:
  plan make_plan(unsigned seed) {
    ityr::common::xoshiro256ss rng(seed);
    plan p;
    p.array_size = 8 * 1024 + rng.below(8 * 1024);
    p.root = build_plan(p, rng, 0, p.array_size, 6);
    return p;
  }
};

TEST_P(StealKnobDifferential, DefaultsMatchExplicitKnobDefaults) {
  const unsigned seed = GetParam();
  const plan p = make_plan(seed);
  const fingerprint implicit = run_fp(p, seed, 2, 2, [](ityr::common::options&) {});
  const fingerprint explicit_defaults = run_fp(p, seed, 2, 2, [](ityr::common::options& o) {
    o.steal = ityr::common::steal_policy::random;
    o.steal_batch = 1;
    o.steal_adaptive_backoff = false;
    o.steal_escalation_rounds = ityr::common::options{}.steal_escalation_rounds;
  });
  expect_bit_identical(implicit, explicit_defaults);
}

TEST_P(StealKnobDifferential, OffPathKnobsAreInert) {
  const unsigned seed = GetParam();
  const plan p = make_plan(seed);
  const fingerprint defaults = run_fp(p, seed, 2, 2, [](ityr::common::options&) {});
  // Escalation rounds and the node-first probability are only read on the
  // hierarchical / node_first paths: under the default random policy a wild
  // setting must not shift a single probe or clock tick.
  const fingerprint tweaked = run_fp(p, seed, 2, 2, [](ityr::common::options& o) {
    o.steal_escalation_rounds = 7;
    o.node_first_prob = 0.25;
  });
  expect_bit_identical(defaults, tweaked);
}

TEST_P(StealKnobDifferential, OnPathMatchesSerialOracle) {
  const unsigned seed = GetParam();
  const plan p = make_plan(seed);
  std::vector<std::uint32_t> oracle(p.array_size, 0);
  run_serial(p, p.root, oracle);

  // Full treatment on a 4-node fat tree (two distance classes above the
  // node): the schedule changes, the answer must not.
  const fingerprint treated = run_fp(p, seed, 4, 2, [](ityr::common::options& o) {
    o.topology = ityr::common::topology_spec::parse("fat_tree:2,2");
    o.steal = ityr::common::steal_policy::hierarchical;
    o.steal_batch = 3;
    o.steal_adaptive_backoff = true;
  });
  EXPECT_GT(treated.st.steals, 0u);
  ASSERT_EQ(treated.final_state.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); i++) {
    ASSERT_EQ(treated.final_state[i], oracle[i]) << "treated run diverged at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSchedules, StealKnobDifferential,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 7u, 11u, 13u, 23u, 42u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
