// Tests for the online critical-path profiler (ITYR_CRITPATH): the serial
// oracle (span == work on a 1-rank chain, across many randomized shapes),
// the bucket decomposition invariants, the per-distance-class stall split,
// the what-if projection's topology sensitivity, and — most load-bearing —
// that enabling the profiler never perturbs the simulated execution
// (bit-identical virtual clocks with it on vs off).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "../support/fixture.hpp"
#include "itoyori/apps/cilksort.hpp"
#include "itoyori/common/rng.hpp"
#include "itoyori/common/topology.hpp"
#include "itoyori/core/ityr.hpp"
#include "itoyori/core/metrics.hpp"
#include "itoyori/core/runtime.hpp"

namespace {

// ---------------------------------------------------------------------------
// Serial oracle: on one rank a fork-join chain has no parallelism, so the
// recorded span must equal the recorded work (Cilkview's sanity identity).
// ---------------------------------------------------------------------------

// One chain link: fork a leaf that mutates a slice, with an empty inline
// continuation. The continuation segment between the fork and the join is
// exactly empty in deterministic mode, so no path time can hide in it.
void chain_link(ityr::global_ptr<std::uint32_t> a, std::size_t lo, std::size_t hi,
                std::uint32_t salt) {
  ityr::parallel_invoke(
      [=] {
        ityr::with_checkout(a + static_cast<std::ptrdiff_t>(lo), hi - lo,
                            ityr::access_mode::read_write, [&](std::uint32_t* p) {
                              for (std::size_t i = 0; i < hi - lo; i++) {
                                p[i] = p[i] * 1664525u + salt;
                              }
                            });
      },
      [] {});
}

class CritpathSerialOracle : public ::testing::TestWithParam<unsigned> {};

TEST_P(CritpathSerialOracle, SpanEqualsWorkOnOneRank) {
  const unsigned seed = GetParam();
  ityr::common::xoshiro256ss rng(seed);
  const std::size_t n = 2048 + rng.below(8192);
  const int links = 4 + static_cast<int>(rng.below(12));

  auto o = ityr::test::tiny_opts(/*nodes=*/1, /*rpn=*/1);
  o.critpath = true;
  o.seed = seed;
  ityr::runtime rt(o);
  rt.spmd([&] {
    auto a = ityr::coll_new<std::uint32_t>(n);
    std::vector<std::pair<std::size_t, std::size_t>> slices;
    for (int i = 0; i < links; i++) {
      const std::size_t lo = rng.below(n - 1);
      const std::size_t hi = std::min(n, lo + 1 + rng.below(2048));
      slices.emplace_back(lo, hi);
    }
    const auto* sl = &slices;
    ityr::root_exec([=] {
      std::uint32_t salt = seed;
      for (const auto& s : *sl) chain_link(a, s.first, s.second, salt++);
    });
    ityr::barrier();
    ityr::coll_delete(a, n);
  });

  const double work = rt.sched().cp_work();
  const ityr::sched::cp_path& span = rt.sched().cp_span();
  ASSERT_GT(work, 0.0) << "chain accrued no virtual time; the oracle is vacuous";

  // The chain is sequential: every strand segment lies on the critical path.
  EXPECT_NEAR(span.total(), work, 1.0e-9 * work)
      << "span diverged from work on a serial chain";

  // No steals can occur on one rank, and the decomposition must be airtight.
  EXPECT_EQ(span.b[static_cast<int>(ityr::sched::cp_bucket::steal_wait)], 0.0);
  double bsum = 0;
  for (int b = 0; b < ityr::sched::n_cp_buckets; b++) bsum += span.b[b];
  EXPECT_NEAR(bsum, span.total(), 1.0e-9 * work);

  const auto m = rt.metrics();
  EXPECT_NEAR(m.total("critpath.parallelism"), 1.0, 1.0e-6);
  // All memory is home-owned: the what-if projector has nothing to remove.
  EXPECT_NEAR(m.total("critpath.whatif.network_free_speedup"), 1.0, 1.0e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomChains, CritpathSerialOracle,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 7u, 11u, 13u, 23u, 42u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Parallel runs: bucket/attribution invariants on a real workload.
// ---------------------------------------------------------------------------

ityr::metrics_snapshot run_cilksort(ityr::common::options o, std::size_t n,
                                    std::size_t cutoff) {
  ityr::runtime rt(o);
  bool sorted = false;
  rt.spmd([&] {
    auto a = ityr::coll_new<std::uint32_t>(n);
    auto b = ityr::coll_new<std::uint32_t>(n);
    ityr::root_exec([=] { ityr::apps::cilksort_generate(a, n, 7, 4096); });
    ityr::barrier();
    ityr::root_exec([=] {
      ityr::apps::cilksort(ityr::global_span<std::uint32_t>(a, n),
                           ityr::global_span<std::uint32_t>(b, n), cutoff);
    });
    ityr::barrier();
    sorted = ityr::root_exec([=] { return ityr::apps::cilksort_validate(a, n, 7, 4096); });
    ityr::coll_delete(a, n);
    ityr::coll_delete(b, n);
  });
  EXPECT_TRUE(sorted);
  return rt.metrics();
}

TEST(Critpath, BucketsSumToSpanAndParallelismExceedsOne) {
  auto o = ityr::test::tiny_opts(2, 2);
  o.critpath = true;
  const auto m = run_cilksort(o, 1 << 15, 2048);

  const double work = m.total("critpath.work_s");
  const double span = m.total("critpath.span_s");
  ASSERT_GT(span, 0.0);
  EXPECT_GT(work, span) << "4 ranks sorting 32K keys must show some parallelism";
  EXPECT_GT(m.total("critpath.parallelism"), 1.0);

  // The five buckets are a partition of the span.
  double bsum = 0;
  for (const char* b : {"compute", "fetch_stall", "release_stall", "steal_wait",
                        "acquire_fence"}) {
    bsum += m.total(std::string("critpath.span.") + b + "_s");
  }
  EXPECT_NEAR(bsum, span, 1.0e-9 * span + 1.0e-12);

  // The per-class network shares are contained within the span, and the
  // what-if projection can only help (speedup >= 1, projected span <= span).
  double net = 0;
  for (int c = 0; c < 8; c++) {
    net += m.total("critpath.net.class" + std::to_string(c) + "_s");
  }
  EXPECT_LE(net, span * (1 + 1.0e-9));
  const double net_free = m.total("critpath.whatif.network_free_span_s");
  EXPECT_LE(net_free, span * (1 + 1.0e-9));
  EXPECT_GE(m.total("critpath.whatif.network_free_speedup"), 1.0);

  // Histograms rode along: tasks executed, fences ran, steals happened.
  const ityr::metric_histogram* th = m.find_histogram("hist.task_exec_s");
  ASSERT_NE(th, nullptr);
  EXPECT_GT(th->hist.count(), 0u);
  const ityr::metric_histogram* fh = m.find_histogram("hist.fence_s");
  ASSERT_NE(fh, nullptr);
  EXPECT_GT(fh->hist.count(), 0u);
  // Percentiles are ordered.
  EXPECT_LE(th->hist.percentile(50), th->hist.percentile(90));
  EXPECT_LE(th->hist.percentile(90), th->hist.percentile(99));
}

TEST(Critpath, StallClassSplitSumsToTotals) {
  auto o = ityr::test::tiny_opts(2, 2);
  o.critpath = true;
  const auto m = run_cilksort(o, 1 << 15, 2048);

  const auto* fetch = m.find("cache.fetch_stall_s");
  const auto* release = m.find("cache.release_stall_s");
  ASSERT_NE(fetch, nullptr);
  ASSERT_NE(release, nullptr);
  for (int r = 0; r < 4; r++) {
    double fsum = 0, rsum = 0;
    for (int c = 0; c < 8; c++) {
      fsum += m.of("cache.fetch_stall.class" + std::to_string(c) + "_s", r);
      rsum += m.of("cache.release_stall.class" + std::to_string(c) + "_s", r);
    }
    EXPECT_NEAR(fsum, fetch->of(r), 1.0e-9 * (fetch->of(r) + 1.0)) << "rank " << r;
    EXPECT_NEAR(rsum, release->of(r), 1.0e-9 * (release->of(r) + 1.0)) << "rank " << r;
  }
}

// ---------------------------------------------------------------------------
// Default-off discipline: the profiler observes, never perturbs.
// ---------------------------------------------------------------------------

TEST(Critpath, DisabledByDefaultAndBitIdenticalWhenEnabled) {
  auto off = ityr::test::tiny_opts(2, 2);
  EXPECT_FALSE(off.critpath);  // strictly additive: off unless asked for
  auto on = off;
  on.critpath = true;

  const auto m_off = run_cilksort(off, 1 << 15, 2048);
  const auto m_on = run_cilksort(on, 1 << 15, 2048);

  // critpath.* series exist only when enabled.
  EXPECT_EQ(m_off.find("critpath.span_s"), nullptr);
  ASSERT_NE(m_on.find("critpath.span_s"), nullptr);

  // The simulated execution must be EXACTLY the same run: virtual clocks,
  // steal schedule, and network traffic all bit-identical.
  for (const char* name : {"engine.clock_s", "engine.resumes", "sched.forks",
                           "sched.steals", "sched.steal_attempts", "net.messages.inter",
                           "net.bytes.inter", "cache.fetched_bytes",
                           "cache.fetch_stall_s", "cache.release_stall_s"}) {
    const auto* a = m_off.find(name);
    const auto* b = m_on.find(name);
    ASSERT_NE(a, nullptr) << name;
    ASSERT_NE(b, nullptr) << name;
    for (int r = 0; r < 4; r++) {
      EXPECT_EQ(a->of(r), b->of(r)) << name << " diverged on rank " << r;
    }
  }
}

// ---------------------------------------------------------------------------
// What-if projection: the per-class attribution must resolve topologies.
// ---------------------------------------------------------------------------

TEST(Critpath, WhatIfProjectionDistinguishesTopologies) {
  auto flat = ityr::test::tiny_opts(4, 2);
  flat.critpath = true;
  flat.topology = ityr::common::topology_spec::parse("flat");
  auto fat = ityr::test::tiny_opts(4, 2);
  fat.critpath = true;
  fat.topology = ityr::common::topology_spec::parse("fat_tree:2,2");

  const auto m_flat = run_cilksort(flat, 1 << 14, 1024);
  const auto m_fat = run_cilksort(fat, 1 << 14, 1024);

  const double span_flat = m_flat.total("critpath.span_s");
  const double span_fat = m_fat.total("critpath.span_s");
  ASSERT_GT(span_flat, 0.0);
  ASSERT_GT(span_fat, 0.0);
  // Different interconnects price the same workload's critical path
  // differently, and the what-if projector reports distinct headrooms.
  EXPECT_NE(span_flat, span_fat);
  EXPECT_NE(m_flat.total("critpath.whatif.network_free_speedup"),
            m_fat.total("critpath.whatif.network_free_speedup"));
}

// ---------------------------------------------------------------------------
// Env plumbing.
// ---------------------------------------------------------------------------

TEST(Critpath, EnvKnobsRoundTrip) {
  ::unsetenv("ITYR_CRITPATH");
  ::unsetenv("ITYR_HIST_BUCKETS");
  auto d = ityr::common::options::from_env();
  EXPECT_FALSE(d.critpath);
  EXPECT_EQ(d.hist_buckets, 48u);

  ::setenv("ITYR_CRITPATH", "1", 1);
  ::setenv("ITYR_HIST_BUCKETS", "64", 1);
  auto o = ityr::common::options::from_env();
  EXPECT_TRUE(o.critpath);
  EXPECT_EQ(o.hist_buckets, 64u);

  ::setenv("ITYR_CRITPATH", "0", 1);
  EXPECT_FALSE(ityr::common::options::from_env().critpath);

  // A typo'd bucket count (byte sizes, zeros) is rejected loudly, not
  // silently clamped into a useless geometry.
  ::setenv("ITYR_HIST_BUCKETS", "2", 1);
  EXPECT_THROW(ityr::common::options::from_env(), ityr::common::error);
  ::setenv("ITYR_HIST_BUCKETS", "65536", 1);
  EXPECT_THROW(ityr::common::options::from_env(), ityr::common::error);

  ::unsetenv("ITYR_CRITPATH");
  ::unsetenv("ITYR_HIST_BUCKETS");
}

}  // namespace
