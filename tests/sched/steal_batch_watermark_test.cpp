// Batch steals x asynchronous release: when a thief claims several deque
// entries in one probe+CAS round, every claimed continuation must observe
// the victim's writes — the thief's acquire has to cover the release epochs
// of ALL claimed entries (the max-epoch watermark), not just the top one.
// A bug there shows up as a stale read in exactly the interleavings this
// test sweeps: async release keeps victim epochs in flight while the batch
// migrates.
//
// The check is differential: batch=3 and batch=1 runs over the same plan
// must both match the sequential oracle, and the batch run must actually
// claim multi-entry batches (else the test is vacuous).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "../support/fixture.hpp"
#include "itoyori/common/rng.hpp"
#include "itoyori/core/ityr.hpp"

namespace {

struct plan_node {
  bool leaf = false;
  std::size_t lo = 0, hi = 0;
  std::uint32_t salt = 0;
  std::uint32_t pre_salt = 0;  ///< internal nodes, plan.pre only
  int left = -1, right = -1;
  int next = -1;
};

struct plan {
  std::vector<plan_node> nodes;
  int root = -1;
  std::size_t array_size = 0;
  /// Mutate each internal node's whole range BEFORE forking its children
  /// (ordered: happens-before the forks, so still race-free and
  /// deterministic). This makes the forking rank dirty at push time, so the
  /// pushed continuation carries a *needed* release handler — the
  /// mixed-origin batch test requires needed handlers from several ranks.
  bool pre = false;
};

int build_plan(plan& p, ityr::common::xoshiro256ss& rng, std::size_t lo, std::size_t hi,
               int depth) {
  const int id = static_cast<int>(p.nodes.size());
  p.nodes.push_back({});
  if (depth == 0 || hi - lo < 8) {
    p.nodes[id] = {true, lo, hi, static_cast<std::uint32_t>(rng()), 0, -1, -1, -1};
    return id;
  }
  const std::uint32_t pre_salt = p.pre ? static_cast<std::uint32_t>(rng()) : 0;
  const std::size_t mid = lo + (hi - lo) / 2;
  const int l = build_plan(p, rng, lo, mid, depth - 1);
  const int r = build_plan(p, rng, mid, hi, depth - 1);
  const int f = static_cast<int>(p.nodes.size());
  p.nodes.push_back({true, lo, hi, static_cast<std::uint32_t>(rng()), 0, -1, -1, -1});
  p.nodes[id] = {false, lo, hi, 0, pre_salt, l, r, f};
  return id;
}

constexpr std::uint32_t mutate(std::uint32_t x, std::uint32_t salt, std::uint32_t idx) {
  return x * 1664525u + salt + idx * 1013904223u;
}

void run_serial(const plan& p, int id, std::vector<std::uint32_t>& a) {
  const plan_node& n = p.nodes[static_cast<std::size_t>(id)];
  if (n.leaf) {
    for (std::size_t i = n.lo; i < n.hi; i++) {
      a[i] = mutate(a[i], n.salt, static_cast<std::uint32_t>(i));
    }
    return;
  }
  if (p.pre) {
    for (std::size_t i = n.lo; i < n.hi; i++) {
      a[i] = mutate(a[i], n.pre_salt, static_cast<std::uint32_t>(i));
    }
  }
  run_serial(p, n.left, a);
  run_serial(p, n.right, a);
  run_serial(p, n.next, a);
}

void run_parallel(const plan* p, int id, ityr::global_ptr<std::uint32_t> a) {
  const plan_node& n = p->nodes[static_cast<std::size_t>(id)];
  if (n.leaf) {
    ityr::with_checkout(a + static_cast<std::ptrdiff_t>(n.lo), n.hi - n.lo,
                        ityr::access_mode::read_write, [&](std::uint32_t* ptr) {
                          for (std::size_t i = 0; i < n.hi - n.lo; i++) {
                            ptr[i] = mutate(ptr[i], n.salt,
                                            static_cast<std::uint32_t>(n.lo + i));
                          }
                        });
    return;
  }
  if (p->pre) {
    ityr::with_checkout(a + static_cast<std::ptrdiff_t>(n.lo), n.hi - n.lo,
                        ityr::access_mode::read_write, [&](std::uint32_t* ptr) {
                          for (std::size_t i = 0; i < n.hi - n.lo; i++) {
                            ptr[i] = mutate(ptr[i], n.pre_salt,
                                            static_cast<std::uint32_t>(n.lo + i));
                          }
                        });
  }
  const int l = n.left, r = n.right, f = n.next;
  ityr::parallel_invoke([p, l, a] { run_parallel(p, l, a); },
                        [p, r, a] { run_parallel(p, r, a); });
  run_parallel(p, f, a);
}

struct run_result {
  std::vector<std::uint32_t> final_state;
  std::uint64_t batch_steals = 0;
  std::uint64_t batch_extra_entries = 0;
  std::uint64_t batch_multi_origin = 0;
};

run_result run_batched(const plan& p, unsigned seed, std::size_t steal_batch, int nodes = 2,
                       int rpn = 2) {
  run_result res;
  auto o = ityr::test::tiny_opts(nodes, rpn);
  o.policy = ityr::cache_policy::write_back_lazy;
  o.seed = seed;
  o.async_release = true;  // keep victim release epochs in flight during steals
  o.steal_batch = steal_batch;
  ityr::runtime rt(o);
  rt.spmd([&] {
    auto a = ityr::coll_new<std::uint32_t>(p.array_size);
    const plan* pp = &p;
    ityr::root_exec([pp, a] {
      ityr::parallel_fill(a, pp->array_size, 64, std::uint32_t{0});
      run_parallel(pp, pp->root, a);
    });
    if (ityr::my_rank() == 0) {
      res.final_state.resize(p.array_size);
      ityr::with_checkout(a, p.array_size, ityr::access_mode::read,
                          [&](const std::uint32_t* got) {
                            for (std::size_t i = 0; i < p.array_size; i++) {
                              res.final_state[i] = got[i];
                            }
                          });
    }
    ityr::barrier();
    ityr::coll_delete(a, p.array_size);
  });
  const auto st = rt.sched().get_stats();
  res.batch_steals = st.batch_steals;
  res.batch_extra_entries = st.batch_extra_entries;
  res.batch_multi_origin = st.batch_multi_origin;
  return res;
}

TEST(StealBatchWatermark, BatchedStealsSeeAllClaimedEpochs) {
  std::uint64_t total_batch_steals = 0;
  for (unsigned seed : {1u, 2u, 3u, 5u, 8u}) {
    ityr::common::xoshiro256ss rng(seed);
    plan p;
    p.array_size = 8 * 1024 + rng.below(8 * 1024);
    // Deep plan: deques grow several entries tall before a thief arrives, so
    // 3-entry claims actually occur.
    p.root = build_plan(p, rng, 0, p.array_size, 7);

    std::vector<std::uint32_t> oracle(p.array_size, 0);
    run_serial(p, p.root, oracle);

    const run_result single = run_batched(p, seed, 1);
    const run_result batched = run_batched(p, seed, 3);

    EXPECT_EQ(single.batch_steals, 0u) << "seed " << seed;
    total_batch_steals += batched.batch_steals;
    if (batched.batch_steals > 0) {
      // Every batch claimed at most 3 entries: the extras per batch are 1..2.
      EXPECT_GE(batched.batch_extra_entries, batched.batch_steals) << "seed " << seed;
      EXPECT_LE(batched.batch_extra_entries, 2 * batched.batch_steals) << "seed " << seed;
    }

    ASSERT_EQ(single.final_state.size(), oracle.size());
    ASSERT_EQ(batched.final_state.size(), oracle.size());
    for (std::size_t i = 0; i < oracle.size(); i++) {
      ASSERT_EQ(single.final_state[i], oracle[i])
          << "single-entry run diverged at " << i << " (seed " << seed << ")";
      ASSERT_EQ(batched.final_state[i], oracle[i])
          << "batched run diverged at " << i << " (seed " << seed << ")";
    }
  }
  // Visibility is only proven if the multi-entry path actually ran.
  EXPECT_GT(total_batch_steals, 0u) << "no seed ever claimed a multi-entry batch";
}

// 3-rank chain: rank A pushes, rank B batch-steals (parking A-origin extras —
// whose handlers keep rh.rank == A — on its own deque) and forks more work on
// top, then rank C batch-steals a span of B's now mixed-origin deque. C's
// Acquire #2 must wait on BOTH A's and B's release epochs: wait_handler
// targets a single rank, so merging the handlers into one drops an origin's
// synchronization from the acquire itself. (Today that drop happens to be
// masked — a foreign-origin entry's epoch was forced at its first steal, and
// visibility rides the always-on victim-watermark wait — but the per-rank
// acquire is what makes the batch claim locally sound rather than dependent
// on that cross-component chain; this test pins it.) The check is again
// differential against the sequential oracle, with a vacuity guard on the
// batch_multi_origin counter: at least one claim must actually have spanned
// needed handlers pushed by different ranks.
TEST(StealBatchWatermark, MixedOriginBatchesAcquireEveryPushingRank) {
  std::uint64_t total_multi_origin = 0;
  for (unsigned seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    ityr::common::xoshiro256ss rng(seed);
    plan p;
    p.array_size = 8 * 1024 + rng.below(8 * 1024);
    // Deep plan + 6 single-rank nodes: every steal crosses ranks, deques grow
    // tall, and re-steal chains (thief-of-a-thief) are common enough that
    // batch claims span mixed-origin runs. pre-mutation keeps the forking
    // rank dirty at push time so the spanned handlers are actually needed.
    p.pre = true;
    p.root = build_plan(p, rng, 0, p.array_size, 8);

    std::vector<std::uint32_t> oracle(p.array_size, 0);
    run_serial(p, p.root, oracle);

    const run_result batched = run_batched(p, seed, 3, 6, 1);
    total_multi_origin += batched.batch_multi_origin;

    ASSERT_EQ(batched.final_state.size(), oracle.size());
    for (std::size_t i = 0; i < oracle.size(); i++) {
      ASSERT_EQ(batched.final_state[i], oracle[i])
          << "mixed-origin batched run diverged at " << i << " (seed " << seed << ")";
    }
  }
  // The dangerous path is only proven if some batch actually mixed origins.
  EXPECT_GT(total_multi_origin, 0u) << "no seed ever claimed a mixed-origin batch";
}

}  // namespace
