// Randomized DAG-consistency property test (paper Sections 3.1/4.4): a
// random fork-join computation writes and rewrites disjoint slices of a
// global array; after every join, readers must observe exactly the writes
// ordered before them by the fork-join DAG — under any schedule, policy, or
// topology. A sequential replay of the same DAG provides the oracle.

#include <gtest/gtest.h>

#include <vector>

#include "../support/fixture.hpp"
#include "itoyori/common/rng.hpp"
#include "itoyori/core/ityr.hpp"

namespace {

// A node of the random computation: either a leaf (mutate a slice) or an
// internal node that forks children sequentially-composed in pairs.
struct plan_node {
  bool leaf = false;
  std::size_t lo = 0, hi = 0;  // slice [lo, hi)
  std::uint32_t salt = 0;
  int left = -1, right = -1;  // parallel children
  int next = -1;              // sequential successor (runs after children join)
};

struct plan {
  std::vector<plan_node> nodes;
  int root = -1;
  std::size_t array_size = 0;
};

// Build a random plan: recursively split [lo, hi); each internal node runs
// its two halves in parallel and then a follow-up leaf touching the whole
// range (so parents read children's writes).
int build_plan(plan& p, ityr::common::xoshiro256ss& rng, std::size_t lo, std::size_t hi,
               int depth) {
  const int id = static_cast<int>(p.nodes.size());
  p.nodes.push_back({});
  if (depth == 0 || hi - lo < 8) {
    p.nodes[id] = {true, lo, hi, static_cast<std::uint32_t>(rng()), -1, -1, -1};
    return id;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  const int l = build_plan(p, rng, lo, mid, depth - 1);
  const int r = build_plan(p, rng, mid, hi, depth - 1);
  // Follow-up leaf reads+rewrites the whole range after the join.
  const int f = static_cast<int>(p.nodes.size());
  p.nodes.push_back({true, lo, hi, static_cast<std::uint32_t>(rng()), -1, -1, -1});
  p.nodes[id] = {false, lo, hi, 0, l, r, f};
  return id;
}

constexpr std::uint32_t mutate(std::uint32_t x, std::uint32_t salt, std::uint32_t idx) {
  return x * 1664525u + salt + idx * 1013904223u;
}

// Oracle: sequential execution over a local array.
void run_serial(const plan& p, int id, std::vector<std::uint32_t>& a) {
  const plan_node& n = p.nodes[static_cast<std::size_t>(id)];
  if (n.leaf) {
    for (std::size_t i = n.lo; i < n.hi; i++) {
      a[i] = mutate(a[i], n.salt, static_cast<std::uint32_t>(i));
    }
    return;
  }
  run_serial(p, n.left, a);
  run_serial(p, n.right, a);
  run_serial(p, n.next, a);
}

// Parallel execution over global memory through checkout/checkin.
void run_parallel(const plan* p, int id, ityr::global_ptr<std::uint32_t> a) {
  const plan_node& n = p->nodes[static_cast<std::size_t>(id)];
  if (n.leaf) {
    ityr::with_checkout(a + static_cast<std::ptrdiff_t>(n.lo), n.hi - n.lo,
                        ityr::access_mode::read_write, [&](std::uint32_t* ptr) {
                          for (std::size_t i = 0; i < n.hi - n.lo; i++) {
                            ptr[i] = mutate(ptr[i], n.salt,
                                            static_cast<std::uint32_t>(n.lo + i));
                          }
                        });
    return;
  }
  const int l = n.left, r = n.right, f = n.next;
  ityr::parallel_invoke([p, l, a] { run_parallel(p, l, a); },
                        [p, r, a] { run_parallel(p, r, a); });
  run_parallel(p, f, a);
}

class DagConsistency : public ::testing::TestWithParam<std::tuple<unsigned, ityr::cache_policy>> {
};

TEST_P(DagConsistency, ParallelMatchesSequentialOracle) {
  const auto [seed, policy] = GetParam();
  ityr::common::xoshiro256ss rng(seed);

  plan p;
  p.array_size = 512 + rng.below(1500);
  p.root = build_plan(p, rng, 0, p.array_size, 5);

  std::vector<std::uint32_t> oracle(p.array_size, 0);
  run_serial(p, p.root, oracle);

  auto o = ityr::test::tiny_opts(2, 2);
  o.policy = policy;
  o.seed = seed;  // vary victim selection too
  ityr::runtime rt(o);
  rt.spmd([&] {
    auto a = ityr::coll_new<std::uint32_t>(p.array_size);
    const plan* pp = &p;  // the plan itself is immutable shared input
    ityr::root_exec([pp, a] {
      ityr::parallel_fill(a, pp->array_size, 64, std::uint32_t{0});
      run_parallel(pp, pp->root, a);
    });
    if (ityr::my_rank() == 0) {
      ityr::with_checkout(a, p.array_size, ityr::access_mode::read,
                          [&](const std::uint32_t* got) {
                            for (std::size_t i = 0; i < p.array_size; i++) {
                              ASSERT_EQ(got[i], oracle[i]) << "index " << i;
                            }
                          });
    }
    ityr::barrier();
    ityr::coll_delete(a, p.array_size);
  });
}

INSTANTIATE_TEST_SUITE_P(
    RandomDags, DagConsistency,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 11u, 23u),
                       ::testing::Values(ityr::cache_policy::write_through,
                                         ityr::cache_policy::write_back,
                                         ityr::cache_policy::write_back_lazy)),
    [](const ::testing::TestParamInfo<std::tuple<unsigned, ityr::cache_policy>>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_" +
             ityr::common::to_string(std::get<1>(info.param));
    });

}  // namespace
