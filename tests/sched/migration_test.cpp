// Targeted exercises of the slow scheduler paths: join suspension, remote
// resume by the finishing child, and repeated stealing of the same lineage.

#include <gtest/gtest.h>

#include "../support/fixture.hpp"
#include "itoyori/core/ityr.hpp"

namespace {

ityr::options mopts(int nodes, int rpn) {
  auto o = ityr::test::tiny_opts(nodes, rpn);
  o.coll_heap_per_rank = 1 * ityr::common::MiB;
  return o;
}

/// A child that takes `micros` of virtual time (with poll points).
void slow_task(int micros) {
  for (int i = 0; i < micros; i++) {
    ityr::rt().eng().advance(1e-6);
    ityr::rt().pgas().poll();
  }
}

}  // namespace

TEST(Migration, JoinSuspensionAndRemoteResume) {
  ityr::runtime rt(mopts(2, 1));
  rt.spmd([&] {
    long v = ityr::root_exec([] {
      // Fork a slow child; the parent continuation will be stolen by the
      // other rank, race ahead to the join, and have to suspend.
      auto [a, b] = ityr::parallel_invoke(
          [] {
            slow_task(500);
            return 10L;
          },
          [] { return 32L; });
      return a + b;
    });
    EXPECT_EQ(v, 42);
  });
  const auto st = rt.sched().get_stats();
  EXPECT_GT(st.steals, 0u);
  EXPECT_GT(st.join_suspends, 0u) << "the stolen parent must have blocked at join";
}

TEST(Migration, ChainOfImbalancedJoins) {
  ityr::runtime rt(mopts(2, 2));
  rt.spmd([&] {
    long v = ityr::root_exec([] {
      std::function<long(int)> go = [&](int depth) -> long {
        if (depth == 0) {
          slow_task(50);
          return 1;
        }
        auto [l, r] = ityr::parallel_invoke(
            [=] { return go(depth - 1); },
            [=] {
              slow_task(20 * depth);  // skew
              return go(depth - 1);
            });
        return l + r;
      };
      return go(6);
    });
    EXPECT_EQ(v, 64);
  });
  // Whether a join has to suspend depends on the schedule; what is certain
  // with this much skew is that work was stolen and the result is exact.
  EXPECT_GT(rt.sched().get_stats().steals, 0u);
}

TEST(Migration, GlobalStateConsistentAcrossSuspensions) {
  // Each leaf writes its slot after a variable delay; every write must land
  // exactly once regardless of which rank resumed which continuation.
  ityr::runtime rt(mopts(3, 1));
  rt.spmd([&] {
    const std::size_t n = 64;
    auto a = ityr::coll_new<int>(n);
    long sum = ityr::root_exec([=] {
      ityr::parallel_fill(a, n, 16, 0);
      std::function<void(std::size_t, std::size_t)> go = [&](std::size_t lo, std::size_t hi) {
        if (hi - lo == 1) {
          slow_task(static_cast<int>((lo * 7) % 40));
          ityr::with_checkout(a + static_cast<std::ptrdiff_t>(lo), 1,
                              ityr::access_mode::read_write, [&](int* p) { *p += 1; });
          return;
        }
        const std::size_t mid = lo + (hi - lo) / 2;
        ityr::parallel_invoke([=] { go(lo, mid); }, [=] { go(mid, hi); });
      };
      go(0, n);
      return ityr::parallel_reduce(
          a, n, 16, 0L, [](int v) { return static_cast<long>(v); },
          [](long x, long y) { return x + y; });
    });
    EXPECT_EQ(sum, static_cast<long>(n));
    ityr::coll_delete(a, n);
  });
}

TEST(Migration, StackBytesAccountingIsPlausible) {
  ityr::runtime rt(mopts(2, 2));
  rt.spmd([&] {
    ityr::root_exec([] {
      std::function<long(int)> fib = [&](int x) -> long {
        if (x < 2) {
          slow_task(5);
          return x;
        }
        auto [p, q] = ityr::parallel_invoke([=] { return fib(x - 1); },
                                            [=] { return fib(x - 2); });
        return p + q;
      };
      (void)fib(12);
    });
  });
  const auto st = rt.sched().get_stats();
  if (st.migrations > 0) {
    // Each migration moves at least a frame's worth and at most a whole
    // stack region.
    EXPECT_GE(st.migrated_stack_bytes, st.migrations * 64);
    EXPECT_LE(st.migrated_stack_bytes,
              st.migrations * ityr::rt().opts().ult_stack_size);
  }
}
