#include "itoyori/core/ityr.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "../support/fixture.hpp"

namespace {

ityr::options sched_opts(int nodes = 2, int rpn = 2) {
  auto o = ityr::test::tiny_opts(nodes, rpn);
  o.coll_heap_per_rank = 1 * ityr::common::MiB;
  return o;
}

long fib_serial(int n) { return n < 2 ? n : fib_serial(n - 1) + fib_serial(n - 2); }

long fib_task(int n) {
  if (n < 2) return n;
  auto [a, b] = ityr::parallel_invoke([=] { return fib_task(n - 1); },
                                      [=] { return fib_task(n - 2); });
  return a + b;
}

}  // namespace

TEST(Scheduler, RootExecRunsOnce) {
  ityr::runtime rt(sched_opts());
  int runs = 0;
  rt.spmd([&] { ityr::root_exec([&] { runs++; }); });
  EXPECT_EQ(runs, 1);
}

TEST(Scheduler, RootExecReturnsValueOnAllRanks) {
  ityr::runtime rt(sched_opts());
  std::vector<long> results;
  rt.spmd([&] {
    long v = ityr::root_exec([] { return 40L + 2L; });
    results.push_back(v);
  });
  ASSERT_EQ(results.size(), 4u);
  for (long v : results) EXPECT_EQ(v, 42);
}

TEST(Scheduler, ParallelInvokeReturnsTuple) {
  ityr::runtime rt(sched_opts(1, 1));
  rt.spmd([&] {
    ityr::root_exec([] {
      auto [a, b, c] = ityr::parallel_invoke([] { return 1; }, [] { return 2.5; },
                                             [] { return 3; });
      EXPECT_EQ(a, 1);
      EXPECT_DOUBLE_EQ(b, 2.5);
      EXPECT_EQ(c, 3);
    });
  });
}

TEST(Scheduler, FibCorrectSingleRank) {
  ityr::runtime rt(sched_opts(1, 1));
  rt.spmd([&] {
    long v = ityr::root_exec([] { return fib_task(15); });
    EXPECT_EQ(v, fib_serial(15));
  });
  // Single rank: everything runs on the fast serialized path, no steals.
  EXPECT_EQ(rt.sched().get_stats().steals, 0u);
  EXPECT_EQ(rt.sched().get_stats().serialized_joins, rt.sched().get_stats().forks);
}

TEST(Scheduler, FibCorrectMultiRankWithSteals) {
  ityr::runtime rt(sched_opts(2, 2));
  rt.spmd([&] {
    long v = ityr::root_exec([] { return fib_task(17); });
    EXPECT_EQ(v, fib_serial(17));
  });
  const auto st = rt.sched().get_stats();
  EXPECT_GT(st.steals, 0u) << "multi-rank fib must trigger work stealing";
  EXPECT_GT(st.migrations, 0u);
  EXPECT_GT(st.migrated_stack_bytes, 0u);
}

TEST(Scheduler, WorkIsActuallyDistributed) {
  // With 4 ranks and an embarrassingly parallel tree, more than one rank
  // must end up executing tasks.
  ityr::runtime rt(sched_opts(2, 2));
  std::vector<int> task_rank_hits(4, 0);
  rt.spmd([&] {
    ityr::root_exec([&] {
      std::function<void(int)> go = [&](int depth) {
        if (depth == 0) {
          task_rank_hits[static_cast<std::size_t>(ityr::my_rank())]++;
          // Nontrivial leaf work so thieves have time to steal.
          volatile long x = 0;
          for (int i = 0; i < 2000; i++) x += i;
          ityr::rt().eng().advance(5e-6);
          return;
        }
        ityr::parallel_invoke([=] { go(depth - 1); }, [=] { go(depth - 1); });
      };
      go(7);  // 128 leaves
    });
  });
  int active_ranks = 0;
  int total = 0;
  for (int c : task_rank_hits) {
    active_ranks += (c > 0);
    total += c;
  }
  EXPECT_EQ(total, 128);
  EXPECT_GT(active_ranks, 1);
}

TEST(Scheduler, ChildExceptionPropagatesToJoin) {
  ityr::runtime rt(sched_opts(1, 2));
  rt.spmd([&] {
    if (ityr::my_rank() >= 0) {  // all ranks enter root_exec collectively
      bool caught = false;
      try {
        ityr::root_exec([] {
          ityr::parallel_invoke([] { throw std::runtime_error("child boom"); },
                                [] { /* fine */ });
        });
      } catch (const std::runtime_error& e) {
        caught = std::string(e.what()) == "child boom";
      }
      if (ityr::my_rank() == 0) EXPECT_TRUE(caught);
    }
  });
}

TEST(Scheduler, RootExceptionPropagatesToRankZero) {
  ityr::runtime rt(sched_opts(1, 2));
  rt.spmd([&] {
    bool caught = false;
    try {
      ityr::root_exec([] { throw std::logic_error("root boom"); });
    } catch (const std::logic_error&) {
      caught = true;
    }
    if (ityr::my_rank() == 0) EXPECT_TRUE(caught);
  });
}

TEST(Scheduler, SequentialRootExecRegions) {
  ityr::runtime rt(sched_opts());
  rt.spmd([&] {
    for (int round = 0; round < 3; round++) {
      long v = ityr::root_exec([=] { return fib_task(10 + round); });
      EXPECT_EQ(v, fib_serial(10 + round));
    }
  });
}

TEST(Scheduler, DeepRecursionDoesNotExhaustStacks) {
  ityr::runtime rt(sched_opts(1, 2));
  rt.spmd([&] {
    long v = ityr::root_exec([] {
      std::function<long(int)> chain = [&](int depth) -> long {
        if (depth == 0) return 1;
        auto [r] = ityr::parallel_invoke([=] { return chain(depth - 1); });
        return r + 1;
      };
      return chain(200);
    });
    EXPECT_EQ(v, 201);
  });
}

TEST(Scheduler, ManySmallTasksStress) {
  ityr::runtime rt(sched_opts(2, 2));
  rt.spmd([&] {
    long v = ityr::root_exec([] {
      std::function<long(long, long)> sum_range = [&](long lo, long hi) -> long {
        if (hi - lo <= 8) {
          long s = 0;
          for (long i = lo; i < hi; i++) s += i;
          return s;
        }
        long mid = lo + (hi - lo) / 2;
        auto [a, b] = ityr::parallel_invoke([=] { return sum_range(lo, mid); },
                                            [=] { return sum_range(mid, hi); });
        return a + b;
      };
      return sum_range(0, 4096);
    });
    EXPECT_EQ(v, 4096L * 4095 / 2);
  });
}

TEST(Scheduler, BusyTimeIsAccounted) {
  ityr::runtime rt(sched_opts(1, 1));
  rt.spmd([&] {
    ityr::root_exec([] { ityr::rt().eng().advance(1e-3); });
  });
  EXPECT_GE(rt.sched().busy_time_of(0), 1e-3);
}

TEST(Scheduler, NonVoidResultThroughMigration) {
  // Results must travel via thread_state (heap), not parent stacks: verify
  // values survive under heavy stealing.
  ityr::runtime rt(sched_opts(3, 2));
  rt.spmd([&] {
    long v = ityr::root_exec([] { return fib_task(16); });
    EXPECT_EQ(v, fib_serial(16));
  });
}

TEST(Scheduler, NodeFirstStealingPrefersIntraNodeVictims) {
  auto o = sched_opts(2, 4);
  o.steal = ityr::common::steal_policy::node_first;
  o.node_first_prob = 0.9;
  ityr::runtime rt(o);
  rt.spmd([&] {
    long v = ityr::root_exec([] { return fib_task(18); });
    EXPECT_EQ(v, fib_serial(18));
  });
  const auto st = rt.sched().get_stats();
  ASSERT_GT(st.steals, 0u);
  // With 8 ranks over 2 nodes and P(intra)=0.9, intra-node steals must be
  // the clear majority.
  EXPECT_GT(st.intra_node_steals * 2, st.steals);
}

TEST(Scheduler, RandomStealingMixesNodes) {
  ityr::runtime rt(sched_opts(2, 4));
  rt.spmd([&] {
    long v = ityr::root_exec([] { return fib_task(18); });
    EXPECT_EQ(v, fib_serial(18));
  });
  const auto st = rt.sched().get_stats();
  ASSERT_GT(st.steals, 10u);
  // 3 of 7 possible victims are intra-node: expect a real mix (not all of
  // either kind).
  EXPECT_GT(st.intra_node_steals, 0u);
  EXPECT_LT(st.intra_node_steals, st.steals);
}
