// Differential test for the asynchronous epoch-pipelined release protocol:
// the SAME randomized fork-join computation, run once with blocking releases
// and once with ITYR_ASYNC_RELEASE, must leave the global heap in the SAME
// final state (and both must match a sequential oracle). The steal schedule
// is varied via the engine seed so the watermark plumbing is exercised across
// many different steal/join interleavings.

#include <gtest/gtest.h>

#include <vector>

#include "../support/fixture.hpp"
#include "itoyori/common/rng.hpp"
#include "itoyori/core/ityr.hpp"

namespace {

// Random fork-join plan (same shape as dag_consistency_test): leaves mutate
// slices, internal nodes fork halves in parallel and then run a follow-up
// leaf over the whole range so parents read children's writes.
struct plan_node {
  bool leaf = false;
  std::size_t lo = 0, hi = 0;
  std::uint32_t salt = 0;
  int left = -1, right = -1;
  int next = -1;
};

struct plan {
  std::vector<plan_node> nodes;
  int root = -1;
  std::size_t array_size = 0;
};

int build_plan(plan& p, ityr::common::xoshiro256ss& rng, std::size_t lo, std::size_t hi,
               int depth) {
  const int id = static_cast<int>(p.nodes.size());
  p.nodes.push_back({});
  if (depth == 0 || hi - lo < 8) {
    p.nodes[id] = {true, lo, hi, static_cast<std::uint32_t>(rng()), -1, -1, -1};
    return id;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  const int l = build_plan(p, rng, lo, mid, depth - 1);
  const int r = build_plan(p, rng, mid, hi, depth - 1);
  const int f = static_cast<int>(p.nodes.size());
  p.nodes.push_back({true, lo, hi, static_cast<std::uint32_t>(rng()), -1, -1, -1});
  p.nodes[id] = {false, lo, hi, 0, l, r, f};
  return id;
}

constexpr std::uint32_t mutate(std::uint32_t x, std::uint32_t salt, std::uint32_t idx) {
  return x * 1664525u + salt + idx * 1013904223u;
}

void run_serial(const plan& p, int id, std::vector<std::uint32_t>& a) {
  const plan_node& n = p.nodes[static_cast<std::size_t>(id)];
  if (n.leaf) {
    for (std::size_t i = n.lo; i < n.hi; i++) {
      a[i] = mutate(a[i], n.salt, static_cast<std::uint32_t>(i));
    }
    return;
  }
  run_serial(p, n.left, a);
  run_serial(p, n.right, a);
  run_serial(p, n.next, a);
}

void run_parallel(const plan* p, int id, ityr::global_ptr<std::uint32_t> a) {
  const plan_node& n = p->nodes[static_cast<std::size_t>(id)];
  if (n.leaf) {
    ityr::with_checkout(a + static_cast<std::ptrdiff_t>(n.lo), n.hi - n.lo,
                        ityr::access_mode::read_write, [&](std::uint32_t* ptr) {
                          for (std::size_t i = 0; i < n.hi - n.lo; i++) {
                            ptr[i] = mutate(ptr[i], n.salt,
                                            static_cast<std::uint32_t>(n.lo + i));
                          }
                        });
    return;
  }
  const int l = n.left, r = n.right, f = n.next;
  ityr::parallel_invoke([p, l, a] { run_parallel(p, l, a); },
                        [p, r, a] { run_parallel(p, r, a); });
  run_parallel(p, f, a);
}

// Runs the plan under one release mode and returns the final array contents
// plus the async round count (to prove the async path actually engaged).
struct run_result {
  std::vector<std::uint32_t> final_state;
  std::uint64_t async_wb_rounds = 0;
};

run_result run_mode(const plan& p, unsigned seed, bool async_release) {
  run_result res;
  auto o = ityr::test::tiny_opts(2, 2);
  o.policy = ityr::cache_policy::write_back_lazy;
  o.seed = seed;  // varies victim selection -> varies the steal schedule
  o.async_release = async_release;
  ityr::runtime rt(o);
  rt.spmd([&] {
    auto a = ityr::coll_new<std::uint32_t>(p.array_size);
    const plan* pp = &p;
    ityr::root_exec([pp, a] {
      ityr::parallel_fill(a, pp->array_size, 64, std::uint32_t{0});
      run_parallel(pp, pp->root, a);
    });
    if (ityr::my_rank() == 0) {
      res.final_state.resize(p.array_size);
      ityr::with_checkout(a, p.array_size, ityr::access_mode::read,
                          [&](const std::uint32_t* got) {
                            for (std::size_t i = 0; i < p.array_size; i++) {
                              res.final_state[i] = got[i];
                            }
                          });
    }
    ityr::barrier();
    ityr::coll_delete(a, p.array_size);
  });
  res.async_wb_rounds = rt.pgas().aggregate_stats().async_wb_rounds;
  return res;
}

class ReleaseDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(ReleaseDifferential, AsyncMatchesBlockingAcrossStealSchedules) {
  const unsigned seed = GetParam();
  ityr::common::xoshiro256ss rng(seed);

  // Large enough to span many blocks across all 4 ranks: leaves then write
  // through the cache to remote-homed data, so releases have real dirty
  // segments to pipeline (a tiny array is home-owned and never dirties).
  plan p;
  p.array_size = 16 * 1024 + rng.below(16 * 1024);
  p.root = build_plan(p, rng, 0, p.array_size, 6);

  std::vector<std::uint32_t> oracle(p.array_size, 0);
  run_serial(p, p.root, oracle);

  const run_result blocking = run_mode(p, seed, /*async_release=*/false);
  const run_result async = run_mode(p, seed, /*async_release=*/true);

  EXPECT_EQ(blocking.async_wb_rounds, 0u);
  EXPECT_GT(async.async_wb_rounds, 0u) << "async path never engaged";
  ASSERT_EQ(blocking.final_state.size(), oracle.size());
  ASSERT_EQ(async.final_state.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); i++) {
    ASSERT_EQ(blocking.final_state[i], oracle[i]) << "blocking diverged at " << i;
    ASSERT_EQ(async.final_state[i], oracle[i]) << "async diverged at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSchedules, ReleaseDifferential,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 7u, 11u, 13u, 23u, 42u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
