// Multi-job serving (ITYR_SERVE): differential off-path pinning, the
// root_exec re-entry regression, and serving-mode correctness.
//
//  * OFF-PATH: with ITYR_SERVE off, every serving knob (arrival rate, job
//    count, mix, steal fairness, cache quota) must be inert — a run with
//    wild-but-valid settings is bit-identical to a defaults run on per-rank
//    virtual clocks, scheduler counters, and the final heap state. This is
//    the in-repo half of the "single-job mode unchanged" guarantee (the
//    bench baselines pin the cross-PR half).
//
//  * RE-ENTRY: two back-to-back root_exec regions with the critical-path
//    profiler on must keep extending one work/span accumulation; region 1's
//    root frame and phase-timeline state must not leak into region 2.
//
//  * SERVING: an admitted job stream must run every job exactly once
//    (admit <= start <= complete, dense ids, correct heap contents), under
//    job-weighted fairness and under a per-job cache quota alike, and the
//    per-job cache accounting must attribute all traffic.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "../support/fixture.hpp"
#include "itoyori/core/ityr.hpp"

namespace {

constexpr std::uint32_t mutate(std::uint32_t x, std::uint32_t salt, std::uint32_t idx) {
  return x * 1664525u + salt + idx * 1013904223u;
}

// Recursive fork-join mutate over [lo, hi): enough forks that serving-mode
// jobs overlap and steal from each other at 4 ranks.
void mutate_range(ityr::global_ptr<std::uint32_t> a, std::size_t lo, std::size_t hi,
                  std::uint32_t salt) {
  if (hi - lo <= 256) {
    ityr::with_checkout(a + static_cast<std::ptrdiff_t>(lo), hi - lo,
                        ityr::access_mode::read_write, [&](std::uint32_t* p) {
                          for (std::size_t i = 0; i < hi - lo; i++) {
                            p[i] = mutate(p[i], salt, static_cast<std::uint32_t>(lo + i));
                          }
                        });
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  ityr::parallel_invoke([=] { mutate_range(a, lo, mid, salt); },
                        [=] { mutate_range(a, mid, hi, salt); });
}

void mutate_serial(std::vector<std::uint32_t>& a, std::size_t lo, std::size_t hi,
                   std::uint32_t salt) {
  for (std::size_t i = lo; i < hi; i++) {
    a[i] = mutate(a[i], salt, static_cast<std::uint32_t>(i));
  }
}

/// Job j's body: several rounds over its own block-aligned slice, salts
/// derived from the job index so every job's effect is distinguishable.
ityr::sched::job_spec slice_job(ityr::global_ptr<std::uint32_t> a, std::size_t j,
                                std::size_t n_per_job, int rounds = 2) {
  return {"job_slice", [=] {
            for (int r = 0; r < rounds; r++) {
              mutate_range(a, j * n_per_job, (j + 1) * n_per_job,
                           static_cast<std::uint32_t>(j * 16 + r + 1));
            }
          }};
}

void slice_oracle(std::vector<std::uint32_t>& a, std::size_t j, std::size_t n_per_job,
                  int rounds = 2) {
  for (int r = 0; r < rounds; r++) {
    mutate_serial(a, j * n_per_job, (j + 1) * n_per_job,
                  static_cast<std::uint32_t>(j * 16 + r + 1));
  }
}

// ---------------------------------------------------------------------------
// Off-path differential: serving knobs are inert with ITYR_SERVE off.
// ---------------------------------------------------------------------------

struct fingerprint {
  std::vector<double> clocks;
  std::vector<std::uint32_t> final_state;
  ityr::sched::scheduler::stats st;
};

fingerprint run_fp(unsigned seed, const std::function<void(ityr::common::options&)>& tweak) {
  constexpr std::size_t n = 8 * 1024;
  fingerprint fp;
  auto o = ityr::test::tiny_opts(2, 2);
  o.seed = seed;
  tweak(o);
  ityr::runtime rt(o);
  fp.clocks.assign(4, 0.0);
  rt.spmd([&] {
    auto a = ityr::coll_new<std::uint32_t>(n);
    ityr::root_exec([=] {
      ityr::parallel_fill(a, n, 64, std::uint32_t{0});
      mutate_range(a, 0, n, 7);
      mutate_range(a, 0, n, 13);
    });
    if (ityr::my_rank() == 0) {
      fp.final_state.resize(n);
      ityr::with_checkout(a, n, ityr::access_mode::read, [&](const std::uint32_t* got) {
        for (std::size_t i = 0; i < n; i++) fp.final_state[i] = got[i];
      });
    }
    ityr::barrier();
    fp.clocks[static_cast<std::size_t>(ityr::my_rank())] = rt.eng().now();
    ityr::coll_delete(a, n);
  });
  fp.st = rt.sched().get_stats();
  return fp;
}

class ServingOffDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(ServingOffDifferential, ServingKnobsAreInertWhenServeIsOff) {
  const unsigned seed = GetParam();
  const fingerprint defaults = run_fp(seed, [](ityr::common::options&) {});
  // Wild but valid settings for every serving knob, with ITYR_SERVE itself
  // off: not a single probe, clock tick, or cache decision may move.
  const fingerprint tweaked = run_fp(seed, [](ityr::common::options& o) {
    o.serve_arrival_rate = 3.0;
    o.serve_jobs = 5;
    o.serve_mix = "uts:2,taskbench";
    o.steal_fairness = ityr::common::steal_fairness_kind::job_weighted;
    o.cache_job_quota = 8 * 1024;
  });
  ASSERT_EQ(defaults.clocks.size(), tweaked.clocks.size());
  for (std::size_t r = 0; r < defaults.clocks.size(); r++) {
    // Exact double equality on purpose: any divergence in RNG consumption or
    // advance() sequencing shows up here first.
    EXPECT_EQ(defaults.clocks[r], tweaked.clocks[r]) << "rank " << r << " clock diverged";
  }
  EXPECT_EQ(defaults.st.forks, tweaked.st.forks);
  EXPECT_EQ(defaults.st.steal_attempts, tweaked.st.steal_attempts);
  EXPECT_EQ(defaults.st.steals, tweaked.st.steals);
  EXPECT_EQ(defaults.st.local_pops, tweaked.st.local_pops);
  EXPECT_EQ(defaults.st.fairness_mid_claims, 0u);
  EXPECT_EQ(tweaked.st.fairness_mid_claims, 0u);
  EXPECT_EQ(defaults.st.fairness_redirects, 0u);
  EXPECT_EQ(tweaked.st.fairness_redirects, 0u);
  EXPECT_EQ(defaults.final_state, tweaked.final_state);
}

INSTANTIATE_TEST_SUITE_P(RandomSchedules, ServingOffDifferential,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 7u, 11u, 13u, 23u, 42u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// root_exec re-entry with the critical-path profiler on.
// ---------------------------------------------------------------------------

TEST(RootExecReentry, BackToBackRegionsExtendOneCriticalPath) {
  constexpr std::size_t n = 4 * 1024;
  auto o = ityr::test::tiny_opts(2, 2);
  o.critpath = true;
  ityr::runtime rt(o);
  double work_after_first = 0, span_after_first = 0;
  rt.spmd([&] {
    auto a = ityr::coll_new<std::uint32_t>(n);
    ityr::root_exec([=] {
      ityr::parallel_fill(a, n, 64, std::uint32_t{0});
      mutate_range(a, 0, n, 3);
    });
    if (ityr::my_rank() == 0) {
      work_after_first = rt.sched().cp_work();
      span_after_first = rt.sched().cp_span().total();
    }
    ityr::barrier();
    // Region 2 immediately after region 1: a stale root frame, resume note,
    // or open critpath segment from region 1 would crash or misattribute
    // this region's first resume.
    ityr::root_exec([=] { mutate_range(a, 0, n, 5); });
    if (ityr::my_rank() == 0) {
      std::vector<std::uint32_t> oracle(n, 0);
      mutate_serial(oracle, 0, n, 3);
      mutate_serial(oracle, 0, n, 5);
      ityr::with_checkout(a, n, ityr::access_mode::read, [&](const std::uint32_t* got) {
        for (std::size_t i = 0; i < n; i++) {
          ASSERT_EQ(got[i], oracle[i]) << "heap diverged at " << i;
        }
      });
    }
    ityr::barrier();
    ityr::coll_delete(a, n);
  });
  EXPECT_GT(work_after_first, 0.0);
  EXPECT_GT(span_after_first, 0.0);
  // Sequential regions extend the same accumulated path.
  EXPECT_GT(rt.sched().cp_work(), work_after_first);
  EXPECT_GT(rt.sched().cp_span().total(), span_after_first);
  EXPECT_GE(rt.sched().cp_work(), rt.sched().cp_span().total());
}

// ---------------------------------------------------------------------------
// Serving mode.
// ---------------------------------------------------------------------------

struct serve_run {
  std::vector<ityr::sched::job_record> records;
  std::vector<std::uint32_t> final_state;
  std::vector<ityr::pgas::job_cache_stats> job_cache;
  ityr::pgas::cache_system::stats cache;
  ityr::sched::scheduler::stats sched;
  double jobs_per_s = 0;
  double p50 = 0, p99 = 0;
};

serve_run run_serve(std::size_t n_jobs, std::size_t n_per_job,
                    const std::function<void(ityr::common::options&)>& tweak) {
  serve_run out;
  auto o = ityr::test::tiny_opts(2, 2);
  o.serve = true;
  o.serve_arrival_rate = 2.0e4;  // arrivals overlap: jobs compete for ranks
  tweak(o);
  ityr::runtime rt(o);
  const std::size_t n = n_jobs * n_per_job;
  rt.spmd([&] {
    auto a = ityr::coll_new<std::uint32_t>(n);
    ityr::root_exec([=] { ityr::parallel_fill(a, n, 64, std::uint32_t{0}); });
    ityr::barrier();
    std::vector<ityr::sched::job_spec> jobs;
    for (std::size_t j = 0; j < n_jobs; j++) jobs.push_back(slice_job(a, j, n_per_job));
    ityr::serve(std::move(jobs));
    if (ityr::my_rank() == 0) {
      out.final_state.resize(n);
      // Chunked readback: quota runs shrink the cache below the array size,
      // so a single whole-array checkout would exhaust it with pins.
      constexpr std::size_t chunk = 256;
      for (std::size_t lo = 0; lo < n; lo += chunk) {
        const std::size_t len = std::min(chunk, n - lo);
        ityr::with_checkout(a + static_cast<std::ptrdiff_t>(lo), len, ityr::access_mode::read,
                            [&](const std::uint32_t* got) {
                              for (std::size_t i = 0; i < len; i++) out.final_state[lo + i] = got[i];
                            });
      }
    }
    ityr::barrier();
    ityr::coll_delete(a, n);
  });
  out.records = rt.jobs().records();
  out.job_cache = rt.pgas().aggregate_job_stats();
  out.cache = rt.pgas().aggregate_stats();
  out.sched = rt.sched().get_stats();
  out.jobs_per_s = rt.jobs().jobs_per_s();
  out.p50 = rt.jobs().latency_quantile(0.50);
  out.p99 = rt.jobs().latency_quantile(0.99);
  return out;
}

std::vector<std::uint32_t> serve_oracle(std::size_t n_jobs, std::size_t n_per_job) {
  std::vector<std::uint32_t> a(n_jobs * n_per_job, 0);
  for (std::size_t j = 0; j < n_jobs; j++) slice_oracle(a, j, n_per_job);
  return a;
}

TEST(Serving, RunsEveryJobOnceWithOrderedLifecycle) {
  constexpr std::size_t n_jobs = 6, n_per_job = 2048;
  const serve_run r = run_serve(n_jobs, n_per_job, [](ityr::common::options&) {});

  ASSERT_EQ(r.records.size(), n_jobs);
  double prev_admit = -1;
  for (std::size_t i = 0; i < n_jobs; i++) {
    const auto& jr = r.records[i];
    EXPECT_EQ(jr.id, static_cast<ityr::common::job_id_t>(i + 1)) << "ids dense from 1";
    EXPECT_TRUE(jr.done);
    EXPECT_GT(jr.t_admit, prev_admit) << "admissions strictly ordered";
    prev_admit = jr.t_admit;
    EXPECT_GE(jr.t_start, jr.t_admit);
    EXPECT_GE(jr.t_complete, jr.t_start);
    EXPECT_GT(jr.latency(), 0.0);
    EXPECT_GT(jr.busy_s, 0.0) << "job " << jr.id << " accrued no busy time";
  }
  EXPECT_GT(r.jobs_per_s, 0.0);
  EXPECT_LE(r.p50, r.p99);
  EXPECT_EQ(r.final_state, serve_oracle(n_jobs, n_per_job));
}

TEST(Serving, ServeTwiceKeepsGrowingJobIds) {
  constexpr std::size_t n_jobs = 3, n_per_job = 1024;
  auto o = ityr::test::tiny_opts(2, 2);
  o.serve = true;
  o.serve_arrival_rate = 2.0e4;
  ityr::runtime rt(o);
  const std::size_t n = n_jobs * n_per_job;
  rt.spmd([&] {
    auto a = ityr::coll_new<std::uint32_t>(n);
    ityr::root_exec([=] { ityr::parallel_fill(a, n, 64, std::uint32_t{0}); });
    ityr::barrier();
    for (int round = 0; round < 2; round++) {
      std::vector<ityr::sched::job_spec> jobs;
      for (std::size_t j = 0; j < n_jobs; j++) jobs.push_back(slice_job(a, j, n_per_job));
      ityr::serve(std::move(jobs));
      ityr::barrier();
    }
    ityr::coll_delete(a, n);
  });
  const auto& recs = rt.jobs().records();
  ASSERT_EQ(recs.size(), 2 * n_jobs);
  for (std::size_t i = 0; i < recs.size(); i++) {
    EXPECT_EQ(recs[i].id, static_cast<ityr::common::job_id_t>(i + 1));
    EXPECT_TRUE(recs[i].done);
  }
}

TEST(Serving, JobWeightedFairnessPreservesResults) {
  constexpr std::size_t n_jobs = 6, n_per_job = 2048;
  const serve_run off = run_serve(n_jobs, n_per_job, [](ityr::common::options& o) {
    o.steal_fairness = ityr::common::steal_fairness_kind::off;
  });
  const serve_run fair = run_serve(n_jobs, n_per_job, [](ityr::common::options& o) {
    o.steal_fairness = ityr::common::steal_fairness_kind::job_weighted;
  });
  // Fairness reshuffles the steal schedule; DAG consistency is
  // schedule-independent, so the heap must not care.
  EXPECT_EQ(off.final_state, fair.final_state);
  for (const auto& jr : fair.records) EXPECT_TRUE(jr.done);
  // The off run must never pay the fairness scan.
  EXPECT_EQ(off.sched.fairness_mid_claims, 0u);
  EXPECT_EQ(off.sched.fairness_redirects, 0u);
}

TEST(Serving, FairnessComposesWithBatchSteals) {
  constexpr std::size_t n_jobs = 6, n_per_job = 2048;
  const serve_run r = run_serve(n_jobs, n_per_job, [](ityr::common::options& o) {
    o.steal_fairness = ityr::common::steal_fairness_kind::job_weighted;
    o.steal_batch = 3;
  });
  for (const auto& jr : r.records) EXPECT_TRUE(jr.done);
  EXPECT_EQ(r.final_state, serve_oracle(n_jobs, n_per_job));
  // Batch claims must never span jobs; with single-job-tagged runs of work
  // in the deque the constraint is exercised, not just vacuous.
  EXPECT_GT(r.sched.steals, 0u);
}

TEST(Serving, PerJobCacheAccountingAttributesAllTraffic) {
  constexpr std::size_t n_jobs = 4, n_per_job = 4096;
  const serve_run r = run_serve(n_jobs, n_per_job, [](ityr::common::options&) {});

  ASSERT_GE(r.job_cache.size(), n_jobs + 1) << "one row per job id plus row 0";
  // Conservation: every fetched/written-back byte and every miss lands on
  // exactly one row (row 0 = untagged SPMD/driver traffic).
  std::uint64_t fetched = 0, written = 0, misses = 0;
  for (const auto& row : r.job_cache) {
    fetched += row.fetched_bytes;
    written += row.written_back_bytes;
    misses += row.block_fetches;
  }
  EXPECT_EQ(fetched, r.cache.fetched_bytes);
  EXPECT_EQ(written, r.cache.written_back_bytes + r.cache.write_through_bytes);
  EXPECT_EQ(misses, r.cache.block_misses);
  // Every job moved data: its slice is remote for at least some ranks.
  for (std::size_t j = 1; j <= n_jobs; j++) {
    EXPECT_GT(r.job_cache[j].fetched_bytes + r.job_cache[j].written_back_bytes, 0u)
        << "job " << j << " attributed no cache traffic";
  }
  // Footprint peaks charge the allocator (the block tag sticks until
  // eviction), so a job re-reading blocks the fill phase cached can
  // legitimately show peak 0 — assert the charge exists in aggregate.
  std::uint64_t peak_total = 0;
  for (const auto& row : r.job_cache) peak_total += row.cached_bytes_peak;
  EXPECT_GT(peak_total, 0u);
}

TEST(Serving, CacheJobQuotaRecyclesOwnBlocksAndStaysCorrect) {
  constexpr std::size_t n_jobs = 4, n_per_job = 8192;  // 32 KiB slice per job
  const serve_run r = run_serve(n_jobs, n_per_job, [](ityr::common::options& o) {
    o.cache_size = 32 * ityr::common::KiB;  // 8 blocks: real pressure
    o.cache_job_quota = 8 * ityr::common::KiB;  // 2 blocks per job
  });
  for (const auto& jr : r.records) EXPECT_TRUE(jr.done);
  EXPECT_EQ(r.final_state, serve_oracle(n_jobs, n_per_job));
  // Recycle candidates must be clean: under the async release protocol the
  // over-quota job's LRU blocks can still be write-back-in-flight at
  // allocation time, so the quota legitimately falls through to the normal
  // eviction path. Correctness above is asserted in both modes; activity
  // only where the mode guarantees clean candidates exist.
  const char* ar = std::getenv("ITYR_ASYNC_RELEASE");
  const bool async_on = ar != nullptr &&
                        (std::string(ar) == "1" || std::string(ar) == "true");
  if (!async_on) {
    std::uint64_t recycles = 0;
    for (const auto& row : r.job_cache) recycles += row.quota_recycles;
    EXPECT_GT(recycles, 0u) << "quota never bit under deliberate cache pressure";
  }
}

}  // namespace
