/// UTS-Mem demo (paper Section 6.3): build an unbalanced tree in global
/// memory with work-stolen noncollective allocations, then traverse it by
/// chasing global pointers — the cache-sensitive phase the paper measures.
///
///   $ ./uts_mem_demo [b0] [gen_mx] [seed]

#include <cstdio>
#include <cstdlib>

#include "itoyori/apps/uts.hpp"

int main(int argc, char** argv) {
  ityr::apps::uts_params p;
  p.b0 = argc > 1 ? std::strtod(argv[1], nullptr) : 4.0;
  p.gen_mx = argc > 2 ? std::atoi(argv[2]) : 11;
  p.root_seed = argc > 3 ? std::atoi(argv[3]) : 19;

  const std::uint64_t expect = ityr::apps::uts_count_serial(p);
  std::printf("UTS geometric tree: b0=%.1f gen_mx=%d seed=%d -> %llu nodes\n", p.b0, p.gen_mx,
              p.root_seed, static_cast<unsigned long long>(expect));

  for (bool cached : {false, true}) {
    ityr::options opt = ityr::options::from_env();
    opt.policy = cached ? ityr::cache_policy::write_back_lazy : ityr::cache_policy::none;
    opt.noncoll_heap_per_rank = std::max<std::size_t>(
        opt.noncoll_heap_per_rank,
        expect * 96 / static_cast<std::size_t>(opt.n_ranks()) + ityr::common::MiB);
    ityr::runtime rt(opt);

    double build_time = 0, traverse_time = 0;
    std::uint64_t built = 0, traversed = 0;
    rt.spmd([&] {
      const double t0 = ityr::rt().eng().now();
      auto tree = ityr::root_exec([p] { return ityr::apps::uts_mem_build(p); });
      ityr::barrier();
      const double t1 = ityr::rt().eng().now();
      auto count = ityr::root_exec([tree] { return ityr::apps::uts_mem_traverse(tree.root); });
      ityr::barrier();
      const double t2 = ityr::rt().eng().now();
      if (ityr::my_rank() == 0) {
        build_time = t1 - t0;
        traverse_time = t2 - t1;
        built = tree.n_nodes;
        traversed = count;
      }
    });

    std::printf("%-10s build %8.4f s   traverse %8.4f s   throughput %10.0f nodes/s   %s\n",
                cached ? "cache" : "no-cache", build_time, traverse_time,
                static_cast<double>(traversed) / traverse_time,
                (built == expect && traversed == expect) ? "ok" : "COUNT MISMATCH");
  }
  return 0;
}
