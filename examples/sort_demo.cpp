/// Cilksort demo (paper Fig. 1 / Section 6.2): sort a global array with the
/// recursive parallel merge sort, comparing cache policies on the simulated
/// cluster.
///
///   $ ./sort_demo [n_elements] [cutoff]

#include <cstdio>
#include <cstdlib>

#include "itoyori/apps/cilksort.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : (std::size_t{1} << 20);
  const std::size_t cutoff = argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 16384;

  std::printf("cilksort: %zu elements, cutoff %zu\n", n, cutoff);
  std::printf("%-18s %12s %10s %10s %10s\n", "policy", "time[s]", "steals", "fetchMB", "wbMB");

  for (auto policy : {ityr::cache_policy::none, ityr::cache_policy::write_through,
                      ityr::cache_policy::write_back, ityr::cache_policy::write_back_lazy}) {
    ityr::options opt = ityr::options::from_env();
    opt.policy = policy;
    opt.coll_heap_per_rank =
        std::max<std::size_t>(opt.coll_heap_per_rank,
                              4 * n * sizeof(std::uint32_t) / static_cast<std::size_t>(opt.n_ranks()));
    ityr::runtime rt(opt);

    double elapsed = 0;
    bool ok = false;
    rt.spmd([&] {
      auto a = ityr::coll_new<std::uint32_t>(n);
      auto b = ityr::coll_new<std::uint32_t>(n);
      const double t0 = ityr::rt().eng().now();
      bool sorted = ityr::root_exec([=] {
        ityr::apps::cilksort_generate(a, n, 42, 8192);
        ityr::apps::cilksort(ityr::global_span<std::uint32_t>(a, n),
                             ityr::global_span<std::uint32_t>(b, n), cutoff);
        return ityr::apps::cilksort_validate(a, n, 42, 8192);
      });
      ityr::barrier();
      if (ityr::my_rank() == 0) {
        elapsed = ityr::rt().eng().now() - t0;
        ok = sorted;
      }
      ityr::coll_delete(a, n);
      ityr::coll_delete(b, n);
    });

    const auto cst = rt.pgas().aggregate_stats();
    const auto sst = rt.sched().get_stats();
    std::printf("%-18s %12.4f %10llu %10.1f %10.1f  %s\n", ityr::common::to_string(policy),
                elapsed, static_cast<unsigned long long>(sst.steals),
                static_cast<double>(cst.fetched_bytes) / 1e6,
                static_cast<double>(cst.written_back_bytes + cst.write_through_bytes) / 1e6,
                ok ? "ok" : "SORT FAILED");
  }
  return 0;
}
