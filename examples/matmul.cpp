/// Blocked matrix multiply over global memory: C = A * B with a recursive
/// 2x2 decomposition down to cache-friendly tiles, each tile product
/// executed under checkout/checkin. Demonstrates task-parallel dense
/// compute with working sets far larger than the per-rank cache.
///
///   $ ./matmul [n]        (n x n doubles; default 512)

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "itoyori/itoyori.hpp"

namespace {

constexpr std::size_t kTile = 64;

struct gmat {
  ityr::global_ptr<double> data;
  std::size_t ld = 0;  // leading dimension (row stride)

  ityr::global_ptr<double> row(std::size_t i) const {
    return data + static_cast<std::ptrdiff_t>(i * ld);
  }
  gmat sub(std::size_t i, std::size_t j) const {  // quadrant offset
    return {data + static_cast<std::ptrdiff_t>(i * ld + j), ld};
  }
};

/// C[0..n)x[0..n) += A * B, tiles running as leaf tasks. Writers own
/// disjoint C quadrants in the two parallel phases, so the computation is
/// data-race-free.
void matmul_rec(gmat a, gmat b, gmat c, std::size_t n) {
  if (n <= kTile) {
    // One tile: checkout row blocks (rows are contiguous; a tile is ld-strided,
    // so check out row by row of the tile through a whole-rows window).
    for (std::size_t i = 0; i < n; i++) {
      ityr::with_checkout(a.row(i), n, ityr::access_mode::read, [&](const double* ai) {
        ityr::with_checkout(c.row(i), n, ityr::access_mode::read_write, [&](double* ci) {
          for (std::size_t k = 0; k < n; k++) {
            ityr::with_checkout(b.row(k), n, ityr::access_mode::read, [&](const double* bk) {
              const double aik = ai[k];
              for (std::size_t j = 0; j < n; j++) ci[j] += aik * bk[j];
            });
          }
        });
      });
    }
    return;
  }
  const std::size_t h = n / 2;
  // C11 += A11*B11 ; C12 += A11*B12 ; C21 += A21*B11 ; C22 += A21*B12
  ityr::parallel_invoke([=] { matmul_rec(a.sub(0, 0), b.sub(0, 0), c.sub(0, 0), h); },
                        [=] { matmul_rec(a.sub(0, 0), b.sub(0, h), c.sub(0, h), h); },
                        [=] { matmul_rec(a.sub(h, 0), b.sub(0, 0), c.sub(h, 0), h); },
                        [=] { matmul_rec(a.sub(h, 0), b.sub(0, h), c.sub(h, h), h); });
  // Second half of the k-dimension (same C quadrants, sequential phase).
  ityr::parallel_invoke([=] { matmul_rec(a.sub(0, h), b.sub(h, 0), c.sub(0, 0), h); },
                        [=] { matmul_rec(a.sub(0, h), b.sub(h, h), c.sub(0, h), h); },
                        [=] { matmul_rec(a.sub(h, h), b.sub(h, 0), c.sub(h, 0), h); },
                        [=] { matmul_rec(a.sub(h, h), b.sub(h, h), c.sub(h, h), h); });
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 512;

  ityr::options opt = ityr::options::from_env();
  opt.coll_heap_per_rank = std::max<std::size_t>(
      opt.coll_heap_per_rank,
      4 * n * n * sizeof(double) / static_cast<std::size_t>(opt.n_ranks()) + 8 * ityr::common::MiB);
  ityr::runtime rt(opt);

  rt.spmd([n] {
    auto A = ityr::coll_new<double>(n * n);
    auto B = ityr::coll_new<double>(n * n);
    auto C = ityr::coll_new<double>(n * n);

    const double t0 = ityr::rt().eng().now();
    double max_err = ityr::root_exec([=] {
      // A[i][k] = f(i,k), B chosen so that C has a closed form:
      // B = identity => C == A. Keeps verification exact and O(n^2).
      ityr::parallel_for_each(A, n * n, 8192, ityr::access_mode::write,
                              [n](double& x, std::size_t idx) {
                                x = std::sin(static_cast<double>(idx % (n + 7))) + 2.0;
                              });
      ityr::parallel_for_each(B, n * n, 8192, ityr::access_mode::write,
                              [n](double& x, std::size_t idx) {
                                x = (idx / n == idx % n) ? 1.0 : 0.0;
                              });
      ityr::parallel_fill(C, n * n, 8192, 0.0);

      matmul_rec({A, n}, {B, n}, {C, n}, n);

      // C must equal A exactly (B = I).
      struct err_acc {
        double max_abs = 0;
      };
      double worst = 0;
      for (std::size_t base = 0; base < n * n; base += 8192) {
        const std::size_t len = std::min<std::size_t>(8192, n * n - base);
        ityr::with_checkout(A + static_cast<std::ptrdiff_t>(base), len,
                            ityr::access_mode::read, [&](const double* pa) {
                              ityr::with_checkout(C + static_cast<std::ptrdiff_t>(base), len,
                                                  ityr::access_mode::read,
                                                  [&](const double* pc) {
                                                    for (std::size_t i = 0; i < len; i++) {
                                                      worst = std::max(
                                                          worst, std::fabs(pa[i] - pc[i]));
                                                    }
                                                  });
                            });
      }
      return worst;
    });
    ityr::barrier();
    const double t1 = ityr::rt().eng().now();

    if (ityr::my_rank() == 0) {
      std::printf("matmul %zux%zu: %.4f virtual s, %.2f GFLOP, max |C-A| = %.2e %s\n", n, n,
                  t1 - t0, 2.0 * static_cast<double>(n) * n * n / 1e9, max_err,
                  max_err < 1e-12 ? "(ok)" : "(WRONG)");
    }
    ityr::barrier();
    ityr::coll_delete(A, n * n);
    ityr::coll_delete(B, n * n);
    ityr::coll_delete(C, n * n);
  });
  return 0;
}
