/// N-body demo (paper Section 6.4): Laplace FMM on the simulated cluster —
/// octree build, work-stolen dual tree traversal, accuracy check against
/// direct summation, and a comparison with the static ("MPI-style")
/// partitioning baseline including its idleness (paper Table 2).
///
///   $ ./nbody_fmm [n_bodies] [theta]

#include <cstdio>
#include <cstdlib>

#include "itoyori/apps/fmm/fmm.hpp"

namespace f = ityr::apps::fmm;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 20000;
  f::fmm_config cfg;
  cfg.theta = argc > 2 ? std::strtod(argv[2], nullptr) : 0.5;
  cfg.ncrit = 32;
  cfg.nspawn = 1000;

  ityr::options opt = ityr::options::from_env();
  opt.coll_heap_per_rank = std::max<std::size_t>(
      opt.coll_heap_per_rank, n * 512 / static_cast<std::size_t>(opt.n_ranks()) + 8 * ityr::common::MiB);
  ityr::runtime rt(opt);

  std::printf("FMM: %zu bodies, theta=%.2f, ncrit=%u, P=%d, %d nodes x %d ranks\n", n, cfg.theta,
              cfg.ncrit, f::kP, opt.n_nodes, opt.ranks_per_node);

  rt.spmd([&] {
    auto bodies = ityr::coll_new<f::body>(n);
    ityr::root_exec([=] { f::fmm_generate_bodies(bodies, n, 42, 4096); });

    f::fmm_tree t = f::fmm_build_tree(bodies, n, cfg);
    if (ityr::my_rank() == 0) std::printf("octree: %zu cells\n", t.n_cells);

    // Work-stealing (Itoyori) execution.
    ityr::barrier();
    const double t0 = ityr::rt().eng().now();
    auto err = ityr::root_exec([=] {
      f::fmm_solve(t);
      return f::fmm_check(t, 64);
    });
    ityr::barrier();
    const double t1 = ityr::rt().eng().now();

    // Static owner-computes baseline.
    auto res = f::fmm_solve_static(t);
    ityr::barrier();

    if (ityr::my_rank() == 0) {
      std::printf("work-stealing solve: %8.4f s   pot err %.2e  grad err %.2e\n", t1 - t0,
                  err.pot, err.grad);
      std::printf("static baseline:     %8.4f s   idleness %.3f\n", res.makespan,
                  res.idleness());
    }
    ityr::barrier();
    f::fmm_destroy_tree(t);
    ityr::coll_delete(bodies, n);
  });
  return 0;
}
