/// Quickstart: the smallest useful Itoyori program.
///
/// Builds a simulated 2-node x 4-rank cluster, allocates a global array,
/// fills it and reduces over it with fork-join tasks, and shows explicit
/// checkout/checkin access — the paper's programming model in ~60 lines.
///
///   $ ./quickstart
///
/// Environment knobs (see src/itoyori/common/options.hpp): ITYR_N_NODES,
/// ITYR_RANKS_PER_NODE, ITYR_POLICY (none|write_through|write_back|
/// write_back_lazy), ITYR_CACHE_SIZE, ...

#include <cstdio>

#include "itoyori/core/ityr.hpp"

int main() {
  ityr::options opt = ityr::options::from_env();
  ityr::runtime rt(opt);

  rt.spmd([] {
    constexpr std::size_t n = 1 << 20;

    // Collective allocation: the array is distributed block-cyclically over
    // every rank's home memory.
    ityr::global_ptr<double> a = ityr::coll_new<double>(n);

    // Switch from the SPMD region into the fork-join region. The closure
    // runs once as the root task; the runtime work-steals subtasks across
    // the (simulated) cluster, caching global memory accesses.
    double sum = ityr::root_exec([=] {
      ityr::parallel_for_each(a, n, /*grain=*/8192, ityr::access_mode::write,
                              [](double& x, std::size_t i) { x = 1.0 / static_cast<double>(i + 1); });
      return ityr::parallel_reduce(
          a, n, 8192, 0.0, [](double x) { return x; }, [](double x, double y) { return x + y; });
    });

    if (ityr::my_rank() == 0) {
      std::printf("harmonic(%zu) = %.6f (expect ~14.440)\n", n, sum);

      // Explicit checkout/checkin: direct, zero-copy access to cached global
      // memory through ordinary pointers (paper Section 3.3).
      ityr::with_checkout(a, 4, ityr::access_mode::read, [](const double* p) {
        std::printf("a[0..3] = %.3f %.3f %.3f %.3f\n", p[0], p[1], p[2], p[3]);
      });
    }
    ityr::barrier();
    ityr::coll_delete(a, n);
  });

  std::printf("simulated cluster: %d nodes x %d ranks/node, virtual time %.3f ms\n", opt.n_nodes,
              opt.ranks_per_node, rt.eng().max_clock() * 1e3);
  return 0;
}
