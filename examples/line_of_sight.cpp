/// Line-of-sight: the classic prefix-scan application (Blelloch). Given
/// terrain altitudes along a ray from an observer, point i is visible iff
/// its viewing angle exceeds every angle before it — a running-maximum scan
/// followed by an element-wise comparison, all over global memory.
///
///   $ ./line_of_sight [n_points]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "itoyori/common/rng.hpp"
#include "itoyori/core/ityr.hpp"
#include "itoyori/core/scan.hpp"

namespace {
constexpr std::size_t grain = 8192;
}

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : (std::size_t{1} << 20);

  ityr::options opt = ityr::options::from_env();
  ityr::runtime rt(opt);

  rt.spmd([n] {
    auto angle = ityr::coll_new<double>(n);
    auto prefix_max = ityr::coll_new<double>(n);

    ityr::root_exec([=] {
      // Synthetic rolling terrain: smooth hills with pseudo-random bumps.
      ityr::parallel_for_each(angle, n, grain, ityr::access_mode::write,
                              [n](double& a, std::size_t i) {
                                std::uint64_t s = 0x9e3779b97f4a7c15ULL * (i + 1);
                                const double noise =
                                    static_cast<double>(ityr::common::splitmix64(s) >> 40);
                                // Terrain starts well away from the observer so
                                // early samples do not trivially dominate the
                                // running maximum.
                                const double x =
                                    static_cast<double>(i + 1) + static_cast<double>(n) / 4;
                                const double height =
                                    200 * std::sin(x / 20000) + 40 * std::sin(x / 900) +
                                    noise / 1e4 + 300 * (x / static_cast<double>(n));
                                a = std::atan2(height, x);  // viewing angle
                              });

      // Running maximum of the viewing angle.
      ityr::parallel_scan_inclusive(angle, prefix_max, n, grain, -1e300,
                                    [](double x, double y) { return std::max(x, y); });
    });

    // Point i is visible iff its angle equals the running max at i; count
    // with a chunked sweep holding both arrays under one task.
    long count = ityr::root_exec([=] {
      long total = 0;
      for (std::size_t base = 0; base < n; base += grain) {
        const std::size_t len = std::min(grain, n - base);
        ityr::with_checkout(
            angle + static_cast<std::ptrdiff_t>(base), len, ityr::access_mode::read,
            [&](const double* a) {
              ityr::with_checkout(prefix_max + static_cast<std::ptrdiff_t>(base), len,
                                  ityr::access_mode::read, [&](const double* m) {
                                    for (std::size_t i = 0; i < len; i++) {
                                      if (a[i] >= m[i]) total++;
                                    }
                                  });
            });
      }
      return total;
    });

    if (ityr::my_rank() == 0) {
      std::printf("terrain points: %zu, visible from origin: %ld (%.4f%%)\n", n, count,
                  100.0 * static_cast<double>(count) / static_cast<double>(n));
    }
    ityr::barrier();
    ityr::coll_delete(angle, n);
    ityr::coll_delete(prefix_max, n);
  });
  return 0;
}
