#pragma once

/// \file
/// Itoyori public API: global memory management, checkout/checkin access,
/// fork-join task parallelism, and high-level parallel patterns.
///
/// This is the header applications include. All functions must be called
/// from inside runtime::spmd() (i.e., on a simulated rank).

#include <memory>
#include <new>
#include <tuple>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "itoyori/core/global_ptr.hpp"
#include "itoyori/core/runtime.hpp"

namespace ityr {

using common::cache_policy;
using common::dist_policy;
using common::options;
using pgas::access_mode;

// ---------------------------------------------------------------------------
// topology
// ---------------------------------------------------------------------------

inline runtime& rt() { return runtime::instance(); }
inline int my_rank() { return rt().eng().my_rank(); }
inline int n_ranks() { return rt().eng().n_ranks(); }
inline int n_nodes() { return rt().opts().n_nodes; }

/// SPMD barrier with release/acquire fences.
inline void barrier() {
  common::profiler::maybe_scope sc(&rt().prof(), common::prof_event::spmd);
  rt().pgas().barrier();
}

// ---------------------------------------------------------------------------
// global memory allocation (paper Section 4.2)
// ---------------------------------------------------------------------------

/// Collectively allocate an array of `n` T across all ranks. Contents are
/// unspecified (like malloc: fresh pages are zero, reused pool space is
/// not). Collective allocation is a synchronization point (the underlying
/// MPI_Win_create is collective), so it carries barrier + fence semantics:
/// in particular, stale cache entries for previously freed space are
/// invalidated before the space can be reused.
template <typename T>
global_ptr<T> coll_new(std::size_t n, dist_policy policy) {
  common::profiler::maybe_scope sc(&rt().prof(), common::prof_event::spmd);
  rt().pgas().barrier();
  return global_ptr<T>(rt().pgas().heap().coll_alloc(n * sizeof(T), policy));
}

template <typename T>
global_ptr<T> coll_new(std::size_t n) {
  return coll_new<T>(n, rt().opts().default_dist);
}

/// Collectively free. The leading barrier flushes and invalidates every
/// rank's cache, so no dirty write-back can land on the region after it is
/// reused by a later allocation.
template <typename T>
void coll_delete(global_ptr<T> p, std::size_t /*n*/) {
  common::profiler::maybe_scope sc(&rt().prof(), common::prof_event::spmd);
  rt().pgas().barrier();
  rt().pgas().heap().coll_free(p.raw());
}

/// Noncollective allocation from the calling rank's local heap segment:
/// fine-grained, asynchronous, callable from any task (paper Section 4.2).
template <typename T>
global_ptr<T> noncoll_new(std::size_t n = 1) {
  return global_ptr<T>(rt().pgas().heap().alloc(n * sizeof(T)));
}

/// Free noncollectively allocated memory; any rank may call this.
template <typename T>
void noncoll_delete(global_ptr<T> p, std::size_t n = 1) {
  rt().pgas().heap().free(p.raw(), n * sizeof(T));
}

// ---------------------------------------------------------------------------
// checkout / checkin (paper Section 3.3)
// ---------------------------------------------------------------------------

/// Claim access to [p, p+n) in `mode`. Returns a raw pointer valid until the
/// matching checkin with identical arguments. Requires a caching policy;
/// under cache_policy::none use with_checkout()/get()/put(), which fall back
/// to GET/PUT semantics.
template <typename T>
T* checkout(global_ptr<T> p, std::size_t n, access_mode mode) {
  common::profiler::maybe_scope sc(&rt().prof(), common::prof_event::checkout);
  if (rt().opts().policy == cache_policy::none)
    throw common::api_error("checkout requires a caching policy (use with_checkout under none)");
  return reinterpret_cast<T*>(rt().pgas().checkout(p.raw(), n * sizeof(T), mode));
}

template <typename T>
void checkin(global_ptr<T> p, std::size_t n, access_mode mode) {
  common::profiler::maybe_scope sc(&rt().prof(), common::prof_event::checkin);
  rt().pgas().checkin(p.raw(), n * sizeof(T), mode);
}

/// RAII checkout guard exposing the checked-out region as a raw span.
template <typename T>
class checkout_span {
public:
  checkout_span(global_ptr<T> p, std::size_t n, access_mode mode)
      : p_(p), n_(n), mode_(mode), ptr_(checkout(p, n, mode)) {}
  ~checkout_span() {
    if (ptr_ != nullptr) checkin(p_, n_, mode_);
  }
  checkout_span(const checkout_span&) = delete;
  checkout_span& operator=(const checkout_span&) = delete;

  T* data() const { return ptr_; }
  std::size_t size() const { return n_; }
  T& operator[](std::size_t i) const {
    ITYR_CHECK(i < n_);
    return ptr_[i];
  }
  T* begin() const { return ptr_; }
  T* end() const { return ptr_ + n_; }

private:
  global_ptr<T> p_;
  std::size_t n_;
  access_mode mode_;
  T* ptr_;
};

/// Run `fn(T* data)` with [p, p+n) accessible in `mode`.
///
/// Under a caching policy this is checkout/fn/checkin (zero copy). Under
/// cache_policy::none it reproduces the paper's "No Cache" baseline: a user
/// buffer is allocated, GET fills it for read modes, fn runs on the buffer,
/// and PUT writes it back for write modes (Fig. 2a's double copy).
template <typename T, typename Fn>
decltype(auto) with_checkout(global_ptr<T> p, std::size_t n, access_mode mode, Fn&& fn) {
  if (rt().opts().policy == cache_policy::none) {
    // GET/PUT into a freshly allocated user buffer, as in the paper's
    // evaluation ("replacing the checkout/checkin calls with the GET/PUT
    // calls by allocating user buffers for them"). Note the paper's own
    // caveat (Section 6.4): for non-trivially-copyable T this baseline is
    // technically illegal C++ — data is moved as raw bytes.
    auto buf = std::make_unique<std::byte[]>(n * sizeof(T));
    T* data = reinterpret_cast<T*>(buf.get());
    if (mode != access_mode::write) {
      common::profiler::maybe_scope sc(&rt().prof(), common::prof_event::checkout);
      rt().pgas().get(p.raw(), data, n * sizeof(T));
    }
    if constexpr (std::is_void_v<decltype(fn(data))>) {
      fn(data);
      if (mode != access_mode::read) {
        common::profiler::maybe_scope sc(&rt().prof(), common::prof_event::checkin);
        rt().pgas().put(data, p.raw(), n * sizeof(T));
      }
      return;
    } else {
      auto r = fn(data);
      if (mode != access_mode::read) {
        common::profiler::maybe_scope sc(&rt().prof(), common::prof_event::checkin);
        rt().pgas().put(data, p.raw(), n * sizeof(T));
      }
      return r;
    }
  }
  T* ptr = checkout(p, n, mode);
  if constexpr (std::is_void_v<decltype(fn(ptr))>) {
    fn(ptr);
    checkin(p, n, mode);
  } else {
    auto r = fn(ptr);
    checkin(p, n, mode);
    return r;
  }
}

/// Load one element (profiled separately: the "Get" bar of Fig. 9, e.g. the
/// sparse loads of Cilksort's binary search).
template <typename T>
T get(global_ptr<T> p) {
  common::profiler::maybe_scope sc(&rt().prof(), common::prof_event::get);
  if (rt().opts().policy == cache_policy::none) {
    std::remove_const_t<T> v;
    rt().pgas().get(p.raw(), &v, sizeof(T));
    return v;
  }
  // Single-element loads are the classic front-table case (e.g. the sparse
  // probes of Cilksort's binary search hitting the same block repeatedly):
  // a memoized fully-valid block answers with one memcpy, no pin/unpin.
  if constexpr (std::is_trivially_copyable_v<std::remove_const_t<T>>) {
    std::remove_const_t<T> v;
    if (rt().pgas().get_fast(p.raw(), &v, sizeof(T))) return v;
  }
  const T* ptr =
      reinterpret_cast<const T*>(rt().pgas().checkout(p.raw(), sizeof(T), access_mode::read));
  std::remove_const_t<T> v = *ptr;
  rt().pgas().checkin(p.raw(), sizeof(T), access_mode::read);
  return v;
}

/// Store one element (profiled as "Put", distinct from "Get").
template <typename T>
void put(global_ptr<T> p, const T& v) {
  common::profiler::maybe_scope sc(&rt().prof(), common::prof_event::put);
  if (rt().opts().policy == cache_policy::none) {
    rt().pgas().put(&v, p.raw(), sizeof(T));
    return;
  }
  if constexpr (std::is_trivially_copyable_v<T>) {
    if (rt().pgas().put_fast(&v, p.raw(), sizeof(T))) return;
  }
  T* ptr = reinterpret_cast<T*>(rt().pgas().checkout(p.raw(), sizeof(T), access_mode::write));
  *ptr = v;
  rt().pgas().checkin(p.raw(), sizeof(T), access_mode::write);
}

/// Construct a T in noncollectively allocated global memory (supports
/// non-trivially-copyable types, paper Section 3.2).
template <typename T, typename... Args>
global_ptr<T> make_global(Args&&... args) {
  global_ptr<T> p = noncoll_new<T>(1);
  with_checkout(p, 1, access_mode::write,
                [&](T* ptr) { new (ptr) T(std::forward<Args>(args)...); });
  return p;
}

template <typename T>
void destroy_global(global_ptr<T> p) {
  with_checkout(p, 1, access_mode::read_write, [&](T* ptr) { ptr->~T(); });
  noncoll_delete(p, 1);
}

// ---------------------------------------------------------------------------
// fork-join tasking (paper Sections 2.1, 3.1)
// ---------------------------------------------------------------------------

namespace detail {

template <typename F>
sched::thread_handle fork_typed(F&& f) {
  using R = std::invoke_result_t<std::decay_t<F>>;
  if constexpr (std::is_void_v<R>) {
    return rt().sched().fork([fn = std::decay_t<F>(std::forward<F>(f))](sched::thread_state*) {
      fn();
    });
  } else {
    static_assert(sizeof(R) <= sched::thread_state::result_capacity,
                  "task result too large; return it through global memory");
    return rt().sched().fork([fn = std::decay_t<F>(std::forward<F>(f))](sched::thread_state* ts) {
      new (ts->result) R(fn());
    });
  }
}

template <typename R>
auto join_typed(sched::thread_handle& h) {
  auto& s = rt().sched();
  if constexpr (std::is_void_v<R>) {
    s.join(h);
    s.recycle(h);
    return std::monostate{};
  } else {
    s.join(h);
    R* p = std::launder(reinterpret_cast<R*>(h.ts->result));
    R r = std::move(*p);
    p->~R();
    s.recycle(h);
    return r;
  }
}

template <typename F>
auto run_last(F&& f) {
  using R = std::invoke_result_t<std::decay_t<F>>;
  if constexpr (std::is_void_v<R>) {
    f();
    return std::monostate{};
  } else {
    return f();
  }
}

template <typename F, typename... Rest>
auto parallel_invoke_impl(F&& f, Rest&&... rest) {
  using R = std::invoke_result_t<std::decay_t<F>>;
  if constexpr (sizeof...(Rest) == 0) {
    return std::make_tuple(run_last(std::forward<F>(f)));
  } else {
    // Child-first: fork f (it executes immediately; our continuation becomes
    // stealable), then process the remaining closures, then join.
    sched::thread_handle h = fork_typed(std::forward<F>(f));
    auto rest_results = parallel_invoke_impl(std::forward<Rest>(rest)...);
    auto r = join_typed<R>(h);
    return std::tuple_cat(std::make_tuple(std::move(r)), std::move(rest_results));
  }
}

template <typename... Fs>
inline constexpr bool all_void_v = (std::is_void_v<std::invoke_result_t<std::decay_t<Fs>>> && ...);

}  // namespace detail

/// Fork the given closures as parallel tasks and join them all (Fig. 1).
/// Returns std::tuple of the results (std::monostate for void closures), or
/// void if every closure returns void.
template <typename... Fs>
auto parallel_invoke(Fs&&... fs) {
  static_assert(sizeof...(Fs) >= 1);
  if constexpr (detail::all_void_v<Fs...>) {
    detail::parallel_invoke_impl(std::forward<Fs>(fs)...);
  } else {
    return detail::parallel_invoke_impl(std::forward<Fs>(fs)...);
  }
}

/// Switch from the SPMD region to the fork-join region: run `f` once as the
/// root thread (it may migrate between ranks); all ranks participate as
/// workers and all receive a copy of the result.
template <typename F>
auto root_exec(F&& f) {
  using R = std::invoke_result_t<std::decay_t<F>>;
  auto& r = rt();
  if constexpr (std::is_void_v<R>) {
    r.jobs().run_single([fn = std::decay_t<F>(std::forward<F>(f))] { fn(); });
  } else {
    static_assert(sizeof(R) <= runtime::root_result_capacity,
                  "root result too large; return it through global memory");
    static_assert(std::is_copy_constructible_v<R>);
    void* buf = r.root_result_buf();
    r.jobs().run_single(
        [fn = std::decay_t<F>(std::forward<F>(f)), buf] { new (buf) R(fn()); });
    // Every rank copies the result out, then exactly one destroys it.
    R result = *std::launder(reinterpret_cast<R*>(buf));
    r.pgas().barrier();
    if (my_rank() == 0) std::launder(reinterpret_cast<R*>(buf))->~R();
    r.pgas().barrier();
    return result;
  }
}

/// Multi-tenant serving (ITYR_SERVE, docs/internals.md "Multi-job serving"):
/// collective — admit `jobs` as an open-loop stream of independent fork-join
/// jobs into one scheduler region and return when all have completed. Query
/// results through rt().jobs() (records, latency quantiles, jobs/sec).
inline void serve(std::vector<sched::job_spec> jobs) { rt().jobs().serve(std::move(jobs)); }

// ---------------------------------------------------------------------------
// high-level parallel patterns (paper Section 3.3: automatic chunking)
// ---------------------------------------------------------------------------

/// Apply `fn(T* chunk, std::size_t len, std::size_t base_index)` over
/// [first, first+n) in `mode`, recursively splitting until chunks are at
/// most `grain` elements, each leaf processed under one checkout. The grain
/// bounds the per-task checkout size, so arrays far larger than the cache
/// can be swept (Section 3.3).
template <typename T, typename Fn>
void for_each_chunk(global_ptr<T> first, std::size_t n, std::size_t grain, access_mode mode,
                    Fn fn, std::size_t base_index = 0) {
  if (n == 0) return;
  ITYR_CHECK(grain > 0);
  if (n <= grain) {
    with_checkout(first, n, mode, [&](T* p) { fn(p, n, base_index); });
    return;
  }
  const std::size_t half = n / 2;
  parallel_invoke(
      [=] { for_each_chunk(first, half, grain, mode, fn, base_index); },
      [=] {
        for_each_chunk(first + static_cast<std::ptrdiff_t>(half), n - half, grain, mode, fn,
                       base_index + half);
      });
}

/// Element-wise parallel for: fn(T& element, std::size_t index).
template <typename T, typename Fn>
void parallel_for_each(global_ptr<T> first, std::size_t n, std::size_t grain, access_mode mode,
                       Fn fn) {
  for_each_chunk(first, n, grain, mode, [fn](T* p, std::size_t len, std::size_t base) {
    for (std::size_t i = 0; i < len; i++) fn(p[i], base + i);
  });
}

/// Parallel reduction over global memory: acc = combine(acc, transform(x)).
template <typename T, typename Acc, typename Transform, typename Combine>
Acc parallel_reduce(global_ptr<T> first, std::size_t n, std::size_t grain, Acc init,
                    Transform transform, Combine combine) {
  static_assert(sizeof(Acc) <= sched::thread_state::result_capacity);
  if (n == 0) return init;
  if (n <= grain) {
    return with_checkout(first, n, access_mode::read, [&](T* p) {
      Acc acc = init;
      for (std::size_t i = 0; i < n; i++) acc = combine(acc, transform(p[i]));
      return acc;
    });
  }
  const std::size_t half = n / 2;
  auto [l, r2] = parallel_invoke(
      [=] { return parallel_reduce(first, half, grain, init, transform, combine); },
      [=] {
        return parallel_reduce(first + static_cast<std::ptrdiff_t>(half), n - half, grain, init,
                               transform, combine);
      });
  return combine(l, r2);
}

/// Fill [first, first+n) with `value` in parallel.
template <typename T>
void parallel_fill(global_ptr<T> first, std::size_t n, std::size_t grain, const T& value) {
  for_each_chunk(first, n, grain, access_mode::write,
                 [value](T* p, std::size_t len, std::size_t) {
                   for (std::size_t i = 0; i < len; i++) p[i] = value;
                 });
}

// ---- global_span convenience overloads ----

template <typename T, typename Fn>
void parallel_for_each(global_span<T> s, std::size_t grain, access_mode mode, Fn fn) {
  parallel_for_each(s.data(), s.size(), grain, mode, std::move(fn));
}

template <typename T, typename Acc, typename Transform, typename Combine>
Acc parallel_reduce(global_span<T> s, std::size_t grain, Acc init, Transform transform,
                    Combine combine) {
  return parallel_reduce(s.data(), s.size(), grain, init, std::move(transform),
                         std::move(combine));
}

template <typename T>
void parallel_fill(global_span<T> s, std::size_t grain, const T& value) {
  parallel_fill(s.data(), s.size(), grain, value);
}

/// Parallel transform from one global array into another (element-wise).
template <typename T, typename U, typename Fn>
void parallel_transform(global_ptr<T> in, global_ptr<U> out, std::size_t n, std::size_t grain,
                        Fn fn) {
  if (n == 0) return;
  if (n <= grain) {
    with_checkout(in, n, access_mode::read, [&](T* pi) {
      with_checkout(out, n, access_mode::write, [&](U* po) {
        for (std::size_t i = 0; i < n; i++) po[i] = fn(pi[i]);
      });
    });
    return;
  }
  const std::size_t half = n / 2;
  parallel_invoke([=] { parallel_transform(in, out, half, grain, fn); },
                  [=] {
                    parallel_transform(in + static_cast<std::ptrdiff_t>(half),
                                       out + static_cast<std::ptrdiff_t>(half), n - half, grain,
                                       fn);
                  });
}

}  // namespace ityr
