#pragma once

#include <cstddef>

#include "itoyori/core/ityr.hpp"

namespace ityr {

/// A dynamically sized array in global memory.
///
/// The handle itself is a trivially copyable value (pointer + sizes) that
/// can be stored inside other global objects — the role vector members play
/// in ExaFMM's octree cells (paper Section 6.4). The element buffer is
/// noncollectively allocated; all element access goes through
/// checkout/checkin, so elements keep stable global addresses for their
/// whole lifetime (paper Section 3.2).
///
/// Ownership is explicit: destroy() frees the buffer (handles are values
/// and may be freely copied, so no RAII here — mirroring how global
/// pointers behave). Mutating operations are not internally synchronized;
/// callers must ensure data-race-freedom like for any global memory.
template <typename T>
class global_vector {
  static_assert(std::is_trivially_copyable_v<T>,
                "global_vector elements are moved with raw-byte transfers on "
                "reallocation; store non-trivially-copyable objects via "
                "make_global instead");

public:
  global_vector() = default;

  explicit global_vector(std::size_t n) { resize(n); }

  global_ptr<T> data() const { return data_; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  global_ptr<T> ptr(std::size_t i) const {
    ITYR_CHECK(i < size_);
    return data_ + static_cast<std::ptrdiff_t>(i);
  }

  /// Read / write one element (convenience; prefer with_checkout for bulk).
  T get(std::size_t i) const { return ityr::get(ptr(i)); }
  void put(std::size_t i, const T& v) { ityr::put(ptr(i), v); }

  void reserve(std::size_t n) {
    if (n <= capacity_) return;
    std::size_t new_cap = capacity_ == 0 ? 8 : capacity_;
    while (new_cap < n) new_cap *= 2;
    global_ptr<T> new_data = noncoll_new<T>(new_cap);
    if (size_ > 0) {
      // Relocate as raw bytes (T is trivially copyable), chunked so huge
      // vectors do not overflow the cache.
      constexpr std::size_t chunk = 4096;
      for (std::size_t base = 0; base < size_; base += chunk) {
        const std::size_t len = std::min(chunk, size_ - base);
        with_checkout(data_ + static_cast<std::ptrdiff_t>(base), len, access_mode::read,
                      [&](const T* src) {
                        with_checkout(new_data + static_cast<std::ptrdiff_t>(base), len,
                                      access_mode::write,
                                      [&](T* dst) { std::copy(src, src + len, dst); });
                      });
      }
    }
    if (data_) noncoll_delete(data_, capacity_);
    data_ = new_data;
    capacity_ = new_cap;
  }

  void resize(std::size_t n) {
    reserve(n);
    size_ = n;
  }

  void push_back(const T& v) {
    reserve(size_ + 1);
    with_checkout(data_ + static_cast<std::ptrdiff_t>(size_), 1, access_mode::write,
                  [&](T* p) { *p = v; });
    size_++;
  }

  void clear() { size_ = 0; }

  /// Free the element buffer. The handle becomes empty.
  void destroy() {
    if (data_) noncoll_delete(data_, capacity_);
    data_ = global_ptr<T>{};
    size_ = 0;
    capacity_ = 0;
  }

  friend bool operator==(const global_vector&, const global_vector&) = default;

private:
  global_ptr<T> data_{};
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace ityr
