#include "itoyori/core/metrics.hpp"

#include <cstdio>
#include <functional>

#include "itoyori/core/runtime.hpp"

namespace ityr {

const metric_series* metrics_snapshot::find(const std::string& name) const {
  for (const metric_series& s : series_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const metric_histogram* metrics_snapshot::find_histogram(const std::string& name) const {
  for (const metric_histogram& h : histograms_) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

metrics_snapshot metrics_snapshot::delta(const metrics_snapshot& base) const {
  metrics_snapshot out;
  for (const metric_series& s : series_) {
    metric_series d = s;
    const metric_series* b = base.find(s.name);
    if (b != nullptr) {
      const std::size_t n = std::min(d.per_rank.size(), b->per_rank.size());
      for (std::size_t i = 0; i < n; i++) d.per_rank[i] -= b->per_rank[i];
    }
    out.series_.push_back(std::move(d));
  }
  for (const metric_histogram& h : histograms_) {
    metric_histogram d = h;
    const metric_histogram* b = base.find_histogram(h.name);
    if (b != nullptr && b->hist.n_buckets() == d.hist.n_buckets()) d.hist.subtract(b->hist);
    out.histograms_.push_back(std::move(d));
  }
  // Hot-block entries are cumulative rankings and job rows are lifecycle
  // records, not counters: the newer snapshot's view passes through unchanged.
  out.hot_blocks_ = hot_blocks_;
  out.jobs_ = jobs_;
  return out;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out += c;
    }
  }
}

void append_value(std::string& out, double v, bool integral) {
  char buf[64];
  if (integral) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9f", v);
  }
  out += buf;
}

}  // namespace

std::string metrics_snapshot::to_json() const {
  std::string out;
  out.reserve(256 + series_.size() * 128 + histograms_.size() * 256);
  const std::size_t n_ranks = series_.empty() ? 0 : series_.front().per_rank.size();
  out += "{\n\"schema\": \"itoyori.metrics.v3\",\n\"schema_version\": 3,\n\"n_ranks\": ";
  out += std::to_string(n_ranks);
  out += ",\n\"metrics\": [\n";
  for (std::size_t i = 0; i < series_.size(); i++) {
    const metric_series& s = series_[i];
    out += "  {\"name\": \"";
    append_escaped(out, s.name);
    out += "\", \"total\": ";
    append_value(out, s.total(), s.integral);
    out += ", \"per_rank\": [";
    for (std::size_t r = 0; r < s.per_rank.size(); r++) {
      if (r > 0) out += ", ";
      append_value(out, s.per_rank[r], s.integral);
    }
    out += "]}";
    out += i + 1 < series_.size() ? ",\n" : "\n";
  }
  out += "],\n\"histograms\": [\n";
  for (std::size_t i = 0; i < histograms_.size(); i++) {
    const common::log_histogram& h = histograms_[i].hist;
    out += "  {\"name\": \"";
    append_escaped(out, histograms_[i].name);
    out += "\", \"count\": ";
    append_value(out, static_cast<double>(h.count()), true);
    out += ", \"min_value\": ";
    append_value(out, h.min_value(), false);
    out += ", \"p50\": ";
    append_value(out, h.percentile(50), false);
    out += ", \"p90\": ";
    append_value(out, h.percentile(90), false);
    out += ", \"p99\": ";
    append_value(out, h.percentile(99), false);
    out += ", \"buckets\": [";
    bool first = true;
    // Sparse encoding: [index, count] pairs of the nonzero buckets only
    // (512-bucket geometries would otherwise dominate the file).
    for (std::size_t b = 0; b < h.n_buckets(); b++) {
      if (h.bucket_count(b) == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += "[" + std::to_string(b) + ", " + std::to_string(h.bucket_count(b)) + "]";
    }
    out += "]}";
    out += i + 1 < histograms_.size() ? ",\n" : "\n";
  }
  out += "]";
  // Only present when ITYR_SERVE admitted jobs, so single-job files stay
  // byte-identical to pre-serving ones (bar the schema version).
  if (!jobs_.empty()) {
    out += ",\n\"jobs\": [\n";
    for (std::size_t i = 0; i < jobs_.size(); i++) {
      const metric_job_row& j = jobs_[i];
      out += "  {\"name\": \"";
      append_escaped(out, j.name);
      out += "\", \"id\": " + std::to_string(j.id);
      out += ", \"done\": ";
      out += j.done ? "true" : "false";
      const auto field = [&](const char* k, double v, bool integral) {
        out += ", \"";
        out += k;
        out += "\": ";
        append_value(out, v, integral);
      };
      field("t_admit_s", j.t_admit_s, false);
      field("t_start_s", j.t_start_s, false);
      field("t_complete_s", j.t_complete_s, false);
      field("latency_s", j.latency_s, false);
      field("busy_s", j.busy_s, false);
      field("span_s", j.span_s, false);
      field("fetched_bytes", static_cast<double>(j.fetched_bytes), true);
      field("written_back_bytes", static_cast<double>(j.written_back_bytes), true);
      field("block_fetches", static_cast<double>(j.block_fetches), true);
      field("cached_bytes_peak", static_cast<double>(j.cached_bytes_peak), true);
      field("quota_recycles", static_cast<double>(j.quota_recycles), true);
      out += "}";
      out += i + 1 < jobs_.size() ? ",\n" : "\n";
    }
    out += "]";
  }
  // Only present when ITYR_HOT_BLOCKS_TOPN produced entries, so files written
  // with placement off stay byte-identical to pre-placement ones.
  if (!hot_blocks_.empty()) {
    out += ",\n\"hot_blocks\": [\n";
    for (std::size_t i = 0; i < hot_blocks_.size(); i++) {
      const metric_hot_block& hb = hot_blocks_[i];
      out += "  {\"name\": \"";
      append_escaped(out, hb.name);
      out += "\", \"owner\": " + std::to_string(hb.owner);
      // Hex string, not a number: a wide mask would lose bits past 2^53 in a
      // double, and string leaves are ignored by tools/stats_diff anyway.
      char mask[32];
      std::snprintf(mask, sizeof(mask), "0x%llx",
                    static_cast<unsigned long long>(hb.reader_mask));
      out += ", \"reader_mask\": \"" + std::string(mask) + "\"";
      out += ", \"fetch_bytes\": " + std::to_string(hb.fetch_bytes);
      out += ", \"writeback_bytes\": " + std::to_string(hb.writeback_bytes);
      out += "}";
      out += i + 1 < hot_blocks_.size() ? ",\n" : "\n";
    }
    out += "]";
  }
  out += "\n}\n";
  return out;
}

bool metrics_snapshot::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "ityr: cannot open stats output '%s'\n", path.c_str());
    return false;
  }
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "ityr: short write on stats output '%s'\n", path.c_str());
  return ok;
}

metrics_snapshot collect_metrics(runtime& rt) {
  const int n = rt.eng().n_ranks();
  metrics_snapshot snap;

  const auto add = [&](const char* name, bool integral,
                       const std::function<double(int)>& value_of) {
    std::vector<double> v(static_cast<std::size_t>(n));
    for (int r = 0; r < n; r++) v[static_cast<std::size_t>(r)] = value_of(r);
    snap.add(name, integral, std::move(v));
  };
  const auto u64 = [](std::uint64_t v) { return static_cast<double>(v); };

  // --- software cache (pgas::cache_system::stats) ---
  const auto cst = [&](int r) -> const pgas::cache_system::stats& {
    return rt.pgas().cache_of(r).get_stats();
  };
  add("cache.checkouts", true, [&](int r) { return u64(cst(r).checkouts); });
  add("cache.checkins", true, [&](int r) { return u64(cst(r).checkins); });
  add("cache.block_visits", true, [&](int r) { return u64(cst(r).block_visits); });
  add("cache.block_hits", true, [&](int r) { return u64(cst(r).block_hits); });
  add("cache.block_misses", true, [&](int r) { return u64(cst(r).block_misses); });
  add("cache.write_skips", true, [&](int r) { return u64(cst(r).write_skips); });
  add("cache.fast_path_hits", true, [&](int r) { return u64(cst(r).fast_path_hits); });
  add("cache.front_table_conflicts", true,
      [&](int r) { return u64(cst(r).front_table_conflicts); });
  add("cache.coalesced_messages", true, [&](int r) { return u64(cst(r).coalesced_messages); });
  add("cache.fetched_bytes", true, [&](int r) { return u64(cst(r).fetched_bytes); });
  add("cache.written_back_bytes", true, [&](int r) { return u64(cst(r).written_back_bytes); });
  add("cache.write_through_bytes", true, [&](int r) { return u64(cst(r).write_through_bytes); });
  add("cache.cache_evictions", true, [&](int r) { return u64(cst(r).cache_evictions); });
  add("cache.home_evictions", true, [&](int r) { return u64(cst(r).home_evictions); });
  add("cache.releases", true, [&](int r) { return u64(cst(r).releases); });
  add("cache.acquires", true, [&](int r) { return u64(cst(r).acquires); });
  add("cache.lazy_release_waits", true, [&](int r) { return u64(cst(r).lazy_release_waits); });
  add("cache.prefetch_issued", true, [&](int r) { return u64(cst(r).prefetch_issued); });
  add("cache.prefetch_issued_bytes", true,
      [&](int r) { return u64(cst(r).prefetch_issued_bytes); });
  add("cache.prefetch_useful_bytes", true,
      [&](int r) { return u64(cst(r).prefetch_useful_bytes); });
  add("cache.prefetch_wasted_bytes", true,
      [&](int r) { return u64(cst(r).prefetch_wasted_bytes); });
  add("cache.prefetch_late", true, [&](int r) { return u64(cst(r).prefetch_late); });
  add("cache.fetch_stall_s", false, [&](int r) { return cst(r).fetch_stall_s; });
  // Stall time split by topology distance class (per-class entries sum to
  // the total above; classes past the topology's depth are always zero).
  const int n_stall_cls =
      std::min(rt.rma().net().n_classes(), pgas::cache_stats::max_stall_classes);
  for (int c = 0; c < n_stall_cls; c++) {
    add(("cache.fetch_stall.class" + std::to_string(c) + "_s").c_str(), false,
        [&](int r) { return cst(r).fetch_stall_class_s[c]; });
  }
  add("cache.releases_noop", true, [&](int r) { return u64(cst(r).releases_noop); });
  add("cache.async_wb_rounds", true, [&](int r) { return u64(cst(r).async_wb_rounds); });
  add("cache.idle_flush_bytes", true, [&](int r) { return u64(cst(r).idle_flush_bytes); });
  add("cache.epochs_in_flight", true, [&](int r) { return u64(cst(r).epochs_in_flight); });
  add("cache.release_stall_s", false, [&](int r) { return cst(r).release_stall_s; });
  for (int c = 0; c < n_stall_cls; c++) {
    add(("cache.release_stall.class" + std::to_string(c) + "_s").c_str(), false,
        [&](int r) { return cst(r).release_stall_class_s[c]; });
  }

  // --- work-stealing scheduler (sched::scheduler::stats) ---
  const auto sst = [&](int r) -> const sched::scheduler::stats& {
    return rt.sched().stats_of(r);
  };
  add("sched.forks", true, [&](int r) { return u64(sst(r).forks); });
  add("sched.serialized_joins", true, [&](int r) { return u64(sst(r).serialized_joins); });
  add("sched.steal_attempts", true, [&](int r) { return u64(sst(r).steal_attempts); });
  add("sched.steals", true, [&](int r) { return u64(sst(r).steals); });
  add("sched.intra_node_steals", true, [&](int r) { return u64(sst(r).intra_node_steals); });
  add("sched.local_pops", true, [&](int r) { return u64(sst(r).local_pops); });
  add("sched.join_suspends", true, [&](int r) { return u64(sst(r).join_suspends); });
  add("sched.migrations", true, [&](int r) { return u64(sst(r).migrations); });
  add("sched.migrated_stack_bytes", true,
      [&](int r) { return u64(sst(r).migrated_stack_bytes); });
  // Steal-protocol detail (PR: hierarchical victim selection / steal-half
  // batching / adaptive backoff; all zero at the default knobs except the
  // per-class probe counts and the failed-probe accounting, which are
  // always-on observability).
  add("sched.steal.batch_steals", true, [&](int r) { return u64(sst(r).batch_steals); });
  add("sched.steal.batch_extra_entries", true,
      [&](int r) { return u64(sst(r).batch_extra_entries); });
  add("sched.steal.batch_multi_origin", true,
      [&](int r) { return u64(sst(r).batch_multi_origin); });
  add("sched.steal.inter_stack_bytes", true,
      [&](int r) { return u64(sst(r).inter_steal_bytes); });
  add("sched.steal.backoff_skips", true, [&](int r) { return u64(sst(r).backoff_skips); });
  add("sched.steal.failed_probe_s", false, [&](int r) { return sst(r).failed_probe_s; });
  const int n_probe_cls =
      std::min(rt.rma().net().n_classes(), sched::cp_max_classes);
  for (int c = 0; c < n_probe_cls; c++) {
    add(("sched.steal.probes.class" + std::to_string(c)).c_str(), true,
        [&](int r) { return u64(sst(r).steal_probes_class[c]); });
  }

  // --- network, split by locality (intra-node shared memory vs interconnect) ---
  const auto& net = rt.rma().net();
  add("net.messages.intra", true, [&](int r) { return u64(net.intra_messages_of(r)); });
  add("net.messages.inter", true, [&](int r) { return u64(net.inter_messages_of(r)); });
  add("net.bytes.intra", true, [&](int r) { return u64(net.intra_bytes_of(r)); });
  add("net.bytes.inter", true, [&](int r) { return u64(net.inter_bytes_of(r)); });

  // --- network, split by topology distance class (class 0 == intra-node;
  //     under ITYR_TOPOLOGY=flat, class 1 == the inter series above) ---
  for (int c = 0; c < net.n_classes(); c++) {
    const std::string base = "net.class" + std::to_string(c);
    add((base + ".messages").c_str(), true,
        [&](int r) { return u64(net.class_messages_of(r, c)); });
    add((base + ".bytes").c_str(), true, [&](int r) { return u64(net.class_bytes_of(r, c)); });
  }

  // --- virtual-memory view (mapping-entry ledger, paper Section 4.3.2) ---
  const auto view = [&](int r) -> const vm::view_region& { return rt.pgas().cache_of(r).view(); };
  add("vm.map_calls", true, [&](int r) { return u64(view(r).map_calls()); });
  add("vm.mapped_runs", true, [&](int r) { return u64(view(r).mapped_runs()); });
  add("vm.mapped_bytes", true, [&](int r) { return u64(view(r).mapped_bytes()); });
  add("vm.map_entry_estimate", true, [&](int r) { return u64(view(r).map_entry_estimate()); });

  // --- DES engine ---
  add("engine.resumes", true, [&](int r) { return u64(rt.eng().resumes_of(r)); });
  add("engine.clock_s", false, [&](int r) { return rt.eng().clock_of(r); });

  // --- ULT fiber pool (cluster-global in the single-threaded simulator, so
  //     the counters are attributed to rank 0) ---
  const auto& pool = rt.eng().pool_stats();
  const auto at0 = [&](std::uint64_t v) {
    return [&, v](int r) { return r == 0 ? static_cast<double>(v) : 0.0; };
  };
  add("engine.fiber_pool_high_water", true, at0(pool.high_water()));
  add("engine.fiber_pool_created", true, at0(pool.created()));
  add("engine.fiber_pool_reused", true, at0(pool.reused()));
  add("engine.fiber_pool_dropped", true, at0(pool.dropped()));

  // --- busy/idle/steal phase timeline (Table 2 / Fig. 9 source of truth) ---
  const auto& tl = rt.sched().timeline();
  add("timeline.busy_s", false, [&](int r) { return tl.busy_of(r); });
  add("timeline.steal_s", false, [&](int r) { return tl.steal_of(r); });
  add("timeline.idle_s", false, [&](int r) { return tl.idle_of(r); });

  // --- nested-scope profiler (Fig. 9 categories) ---
  for (std::size_t e = 0; e < common::n_prof_events; e++) {
    const auto ev = static_cast<common::prof_event>(e);
    const std::string base = std::string("prof.") + common::to_string(ev);
    add((base + ".self_s").c_str(), false,
        [&](int r) { return rt.prof().accumulated(r, ev); });
    add((base + ".count").c_str(), true, [&](int r) { return u64(rt.prof().count_of(r, ev)); });
    add((base + ".max_s").c_str(), false,
        [&](int r) { return rt.prof().max_duration_of(r, ev); });
  }

  // --- tracer health (tools/trace_lint warns when nonzero) ---
  add("trace.dropped_events", true, [&](int r) { return u64(rt.trace().dropped(r)); });

  // --- per-rank histograms, merged cluster-wide (elementwise count add:
  //     associative and deterministic across rank orders) ---
  const auto merge_hists = [&](const char* name,
                               const std::function<const common::log_histogram&(int)>& of) {
    common::log_histogram m = of(0);
    for (int r = 1; r < n; r++) m.merge(of(r));
    snap.add_histogram(name, std::move(m));
  };
  merge_hists("hist.task_exec_s",
              [&](int r) -> const common::log_histogram& { return rt.sched().task_hist_of(r); });
  merge_hists("hist.steal_latency_s",
              [&](int r) -> const common::log_histogram& { return rt.sched().steal_hist_of(r); });
  merge_hists("hist.steal_fail_s", [&](int r) -> const common::log_histogram& {
    return rt.sched().steal_fail_hist_of(r);
  });
  merge_hists("hist.steal_batch", [&](int r) -> const common::log_histogram& {
    return rt.sched().steal_batch_hist_of(r);
  });
  merge_hists("hist.fence_s",
              [&](int r) -> const common::log_histogram& { return rt.sched().fence_hist_of(r); });
  merge_hists("hist.rma_msg_bytes",
              [&](int r) -> const common::log_histogram& { return net.msg_hist_of(r); });

  // --- online critical-path profiler (ITYR_CRITPATH; docs/observability.md).
  //     Whole-run scalars, attributed to rank 0 like the fiber-pool counters.
  if (rt.sched().critpath_enabled()) {
    const auto d_at0 = [&](double v) {
      return [v](int r) { return r == 0 ? v : 0.0; };
    };
    const double work = rt.sched().cp_work();
    const sched::cp_path& span = rt.sched().cp_span();
    const double span_s = span.total();
    add("critpath.work_s", false, d_at0(work));
    add("critpath.span_s", false, d_at0(span_s));
    add("critpath.parallelism", false, d_at0(span_s > 0 ? work / span_s : 0.0));
    for (int b = 0; b < sched::n_cp_buckets; b++) {
      const auto k = static_cast<sched::cp_bucket>(b);
      add((std::string("critpath.span.") + sched::to_string(k) + "_s").c_str(), false,
          d_at0(span.of(k)));
    }
    const int n_cp_cls = std::min(rt.rma().net().n_classes(), sched::cp_max_classes);
    for (int c = 0; c < n_cp_cls; c++) {
      add(("critpath.net.class" + std::to_string(c) + "_s").c_str(), false, d_at0(span.net[c]));
    }
    // What-if projection: replay the recorded path with all inter-node
    // (class >= 1) network latency zeroed; class 0 is shared memory and
    // stays. "How much faster if the network were free."
    const double net_free = std::max(span_s - span.net_inter(), 0.0);
    add("critpath.whatif.network_free_span_s", false, d_at0(net_free));
    add("critpath.whatif.network_free_speedup", false,
        d_at0(net_free > 0 ? span_s / net_free : 1.0));
    // Steal-mechanics projection: span with the steal_wait bucket zeroed
    // ("how much faster if steals were free"), plus the cluster-wide time
    // burned on failed probes — the idle-loop waste the steal overhaul
    // targets, surfaced next to the span share it competes with.
    const double steal_free =
        std::max(span_s - span.of(sched::cp_bucket::steal_wait), 0.0);
    add("critpath.whatif.steal_free_span_s", false, d_at0(steal_free));
    add("critpath.whatif.steal_free_speedup", false,
        d_at0(steal_free > 0 ? span_s / steal_free : 1.0));
    double failed_probe_total = 0;
    for (int r = 0; r < n; r++) failed_probe_total += sst(r).failed_probe_s;
    add("critpath.whatif.failed_probe_total_s", false, d_at0(failed_probe_total));
  }

  // --- dynamic data placement (ITYR_MIGRATION / ITYR_REPLICATION /
  //     ITYR_HOT_BLOCKS_TOPN; docs/internals.md). The series exist only when
  //     the engine does, so the off-path stats JSON is unchanged. ---
  if (pgas::placement_engine* pl = rt.pgas().placement(); pl != nullptr) {
    add("pgas.forward_retries", true, [&](int r) { return u64(cst(r).forward_retries); });
    add("pgas.replica_fetch_bytes", true,
        [&](int r) { return u64(cst(r).replica_fetch_bytes); });
    // The engine is a cluster-global directory service; its counters are
    // attributed to rank 0 like the fiber-pool ones.
    const pgas::placement_stats& pst = pl->stats();
    add("pgas.placement_passes", true, at0(pst.passes));
    add("pgas.migrations", true, at0(pst.migrations));
    add("pgas.migration_bytes", true, at0(pst.migration_bytes));
    add("pgas.replicas", true, at0(pst.replicas));
    add("pgas.replica_bytes", true, at0(pst.replica_bytes));
    add("pgas.replica_invalidations", true, at0(pst.replica_invalidations));
    add("pgas.migrations_skipped", true, at0(pst.migrations_skipped));
    add("pgas.pool_full_skips", true, at0(pst.pool_full_skips));
    add("pgas.purged_blocks", true, at0(pst.purged_blocks));
    // Inter-node bytes a replica hit avoided, split by the distance class the
    // fetch would otherwise have crossed (class 0 is always zero: same-node
    // homes never involved a replica in the first place).
    for (int c = 0; c < n_stall_cls; c++) {
      add(("pgas.bytes_saved.class" + std::to_string(c)).c_str(), true,
          [&](int r) { return u64(pl->bytes_saved_of(r, c)); });
    }
    for (const pgas::hot_block& hb : pl->hottest(pl->hot_blocks_topn())) {
      snap.add_hot_block({"block" + std::to_string(hb.mb_id), hb.owner, hb.reader_mask,
                          hb.fetch_bytes, hb.writeback_bytes});
    }
  }

  // --- multi-job serving (ITYR_SERVE; docs/internals.md "Multi-job
  //     serving"). Series exist only when jobs were admitted, so the
  //     single-job stats JSON is unchanged. ---
  if (const auto& jrecs = rt.jobs().records(); !jrecs.empty()) {
    const auto d_at0 = [&](double v) {
      return [v](int r) { return r == 0 ? v : 0.0; };
    };
    std::size_t n_done = 0;
    for (const sched::job_record& jr : jrecs) n_done += jr.done ? 1 : 0;
    add("sched.job.admitted", true, at0(jrecs.size()));
    add("sched.job.completed", true, at0(n_done));
    add("sched.job.jobs_per_s", false, d_at0(rt.jobs().jobs_per_s()));
    add("sched.job.latency_p50_s", false, d_at0(rt.jobs().latency_quantile(0.50)));
    add("sched.job.latency_p99_s", false, d_at0(rt.jobs().latency_quantile(0.99)));
    add("sched.job.fairness_mid_claims", true,
        [&](int r) { return u64(sst(r).fairness_mid_claims); });
    add("sched.job.fairness_redirects", true,
        [&](int r) { return u64(sst(r).fairness_redirects); });
    snap.add_histogram("hist.job_latency_s", rt.jobs().latency_hist());

    const std::vector<pgas::job_cache_stats> jcache = rt.pgas().aggregate_job_stats();
    for (const sched::job_record& jr : jrecs) {
      metric_job_row row;
      row.name = "job" + std::to_string(jr.id) + ":" + jr.name;
      row.id = jr.id;
      row.done = jr.done;
      row.t_admit_s = jr.t_admit;
      row.t_start_s = jr.t_start;
      row.t_complete_s = jr.t_complete;
      row.latency_s = jr.done ? jr.latency() : 0.0;
      row.busy_s = jr.busy_s;
      row.span_s = jr.span_s;
      if (jr.id < jcache.size()) {
        const pgas::job_cache_stats& jc = jcache[jr.id];
        row.fetched_bytes = jc.fetched_bytes;
        row.written_back_bytes = jc.written_back_bytes;
        row.block_fetches = jc.block_fetches;
        row.cached_bytes_peak = jc.cached_bytes_peak;
        row.quota_recycles = jc.quota_recycles;
      }
      snap.add_job(std::move(row));
    }
  }

  return snap;
}

}  // namespace ityr
