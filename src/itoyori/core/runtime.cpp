#include "itoyori/core/runtime.hpp"

#include <cstdio>
#include <exception>

#include "itoyori/core/metrics.hpp"

namespace ityr {

namespace {
runtime* g_runtime = nullptr;
}

runtime& runtime::instance() {
  ITYR_CHECK(g_runtime != nullptr);
  return *g_runtime;
}

bool runtime::active() { return g_runtime != nullptr; }

runtime::runtime(const common::options& opt)
    : eng_(opt), rma_(eng_), pgas_(eng_, rma_), sched_(eng_, pgas_), jobs_(eng_, sched_) {
  ITYR_CHECK(g_runtime == nullptr || !"only one ityr::runtime may exist at a time");
  prof_.configure(
      eng_.n_ranks(), [this] { return eng_.now_precise(); }, [this] { return eng_.my_rank(); });
  sched_.set_profiler(&prof_);

  // Observability wiring. The tracer is always configured (so tests can
  // enable it programmatically) but only enabled when ITYR_TRACE asks for a
  // dump; every instrumentation hook is behind an enabled check, keeping
  // the disabled-path overhead to one predicted branch.
  trace_.configure(eng_.n_ranks(), opt.ranks_per_node, opt.trace_cap);
  trace_.set_sample_interval(opt.metrics_sample_interval);
  trace_.set_sampler([this](int rank, double now) { sample_counters(rank, now); });
  prof_.set_tracer(&trace_);
  pgas_.set_tracer(&trace_);
  sched_.set_tracer(&trace_);
  jobs_.set_tracer(&trace_);
  rma_.net().set_tracer(&trace_);
  if (!opt.trace_path.empty()) trace_.set_enabled(true);

  g_runtime = this;
}

runtime::~runtime() {
  const auto& opt = eng_.opts();
  // Dump observability outputs before teardown; destructors must not throw.
  try {
    if (!opt.trace_path.empty()) trace_.write_json(opt.trace_path);
    if (!opt.stats_json_path.empty()) metrics().write_json(opt.stats_json_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ityr: observability dump failed: %s\n", e.what());
  } catch (...) {
    std::fprintf(stderr, "ityr: observability dump failed\n");
  }
  if (g_runtime == this) g_runtime = nullptr;
}

void runtime::spmd(std::function<void()> fn) {
  eng_.run([&fn](int) { fn(); });
}

metrics_snapshot runtime::metrics() { return collect_metrics(*this); }

/// Periodic counter time-series sampled into the trace: a handful of the
/// registry's fastest-moving per-rank counters, cheap enough for the
/// scheduler's poll points.
void runtime::sample_counters(int rank, double now) {
  const auto& cst = pgas_.cache_of(rank).get_stats();
  trace_.counter(rank, now, "fetched bytes", static_cast<double>(cst.fetched_bytes));
  trace_.counter(rank, now, "written bytes",
                 static_cast<double>(cst.written_back_bytes + cst.write_through_bytes));
  trace_.counter(rank, now, "net bytes", static_cast<double>(rma_.net().bytes_of(rank)));
  trace_.counter(rank, now, "steals", static_cast<double>(sched_.stats_of(rank).steals));
  trace_.counter(rank, now, "deque depth", static_cast<double>(sched_.deque_depth_of(rank)));
}

}  // namespace ityr
