#include "itoyori/core/runtime.hpp"

namespace ityr {

namespace {
runtime* g_runtime = nullptr;
}

runtime& runtime::instance() {
  ITYR_CHECK(g_runtime != nullptr);
  return *g_runtime;
}

bool runtime::active() { return g_runtime != nullptr; }

runtime::runtime(const common::options& opt)
    : eng_(opt), rma_(eng_), pgas_(eng_, rma_), sched_(eng_, pgas_) {
  ITYR_CHECK(g_runtime == nullptr || !"only one ityr::runtime may exist at a time");
  prof_.configure(
      eng_.n_ranks(), [this] { return eng_.now_precise(); }, [this] { return eng_.my_rank(); });
  sched_.set_profiler(&prof_);
  g_runtime = this;
}

runtime::~runtime() {
  if (g_runtime == this) g_runtime = nullptr;
}

void runtime::spmd(std::function<void()> fn) {
  eng_.run([&fn](int) { fn(); });
}

}  // namespace ityr
