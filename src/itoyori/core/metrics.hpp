#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ityr {

class runtime;

/// One named counter with per-rank values plus the aggregate view.
/// `integral` marks exact counters (message counts, checkouts, ...) so the
/// JSON exporter prints them without a fractional part; doubles up to 2^53
/// hold them exactly.
struct metric_series {
  std::string name;
  bool integral = false;
  std::vector<double> per_rank;

  double of(int rank) const { return per_rank[static_cast<std::size_t>(rank)]; }
  double total() const {
    double s = 0;
    for (const double v : per_rank) s += v;
    return s;
  }
};

/// Unified snapshot of every runtime counter — cache, scheduler, network,
/// VM, engine, timeline, and profiler — under one naming scheme
/// (docs/observability.md). Snapshots are plain data: diff two of them with
/// delta() to meter a region, export with to_json() (ITYR_STATS_JSON).
class metrics_snapshot {
public:
  void add(std::string name, bool integral, std::vector<double> per_rank) {
    series_.push_back({std::move(name), integral, std::move(per_rank)});
  }

  const std::vector<metric_series>& all() const { return series_; }
  std::size_t size() const { return series_.size(); }

  /// nullptr when no series has that name.
  const metric_series* find(const std::string& name) const;

  /// Aggregate over ranks; 0 for unknown names.
  double total(const std::string& name) const {
    const metric_series* s = find(name);
    return s != nullptr ? s->total() : 0.0;
  }
  /// Single-rank value; 0 for unknown names.
  double of(const std::string& name, int rank) const {
    const metric_series* s = find(name);
    return s != nullptr ? s->of(rank) : 0.0;
  }

  /// Elementwise `this - base`, matched by series name: the counter growth
  /// across a region. Series missing from `base` pass through unchanged;
  /// series only in `base` are dropped.
  metrics_snapshot delta(const metrics_snapshot& base) const;

  /// Deterministic JSON: {"schema": "itoyori.metrics.v1", "n_ranks": N,
  /// "metrics": [{"name", "total", "per_rank"}...]} in insertion order.
  std::string to_json() const;
  /// Write to_json() to `path`; false (with a stderr note) on I/O failure.
  bool write_json(const std::string& path) const;

private:
  std::vector<metric_series> series_;
};

/// Snapshot every counter of the running cluster. Callable between regions
/// or mid-run (counters are monotonically increasing; pair with delta()).
metrics_snapshot collect_metrics(runtime& rt);

}  // namespace ityr
