#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "itoyori/common/histogram.hpp"

namespace ityr {

class runtime;

/// One named counter with per-rank values plus the aggregate view.
/// `integral` marks exact counters (message counts, checkouts, ...) so the
/// JSON exporter prints them without a fractional part; doubles up to 2^53
/// hold them exactly.
struct metric_series {
  std::string name;
  bool integral = false;
  std::vector<double> per_rank;

  double of(int rank) const { return per_rank[static_cast<std::size_t>(rank)]; }
  double total() const {
    double s = 0;
    for (const double v : per_rank) s += v;
    return s;
  }
};

/// One named distribution: per-rank log-histograms merged into a single
/// cluster-wide histogram at collection time (the merge is an elementwise
/// count add, so the result is independent of rank order).
struct metric_histogram {
  std::string name;
  common::log_histogram hist;
};

/// One row of the per-job section (ITYR_SERVE): lifecycle timestamps plus
/// the job's scheduler-busy share and its aggregated software-cache traffic.
/// `name` is "job<id>:<workload>" — unique per row, so tools/stats_diff can
/// address fields as `jobs.job3:cilksort.latency_s` regardless of order.
struct metric_job_row {
  std::string name;
  std::uint32_t id = 0;
  bool done = false;
  double t_admit_s = 0;
  double t_start_s = 0;
  double t_complete_s = 0;
  double latency_s = 0;
  double busy_s = 0;   ///< scheduler busy time attributed to the job (all ranks)
  double span_s = 0;   ///< job-local critical path (0 unless ITYR_CRITPATH)
  std::uint64_t fetched_bytes = 0;
  std::uint64_t written_back_bytes = 0;
  std::uint64_t block_fetches = 0;
  std::uint64_t cached_bytes_peak = 0;  ///< summed over ranks
  std::uint64_t quota_recycles = 0;
};

/// One entry of the pgas.hot_blocks export (ITYR_HOT_BLOCKS_TOPN): the
/// cumulative traffic profile of one home block, hottest first.
struct metric_hot_block {
  std::string name;                ///< "block<id>"
  int owner = -1;                  ///< current owner rank (-1 = allocation freed)
  std::uint64_t reader_mask = 0;   ///< reader ranks (clamped to the first 64)
  std::uint64_t fetch_bytes = 0;
  std::uint64_t writeback_bytes = 0;
};

/// Unified snapshot of every runtime counter — cache, scheduler, network,
/// VM, engine, timeline, and profiler — under one naming scheme
/// (docs/observability.md). Snapshots are plain data: diff two of them with
/// delta() to meter a region, export with to_json() (ITYR_STATS_JSON).
class metrics_snapshot {
public:
  void add(std::string name, bool integral, std::vector<double> per_rank) {
    series_.push_back({std::move(name), integral, std::move(per_rank)});
  }
  void add_histogram(std::string name, common::log_histogram hist) {
    histograms_.push_back({std::move(name), std::move(hist)});
  }
  void add_hot_block(metric_hot_block hb) { hot_blocks_.push_back(std::move(hb)); }
  void add_job(metric_job_row row) { jobs_.push_back(std::move(row)); }

  const std::vector<metric_series>& all() const { return series_; }
  std::size_t size() const { return series_.size(); }
  const std::vector<metric_histogram>& histograms() const { return histograms_; }
  /// nullptr when no histogram has that name.
  const metric_histogram* find_histogram(const std::string& name) const;
  /// Hottest home blocks (empty unless ITYR_HOT_BLOCKS_TOPN > 0).
  const std::vector<metric_hot_block>& hot_blocks() const { return hot_blocks_; }
  /// Per-job rows in admission order (empty unless ITYR_SERVE ran jobs).
  const std::vector<metric_job_row>& jobs() const { return jobs_; }

  /// nullptr when no series has that name.
  const metric_series* find(const std::string& name) const;

  /// Aggregate over ranks; 0 for unknown names.
  double total(const std::string& name) const {
    const metric_series* s = find(name);
    return s != nullptr ? s->total() : 0.0;
  }
  /// Single-rank value; 0 for unknown names.
  double of(const std::string& name, int rank) const {
    const metric_series* s = find(name);
    return s != nullptr ? s->of(rank) : 0.0;
  }

  /// Elementwise `this - base`, matched by series name: the counter growth
  /// across a region. Series missing from `base` pass through unchanged;
  /// series only in `base` are dropped. Histograms subtract counts the same
  /// way (they are monotone between snapshots).
  metrics_snapshot delta(const metrics_snapshot& base) const;

  /// Deterministic JSON: {"schema": "itoyori.metrics.v3", "schema_version":
  /// 3, "n_ranks": N, "metrics": [{"name", "total", "per_rank"}...],
  /// "histograms": [{"name", "count", "p50", "p90", "p99", ...}...]} in
  /// insertion order, plus "jobs" (ITYR_SERVE) and "hot_blocks"
  /// (ITYR_HOT_BLOCKS_TOPN) sections only when non-empty (so files written
  /// with those features off match ones from before the features existed,
  /// bar the version bump). tools/stats_diff compares two such files and
  /// reads v2 and v3 alike.
  std::string to_json() const;
  /// Write to_json() to `path`; false (with a stderr note) on I/O failure.
  bool write_json(const std::string& path) const;

private:
  std::vector<metric_series> series_;
  std::vector<metric_histogram> histograms_;
  std::vector<metric_hot_block> hot_blocks_;
  std::vector<metric_job_row> jobs_;
};

/// Snapshot every counter of the running cluster. Callable between regions
/// or mid-run (counters are monotonically increasing; pair with delta()).
metrics_snapshot collect_metrics(runtime& rt);

}  // namespace ityr
