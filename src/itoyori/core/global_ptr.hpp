#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <ostream>

#include "itoyori/common/error.hpp"
#include "itoyori/pgas/types.hpp"

namespace ityr {

/// Typed pointer into the global address space.
///
/// Global addresses are unified virtual addresses (paper Section 3.2): the
/// same numeric address names the same datum on every rank, and ordinary
/// pointer arithmetic works. Dereferencing requires a checkout; global_ptr
/// itself is a trivially copyable value that can be freely stored inside
/// global data structures (this is how UTS-Mem's tree links its children).
template <typename T>
class global_ptr {
public:
  using element_type = T;
  using difference_type = std::ptrdiff_t;

  constexpr global_ptr() = default;
  constexpr explicit global_ptr(pgas::gaddr_t g) : g_(g) {}

  constexpr pgas::gaddr_t raw() const { return g_; }
  constexpr explicit operator bool() const { return g_ != pgas::null_gaddr; }

  constexpr global_ptr operator+(difference_type n) const {
    return global_ptr(g_ + static_cast<pgas::gaddr_t>(n * static_cast<difference_type>(sizeof(T))));
  }
  constexpr global_ptr operator-(difference_type n) const { return *this + (-n); }
  constexpr difference_type operator-(global_ptr other) const {
    return static_cast<difference_type>(g_ - other.g_) / static_cast<difference_type>(sizeof(T));
  }
  global_ptr& operator+=(difference_type n) { return *this = *this + n; }
  global_ptr& operator-=(difference_type n) { return *this = *this - n; }
  global_ptr& operator++() { return *this += 1; }
  global_ptr& operator--() { return *this -= 1; }

  template <typename U>
  constexpr global_ptr<U> cast() const {
    return global_ptr<U>(g_);
  }

  friend constexpr bool operator==(global_ptr, global_ptr) = default;
  friend constexpr auto operator<=>(global_ptr, global_ptr) = default;

private:
  pgas::gaddr_t g_ = pgas::null_gaddr;
};

template <typename T>
inline std::ostream& operator<<(std::ostream& os, global_ptr<T> p) {
  return os << "g0x" << std::hex << p.raw() << std::dec;
}

/// Contiguous view over global memory: (pointer, count), mirroring the
/// std::span-based style of the paper's Cilksort listing (Fig. 1).
template <typename T>
class global_span {
public:
  using element_type = T;

  constexpr global_span() = default;
  constexpr global_span(global_ptr<T> data, std::size_t size) : data_(data), size_(size) {}

  constexpr global_ptr<T> data() const { return data_; }
  constexpr std::size_t size() const { return size_; }
  constexpr std::size_t size_bytes() const { return size_ * sizeof(T); }
  constexpr bool empty() const { return size_ == 0; }

  constexpr global_ptr<T> ptr(std::size_t i) const {
    ITYR_CHECK(i < size_);
    return data_ + static_cast<std::ptrdiff_t>(i);
  }

  constexpr global_span first(std::size_t n) const {
    ITYR_CHECK(n <= size_);
    return {data_, n};
  }
  constexpr global_span last(std::size_t n) const {
    ITYR_CHECK(n <= size_);
    return {data_ + static_cast<std::ptrdiff_t>(size_ - n), n};
  }
  constexpr global_span subspan(std::size_t off, std::size_t n) const {
    ITYR_CHECK(off + n <= size_);
    return {data_ + static_cast<std::ptrdiff_t>(off), n};
  }

  friend constexpr bool operator==(global_span, global_span) = default;

private:
  global_ptr<T> data_{};
  std::size_t size_ = 0;
};

/// Split a span into halves (Fig. 1's split_two).
template <typename T>
constexpr std::pair<global_span<T>, global_span<T>> split_two(global_span<T> s) {
  const std::size_t h = s.size() / 2;
  return {s.first(h), s.subspan(h, s.size() - h)};
}

/// Split at an explicit index (Fig. 1's split_at).
template <typename T>
constexpr std::pair<global_span<T>, global_span<T>> split_at(global_span<T> s, std::size_t i) {
  return {s.first(i), s.subspan(i, s.size() - i)};
}

}  // namespace ityr
