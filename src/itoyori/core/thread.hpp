#pragma once

#include <type_traits>
#include <utility>

#include "itoyori/core/ityr.hpp"

namespace ityr {

/// Low-level fork-join primitive: a future-like handle to a forked task
/// (paper Section 3.1: "Itoyori can dynamically spawn user-level threads by
/// using low-level threading primitives such as futures").
///
/// The child starts executing immediately (child-first policy) and this
/// thread's continuation becomes stealable; join() returns the child's
/// value. Like std::thread, a ityr::thread must be joined before
/// destruction; unlike std::thread it may not be detached (the fork-join
/// discipline is what makes the memory model work).
template <typename T>
class thread {
public:
  thread() = default;

  template <typename F, typename = std::enable_if_t<std::is_invocable_r_v<T, F>>>
  explicit thread(F&& f) : handle_(detail::fork_typed(std::forward<F>(f))), active_(true) {}

  thread(thread&& other) noexcept { *this = std::move(other); }
  thread& operator=(thread&& other) noexcept {
    ITYR_CHECK(!active_ || !"assigning over an unjoined ityr::thread");
    handle_ = other.handle_;
    active_ = other.active_;
    other.active_ = false;
    return *this;
  }

  thread(const thread&) = delete;
  thread& operator=(const thread&) = delete;

  ~thread() { ITYR_CHECK(!active_ || !"ityr::thread destroyed without join()"); }

  bool joinable() const { return active_; }

  /// True if the child ran to completion without the continuation being
  /// stolen (the fence-free fast path, paper Section 5.1).
  bool serialized() const { return active_ && handle_.serialized; }

  T join() {
    ITYR_CHECK(active_);
    active_ = false;
    if constexpr (std::is_void_v<T>) {
      detail::join_typed<void>(handle_);
    } else {
      return detail::join_typed<T>(handle_);
    }
  }

private:
  sched::thread_handle handle_{};
  bool active_ = false;
};

template <typename F>
thread(F&&) -> thread<std::invoke_result_t<std::decay_t<F>>>;

}  // namespace ityr
