#pragma once

#include <cstddef>

#include "itoyori/core/ityr.hpp"

namespace ityr {

namespace detail {

/// Run fn(chunk_index) for every index in [lo, hi) as a parallel recursion.
template <typename Fn>
void over_chunks(std::size_t lo, std::size_t hi, Fn fn) {
  if (hi - lo == 1) {
    fn(lo);
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  parallel_invoke([=] { over_chunks(lo, mid, fn); }, [=] { over_chunks(mid, hi, fn); });
}

}  // namespace detail

/// Inclusive parallel prefix scan over global memory:
///   out[i] = init op in[0] op ... op in[i]
/// Returns the total (init op in[0] op ... op in[n-1]). `in` and `out` may
/// alias exactly (in-place scan) but must not partially overlap.
///
/// Three-phase chunked algorithm (work-efficient, O(n)):
///   1. parallel: per-chunk partial sums into a scratch global array,
///   2. serial: exclusive scan of the (n/grain) partials on the root task,
///   3. parallel: per-chunk inclusive scan seeded with its chunk's prefix.
///
/// Like all range patterns, `grain` bounds the per-task checkout size so
/// arrays far larger than the cache can be processed (paper Section 3.3).
template <typename T, typename BinOp>
T parallel_scan_inclusive(global_ptr<T> in, global_ptr<T> out, std::size_t n, std::size_t grain,
                          T init, BinOp op) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (n == 0) return init;
  ITYR_CHECK(grain > 0);

  const std::size_t n_chunks = (n + grain - 1) / grain;
  auto partials = noncoll_new<T>(n_chunks);

  auto chunk_range = [n, grain](std::size_t c) {
    const std::size_t base = c * grain;
    return std::pair<std::size_t, std::size_t>(base, std::min(n, base + grain) - base);
  };

  // Phase 1: per-chunk sums (disjoint writes into `partials`).
  detail::over_chunks(0, n_chunks, [=](std::size_t c) {
    const auto [base, len] = chunk_range(c);
    with_checkout(in + static_cast<std::ptrdiff_t>(base), len, access_mode::read,
                  [&](const T* p) {
                    T s = p[0];
                    for (std::size_t i = 1; i < len; i++) s = op(s, p[i]);
                    ityr::put(partials + static_cast<std::ptrdiff_t>(c), s);
                  });
  });

  // Phase 2: serial exclusive scan of the partials (n_chunks is small).
  T total = init;
  with_checkout(partials, n_chunks, access_mode::read_write, [&](T* ps) {
    for (std::size_t c = 0; c < n_chunks; c++) {
      const T chunk_sum = ps[c];
      ps[c] = total;  // becomes the chunk's carry-in
      total = op(total, chunk_sum);
    }
  });

  // Phase 3: per-chunk inclusive scans seeded with the carry-ins.
  detail::over_chunks(0, n_chunks, [=](std::size_t c) {
    const auto [base, len] = chunk_range(c);
    const T carry = ityr::get(partials + static_cast<std::ptrdiff_t>(c));
    with_checkout(in + static_cast<std::ptrdiff_t>(base), len, access_mode::read,
                  [&](const T* pi) {
                    with_checkout(out + static_cast<std::ptrdiff_t>(base), len,
                                  access_mode::write, [&](T* po) {
                                    T running = carry;
                                    for (std::size_t i = 0; i < len; i++) {
                                      running = op(running, pi[i]);
                                      po[i] = running;
                                    }
                                  });
                  });
  });

  noncoll_delete(partials, n_chunks);
  return total;
}

}  // namespace ityr
