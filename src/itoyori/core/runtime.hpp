#pragma once

#include <functional>
#include <memory>

#include "itoyori/common/options.hpp"
#include "itoyori/common/profiler.hpp"
#include "itoyori/common/trace.hpp"
#include "itoyori/pgas/pgas_space.hpp"
#include "itoyori/rma/window.hpp"
#include "itoyori/sched/job_manager.hpp"
#include "itoyori/sched/scheduler.hpp"
#include "itoyori/sim/engine.hpp"

namespace ityr {

class metrics_snapshot;

/// The whole simulated Itoyori cluster: DES engine + RMA + PGAS + scheduler
/// + profiler + tracer, wired together.
///
/// Usage mirrors an mpiexec-launched Itoyori program (paper Section 3.1):
///
///   ityr::runtime rt(opts);
///   rt.spmd([] {
///     auto a = ityr::coll_new<int>(n);          // SPMD region
///     ityr::root_exec([=] { ... fork-join ... });  // fork-join region
///     ityr::coll_delete(a, n);
///   });
///
/// Exactly one runtime exists at a time; the free functions in ityr.hpp
/// dispatch to it.
///
/// Observability (docs/observability.md): options::trace_path (ITYR_TRACE)
/// turns on the virtual-time tracer and dumps a Chrome/Perfetto JSON
/// timeline at destruction; options::stats_json_path (ITYR_STATS_JSON)
/// likewise dumps the unified metrics snapshot.
class runtime {
public:
  explicit runtime(const common::options& opt);
  ~runtime();

  runtime(const runtime&) = delete;
  runtime& operator=(const runtime&) = delete;

  /// Run `fn` as the SPMD program on every simulated rank.
  void spmd(std::function<void()> fn);

  sim::engine& eng() { return eng_; }
  rma::context& rma() { return rma_; }
  pgas::pgas_space& pgas() { return pgas_; }
  sched::scheduler& sched() { return sched_; }
  sched::job_manager& jobs() { return jobs_; }
  common::profiler& prof() { return prof_; }
  common::tracer& trace() { return trace_; }
  const common::options& opts() const { return eng_.opts(); }

  /// Unified counter snapshot (cache + scheduler + network + VM + engine +
  /// timeline + profiler); see core/metrics.hpp.
  metrics_snapshot metrics();

  /// Scratch slot for root_exec return values (copied out by every rank).
  static constexpr std::size_t root_result_capacity = 256;
  void* root_result_buf() { return root_result_; }

  static runtime& instance();
  static bool active();

private:
  void sample_counters(int rank, double now);

  sim::engine eng_;
  rma::context rma_;
  pgas::pgas_space pgas_;
  sched::scheduler sched_;
  sched::job_manager jobs_;
  common::profiler prof_;
  common::tracer trace_;
  alignas(std::max_align_t) unsigned char root_result_[root_result_capacity]{};
};

}  // namespace ityr
