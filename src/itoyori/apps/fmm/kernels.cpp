#include "itoyori/apps/fmm/kernels.hpp"

#include <algorithm>
#include <cmath>

namespace ityr::apps::fmm {

namespace {

constexpr int odd_or_even(int n) { return (n & 1) ? -1 : 1; }
constexpr int ipow2n(int n) { return n >= 0 ? 1 : odd_or_even(n); }

}  // namespace

void eval_multipole(real_t rho, real_t alpha, real_t beta, complex_t* Ynm, complex_t* YnmTheta) {
  const real_t x = std::cos(alpha);
  real_t y = std::sin(alpha);
  if (std::fabs(y) < 1e-30) y = 1e-30;  // theta-derivative pole guard
  real_t fact = 1;
  real_t pn = 1;
  real_t rhom = 1;
  const complex_t ei = std::exp(complex_t(0, 1) * beta);
  complex_t eim = 1.0;
  for (int m = 0; m < kP; m++) {
    real_t p = pn;
    int npn = m * m + 2 * m;
    int nmn = m * m;
    Ynm[npn] = rhom * p * eim;
    Ynm[nmn] = std::conj(Ynm[npn]);
    real_t p1 = p;
    p = x * (2 * m + 1) * p1;
    YnmTheta[npn] = rhom * (p - (m + 1) * x * p1) / y * eim;
    YnmTheta[nmn] = std::conj(YnmTheta[npn]);
    rhom *= rho;
    real_t rhon = rhom;
    for (int n = m + 1; n < kP; n++) {
      int npm = n * n + n + m;
      int nmm = n * n + n - m;
      rhon /= -(n + m);
      Ynm[npm] = rhon * p * eim;
      Ynm[nmm] = std::conj(Ynm[npm]);
      real_t p2 = p1;
      p1 = p;
      p = (x * (2 * n + 1) * p1 - (n + m) * p2) / (n - m + 1);
      YnmTheta[npm] = rhon * ((n - m + 1) * p - (n + 1) * x * p1) / y * eim;
      YnmTheta[nmm] = std::conj(YnmTheta[npm]);
      rhon *= rho;
    }
    rhom /= -(2 * m + 2) * (2 * m + 1);
    pn = -pn * fact * y;
    fact += 2;
    eim *= ei;
  }
}

void eval_local(real_t rho, real_t alpha, real_t beta, complex_t* Ynm) {
  const real_t x = std::cos(alpha);
  const real_t y = std::sin(alpha);
  real_t fact = 1;
  real_t pn = 1;
  const real_t invR = -1.0 / rho;
  real_t rhom = -invR;
  const complex_t ei = std::exp(complex_t(0, 1) * beta);
  complex_t eim = 1.0;
  for (int m = 0; m < 2 * kP; m++) {
    real_t p = pn;
    int npn = m * m + 2 * m;
    int nmn = m * m;
    Ynm[npn] = rhom * p * eim;
    Ynm[nmn] = std::conj(Ynm[npn]);
    real_t p1 = p;
    p = x * (2 * m + 1) * p1;
    rhom *= invR;
    real_t rhon = rhom;
    for (int n = m + 1; n < 2 * kP; n++) {
      int npm = n * n + n + m;
      int nmm = n * n + n - m;
      Ynm[npm] = rhon * p * eim;
      Ynm[nmm] = std::conj(Ynm[npm]);
      real_t p2 = p1;
      p1 = p;
      p = (x * (2 * n + 1) * p1 - (n + m) * p2) / (n - m + 1);
      rhon *= invR * (n - m + 1);
    }
    pn = -pn * fact * y;
    fact += 2;
    eim *= ei;
  }
}

void p2p(const body* tgt, std::size_t n_tgt, body_acc* acc, const body* src, std::size_t n_src) {
  for (std::size_t i = 0; i < n_tgt; i++) {
    real_t p = 0;
    vec3 d{};
    for (std::size_t j = 0; j < n_src; j++) {
      const vec3 dX = tgt[i].X - src[j].X;
      const real_t R2 = norm2(dX);
      if (R2 == 0) continue;  // self interaction (or exact overlap)
      const real_t invR2 = 1 / R2;
      const real_t invR = src[j].q * std::sqrt(invR2);
      p += invR;
      const vec3 g = dX * (invR2 * invR);
      d -= g;
    }
    acc[i].p += p;
    acc[i].dphi += d;
  }
}

void p2m(const body* bodies, std::size_t n, vec3 center, complex_t* M) {
  complex_t Ynm[kP * kP], YnmTheta[kP * kP];
  for (std::size_t b = 0; b < n; b++) {
    const vec3 dX = bodies[b].X - center;
    real_t rho, alpha, beta;
    cart2sph(dX, rho, alpha, beta);
    eval_multipole(rho, alpha, beta, Ynm, YnmTheta);
    for (int nn = 0; nn < kP; nn++) {
      for (int m = 0; m <= nn; m++) {
        const int nm = nn * nn + nn - m;
        const int nms = nn * (nn + 1) / 2 + m;
        M[nms] += bodies[b].q * Ynm[nm];
      }
    }
  }
}

void m2m(const complex_t* M_child, vec3 child_center, vec3 parent_center, complex_t* M_parent) {
  complex_t Ynm[kP * kP], YnmTheta[kP * kP];
  const vec3 dX = parent_center - child_center;
  real_t rho, alpha, beta;
  cart2sph(dX, rho, alpha, beta);
  eval_multipole(rho, alpha, beta, Ynm, YnmTheta);
  for (int j = 0; j < kP; j++) {
    for (int k = 0; k <= j; k++) {
      const int jks = j * (j + 1) / 2 + k;
      complex_t M = 0;
      for (int n = 0; n <= j; n++) {
        for (int m = std::max(-n, -j + k + n); m <= std::min(k - 1, n); m++) {
          if (j - n >= k - m) {
            const int jnkms = (j - n) * (j - n + 1) / 2 + k - m;
            const int nm = n * n + n - m;
            M += M_child[jnkms] * Ynm[nm] * real_t(ipow2n(m) * odd_or_even(n));
          }
        }
        for (int m = k; m <= std::min(n, j + k - n); m++) {
          if (j - n >= m - k) {
            const int jnkms = (j - n) * (j - n + 1) / 2 - k + m;
            const int nm = n * n + n - m;
            M += std::conj(M_child[jnkms]) * Ynm[nm] * real_t(odd_or_even(k + n + m));
          }
        }
      }
      M_parent[jks] += M;
    }
  }
}

void m2l(const complex_t* M_src, vec3 src_center, vec3 tgt_center, complex_t* L_tgt) {
  complex_t Ynm2[4 * kP * kP];
  const vec3 dX = tgt_center - src_center;
  real_t rho, alpha, beta;
  cart2sph(dX, rho, alpha, beta);
  eval_local(rho, alpha, beta, Ynm2);
  for (int j = 0; j < kP; j++) {
    const real_t Cnm = odd_or_even(j);
    for (int k = 0; k <= j; k++) {
      const int jks = j * (j + 1) / 2 + k;
      complex_t L = 0;
      for (int n = 0; n < kP; n++) {
        for (int m = -n; m < 0; m++) {
          const int nms = n * (n + 1) / 2 - m;
          const int jnkm = (j + n) * (j + n) + j + n + m - k;
          L += std::conj(M_src[nms]) * Cnm * Ynm2[jnkm];
        }
        for (int m = 0; m <= n; m++) {
          const int nms = n * (n + 1) / 2 + m;
          const int jnkm = (j + n) * (j + n) + j + n + m - k;
          const real_t Cnm2 = Cnm * odd_or_even((k - m) * (k < m) + m);
          L += M_src[nms] * Cnm2 * Ynm2[jnkm];
        }
      }
      L_tgt[jks] += L;
    }
  }
}

void l2l(const complex_t* L_parent, vec3 parent_center, vec3 child_center, complex_t* L_child) {
  complex_t Ynm[kP * kP], YnmTheta[kP * kP];
  const vec3 dX = child_center - parent_center;
  real_t rho, alpha, beta;
  cart2sph(dX, rho, alpha, beta);
  eval_multipole(rho, alpha, beta, Ynm, YnmTheta);
  for (int j = 0; j < kP; j++) {
    for (int k = 0; k <= j; k++) {
      const int jks = j * (j + 1) / 2 + k;
      complex_t L = 0;
      for (int n = j; n < kP; n++) {
        for (int m = j + k - n; m < 0; m++) {
          const int jnkm = (n - j) * (n - j) + n - j + m - k;
          const int nms = n * (n + 1) / 2 - m;
          L += std::conj(L_parent[nms]) * Ynm[jnkm] * real_t(odd_or_even(k));
        }
        for (int m = 0; m <= n; m++) {
          if (n - j >= std::abs(m - k)) {
            const int jnkm = (n - j) * (n - j) + n - j + m - k;
            const int nms = n * (n + 1) / 2 + m;
            L += L_parent[nms] * Ynm[jnkm] * real_t(odd_or_even((m - k) * (m < k)));
          }
        }
      }
      L_child[jks] += L;
    }
  }
}

void l2p(const complex_t* L, vec3 center, const body* bodies, std::size_t n, body_acc* acc) {
  complex_t Ynm[kP * kP], YnmTheta[kP * kP];
  const complex_t I(0, 1);
  for (std::size_t b = 0; b < n; b++) {
    const vec3 dX = bodies[b].X - center;
    vec3 spherical{};
    real_t rho, alpha, beta;
    cart2sph(dX, rho, alpha, beta);
    if (rho < 1e-30) rho = 1e-30;
    eval_multipole(rho, alpha, beta, Ynm, YnmTheta);
    real_t p_acc = 0;
    for (int nn = 0; nn < kP; nn++) {
      int nm = nn * nn + nn;
      int nms = nn * (nn + 1) / 2;
      p_acc += std::real(L[nms] * Ynm[nm]);
      spherical.x += std::real(L[nms] * Ynm[nm]) / rho * nn;
      spherical.y += std::real(L[nms] * YnmTheta[nm]);
      for (int m = 1; m <= nn; m++) {
        nm = nn * nn + nn + m;
        nms = nn * (nn + 1) / 2 + m;
        p_acc += 2 * std::real(L[nms] * Ynm[nm]);
        spherical.x += 2 * std::real(L[nms] * Ynm[nm]) / rho * nn;
        spherical.y += 2 * std::real(L[nms] * YnmTheta[nm]);
        spherical.z += 2 * std::real(L[nms] * Ynm[nm] * I) * m;
      }
    }
    acc[b].p += p_acc;
    acc[b].dphi += sph2cart(rho, alpha, beta, spherical);
  }
}

void m2p(const complex_t* M, vec3 center, const body* bodies, std::size_t n, body_acc* acc) {
  complex_t Ynm2[4 * kP * kP];
  for (std::size_t b = 0; b < n; b++) {
    const vec3 dX = bodies[b].X - center;
    real_t rho, alpha, beta;
    cart2sph(dX, rho, alpha, beta);
    eval_local(rho, alpha, beta, Ynm2);
    real_t p_acc = 0;
    for (int nn = 0; nn < kP; nn++) {
      int nm = nn * nn + nn;
      int nms = nn * (nn + 1) / 2;
      p_acc += std::real(M[nms] * Ynm2[nm]);
      for (int m = 1; m <= nn; m++) {
        nm = nn * nn + nn + m;
        nms = nn * (nn + 1) / 2 + m;
        p_acc += 2 * std::real(M[nms] * Ynm2[nm]);
      }
    }
    acc[b].p += p_acc;
  }
}

}  // namespace ityr::apps::fmm
