#pragma once

#include <cmath>
#include <cstdint>

namespace ityr::apps::fmm {

using real_t = double;

struct vec3 {
  real_t x = 0, y = 0, z = 0;

  friend constexpr vec3 operator+(vec3 a, vec3 b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
  friend constexpr vec3 operator-(vec3 a, vec3 b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
  friend constexpr vec3 operator*(vec3 a, real_t s) { return {a.x * s, a.y * s, a.z * s}; }
  friend constexpr vec3 operator*(real_t s, vec3 a) { return a * s; }
  vec3& operator+=(vec3 b) { return *this = *this + b; }
  vec3& operator-=(vec3 b) { return *this = *this - b; }
  friend constexpr bool operator==(vec3, vec3) = default;
};

constexpr real_t dot(vec3 a, vec3 b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
constexpr real_t norm2(vec3 a) { return dot(a, a); }
inline real_t norm(vec3 a) { return std::sqrt(norm2(a)); }

/// Cartesian -> spherical (r, theta=polar angle from +z, phi=azimuth).
inline void cart2sph(vec3 dX, real_t& r, real_t& theta, real_t& phi) {
  r = norm(dX);
  theta = r < 1e-100 ? 0 : std::acos(dX.z / r);
  phi = std::atan2(dX.y, dX.x);
}

/// Spherical gradient components -> cartesian (ExaFMM's sph2cart).
inline vec3 sph2cart(real_t r, real_t theta, real_t phi, vec3 spherical) {
  const real_t st = std::sin(theta), ct = std::cos(theta);
  const real_t sp = std::sin(phi), cp = std::cos(phi);
  const real_t invR = 1 / r;
  // Guard the 1/sin(theta) pole; the phi component vanishes there.
  const real_t inv_st = std::fabs(st) < 1e-12 ? 0 : 1 / st;
  vec3 c;
  c.x = st * cp * spherical.x + ct * cp * invR * spherical.y - sp * invR * inv_st * spherical.z;
  c.y = st * sp * spherical.x + ct * sp * invR * spherical.y + cp * invR * inv_st * spherical.z;
  c.z = ct * spherical.x - st * invR * spherical.y;
  return c;
}

/// 63-bit Morton key of a position inside [center-radius, center+radius)^3,
/// 21 bits per dimension.
inline std::uint64_t morton_key(vec3 X, vec3 center, real_t radius) {
  constexpr int bits = 21;
  constexpr std::uint64_t range = std::uint64_t{1} << bits;
  auto clamp01 = [](real_t v) { return v < 0 ? 0 : (v >= 1 ? std::nextafter(1.0, 0.0) : v); };
  const std::uint64_t ix =
      static_cast<std::uint64_t>(clamp01((X.x - center.x + radius) / (2 * radius)) * range);
  const std::uint64_t iy =
      static_cast<std::uint64_t>(clamp01((X.y - center.y + radius) / (2 * radius)) * range);
  const std::uint64_t iz =
      static_cast<std::uint64_t>(clamp01((X.z - center.z + radius) / (2 * radius)) * range);
  auto spread = [](std::uint64_t v) {
    v &= 0x1fffff;
    v = (v | v << 32) & 0x1f00000000ffffULL;
    v = (v | v << 16) & 0x1f0000ff0000ffULL;
    v = (v | v << 8) & 0x100f00f00f00f00fULL;
    v = (v | v << 4) & 0x10c30c30c30c30c3ULL;
    v = (v | v << 2) & 0x1249249249249249ULL;
    return v;
  };
  return (spread(ix) << 2) | (spread(iy) << 1) | spread(iz);
}

/// Octant of a key at a tree level (level 0 = the root's children split).
inline int key_octant(std::uint64_t key, int level) {
  constexpr int bits = 21;
  return static_cast<int>((key >> (3 * (bits - 1 - level))) & 7);
}

}  // namespace ityr::apps::fmm
