#include "itoyori/apps/fmm/fmm.hpp"

#include <algorithm>
#include <cmath>

#include "itoyori/apps/cilksort.hpp"

namespace ityr::apps::fmm {

namespace {

constexpr std::size_t kMetaGrain = 4096;

/// (Morton key, body index) record, sorted with the Cilksort app.
struct key_index {
  std::uint64_t key = 0;
  std::uint64_t idx = 0;
  friend bool operator<(const key_index& a, const key_index& b) { return a.key < b.key; }
};

cell_meta read_meta(const fmm_tree& t, std::int32_t ci) {
  return ityr::get(t.cells + ci);
}

global_ptr<complex_t> M_of(const fmm_tree& t, std::int32_t ci) {
  return t.M + static_cast<std::ptrdiff_t>(ci) * kNTerm;
}
global_ptr<complex_t> L_of(const fmm_tree& t, std::int32_t ci) {
  return t.L + static_cast<std::ptrdiff_t>(ci) * kNTerm;
}

}  // namespace

void fmm_generate_bodies(global_ptr<body> bodies, std::size_t n, std::uint64_t seed,
                         std::size_t grain) {
  const real_t q = 1.0 / static_cast<real_t>(n);
  parallel_for_each(bodies, n, grain, access_mode::write, [seed, q](body& b, std::size_t i) {
    std::uint64_t s = seed + 0x9e3779b97f4a7c15ULL * (i + 1);
    const auto u = [&s] {
      return static_cast<real_t>(common::splitmix64(s) >> 11) * 0x1.0p-53;
    };
    b.X = {u() - 0.5, u() - 0.5, u() - 0.5};
    b.q = q;
  });
}

fmm_tree fmm_build_tree(global_ptr<body> bodies, std::size_t n, const fmm_config& cfg) {
  fmm_tree t;
  t.bodies = bodies;
  t.n_bodies = n;
  t.cfg = cfg;

  auto keys = coll_new<key_index>(n);
  auto sorted = coll_new<body>(n);
  auto tmp = coll_new<key_index>(n);

  std::vector<cell_meta> local_cells;

  struct cube {
    vec3 center{};
    real_t radius = 0;
  };
  const cube box = root_exec([bodies, n, keys, sorted, tmp] {
    // 1. Bounding cube (parallel reduction over body positions).
    struct bounds {
      vec3 lo{1e30, 1e30, 1e30}, hi{-1e30, -1e30, -1e30};
    };
    bounds bb = parallel_reduce(
        bodies, n, kMetaGrain, bounds{},
        [](const body& b) {
          return bounds{b.X, b.X};
        },
        [](bounds a, bounds b) {
          return bounds{{std::min(a.lo.x, b.lo.x), std::min(a.lo.y, b.lo.y),
                         std::min(a.lo.z, b.lo.z)},
                        {std::max(a.hi.x, b.hi.x), std::max(a.hi.y, b.hi.y),
                         std::max(a.hi.z, b.hi.z)}};
        });
    const vec3 center = (bb.lo + bb.hi) * 0.5;
    const real_t radius =
        std::max({bb.hi.x - bb.lo.x, bb.hi.y - bb.lo.y, bb.hi.z - bb.lo.z}) * 0.5 * 1.0001 +
        1e-12;

    // 2. Morton keys, sorted with Cilksort.
    const vec3 c = center;
    const real_t r = radius;
    parallel_transform(bodies, keys, n, kMetaGrain, [c, r](const body& b) {
      return key_index{morton_key(b.X, c, r), 0};
    });
    // Attach original indices (second sweep keeps the transform simple).
    parallel_for_each(keys, n, kMetaGrain, access_mode::read_write,
                      [](key_index& k, std::size_t i) { k.idx = i; });
    cilksort(global_span<key_index>(keys, n), global_span<key_index>(tmp, n),
             std::max<std::size_t>(kMetaGrain, n / 256));

    // 3. Permute bodies into Morton order (random-access gathers go through
    // the cache).
    for_each_chunk(sorted, n, kMetaGrain, access_mode::write,
                   [bodies, keys](body* out, std::size_t len, std::size_t base) {
                     with_checkout(keys + static_cast<std::ptrdiff_t>(base), len,
                                   access_mode::read, [&](const key_index* k) {
                                     for (std::size_t i = 0; i < len; i++) {
                                       out[i] = ityr::get(
                                           bodies + static_cast<std::ptrdiff_t>(k[i].idx));
                                     }
                                   });
                   });
    // Copy back into the caller's body array.
    parallel_transform(sorted, bodies, n, kMetaGrain, [](const body& b) { return b; });
    return cube{center, radius};
  });
  const vec3 center = box.center;
  const real_t radius = box.radius;

  // 4. Build the cell hierarchy from the sorted keys. This is a serial
  // section on rank 0 (no forks -> no migration), using a local key copy.
  if (rt().eng().my_rank() == 0) {
    std::vector<std::uint64_t> key_copy(n);
    for (std::size_t base = 0; base < n; base += kMetaGrain) {
      const std::size_t len = std::min(kMetaGrain, n - base);
      with_checkout(keys + static_cast<std::ptrdiff_t>(base), len, access_mode::read,
                    [&](const key_index* k) {
                      for (std::size_t i = 0; i < len; i++) key_copy[base + i] = k[i].key;
                    });
    }

    struct build_frame {
      std::size_t lo, hi;
      vec3 X;
      real_t R;
      std::uint32_t level;
      std::int32_t cell;
    };
    local_cells.push_back({center, radius, 0, static_cast<std::uint32_t>(n), -1, 0, 0});
    std::vector<build_frame> queue;  // breadth-first so children are contiguous
    queue.push_back({0, n, center, radius, 0, 0});
    for (std::size_t qi = 0; qi < queue.size(); qi++) {
      const build_frame f = queue[qi];
      if (f.hi - f.lo <= cfg.ncrit || f.level >= 20) continue;  // leaf
      const auto first_child = static_cast<std::int32_t>(local_cells.size());
      int n_children = 0;
      std::size_t pos = f.lo;
      for (int oct = 0; oct < 8; oct++) {
        // Keys are sorted: the octant's range is contiguous.
        std::size_t end = pos;
        while (end < f.hi && key_octant(key_copy[end], static_cast<int>(f.level)) == oct) end++;
        if (end == pos) continue;
        const real_t hr = f.R * 0.5;
        const vec3 cX{f.X.x + ((oct & 4) ? hr : -hr), f.X.y + ((oct & 2) ? hr : -hr),
                      f.X.z + ((oct & 1) ? hr : -hr)};
        local_cells.push_back({cX, hr, static_cast<std::uint32_t>(pos),
                               static_cast<std::uint32_t>(end - pos), -1, 0, f.level + 1});
        queue.push_back({pos, end, cX, hr, f.level + 1,
                         static_cast<std::int32_t>(local_cells.size() - 1)});
        n_children++;
        pos = end;
      }
      ITYR_CHECK(pos == f.hi);
      local_cells[static_cast<std::size_t>(f.cell)].child_begin = first_child;
      local_cells[static_cast<std::size_t>(f.cell)].n_children = n_children;
    }
  }
  barrier();

  // 5. Publish the cell array and the expansion arrays.
  std::size_t n_cells = local_cells.size();
  {
    // Broadcast the cell count (tiny shared slot via global memory).
    auto count_slot = coll_new<std::uint64_t>(1);
    if (rt().eng().my_rank() == 0) {
      ityr::put(count_slot, static_cast<std::uint64_t>(n_cells));
      rt().pgas().release();
    }
    barrier();
    n_cells = static_cast<std::size_t>(ityr::get(count_slot));
    barrier();
    coll_delete(count_slot, 1);
  }
  t.n_cells = n_cells;
  t.cells = coll_new<cell_meta>(n_cells);
  t.M = coll_new<complex_t>(n_cells * kNTerm);
  t.L = coll_new<complex_t>(n_cells * kNTerm);
  t.acc = coll_new<body_acc>(n);

  if (rt().eng().my_rank() == 0) {
    for (std::size_t base = 0; base < n_cells; base += kMetaGrain) {
      const std::size_t len = std::min(kMetaGrain, n_cells - base);
      with_checkout(t.cells + static_cast<std::ptrdiff_t>(base), len, access_mode::write,
                    [&](cell_meta* out) {
                      for (std::size_t i = 0; i < len; i++) out[i] = local_cells[base + i];
                    });
    }
    rt().pgas().release();
  }
  barrier();

  coll_delete(keys, n);
  coll_delete(sorted, n);
  coll_delete(tmp, n);
  return t;
}

void fmm_destroy_tree(fmm_tree& t) {
  coll_delete(t.cells, t.n_cells);
  coll_delete(t.M, t.n_cells * kNTerm);
  coll_delete(t.L, t.n_cells * kNTerm);
  coll_delete(t.acc, t.n_bodies);
  t = fmm_tree{};
}

// ---------------------------------------------------------------------------
// upward pass
// ---------------------------------------------------------------------------

namespace {

void upward_cell(const fmm_tree& t, std::int32_t ci);

/// Parallel recursion over a contiguous child range. The tree descriptor is
/// copied by value into tasks: tasks must never reference a parent stack.
void upward_children(const fmm_tree& t, std::int32_t lo, std::int32_t hi) {
  if (hi - lo == 1) {
    upward_cell(t, lo);
    return;
  }
  const std::int32_t mid = lo + (hi - lo) / 2;
  const fmm_tree tc = t;
  parallel_invoke([tc, lo, mid] { upward_children(tc, lo, mid); },
                  [tc, mid, hi] { upward_children(tc, mid, hi); });
}

void upward_cell(const fmm_tree& t, std::int32_t ci) {
  const cell_meta mi = read_meta(t, ci);
  if (mi.is_leaf()) {
    with_checkout(t.bodies + mi.body_offset, mi.n_bodies, access_mode::read,
                  [&](const body* bs) {
                    with_checkout(M_of(t, ci), kNTerm, access_mode::read_write,
                                  [&](complex_t* M) { p2m(bs, mi.n_bodies, mi.X, M); });
                  });
    return;
  }

  // Children first (in parallel if the subtree is large enough)...
  if (mi.n_bodies >= t.cfg.nspawn && mi.n_children > 1) {
    upward_children(t, mi.child_begin, mi.child_begin + mi.n_children);
  } else {
    for (std::int32_t c = mi.child_begin; c < mi.child_begin + mi.n_children; c++) {
      upward_cell(t, c);
    }
  }

  // ...then M2M into this cell.
  with_checkout(M_of(t, ci), kNTerm, access_mode::read_write, [&](complex_t* Mp) {
    for (std::int32_t c = mi.child_begin; c < mi.child_begin + mi.n_children; c++) {
      const cell_meta mc = read_meta(t, c);
      with_checkout(M_of(t, c), kNTerm, access_mode::read,
                    [&](const complex_t* Mc) { m2m(Mc, mc.X, mi.X, Mp); });
    }
  });
}

}  // namespace

void fmm_upward(const fmm_tree& t) { upward_cell(t, 0); }

// ---------------------------------------------------------------------------
// horizontal pass: dual tree traversal (M2L + P2P)
// ---------------------------------------------------------------------------

namespace {

void do_m2l(const fmm_tree& t, std::int32_t ci, const cell_meta& mi, std::int32_t cj,
            const cell_meta& mj) {
  with_checkout(M_of(t, cj), kNTerm, access_mode::read, [&](const complex_t* M) {
    with_checkout(L_of(t, ci), kNTerm, access_mode::read_write,
                  [&](complex_t* L) { m2l(M, mj.X, mi.X, L); });
  });
}

void do_p2p(const fmm_tree& t, const cell_meta& mi, const cell_meta& mj) {
  with_checkout(t.bodies + mi.body_offset, mi.n_bodies, access_mode::read, [&](const body* bi) {
    with_checkout(t.acc + mi.body_offset, mi.n_bodies, access_mode::read_write,
                  [&](body_acc* acc) {
                    if (mi.body_offset == mj.body_offset) {
                      p2p(bi, mi.n_bodies, acc, bi, mi.n_bodies);  // self leaf
                      return;
                    }
                    with_checkout(t.bodies + mj.body_offset, mj.n_bodies, access_mode::read,
                                  [&](const body* bj) {
                                    p2p(bi, mi.n_bodies, acc, bj, mj.n_bodies);
                                  });
                  });
  });
}

void traverse_pair(const fmm_tree& t, std::int32_t ci, std::int32_t cj);

/// Parallel recursion over target children; each task owns a disjoint
/// target subtree (so all L / acc writes are race-free).
void traverse_target_children(const fmm_tree& t, std::int32_t lo, std::int32_t hi,
                              std::int32_t cj) {
  if (hi - lo == 1) {
    traverse_pair(t, lo, cj);
    return;
  }
  const std::int32_t mid = lo + (hi - lo) / 2;
  const fmm_tree tc = t;
  parallel_invoke([tc, lo, mid, cj] { traverse_target_children(tc, lo, mid, cj); },
                  [tc, mid, hi, cj] { traverse_target_children(tc, mid, hi, cj); });
}

void traverse_pair(const fmm_tree& t, std::int32_t ci, std::int32_t cj) {
  const cell_meta mi = read_meta(t, ci);
  const cell_meta mj = read_meta(t, cj);

  const vec3 dX = mi.X - mj.X;
  const real_t R2 = norm2(dX) * t.cfg.theta * t.cfg.theta;
  const real_t RiRj = mi.R + mj.R;

  if (R2 > RiRj * RiRj && (ci != cj)) {
    do_m2l(t, ci, mi, cj, mj);
    return;
  }
  if (mi.is_leaf() && mj.is_leaf()) {
    do_p2p(t, mi, mj);
    return;
  }
  // Split the larger cell; prefer splitting the target so work fans out over
  // disjoint target subtrees (Taura et al.'s parallelization).
  const bool split_target = !mi.is_leaf() && (mj.is_leaf() || mi.R >= mj.R);
  if (split_target) {
    if (mi.n_bodies >= t.cfg.nspawn && mi.n_children > 1) {
      traverse_target_children(t, mi.child_begin, mi.child_begin + mi.n_children, cj);
    } else {
      for (std::int32_t c = mi.child_begin; c < mi.child_begin + mi.n_children; c++) {
        traverse_pair(t, c, cj);
      }
    }
  } else {
    // Source split: serial within the owning target task.
    for (std::int32_t c = mj.child_begin; c < mj.child_begin + mj.n_children; c++) {
      traverse_pair(t, ci, c);
    }
  }
}

}  // namespace

void fmm_traverse(const fmm_tree& t) { traverse_pair(t, 0, 0); }

// ---------------------------------------------------------------------------
// downward pass (L2L + L2P)
// ---------------------------------------------------------------------------

namespace {

void downward_cell(const fmm_tree& t, std::int32_t ci);

void downward_children(const fmm_tree& t, std::int32_t lo, std::int32_t hi) {
  if (hi - lo == 1) {
    downward_cell(t, lo);
    return;
  }
  const std::int32_t mid = lo + (hi - lo) / 2;
  const fmm_tree tc = t;
  parallel_invoke([tc, lo, mid] { downward_children(tc, lo, mid); },
                  [tc, mid, hi] { downward_children(tc, mid, hi); });
}

void downward_cell(const fmm_tree& t, std::int32_t ci) {
  const cell_meta mi = read_meta(t, ci);
  if (mi.is_leaf()) {
    with_checkout(L_of(t, ci), kNTerm, access_mode::read, [&](const complex_t* L) {
      with_checkout(t.bodies + mi.body_offset, mi.n_bodies, access_mode::read,
                    [&](const body* bs) {
                      with_checkout(t.acc + mi.body_offset, mi.n_bodies, access_mode::read_write,
                                    [&](body_acc* acc) { l2p(L, mi.X, bs, mi.n_bodies, acc); });
                    });
    });
    return;
  }

  // L2L from this cell into each child, then recurse (children own disjoint
  // L/acc ranges).
  with_checkout(L_of(t, ci), kNTerm, access_mode::read, [&](const complex_t* Lp) {
    for (std::int32_t c = mi.child_begin; c < mi.child_begin + mi.n_children; c++) {
      const cell_meta mc = read_meta(t, c);
      with_checkout(L_of(t, c), kNTerm, access_mode::read_write,
                    [&](complex_t* Lc) { l2l(Lp, mi.X, mc.X, Lc); });
    }
  });

  if (mi.n_bodies >= t.cfg.nspawn && mi.n_children > 1) {
    downward_children(t, mi.child_begin, mi.child_begin + mi.n_children);
  } else {
    for (std::int32_t c = mi.child_begin; c < mi.child_begin + mi.n_children; c++) {
      downward_cell(t, c);
    }
  }
}

}  // namespace

void fmm_downward(const fmm_tree& t) { downward_cell(t, 0); }

void fmm_solve(const fmm_tree& t) {
  parallel_fill(t.acc, t.n_bodies, kMetaGrain, body_acc{});
  // Expansions must start from zero: allocation contents are unspecified
  // and repeated solves accumulate otherwise.
  parallel_fill(t.M, t.n_cells * kNTerm, kMetaGrain, complex_t{});
  parallel_fill(t.L, t.n_cells * kNTerm, kMetaGrain, complex_t{});
  fmm_upward(t);
  fmm_traverse(t);
  fmm_downward(t);
}

// ---------------------------------------------------------------------------
// verification
// ---------------------------------------------------------------------------

fmm_error fmm_check(const fmm_tree& t, std::size_t n_sample) {
  const std::size_t ns = std::min(n_sample, t.n_bodies);
  // Exact reference for the first ns bodies by direct summation, computed in
  // a task-parallel sweep over source chunks.
  std::vector<body> sample(ns);
  std::vector<body_acc> exact(ns), approx(ns);

  for (std::size_t base = 0; base < ns; base += kMetaGrain) {
    const std::size_t len = std::min(kMetaGrain, ns - base);
    with_checkout(t.bodies + static_cast<std::ptrdiff_t>(base), len, access_mode::read,
                  [&](const body* b) { std::copy(b, b + len, sample.begin() + base); });
    with_checkout(t.acc + static_cast<std::ptrdiff_t>(base), len, access_mode::read,
                  [&](const body_acc* a) { std::copy(a, a + len, approx.begin() + base); });
  }
  for (std::size_t base = 0; base < t.n_bodies; base += kMetaGrain) {
    const std::size_t len = std::min(kMetaGrain, t.n_bodies - base);
    with_checkout(t.bodies + static_cast<std::ptrdiff_t>(base), len, access_mode::read,
                  [&](const body* src) { p2p(sample.data(), ns, exact.data(), src, len); });
  }

  real_t perr = 0, pref = 0, gerr = 0, gref = 0;
  for (std::size_t i = 0; i < ns; i++) {
    perr += (approx[i].p - exact[i].p) * (approx[i].p - exact[i].p);
    pref += exact[i].p * exact[i].p;
    gerr += norm2(approx[i].dphi - exact[i].dphi);
    gref += norm2(exact[i].dphi);
  }
  return {std::sqrt(perr / (pref + 1e-300)), std::sqrt(gerr / (gref + 1e-300))};
}

// ---------------------------------------------------------------------------
// static owner-computes baseline (the paper's "MPI" series)
// ---------------------------------------------------------------------------

double static_run_result::idleness() const {
  double total_busy = 0;
  for (double b : busy) total_busy += b;
  const double capacity = makespan * static_cast<double>(busy.size());
  return capacity <= 0 ? 0 : 1.0 - total_busy / capacity;
}

namespace {

/// Serial traversal generating all interactions of the given target subtree
/// against the whole source tree (used by the static baseline: no forks).
void traverse_serial(const fmm_tree& t, std::int32_t ci, std::int32_t cj) {
  const cell_meta mi = read_meta(t, ci);
  const cell_meta mj = read_meta(t, cj);
  const vec3 dX = mi.X - mj.X;
  const real_t R2 = norm2(dX) * t.cfg.theta * t.cfg.theta;
  const real_t RiRj = mi.R + mj.R;
  if (R2 > RiRj * RiRj && ci != cj) {
    do_m2l(t, ci, mi, cj, mj);
    return;
  }
  if (mi.is_leaf() && mj.is_leaf()) {
    do_p2p(t, mi, mj);
    return;
  }
  const bool split_target = !mi.is_leaf() && (mj.is_leaf() || mi.R >= mj.R);
  if (split_target) {
    for (std::int32_t c = mi.child_begin; c < mi.child_begin + mi.n_children; c++) {
      traverse_serial(t, c, cj);
    }
  } else {
    for (std::int32_t c = mj.child_begin; c < mj.child_begin + mj.n_children; c++) {
      traverse_serial(t, ci, c);
    }
  }
}

void downward_serial(const fmm_tree& t, std::int32_t ci) {
  const cell_meta mi = read_meta(t, ci);
  if (mi.is_leaf()) {
    with_checkout(L_of(t, ci), kNTerm, access_mode::read, [&](const complex_t* L) {
      with_checkout(t.bodies + mi.body_offset, mi.n_bodies, access_mode::read,
                    [&](const body* bs) {
                      with_checkout(t.acc + mi.body_offset, mi.n_bodies, access_mode::read_write,
                                    [&](body_acc* acc) { l2p(L, mi.X, bs, mi.n_bodies, acc); });
                    });
    });
    return;
  }
  with_checkout(L_of(t, ci), kNTerm, access_mode::read, [&](const complex_t* Lp) {
    for (std::int32_t c = mi.child_begin; c < mi.child_begin + mi.n_children; c++) {
      const cell_meta mc = read_meta(t, c);
      with_checkout(L_of(t, c), kNTerm, access_mode::read_write,
                    [&](complex_t* Lc) { l2l(Lp, mi.X, mc.X, Lc); });
    }
  });
  for (std::int32_t c = mi.child_begin; c < mi.child_begin + mi.n_children; c++) {
    downward_serial(t, c);
  }
}

/// Serial upward pass (post-order, no forks) used by the static baseline.
void upward_serial_all(const fmm_tree& t) {
  // Also reset M/L: the baseline may run after (or before) other solves.
  for (std::size_t base = 0; base < t.n_cells * kNTerm; base += kMetaGrain) {
    const std::size_t len = std::min(kMetaGrain, t.n_cells * kNTerm - base);
    with_checkout(t.M + static_cast<std::ptrdiff_t>(base), len, access_mode::write,
                  [&](complex_t* m) { std::fill(m, m + len, complex_t{}); });
    with_checkout(t.L + static_cast<std::ptrdiff_t>(base), len, access_mode::write,
                  [&](complex_t* l) { std::fill(l, l + len, complex_t{}); });
  }
  // Post-order via explicit stack.
  std::vector<std::pair<std::int32_t, bool>> stack{{0, false}};
  while (!stack.empty()) {
    auto [ci, expanded] = stack.back();
    stack.pop_back();
    const cell_meta mi = read_meta(t, ci);
    if (mi.is_leaf()) {
      with_checkout(t.bodies + mi.body_offset, mi.n_bodies, access_mode::read,
                    [&](const body* bs) {
                      with_checkout(M_of(t, ci), kNTerm, access_mode::read_write,
                                    [&](complex_t* M) { p2m(bs, mi.n_bodies, mi.X, M); });
                    });
      continue;
    }
    if (!expanded) {
      stack.push_back({ci, true});
      for (std::int32_t c = mi.child_begin; c < mi.child_begin + mi.n_children; c++) {
        stack.push_back({c, false});
      }
      continue;
    }
    with_checkout(M_of(t, ci), kNTerm, access_mode::read_write, [&](complex_t* Mp) {
      for (std::int32_t c = mi.child_begin; c < mi.child_begin + mi.n_children; c++) {
        const cell_meta mc = read_meta(t, c);
        with_checkout(M_of(t, c), kNTerm, access_mode::read,
                      [&](const complex_t* Mc) { m2m(Mc, mc.X, mi.X, Mp); });
      }
    });
  }
}

/// Frontier of target subtrees for the static partition: descend until we
/// have at least ~4 subtrees per rank (or hit leaves).
std::vector<std::int32_t> static_frontier(const fmm_tree& t) {
  std::vector<std::int32_t> frontier{0};
  const std::size_t want = static_cast<std::size_t>(ityr::n_ranks()) * 4;
  bool grew = true;
  while (frontier.size() < want && grew) {
    grew = false;
    std::vector<std::int32_t> next;
    for (std::int32_t ci : frontier) {
      const cell_meta m = read_meta(t, ci);
      if (m.is_leaf()) {
        next.push_back(ci);
      } else {
        for (std::int32_t c = m.child_begin; c < m.child_begin + m.n_children; c++) {
          next.push_back(c);
        }
        grew = true;
      }
    }
    frontier = std::move(next);
  }
  return frontier;
}

}  // namespace

static_run_result fmm_solve_static(const fmm_tree& t) {
  const int me = ityr::my_rank();
  const int n_ranks = ityr::n_ranks();
  auto& eng = rt().eng();

  // Result accumulators must start clean; rank 0 also computes the upward
  // pass (a serial stand-in for the MPI version's replicated/local trees).
  if (me == 0) {
    for (std::size_t base = 0; base < t.n_bodies; base += kMetaGrain) {
      const std::size_t len = std::min(kMetaGrain, t.n_bodies - base);
      with_checkout(t.acc + static_cast<std::ptrdiff_t>(base), len, access_mode::write,
                    [&](body_acc* a) { std::fill(a, a + len, body_acc{}); });
    }
    upward_serial_all(t);
    rt().pgas().release();
  }
  barrier();

  // Static partition of the target frontier by particle count (the MPI
  // ExaFMM's load model, paper Section 6.4 / Table 2).
  const std::vector<std::int32_t> frontier = static_frontier(t);
  std::vector<std::uint32_t> weight(frontier.size());
  std::uint64_t total_weight = 0;
  for (std::size_t i = 0; i < frontier.size(); i++) {
    weight[i] = read_meta(t, frontier[i]).n_bodies;
    total_weight += weight[i];
  }

  // Contiguous greedy split: rank r takes frontier entries until its share
  // of particles reaches total/n_ranks.
  static_run_result res;
  res.busy.assign(static_cast<std::size_t>(n_ranks), 0.0);

  // Busy/idle accounting goes through the scheduler's phase timeline — the
  // same source of truth the fork-join path uses for Table 2 idleness — so
  // static and dynamic runs are directly comparable.
  auto& tl = rt().sched().timeline();
  using phase = common::phase_timeline::phase;

  const double t0 = eng.now();
  tl.begin_region(me, eng.now_precise());
  {
    std::uint64_t acc_weight = 0;
    const std::uint64_t share = (total_weight + static_cast<std::uint64_t>(n_ranks) - 1) /
                                static_cast<std::uint64_t>(n_ranks);
    // now_precise: home-local traversal may never yield, so the committed
    // clock alone would under-report busy time.
    tl.enter(me, phase::busy, eng.now_precise());
    for (std::size_t i = 0; i < frontier.size(); i++) {
      const int owner = static_cast<int>(std::min<std::uint64_t>(
          acc_weight / std::max<std::uint64_t>(share, 1),
          static_cast<std::uint64_t>(n_ranks - 1)));
      acc_weight += weight[i];
      if (owner != me) continue;
      traverse_serial(t, frontier[i], 0);
      downward_serial(t, frontier[i]);
    }
    tl.enter(me, phase::idle, eng.now_precise());
  }
  rt().pgas().release();
  barrier();
  const double t1 = eng.now();
  res.makespan = t1 - t0;
  tl.end_region(me, eng.now_precise());

  // The timeline is shared state (the DES serializes access): after the
  // barrier every rank reads every rank's busy time directly.
  barrier();
  for (int r = 0; r < n_ranks; r++) {
    res.busy[static_cast<std::size_t>(r)] = tl.busy_of(r);
  }
  return res;
}

}  // namespace ityr::apps::fmm
