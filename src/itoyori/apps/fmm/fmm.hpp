#pragma once

/// \file
/// Distributed FMM over Itoyori (paper Section 6.4): an adaptive octree in
/// global memory, fork-join upward/horizontal/downward passes structured
/// like the task-parallel ExaFMM of Taura et al., with all data accessed
/// through checkout/checkin.
///
/// Memory layout is struct-of-arrays so that concurrent tasks touch disjoint
/// byte ranges (data-race-freedom at byte granularity):
///   * bodies  — sorted sources (read-only during passes)
///   * acc     — per-body results (written only by the task owning the
///               enclosing target leaf)
///   * cells   — tree metadata (read-only after build)
///   * M       — multipoles (written in the upward pass, one task per cell)
///   * L       — locals (written only by the task owning the target subtree)

#include <cstdint>
#include <vector>

#include "itoyori/apps/fmm/kernels.hpp"
#include "itoyori/core/ityr.hpp"

namespace ityr::apps::fmm {

struct fmm_config {
  real_t theta = 0.5;       ///< MAC: approximate when d * theta > Ri + Rj
  std::uint32_t ncrit = 32; ///< max bodies per leaf (paper: 32)
  std::uint32_t nspawn = 1000;  ///< fork only for subtrees above this many bodies
  std::uint64_t seed = 42;
};

struct cell_meta {
  vec3 X;            ///< center
  real_t R = 0;      ///< half side length
  std::uint32_t body_offset = 0;
  std::uint32_t n_bodies = 0;
  std::int32_t child_begin = -1;  ///< children are contiguous cell indices
  std::int32_t n_children = 0;
  std::uint32_t level = 0;

  bool is_leaf() const { return n_children == 0; }
};

/// The tree and its global-memory arrays.
struct fmm_tree {
  global_ptr<body> bodies;
  global_ptr<body_acc> acc;
  global_ptr<cell_meta> cells;
  global_ptr<complex_t> M;  ///< n_cells * kNTerm
  global_ptr<complex_t> L;  ///< n_cells * kNTerm
  std::size_t n_bodies = 0;
  std::size_t n_cells = 0;
  fmm_config cfg;
};

/// Fill [bodies, bodies+n) with a deterministic uniform-cube distribution
/// (the paper's particle setup), total charge normalized to ~1.
void fmm_generate_bodies(global_ptr<body> bodies, std::size_t n, std::uint64_t seed,
                         std::size_t grain);

/// Build the octree: Morton-sort the bodies and create the cell array.
/// Collective call (SPMD region); the build itself runs on rank 0's cache.
fmm_tree fmm_build_tree(global_ptr<body> bodies, std::size_t n, const fmm_config& cfg);

/// Free the tree's collective arrays (bodies excluded: caller owns them).
void fmm_destroy_tree(fmm_tree& t);

/// The three FMM passes (call inside root_exec):
void fmm_upward(const fmm_tree& t);                    // P2M + M2M
void fmm_traverse(const fmm_tree& t);                  // dual tree: M2L + P2P
void fmm_downward(const fmm_tree& t);                  // L2L + L2P

/// Convenience: zero acc, then run all three passes (inside root_exec).
void fmm_solve(const fmm_tree& t);

/// Reference direct summation for a sample of targets; returns relative L2
/// errors of potential and gradient over the first `n_sample` bodies.
struct fmm_error {
  real_t pot = 0;
  real_t grad = 0;
};
fmm_error fmm_check(const fmm_tree& t, std::size_t n_sample);

/// "MPI-like" static baseline (paper Fig. 11 "MPI" series and Table 2):
/// the same kernels with a static owner-computes partition of target
/// subtrees weighted by particle count, no work stealing. Runs in the SPMD
/// region (all ranks call it). Returns per-rank busy times for the idleness
/// metric: idleness = 1 - sum(busy) / (n_ranks * makespan).
struct static_run_result {
  std::vector<double> busy;  ///< per-rank busy seconds (traversal+downward)
  double makespan = 0;

  double idleness() const;
};
static_run_result fmm_solve_static(const fmm_tree& t);

}  // namespace ityr::apps::fmm
