#pragma once

/// \file
/// Laplace kernels in spherical harmonics, following the operator set and
/// conventions of ExaFMM's LaplaceSpherical CPU kernels (paper Section 6.4's
/// workload): P2P, P2M, M2M, M2L, L2L, L2P, plus M2P (used by tests to
/// validate each translation operator independently).
///
/// Multipole/local expansions are stored as P*(P+1)/2 complex coefficients
/// (the m >= 0 half; negative m follows from conjugate symmetry). The
/// factorial normalization constants are folded into the recurrences of
/// evalMultipole/evalLocal, exactly as in ExaFMM.

#include <complex>
#include <cstddef>

#include "itoyori/apps/fmm/geometry.hpp"

namespace ityr::apps::fmm {

inline constexpr int kP = 4;  ///< expansion order (paper: P = 4)
inline constexpr int kNTerm = kP * (kP + 1) / 2;

using complex_t = std::complex<real_t>;

/// Source body: position and charge.
struct body {
  vec3 X;
  real_t q = 0;
};

/// Target values: potential and potential gradient.
struct body_acc {
  real_t p = 0;
  vec3 dphi;
};

// ---- expansion evaluation (regular / singular solid harmonics) ----

/// Regular solid harmonics rho^n Y_n^m for n < P (full n*n+n+m indexing),
/// plus their theta derivatives.
void eval_multipole(real_t rho, real_t alpha, real_t beta, complex_t* Ynm, complex_t* YnmTheta);

/// Singular solid harmonics rho^{-n-1} Y_n^m for n < 2P (no derivatives).
void eval_local(real_t rho, real_t alpha, real_t beta, complex_t* Ynm);

// ---- operators ----

/// Direct particle-particle interaction: accumulate potential and gradient
/// at each target from every source (skipping self-interactions at zero
/// distance).
void p2p(const body* tgt, std::size_t n_tgt, body_acc* acc, const body* src, std::size_t n_src);

/// Particle -> multipole about `center`; accumulates into M[kNTerm].
void p2m(const body* bodies, std::size_t n, vec3 center, complex_t* M);

/// Multipole -> multipole translation (child expansion -> parent center).
void m2m(const complex_t* M_child, vec3 child_center, vec3 parent_center, complex_t* M_parent);

/// Multipole -> local translation between well-separated cells.
void m2l(const complex_t* M_src, vec3 src_center, vec3 tgt_center, complex_t* L_tgt);

/// Local -> local translation (parent expansion -> child center).
void l2l(const complex_t* L_parent, vec3 parent_center, vec3 child_center, complex_t* L_child);

/// Local expansion -> particles.
void l2p(const complex_t* L, vec3 center, const body* bodies, std::size_t n, body_acc* acc);

/// Multipole -> particles (potential only; used by tests and treecode-style
/// checks).
void m2p(const complex_t* M, vec3 center, const body* bodies, std::size_t n, body_acc* acc);

}  // namespace ityr::apps::fmm
