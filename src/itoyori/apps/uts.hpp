#pragma once

/// \file
/// UTS (Unbalanced Tree Search) and UTS-Mem (paper Section 6.3).
///
/// The tree shape follows the classic UTS benchmark (Olivier et al.): each
/// node carries a 20-byte SHA-1 state; child i's state is SHA-1(parent state
/// || i), and the number of children is drawn from the node's state via a
/// geometric (or binomial) distribution. The tree is therefore fully
/// deterministic given the root seed, yet highly unbalanced.
///
/// * uts_count_*     — the original UTS: counts nodes while generating the
///                     tree on the fly (no global memory access).
/// * uts_mem_build   — UTS-Mem phase 1: materializes the same tree into
///                     global memory, allocating each node noncollectively
///                     on whichever rank the work-stealing scheduler placed
///                     the task (so nearby nodes land in nearby blocks).
/// * uts_mem_traverse— UTS-Mem phase 2: counts nodes by chasing global
///                     pointers; this is the measured, cache-sensitive part.

#include <cstdint>

#include "itoyori/common/sha1.hpp"
#include "itoyori/core/ityr.hpp"

namespace ityr::apps {

/// Tree-shape parameters (a scaled-down analog of UTS's T1L/T1XL classes).
struct uts_params {
  enum class tree_kind { geometric, binomial };

  tree_kind kind = tree_kind::geometric;
  int root_seed = 19;
  // Geometric: expected branching decreases linearly from b0 at the root to
  // 0 at depth gen_mx.
  double b0 = 4.0;
  int gen_mx = 13;
  // Binomial: each node has m_child children with probability q, else 0.
  int m_child = 8;
  double q = 0.124999;

  /// Fork-join grain: subtrees whose root is deeper than this still fork.
  /// (UTS tasks are inherently fine-grained; no cutoff is used.)
};

/// UTS node identity: the SHA-1 state.
struct uts_node_id {
  common::sha1::digest_type state;
};

uts_node_id uts_root(const uts_params& p);
uts_node_id uts_child(const uts_node_id& parent, int i);
int uts_num_children(const uts_params& p, const uts_node_id& id, int depth);

/// Serial reference count (tests / serial baseline).
std::uint64_t uts_count_serial(const uts_params& p);

/// Fork-join parallel count without global memory (original UTS).
std::uint64_t uts_count_parallel(const uts_params& p);

// ---------------------------------------------------------------------------
// UTS-Mem: the tree materialized in global memory
// ---------------------------------------------------------------------------

/// In-memory tree node. Variable arity: children pointers are stored in a
/// separate noncollectively allocated array. The payload mimics UTS-Mem's
/// node record (the SHA-1 state is kept so traversal touches real data).
struct uts_mem_node {
  std::uint32_t n_children = 0;
  std::uint32_t depth = 0;
  common::sha1::digest_type state{};
  global_ptr<uts_mem_node> children[1];  // flexible-array idiom; n_children entries

  static std::size_t alloc_size(std::uint32_t n_children) {
    const std::size_t n_ptr = n_children > 0 ? n_children : 1;
    return sizeof(uts_mem_node) + (n_ptr - 1) * sizeof(global_ptr<uts_mem_node>);
  }
};

/// Build the UTS tree in global memory (parallel, work-stolen construction;
/// nodes are allocated with the noncollective policy on the executing rank).
/// Returns the root node pointer and the total node count.
struct uts_mem_tree {
  global_ptr<uts_mem_node> root{};
  std::uint64_t n_nodes = 0;
};

uts_mem_tree uts_mem_build(const uts_params& p);

/// Count nodes by traversing the global-memory tree (the measured phase:
/// read-only pointer chasing).
std::uint64_t uts_mem_traverse(global_ptr<uts_mem_node> root);

/// Free every node of the tree (post-order).
void uts_mem_destroy(global_ptr<uts_mem_node> root);

}  // namespace ityr::apps
