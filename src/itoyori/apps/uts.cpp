#include "itoyori/apps/uts.hpp"

#include <cmath>
#include <vector>

namespace ityr::apps {

namespace {

/// Uniform (0,1) value derived from a node's SHA-1 state.
double state_uniform(const uts_node_id& id) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; i++) v = (v << 8) | id.state[static_cast<std::size_t>(i)];
  double u = static_cast<double>(v >> 11) * 0x1.0p-53;
  // Clamp away from 0 and 1 so log() in the geometric draw is safe.
  if (u < 1e-12) u = 1e-12;
  if (u > 1 - 1e-12) u = 1 - 1e-12;
  return u;
}

}  // namespace

uts_node_id uts_root(const uts_params& p) {
  std::uint8_t seed_bytes[4];
  for (int i = 0; i < 4; i++) seed_bytes[i] = static_cast<std::uint8_t>(p.root_seed >> (8 * i));
  return {common::sha1::hash(seed_bytes, sizeof(seed_bytes))};
}

uts_node_id uts_child(const uts_node_id& parent, int i) {
  common::sha1 h;
  h.update(parent.state.data(), parent.state.size());
  std::uint8_t idx_bytes[4];
  for (int k = 0; k < 4; k++) idx_bytes[k] = static_cast<std::uint8_t>(i >> (8 * k));
  h.update(idx_bytes, sizeof(idx_bytes));
  return {h.finish()};
}

int uts_num_children(const uts_params& p, const uts_node_id& id, int depth) {
  const double u = state_uniform(id);
  if (p.kind == uts_params::tree_kind::geometric) {
    // Branching factor decreases linearly with depth (UTS GEO/LINEAR shape).
    if (depth >= p.gen_mx) return 0;
    const double b = p.b0 * (1.0 - static_cast<double>(depth) / static_cast<double>(p.gen_mx));
    if (b <= 0) return 0;
    const double prob = 1.0 / (1.0 + b);
    const int n = static_cast<int>(std::floor(std::log(1.0 - u) / std::log(1.0 - prob)));
    return n < 0 ? 0 : n;
  }
  // Binomial: the root always has m_child children (so the tree does not die
  // immediately); any other node has m_child children with probability q.
  if (depth == 0) return p.m_child;
  return u < p.q ? p.m_child : 0;
}

std::uint64_t uts_count_serial(const uts_params& p) {
  struct frame {
    uts_node_id id;
    int depth;
  };
  std::vector<frame> stack;
  stack.push_back({uts_root(p), 0});
  std::uint64_t count = 0;
  while (!stack.empty()) {
    frame f = stack.back();
    stack.pop_back();
    count++;
    const int n = uts_num_children(p, f.id, f.depth);
    for (int i = 0; i < n; i++) stack.push_back({uts_child(f.id, i), f.depth + 1});
  }
  return count;
}

namespace {

std::uint64_t count_subtree(const uts_params& p, const uts_node_id& id, int depth);

/// Parallel recursion over a child index range.
std::uint64_t count_children(const uts_params& p, const uts_node_id& id, int depth, int lo,
                             int hi) {
  if (hi - lo == 1) return count_subtree(p, uts_child(id, lo), depth + 1);
  const int mid = lo + (hi - lo) / 2;
  auto [a, b] = parallel_invoke([p, id, depth, lo, mid] { return count_children(p, id, depth, lo, mid); },
                                [p, id, depth, mid, hi] { return count_children(p, id, depth, mid, hi); });
  return a + b;
}

std::uint64_t count_subtree(const uts_params& p, const uts_node_id& id, int depth) {
  const int n = uts_num_children(p, id, depth);
  if (n == 0) return 1;
  return 1 + count_children(p, id, depth, 0, n);
}

}  // namespace

std::uint64_t uts_count_parallel(const uts_params& p) {
  return count_subtree(p, uts_root(p), 0);
}

// ---------------------------------------------------------------------------
// UTS-Mem
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kHeaderSize = offsetof(uts_mem_node, children);

global_ptr<global_ptr<uts_mem_node>> child_slot(global_ptr<uts_mem_node> node, int i) {
  return global_ptr<global_ptr<uts_mem_node>>(node.raw() + kHeaderSize)
         + static_cast<std::ptrdiff_t>(i);
}

struct build_result {
  global_ptr<uts_mem_node> node{};
  std::uint64_t count = 0;
};

build_result build_subtree(const uts_params& p, const uts_node_id& id, int depth);

/// Build children [lo, hi) in parallel, writing each child pointer into the
/// parent's slot array (disjoint 8-byte writes: data-race-free at byte
/// granularity).
std::uint64_t build_children(const uts_params& p, const uts_node_id& id, int depth,
                             global_ptr<uts_mem_node> parent, int lo, int hi) {
  if (hi - lo == 1) {
    build_result r = build_subtree(p, uts_child(id, lo), depth + 1);
    ityr::put(child_slot(parent, lo), r.node);
    return r.count;
  }
  const int mid = lo + (hi - lo) / 2;
  auto [a, b] = parallel_invoke(
      [p, id, depth, parent, lo, mid] { return build_children(p, id, depth, parent, lo, mid); },
      [p, id, depth, parent, mid, hi] { return build_children(p, id, depth, parent, mid, hi); });
  return a + b;
}

build_result build_subtree(const uts_params& p, const uts_node_id& id, int depth) {
  const int n = uts_num_children(p, id, depth);
  // Allocate on whichever rank this task is executing (noncollective policy,
  // paper Section 6.3: locality follows the work-stealing schedule).
  auto raw = noncoll_new<std::byte>(uts_mem_node::alloc_size(static_cast<std::uint32_t>(n)));
  auto node = raw.cast<uts_mem_node>();
  with_checkout(raw, kHeaderSize, access_mode::write, [&](std::byte* bytes) {
    auto* h = reinterpret_cast<uts_mem_node*>(bytes);
    h->n_children = static_cast<std::uint32_t>(n);
    h->depth = static_cast<std::uint32_t>(depth);
    h->state = id.state;
  });
  if (n == 0) return {node, 1};
  const std::uint64_t child_count = build_children(p, id, depth, node, 0, n);
  return {node, 1 + child_count};
}

std::uint64_t traverse_subtree(global_ptr<uts_mem_node> node);

std::uint64_t traverse_children(global_ptr<uts_mem_node> node, int lo, int hi) {
  if (hi - lo <= 2) {
    std::uint64_t c = 0;
    for (int i = lo; i < hi; i++) {
      // Fine-grained pointer chase: one 8-byte global load per child link.
      c += traverse_subtree(ityr::get(child_slot(node, i)));
    }
    return c;
  }
  const int mid = lo + (hi - lo) / 2;
  auto [a, b] = parallel_invoke([node, lo, mid] { return traverse_children(node, lo, mid); },
                                [node, mid, hi] { return traverse_children(node, mid, hi); });
  return a + b;
}

std::uint64_t traverse_subtree(global_ptr<uts_mem_node> node) {
  struct header_view {
    std::uint32_t n_children;
  };
  const auto n = static_cast<int>(
      with_checkout(node.cast<std::byte>(), sizeof(header_view), access_mode::read,
                    [](const std::byte* b) {
                      return reinterpret_cast<const header_view*>(b)->n_children;
                    }));
  if (n == 0) return 1;
  return 1 + traverse_children(node, 0, n);
}

void destroy_subtree(global_ptr<uts_mem_node> node) {
  std::uint32_t n = with_checkout(node.cast<std::byte>(), kHeaderSize, access_mode::read,
                                  [](const std::byte* b) {
                                    return reinterpret_cast<const uts_mem_node*>(b)->n_children;
                                  });
  for (std::uint32_t i = 0; i < n; i++) {
    destroy_subtree(ityr::get(child_slot(node, static_cast<int>(i))));
  }
  noncoll_delete(node.cast<std::byte>(), uts_mem_node::alloc_size(n));
}

}  // namespace

uts_mem_tree uts_mem_build(const uts_params& p) {
  build_result r = build_subtree(p, uts_root(p), 0);
  return {r.node, r.count};
}

std::uint64_t uts_mem_traverse(global_ptr<uts_mem_node> root) {
  return traverse_subtree(root);
}

void uts_mem_destroy(global_ptr<uts_mem_node> root) { destroy_subtree(root); }

}  // namespace ityr::apps
