#pragma once

/// \file
/// Cilksort: the recursive parallel merge sort of paper Fig. 1, ported
/// verbatim in structure. The array is recursively split into four spans
/// sorted in parallel, pairs are merged into a temporary buffer, and the
/// final merge lands back in the original span. At the cutoff, spans are
/// checked out and sorted/merged serially. The parallel merge splits at a
/// binary-search point, whose probes are sparse single-element global loads
/// (the "Get" category of Fig. 9).

#include <algorithm>
#include <cstdint>

#include "itoyori/core/ityr.hpp"

namespace ityr::apps {

namespace detail {

/// Serial quicksort (median-of-three, insertion sort tail), as in Cilk's
/// original cilksort leaf kernel.
template <typename T>
void quicksort_serial(T* a, std::size_t n) {
  while (n > 16) {
    // Median of three to pick a pivot.
    T* lo = a;
    T* hi = a + n - 1;
    T* mid = a + n / 2;
    if (*mid < *lo) std::swap(*mid, *lo);
    if (*hi < *mid) {
      std::swap(*hi, *mid);
      if (*mid < *lo) std::swap(*mid, *lo);
    }
    const T pivot = *mid;
    T* i = lo;
    T* j = hi;
    while (i <= j) {
      while (*i < pivot) ++i;
      while (pivot < *j) --j;
      if (i <= j) {
        std::swap(*i, *j);
        ++i;
        --j;
      }
    }
    // Recurse on the smaller side, iterate on the larger (bounded stack).
    const std::size_t left_n = static_cast<std::size_t>(j - a) + 1;
    const std::size_t right_n = n - static_cast<std::size_t>(i - a);
    if (left_n < right_n) {
      quicksort_serial(a, left_n);
      n = right_n;
      a = i;
    } else {
      quicksort_serial(i, right_n);
      n = left_n;
    }
  }
  // Insertion sort for small runs.
  for (std::size_t k = 1; k < n; k++) {
    T v = std::move(a[k]);
    std::size_t m = k;
    while (m > 0 && v < a[m - 1]) {
      a[m] = std::move(a[m - 1]);
      m--;
    }
    a[m] = std::move(v);
  }
}

template <typename T>
void merge_serial(const T* s1, std::size_t n1, const T* s2, std::size_t n2, T* d) {
  std::size_t i = 0, j = 0, k = 0;
  while (i < n1 && j < n2) d[k++] = (s2[j] < s1[i]) ? s2[j++] : s1[i++];
  while (i < n1) d[k++] = s1[i++];
  while (j < n2) d[k++] = s2[j++];
}

/// Index of the first element of s that is >= key (lower bound), probing
/// global memory element by element — the sparse-access pattern called out
/// in paper Section 3.3 / Fig. 9 ("Get").
template <typename T>
std::size_t binary_search_global(global_span<T> s, const T& key) {
  std::size_t lo = 0, hi = s.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (ityr::get(s.ptr(mid)) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace detail

/// Parallel merge of sorted s1 and s2 into d (paper Fig. 1 lines 25-45).
template <typename T>
void cilkmerge(global_span<T> s1, global_span<T> s2, global_span<T> d, std::size_t cutoff) {
  ITYR_CHECK(s1.size() + s2.size() == d.size());
  // Keep s1 the larger span so the split point is well defined.
  if (s1.size() < s2.size()) std::swap(s1, s2);

  if (d.size() < cutoff || s2.empty() || s1.size() <= 1) {
    with_checkout(s1.data(), s1.size(), access_mode::read, [&](const T* p1) {
      if (s2.empty()) {
        with_checkout(d.data(), d.size(), access_mode::write, [&](T* pd) {
          common::profiler::maybe_scope sc(&rt().prof(), common::prof_event::serial_b);
          std::copy(p1, p1 + s1.size(), pd);
        });
        return;
      }
      with_checkout(s2.data(), s2.size(), access_mode::read, [&](const T* p2) {
        with_checkout(d.data(), d.size(), access_mode::write, [&](T* pd) {
          common::profiler::maybe_scope sc(&rt().prof(), common::prof_event::serial_b);
          detail::merge_serial(p1, s1.size(), p2, s2.size(), pd);
        });
      });
    });
    return;
  }

  const std::size_t p1 = (s1.size() + 1) / 2;
  const T pivot = ityr::get(s1.ptr(p1 - 1));
  const std::size_t p2 = detail::binary_search_global(s2, pivot);
  auto [s11, s12] = split_at(s1, p1);
  auto [s21, s22] = split_at(s2, p2);
  auto [d1, d2] = split_at(d, p1 + p2);
  parallel_invoke([=] { cilkmerge(s11, s21, d1, cutoff); },
                  [=] { cilkmerge(s12, s22, d2, cutoff); });
}

/// Sort span a using b as a temporary buffer (paper Fig. 1 lines 1-24).
template <typename T>
void cilksort(global_span<T> a, global_span<T> b, std::size_t cutoff) {
  ITYR_CHECK(a.size() == b.size());
  if (a.size() < std::max<std::size_t>(cutoff, 4)) {
    with_checkout(a.data(), a.size(), access_mode::read_write, [&](T* p) {
      common::profiler::maybe_scope sc(&rt().prof(), common::prof_event::serial_a);
      detail::quicksort_serial(p, a.size());
    });
    return;
  }

  auto [a12, a34] = split_two(a);
  auto [a1, a2] = split_two(a12);
  auto [a3, a4] = split_two(a34);
  auto [b12, b34] = split_two(b);
  auto [b1, b2] = split_two(b12);
  auto [b3, b4] = split_two(b34);
  parallel_invoke([=] { cilksort(a1, b1, cutoff); },   // sort a1
                  [=] { cilksort(a2, b2, cutoff); },   // sort a2
                  [=] { cilksort(a3, b3, cutoff); },   // sort a3
                  [=] { cilksort(a4, b4, cutoff); });  // sort a4
  parallel_invoke([=] { cilkmerge(a1, a2, b12, cutoff); },   // merge a1,a2 -> b12
                  [=] { cilkmerge(a3, a4, b34, cutoff); });  // merge a3,a4 -> b34
  cilkmerge(b12, b34, a, cutoff);  // merge b12,b34 -> a
}

// ---------------------------------------------------------------------------
// driver helpers shared by tests / examples / benchmarks
// ---------------------------------------------------------------------------

/// Deterministic pseudo-random value for index i (so input generation is a
/// parallel write-only sweep).
inline std::uint32_t cilksort_input(std::size_t i, std::uint64_t seed) {
  std::uint64_t s = seed + 0x9e3779b97f4a7c15ULL * (i + 1);
  return static_cast<std::uint32_t>(common::splitmix64(s));
}

/// Fill [a, a+n) with the deterministic random input.
inline void cilksort_generate(global_ptr<std::uint32_t> a, std::size_t n, std::uint64_t seed,
                              std::size_t grain) {
  parallel_for_each(a, n, grain, access_mode::write,
                    [seed](std::uint32_t& x, std::size_t i) { x = cilksort_input(i, seed); });
}

/// Serially verify sortedness plus an order-independent checksum (catches
/// lost/duplicated elements). Runs on the root thread in grain-sized chunks
/// so arrays larger than the cache can be validated.
inline bool cilksort_validate(global_ptr<std::uint32_t> a, std::size_t n, std::uint64_t seed,
                              std::size_t grain) {
  bool ok = true;
  std::uint64_t sum = 0;
  std::uint32_t prev = 0;
  for (std::size_t base = 0; base < n && ok; base += grain) {
    const std::size_t len = std::min(grain, n - base);
    with_checkout(a + static_cast<std::ptrdiff_t>(base), len, access_mode::read,
                  [&](const std::uint32_t* p) {
                    for (std::size_t i = 0; i < len; i++) {
                      if (p[i] < prev) ok = false;
                      prev = p[i];
                      sum += p[i];
                    }
                  });
  }
  std::uint64_t expect = 0;
  for (std::size_t i = 0; i < n; i++) expect += cilksort_input(i, seed);
  return ok && sum == expect;
}

}  // namespace ityr::apps
