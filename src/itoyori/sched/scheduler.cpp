#include "itoyori/sched/scheduler.hpp"

#include <algorithm>

namespace ityr::sched {

scheduler::scheduler(sim::engine& eng, pgas::pgas_space& pgas) : eng_(eng), pgas_(pgas) {
  const auto& opt = eng_.opts();
  // Covers programmatically built options; from_env() already validated its
  // own result.
  common::validate_steal(opt.steal_batch, opt.steal_escalation_rounds, opt.node_first_prob);
  common::validate_serving(opt.serve, opt.serve_arrival_rate, opt.serve_jobs, opt.serve_mix);
  ranks_.resize(static_cast<std::size_t>(eng_.n_ranks()));
  timeline_.configure(eng_.n_ranks());
  cp_on_ = opt.critpath;
  serve_on_ = opt.serve;
  // Fairness is a serving-mode refinement: with a single job every entry
  // carries the same tag, so job_weighted would degenerate to front-claiming
  // anyway — gating it on serve keeps the off path free of the occupancy scan.
  fairness_on_ = opt.serve && opt.steal_fairness == common::steal_fairness_kind::job_weighted;
  for (auto& rs : ranks_) {
    rs.hist_task.configure(opt.hist_buckets, 1.0e-9);
    rs.hist_steal.configure(opt.hist_buckets, 1.0e-9);
    rs.hist_fence.configure(opt.hist_buckets, 1.0e-9);
    rs.hist_steal_fail.configure(opt.hist_buckets, 1.0e-9);
    rs.hist_steal_batch.configure(opt.hist_buckets, 1.0);  // entry counts, not seconds
  }
  if (opt.steal == common::steal_policy::hierarchical) {
    const int n_nodes = opt.n_nodes;
    const int rpn = opt.ranks_per_node;
    const int n_cls = eng_.topo().n_classes();
    class_nodes_.assign(static_cast<std::size_t>(n_nodes),
                        std::vector<std::vector<int>>(static_cast<std::size_t>(n_cls)));
    hier_classes_.assign(static_cast<std::size_t>(n_nodes), {});
    for (int s = 0; s < n_nodes; s++) {
      auto& row = class_nodes_[static_cast<std::size_t>(s)];
      for (int d = 0; d < n_nodes; d++) {
        if (d == s) continue;
        // Distance classes depend only on the node pair; probe any rank.
        const int c = eng_.topo().class_of(s * rpn, d * rpn);
        row[static_cast<std::size_t>(c)].push_back(d);
      }
      auto& classes = hier_classes_[static_cast<std::size_t>(s)];
      if (rpn > 1) classes.push_back(0);
      for (int c = 1; c < n_cls; c++) {
        if (!row[static_cast<std::size_t>(c)].empty()) classes.push_back(c);
      }
    }
  }
}

scheduler::stats scheduler::get_stats() const {
  stats agg;
  for (const auto& rs : ranks_) {
    agg.forks += rs.st.forks;
    agg.serialized_joins += rs.st.serialized_joins;
    agg.steal_attempts += rs.st.steal_attempts;
    agg.steals += rs.st.steals;
    agg.intra_node_steals += rs.st.intra_node_steals;
    agg.local_pops += rs.st.local_pops;
    agg.join_suspends += rs.st.join_suspends;
    agg.migrations += rs.st.migrations;
    agg.migrated_stack_bytes += rs.st.migrated_stack_bytes;
    agg.batch_steals += rs.st.batch_steals;
    agg.batch_extra_entries += rs.st.batch_extra_entries;
    agg.batch_multi_origin += rs.st.batch_multi_origin;
    agg.inter_steal_bytes += rs.st.inter_steal_bytes;
    agg.backoff_skips += rs.st.backoff_skips;
    agg.fairness_mid_claims += rs.st.fairness_mid_claims;
    agg.fairness_redirects += rs.st.fairness_redirects;
    agg.failed_probe_s += rs.st.failed_probe_s;
    for (int c = 0; c < cp_max_classes; c++) {
      agg.steal_probes_class[c] += rs.st.steal_probes_class[c];
    }
  }
  return agg;
}

thread_state* scheduler::acquire_ts() {
  if (!ts_pool_.empty()) {
    thread_state* ts = ts_pool_.back();
    ts_pool_.pop_back();
    ts->reset();
    return ts;
  }
  ts_storage_.push_back(std::make_unique<thread_state>());
  return ts_storage_.back().get();
}

void scheduler::release_ts(thread_state* ts) { ts_pool_.push_back(ts); }

void scheduler::charge_ts_touch(const thread_state* ts) {
  // Reading/updating a join descriptor that lives on another rank is a
  // small one-sided operation.
  if (ts->owner_rank != eng_.my_rank()) {
    eng_.advance(eng_.opts().net.inter_latency);
  }
}

// ---------------------------------------------------------------------------
// online critical-path profiler (ITYR_CRITPATH)
// ---------------------------------------------------------------------------
// A segment is one uninterrupted strand run on one rank. Buckets come from
// differencing this rank's stall counters across the segment, so attribution
// never charges the virtual clock: with ITYR_CRITPATH=0 the run is
// bit-identical (the cross-mode differential test pins this down).

void scheduler::cp_open(cp_frame* f) {
  if (!cp_on_) return;
  cp_rank_state& c = self().cp;
  ITYR_CHECK(c.cur == nullptr);
  const pgas::cache_stats& st = pgas_.cache().get_stats();
  c.cur = f;
  c.t0 = eng_.now_precise();
  c.acq_s = 0;
  c.fetch_base = st.fetch_stall_s;
  c.release_base = st.release_stall_s;
  for (int k = 0; k < cp_max_classes; k++) {
    c.fetch_cls_base[k] = st.fetch_stall_class_s[k];
    c.release_cls_base[k] = st.release_stall_class_s[k];
  }
}

cp_frame* scheduler::cp_close() {
  if (!cp_on_) return nullptr;
  cp_rank_state& c = self().cp;
  cp_frame* f = c.cur;
  ITYR_CHECK(f != nullptr);
  c.cur = nullptr;
  const pgas::cache_stats& st = pgas_.cache().get_stats();
  const double elapsed = eng_.now_precise() - c.t0;
  const double df = st.fetch_stall_s - c.fetch_base;
  const double dr = st.release_stall_s - c.release_base;
  // Everything the segment did not observably stall on counts as compute
  // (clamped: stall counters advance in committed time, the segment edges in
  // precise time, so tiny negatives can appear in non-deterministic mode).
  const double comp = std::max(0.0, elapsed - df - dr - c.acq_s);
  f->span.b[static_cast<int>(cp_bucket::compute)] += comp;
  f->span.b[static_cast<int>(cp_bucket::fetch_stall)] += df;
  f->span.b[static_cast<int>(cp_bucket::release_stall)] += dr;
  f->span.b[static_cast<int>(cp_bucket::acquire_fence)] += c.acq_s;
  for (int k = 0; k < cp_max_classes; k++) {
    f->span.net[k] += (st.fetch_stall_class_s[k] - c.fetch_cls_base[k]) +
                      (st.release_stall_class_s[k] - c.release_cls_base[k]);
  }
  f->work += elapsed;
  f->self_s += elapsed;
  return f;
}

void scheduler::cp_resume(cp_frame* f, bool taken_over) {
  if (!cp_on_) return;
  cp_rank_state& c = self().cp;
  if (taken_over && c.steal_cls >= 0) {
    // The continuation reached this rank through a steal: its modelled
    // mechanics (probe + CAS + descriptor fetch + migration + Acquire #2)
    // burden the resumed path. Deque residence time is NOT charged — a
    // 1-rank run's child executions would otherwise masquerade as span.
    f->span.b[static_cast<int>(cp_bucket::steal_wait)] += c.steal_cost;
    f->span.net[c.steal_cls] += c.steal_cost;
    c.steal_cls = -1;
    c.steal_cost = 0;
  }
  cp_open(f);
}

void scheduler::cp_on_join(cp_frame* p, thread_state* ts) {
  if (!cp_on_) return;
  p->work += ts->cp.work;
  // Candidate path through the child: the parent's span at fork (the shared
  // prefix) plus the child's own span. Keep whichever full path is longer,
  // with its bucket/class decomposition intact.
  cp_path cand = ts->cp.base;
  cand.add(ts->cp.span);
  if (cand.total() > p->span.total()) p->span = cand;
}

void scheduler::busy_begin() {
  timeline_.enter(eng_.my_rank(), common::phase_timeline::phase::busy, eng_.now_precise());
  if (serve_on_) self().busy_since = eng_.now_precise();
}

void scheduler::busy_end() {
  timeline_.enter(eng_.my_rank(), common::phase_timeline::phase::idle, eng_.now_precise());
  if (serve_on_) {
    rank_state& rs = self();
    if (rs.cur_job != common::no_job && rs.busy_since >= 0) {
      if (rs.cur_job >= job_busy_.size()) job_busy_.resize(rs.cur_job + 1, 0.0);
      job_busy_[rs.cur_job] += eng_.now_precise() - rs.busy_since;
    }
    rs.busy_since = -1;
  }
}

void scheduler::set_cur_job(common::job_id_t job) {
  if (!serve_on_) return;
  rank_state& rs = self();
  if (rs.cur_job == job) return;
  const double now = eng_.now_precise();
  if (rs.busy_since >= 0) {
    if (rs.cur_job != common::no_job) {
      if (rs.cur_job >= job_busy_.size()) job_busy_.resize(rs.cur_job + 1, 0.0);
      job_busy_[rs.cur_job] += now - rs.busy_since;
    }
    rs.busy_since = now;
  }
  rs.cur_job = job;
  // Cache-traffic attribution follows the running job (per-job fetch /
  // write-back / capacity accounting in the coherence stack).
  pgas_.cache().set_current_job(job);
}

void scheduler::reap() {
  rank_state& rs = self();
  for (sim::fiber* f : rs.dead) eng_.free_fiber(f);
  rs.dead.clear();
}

scheduler::resume_kind scheduler::consume_note() {
  rank_state& rs = self();
  const resume_kind k = rs.note;
  ITYR_CHECK(k != resume_kind::none);
  rs.note = resume_kind::none;
  return k;
}

void scheduler::poll() {
  // The scheduler's poll points double as the periodic-sampling heartbeat
  // for counter time-series in the trace.
  if (trace_ != nullptr) trace_->poll_sample(eng_.my_rank(), eng_.now_precise());
  // Time spent here is (almost entirely) thief-requested delayed write-backs
  // (Release #1 executed lazily, Section 5.2).
  common::profiler::maybe_scope sc(prof_, common::prof_event::release_lazy);
  pgas_.poll();
}

// ---------------------------------------------------------------------------
// fork
// ---------------------------------------------------------------------------

thread_handle scheduler::fork(std::function<void(thread_state*)> child_fn) {
  // Default: the child belongs to whatever job the forking task runs under
  // (no_job outside serving mode), so tags propagate down every subtree.
  return fork_tagged(std::move(child_fn), serve_on_ ? self().cur_job : common::no_job);
}

thread_handle scheduler::fork_tagged(std::function<void(thread_state*)> child_fn,
                                     common::job_id_t job) {
  ITYR_CHECK(active_);
  // Checked-out regions must be checked in before any point where the
  // thread can migrate (paper Section 3.3) — fork is such a point.
  ITYR_CHECK(pgas_.cache().checked_out_bytes() == 0 ||
             !"fork while global memory is checked out");
  rank_state& rs = self();
  rs.st.forks++;
  poll();  // DoReleaseIfRequested is polled at every fork (Section 5.2)
  // Commit this task's measured compute to the virtual clock and give other
  // ranks a chance to interleave (steal) at this fork point. This is both
  // the fork's modelled overhead and the DES's concurrency granularity.
  eng_.yield();

  thread_state* ts = acquire_ts();
  ts->owner_rank = eng_.my_rank();
  ts->job = job;
  // The parent's job survives migration on this fiber's stack: after the
  // continuation resumes (possibly on another rank, possibly after running a
  // differently-tagged child), the rank's current job must be the parent's.
  const common::job_id_t parent_job = serve_on_ ? rs.cur_job : common::no_job;

  // Release #1 (paper Fig. 5/6). Its execution depends on the policy:
  //  * write_back_lazy — deferred: a handler rides along with the stealable
  //    continuation and the write-back happens only if a thief requests it;
  //  * write_back      — eager: all dirty data is flushed at *every* fork,
  //    which is exactly what makes it expensive for fine-grained tasks
  //    (the Fig. 7 comparison);
  //  * write_through / none — no dirty data can exist; nothing to release.
  pgas::release_handler rh{};
  const auto policy = eng_.opts().policy;
  if (policy == common::cache_policy::write_back_lazy) {
    rh = pgas_.release_lazy();
  } else if (policy == common::cache_policy::write_back) {
    common::profiler::maybe_scope sc(prof_, common::prof_event::release);
    pgas_.release();
  }

  const std::uint64_t serial = ++serial_counter_;
  sim::fiber* parent_fib = eng_.current_fiber();

  sim::fiber* child_fib = eng_.spawn_fiber(
      [this, fn = std::move(child_fn), ts, serial] { child_body(fn, ts, serial); });

  // Critical path: the parent's segment ends at the fork point; the child's
  // path shares the parent's span so far as its prefix. (parent_frame lives
  // on this fiber's stack, so it survives migration with the continuation.)
  cp_frame* parent_frame = nullptr;
  if (cp_on_) {
    parent_frame = cp_close();
    ts->cp.base = parent_frame->span;
  }

  rs.deque.push_back({parent_fib, rh, serial, parent_job});
  occ_add(parent_job, +1);
  // Child-first: run the child immediately; the parent's continuation is now
  // stealable. Acquire #3 is skipped because the child starts on this rank.
  eng_.switch_to(child_fib);

  // --- the parent continuation resumes here, on some rank ---
  reap();
  set_cur_job(parent_job);
  const resume_kind k = consume_note();
  cp_resume(parent_frame, k == resume_kind::taken_over);
  if (k == resume_kind::child_done) {
    self().st.serialized_joins++;
    return {ts, true};
  }
  ITYR_CHECK(k == resume_kind::taken_over);
  return {ts, false};
}

void scheduler::child_body(const std::function<void(thread_state*)>& fn, thread_state* ts,
                           std::uint64_t parent_serial) {
  set_cur_job(ts->job);
  cp_open(&ts->cp);
  try {
    fn(ts);
  } catch (...) {
    ts->error = std::current_exception();
  }

  rank_state& rs = self();
  if (!rs.deque.empty() && rs.deque.back().serial == parent_serial) {
    // Fast path: the parent was not stolen. The child was effectively a
    // serialized function call; skip all fences (work-first principle).
    cont_entry e = rs.deque.back();
    rs.deque.pop_back();
    occ_add(e.job, -1);
    ts->finished = true;
    rs.note = resume_kind::child_done;
    if (cp_on_) {
      cp_close();
      rs.hist_task.record(ts->cp.self_s);
    }
    rs.dead.push_back(eng_.current_fiber());
    eng_.exit_to(e.fib);
  }

  // Slow path: the parent's continuation was stolen (or locally resumed by
  // the worker loop after we blocked at some inner join). Publish our
  // updates (Release #2) before signalling completion.
  {
    common::profiler::maybe_scope sc(prof_, common::prof_event::release);
    const double f0 = eng_.now_precise();
    pgas_.release();
    rs.hist_fence.record(eng_.now_precise() - f0);
  }
  // Async release: the Release #2 round above was only *issued*; tell the
  // joiner when it becomes visible (0 in synchronous mode).
  ts->release_watermark = pgas_.cache().visibility_watermark();
  charge_ts_touch(ts);
  ts->finished = true;
  if (cp_on_) {
    // The child's strand ends here; the migration advance below (if any)
    // belongs to the *parent's* resumed path and is priced into no segment.
    cp_close();
    rs.hist_task.record(ts->cp.self_s);
  }

  if (ts->parent_waiting) {
    // The parent suspended at join; the last finisher resumes it here
    // (possibly migrating it to this rank).
    sim::fiber* pf = ts->parent_fiber;
    if (ts->parent_wait_rank != eng_.my_rank()) {
      rs.st.migrations++;
      const std::size_t stack_bytes = pf->live_stack_bytes();
      rs.st.migrated_stack_bytes += stack_bytes;
      // Migration cost is priced by the distance class between the parent's
      // wait rank and here (flat topology reproduces the old intra/inter
      // split exactly).
      eng_.advance(eng_.topo().latency(ts->parent_wait_rank, eng_.my_rank()) +
                   static_cast<double>(stack_bytes) /
                       eng_.topo().bandwidth(ts->parent_wait_rank, eng_.my_rank()));
    }
    rs.note = resume_kind::join_done;
    rs.dead.push_back(eng_.current_fiber());
    eng_.exit_to(pf);
  }

  // Parent will discover ts->finished at its join; return to the worker.
  rank_state& rs2 = self();
  rs2.dead.push_back(eng_.current_fiber());
  eng_.exit_to(rs2.sched_fiber);
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

void scheduler::join(thread_handle& h) {
  ITYR_CHECK(h.ts != nullptr);
  ITYR_CHECK(pgas_.cache().checked_out_bytes() == 0 ||
             !"join while global memory is checked out");
  thread_state* ts = h.ts;

  if (h.serialized) {
    // Fast path: child already completed on this rank with no steal in
    // between; its effects are in our cache. No fences (Section 5.1).
    if (cp_on_) {
      // Split the segment at the join so the span comparison sees the
      // parent's up-to-date path (in a deterministic serial chain the split
      // segment is exactly empty, preserving span == work to the bit).
      cp_frame* f = cp_close();
      cp_on_join(f, ts);
      cp_open(f);
    }
    if (ts->error) {
      auto err = ts->error;
      recycle(h);
      std::rethrow_exception(err);
    }
    return;
  }

  poll();

  // The parent was stolen at fork: the join is a real synchronization.
  // Release #3 first (it yields; afterwards the finished-check plus suspend
  // runs without yielding, so no wakeup can be lost).
  {
    common::profiler::maybe_scope sc(prof_, common::prof_event::release);
    const double f0 = eng_.now_precise();
    pgas_.release();
    self().hist_fence.record(eng_.now_precise() - f0);
  }
  charge_ts_touch(ts);

  if (!ts->finished) {
    rank_state& rs = self();
    rs.st.join_suspends++;
    ts->parent_waiting = true;
    ts->parent_fiber = eng_.current_fiber();
    ts->parent_wait_rank = eng_.my_rank();
    // Stack local: the joiner's own job, restored after a resume that may
    // land on another rank whose current job is the finishing child's.
    const common::job_id_t my_job = serve_on_ ? rs.cur_job : common::no_job;
    cp_frame* self_frame = cp_close();  // segment ends at the suspension
    busy_end();
    eng_.switch_to(rs.sched_fiber);
    // Resumed by the finishing child (maybe on another rank).
    busy_begin();
    set_cur_job(my_job);
    reap();
    const resume_kind k = consume_note();
    ITYR_CHECK(k == resume_kind::join_done);
    // Blocked-at-join time is the child's execution, not path length; the
    // resumed segment starts fresh here (join_done carries no steal note).
    cp_resume(self_frame, /*taken_over=*/false);
  }

  // Acquire #1: observe the child's (and our own released) writes. The
  // child's Release #2 may still be in flight under async release; its
  // stamped watermark tells us how long (no-op when 0).
  {
    common::profiler::maybe_scope sc(prof_, common::prof_event::acquire);
    const double f0 = eng_.now_precise();
    pgas_.acquire_watermark(ts->release_watermark);
    const double d = eng_.now_precise() - f0;
    self().hist_fence.record(d);
    if (cp_on_) self().cp.acq_s += d;
  }

  if (cp_on_) {
    cp_frame* f = cp_close();
    cp_on_join(f, ts);
    cp_open(f);
  }

  if (ts->error) {
    auto err = ts->error;
    recycle(h);
    std::rethrow_exception(err);
  }
}

void scheduler::recycle(thread_handle& h) {
  ITYR_CHECK(h.ts != nullptr);
  release_ts(h.ts);
  h.ts = nullptr;
}

// ---------------------------------------------------------------------------
// worker loop & stealing
// ---------------------------------------------------------------------------

int scheduler::pick_victim_hierarchical(rank_state& rs) {
  const auto& opt = eng_.opts();
  const int me = eng_.my_rank();
  // Affinity: re-probe the last successful victim first — a deque we just
  // took work from is the best predictor of more. The slot is consumed here
  // and re-armed only by another success, so one failed affinity probe falls
  // back to the ladder (it does count as a ladder failure; see
  // note_steal_fail).
  if (rs.hier_last >= 0) {
    const int v = rs.hier_last;
    rs.hier_last = -1;
    return v;
  }
  const int my_node = eng_.node_of(me);
  const auto& classes = hier_classes_[static_cast<std::size_t>(my_node)];
  const int cls = classes[static_cast<std::size_t>(rs.hier_cls)];
  const int rpn = opt.ranks_per_node;
  if (cls == 0) {
    // Same-node peers: draw among the rpn-1 others, as node_first does.
    int v = my_node * rpn +
            static_cast<int>(eng_.rng().below(static_cast<std::uint64_t>(rpn - 1)));
    if (v >= me) v++;
    return v;
  }
  const auto& nodes = class_nodes_[static_cast<std::size_t>(my_node)][static_cast<std::size_t>(cls)];
  const int nd = nodes[eng_.rng().below(nodes.size())];
  return nd * rpn + static_cast<int>(eng_.rng().below(static_cast<std::uint64_t>(rpn)));
}

void scheduler::note_steal_fail(rank_state& rs, int victim, double t0, bool probed) {
  const auto& opt = eng_.opts();
  if (probed) {
    // hist_steal only sees successes; this is the always-on record of what
    // the idle loop burned on empty/raced probes (stats only — no clock).
    const double d = eng_.now_precise() - t0;
    rs.st.failed_probe_s += d;
    rs.hist_steal_fail.record(d);
  }
  if (opt.steal == common::steal_policy::hierarchical) {
    const auto& classes = hier_classes_[static_cast<std::size_t>(eng_.node_of(eng_.my_rank()))];
    rs.hier_fails++;
    if (rs.hier_fails >= opt.steal_escalation_rounds) {
      // Escalate to the next farther class; past the farthest, wrap back to
      // the nearest so fresh class-0 work is rediscovered without a success.
      rs.hier_fails = 0;
      rs.hier_cls = (rs.hier_cls + 1) % static_cast<int>(classes.size());
    }
  }
  if (probed && opt.steal_adaptive_backoff) {
    backoff_entry& be = rs.backoff[static_cast<std::size_t>(victim) & (backoff_slots - 1)];
    if (be.victim == victim) {
      be.fails++;
    } else {
      be.victim = victim;
      be.fails = 1;
    }
    // The suppression window must outlast the idle loop's own exponential
    // pacing (up to 32x steal_backoff between rounds), or a re-draw of the
    // same empty victim lands after the window expired and the table never
    // skips anything. With fails >= 1 the shift is at least 5, so the
    // minimum window is 32x steal_backoff — matching the idle loop's
    // longest inter-round gap — and it doubles per consecutive empty probe
    // up to 1024x. Keep this floor >= the idle-loop cap when tuning either.
    const int shift = 4 + (be.fails < 6 ? be.fails : 6);
    be.until = eng_.now_precise() + opt.steal_backoff * static_cast<double>(1 << shift);
  }
}

void scheduler::note_steal_success(rank_state& rs, int victim) {
  const auto& opt = eng_.opts();
  if (opt.steal == common::steal_policy::hierarchical) {
    rs.hier_fails = 0;
    // Reset the ladder to the nearest class: locality is re-earned after
    // every success (restarting at the successful distance instead turns one
    // far steal into a persistent far bias and collapses the intra-node
    // share on steal-heavy workloads).
    rs.hier_cls = 0;
    // Affinity is intra-node only: a neighbor's deque we just drained from
    // is worth re-probing at shared-memory cost, but pinning to a *remote*
    // victim would keep pulling work (and its stack bytes) over the same
    // far link the ladder exists to avoid.
    if (eng_.same_node(eng_.my_rank(), victim)) rs.hier_last = victim;
  }
  if (opt.steal_adaptive_backoff) {
    backoff_entry& be = rs.backoff[static_cast<std::size_t>(victim) & (backoff_slots - 1)];
    if (be.victim == victim) be = backoff_entry{};
  }
}

void scheduler::occ_add(common::job_id_t job, int delta) {
  if (!fairness_on_) return;
  const auto j = static_cast<std::size_t>(job);
  if (j >= job_occ_.size()) job_occ_.resize(j + 1, 0);
  if (delta < 0) {
    ITYR_CHECK(job_occ_[j] > 0);
    job_occ_[j]--;
  } else {
    job_occ_[j] += static_cast<std::uint64_t>(delta);
  }
}

bool scheduler::fair_underserved_here(const rank_state& vs) const {
  // A job is under-served when its cluster-wide deque occupancy is at or
  // below the average over live jobs; a skewed board (one deep subtree
  // flooding the deques) pushes every hog strictly above the average, so
  // its entries stop qualifying while the starved jobs' few entries do.
  std::uint64_t total = 0;
  std::uint64_t live = 0;
  for (const std::uint64_t c : job_occ_) {
    total += c;
    live += (c > 0) ? 1 : 0;
  }
  if (live <= 1) return true;
  for (const cont_entry& ce : vs.deque) {
    if (job_occ_[ce.job] * live <= total) return true;
  }
  return false;
}

bool scheduler::try_steal() {
  rank_state& rs = self();
  const int n = eng_.n_ranks();
  if (n == 1) return false;
  common::profiler::maybe_scope steal_sc(prof_, common::prof_event::steal);
  const double t0 = eng_.now_precise();  // steal-latency histogram start

  const auto& opt = eng_.opts();
  const int me = eng_.my_rank();

  // Victim selection: uniformly random (paper Section 2.1), node-first (a
  // two-tier locality-aware extension; Section 8 future work), or the
  // hierarchical escalation ladder over the topology's distance classes
  // (docs/internals.md "Steal protocol").
  //
  // Adaptive backoff filters the selection: a victim found empty recently is
  // suppressed for an exponentially growing window, and the round re-draws
  // (up to a small cap) instead of probing it. A skip issues no probe
  // traffic — no clock advance, no steal_attempt — but does count as a
  // ladder failure, so a node whose peers are all suppressed escalates to a
  // farther class within the same round instead of going idle on it.
  int victim = -1;
  const int rpn = opt.ranks_per_node;
  const int max_picks = opt.steal_adaptive_backoff ? 8 : 1;
  // Job-weighted fairness (ITYR_STEAL_FAIRNESS, serving mode) turns the
  // round into a short hunt: a probe that finds only well-served jobs'
  // entries is released — the unfair crowd will drain it anyway — and the
  // round re-draws, up to kFairnessProbes bounds reads, looking for a deque
  // holding an under-served job's entry. With one live job every deque
  // qualifies on the first probe, so fairness costs nothing off the skewed
  // case it exists for.
  constexpr int kFairnessProbes = 4;
  const int fair_rounds = fairness_on_ ? kFairnessProbes : 1;
  for (int fr = 0;; fr++) {
    for (int pick = 0;; pick++) {
      if (opt.steal == common::steal_policy::hierarchical) {
        victim = pick_victim_hierarchical(rs);
      } else if (opt.steal == common::steal_policy::node_first && rpn > 1 &&
                 eng_.rng().uniform() < opt.node_first_prob) {
        const int node_base = eng_.node_of(me) * rpn;
        victim =
            node_base + static_cast<int>(eng_.rng().below(static_cast<std::uint64_t>(rpn - 1)));
        if (victim >= me) victim++;
      } else {
        victim = static_cast<int>(eng_.rng().below(static_cast<std::uint64_t>(n - 1)));
        if (victim >= me) victim++;
      }
      if (!opt.steal_adaptive_backoff) break;
      const backoff_entry& be =
          rs.backoff[static_cast<std::size_t>(victim) & (backoff_slots - 1)];
      if (be.victim != victim || eng_.now_precise() >= be.until) break;
      rs.st.backoff_skips++;
      note_steal_fail(rs, victim, t0, /*probed=*/false);
      if (pick + 1 >= max_picks) return false;  // everything drawn is cooling off
    }

    rs.st.steal_attempts++;
    rs.st.steal_probes_class[std::min(eng_.topo().class_of(me, victim), cp_max_classes - 1)]++;

    // Probe the victim's deque bounds: one small one-sided read.
    eng_.advance(eng_.topo().latency(me, victim));
    if (ranks_[static_cast<std::size_t>(victim)].deque.empty()) {
      note_steal_fail(rs, victim, t0, /*probed=*/true);
      if (fr + 1 >= fair_rounds) return false;
      continue;
    }
    if (fr + 1 >= fair_rounds ||
        fair_underserved_here(ranks_[static_cast<std::size_t>(victim)])) {
      break;
    }
    // Only well-served jobs queued here: count the round as a miss (the
    // bounds read was paid) and hunt on.
    rs.st.fairness_redirects++;
    note_steal_fail(rs, victim, t0, /*probed=*/true);
  }
  rank_state& vs = ranks_[static_cast<std::size_t>(victim)];

  const bool same_node = eng_.same_node(me, victim);
  // Steal traffic is priced by the (me, victim) distance class: on a fat
  // tree, stealing across the core costs measurably more than within a leaf
  // switch, which is what makes node-first stealing visible in ablations.
  const double latency = eng_.topo().latency(me, victim);
  const double bandwidth = eng_.topo().bandwidth(me, victim);

  // CAS to claim the top entry (fully one-sided steal; the victim's CPU is
  // not involved). The round trip yields, so the entry may be gone or
  // claimed by another thief when we land: re-check.
  pgas_.cache().poll();
  eng_.advance(opt.net.atomic_latency);
  if (vs.deque.empty()) {
    note_steal_fail(rs, victim, t0, /*probed=*/true);
    return false;
  }

  // Claim the top entry — and, under ITYR_STEAL_BATCH, up to
  // min(steal_batch, ceil(depth/2)) contiguous top entries in this same
  // probe+CAS round ("steal half", capped). Claiming from the top leaves the
  // victim its deepest entries, so its fast-path bottom entry survives
  // whenever depth >= 2; the batch is exactly what the CAS observed as the
  // contiguous top of the deque, so the one-sided claim invariant holds.
  const std::size_t victim_before = vs.deque.size();
  std::size_t claim_cap = 1;
  if (opt.steal_batch > 1) claim_cap = std::min(opt.steal_batch, (victim_before + 1) / 2);
  // Under the hierarchical policy, steal-half is intra-node only: batching
  // amortizes the probe+CAS round where the stack bytes move at shared-memory
  // cost, while a far steal claims a single continuation so migrated bytes
  // over the thin core links stay bounded (the ladder makes far steals the
  // rare balancing case, not the common path). Flat policies keep the plain
  // cap — ITYR_STEAL_BATCH alone is distance-blind by design.
  if (opt.steal == common::steal_policy::hierarchical && !same_node) claim_cap = 1;

  // Steal fairness (ITYR_STEAL_FAIRNESS=job_weighted, serving mode): instead
  // of blindly claiming the victim's front entry, claim the front-most entry
  // of the job that is most under-served CLUSTER-WIDE (fewest live deque
  // entries anywhere), so one job's deep subtree cannot monopolize every
  // probe that lands on its host. The victim's per-job occupancy and the
  // aggregated totals piggyback on the bounds read already paid for above
  // (victims publish a small per-job count array next to the deque bounds),
  // so the scan costs no extra modelled traffic. Ties break toward the
  // smaller job id; with a single job (or fairness off) the front entry wins
  // and the claim is bit-identical to the unfair path.
  std::size_t claim_at = 0;
  if (fairness_on_ && vs.deque.size() > 1) {
    common::job_id_t pick = vs.deque[0].job;
    std::uint64_t pick_occ = job_occ_[pick];
    for (const cont_entry& ce : vs.deque) {
      const std::uint64_t o = job_occ_[ce.job];
      if (o < pick_occ || (o == pick_occ && ce.job < pick)) {
        pick = ce.job;
        pick_occ = o;
      }
    }
    while (vs.deque[claim_at].job != pick) claim_at++;
    if (claim_at > 0) rs.st.fairness_mid_claims++;
  }

  cont_entry e = vs.deque[claim_at];
  vs.deque.erase(vs.deque.begin() + static_cast<std::ptrdiff_t>(claim_at));
  occ_add(e.job, -1);
  rs.st.steals++;
  if (same_node) rs.st.intra_node_steals++;
  const double t_claim = eng_.now_precise();  // victim-side claim (CAS landed)

  // Batch extras queue behind the triggering entry on the thief's own deque
  // (empty here — a worker only steals when out of local work), preserving
  // victim order: later local pops take the deepest first, keeping the
  // child-first discipline. Each entry keeps its own release handler, so a
  // re-steal from this rank re-synchronizes independently.
  const std::size_t thief_before = rs.deque.size();
  std::size_t total_stack = e.fib->live_stack_bytes();
  // Acquire #2 must cover every claimed entry's release handler. Entries
  // pushed by the same rank carry epochs that grow with deque order (front
  // is the oldest push), so within one origin rank the last-seen needed
  // handler covers all earlier ones. But a deque is NOT single-origin:
  // batch extras parked here by a previous batch steal keep the handler of
  // the rank that originally pushed them, so a claim can span mixed-origin
  // runs. wait_handler targets a single rank's epoch — merging across ranks
  // would silently skip the other ranks' releases — so we keep one
  // max-epoch handler per distinct origin rank and acquire each.
  pgas::release_handler rh = e.rh;
  std::vector<pgas::release_handler> extra_rhs;  // origins beyond rh.rank (rare)
  std::size_t claim = 1;
  for (; claim < claim_cap; claim++) {
    // A batch never spans jobs: the extras are the contiguous run of entries
    // with the triggering entry's tag (in single-job mode every tag is
    // no_job, so this clamps nothing and the claim matches the plain cap).
    if (claim_at >= vs.deque.size() || vs.deque[claim_at].job != e.job) break;
    cont_entry ex = vs.deque[claim_at];
    vs.deque.erase(vs.deque.begin() + static_cast<std::ptrdiff_t>(claim_at));
    // Occupancy is unchanged: the extra is re-parked on the thief's deque
    // below, same job, still claimable.
    total_stack += ex.fib->live_stack_bytes();
    if (ex.rh.needed()) {
      if (!rh.needed() || ex.rh.rank == rh.rank) {
        rh = ex.rh;  // same origin: later deque position => epoch no smaller
      } else {
        bool found = false;
        for (auto& h : extra_rhs) {
          if (h.rank == ex.rh.rank) {
            h = ex.rh;
            found = true;
            break;
          }
        }
        if (!found) extra_rhs.push_back(ex.rh);
      }
    }
    rs.deque.push_back(ex);
  }
  if (!extra_rhs.empty()) rs.st.batch_multi_origin++;
  if (claim > 1) {
    rs.st.batch_steals++;
    rs.st.batch_extra_entries += claim - 1;
  }
  rs.hist_steal_batch.record(static_cast<double>(claim));

  // Fetch the continuation descriptor(s) and migrate the thread stacks: one
  // latency for the round plus bandwidth for every byte — the latency
  // amortization is what makes batching pay at far distance classes.
  rs.st.migrations += claim;
  rs.st.migrated_stack_bytes += total_stack;
  if (!same_node) rs.st.inter_steal_bytes += total_stack;
  eng_.advance(latency + static_cast<double>(total_stack) / bandwidth);

  // Acquire #2: synchronize with the pushing ranks' delayed Release #1,
  // plus any async rounds the victim had already issued when it pushed each
  // entry (the lazy handler only covers data that was still dirty at the
  // fork). Reading the victim's current watermark piggybacks on the
  // one-sided steal traffic above; it is conservative — at least the
  // push-time value. Foreign-origin extras on the victim's deque need no
  // extra watermark read: when the victim stole them, its wait_visibility
  // folded their origin's watermark into its own, so the victim's watermark
  // transitively covers them.
  {
    common::profiler::maybe_scope sc(prof_, common::prof_event::acquire);
    const double f0 = eng_.now_precise();
    if (extra_rhs.empty()) {
      pgas_.acquire(rh);
    } else {
      extra_rhs.insert(extra_rhs.begin(), rh);
      pgas_.acquire(extra_rhs.data(), extra_rhs.size());
    }
    pgas_.cache().wait_visibility(pgas_.cache_of(victim).visibility_watermark());
    rs.hist_fence.record(eng_.now_precise() - f0);
  }
  // Thief<-victim pairing as a trace flow arrow: starts where the entry was
  // claimed on the victim's track, lands when the migrated task is runnable.
  // A batch travels as ONE flow, annotated with its size and both endpoints'
  // deque-depth deltas (trace_lint cross-checks them); single-entry steals
  // keep the plain unannotated flow so off-path traces stay byte-identical.
  if (trace_ != nullptr) {
    if (claim == 1) {
      trace_->flow(victim, t_claim, me, eng_.now_precise(), "steal", e.job);
    } else {
      trace_->flow_batch(victim, t_claim, me, eng_.now_precise(), "steal",
                         static_cast<std::uint32_t>(claim),
                         static_cast<std::uint32_t>(victim_before),
                         static_cast<std::uint32_t>(victim_before - claim),
                         static_cast<std::uint32_t>(thief_before),
                         static_cast<std::uint32_t>(thief_before + claim - 1), e.job);
    }
  }
  const double steal_cost = eng_.now_precise() - t0;
  rs.hist_steal.record(steal_cost);
  if (cp_on_) {
    // Pending note for the taken_over resume: the steal's modelled mechanics
    // burden the stolen continuation's path, classed by thief<->victim
    // distance (intra-node steals land in net[0], which what-if keeps). The
    // note is consumed by the very next resume — the triggering entry `e` —
    // so a batch's whole burden lands on the entry that caused the probe;
    // the extras are later plain local pops and carry no steal charge.
    rs.cp.steal_cls = std::min(eng_.topo().class_of(me, victim), cp_max_classes - 1);
    rs.cp.steal_cost = steal_cost;
  }
  note_steal_success(rs, victim);
  return_to_task_ = e.fib;
  return_to_job_ = e.job;
  return true;
}

void scheduler::worker_loop() {
  // Exponential backoff between failed steal rounds (capped): keeps idle
  // workers from hammering victims while work is scarce, without hurting
  // time-to-steal much relative to task granularity.
  int failed_rounds = 0;
  while (!done_) {
    reap();
    poll();

    rank_state& rs = self();
    if (!rs.deque.empty()) {
      // Our own bottom-most continuation is ready work (its child blocked or
      // completed elsewhere). Same rank, never migrated: no fences.
      cont_entry e = rs.deque.back();
      rs.deque.pop_back();
      occ_add(e.job, -1);
      rs.st.local_pops++;
      rs.note = resume_kind::taken_over;
      set_cur_job(e.job);
      busy_begin();
      eng_.switch_to(e.fib);
      busy_end();
      failed_rounds = 0;
      continue;
    }

    timeline_.enter(eng_.my_rank(), common::phase_timeline::phase::steal, eng_.now_precise());
    if (try_steal()) {
      sim::fiber* f = return_to_task_;
      return_to_task_ = nullptr;
      rs.note = resume_kind::taken_over;
      set_cur_job(return_to_job_);
      return_to_job_ = common::no_job;
      busy_begin();
      eng_.switch_to(f);
      busy_end();
      failed_rounds = 0;
    } else {
      // Backoff waiting is idle time, not steal time.
      timeline_.enter(eng_.my_rank(), common::phase_timeline::phase::idle, eng_.now_precise());
      // Nothing to run: opportunistically push out dirty data (and retire
      // completed rounds) so the next real fence finds less to do. Bails
      // without stalling if the in-flight budget is full (ITYR_ASYNC_RELEASE
      // off: no-op).
      pgas_.idle_flush();
      // Idle ranks are also the cheapest place to charge a due placement
      // pass (ITYR_MIGRATION / ITYR_REPLICATION off: no-op).
      pgas_.placement_poll();
      const int shift = failed_rounds < 5 ? failed_rounds : 5;
      eng_.advance(eng_.opts().steal_backoff * static_cast<double>(1 << shift));
      failed_rounds++;
    }
  }
  reap();
}

// ---------------------------------------------------------------------------
// root_exec
// ---------------------------------------------------------------------------

void scheduler::root_exec(std::function<void()> root_fn) {
  ITYR_CHECK(!active_ || !"root_exec cannot be nested");

  // Entering the fork-join region is a global synchronization point: all
  // SPMD-mode writes must be visible to every task.
  pgas_.barrier();

  rank_state& rs = self();
  rs.sched_fiber = eng_.current_fiber();
  // Re-entry hygiene: a previous fork-join region must not leak per-rank
  // resume notes or critical-path bookkeeping into this one. A clean region
  // consumes every note and closes every segment, but the pending steal note
  // and the open-segment pointer are only overwritten lazily — reset them
  // eagerly so a second root_exec can never misattribute its first resume.
  // Pure bookkeeping: no clock or RNG effect, so single-region runs are
  // bit-identical with or without this block.
  rs.note = resume_kind::none;
  rs.cp.cur = nullptr;
  rs.cp.steal_cls = -1;
  rs.cp.steal_cost = 0;
  rs.cur_job = common::no_job;
  rs.busy_since = -1;
  timeline_.begin_region(eng_.my_rank(), eng_.now_precise());

  if (eng_.my_rank() == 0) {
    done_ = false;
    active_ = true;
    root_error_ = nullptr;
    sim::fiber* root_fib = eng_.spawn_fiber([this, fn = std::move(root_fn)] {
      if (cp_on_) {
        cp_root_ = {};
        cp_open(&cp_root_);
      }
      try {
        fn();
      } catch (...) {
        root_error_ = std::current_exception();
      }
      // The root thread may finish on any rank; flush its updates and stop
      // the cluster.
      pgas_.release();
      rank_state& cur = self();
      if (cp_on_) {
        cp_close();
        cur.hist_task.record(cp_root_.self_s);
        // Sequential fork-join regions extend the same critical path.
        cp_work_ += cp_root_.work;
        cp_span_.add(cp_root_.span);
      }
      busy_end();
      done_ = true;
      cur.dead.push_back(eng_.current_fiber());
      eng_.exit_to(cur.sched_fiber);
    });
    busy_begin();
    eng_.switch_to(root_fib);
    busy_end();
  } else {
    // Workers may arrive before rank 0 set done_=false; wait for the region
    // to open (or for an immediate close if the root ran to completion
    // before we got here — done_ flips back to true in that case, which the
    // generation check below distinguishes via the barrier that follows).
    while (done_ && !active_) {
      if (eng_.any_rank_failed()) break;  // rank 0 died; fall through to teardown
      eng_.advance(eng_.opts().poll_interval);
    }
  }

  worker_loop();
  timeline_.end_region(eng_.my_rank(), eng_.now_precise());

  // Region teardown: flush every rank's cache and resynchronize.
  pgas_.release();
  pgas_.barrier();
  if (eng_.my_rank() == 0) {
    active_ = false;
  }
  pgas_.barrier();
  pgas_.acquire();

  if (eng_.my_rank() == 0 && root_error_) {
    auto err = root_error_;
    root_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

}  // namespace ityr::sched
