#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "itoyori/common/histogram.hpp"
#include "itoyori/common/job.hpp"
#include "itoyori/common/profiler.hpp"
#include "itoyori/common/trace.hpp"
#include "itoyori/pgas/pgas_space.hpp"
#include "itoyori/sched/critpath.hpp"
#include "itoyori/sim/engine.hpp"

namespace ityr::sched {

/// Join state of one forked user-level thread. Allocated from the runtime
/// heap (never on a task stack: stacks migrate, paper Section 3.1) and
/// accessed by parent and child possibly on different ranks; remote touches
/// are charged as small RMA operations.
struct thread_state {
  static constexpr std::size_t result_capacity = 128;

  bool finished = false;
  bool parent_waiting = false;
  sim::fiber* parent_fiber = nullptr;  ///< valid when parent_waiting
  int parent_wait_rank = -1;           ///< rank the parent suspended on
  int owner_rank = -1;                 ///< rank that forked (allocation home)
  double release_watermark = 0;        ///< async release: child's Release #2
                                       ///< visibility time (0 = synchronous)
  common::job_id_t job = common::no_job;  ///< owning job (serving mode; 0 otherwise)
  std::exception_ptr error;
  cp_frame cp;  ///< work/span accumulator (ITYR_CRITPATH; unused otherwise)
  alignas(16) unsigned char result[result_capacity]{};  ///< type-erased slot

  void reset() {
    finished = false;
    parent_waiting = false;
    parent_fiber = nullptr;
    parent_wait_rank = -1;
    owner_rank = -1;
    release_watermark = 0;
    job = common::no_job;
    error = nullptr;
    cp = {};
  }
};

/// Handle returned by fork(): join target plus the serialized-fast-path flag
/// (paper Section 5.1: if the parent was never stolen, the child behaved as
/// a plain function call and every fence can be skipped).
struct thread_handle {
  thread_state* ts = nullptr;
  bool serialized = false;
};

/// Distributed child-first work-stealing scheduler over the uni-address
/// threading model (paper Sections 2.1, 3.1, 5).
///
/// fork() suspends the parent, pushes its continuation (the suspended fiber
/// plus a lazy release handler, Fig. 5/6) onto the bottom of the local
/// deque, and runs the child immediately in a fresh fiber. Completion of the
/// child pops the continuation back on the fast path; otherwise the
/// continuation has been stolen and the child synchronizes through the
/// thread_state. Thieves steal from the top of remote deques using one-sided
/// operations only (probe + CAS + descriptor fetch + stack migration), each
/// charged through the network model.
///
/// Fence insertion (paper Fig. 5 and Section 5.1):
///  * fork      -> Release #1 as a *lazy* handler attached to the stolen
///                 continuation; Acquire #3 skipped (child-first).
///  * steal     -> Acquire #2 with that handler, on the thief.
///  * child end -> Release #2 only if the parent was stolen.
///  * join slow -> Release #3 before suspending, Acquire #1 when resumed.
///  * fast path -> no fences at all (work-first principle).
class scheduler {
public:
  struct stats {
    std::uint64_t forks = 0;
    std::uint64_t serialized_joins = 0;   ///< fast-path fork returns
    std::uint64_t steal_attempts = 0;
    std::uint64_t steals = 0;             ///< successful steals
    std::uint64_t intra_node_steals = 0;  ///< steals from same-node victims
    std::uint64_t local_pops = 0;         ///< own-deque continuation pops
    std::uint64_t join_suspends = 0;
    std::uint64_t migrations = 0;         ///< cross-rank thread movements
    std::uint64_t migrated_stack_bytes = 0;
    std::uint64_t batch_steals = 0;       ///< steals that claimed > 1 entry
    std::uint64_t batch_extra_entries = 0;///< entries claimed beyond the first
    std::uint64_t batch_multi_origin = 0; ///< batches spanning >1 pushing rank's handlers
    std::uint64_t inter_steal_bytes = 0;  ///< stack bytes migrated by inter-node steals
    std::uint64_t backoff_skips = 0;      ///< probes suppressed by adaptive backoff
    std::uint64_t fairness_mid_claims = 0;///< job_weighted steals that bypassed the
                                          ///< front entry for a rarer job's entry
    std::uint64_t fairness_redirects = 0; ///< probes released because the victim
                                          ///< queued only well-served jobs' work
    double failed_probe_s = 0;            ///< virtual time burned in failed steal rounds
    /// Probes issued per thief<->victim distance class (class_of, clamped).
    std::uint64_t steal_probes_class[cp_max_classes] = {};
  };

  scheduler(sim::engine& eng, pgas::pgas_space& pgas);

  /// Attach an (optional) profiler for fence/steal attribution (Fig. 9).
  void set_profiler(common::profiler* p) { prof_ = p; }

  /// Attach an (optional) tracer: successful steals become thief<-victim
  /// flow arrows, the busy/idle/steal timeline emits "Busy" spans, and the
  /// scheduler's poll points drive periodic counter sampling.
  void set_tracer(common::tracer* t) {
    trace_ = t;
    timeline_.set_tracer(t);
  }

  /// SPMD entry point: every rank calls this collectively; `root_fn` runs
  /// once as the root thread (started on rank 0, free to migrate), all other
  /// ranks act as workers until it completes.
  void root_exec(std::function<void()> root_fn);

  // ---- task primitives (call only from inside the fork-join region) ----
  /// The child closure receives its own thread_state so typed wrappers can
  /// deposit results into ts->result (never into a parent stack slot, which
  /// would break under migration).
  thread_handle fork(std::function<void(thread_state*)> child_fn);

  /// fork() with an explicit job tag for the child (serving mode): the job
  /// manager's admission driver (job 0) forks each job's root task with that
  /// job's id; everything the job task forks inherits the tag. The parent's
  /// continuation keeps the *parent's* job.
  thread_handle fork_tagged(std::function<void(thread_state*)> child_fn, common::job_id_t job);

  /// Synchronize with the child. On return, h.ts->result is still valid;
  /// call recycle() after extracting it. Rethrows the child's exception
  /// (recycling first).
  void join(thread_handle& h);
  void recycle(thread_handle& h);

  /// Scheduler/coherence poll: DoReleaseIfRequested + allocator upkeep.
  void poll();

  bool in_fork_join_region() const { return active_; }

  stats get_stats() const;
  const stats& stats_of(int rank) const { return ranks_[static_cast<std::size_t>(rank)].st; }

  /// Busy time (task execution, excluding the steal loop) per rank; one view
  /// of the phase timeline, kept for the idleness metric (paper Table 2).
  double busy_time_of(int rank) const { return timeline_.busy_of(rank); }

  /// Per-rank busy/idle/steal intervals over virtual time — the single
  /// source of truth for Table 2 idleness and the Fig. 9 capacity term.
  /// Static (SPMD-style) baselines may drive it directly between fork-join
  /// regions via begin_region()/enter()/end_region().
  common::phase_timeline& timeline() { return timeline_; }
  const common::phase_timeline& timeline() const { return timeline_; }

  /// Current depth of a rank's continuation deque (sampled into the trace).
  std::size_t deque_depth_of(int rank) const {
    return ranks_[static_cast<std::size_t>(rank)].deque.size();
  }

  /// Busy time attributed to one job across all ranks (serving mode only;
  /// 0 otherwise). Accumulated from current-job transitions inside busy
  /// intervals — pure bookkeeping, never charges the virtual clock.
  double job_busy_of(common::job_id_t job) const {
    return job < job_busy_.size() ? job_busy_[job] : 0.0;
  }

  // ---- online critical-path profiler (ITYR_CRITPATH) ----
  bool critpath_enabled() const { return cp_on_; }
  /// Total work (sum of all strand segments) across every completed
  /// root_exec region so far; 0 unless ITYR_CRITPATH.
  double cp_work() const { return cp_work_; }
  /// Bucketed span (critical path). Sequential regions add their spans.
  const cp_path& cp_span() const { return cp_span_; }

  // ---- per-rank histograms (merged at metrics-collection time) ----
  /// Task execution time (own strand segments; populated only with
  /// ITYR_CRITPATH, which is what measures self time).
  const common::log_histogram& task_hist_of(int rank) const {
    return ranks_[static_cast<std::size_t>(rank)].hist_task;
  }
  /// Successful-steal latency (probe to runnable task), always on.
  const common::log_histogram& steal_hist_of(int rank) const {
    return ranks_[static_cast<std::size_t>(rank)].hist_steal;
  }
  /// Failed-probe latency (probe start to empty/raced return), always on —
  /// hist_steal only sees successes, so this is where idle-loop waste shows.
  const common::log_histogram& steal_fail_hist_of(int rank) const {
    return ranks_[static_cast<std::size_t>(rank)].hist_steal_fail;
  }
  /// Entries claimed per successful steal (1 unless ITYR_STEAL_BATCH > 1).
  const common::log_histogram& steal_batch_hist_of(int rank) const {
    return ranks_[static_cast<std::size_t>(rank)].hist_steal_batch;
  }
  /// Fence time (Release #2/#3, Acquire #1/#2), always on.
  const common::log_histogram& fence_hist_of(int rank) const {
    return ranks_[static_cast<std::size_t>(rank)].hist_fence;
  }

private:
  struct cont_entry {
    sim::fiber* fib = nullptr;
    pgas::release_handler rh;
    std::uint64_t serial = 0;
    common::job_id_t job = common::no_job;  ///< job of the suspended parent
  };

  enum class resume_kind : std::uint8_t {
    none,
    child_done,   ///< fast path: fork returns serialized
    taken_over,   ///< continuation resumed by thief or local worker pop
    join_done,    ///< suspended joiner resumed by the finishing child
  };

  /// Adaptive per-victim backoff slot (ITYR_STEAL_ADAPTIVE_BACKOFF):
  /// direct-mapped by victim id; a victim found empty is suppressed until
  /// `until`, doubling the window per consecutive empty probe.
  struct backoff_entry {
    int victim = -1;
    int fails = 0;
    double until = 0;
  };
  static constexpr std::size_t backoff_slots = 64;  // power of two (mask-indexed)

  struct rank_state {
    std::deque<cont_entry> deque;
    sim::fiber* sched_fiber = nullptr;  ///< this rank's worker-loop fiber
    resume_kind note = resume_kind::none;
    std::vector<sim::fiber*> dead;      ///< fibers to recycle
    stats st;
    cp_rank_state cp;                   ///< segment accounting (ITYR_CRITPATH)
    common::log_histogram hist_task;    ///< task exec time (ITYR_CRITPATH only)
    common::log_histogram hist_steal;   ///< successful-steal latency
    common::log_histogram hist_fence;   ///< fence (release/acquire) time
    common::log_histogram hist_steal_fail;   ///< failed-probe latency
    common::log_histogram hist_steal_batch;  ///< entries claimed per steal
    // hierarchical escalation ladder (ITYR_STEAL_POLICY=hierarchical)
    int hier_cls = 0;    ///< index into hier_classes_[my node]
    int hier_fails = 0;  ///< consecutive failed probes at the current class
    int hier_last = -1;  ///< last successful victim (affinity probe); -1 = none
    std::array<backoff_entry, backoff_slots> backoff{};
    // serving mode (ITYR_SERVE): job of the task currently executing on this
    // rank, and the start of the current busy interval (-1 = not busy) for
    // per-job busy attribution. Dead weight in single-job mode.
    common::job_id_t cur_job = common::no_job;
    double busy_since = -1;
  };

  rank_state& self() { return ranks_[static_cast<std::size_t>(eng_.my_rank())]; }

  void worker_loop();
  bool try_steal();
  int pick_victim_hierarchical(rank_state& rs);
  /// Bookkeeping for a steal round that yielded no work. `probed` is false
  /// for adaptive-backoff skips (no traffic was issued, so no latency is
  /// recorded and no backoff-window update happens — only the ladder moves).
  void note_steal_fail(rank_state& rs, int victim, double t0, bool probed);
  void note_steal_success(rank_state& rs, int victim);
  void reap();
  void child_body(const std::function<void(thread_state*)>& fn, thread_state* ts,
                  std::uint64_t parent_serial);
  resume_kind consume_note();
  void charge_ts_touch(const thread_state* ts);

  // Segment accounting (no-ops unless cp_on_; none of these charge virtual
  // time, so ITYR_CRITPATH=0 and =1 run bit-identical virtual clocks).
  /// Open a segment for `f` on the current rank: snapshot the rank's stall
  /// counters and the clock.
  void cp_open(cp_frame* f);
  /// Close the current segment: charge its elapsed time into `f`'s span
  /// buckets (compute = elapsed - stall deltas) and work. Returns the frame.
  cp_frame* cp_close();
  /// Reopen `f` after a suspension resume; a taken_over resume consumes the
  /// rank's pending steal note into steal_wait first.
  void cp_resume(cp_frame* f, bool taken_over);
  /// Join-time span fold: parent.work += child.work; parent.span = the
  /// longer path of {parent.span, child.base + child.span} (kept bucketed).
  void cp_on_join(cp_frame* parent, thread_state* ts);
  thread_state* acquire_ts();
  void release_ts(thread_state* ts);
  void busy_begin();
  void busy_end();
  /// Record that `job`'s task is now executing on the current rank (serving
  /// mode only: a no-op, compiled to one branch, in single-job mode). Flushes
  /// the previous job's busy interval.
  void set_cur_job(common::job_id_t job);
  /// Cluster-wide deque-entry count per job (job_weighted fairness only):
  /// adjusted at every deque push/pop/claim. Victims already publish their
  /// per-job occupancy next to the deque bounds; the totals are the sum the
  /// metadata service aggregates from them, so a thief's read piggybacks on
  /// the bounds probe it pays for anyway (no extra modelled traffic).
  void occ_add(common::job_id_t job, int delta);
  /// True if `vs`'s deque holds at least one entry of an under-served job
  /// (global occupancy at or below the per-live-job average) — the claim a
  /// fairness-driven thief is hunting for.
  bool fair_underserved_here(const rank_state& vs) const;

  sim::engine& eng_;
  pgas::pgas_space& pgas_;
  // Hierarchical-steal candidate tables, built once per scheduler when
  // ITYR_STEAL_POLICY=hierarchical (node-granular: distance classes depend
  // only on the node pair, and node-level tables are O(n_nodes^2) instead of
  // O(n_ranks^2)). class_nodes_[src][c] lists the nodes at class c from src;
  // hier_classes_[src] lists the classes with candidates, ascending (class 0
  // only when ranks_per_node > 1).
  std::vector<std::vector<std::vector<int>>> class_nodes_;
  std::vector<std::vector<int>> hier_classes_;
  common::profiler* prof_ = nullptr;
  common::tracer* trace_ = nullptr;
  common::phase_timeline timeline_;
  std::vector<rank_state> ranks_;
  std::vector<thread_state*> ts_pool_;
  std::vector<std::unique_ptr<thread_state>> ts_storage_;
  std::uint64_t serial_counter_ = 0;
  sim::fiber* return_to_task_ = nullptr;  ///< stolen task handoff from try_steal
  common::job_id_t return_to_job_ = common::no_job;  ///< its job tag
  bool serve_on_ = false;     ///< ITYR_SERVE: job plumbing live
  bool fairness_on_ = false;  ///< ITYR_STEAL_FAIRNESS=job_weighted (serving only)
  std::vector<double> job_busy_;  ///< busy seconds per job id (slot 0 unused)
  std::vector<std::uint64_t> job_occ_;  ///< live deque entries per job (fairness only)
  bool done_ = true;
  bool active_ = false;
  std::exception_ptr root_error_;

  bool cp_on_ = false;      ///< ITYR_CRITPATH
  cp_frame cp_root_;        ///< the root task's frame (one region at a time)
  double cp_work_ = 0;      ///< accumulated across sequential regions
  cp_path cp_span_;
};

}  // namespace ityr::sched
