#include "itoyori/sched/job_manager.hpp"

#include <algorithm>
#include <cmath>

#include "itoyori/common/options.hpp"
#include "itoyori/common/rng.hpp"

namespace ityr::sched {

void job_manager::serve(std::vector<job_spec> jobs) {
  ITYR_CHECK(eng_.opts().serve || !"serve() requires ITYR_SERVE");
  ITYR_CHECK(!jobs.empty());
  const std::size_t base = records_.size();
  // Collective: every rank enters the region; only rank 0's root fiber runs
  // the admission driver (job 0), the rest are workers from the start.
  sched_.root_exec([this, &jobs, base] { drive(jobs, base); });

  // Region closed on every rank; fold the per-job summaries once.
  if (eng_.my_rank() == 0) {
    for (std::size_t i = 0; i < jobs.size(); i++) {
      job_record& r = records_[base + i];
      r.busy_s = sched_.job_busy_of(r.id);
      if (r.done) hist_latency_.record(r.latency());
    }
  }
}

void job_manager::drive(const std::vector<job_spec>& jobs, std::size_t base) {
  const auto& opt = eng_.opts();
  // The arrival process is its own PRNG stream, seeded from the run seed:
  // independent of every rank's victim-selection stream, so the same seed
  // reproduces the same offered load regardless of scheduler knobs.
  common::xoshiro256ss rng(opt.seed ^ 0x6a09e667f3bcc908ULL);
  std::vector<thread_handle> hs(jobs.size());

  double t_next = eng_.now_precise();
  for (std::size_t i = 0; i < jobs.size(); i++) {
    // Open loop: the next arrival is scheduled relative to the previous
    // arrival point, never to when the previous job finished — queueing
    // delay under overload is exactly what the latency metric must see.
    const double u = rng.uniform();
    t_next += -std::log1p(-u) / opt.serve_arrival_rate;
    while (eng_.now_precise() < t_next) {
      sched_.poll();
      eng_.advance(std::min(opt.poll_interval, t_next - eng_.now_precise()));
    }

    const common::job_id_t id = ++last_id_;
    const std::size_t slot = base + i;
    records_.push_back({});
    job_record& r = records_[slot];
    r.id = id;
    r.name = jobs[i].name;
    r.t_admit = eng_.now_precise();
    if (trace_ != nullptr) trace_->instant(eng_.my_rank(), r.t_admit, "job admit", id);

    // Child-first: the job's body starts executing immediately on this rank;
    // the driver's continuation becomes stealable, and admission resumes
    // wherever (and whenever) it lands. Access records_ by index only — the
    // vector may reallocate while job wrappers are in flight.
    hs[i] = sched_.fork_tagged(
        [this, slot, body = jobs[i].body](thread_state* ts) {
          records_[slot].t_start = eng_.now_precise();
          if (trace_ != nullptr) {
            trace_->instant(eng_.my_rank(), records_[slot].t_start, "job start", ts->job);
          }
          body();
          records_[slot].t_complete = eng_.now_precise();
          records_[slot].done = true;
          if (trace_ != nullptr) {
            trace_->instant(eng_.my_rank(), records_[slot].t_complete, "job complete", ts->job);
          }
        },
        id);
  }

  for (std::size_t i = 0; i < jobs.size(); i++) {
    sched_.join(hs[i]);
    if (sched_.critpath_enabled() && hs[i].ts != nullptr) {
      records_[base + i].span_s = hs[i].ts->cp.span.total();
    }
    sched_.recycle(hs[i]);
  }
}

double job_manager::latency_quantile(double q) const {
  std::vector<double> lat;
  lat.reserve(records_.size());
  for (const job_record& r : records_) {
    if (r.done) lat.push_back(r.latency());
  }
  if (lat.empty()) return 0;
  std::sort(lat.begin(), lat.end());
  const double pos = q * static_cast<double>(lat.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, lat.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return lat[lo] + (lat[hi] - lat[lo]) * frac;
}

double job_manager::jobs_per_s() const {
  double t_first = 0, t_last = 0;
  std::uint64_t n = 0;
  for (const job_record& r : records_) {
    if (!r.done) continue;
    if (n == 0 || r.t_admit < t_first) t_first = r.t_admit;
    if (n == 0 || r.t_complete > t_last) t_last = r.t_complete;
    n++;
  }
  if (n == 0 || t_last <= t_first) return 0;
  return static_cast<double>(n) / (t_last - t_first);
}

std::vector<std::string> job_manager::assign_mix(const std::string& mix, std::size_t n_jobs,
                                                 std::uint64_t seed) {
  const auto weighted = common::parse_serve_mix(mix);
  std::uint64_t total = 0;
  for (const auto& w : weighted) total += static_cast<std::uint64_t>(w.second);
  common::xoshiro256ss rng(seed ^ 0xbb67ae8584caa73bULL);
  std::vector<std::string> out;
  out.reserve(n_jobs);
  for (std::size_t i = 0; i < n_jobs; i++) {
    std::uint64_t draw = rng.below(total);
    for (const auto& w : weighted) {
      if (draw < static_cast<std::uint64_t>(w.second)) {
        out.push_back(w.first);
        break;
      }
      draw -= static_cast<std::uint64_t>(w.second);
    }
  }
  return out;
}

}  // namespace ityr::sched
