#pragma once

#include <cstddef>

namespace ityr::sched {

/// Where span (critical-path) time was spent (docs/observability.md):
///  * compute       — task execution net of every modelled stall below
///  * fetch_stall   — checkout waits on remote demand-fetch completion
///  * release_stall — release fences blocked on write-back traffic
///  * steal_wait    — steal mechanics (probe + CAS + descriptor fetch +
///                    stack migration + Acquire #2) on the resumed path
///  * acquire_fence — join-side Acquire #1 visibility waits
enum class cp_bucket : int {
  compute = 0,
  fetch_stall,
  release_stall,
  steal_wait,
  acquire_fence,
};

inline constexpr int n_cp_buckets = 5;

inline const char* to_string(cp_bucket b) {
  switch (b) {
    case cp_bucket::compute:       return "compute";
    case cp_bucket::fetch_stall:   return "fetch_stall";
    case cp_bucket::release_stall: return "release_stall";
    case cp_bucket::steal_wait:    return "steal_wait";
    case cp_bucket::acquire_fence: return "acquire_fence";
  }
  return "?";
}

/// Distance classes tracked along the critical path (clamped; matches
/// cache_stats::max_stall_classes — even a deep fat tree stays below this).
inline constexpr int cp_max_classes = 8;

/// One path through the DAG: per-bucket seconds plus the network-latency
/// share per topology distance class (class 0 = intra-node shared memory).
/// The net[] classes are *contained in* the bucket totals — they are the
/// what-if projector's view of the same time, not additional time.
struct cp_path {
  double b[n_cp_buckets] = {};
  double net[cp_max_classes] = {};

  double total() const {
    double s = 0;
    for (int i = 0; i < n_cp_buckets; i++) s += b[i];
    return s;
  }
  double net_inter() const {  // classes >= 1: what zeroing the network removes
    double s = 0;
    for (int c = 1; c < cp_max_classes; c++) s += net[c];
    return s;
  }
  void add(const cp_path& o) {
    for (int i = 0; i < n_cp_buckets; i++) b[i] += o.b[i];
    for (int c = 0; c < cp_max_classes; c++) net[c] += o.net[c];
  }
  double of(cp_bucket k) const { return b[static_cast<int>(k)]; }
};

/// Per-task work/span accumulator (Cilkview-style, online). Each task frame
/// carries the total work of its completed subtree and the bucketed span of
/// the longest path from the task's start; `base` snapshots the parent's
/// span at fork so join can compare "parent continuation path" against
/// "base + child path" and keep the elementwise record of whichever is
/// longer. `self_s` (own strand segments only) feeds the task-exec-time
/// histogram.
struct cp_frame {
  double work = 0;    ///< subtree total: own segments + joined children
  double self_s = 0;  ///< own strand segments only (histogram sample)
  cp_path span;       ///< longest path from this task's start, bucketed
  cp_path base;       ///< parent's span at fork (prefix shared by both paths)
};

/// Per-rank segment-accounting state of the online profiler. A *segment* is
/// one uninterrupted run of a task strand on one rank: opened at every
/// resume, closed at every suspension, charged by differencing the rank's
/// stall counters so the split into buckets costs no virtual time.
struct cp_rank_state {
  cp_frame* cur = nullptr;  ///< frame of the strand running on this rank
  double t0 = 0;            ///< virtual time the current segment opened
  double acq_s = 0;         ///< explicitly measured acquire-fence time within
  double fetch_base = 0;    ///< cache_stats baselines at segment open
  double release_base = 0;
  double fetch_cls_base[cp_max_classes] = {};
  double release_cls_base[cp_max_classes] = {};
  // Pending steal note: set by a successful steal, consumed by the very next
  // taken_over resume on this rank (local pops carry no note).
  int steal_cls = -1;
  double steal_cost = 0;
};

}  // namespace ityr::sched
