#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "itoyori/common/histogram.hpp"
#include "itoyori/common/job.hpp"
#include "itoyori/common/trace.hpp"
#include "itoyori/sched/scheduler.hpp"
#include "itoyori/sim/engine.hpp"

namespace ityr::sched {

/// One job to admit in serving mode: a name (for per-job metrics rows) and a
/// fork-join body. The body runs as the job's root task, free to fork and
/// migrate like any task; everything it forks inherits the job's id.
struct job_spec {
  std::string name;
  std::function<void()> body;
};

/// Lifecycle record of one admitted job. Timestamps are virtual seconds;
/// latency is complete - admit (queueing + execution under interference).
struct job_record {
  common::job_id_t id = common::no_job;
  std::string name;
  double t_admit = 0;
  double t_start = 0;     ///< first execution of the job's root task
  double t_complete = 0;  ///< its body returned
  double busy_s = 0;      ///< scheduler busy time attributed to this job
  double span_s = 0;      ///< job-local critical path (ITYR_CRITPATH only)
  bool done = false;

  double latency() const { return t_complete - t_admit; }
};

/// Multi-tenant job-stream serving (ITYR_SERVE, docs/internals.md
/// "Multi-job serving"): admits a stream of independent fork-join jobs into
/// ONE scheduler region from an open-loop arrival process, instead of
/// running a single root task.
///
/// The admission driver runs as the region's root task (job 0): it sleeps to
/// each exponential inter-arrival point (rate ITYR_SERVE_ARRIVAL_RATE, drawn
/// deterministically from the run seed), then forks the job's body tagged
/// with a fresh dense job id. Jobs execute concurrently under work stealing;
/// the driver joins them all before closing the region. Lifecycle instants
/// ("job admit" / "job start" / "job complete") go to the tracer, and
/// completed-job latencies feed the sched.job.* metrics.
///
/// Single-job mode goes through run_single(), which is exactly the old
/// scheduler::root_exec — the differential tests pin the off path down.
class job_manager {
public:
  job_manager(sim::engine& eng, scheduler& sched) : eng_(eng), sched_(sched) {
    hist_latency_.configure(eng_.opts().hist_buckets, 1.0e-9);
  }

  void set_tracer(common::tracer* t) { trace_ = t; }

  /// Single-job mode: the historic root_exec, untouched.
  void run_single(std::function<void()> root_fn) { sched_.root_exec(std::move(root_fn)); }

  /// Serving mode: collective call (like root_exec); admits `jobs` in order
  /// from the open-loop arrival process and returns when all completed.
  /// Callable repeatedly; job ids keep growing across calls.
  void serve(std::vector<job_spec> jobs);

  /// Records of every job admitted so far (across serve() calls), in
  /// admission order; records_[i].id == first_id + i.
  const std::vector<job_record>& records() const { return records_; }

  /// Latency percentile over completed jobs (exact, from sorted latencies);
  /// 0 when nothing completed. q in [0, 1].
  double latency_quantile(double q) const;
  /// Sustained throughput: completed jobs / (last completion - first admit);
  /// 0 when fewer than one job completed or the window is empty.
  double jobs_per_s() const;
  /// Completed-job latency distribution (log-bucketed, for metrics).
  const common::log_histogram& latency_hist() const { return hist_latency_; }

  /// Deterministic workload draw for the default serve driver: names for
  /// `n_jobs` jobs from the weighted `mix` spec (ITYR_SERVE_MIX syntax),
  /// reproducible from `seed`.
  static std::vector<std::string> assign_mix(const std::string& mix, std::size_t n_jobs,
                                             std::uint64_t seed);

private:
  void drive(const std::vector<job_spec>& jobs, std::size_t base);

  sim::engine& eng_;
  scheduler& sched_;
  common::tracer* trace_ = nullptr;
  std::vector<job_record> records_;
  common::job_id_t last_id_ = common::no_job;
  common::log_histogram hist_latency_;
};

}  // namespace ityr::sched
