#pragma once

#include <cstddef>
#include <cstdint>

namespace ityr::rma {

struct window;
struct io_segment;

/// Abstract one-sided communication surface used by the cache engines
/// (fetch_engine, writeback_engine, write_policy): the subset of
/// rma::context they are allowed to touch. Engines hold a channel& so unit
/// tests can substitute a mock with scripted completion times and message
/// accounting, without booting the full network model.
///
/// Semantics match rma::context: the *_nb operations move data immediately
/// (an admissible RMA completion order) and return the modelled completion
/// time; the issuer's virtual clock only reflects completion after flush()
/// or a targeted wait_until() on a returned completion time.
class channel {
public:
  virtual ~channel() = default;

  virtual double get_nb(window& w, int target, std::uint64_t off, void* dst,
                        std::size_t len) = 0;
  virtual double put_nb(window& w, int target, std::uint64_t off, const void* src,
                        std::size_t len) = 0;
  virtual double get_nb_multi(window& w, int target, const io_segment* segs,
                              std::size_t n) = 0;
  virtual double put_nb_multi(window& w, int target, const io_segment* segs,
                              std::size_t n) = 0;

  /// Complete all outstanding one-sided operations of the calling rank.
  virtual void flush() = 0;
  /// Wait (in virtual time) until `t`, a completion time previously returned
  /// by a *_nb call; later completions stay pending (per-request MPI_Wait).
  virtual void wait_until(double t) = 0;

  /// Blocking 8-byte read (epoch polls of the lazy-release protocol).
  virtual std::uint64_t get_value(window& w, int target, std::uint64_t off) = 0;
  /// Remote atomic max (request-epoch bump, Fig. 6).
  virtual void atomic_max(window& w, int target, std::uint64_t off, std::uint64_t value) = 0;
};

}  // namespace ityr::rma
