#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "itoyori/rma/channel.hpp"
#include "itoyori/rma/network.hpp"

namespace ityr::rma {

/// One registered memory region per rank (an MPI_Win equivalent).
struct window {
  struct region {
    std::byte* base = nullptr;
    std::size_t size = 0;
  };
  std::vector<region> regions;  // indexed by rank

  /// Creation-order id, assigned by the context. Windows are created in a
  /// deterministic order, so (id, rank, offset) is a run-reproducible sort
  /// key for message coalescing — unlike the window's pointer value.
  std::uint32_t id = 0;

  std::byte* addr(int rank, std::uint64_t off, std::size_t len) const {
    const auto& r = regions[static_cast<std::size_t>(rank)];
    ITYR_CHECK(r.base != nullptr);
    ITYR_CHECK(off + len <= r.size);
    return r.base + off;
  }
};

/// One piece of a multi-segment (gather/scatter) RMA transfer: a remote
/// window range and the matching local buffer.
struct io_segment {
  std::uint64_t off = 0;     ///< offset in the target rank's window region
  std::byte* local = nullptr;
  std::size_t len = 0;
};

/// One-sided communication context: get/put (nonblocking until flush) and
/// remote atomics over windows. The simulated cluster shares one OS address
/// space, so data movement is memcpy; *when* data is usable is governed by
/// the network cost model, and the target rank's CPU is never involved
/// (true RDMA semantics, as assumed throughout paper Section 5).
///
/// Implements rma::channel, the abstract surface the cache engines consume.
class context : public channel {
public:
  explicit context(sim::engine& eng) : eng_(eng), net_(eng) {}

  network& net() { return net_; }

  /// Collectively create a window from per-rank regions. In the simulator
  /// the call itself is local; callers are responsible for the collective
  /// discipline (mirroring MPI_Win_create).
  window* create_window(std::vector<window::region> regions) {
    windows_.push_back(std::make_unique<window>());
    windows_.back()->regions = std::move(regions);
    windows_.back()->id = static_cast<std::uint32_t>(windows_.size() - 1);
    return windows_.back().get();
  }

  /// Nonblocking get: data is copied now (an admissible RMA completion
  /// order) but the issuer's virtual time only reflects completion after
  /// flush() — or a targeted net().wait_until() on the returned modelled
  /// completion time. Mirrors MPI_Get + MPI_Win_flush_all.
  double get_nb(window& w, int target, std::uint64_t off, void* dst, std::size_t len) override {
    std::memcpy(dst, w.addr(target, off, len), len);
    const double done = net_.issue(target, len);
    gets_++;
    return done;
  }

  /// Nonblocking put (MPI_Put).
  double put_nb(window& w, int target, std::uint64_t off, const void* src,
                std::size_t len) override {
    std::memcpy(w.addr(target, off, len), src, len);
    const double done = net_.issue(target, len);
    puts_++;
    return done;
  }

  /// Nonblocking multi-segment get: one message fetching several remote
  /// ranges of the same target window into their local buffers (an MPI_Get
  /// with an indexed datatype / NIC gather list). Issue-side CPU overhead is
  /// paid once; bytes are charged in full. Segments must be sorted by
  /// remote offset and non-overlapping.
  double get_nb_multi(window& w, int target, const io_segment* segs, std::size_t n) override {
    ITYR_CHECK(n > 0);
    std::size_t total = 0;
    for (std::size_t i = 0; i < n; i++) {
      ITYR_CHECK(i == 0 || segs[i - 1].off + segs[i - 1].len <= segs[i].off);
      std::memcpy(segs[i].local, w.addr(target, segs[i].off, segs[i].len), segs[i].len);
      total += segs[i].len;
    }
    const double done = net_.issue(target, total);
    gets_++;
    return done;
  }

  /// Nonblocking multi-segment put (scatter side of get_nb_multi).
  double put_nb_multi(window& w, int target, const io_segment* segs, std::size_t n) override {
    ITYR_CHECK(n > 0);
    std::size_t total = 0;
    for (std::size_t i = 0; i < n; i++) {
      ITYR_CHECK(i == 0 || segs[i - 1].off + segs[i - 1].len <= segs[i].off);
      std::memcpy(w.addr(target, segs[i].off, segs[i].len), segs[i].local, segs[i].len);
      total += segs[i].len;
    }
    const double done = net_.issue(target, total);
    puts_++;
    return done;
  }

  /// Complete all outstanding one-sided operations of the calling rank.
  void flush() override { net_.flush(); }

  /// Targeted wait on a completion time returned by a *_nb call.
  void wait_until(double t) override { net_.wait_until(t); }

  /// Blocking 8-byte read (MPI_Get of a single word + flush): the epoch
  /// polls of the lazy-release protocol use this.
  std::uint64_t get_value(window& w, int target, std::uint64_t off) override {
    std::uint64_t v;
    std::memcpy(&v, w.addr(target, off, sizeof(v)), sizeof(v));
    net_.issue(target, sizeof(v));
    net_.flush();
    gets_++;
    return v;
  }

  void put_value(window& w, int target, std::uint64_t off, std::uint64_t v) {
    net_.issue(target, sizeof(v));
    net_.flush();
    std::memcpy(w.addr(target, off, sizeof(v)), &v, sizeof(v));
    puts_++;
  }

  /// MPI_Compare_and_swap: atomic at the point the round trip lands.
  std::uint64_t compare_and_swap(window& w, int target, std::uint64_t off, std::uint64_t expected,
                                 std::uint64_t desired) {
    net_.atomic_round_trip();
    auto* p = reinterpret_cast<std::uint64_t*>(w.addr(target, off, sizeof(std::uint64_t)));
    const std::uint64_t old = *p;
    if (old == expected) *p = desired;
    atomics_++;
    return old;
  }

  /// MPI_Fetch_and_op(MPI_SUM).
  std::uint64_t fetch_and_add(window& w, int target, std::uint64_t off, std::uint64_t operand) {
    net_.atomic_round_trip();
    auto* p = reinterpret_cast<std::uint64_t*>(w.addr(target, off, sizeof(std::uint64_t)));
    const std::uint64_t old = *p;
    *p = old + operand;
    atomics_++;
    return old;
  }

  /// Remote atomic max emulated with a CAS loop (paper footnote 6: the
  /// MPI_MAX fetch-and-op is not RDMA-offloaded, so Itoyori loops on
  /// MPI_Compare_and_swap instead).
  void atomic_max(window& w, int target, std::uint64_t off, std::uint64_t value) override {
    std::uint64_t cur = get_value(w, target, off);
    while (cur < value) {
      const std::uint64_t old = compare_and_swap(w, target, off, cur, value);
      if (old == cur) return;  // won the race
      cur = old;
    }
  }

  std::uint64_t n_gets() const { return gets_; }
  std::uint64_t n_puts() const { return puts_; }
  std::uint64_t n_atomics() const { return atomics_; }

private:
  sim::engine& eng_;
  network net_;
  std::vector<std::unique_ptr<window>> windows_;
  std::uint64_t gets_ = 0;
  std::uint64_t puts_ = 0;
  std::uint64_t atomics_ = 0;
};

}  // namespace ityr::rma
