#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "itoyori/common/options.hpp"
#include "itoyori/common/trace.hpp"
#include "itoyori/sim/engine.hpp"

namespace ityr::rma {

/// LogGP-flavoured network cost model over the simulated topology.
///
/// Each rank owns one injection channel: a message of n bytes issued at
/// virtual time t (a) costs the issuer `injection_overhead` of CPU,
/// (b) occupies the channel for n/bandwidth starting no earlier than t, and
/// (c) completes (data delivered / fetched) one `latency` after leaving the
/// channel. Nonblocking operations record their completion time; flush()
/// advances the issuer to the latest pending completion — mirroring
/// MPI_Win_flush_all over RDMA, where the target CPU is never involved.
///
/// Traffic accounting is split by locality (intra-node shared-memory vs
/// inter-node interconnect), the distinction the paper's Tofu-D model is
/// about; the unsplit totals remain available as sums.
class network {
public:
  explicit network(sim::engine& eng) : eng_(eng), nm_(eng.opts().net) {
    state_.resize(static_cast<std::size_t>(eng.n_ranks()));
  }

  /// Mirror each inter-rank message as a trace flow arrow from issuer to
  /// target (nullptr detaches).
  void set_tracer(common::tracer* t) { trace_ = t; }

  double latency_to(int target) const {
    return eng_.same_node(eng_.my_rank(), target) ? nm_.intra_latency : nm_.inter_latency;
  }
  double bandwidth_to(int target) const {
    return eng_.same_node(eng_.my_rank(), target) ? nm_.intra_bandwidth : nm_.inter_bandwidth;
  }

  /// Charge issue-side costs of a nonblocking transfer; remembers the
  /// completion time for the next flush(). Returns the completion time.
  double issue(int target, std::size_t bytes) {
    const int me = eng_.my_rank();
    per_rank& s = state_[static_cast<std::size_t>(me)];
    eng_.charge(nm_.injection_overhead);
    const double now = eng_.now();
    const double channel_free = s.channel_busy_until > now ? s.channel_busy_until : now;
    const double done = channel_free + static_cast<double>(bytes) / bandwidth_to(target) +
                        latency_to(target);
    s.channel_busy_until = channel_free + static_cast<double>(bytes) / bandwidth_to(target);
    if (done > s.pending_until) s.pending_until = done;
    if (eng_.same_node(me, target)) {
      s.intra_messages++;
      s.intra_bytes += bytes;
    } else {
      s.inter_messages++;
      s.inter_bytes += bytes;
    }
    if (trace_ != nullptr && target != me) {
      trace_->flow(me, now, target, done, "rma");
    }
    return done;
  }

  /// Wait (in virtual time) until `t`, a completion time previously returned
  /// by issue(). Unlike flush(), transfers completing after `t` (e.g.
  /// prefetches the caller is not consuming yet) stay pending — mirroring a
  /// per-request MPI_Wait against flush_all.
  void wait_until(double t) {
    const double now = eng_.now();
    if (t > now) eng_.advance(t - now);
  }

  /// Wait (in virtual time) for all of this rank's pending transfers.
  void flush() {
    per_rank& s = state_[static_cast<std::size_t>(eng_.my_rank())];
    const double now = eng_.now();
    if (s.pending_until > now) {
      eng_.advance(s.pending_until - now);
    }
    s.pending_until = 0.0;
  }

  bool has_pending() const {
    const per_rank& s = state_[static_cast<std::size_t>(eng_.my_rank())];
    return s.pending_until > eng_.now();
  }

  /// Latest completion time among this rank's pending transfers (0 when a
  /// flush() already consumed them). What a flush() would advance to.
  double pending_until() const {
    return state_[static_cast<std::size_t>(eng_.my_rank())].pending_until;
  }

  /// Blocking round trip for remote atomics (network-offloaded, so the
  /// target CPU is not charged). Yields, so other ranks interleave within
  /// the round-trip window — giving realistic contention races on CAS.
  void atomic_round_trip() { eng_.advance(nm_.atomic_latency); }

  // ---- locality-split accounting ----
  std::uint64_t intra_messages_of(int rank) const {
    return state_[static_cast<std::size_t>(rank)].intra_messages;
  }
  std::uint64_t inter_messages_of(int rank) const {
    return state_[static_cast<std::size_t>(rank)].inter_messages;
  }
  std::uint64_t intra_bytes_of(int rank) const {
    return state_[static_cast<std::size_t>(rank)].intra_bytes;
  }
  std::uint64_t inter_bytes_of(int rank) const {
    return state_[static_cast<std::size_t>(rank)].inter_bytes;
  }
  std::uint64_t total_intra_messages() const {
    std::uint64_t n = 0;
    for (const auto& s : state_) n += s.intra_messages;
    return n;
  }
  std::uint64_t total_inter_messages() const {
    std::uint64_t n = 0;
    for (const auto& s : state_) n += s.inter_messages;
    return n;
  }
  std::uint64_t total_intra_bytes() const {
    std::uint64_t n = 0;
    for (const auto& s : state_) n += s.intra_bytes;
    return n;
  }
  std::uint64_t total_inter_bytes() const {
    std::uint64_t n = 0;
    for (const auto& s : state_) n += s.inter_bytes;
    return n;
  }

  // ---- locality-blind sums (legacy interface) ----
  std::uint64_t total_messages() const { return total_intra_messages() + total_inter_messages(); }
  std::uint64_t total_bytes() const { return total_intra_bytes() + total_inter_bytes(); }
  std::uint64_t messages_of(int rank) const {
    return intra_messages_of(rank) + inter_messages_of(rank);
  }
  std::uint64_t bytes_of(int rank) const { return intra_bytes_of(rank) + inter_bytes_of(rank); }

private:
  struct per_rank {
    double channel_busy_until = 0.0;
    double pending_until = 0.0;
    std::uint64_t intra_messages = 0;
    std::uint64_t inter_messages = 0;
    std::uint64_t intra_bytes = 0;
    std::uint64_t inter_bytes = 0;
  };

  sim::engine& eng_;
  common::network_model nm_;
  common::tracer* trace_ = nullptr;
  std::vector<per_rank> state_;
};

}  // namespace ityr::rma
