#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "itoyori/common/histogram.hpp"
#include "itoyori/common/options.hpp"
#include "itoyori/common/trace.hpp"
#include "itoyori/sim/engine.hpp"

namespace ityr::rma {

/// LogGP-flavoured network cost model over the simulated topology.
///
/// Each rank owns one injection channel: a message of n bytes issued at
/// virtual time t (a) costs the issuer `injection_overhead` of CPU,
/// (b) occupies the channel for n/bandwidth starting no earlier than t, and
/// (c) completes (data delivered / fetched) one `latency` after leaving the
/// channel. Nonblocking operations record their completion time; flush()
/// advances the issuer to the latest pending completion — mirroring
/// MPI_Win_flush_all over RDMA, where the target CPU is never involved.
///
/// Traffic accounting is split by distance class (class 0 = intra-node
/// shared memory; classes >= 1 refine the inter-node interconnect per the
/// ITYR_TOPOLOGY model — see common::topology). The historic intra/inter
/// split the paper's Tofu-D discussion uses is preserved as class 0 vs the
/// sum of classes >= 1, and the unsplit totals remain available as sums.
class network {
public:
  explicit network(sim::engine& eng)
      : eng_(eng), nm_(eng.opts().net), flow_sample_(eng.opts().trace_flow_sample) {
    state_.resize(static_cast<std::size_t>(eng.n_ranks()));
    const auto nc = static_cast<std::size_t>(eng.topo().n_classes());
    for (auto& s : state_) {
      s.class_messages.assign(nc, 0);
      s.class_bytes.assign(nc, 0);
      // Message sizes start at 1 byte (min_value 1.0), not at 1 ns.
      s.msg_hist.configure(eng.opts().hist_buckets, 1.0);
    }
  }

  /// Mirror inter-rank messages as trace flow arrows from issuer to target
  /// (nullptr detaches). Only every ITYR_TRACE_FLOW_SAMPLE-th message per
  /// rank is drawn (1 = all, 0 = none): at O(1000) ranks, per-message flows
  /// dominate trace size and render as solid ink anyway.
  void set_tracer(common::tracer* t) { trace_ = t; }

  double latency_to(int target) const { return eng_.topo().latency(eng_.my_rank(), target); }
  double bandwidth_to(int target) const { return eng_.topo().bandwidth(eng_.my_rank(), target); }

  /// Charge issue-side costs of a nonblocking transfer; remembers the
  /// completion time for the next flush(). Returns the completion time.
  double issue(int target, std::size_t bytes) {
    const int me = eng_.my_rank();
    per_rank& s = state_[static_cast<std::size_t>(me)];
    eng_.charge(nm_.injection_overhead);
    const double now = eng_.now();
    const double channel_free = s.channel_busy_until > now ? s.channel_busy_until : now;
    const int cls = eng_.topo().class_of(me, target);
    const double bw = eng_.topo().bandwidth_of_class(cls);
    const double done = channel_free + static_cast<double>(bytes) / bw +
                        eng_.topo().latency_of_class(cls);
    s.channel_busy_until = channel_free + static_cast<double>(bytes) / bw;
    if (done > s.pending_until) s.pending_until = done;
    s.class_messages[static_cast<std::size_t>(cls)]++;
    s.class_bytes[static_cast<std::size_t>(cls)] += bytes;
    s.msg_hist.record(static_cast<double>(bytes));
    if (trace_ != nullptr && target != me && flow_sample_ != 0 &&
        s.issued_since_flow++ % flow_sample_ == 0) {
      trace_->flow(me, now, target, done, "rma");
    }
    return done;
  }

  /// Wait (in virtual time) until `t`, a completion time previously returned
  /// by issue(). Unlike flush(), transfers completing after `t` (e.g.
  /// prefetches the caller is not consuming yet) stay pending — mirroring a
  /// per-request MPI_Wait against flush_all.
  void wait_until(double t) {
    const double now = eng_.now();
    if (t > now) eng_.advance(t - now);
  }

  /// Wait (in virtual time) for all of this rank's pending transfers.
  void flush() {
    per_rank& s = state_[static_cast<std::size_t>(eng_.my_rank())];
    const double now = eng_.now();
    if (s.pending_until > now) {
      eng_.advance(s.pending_until - now);
    }
    s.pending_until = 0.0;
  }

  bool has_pending() const {
    const per_rank& s = state_[static_cast<std::size_t>(eng_.my_rank())];
    return s.pending_until > eng_.now();
  }

  /// Latest completion time among this rank's pending transfers (0 when a
  /// flush() already consumed them). What a flush() would advance to.
  double pending_until() const {
    return state_[static_cast<std::size_t>(eng_.my_rank())].pending_until;
  }

  /// Blocking round trip for remote atomics (network-offloaded, so the
  /// target CPU is not charged). Yields, so other ranks interleave within
  /// the round-trip window — giving realistic contention races on CAS.
  void atomic_round_trip() { eng_.advance(nm_.atomic_latency); }

  // ---- distance-class accounting ----
  int n_classes() const { return eng_.topo().n_classes(); }
  std::uint64_t class_messages_of(int rank, int cls) const {
    return state_[static_cast<std::size_t>(rank)].class_messages[static_cast<std::size_t>(cls)];
  }
  std::uint64_t class_bytes_of(int rank, int cls) const {
    return state_[static_cast<std::size_t>(rank)].class_bytes[static_cast<std::size_t>(cls)];
  }
  std::uint64_t total_class_messages(int cls) const {
    std::uint64_t n = 0;
    for (const auto& s : state_) n += s.class_messages[static_cast<std::size_t>(cls)];
    return n;
  }
  std::uint64_t total_class_bytes(int cls) const {
    std::uint64_t n = 0;
    for (const auto& s : state_) n += s.class_bytes[static_cast<std::size_t>(cls)];
    return n;
  }

  // ---- locality-split accounting (intra = class 0, inter = classes >= 1) ----
  std::uint64_t intra_messages_of(int rank) const { return class_messages_of(rank, 0); }
  std::uint64_t inter_messages_of(int rank) const {
    std::uint64_t n = 0;
    for (int c = 1; c < n_classes(); c++) n += class_messages_of(rank, c);
    return n;
  }
  std::uint64_t intra_bytes_of(int rank) const { return class_bytes_of(rank, 0); }
  std::uint64_t inter_bytes_of(int rank) const {
    std::uint64_t n = 0;
    for (int c = 1; c < n_classes(); c++) n += class_bytes_of(rank, c);
    return n;
  }
  std::uint64_t total_intra_messages() const { return total_class_messages(0); }
  std::uint64_t total_inter_messages() const {
    std::uint64_t n = 0;
    for (int c = 1; c < n_classes(); c++) n += total_class_messages(c);
    return n;
  }
  std::uint64_t total_intra_bytes() const { return total_class_bytes(0); }
  std::uint64_t total_inter_bytes() const {
    std::uint64_t n = 0;
    for (int c = 1; c < n_classes(); c++) n += total_class_bytes(c);
    return n;
  }

  // ---- locality-blind sums (legacy interface) ----
  std::uint64_t total_messages() const { return total_intra_messages() + total_inter_messages(); }
  std::uint64_t total_bytes() const { return total_intra_bytes() + total_inter_bytes(); }
  std::uint64_t messages_of(int rank) const {
    return intra_messages_of(rank) + inter_messages_of(rank);
  }
  std::uint64_t bytes_of(int rank) const { return intra_bytes_of(rank) + inter_bytes_of(rank); }

  /// Per-rank RMA message-size histogram (bytes; merged at metrics export).
  const common::log_histogram& msg_hist_of(int rank) const {
    return state_[static_cast<std::size_t>(rank)].msg_hist;
  }

private:
  struct per_rank {
    double channel_busy_until = 0.0;
    double pending_until = 0.0;
    std::vector<std::uint64_t> class_messages;  ///< indexed by distance class
    std::vector<std::uint64_t> class_bytes;
    common::log_histogram msg_hist;       ///< message sizes in bytes
    std::uint64_t issued_since_flow = 0;  ///< flow-sampling counter
  };

  sim::engine& eng_;
  common::network_model nm_;
  common::tracer* trace_ = nullptr;
  std::uint64_t flow_sample_;
  std::vector<per_rank> state_;
};

}  // namespace ityr::rma
