#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "itoyori/common/error.hpp"
#include "itoyori/common/options.hpp"

namespace ityr::sim {

/// Priority structure behind engine::pick_next: "which unfinished rank has
/// the smallest virtual clock?".
///
/// Two interchangeable implementations, selected by ITYR_SIM_SCHEDULER:
///  * indexed (default) — a 4-ary min-heap over (clock, rank) with a
///    rank → heap-slot position index, so a clock update after a resume is
///    O(log_4 n) and pick is O(1). This is what makes O(1000)-rank runs
///    resume-bound instead of scan-bound: the seed's linear scan made every
///    event O(n), i.e. the *whole simulation* O(events · ranks).
///  * linear — the seed's O(n) scan, kept as a differential-testing oracle
///    (tests assert the heap reproduces its resume order bit-for-bit).
///
/// Ordering is lexicographic (clock, rank): at equal clocks the lowest rank
/// wins, which is exactly the tie-break the linear scan's strict `<` gave
/// (first minimum found). Determinism of the whole simulator rests on this
/// total order, so it must never depend on heap internals.
class rank_queue {
public:
  rank_queue(int n, common::sim_sched_kind kind) : kind_(kind), clock_(n), pos_(n) {
    heap_.reserve(static_cast<std::size_t>(n));
    reset();
  }

  /// All ranks become alive again with clock 0 (start of engine::run).
  void reset() {
    const int n = static_cast<int>(clock_.size());
    heap_.clear();
    for (int r = 0; r < n; r++) {
      clock_[r] = 0.0;
      pos_[r] = r;
      heap_.push_back({0.0, r});
    }
    // Already a valid heap: equal clocks, ranks in increasing order.
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Rank with the smallest (clock, rank), or -1 when all ranks finished.
  int top() const {
    if (kind_ == common::sim_sched_kind::linear) {
      int best = -1;
      double best_clock = std::numeric_limits<double>::infinity();
      for (int r = 0; r < static_cast<int>(clock_.size()); r++) {
        if (pos_[r] >= 0 && clock_[r] < best_clock) {
          best = r;
          best_clock = clock_[r];
        }
      }
      return best;
    }
    return heap_.empty() ? -1 : heap_[0].rank;
  }

  /// Reposition `rank` after its clock advanced. Clocks only move forward,
  /// but a sift-up precedes the sift-down anyway so the structure stays
  /// correct even if a future cost model rebates time.
  void update(int rank, double clock) {
    ITYR_CHECK(pos_[rank] >= 0);
    clock_[rank] = clock;
    if (kind_ == common::sim_sched_kind::linear) return;
    const auto i = static_cast<std::size_t>(pos_[rank]);
    heap_[i].clock = clock;
    sift_up(i);
    sift_down(static_cast<std::size_t>(pos_[rank]));
  }

  /// Drop a finished rank from consideration.
  void remove(int rank) {
    ITYR_CHECK(pos_[rank] >= 0);
    if (kind_ == common::sim_sched_kind::linear) {
      pos_[rank] = -1;
      heap_.pop_back();  // slot contents are unused in linear mode; keep the count right
      return;
    }
    const auto i = static_cast<std::size_t>(pos_[rank]);
    const entry moved = heap_.back();
    heap_[i] = moved;
    pos_[moved.rank] = static_cast<int>(i);
    heap_.pop_back();
    pos_[rank] = -1;
    if (i < heap_.size()) {
      sift_up(i);
      sift_down(i);
    }
  }

private:
  static constexpr std::size_t kArity = 4;

  /// Heap node: the key is stored inline so a sift's child comparisons read
  /// contiguous memory (a 4-ary node's children span one or two cache
  /// lines) instead of gathering clocks through a rank indirection — this
  /// is the difference between the heap being a win or a wash at O(1000)
  /// ranks, where the scattered clock loads would miss L1 on every level.
  struct entry {
    double clock;
    int rank;
  };

  /// (clock, rank) lexicographic — the simulator's total resume order.
  static bool less(const entry& a, const entry& b) {
    return a.clock < b.clock || (a.clock == b.clock && a.rank < b.rank);
  }

  void sift_up(std::size_t i) {
    const entry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!less(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      pos_[heap_[i].rank] = static_cast<int>(i);
      i = parent;
    }
    heap_[i] = e;
    pos_[e.rank] = static_cast<int>(i);
  }

  void sift_down(std::size_t i) {
    const entry e = heap_[i];
    const std::size_t n = heap_.size();
    while (true) {
      const std::size_t first = i * kArity + 1;
      if (first >= n) break;
      const std::size_t last = first + kArity < n ? first + kArity : n;
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; c++) {
        if (less(heap_[c], heap_[best])) best = c;
      }
      if (!less(heap_[best], e)) break;
      heap_[i] = heap_[best];
      pos_[heap_[i].rank] = static_cast<int>(i);
      i = best;
    }
    heap_[i] = e;
    pos_[e.rank] = static_cast<int>(i);
  }

  common::sim_sched_kind kind_;
  std::vector<double> clock_;  ///< rank → clock (linear-mode scan key)
  std::vector<int> pos_;  ///< rank → heap slot (linear mode: >=0 means alive)
  std::vector<entry> heap_;
};

}  // namespace ityr::sim
