#pragma once

#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "itoyori/common/error.hpp"
#include "itoyori/common/options.hpp"
#include "itoyori/common/rng.hpp"
#include "itoyori/common/topology.hpp"
#include "itoyori/sim/fiber.hpp"
#include "itoyori/sim/rank_queue.hpp"

namespace ityr::sim {

/// Deterministic discrete-event simulator of a multi-node cluster.
///
/// Each simulated MPI process ("rank") runs as a fiber with its own virtual
/// clock. The engine always resumes the unfinished rank with the smallest
/// clock, which yields a causally consistent interleaving: when rank A reads
/// a flag at virtual time t, every write rank B performed before t has
/// already executed. This is the substitution for the paper's real cluster
/// (see DESIGN.md): the runtime layers above are identical logic; only the
/// transport and the notion of time differ.
///
/// Time advances two ways:
///  * measured: host-CPU time spent inside the fiber between resume and
///    yield, scaled by options::compute_scale (application compute), and
///  * modelled: explicit charge()/advance() calls from the network and
///    scheduler layers (communication, fences, steals).
class engine {
public:
  explicit engine(const common::options& opt);
  ~engine();

  engine(const engine&) = delete;
  engine& operator=(const engine&) = delete;

  const common::options& opts() const { return opt_; }

  /// Run `rank_main(rank)` to completion on every rank. Rethrows the first
  /// exception that escaped a rank main.
  void run(std::function<void(int)> rank_main);

  // ---- topology ----
  int n_ranks() const { return opt_.n_ranks(); }
  int node_of(int rank) const { return rank / opt_.ranks_per_node; }
  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  /// Distance-class map of the simulated interconnect (ITYR_TOPOLOGY); the
  /// network and scheduler layers price messages through this.
  const common::topology& topo() const { return topo_; }

  // ---- callable only from inside rank fibers ----
  int my_rank() const {
    ITYR_CHECK(current_rank_ >= 0);
    return current_rank_;
  }

  /// Committed virtual time of the calling rank.
  double now() const { return ranks_[my_rank()].clock; }

  /// Virtual time including not-yet-committed measured compute since the
  /// last resume; used for profiling attribution.
  double now_precise() const;

  /// Charge `dt` virtual seconds without yielding.
  void charge(double dt) {
    ITYR_CHECK(dt >= 0);
    ranks_[my_rank()].clock += dt;
  }

  /// Charge `dt` and yield to the simulator (other ranks may run).
  void advance(double dt);

  /// Yield with a minimal epsilon charge (progress guarantee).
  void yield() { advance(min_advance_); }

  /// Deterministic per-rank random stream.
  common::xoshiro256ss& rng() { return ranks_[my_rank()].rng; }

  // ---- fiber management for the tasking layer ----
  fiber* current_fiber() const { return ranks_[my_rank()].running; }

  /// Create a fiber from the pooled stacks. It is not scheduled; switch to
  /// it explicitly.
  fiber* spawn_fiber(fiber::entry_fn fn) { return pool_->acquire(std::move(fn)); }

  /// Recycle a fiber that is no longer running.
  void free_fiber(fiber* f) { pool_->release(f); }

  /// Save the current fiber and run `f` on this rank (no DES involvement;
  /// the measured-compute timer keeps running).
  void switch_to(fiber* f);

  /// The current fiber terminates; run `f` on this rank.
  [[noreturn]] void exit_to(fiber* f);

  // ---- statistics ----
  std::uint64_t total_resumes() const { return total_resumes_; }
  std::uint64_t resumes_of(int rank) const { return ranks_[rank].resumes; }

  /// Fiber-pool footprint/churn counters (high-water, created, reused,
  /// dropped) for the metrics registry.
  const fiber_pool& pool_stats() const { return *pool_; }

  /// Test hook: called on every DES resume with (rank, committed clock after
  /// the slice). Used by the scheduler differential test to fingerprint the
  /// exact resume order; null (and free) in normal runs.
  void set_resume_hook(std::function<void(int, double)> hook) {
    resume_hook_ = std::move(hook);
  }

  /// True once any rank's main has terminated with an exception; pollers
  /// (e.g. barriers) use this to abort instead of waiting forever.
  bool any_rank_failed() const { return failed_ranks_ > 0; }
  double clock_of(int rank) const { return ranks_[rank].clock; }
  double max_clock() const;

private:
  struct rank_state {
    double clock = 0.0;
    fiber* running = nullptr;     ///< fiber to resume next for this rank
    std::unique_ptr<fiber> main;  ///< the rank-main fiber (owned)
    bool finished = false;
    common::xoshiro256ss rng;
    std::exception_ptr error;
    std::uint64_t resumes = 0;  ///< DES resumes of this rank (idle/resume transitions)
  };

  void yield_to_scheduler();  // save current fiber, return to the run loop

  common::options opt_;
  common::topology topo_;
  std::vector<rank_state> ranks_;
  rank_queue queue_;
  std::unique_ptr<fiber_pool> pool_;
  fiber_context main_ctx_{};
  int current_rank_ = -1;
  bool running_ = false;
  double min_advance_ = 1.0e-9;
  std::uint64_t total_resumes_ = 0;
  int failed_ranks_ = 0;
  std::chrono::steady_clock::time_point resume_t0_{};
  std::function<void(int, double)> resume_hook_;
};

/// The engine currently executing (valid while engine::run is live). The
/// simulator is single-threaded, so a plain global suffices.
engine& current_engine();
bool engine_active();

namespace detail {
void set_current_engine(engine* e);
}

}  // namespace ityr::sim
