/// Hand-rolled context switch for the asm fiber backend (ITYR_FIBER_BACKEND=
/// asm, the default on supported targets).
///
/// Why not swapcontext: on Linux, every swapcontext performs a sigprocmask
/// *syscall* to save/restore the signal mask, plus saves the full register
/// file. The simulator never changes signal masks from inside fibers, and the
/// SysV/AAPCS ABIs guarantee that a function call clobbers everything except
/// the callee-saved set — so a cooperative switch at a call boundary only
/// needs callee-saved registers, the FP control words, and the stack pointer.
/// That reduces a fiber switch from ~1us of kernel round trip to a dozen
/// moves, which is what makes O(1000)-rank simulations resume-bound on the
/// model instead of on sigprocmask.
///
/// Contract with fiber.cpp (see prepare_asm_context):
///  * ityr_ctx_switch(save_sp, restore_sp) pushes the save frame on the
///    current stack, stores the resulting sp in *save_sp, switches to
///    restore_sp and pops the same frame layout.
///  * ityr_ctx_jump(restore_sp) is the no-save variant used when the current
///    fiber is dead.
///  * A *prepared* (never-run) frame "returns" into ityr_ctx_trampoline with
///    the fiber pointer in the first saved callee register (rbx / x19); the
///    trampoline realigns the stack and calls ityr_fiber_entry_thunk, which
///    never returns.
///
/// The frame layouts (offsets from the saved sp) are:
///   x86-64:  [0] mxcsr(4) fcw(2) pad(2) | [8] r15 | [16] r14 | [24] r13 |
///            [32] r12 | [40] rbx | [48] rbp | [56] return address
///            (64 bytes; matches kAsmFrameBytes in fiber.cpp)
///   aarch64: [0..72] x19..x28 | [80] x29 | [88] x30 (return address) |
///            [96..152] d8..d15   (160 bytes)
///
/// Exceptions may be thrown and caught *within* a fiber (every fiber entry
/// wraps user code in try/catch) but never unwound across a switch — same
/// rule the ucontext backend lives by, so the missing CFI at the trampoline
/// frame is never walked by a live unwind.

#include "itoyori/sim/fiber.hpp"

#if defined(__x86_64__) && defined(__ELF__)

asm(R"(
        .text

        .globl  ityr_ctx_switch
        .type   ityr_ctx_switch, @function
ityr_ctx_switch:
        .cfi_startproc
        pushq   %rbp
        pushq   %rbx
        pushq   %r12
        pushq   %r13
        pushq   %r14
        pushq   %r15
        subq    $8, %rsp
        stmxcsr (%rsp)
        fnstcw  4(%rsp)
        movq    %rsp, (%rdi)
        movq    %rsi, %rsp
        ldmxcsr (%rsp)
        fldcw   4(%rsp)
        addq    $8, %rsp
        popq    %r15
        popq    %r14
        popq    %r13
        popq    %r12
        popq    %rbx
        popq    %rbp
        retq
        .cfi_endproc
        .size   ityr_ctx_switch, .-ityr_ctx_switch

        .globl  ityr_ctx_jump
        .type   ityr_ctx_jump, @function
ityr_ctx_jump:
        .cfi_startproc
        movq    %rdi, %rsp
        ldmxcsr (%rsp)
        fldcw   4(%rsp)
        addq    $8, %rsp
        popq    %r15
        popq    %r14
        popq    %r13
        popq    %r12
        popq    %rbx
        popq    %rbp
        retq
        .cfi_endproc
        .size   ityr_ctx_jump, .-ityr_ctx_jump

        .globl  ityr_ctx_trampoline
        .type   ityr_ctx_trampoline, @function
ityr_ctx_trampoline:
        movq    %rbx, %rdi
        xorl    %ebp, %ebp
        andq    $-16, %rsp
        callq   ityr_fiber_entry_thunk@PLT
        ud2
        .size   ityr_ctx_trampoline, .-ityr_ctx_trampoline
)");

#elif defined(__aarch64__) && defined(__ELF__)

asm(R"(
        .text

        .globl  ityr_ctx_switch
        .type   ityr_ctx_switch, %function
ityr_ctx_switch:
        sub     sp, sp, #160
        stp     x19, x20, [sp, #0]
        stp     x21, x22, [sp, #16]
        stp     x23, x24, [sp, #32]
        stp     x25, x26, [sp, #48]
        stp     x27, x28, [sp, #64]
        stp     x29, x30, [sp, #80]
        stp     d8,  d9,  [sp, #96]
        stp     d10, d11, [sp, #112]
        stp     d12, d13, [sp, #128]
        stp     d14, d15, [sp, #144]
        mov     x2, sp
        str     x2, [x0]
        mov     sp, x1
        b       .Lityr_ctx_restore
        .size   ityr_ctx_switch, .-ityr_ctx_switch

        .globl  ityr_ctx_jump
        .type   ityr_ctx_jump, %function
ityr_ctx_jump:
        mov     sp, x0
.Lityr_ctx_restore:
        ldp     x19, x20, [sp, #0]
        ldp     x21, x22, [sp, #16]
        ldp     x23, x24, [sp, #32]
        ldp     x25, x26, [sp, #48]
        ldp     x27, x28, [sp, #64]
        ldp     x29, x30, [sp, #80]
        ldp     d8,  d9,  [sp, #96]
        ldp     d10, d11, [sp, #112]
        ldp     d12, d13, [sp, #128]
        ldp     d14, d15, [sp, #144]
        add     sp, sp, #160
        ret
        .size   ityr_ctx_jump, .-ityr_ctx_jump

        .globl  ityr_ctx_trampoline
        .type   ityr_ctx_trampoline, %function
ityr_ctx_trampoline:
        mov     x0, x19
        mov     x29, #0
        mov     x30, #0
        bl      ityr_fiber_entry_thunk
        brk     #0
        .size   ityr_ctx_trampoline, .-ityr_ctx_trampoline
)");

#else

// Unsupported target: the asm backend is never selected here
// (common::default_fiber_backend falls back to ucontext), but the symbols
// must exist for fiber.cpp to link.
extern "C" {
void ityr_ctx_switch(void**, void*) { ITYR_DIE("asm fiber backend unsupported on this target"); }
void ityr_ctx_jump(void*) { ITYR_DIE("asm fiber backend unsupported on this target"); }
void ityr_ctx_trampoline() { ITYR_DIE("asm fiber backend unsupported on this target"); }
}

#endif
