#include "itoyori/sim/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>

namespace ityr::sim {

namespace {

std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return ps;
}

}  // namespace

fiber::fiber(std::size_t stack_size, entry_fn fn) : fn_(std::move(fn)) {
  const std::size_t ps = page_size();
  stack_size_ = (stack_size + ps - 1) / ps * ps;
  // One guard page below the stack catches overflow instead of corrupting
  // a neighbouring fiber's stack.
  void* region = ::mmap(nullptr, stack_size_ + ps, PROT_READ | PROT_WRITE,
                        MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (region == MAP_FAILED) throw common::resource_error("fiber stack mmap failed");
  if (::mprotect(region, ps, PROT_NONE) != 0)
    throw common::resource_error("fiber guard mprotect failed");
  stack_ = static_cast<char*>(region) + ps;
  prepare_context();
}

fiber::~fiber() {
  if (stack_ != nullptr) {
    ::munmap(static_cast<char*>(stack_) - page_size(), stack_size_ + page_size());
  }
}

void fiber::prepare_context() {
  ITYR_CHECK(::getcontext(&ctx_) == 0);
  ctx_.uc_stack.ss_sp = stack_;
  ctx_.uc_stack.ss_size = stack_size_;
  ctx_.uc_link = nullptr;  // fibers never fall off the end (see trampoline)
  // makecontext only forwards int arguments, so smuggle the 64-bit `this`
  // through two 32-bit halves (the classic portable-ucontext idiom).
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  ::makecontext(&ctx_, reinterpret_cast<void (*)()>(&fiber::trampoline), 2,
                static_cast<unsigned>(self & 0xffffffffu),
                static_cast<unsigned>(self >> 32));
  done_ = false;
}

void fiber::trampoline(unsigned lo, unsigned hi) {
  auto* self = reinterpret_cast<fiber*>(std::uintptr_t{lo} | (std::uintptr_t{hi} << 32));
  self->fn_();
  // Entry functions must terminate via an explicit context switch (the
  // scheduler decides what runs next); falling off the end is a bug.
  ITYR_DIE("fiber entry function returned without switching away");
}

void fiber::reset(entry_fn fn) {
  fn_ = std::move(fn);
  prepare_context();
}

std::size_t fiber::live_stack_bytes() const {
#if defined(__x86_64__)
  // The live region runs from the saved stack pointer to the top of the
  // stack; this feeds the migration cost model.
  const auto sp = static_cast<std::uintptr_t>(ctx_.uc_mcontext.gregs[REG_RSP]);
  const auto base = reinterpret_cast<std::uintptr_t>(stack_);
  if (sp >= base && sp < base + stack_size_) {
    return base + stack_size_ - sp;
  }
#endif
  // Unknown ABI or context not yet saved: conservatively the whole region.
  return stack_size_;
}

void fiber_switch(ucontext_t* from, ucontext_t* to) {
  ITYR_CHECK(::swapcontext(from, to) == 0);
}

namespace {
// Scratch context used as the "from" side when a fiber exits: its state is
// dead, so saving into a throwaway slot is fine and avoids setcontext's
// inability to report errors.
ucontext_t g_exit_scratch;
}  // namespace

void fiber_exit_to(ucontext_t* next) {
  ITYR_CHECK(::swapcontext(&g_exit_scratch, next) == 0);
  ITYR_DIE("resumed a dead fiber");
}

fiber* fiber_pool::acquire(fiber::entry_fn fn) {
  outstanding_++;
  if (!free_.empty()) {
    fiber* f = free_.back().release();
    free_.pop_back();
    f->reset(std::move(fn));
    return f;
  }
  return std::make_unique<fiber>(stack_size_, std::move(fn)).release();
}

void fiber_pool::release(fiber* f) {
  ITYR_CHECK(outstanding_ > 0);
  outstanding_--;
  free_.emplace_back(f);
}

}  // namespace ityr::sim
