#include "itoyori/sim/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>

// Assembly entry points of the asm backend (fiber_asm.cpp). ityr_ctx_jump
// and the trampoline never return; ityr_ctx_switch returns when the saved
// context is resumed.
extern "C" {
void ityr_ctx_switch(void** save_sp, void* restore_sp);
[[noreturn]] void ityr_ctx_jump(void* restore_sp);
void ityr_ctx_trampoline();
}

namespace ityr::sim {

namespace {

std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return ps;
}

common::fiber_backend_kind g_backend = common::default_fiber_backend();

/// Bytes ityr_ctx_switch pushes below the caller's stack pointer (must match
/// the frame layout in fiber_asm.cpp). live_stack_bytes() subtracts it so
/// the reported depth means "stack in use by the program at the suspend
/// point", the same quantity the ucontext backend reports (glibc saves the
/// caller's sp with the swapcontext frame already excluded).
#if defined(__x86_64__)
constexpr std::size_t kAsmFrameBytes = 64;
#elif defined(__aarch64__)
constexpr std::size_t kAsmFrameBytes = 160;
#else
constexpr std::size_t kAsmFrameBytes = 0;
#endif

}  // namespace

common::fiber_backend_kind fiber_backend() { return g_backend; }
void set_fiber_backend(common::fiber_backend_kind k) { g_backend = k; }

fiber::fiber(std::size_t stack_size, entry_fn fn) : fn_(std::move(fn)) {
  const std::size_t ps = page_size();
  stack_size_ = (stack_size + ps - 1) / ps * ps;
  // One guard page below the stack catches overflow instead of corrupting a
  // neighbouring fiber's stack. MAP_ANONYMOUS memory is populated lazily, so
  // a pooled 256 KiB stack that only ever uses a few KiB costs a few KiB of
  // RSS — per-rank footprint at O(1000) ranks depends on stack *use*, not
  // stack *reservation*.
  void* region = ::mmap(nullptr, stack_size_ + ps, PROT_READ | PROT_WRITE,
                        MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (region == MAP_FAILED) throw common::resource_error("fiber stack mmap failed");
  if (::mprotect(region, ps, PROT_NONE) != 0)
    throw common::resource_error("fiber guard mprotect failed");
  stack_ = static_cast<char*>(region) + ps;
  prepare_context();
}

fiber::~fiber() {
  if (stack_ != nullptr) {
    ::munmap(static_cast<char*>(stack_) - page_size(), stack_size_ + page_size());
  }
}

void fiber::prepare_context() {
  if (g_backend == common::fiber_backend_kind::asm_switch) {
    prepare_asm_context();
  } else {
    prepare_ucontext();
  }
  done_ = false;
}

void fiber::prepare_ucontext() {
  ITYR_CHECK(::getcontext(&ctx_.uctx) == 0);
  ctx_.uctx.uc_stack.ss_sp = stack_;
  ctx_.uctx.uc_stack.ss_size = stack_size_;
  ctx_.uctx.uc_link = nullptr;  // fibers never fall off the end (see trampoline)
  // makecontext only forwards int arguments, so smuggle the 64-bit `this`
  // through two 32-bit halves (the classic portable-ucontext idiom).
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  ::makecontext(&ctx_.uctx, reinterpret_cast<void (*)()>(&fiber::trampoline), 2,
                static_cast<unsigned>(self & 0xffffffffu),
                static_cast<unsigned>(self >> 32));
}

void fiber::prepare_asm_context() {
  // Build the save frame a restore expects (layout documented in
  // fiber_asm.cpp) at the top of the stack: "returning" from it enters
  // ityr_ctx_trampoline with `this` in the first callee-saved register.
  std::uintptr_t top = reinterpret_cast<std::uintptr_t>(stack_) + stack_size_;
  top &= ~std::uintptr_t{15};
#if defined(__x86_64__)
  auto* frame = reinterpret_cast<std::uintptr_t*>(top) - 10;  // 80 bytes, 16-aligned
  std::uint32_t mxcsr;
  std::uint16_t fcw;
  __asm__ volatile("stmxcsr %0\n\tfnstcw %1" : "=m"(mxcsr), "=m"(fcw));
  frame[0] = std::uintptr_t{mxcsr} | (std::uintptr_t{fcw} << 32);
  frame[1] = 0;                                                       // r15
  frame[2] = 0;                                                       // r14
  frame[3] = 0;                                                       // r13
  frame[4] = 0;                                                       // r12
  frame[5] = reinterpret_cast<std::uintptr_t>(this);                  // rbx
  frame[6] = 0;                                                       // rbp
  frame[7] = reinterpret_cast<std::uintptr_t>(&ityr_ctx_trampoline);  // ret
  frame[8] = 0;  // fake caller frame: stops backtraces, keeps alignment
  frame[9] = 0;
  ctx_.sp = frame;
#elif defined(__aarch64__)
  auto* frame = reinterpret_cast<std::uintptr_t*>(top) - 20;  // 160 bytes, 16-aligned
  for (int i = 0; i < 20; i++) frame[i] = 0;
  frame[0] = reinterpret_cast<std::uintptr_t>(this);                   // x19
  frame[11] = reinterpret_cast<std::uintptr_t>(&ityr_ctx_trampoline);  // x30
  ctx_.sp = frame;
#else
  ITYR_DIE("asm fiber backend unsupported on this target");
#endif
}

void fiber::trampoline(unsigned lo, unsigned hi) {
  auto* self = reinterpret_cast<fiber*>(std::uintptr_t{lo} | (std::uintptr_t{hi} << 32));
  self->fn_();
  // Entry functions must terminate via an explicit context switch (the
  // scheduler decides what runs next); falling off the end is a bug.
  ITYR_DIE("fiber entry function returned without switching away");
}

void fiber::run_entry() {
  fn_();
  ITYR_DIE("fiber entry function returned without switching away");
}

void fiber::reset(entry_fn fn) {
  fn_ = std::move(fn);
  prepare_context();
}

std::size_t fiber::live_stack_bytes() const {
  const auto base = reinterpret_cast<std::uintptr_t>(stack_);
  if (g_backend == common::fiber_backend_kind::asm_switch) {
    const auto sp = reinterpret_cast<std::uintptr_t>(ctx_.sp) + kAsmFrameBytes;
    if (sp >= base && sp <= base + stack_size_) {
      return base + stack_size_ - sp;
    }
    return stack_size_;
  }
#if defined(__x86_64__)
  // The live region runs from the saved stack pointer to the top of the
  // stack; this feeds the migration cost model.
  const auto sp = static_cast<std::uintptr_t>(ctx_.uctx.uc_mcontext.gregs[REG_RSP]);
  if (sp >= base && sp < base + stack_size_) {
    return base + stack_size_ - sp;
  }
#endif
  // Unknown ABI or context not yet saved: conservatively the whole region.
  return stack_size_;
}

void fiber_switch(fiber_context* from, fiber_context* to) {
  if (g_backend == common::fiber_backend_kind::asm_switch) {
    ityr_ctx_switch(&from->sp, to->sp);
  } else {
    ITYR_CHECK(::swapcontext(&from->uctx, &to->uctx) == 0);
  }
}

namespace {
// Scratch context used as the "from" side when a fiber exits under the
// ucontext backend: its state is dead, so saving into a throwaway slot is
// fine and avoids setcontext's inability to report errors.
ucontext_t g_exit_scratch;
}  // namespace

void fiber_exit_to(fiber_context* next) {
  if (g_backend == common::fiber_backend_kind::asm_switch) {
    ityr_ctx_jump(next->sp);
  }
  ITYR_CHECK(::swapcontext(&g_exit_scratch, &next->uctx) == 0);
  ITYR_DIE("resumed a dead fiber");
}

fiber* fiber_pool::acquire(fiber::entry_fn fn) {
  outstanding_++;
  if (outstanding_ + free_.size() > high_water_) high_water_ = outstanding_ + free_.size();
  if (!free_.empty()) {
    fiber* f = free_.back().release();
    free_.pop_back();
    f->reset(std::move(fn));
    reused_++;
    return f;
  }
  created_++;
  return std::make_unique<fiber>(stack_size_, std::move(fn)).release();
}

void fiber_pool::release(fiber* f) {
  ITYR_CHECK(outstanding_ > 0);
  outstanding_--;
  if (cap_ != 0 && free_.size() >= cap_) {
    dropped_++;
    delete f;
    return;
  }
  free_.emplace_back(f);
}

}  // namespace ityr::sim

extern "C" void ityr_fiber_entry_thunk(void* self) {
  static_cast<ityr::sim::fiber*>(self)->run_entry();
}
