#include "itoyori/sim/engine.hpp"

namespace ityr::sim {

namespace {
engine* g_engine = nullptr;
}

engine& current_engine() {
  ITYR_CHECK(g_engine != nullptr);
  return *g_engine;
}

bool engine_active() { return g_engine != nullptr; }

namespace detail {
void set_current_engine(engine* e) { g_engine = e; }
}

engine::engine(const common::options& opt)
    : opt_([&] {
        common::validate_topology(opt.n_nodes, opt.ranks_per_node, opt.topology);
        common::validate_sim_core(opt.ult_stack_size);
        return opt;
      }()),
      topo_(opt_.n_nodes, opt_.ranks_per_node, opt_.topology, opt_.net),
      queue_(opt_.n_ranks(), opt_.sim_sched) {
  ITYR_CHECK(opt_.n_ranks() >= 1);
  // The backend is process-global; set it before any fiber exists. No fibers
  // can be live here (engines don't nest), so the switch is safe.
  set_fiber_backend(opt_.fiber_backend);
  ranks_.resize(static_cast<std::size_t>(opt_.n_ranks()));
  for (int r = 0; r < opt_.n_ranks(); r++) {
    ranks_[r].rng = common::xoshiro256ss(opt_.seed * 0x9e3779b97f4a7c15ULL +
                                         static_cast<std::uint64_t>(r) + 1);
  }
  pool_ = std::make_unique<fiber_pool>(opt_.ult_stack_size, opt_.fiber_pool_cap);
  detail::set_current_engine(this);
}

engine::~engine() {
  if (g_engine == this) detail::set_current_engine(nullptr);
}

double engine::now_precise() const {
  double t = ranks_[my_rank()].clock;
  if (!opt_.deterministic) {
    const auto elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - resume_t0_).count();
    t += elapsed * opt_.compute_scale;
  }
  return t;
}

void engine::advance(double dt) {
  ITYR_CHECK(dt >= 0);
  ranks_[my_rank()].clock += (dt > min_advance_ ? dt : min_advance_);
  yield_to_scheduler();
}

void engine::yield_to_scheduler() {
  rank_state& rs = ranks_[my_rank()];
  ITYR_CHECK(rs.running != nullptr);
  fiber_switch(rs.running->context(), &main_ctx_);
}

void engine::switch_to(fiber* f) {
  rank_state& rs = ranks_[my_rank()];
  fiber* from = rs.running;
  ITYR_CHECK(from != nullptr && f != nullptr && from != f);
  rs.running = f;
  fiber_switch(from->context(), f->context());
}

void engine::exit_to(fiber* f) {
  rank_state& rs = ranks_[my_rank()];
  ITYR_CHECK(f != nullptr);
  rs.running = f;
  fiber_exit_to(f->context());
  __builtin_unreachable();
}

void engine::run(std::function<void(int)> rank_main) {
  ITYR_CHECK(!running_);
  running_ = true;
  queue_.reset();

  for (int r = 0; r < n_ranks(); r++) {
    rank_state& rs = ranks_[r];
    rs.clock = 0.0;
    rs.finished = false;
    rs.error = nullptr;
    rs.main = std::make_unique<fiber>(opt_.ult_stack_size, [this, r, &rank_main] {
      rank_state& self = ranks_[r];
      try {
        rank_main(r);
      } catch (...) {
        self.error = std::current_exception();
        failed_ranks_++;
      }
      self.finished = true;
      // Return control to the run loop; this fiber is dead.
      fiber_exit_to(&main_ctx_);
    });
    rs.running = rs.main.get();
  }

  while (true) {
    // O(1) pick from the rank queue (previously an O(n) scan — the dominant
    // cost at O(1000) ranks). charge() stays O(1) because the queue is only
    // repositioned here, after the slice yields back with its final clock.
    const int r = queue_.top();
    if (r < 0) break;
    current_rank_ = r;
    total_resumes_++;
    ranks_[r].resumes++;
    // In deterministic mode the slice cost is the fixed
    // deterministic_resume_cost, so the host timestamp (a vDSO call, but
    // still tens of ns) is skipped on the per-resume fast path.
    if (!opt_.deterministic) resume_t0_ = std::chrono::steady_clock::now();
    fiber_switch(&main_ctx_, ranks_[r].running->context());
    // Commit measured compute for the slice that just ran.
    if (opt_.deterministic) {
      ranks_[r].clock += opt_.deterministic_resume_cost;
    } else {
      const auto elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - resume_t0_).count();
      ranks_[r].clock += elapsed * opt_.compute_scale;
    }
    if (ranks_[r].finished) {
      queue_.remove(r);
    } else {
      queue_.update(r, ranks_[r].clock);
    }
    if (resume_hook_) resume_hook_(r, ranks_[r].clock);
    current_rank_ = -1;
  }

  running_ = false;
  failed_ranks_ = 0;
  for (auto& rs : ranks_) {
    rs.main.reset();
    rs.running = nullptr;
    if (rs.error) {
      auto err = rs.error;
      rs.error = nullptr;
      std::rethrow_exception(err);
    }
  }
}

double engine::max_clock() const {
  double m = 0.0;
  for (const auto& rs : ranks_) m = rs.clock > m ? rs.clock : m;
  return m;
}

}  // namespace ityr::sim
