#include "itoyori/sim/engine.hpp"

#include <limits>

namespace ityr::sim {

namespace {
engine* g_engine = nullptr;
}

engine& current_engine() {
  ITYR_CHECK(g_engine != nullptr);
  return *g_engine;
}

bool engine_active() { return g_engine != nullptr; }

namespace detail {
void set_current_engine(engine* e) { g_engine = e; }
}

engine::engine(const common::options& opt) : opt_(opt) {
  ITYR_CHECK(opt_.n_ranks() >= 1);
  ranks_.resize(static_cast<std::size_t>(opt_.n_ranks()));
  for (int r = 0; r < opt_.n_ranks(); r++) {
    ranks_[r].rng = common::xoshiro256ss(opt_.seed * 0x9e3779b97f4a7c15ULL +
                                         static_cast<std::uint64_t>(r) + 1);
  }
  pool_ = std::make_unique<fiber_pool>(opt_.ult_stack_size);
  detail::set_current_engine(this);
}

engine::~engine() {
  if (g_engine == this) detail::set_current_engine(nullptr);
}

double engine::now_precise() const {
  double t = ranks_[my_rank()].clock;
  if (!opt_.deterministic) {
    const auto elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - resume_t0_).count();
    t += elapsed * opt_.compute_scale;
  }
  return t;
}

void engine::advance(double dt) {
  ITYR_CHECK(dt >= 0);
  ranks_[my_rank()].clock += (dt > min_advance_ ? dt : min_advance_);
  yield_to_scheduler();
}

void engine::yield_to_scheduler() {
  rank_state& rs = ranks_[my_rank()];
  ITYR_CHECK(rs.running != nullptr);
  fiber_switch(rs.running->context(), &main_ctx_);
}

void engine::switch_to(fiber* f) {
  rank_state& rs = ranks_[my_rank()];
  fiber* from = rs.running;
  ITYR_CHECK(from != nullptr && f != nullptr && from != f);
  rs.running = f;
  fiber_switch(from->context(), f->context());
}

void engine::exit_to(fiber* f) {
  rank_state& rs = ranks_[my_rank()];
  ITYR_CHECK(f != nullptr);
  rs.running = f;
  fiber_exit_to(f->context());
  __builtin_unreachable();
}

int engine::pick_next() const {
  int best = -1;
  double best_clock = std::numeric_limits<double>::infinity();
  for (int r = 0; r < n_ranks(); r++) {
    if (!ranks_[r].finished && ranks_[r].clock < best_clock) {
      best = r;
      best_clock = ranks_[r].clock;
    }
  }
  return best;
}

void engine::run(std::function<void(int)> rank_main) {
  ITYR_CHECK(!running_);
  running_ = true;

  for (int r = 0; r < n_ranks(); r++) {
    rank_state& rs = ranks_[r];
    rs.clock = 0.0;
    rs.finished = false;
    rs.error = nullptr;
    rs.main = std::make_unique<fiber>(opt_.ult_stack_size, [this, r, &rank_main] {
      rank_state& self = ranks_[r];
      try {
        rank_main(r);
      } catch (...) {
        self.error = std::current_exception();
        failed_ranks_++;
      }
      self.finished = true;
      // Return control to the run loop; this fiber is dead.
      fiber_exit_to(&main_ctx_);
    });
    rs.running = rs.main.get();
  }

  while (true) {
    const int r = pick_next();
    if (r < 0) break;
    current_rank_ = r;
    total_resumes_++;
    ranks_[r].resumes++;
    resume_t0_ = std::chrono::steady_clock::now();
    fiber_switch(&main_ctx_, ranks_[r].running->context());
    // Commit measured compute for the slice that just ran.
    if (opt_.deterministic) {
      ranks_[r].clock += opt_.deterministic_resume_cost;
    } else {
      const auto elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - resume_t0_).count();
      ranks_[r].clock += elapsed * opt_.compute_scale;
    }
    current_rank_ = -1;
  }

  running_ = false;
  failed_ranks_ = 0;
  for (auto& rs : ranks_) {
    rs.main.reset();
    rs.running = nullptr;
    if (rs.error) {
      auto err = rs.error;
      rs.error = nullptr;
      std::rethrow_exception(err);
    }
  }
}

double engine::max_clock() const {
  double m = 0.0;
  for (const auto& rs : ranks_) m = rs.clock > m ? rs.clock : m;
  return m;
}

}  // namespace ityr::sim
