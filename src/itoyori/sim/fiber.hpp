#pragma once

#include <ucontext.h>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "itoyori/common/error.hpp"
#include "itoyori/common/options.hpp"

/// C entry point the asm trampoline calls with the fiber pointer (extern "C"
/// so the hand-written assembly can name it without mangling).
extern "C" [[noreturn]] void ityr_fiber_entry_thunk(void* self);

namespace ityr::sim {

/// Saved execution state of a suspended fiber (or of the engine's run loop).
/// Which member is live depends on the process-wide fiber backend
/// (ITYR_FIBER_BACKEND, see common::fiber_backend_kind):
///  * asm_switch — `sp` points into the fiber's stack at the save frame
///    (callee-saved registers live on the stack itself; no syscalls, ~10ns
///    per switch);
///  * ucontext   — the full ucontext_t, via swapcontext (which performs a
///    sigprocmask syscall per switch on Linux, but is portable and is what
///    ASan's fiber tracking understands).
struct fiber_context {
  ucontext_t uctx{};
  void* sp = nullptr;
};

/// The process-wide backend all context switches use. Set once by the engine
/// constructor (from options::fiber_backend) before any of its fibers exist;
/// changing it while fibers are suspended is undefined.
common::fiber_backend_kind fiber_backend();
void set_fiber_backend(common::fiber_backend_kind k);

/// A fiber with an mmap'd, guard-paged, lazily-populated stack.
///
/// Fibers serve two roles in the simulator: (1) each simulated rank's main
/// context, and (2) the user-level threads of the uni-address tasking layer.
/// A suspended fiber is a self-contained continuation — handing the pointer
/// to another rank *is* thread migration (the network cost of copying the
/// stack is charged separately by the scheduler).
class fiber {
public:
  using entry_fn = std::function<void()>;

  fiber(std::size_t stack_size, entry_fn fn);
  ~fiber();

  fiber(const fiber&) = delete;
  fiber& operator=(const fiber&) = delete;

  fiber_context* context() { return &ctx_; }
  std::size_t stack_size() const { return stack_size_; }
  bool done() const { return done_; }

  /// Estimated live stack bytes (for migration cost modelling): the distance
  /// from the saved stack pointer to the top of the stack region.
  std::size_t live_stack_bytes() const;

  /// Reinitialize a finished fiber with a new entry (used by the stack pool).
  /// Under the asm backend this only rebuilds an ~80-byte frame at the stack
  /// top — no getcontext/makecontext.
  void reset(entry_fn fn);

private:
  static void trampoline(unsigned lo, unsigned hi);  // ucontext entry path

  void prepare_context();
  void prepare_ucontext();
  void prepare_asm_context();
  [[noreturn]] void run_entry();  // asm entry path (via ityr_ctx_trampoline)

  fiber_context ctx_{};
  void* stack_ = nullptr;
  std::size_t stack_size_ = 0;
  entry_fn fn_;
  bool done_ = false;

  friend class fiber_pool;
  friend void ::ityr_fiber_entry_thunk(void* self);
};

/// Swap from `from` to `to`. `from` is saved and can be resumed later.
void fiber_switch(fiber_context* from, fiber_context* to);

/// The current fiber terminates; control transfers to `next` and never
/// returns here.
[[noreturn]] void fiber_exit_to(fiber_context* next);

/// Pool of reusable fibers: ULT spawn/death is on the fork/join fast path,
/// so stacks are recycled rather than mmap'd per task. Retention is capped
/// (`cap` idle stacks, 0 = unbounded): stacks released beyond the cap are
/// unmapped, so a burst of deep recursion does not pin its high-water
/// footprint for the rest of the run.
class fiber_pool {
public:
  explicit fiber_pool(std::size_t stack_size, std::size_t cap = 0)
      : stack_size_(stack_size), cap_(cap) {}

  fiber* acquire(fiber::entry_fn fn);
  void release(fiber* f);

  std::size_t outstanding() const { return outstanding_; }
  std::size_t idle() const { return free_.size(); }

  // ---- footprint/churn accounting (exported via the metrics registry) ----
  /// Max simultaneously-live fibers (outstanding + pooled) over the run.
  std::size_t high_water() const { return high_water_; }
  std::uint64_t created() const { return created_; }  ///< stacks mmap'd
  std::uint64_t reused() const { return reused_; }    ///< served from the pool
  std::uint64_t dropped() const { return dropped_; }  ///< unmapped at the cap

private:
  std::size_t stack_size_;
  std::size_t cap_;
  std::vector<std::unique_ptr<fiber>> free_;
  std::size_t outstanding_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t created_ = 0;
  std::uint64_t reused_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace ityr::sim
