#pragma once

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "itoyori/common/error.hpp"

namespace ityr::sim {

/// A ucontext-based fiber with an mmap'd, guard-paged stack.
///
/// Fibers serve two roles in the simulator: (1) each simulated rank's main
/// context, and (2) the user-level threads of the uni-address tasking layer.
/// A suspended fiber is a self-contained continuation — handing the pointer
/// to another rank *is* thread migration (the network cost of copying the
/// stack is charged separately by the scheduler).
class fiber {
public:
  using entry_fn = std::function<void()>;

  fiber(std::size_t stack_size, entry_fn fn);
  ~fiber();

  fiber(const fiber&) = delete;
  fiber& operator=(const fiber&) = delete;

  ucontext_t* context() { return &ctx_; }
  std::size_t stack_size() const { return stack_size_; }
  bool done() const { return done_; }

  /// Estimated live stack bytes (for migration cost modelling): the distance
  /// from the saved stack pointer to the top of the stack region.
  std::size_t live_stack_bytes() const;

  /// Reinitialize a finished fiber with a new entry (used by the stack pool).
  void reset(entry_fn fn);

private:
  static void trampoline(unsigned lo, unsigned hi);

  void prepare_context();

  ucontext_t ctx_{};
  void* stack_ = nullptr;
  std::size_t stack_size_ = 0;
  entry_fn fn_;
  bool done_ = false;

  friend class fiber_pool;
  friend void fiber_exit_to(ucontext_t* next);
};

/// Swap from `from` to `to`. `from` is saved and can be resumed later.
void fiber_switch(ucontext_t* from, ucontext_t* to);

/// The current fiber terminates; control transfers to `next` and never
/// returns here.
void fiber_exit_to(ucontext_t* next);

/// Pool of reusable fibers: ULT spawn/death is on the fork/join fast path,
/// so stacks are recycled rather than mmap'd per task.
class fiber_pool {
public:
  explicit fiber_pool(std::size_t stack_size) : stack_size_(stack_size) {}

  fiber* acquire(fiber::entry_fn fn);
  void release(fiber* f);

  std::size_t outstanding() const { return outstanding_; }

private:
  std::size_t stack_size_;
  std::vector<std::unique_ptr<fiber>> free_;
  std::size_t outstanding_ = 0;
};

}  // namespace ityr::sim
