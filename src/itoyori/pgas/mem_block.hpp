#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "itoyori/common/interval_set.hpp"
#include "itoyori/common/job.hpp"
#include "itoyori/common/lru_list.hpp"
#include "itoyori/pgas/home_loc.hpp"

namespace ityr::pgas {

/// One in-flight prefetch segment: a block-relative byte range whose
/// nonblocking get was issued at some past virtual time and whose data is
/// usable from `ready_at` on. The segment is retired (erased) when a
/// consumer first touches it, when a write fully overwrites it, or when
/// the block is evicted/invalidated — each retirement emits exactly one
/// "prefetch consume" or "prefetch evict" trace terminator for the flow
/// arrow recorded at issue time (tools/trace_lint checks the pairing).
struct pf_seg {
  common::interval iv;     ///< block-relative range
  double ready_at = 0;     ///< modelled completion time of the get
};

/// One tracked memory block of a rank's coherence stack: either a *home*
/// block (mapped zero-copy from an intra-node owner's pool, dynamically
/// managed because of the mapping-entry budget) or a *cache* block (a slot
/// of the rank's cache pool with byte-granularity valid/dirty intervals).
///
/// Owned by the block_directory; raw pointers held elsewhere (front-table
/// memos, the write-back engine's dirty list, prefetch segments) must be
/// purged before the directory destroys the block — the directory's client
/// callback (cache_system::on_block_evicted) enforces this on eviction.
struct mem_block : common::lru_hook {
  enum class kind : std::uint8_t { home, cache };
  kind k{};
  std::uint64_t mb_id = 0;
  home_loc home{};
  bool mapped = false;
  std::uint32_t ref_count = 0;
  /// Reference bit for the clock/second-chance eviction policy; untouched
  /// (and meaningless) under strict LRU.
  bool referenced = false;
  // cache blocks only:
  std::size_t slot = 0;                 ///< index into the cache pool
  /// Job that allocated this cache slot (serving mode; no_job otherwise).
  /// The tag sticks until eviction even if other jobs later hit the block —
  /// capacity accounting charges the allocator, not every reader.
  common::job_id_t job = common::no_job;
  common::interval_set valid;           ///< block-relative [0, block_size)
  common::interval_set dirty;
  bool fully_valid = false;             ///< valid == [0, block_size)
  bool in_dirty_list = false;
  // prefetcher state (cache blocks only; empty unless ITYR_PREFETCH):
  common::interval_set prefetched;      ///< prefetched, not yet consumed
  std::vector<pf_seg> pf_segs;          ///< unretired prefetch segments

  void update_fully_valid(std::size_t block_size) {
    fully_valid = valid.contains({0, block_size});
  }
};

}  // namespace ityr::pgas
