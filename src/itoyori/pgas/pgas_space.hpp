#pragma once

#include <array>
#include <memory>
#include <vector>

#include "itoyori/pgas/cache_system.hpp"
#include "itoyori/pgas/global_heap.hpp"
#include "itoyori/pgas/placement.hpp"
#include "itoyori/pgas/types.hpp"

namespace ityr::pgas {

/// The full PGAS layer of the simulated cluster: the shared global heap plus
/// one cache_system per rank, the epoch control window for the lazy-release
/// protocol, a GET/PUT baseline (paper Section 6.1's "No Cache"
/// configuration: thin wrappers over MPI_Get/MPI_Put into user buffers), and
/// an SPMD barrier.
///
/// All per-rank operations dispatch on the calling rank; they must be called
/// from inside simulated rank fibers.
class pgas_space {
public:
  pgas_space(sim::engine& eng, rma::context& rma);

  global_heap& heap() { return heap_; }
  cache_system& cache() { return cache_of(eng_.my_rank()); }
  cache_system& cache_of(int rank) { return *caches_[static_cast<std::size_t>(rank)]; }

  // ---- checkout/checkin on the calling rank ----
  void* checkout(gaddr_t g, std::size_t size, access_mode mode) {
    return cache().checkout(g, size, mode);
  }
  void checkin(gaddr_t g, std::size_t size, access_mode mode) {
    cache().checkin(g, size, mode);
  }

  // ---- fences on the calling rank ----
  void release() { cache().release(); }
  release_handler release_lazy() { return cache().release_lazy(); }
  void acquire() { cache().acquire(); }
  void acquire(release_handler h) { cache().acquire(h); }
  /// Multi-origin acquire: wait for every handler's releaser, invalidate once.
  void acquire(const release_handler* hs, std::size_t n) { cache().acquire(hs, n); }
  /// Plain acquire that first waits out a known releaser watermark (async
  /// release: the finishing child's pending write-back rounds).
  void acquire_watermark(double w) { cache().acquire_watermark(w); }
  /// Opportunistic dirty-data flush from an idle worker (ITYR_ASYNC_RELEASE).
  void idle_flush() { cache().idle_flush(); }
  void poll() {
    cache().poll();
    heap_.poll();
    if (placement_) placement_->poll();
  }

  // ---- dynamic placement (ITYR_MIGRATION / ITYR_REPLICATION) ----
  /// The placement engine, or nullptr when every placement feature is off
  /// (metrics gate their pgas.* series on this, like the critpath profiler).
  placement_engine* placement() { return placement_.get(); }
  const placement_engine* placement() const { return placement_.get(); }
  /// Deadline check from the worker loop's idle branch: an idle rank is the
  /// cheapest place to charge a placement pass.
  void placement_poll() {
    if (placement_) placement_->poll();
  }

  // ---- GET/PUT baseline (uncached, copies into user memory) ----
  void get(gaddr_t from, void* to, std::size_t size);
  void put(const void* from, gaddr_t to, std::size_t size);

  // ---- single-block fast-path entry points (front-table served) ----
  /// False means the caller must fall back to checkout/checkin or GET/PUT.
  bool get_fast(gaddr_t from, void* to, std::size_t size) {
    return cache().get_fast(from, size, to);
  }
  bool put_fast(const void* from, gaddr_t to, std::size_t size) {
    return cache().put_fast(to, size, from);
  }

  /// SPMD-mode barrier across all ranks, with release/acquire semantics
  /// (all writes before the barrier are visible after it).
  void barrier();

  /// Aggregate cache statistics over all ranks.
  cache_system::stats aggregate_stats() const;

  /// Aggregate per-job cache rows over all ranks (serving mode; empty when
  /// off). Row index = job id; row 0 collects untagged traffic. cached_bytes
  /// and its peak sum the ranks' slot holdings — a cluster-wide footprint.
  std::vector<job_cache_stats> aggregate_job_stats() {
    std::vector<job_cache_stats> rows;
    for (auto& c : caches_) {
      const job_cache_accounting& a = c->job_accounting();
      if (a.rows.size() > rows.size()) rows.resize(a.rows.size());
      for (std::size_t j = 0; j < a.rows.size(); j++) {
        rows[j].fetched_bytes += a.rows[j].fetched_bytes;
        rows[j].written_back_bytes += a.rows[j].written_back_bytes;
        rows[j].block_fetches += a.rows[j].block_fetches;
        rows[j].cached_bytes += a.rows[j].cached_bytes;
        rows[j].cached_bytes_peak += a.rows[j].cached_bytes_peak;
        rows[j].quota_recycles += a.rows[j].quota_recycles;
      }
    }
    return rows;
  }

  /// Attach the tracer to every rank's cache system (nullptr detaches).
  void set_tracer(common::tracer* t) {
    for (auto& c : caches_) c->set_tracer(t);
  }

private:
  /// Shared GET/PUT walk: per-block transfers with pool-contiguous runs
  /// merged into single messages when coalescing is enabled.
  void xfer(gaddr_t g, std::byte* local, std::size_t size, bool is_put);

  sim::engine& eng_;
  rma::context& rma_;
  global_heap heap_;

  // Epoch control words, one pair per rank, registered as an RMA window so
  // thieves can poll/request write-backs remotely (Fig. 6).
  std::vector<std::array<std::uint64_t, 2>> epochs_;
  rma::window* ctrl_win_ = nullptr;

  // Constructed before the caches (its pool windows must get their creation-
  // order ids ahead of nothing — but the caches hold a pointer to it), null
  // unless migration, replication or the hot-block export is enabled.
  std::unique_ptr<placement_engine> placement_;

  std::vector<std::unique_ptr<cache_system>> caches_;

  // Barrier state (shared; the DES serializes access).
  std::uint64_t barrier_generation_ = 0;
  int barrier_arrived_ = 0;
  // Async release: max visibility watermark of the arriving ranks' pending
  // write-back rounds. Accumulated into `pending` while ranks arrive, sealed
  // into `sealed` by the last arrival, waited on by everyone after the flip
  // (always 0 in synchronous mode).
  double barrier_vis_pending_ = 0;
  double barrier_vis_sealed_ = 0;
};

}  // namespace ityr::pgas
