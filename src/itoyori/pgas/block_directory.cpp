#include "itoyori/pgas/block_directory.hpp"

#include <algorithm>

namespace ityr::pgas {

namespace {
// Fixed virtual cost of one mmap/munmap when running in deterministic mode
// (in measured mode the real syscall cost is captured by the engine).
constexpr double kDeterministicMmapCost = 2.0e-6;

bool home_evictable(const mem_block& mb) { return mb.ref_count == 0; }

bool cache_evictable(const mem_block& mb) { return mb.ref_count == 0 && mb.dirty.empty(); }

// Target for the job-scoped quota-recycle predicate. evictable_fn is a plain
// function pointer (no captures); the simulator is single-threaded, so a
// file-scope slot set immediately before select_victim is safe.
common::job_id_t g_quota_job = common::no_job;

bool cache_evictable_of_job(const mem_block& mb) {
  return mb.ref_count == 0 && mb.dirty.empty() && mb.job == g_quota_job;
}
}  // namespace

block_directory::block_directory(sim::engine& eng, eviction_policy& evict, client& cl,
                                 cache_stats& st, std::size_t block_size, std::size_t view_size,
                                 std::size_t cache_size, int rank)
    : eng_(eng),
      evict_(evict),
      client_(cl),
      st_(st),
      rank_(rank),
      block_size_(block_size),
      view_(view_size),
      cache_pool_(block_size, std::max<std::size_t>(1, cache_size / block_size), "ityr-cache"),
      n_cache_blocks_(cache_pool_.n_blocks()) {
  // Mapping-entry budget (paper Section 4.3.2): the OS limit is shared by
  // the whole simulated cluster (one real process), and each mapped block
  // can cost up to two entries. Split the budget evenly across ranks,
  // reserve the cache blocks' share, and let home blocks use the rest.
  const std::size_t per_rank_budget =
      eng.opts().max_map_entries / (2 * static_cast<std::size_t>(eng.n_ranks()) + 2);
  home_mapped_limit_ = per_rank_budget > n_cache_blocks_ + 64
                           ? per_rank_budget - n_cache_blocks_
                           : 64;

  free_slots_.reserve(n_cache_blocks_);
  for (std::size_t s = n_cache_blocks_; s-- > 0;) free_slots_.push_back(s);
}

void block_directory::charge_mmap() {
  if (eng_.opts().deterministic) eng_.charge(kDeterministicMmapCost);
}

void block_directory::map_block(mem_block& mb) {
  ITYR_CHECK(!mb.mapped);
  const std::uint64_t voff = mb.mb_id * block_size_;
  if (mb.k == mem_block::kind::home) {
    view_.map(voff, *mb.home.pool, mb.home.pool_off, block_size_);
  } else {
    view_.map(voff, cache_pool_, mb.slot * block_size_, block_size_);
  }
  mb.mapped = true;
  charge_mmap();
}

void block_directory::unmap_block(mem_block& mb) {
  ITYR_CHECK(mb.mapped);
  view_.unmap(mb.mb_id * block_size_, block_size_);
  mb.mapped = false;
  charge_mmap();
}

mem_block& block_directory::get_home_block(std::uint64_t mb_id, const home_loc& home) {
  auto it = home_blocks_.find(mb_id);
  if (it != home_blocks_.end()) {
    evict_.on_access(home_lru_, *it->second);
    return *it->second;
  }
  if (home_blocks_.size() >= home_mapped_limit_) evict_home_block();

  auto mb = std::make_unique<mem_block>();
  mb->k = mem_block::kind::home;
  mb->mb_id = mb_id;
  mb->home = home;
  mem_block& ref = *mb;
  home_blocks_.emplace(mb_id, std::move(mb));
  evict_.on_insert(home_lru_, ref);
  return ref;
}

void block_directory::evict_home_block() {
  mem_block* victim = evict_.select_victim(home_lru_, home_evictable);
  if (victim == nullptr) {
    throw common::too_much_checkout_error(
        "all home-block mapping entries are pinned by outstanding checkouts");
  }
  mem_block& mb = *victim;
  client_.on_block_evicted(mb);  // raw pointers must never outlive a block
  if (mb.mapped) unmap_block(mb);
  home_lru_.erase(mb);
  st_.home_evictions++;
  if (trace_ != nullptr) trace_->instant(rank_, eng_.now_precise(), "home evict");
  home_blocks_.erase(mb.mb_id);
}

mem_block& block_directory::get_cache_block(std::uint64_t mb_id, const home_loc& home) {
  auto it = cache_blocks_.find(mb_id);
  if (it != cache_blocks_.end()) {
    evict_.on_access(cache_lru_, *it->second);
    return *it->second;
  }
  if (free_slots_.empty()) {
    // Soft per-job quota (ITYR_CACHE_JOB_QUOTA): a job already holding more
    // cache capacity than its quota recycles its own least-recently-used
    // clean block first, so a scan-heavy job's allocations churn its own
    // working set instead of evicting a latency-sensitive neighbor's. Soft:
    // when the job has nothing clean and unpinned of its own, allocation
    // falls through to the generic path — pinned or dirty blocks never block
    // progress.
    bool freed = false;
    if (jobs_ != nullptr && jobs_->enabled && jobs_->quota > 0 &&
        jobs_->cur != common::no_job && jobs_->of(jobs_->cur).cached_bytes > jobs_->quota) {
      freed = try_evict_cache_block_of(jobs_->cur);
      if (freed) jobs_->of(jobs_->cur).quota_recycles++;
    }
    if (!freed && !try_evict_cache_block()) {
      // Everything is pinned or dirty: write back all dirty data and retry
      // (paper Section 4.4). After the write-back every block is clean, so
      // a block that still cannot be evicted is pinned by an outstanding
      // checkout — the checkout request exceeds the cache capacity.
      client_.flush_dirty_for_eviction();
      if (!try_evict_cache_block()) {
        throw common::too_much_checkout_error(
            "cache capacity exhausted by pinned blocks (too-much-checkout)");
      }
    }
  }
  const std::size_t slot = free_slots_.back();
  free_slots_.pop_back();

  auto mb = std::make_unique<mem_block>();
  mb->k = mem_block::kind::cache;
  mb->mb_id = mb_id;
  mb->home = home;
  mb->slot = slot;
  mem_block& ref = *mb;
  cache_blocks_.emplace(mb_id, std::move(mb));
  evict_.on_insert(cache_lru_, ref);
  tag_new_cache_block(ref);
  return ref;
}

void block_directory::tag_new_cache_block(mem_block& mb) {
  if (jobs_ == nullptr || !jobs_->enabled) return;
  mb.job = jobs_->cur;
  job_cache_stats& row = jobs_->of(mb.job);
  row.cached_bytes += block_size_;
  row.cached_bytes_peak = std::max(row.cached_bytes_peak, row.cached_bytes);
}

void block_directory::evict_cache_block(mem_block& mb) {
  client_.on_block_evicted(mb);  // unread prefetches and memos die with the block
  if (mb.mapped) unmap_block(mb);
  cache_lru_.erase(mb);
  free_slots_.push_back(mb.slot);
  st_.cache_evictions++;
  if (jobs_ != nullptr && jobs_->enabled) {
    job_cache_stats& row = jobs_->of(mb.job);
    ITYR_CHECK(row.cached_bytes >= block_size_);
    row.cached_bytes -= block_size_;
  }
  if (trace_ != nullptr) trace_->instant(rank_, eng_.now_precise(), "cache evict");
  cache_blocks_.erase(mb.mb_id);
}

bool block_directory::try_evict_cache_block() {
  mem_block* victim = evict_.select_victim(cache_lru_, cache_evictable);
  if (victim == nullptr) return false;
  evict_cache_block(*victim);
  return true;
}

bool block_directory::try_evict_cache_block_of(common::job_id_t job) {
  g_quota_job = job;
  mem_block* victim = evict_.select_victim(cache_lru_, cache_evictable_of_job);
  if (victim == nullptr) return false;
  evict_cache_block(*victim);
  return true;
}

bool block_directory::block_busy(std::uint64_t mb_id) const {
  if (const auto it = home_blocks_.find(mb_id); it != home_blocks_.end()) {
    if (it->second->ref_count > 0) return true;
  }
  if (const auto it = cache_blocks_.find(mb_id); it != cache_blocks_.end()) {
    if (it->second->ref_count > 0 || !it->second->dirty.empty()) return true;
  }
  return false;
}

bool block_directory::purge_block(std::uint64_t mb_id) {
  bool purged = false;
  if (const auto it = home_blocks_.find(mb_id); it != home_blocks_.end()) {
    mem_block& mb = *it->second;
    ITYR_CHECK(mb.ref_count == 0);
    client_.on_block_evicted(mb);
    if (mb.mapped) unmap_block(mb);
    home_lru_.erase(mb);
    home_blocks_.erase(it);
    purged = true;
  }
  if (const auto it = cache_blocks_.find(mb_id); it != cache_blocks_.end()) {
    mem_block& mb = *it->second;
    ITYR_CHECK(mb.ref_count == 0);
    ITYR_CHECK(mb.dirty.empty());
    client_.on_block_evicted(mb);
    if (mb.mapped) unmap_block(mb);
    cache_lru_.erase(mb);
    free_slots_.push_back(mb.slot);
    if (jobs_ != nullptr && jobs_->enabled) {
      job_cache_stats& row = jobs_->of(mb.job);
      ITYR_CHECK(row.cached_bytes >= block_size_);
      row.cached_bytes -= block_size_;
    }
    cache_blocks_.erase(it);
    purged = true;
  }
  return purged;
}

mem_block* block_directory::find_home_block(std::uint64_t mb_id) {
  auto it = home_blocks_.find(mb_id);
  return it != home_blocks_.end() ? it->second.get() : nullptr;
}

mem_block* block_directory::find_cache_block(std::uint64_t mb_id) {
  auto it = cache_blocks_.find(mb_id);
  return it != cache_blocks_.end() ? it->second.get() : nullptr;
}

mem_block* block_directory::alloc_cache_block_speculative(std::uint64_t mb_id,
                                                          const home_loc& home) {
  if (free_slots_.empty() && !try_evict_cache_block()) return nullptr;
  const std::size_t slot = free_slots_.back();
  free_slots_.pop_back();
  auto owned = std::make_unique<mem_block>();
  owned->k = mem_block::kind::cache;
  owned->mb_id = mb_id;
  owned->home = home;
  owned->slot = slot;
  mem_block* mb = owned.get();
  cache_blocks_.emplace(mb_id, std::move(owned));
  evict_.on_insert_speculative(cache_lru_, *mb);
  tag_new_cache_block(*mb);
  return mb;
}

}  // namespace ityr::pgas
