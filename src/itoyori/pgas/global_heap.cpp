#include "itoyori/pgas/global_heap.hpp"

#include <cmath>

namespace ityr::pgas {

namespace {

std::size_t round_up(std::size_t v, std::size_t to) { return (v + to - 1) / to * to; }

/// Noncollective allocation quantum (size and alignment).
constexpr std::size_t kNcQuantum = 64;

}  // namespace

global_heap::global_heap(sim::engine& eng, rma::context& rma) : eng_(eng), rma_(rma) {
  const auto& o = eng_.opts();
  // Fail fast with a diagnosable error before any pool is carved up: the
  // pools hard-assert on page granularity, and the cache layers assume
  // power-of-two sub-block arithmetic.
  common::validate_cache_geometry(o.block_size, o.sub_block_size);
  block_size_ = o.block_size;
  base_ = static_cast<gaddr_t>(block_size_);  // gaddr 0 stays invalid

  const auto n = static_cast<std::size_t>(eng_.n_ranks());
  const std::size_t coll_per_rank = round_up(o.coll_heap_per_rank, block_size_);
  nc_per_rank_ = round_up(o.noncoll_heap_per_rank, block_size_);
  coll_total_ = coll_per_rank * n;
  total_ = coll_total_ + nc_per_rank_ * n;

  std::vector<rma::window::region> coll_regions, nc_regions;
  for (std::size_t r = 0; r < n; r++) {
    coll_pools_.push_back(std::make_unique<vm::physical_pool>(
        block_size_, coll_per_rank / block_size_, "ityr-coll-home"));
    nc_pools_.push_back(std::make_unique<vm::physical_pool>(
        block_size_, nc_per_rank_ / block_size_, "ityr-nc-home"));
    coll_regions.push_back({coll_pools_.back()->base(), coll_per_rank});
    nc_regions.push_back({nc_pools_.back()->base(), nc_per_rank_});
  }
  coll_win_ = rma_.create_window(std::move(coll_regions));
  nc_win_ = rma_.create_window(std::move(nc_regions));

  coll_gspace_ = free_list(coll_total_);
  coll_pool_space_ = free_list(coll_per_rank);
  coll_seq_.assign(n, 0);
  nc_space_.reserve(n);
  for (std::size_t r = 0; r < n; r++) nc_space_.emplace_back(nc_per_rank_);
  pending_frees_.resize(n);
}

global_heap::home_loc global_heap::locate_block(std::uint64_t mb_id) const {
  home_loc h = locate_block_base(mb_id);
  if (override_ != nullptr) override_->apply_override(mb_id, h);
  return h;
}

global_heap::home_loc global_heap::locate_block_base(std::uint64_t mb_id) const {
  const std::uint64_t off = mb_id * block_size_;
  ITYR_CHECK(off < total_);
  const auto n = static_cast<std::uint64_t>(eng_.n_ranks());

  if (off < coll_total_) {
    // Find the collective allocation containing this block.
    auto it = coll_allocs_.upper_bound(off);
    if (it == coll_allocs_.begin())
      throw common::api_error("global memory access outside any live collective allocation");
    --it;
    const coll_record& rec = it->second;
    if (off >= rec.vbase + rec.gspan)
      throw common::api_error("global memory access outside any live collective allocation");

    const std::uint64_t j = (off - rec.vbase) / block_size_;
    std::uint64_t rank, pool_off;
    if (rec.policy == common::dist_policy::block_cyclic) {
      rank = j % n;
      pool_off = rec.pool_base + (j / n) * block_size_;
    } else {
      const std::uint64_t per_rank_blocks = rec.per_rank_span / block_size_;
      rank = j / per_rank_blocks;
      pool_off = rec.pool_base + (j % per_rank_blocks) * block_size_;
    }
    return {static_cast<int>(rank), coll_pools_[rank].get(), pool_off, coll_win_};
  }

  const std::uint64_t nc_off = off - coll_total_;
  const std::uint64_t rank = nc_off / nc_per_rank_;
  const std::uint64_t pool_off = nc_off % nc_per_rank_;
  return {static_cast<int>(rank), nc_pools_[rank].get(), pool_off, nc_win_};
}

bool global_heap::try_locate_block(std::uint64_t mb_id, home_loc& out) const {
  const std::uint64_t off = mb_id * block_size_;
  if (off >= total_) return false;
  if (off < coll_total_) {
    auto it = coll_allocs_.upper_bound(off);
    if (it == coll_allocs_.begin()) return false;
    --it;
    if (off >= it->second.vbase + it->second.gspan) return false;
  }
  out = locate_block(mb_id);
  return true;
}

void global_heap::charge_collective() {
  // Collective allocation implies window creation / synchronization across
  // all ranks; charge a latency tree.
  const auto& net = eng_.opts().net;
  const int n = eng_.n_ranks();
  double depth = 1.0;
  for (int p = 1; p < n; p *= 2) depth += 1.0;
  eng_.advance(depth * net.inter_latency);
}

gaddr_t global_heap::coll_alloc(std::size_t size, common::dist_policy policy) {
  ITYR_CHECK(size > 0);
  const int me = eng_.my_rank();
  charge_collective();

  auto& seq = coll_seq_[static_cast<std::size_t>(me)];
  if (seq < coll_log_.size()) {
    // Another rank already performed this collective call; replay its result.
    const coll_op& op = coll_log_[seq++];
    ITYR_CHECK(op.k == coll_op::kind::alloc);
    return op.g;
  }

  const auto n = static_cast<std::size_t>(eng_.n_ranks());
  const std::size_t blocks_total = round_up(size, block_size_) / block_size_;
  const std::size_t per_rank_blocks = (blocks_total + n - 1) / n;
  const std::size_t per_rank_span = per_rank_blocks * block_size_;
  const std::size_t gspan = per_rank_span * n;

  auto g_off = coll_gspace_.alloc(gspan, block_size_);
  if (!g_off) throw common::resource_error("collective heap exhausted");
  auto p_off = coll_pool_space_.alloc(per_rank_span, block_size_);
  if (!p_off) {
    coll_gspace_.dealloc(*g_off, gspan);
    throw common::resource_error("collective home pools exhausted");
  }

  coll_allocs_.emplace(*g_off, coll_record{*g_off, size, gspan, policy, *p_off, per_rank_span});

  const gaddr_t g = base_ + *g_off;
  coll_log_.push_back({coll_op::kind::alloc, g});
  seq++;
  return g;
}

void global_heap::coll_free(gaddr_t g) {
  const int me = eng_.my_rank();
  charge_collective();

  auto& seq = coll_seq_[static_cast<std::size_t>(me)];
  if (seq < coll_log_.size()) {
    const coll_op& op = coll_log_[seq++];
    ITYR_CHECK(op.k == coll_op::kind::dealloc && op.g == g);
    return;
  }

  const std::uint64_t off = view_off(g);
  auto it = coll_allocs_.find(off);
  if (it == coll_allocs_.end()) throw common::api_error("coll_free of unknown allocation");
  const coll_record rec = it->second;
  coll_allocs_.erase(it);
  coll_gspace_.dealloc(rec.vbase, rec.gspan);
  coll_pool_space_.dealloc(rec.pool_base, rec.per_rank_span);

  coll_log_.push_back({coll_op::kind::dealloc, g});
  seq++;
}

gaddr_t global_heap::alloc(std::size_t size) {
  ITYR_CHECK(size > 0);
  const auto me = static_cast<std::size_t>(eng_.my_rank());
  poll();  // reclaim remotely freed memory first
  // Allocate in whole 64-byte quanta: carving exact sizes at aligned starts
  // would strand a dead sub-quantum fragment per allocation, and first-fit
  // would then rescan millions of them (quadratic blowup).
  auto off = nc_space_[me].alloc(round_up(size, kNcQuantum), kNcQuantum);
  if (!off) throw common::resource_error("noncollective heap segment exhausted");
  return base_ + coll_total_ + me * nc_per_rank_ + *off;
}

void global_heap::free(gaddr_t g, std::size_t size) {
  ITYR_CHECK(size > 0);
  const std::uint64_t off = view_off(g);
  ITYR_CHECK(off >= coll_total_);
  const std::uint64_t nc_off = off - coll_total_;
  const auto owner = static_cast<std::size_t>(nc_off / nc_per_rank_);
  const std::uint64_t seg_off = nc_off % nc_per_rank_;

  if (owner == static_cast<std::size_t>(eng_.my_rank())) {
    nc_space_[owner].dealloc(seg_off, round_up(size, kNcQuantum));
  } else {
    // Remote free: forward to the owner (one small message) and let it
    // reclaim at its next poll, as the paper allows any process to free
    // noncollectively allocated memory.
    eng_.charge(eng_.opts().net.injection_overhead);
    pending_frees_[owner].push_back({seg_off, size});
  }
}

void global_heap::poll() {
  const auto me = static_cast<std::size_t>(eng_.my_rank());
  auto& pend = pending_frees_[me];
  if (pend.empty()) return;
  for (const auto& pf : pend) nc_space_[me].dealloc(pf.off, round_up(pf.size, kNcQuantum));
  pend.clear();
}

}  // namespace ityr::pgas
