#pragma once

#include <cstddef>
#include <cstdint>

namespace ityr::vm {
class physical_pool;
}
namespace ityr::rma {
struct window;
}

namespace ityr::pgas {

/// Home location of one heap block: which rank owns its physical bytes,
/// where in that rank's pool they live, and the RMA window they are
/// reachable by. Pure value; produced by global_heap, stored per mem_block.
///
/// `gen` is the block's forwarding generation under dynamic data placement
/// (ITYR_MIGRATION): it increments every time the block's home moves, so a
/// cached home_loc whose gen differs from a fresh locate is a forwarding
/// hint — the holder must retry through global_heap and drop any state tied
/// to the old owner. Always 0 when placement is off (aggregate initializers
/// below leave it defaulted), keeping the off path bit-identical.
struct home_loc {
  int rank = -1;
  const vm::physical_pool* pool = nullptr;
  std::uint64_t pool_off = 0;   ///< offset within the pool == window offset
  rma::window* win = nullptr;
  std::uint32_t gen = 0;        ///< forwarding generation (0 = never migrated)
};

/// Placement-override seam between global_heap and the placement engine:
/// locate_block() consults this (when wired) so every consumer — demand
/// fetches, prefetch streams, GET/PUT transfers, write-back routing —
/// resolves to the *current* owner without knowing migration exists.
class home_override_source {
public:
  virtual ~home_override_source() = default;
  /// Rewrite `h` (rank/pool/pool_off/win) to block `mb_id`'s current owner
  /// if its home was migrated, and stamp `h.gen` with the block's forwarding
  /// generation. Must be cheap: this rides every block locate.
  virtual void apply_override(std::uint64_t mb_id, home_loc& h) const = 0;
};

/// Minimal heap-lookup surface the fetch engine's speculative (prefetch)
/// path needs: a non-throwing block locate plus the heap extent. global_heap
/// implements it; unit tests substitute a synthetic locator over hand-built
/// windows.
class block_locator {
public:
  virtual ~block_locator() = default;

  /// False iff the block is out of range or outside any live allocation —
  /// how most prefetch streams die. Never a substitute for the demand path's
  /// throwing locate.
  virtual bool try_locate_block(std::uint64_t mb_id, home_loc& out) const = 0;

  /// Total heap span in bytes (view offsets are in [0, total_size())).
  virtual std::size_t total_size() const = 0;
};

}  // namespace ityr::pgas
