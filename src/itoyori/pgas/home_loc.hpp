#pragma once

#include <cstddef>
#include <cstdint>

namespace ityr::vm {
class physical_pool;
}
namespace ityr::rma {
struct window;
}

namespace ityr::pgas {

/// Home location of one heap block: which rank owns its physical bytes,
/// where in that rank's pool they live, and the RMA window they are
/// reachable by. Pure value; produced by global_heap, stored per mem_block.
struct home_loc {
  int rank = -1;
  const vm::physical_pool* pool = nullptr;
  std::uint64_t pool_off = 0;   ///< offset within the pool == window offset
  rma::window* win = nullptr;
};

/// Minimal heap-lookup surface the fetch engine's speculative (prefetch)
/// path needs: a non-throwing block locate plus the heap extent. global_heap
/// implements it; unit tests substitute a synthetic locator over hand-built
/// windows.
class block_locator {
public:
  virtual ~block_locator() = default;

  /// False iff the block is out of range or outside any live allocation —
  /// how most prefetch streams die. Never a substitute for the demand path's
  /// throwing locate.
  virtual bool try_locate_block(std::uint64_t mb_id, home_loc& out) const = 0;

  /// Total heap span in bytes (view offsets are in [0, total_size())).
  virtual std::size_t total_size() const = 0;
};

}  // namespace ityr::pgas
