#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "itoyori/common/interval_set.hpp"
#include "itoyori/common/trace.hpp"
#include "itoyori/pgas/block_directory.hpp"
#include "itoyori/pgas/cache_stats.hpp"
#include "itoyori/pgas/home_loc.hpp"
#include "itoyori/pgas/mem_block.hpp"
#include "itoyori/pgas/xfer_batch.hpp"
#include "itoyori/rma/channel.hpp"
#include "itoyori/sim/engine.hpp"

namespace ityr::pgas {

class placement_engine;

/// Remote-read layer of the coherence stack: collects a checkout round's
/// demand-fetch gaps at sub-block granularity, issues them coalesced, and
/// performs the round's completion wait — plus the adaptive stream
/// prefetcher (ITYR_PREFETCH) with its nonblocking fetch pipeline, in-flight
/// byte budget and pf_seg tracking.
///
/// A round is: begin_round(); queue_demand() per missing block;
/// issue_round(); (caller maps blocks) wait_round(). The wait is targeted
/// when prefetching is on — only this round's fetches plus consumed
/// in-flight prefetches — and a full flush otherwise, with the stall charged
/// to fetch_stall_s identically in both modes.
class fetch_engine {
public:
  struct config {
    std::size_t block_size = 0;
    std::size_t sub_block_size = 0;
    bool coalesce = true;
    bool prefetch = false;             ///< already gated on depth/budget > 0
    std::size_t prefetch_depth = 0;    ///< sub-blocks ahead of a stream
    std::size_t prefetch_max_inflight = 0;  ///< modelled in-flight byte cap
    int rank = -1;
    placement_engine* placement = nullptr;  ///< dynamic placement (may be null)
  };

  fetch_engine(sim::engine& eng, rma::channel& ch, block_directory& dir,
               const block_locator& heap, cache_stats& st, const config& cfg);

  void set_tracer(common::tracer* t) { trace_ = t; }
  bool prefetch_enabled() const { return prefetch_on_; }

  /// Pad a block-relative request to demand-fetch (sub-block) granularity.
  common::interval pad_to_sub_blocks(common::interval req) const {
    return {req.begin / sub_block_size_ * sub_block_size_,
            std::min<std::uint64_t>(
                (req.end + sub_block_size_ - 1) / sub_block_size_ * sub_block_size_,
                block_size_)};
  }

  // ---- demand round ----
  void begin_round() {
    pf_wait_ = 0.0;
    extra_wait_ = 0.0;
    round_cls_ = 0;
  }
  /// Queue the not-yet-valid sub-block ranges of `padded` for fetch and
  /// claim them valid (Fig. 4 lines 18-21); gaps ride the round's batch so
  /// same-home gaps can share one message.
  void queue_demand(mem_block& mb, common::interval padded) {
    queue_demand(mb, padded, mb.home, /*from_replica=*/false);
  }
  /// Same, fetching from `src` instead of the block's home — the placement
  /// engine's read_source (the owner, or the reader-node replica). Replica
  /// reads are issued eagerly at queue time: a concurrent writer can
  /// invalidate the replica (and its pool slot be reused) the moment this
  /// fiber yields, so the bytes must move while the copy is still live; only
  /// the modelled completion rides the round wait.
  void queue_demand(mem_block& mb, common::interval padded, const home_loc& src,
                    bool from_replica);
  /// Issue the round's gaps; returns the latest modelled completion (0 if
  /// none). Also the abort path: a failed checkout must still issue gaps
  /// already claimed valid before rolling back.
  double issue_round() { return batch_.issue(/*is_put=*/false); }
  /// Stall until the round's data is usable and charge fetch_stall_s.
  void wait_round(double round_done);

  // ---- prefetcher hooks (no-ops unless enabled) ----
  /// Account a checkout touching `span` of `mb` against the block's
  /// prefetched bytes and in-flight segments: useful/wasted byte counting,
  /// retirement (consume/evict terminators), and recording the latest
  /// in-flight completion this round must wait for.
  void consume_prefetch(mem_block& mb, common::interval span, bool is_write);
  /// Feed the stream detector with a read visit covering global sub-blocks
  /// [a, b]; confirmed/advanced streams top up their prefetch window.
  /// Streams are only created on demand misses.
  void feed_stream(std::int64_t a, std::int64_t b, bool was_miss);
  /// Drop a block's prefetcher state on eviction/invalidation: unread bytes
  /// count as wasted, unretired segments emit "prefetch evict" terminators.
  void drop_prefetched(mem_block& mb);
  /// Sync points cut the tracked working set off; restart detection.
  void reset_streams() {
    for (stream& s : streams_) s = {};
  }

private:
  /// One detected access stream (sequential run of sub-blocks, forward or
  /// backward). `next` and `issued_until` are *global* sub-block indices
  /// (view offset / sub-block size), so streams run across block
  /// boundaries and straight through home-block spans.
  struct stream {
    bool live = false;
    int dir = 0;                    ///< 0 = unconfirmed, +1 fwd, -1 bwd
    std::int64_t next_fwd = 0;      ///< unconfirmed: expected next if forward
    std::int64_t next_bwd = 0;      ///< unconfirmed: expected next if backward
    std::int64_t next = 0;          ///< confirmed: next expected consume
    std::int64_t issued_until = 0;  ///< next sub-block to issue (fwd: >= next)
  };

  /// Modelled in-flight prefetch budget entry (drained by virtual time).
  struct inflight_entry {
    double ready_at = 0;
    std::size_t bytes = 0;
  };

  /// Issue prefetches for `s` up to `next +/- depth`, stopping early on
  /// budget or slot pressure (retried at the next advance) and killing the
  /// stream when it runs off the heap or a live allocation.
  void issue_stream(stream& s);
  enum class pf_result { ok, stall, dead };
  pf_result prefetch_sub_block(std::int64_t sub);

  sim::engine& eng_;
  rma::channel& ch_;
  block_directory& dir_;
  const block_locator& heap_;
  cache_stats& st_;
  const int rank_;
  const std::size_t block_size_;
  const std::size_t sub_block_size_;
  const bool prefetch_on_;
  const std::size_t prefetch_depth_;
  const std::size_t prefetch_max_inflight_;

  xfer_batch batch_;  ///< this round's demand gaps

  static constexpr std::size_t kNStreams = 4;
  stream streams_[kNStreams];
  std::size_t stream_rr_ = 0;        ///< round-robin stream replacement
  std::vector<inflight_entry> inflight_;  ///< FIFO, drained by virtual time
  std::size_t inflight_head_ = 0;
  std::size_t inflight_bytes_ = 0;
  double pf_wait_ = 0;               ///< per-round: latest in-flight completion hit
  double extra_wait_ = 0;            ///< per-round: latest eager (replica) completion
  int round_cls_ = 0;                ///< per-round: max distance class queued
  placement_engine* pl_ = nullptr;   ///< dynamic placement (null when off)

  common::tracer* trace_ = nullptr;
};

}  // namespace ityr::pgas
