#include "itoyori/pgas/writeback_engine.hpp"

#include <algorithm>

#include "itoyori/pgas/placement.hpp"

namespace ityr::pgas {

writeback_engine::writeback_engine(sim::engine& eng, rma::channel& ch, block_directory& dir,
                                   rma::window& ctrl_win, cache_stats& st, const config& cfg)
    : eng_(eng),
      ch_(ch),
      dir_(dir),
      ctrl_win_(ctrl_win),
      st_(st),
      rank_(cfg.rank),
      async_(cfg.async),
      wb_max_inflight_(cfg.wb_max_inflight),
      batch_(ch, cfg.coalesce, st.coalesced_messages),
      pl_(cfg.placement) {}

std::uint64_t* writeback_engine::epoch_words() const {
  return reinterpret_cast<std::uint64_t*>(ctrl_win_.addr(rank_, 0, 2 * sizeof(std::uint64_t)));
}

void writeback_engine::mark_dirty(mem_block& mb, common::interval iv) {
  // Stale replicas must die no later than the write becomes fetchable; being
  // earlier (at dirty marking instead of write-back issue) is always legal —
  // a reader just falls back to the owner.
  if (pl_ != nullptr) pl_->note_write_intent(mb.mb_id);
  mb.dirty.add(iv);
  if (!mb.in_dirty_list) {
    mb.in_dirty_list = true;
    dirty_blocks_.push_back(&mb);
  }
}

void writeback_engine::collect_dirty() {
  int cls = 0;
  for (mem_block* mb : dirty_blocks_) {
    if (pl_ != nullptr) {
      // Defensive forward fix-up: a dirty block's home cannot migrate (the
      // placement pass skips dirty blocks), so this should never fire — but
      // re-resolving here makes the no-lost-update invariant locally
      // checkable and keeps any future relaxation of the skip rule safe.
      home_loc cur;
      if (pl_->current_owner(mb->mb_id, cur) && cur.gen != mb->home.gen) {
        st_.forward_retries++;
        mb->home = cur;
      }
      pl_->note_writeback(mb->mb_id, rank_, mb->dirty.size());
    }
    for (const auto& iv : mb->dirty.to_vector()) {
      batch_.add(mb->home.win, mb->home.rank, mb->home.pool_off + iv.begin,
                 dir_.slot_ptr(*mb) + iv.begin, iv.size());
      st_.written_back_bytes += iv.size();
    }
    // Stall attribution: the round waits on its farthest home.
    const int c = std::min(eng_.topo().class_of(rank_, mb->home.rank),
                           cache_stats::max_stall_classes - 1);
    if (c > cls) cls = c;
    mb->dirty.clear();
    mb->in_dirty_list = false;
  }
  dirty_blocks_.clear();
  wb_cls_ = cls;
}

void writeback_engine::writeback_all() {
  if (dirty_blocks_.empty()) {
    st_.releases_noop++;
    return;
  }
  if (async_) {
    async_writeback_round(/*opportunistic=*/false);
    return;
  }
  if (trace_ != nullptr) trace_->span_begin(rank_, eng_.now_precise(), "Write Back");
  collect_dirty();
  batch_.issue(/*is_put=*/true);
  const double stall_from = eng_.now();
  ch_.flush();
  const double stalled = eng_.now() - stall_from;
  st_.release_stall_s += stalled;
  st_.release_stall_class_s[wb_cls_] += stalled;
  // Completing a write-back round advances this process's epoch, releasing
  // any acquirer waiting on a handler from before this round (Fig. 6).
  epoch_words()[0]++;
  st_.releases++;
  if (trace_ != nullptr) trace_->span_end(rank_, eng_.now_precise(), "Write Back");
}

void writeback_engine::drain_wb_inflight() {
  const double now = eng_.now();
  while (wb_inflight_head_ < wb_inflight_.size() &&
         wb_inflight_[wb_inflight_head_].ready_at <= now) {
    wb_inflight_bytes_ -= wb_inflight_[wb_inflight_head_].bytes;
    wb_inflight_head_++;
  }
  if (wb_inflight_head_ == wb_inflight_.size()) {
    wb_inflight_.clear();
    wb_inflight_head_ = 0;
  }
}

void writeback_engine::record_epoch_ready(std::uint64_t epoch, double ready) {
  epoch_ready_last_ = std::max(epoch_ready_last_, ready);
  epoch_ready_[epoch % kEpochRing] = epoch_ready_last_;
}

double writeback_engine::release_ready_at(std::uint64_t epoch) const {
  if (epoch == 0 || !async_) return 0.0;
  const std::uint64_t cur = epoch_words()[0];
  // Epochs beyond the current word or evicted from the ring fall back to the
  // latest recorded completion: always conservative (waits no less).
  if (epoch > cur || cur - epoch >= kEpochRing) return epoch_ready_last_;
  return epoch_ready_[epoch % kEpochRing];
}

bool writeback_engine::async_writeback_round(bool opportunistic) {
  ITYR_CHECK(!dirty_blocks_.empty());
  std::size_t round_bytes = 0;
  for (mem_block* mb : dirty_blocks_) round_bytes += mb->dirty.size();

  drain_wb_inflight();
  if (wb_inflight_bytes_ + round_bytes > wb_max_inflight_) {
    // Over the in-flight budget. An opportunistic (idle-time) round just
    // bails and retries at the next backoff; a real fence stalls until
    // enough older rounds complete — bounded, never dropped.
    if (opportunistic) return false;
    const double stall_from = eng_.now();
    while (wb_inflight_bytes_ + round_bytes > wb_max_inflight_ &&
           wb_inflight_head_ < wb_inflight_.size()) {
      ch_.wait_until(wb_inflight_[wb_inflight_head_].ready_at);
      drain_wb_inflight();
    }
    // The budget stall waits on earlier rounds; attribute it to the class of
    // the most recently collected one (conservative, sums stay consistent).
    const double stalled = eng_.now() - stall_from;
    st_.release_stall_s += stalled;
    st_.release_stall_class_s[wb_cls_] += stalled;
  }

  const double t_issue = eng_.now_precise();
  if (trace_ != nullptr) trace_->span_begin(rank_, t_issue, "Write Back (async)");
  collect_dirty();
  const double done = std::max(batch_.issue(/*is_put=*/true), eng_.now());

  // The epoch word advances at issue; visibility is what the ready_at ring
  // models. Acquirers that observe the new epoch wait until `done` via a
  // targeted wait instead of this releaser flushing.
  const std::uint64_t epoch = epoch_words()[0] + 1;
  record_epoch_ready(epoch, done);
  vis_watermark_ = std::max(vis_watermark_, done);
  wb_inflight_.push_back({done, round_bytes});
  wb_inflight_bytes_ += round_bytes;
  st_.epochs_in_flight =
      std::max<std::uint64_t>(st_.epochs_in_flight, wb_inflight_.size() - wb_inflight_head_);
  epoch_words()[0] = epoch;
  st_.releases++;
  st_.async_wb_rounds++;
  if (trace_ != nullptr) {
    trace_->span_end(rank_, eng_.now_precise(), "Write Back (async)");
    // One flow arrow per round: issue -> modelled completion, both on this
    // rank's track (tools/trace_lint pairs them with the span count).
    trace_->flow(rank_, t_issue, rank_, std::max(done, t_issue), "writeback");
  }
  return true;
}

void writeback_engine::idle_flush() {
  if (!async_) return;
  drain_wb_inflight();
  if (dirty_blocks_.empty()) return;
  std::size_t round_bytes = 0;
  for (mem_block* mb : dirty_blocks_) round_bytes += mb->dirty.size();
  if (async_writeback_round(/*opportunistic=*/true)) {
    st_.idle_flush_bytes += round_bytes;
  }
}

void writeback_engine::wait_visibility(double w) {
  if (!async_ || w <= 0) return;
  ch_.wait_until(w);
  vis_watermark_ = std::max(vis_watermark_, w);
}

release_handler writeback_engine::release_lazy() {
  if (!has_dirty()) return {};  // Unneeded
  return {rank_, epoch_words()[0] + 1};
}

void writeback_engine::wait_handler(release_handler h) {
  if (!h.needed()) return;
  if (h.rank == rank_) {
    // Degenerate case: the handler refers to our own cache; a local
    // write-back round satisfies it directly.
    if (epoch_words()[0] < h.epoch) writeback_all();
    if (async_) {
      // The round was issued, not flushed: wait out its modelled
      // completion before trusting re-fetched home data.
      const double ready = release_ready_at(h.epoch);
      wait_visibility(ready);
      if (trace_ != nullptr && ready > 0) {
        trace_->flow(rank_, ready, rank_, eng_.now_precise(), "wb acquire");
      }
    }
  } else {
    ITYR_CHECK(!has_dirty());
    bool first = true;
    while (ch_.get_value(ctrl_win_, h.rank, 0) < h.epoch) {
      if (first) {
        // Ask the releaser (once) to perform its next write-back round.
        // Multiple acquirers race benignly: only the max epoch matters,
        // hence the remote atomic max (Fig. 6 lines 51-53).
        ch_.atomic_max(ctrl_win_, h.rank, sizeof(std::uint64_t), h.epoch);
        first = false;
        st_.lazy_release_waits++;
      }
      eng_.advance(eng_.opts().poll_interval);
    }
    if (async_ && peer_ready_) {
      // The releaser advanced its epoch at issue time; its round's data is
      // only visible from ready_at on. Wait there (targeted MPI_Wait
      // analog), not a full flush — unrelated in-flight traffic keeps
      // flying. The flow arrow starts at the releaser's round completion,
      // so trace_lint's f>=s check pins "no acquire lands early" down.
      const double ready = peer_ready_(h.rank, h.epoch);
      wait_visibility(ready);
      if (trace_ != nullptr && ready > 0) {
        trace_->flow(h.rank, ready, rank_, eng_.now_precise(), "wb acquire");
      }
    }
  }
}

void writeback_engine::poll() {
  std::uint64_t* ew = epoch_words();
  if (ew[0] < ew[1]) {
    // A thief requested a write-back of the data it stole a continuation
    // for (DoReleaseIfRequested, Fig. 6 lines 55-58).
    if (has_dirty()) {
      writeback_all();  // bumps the epoch (at issue time in async mode)
    } else {
      // The dirty data the handler covered was already flushed by an
      // eviction or another fence; still advance the epoch so the waiting
      // acquirer makes progress.
      ew[0]++;
      st_.releases++;
      if (async_) {
        // No data rides this advance, but earlier rounds might still be in
        // flight; the running max keeps the ring monotone and conservative.
        record_epoch_ready(ew[0], eng_.now());
      }
    }
  }
}

}  // namespace ityr::pgas
