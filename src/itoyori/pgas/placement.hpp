#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "itoyori/common/options.hpp"
#include "itoyori/pgas/cache_stats.hpp"
#include "itoyori/pgas/global_heap.hpp"
#include "itoyori/pgas/home_loc.hpp"
#include "itoyori/rma/window.hpp"
#include "itoyori/sim/engine.hpp"
#include "itoyori/vm/physical_pool.hpp"

namespace ityr::pgas {

class cache_system;

/// Cluster-global placement counters. The engine models a centralized
/// directory service (the DES is one process), so these are global like the
/// fiber-pool counters and exported at rank 0 in the metrics registry.
struct placement_stats {
  std::uint64_t passes = 0;                ///< placement passes executed
  std::uint64_t migrations = 0;            ///< home moves committed
  std::uint64_t migration_bytes = 0;       ///< block bytes copied by migration
  std::uint64_t replicas = 0;              ///< per-node replica copies created
  std::uint64_t replica_bytes = 0;         ///< block bytes copied into replicas
  std::uint64_t replica_invalidations = 0; ///< replica copies dropped by writes
  std::uint64_t migrations_skipped = 0;    ///< candidates pinned/dirty at pass time
  std::uint64_t pool_full_skips = 0;       ///< candidates dropped for pool space
  std::uint64_t purged_blocks = 0;         ///< directory records dropped by migration
};

/// One entry of the pgas.hot_blocks export (ITYR_HOT_BLOCKS_TOPN): the
/// cumulative traffic profile of a home block, the observability handle for
/// tuning migration/replication thresholds.
struct hot_block {
  std::uint64_t mb_id = 0;
  int owner = -1;                 ///< current owner rank (-1 = allocation freed)
  std::uint64_t reader_mask = 0;  ///< reader ranks (clamped to the first 64)
  std::uint64_t fetch_bytes = 0;
  std::uint64_t writeback_bytes = 0;
};

/// Online data-placement engine (ITYR_MIGRATION / ITYR_REPLICATION): the
/// dynamic counterpart of the paper's fixed allocation-time homes
/// (Section 4.2), addressing the Section 8 locality discussion.
///
/// Per-home-block access counters (reader bitmask + fetch/write-back byte
/// counts) accumulate in a per-pass traffic window; a periodic placement
/// pass then
///  (a) migrates a block's home into a per-rank migration pool on the rank
///      producing most of its miss traffic (Misra-Gries k=1 dominance over
///      the window), and
///  (b) replicates read-mostly blocks into per-node read-only pools served
///      on the cache fetch path; any write intent or write-back invalidates
///      the copies.
///
/// Ownership changes are a `home_loc` override applied inside
/// global_heap::locate_block plus a forwarding generation: a cached location
/// whose gen is stale is a forwarding hint, retried through the heap
/// (pgas.forward_retries) while prefetch streams drop segments tied to the
/// old home. Fetch/write-back engines route by the resolved home, so
/// coalescing and the epoch-pipelined release protocol are untouched.
///
/// The engine is centralized (one instance for the simulated cluster),
/// mirroring a directory service; pass work and block copies are charged to
/// the virtual clock of whichever rank's poll crossed the deadline.
class placement_engine final : public home_override_source {
public:
  struct config {
    bool migration = false;
    bool replication = false;
    double interval = 1.0e-3;            ///< virtual seconds between passes
    std::uint64_t migration_min_bytes = 0;
    double migration_share = 0.5;        ///< dominance threshold in (0, 1]
    std::size_t migration_pool_blocks = 0;   ///< per rank
    std::uint64_t replication_min_bytes = 0;
    int replication_min_readers = 2;     ///< distinct reader nodes
    std::size_t replication_pool_blocks = 0;  ///< per node
    std::size_t hot_blocks_topn = 0;
  };

  placement_engine(sim::engine& eng, rma::context& rma, global_heap& heap, const config& cfg);

  /// Wire the per-rank cache systems (pgas_space calls this once the caches
  /// exist; the engine needs them for busy checks and directory purges).
  void set_caches(std::vector<cache_system*> caches) { caches_ = std::move(caches); }

  bool migration_enabled() const { return mig_; }
  bool replication_enabled() const { return repl_; }
  std::size_t hot_blocks_topn() const { return topn_; }

  // ---- home_override_source (rides every global_heap::locate_block) ----
  void apply_override(std::uint64_t mb_id, home_loc& h) const override;

  /// Current owner of `mb_id` (override applied); false iff the block no
  /// longer belongs to a live allocation. The write-back path re-resolves
  /// through this so dirty data issued after a migration lands on the new
  /// home.
  bool current_owner(std::uint64_t mb_id, home_loc& out) const {
    return heap_.try_locate_block(mb_id, out);
  }

  // ---- hot-path notes (called by the cache layers; all O(1)) ----
  /// A demand fetch of `bytes` by `reader` was served from `src` (the owner,
  /// or a node replica). Feeds the traffic window, the cumulative hot-block
  /// profile, and per-class bytes-saved accounting against the
  /// allocation-time base home.
  void note_fetch(std::uint64_t mb_id, int reader, std::uint64_t bytes, const home_loc& src,
                  const home_loc& owner);
  /// `writer` issued a write-back of `bytes` to the block: traffic-window
  /// accounting plus replica invalidation (stale copies must die no later
  /// than the bytes become fetchable).
  void note_writeback(std::uint64_t mb_id, int writer, std::uint64_t bytes);
  /// A write intent (write/read_write checkout, PUT) targets the block:
  /// invalidate its replicas before any fetch-exclusive proceeds.
  void note_write_intent(std::uint64_t mb_id) { invalidate_replicas(mb_id); }
  /// `reader` served `bytes` straight from a migrated-in home block on its
  /// own node (the home path): count them as saved off the base home's
  /// distance class.
  void note_local_home_visit(std::uint64_t mb_id, int reader, std::uint64_t bytes,
                             const home_loc& home);

  /// Where a read-mode miss of `reader` should fetch from: the reader-node
  /// replica if one exists (class-0 traffic), else `owner`. Sets
  /// `from_replica` accordingly.
  home_loc read_source(std::uint64_t mb_id, const home_loc& owner, int reader,
                       bool& from_replica) const;
  /// Fast gate for the per-miss read_source lookup.
  bool has_replicas() const { return !replicas_.empty(); }

  // ---- the periodic placement pass ----
  /// Cheap deadline check; runs a pass when the interval elapsed. Called
  /// from pgas_space::poll() (every scheduler poll) and from the worker
  /// loop's idle branch.
  void poll() {
    if ((mig_ || repl_) && !in_pass_ && eng_.now() >= next_pass_) run_pass();
  }
  void run_pass();

  /// Directly migrate one block to `target_rank` (test/tooling surface,
  /// same safety rules as the pass: refuses blocks that are pinned or dirty
  /// anywhere, and pool-full targets). True iff the home moved.
  bool request_migration(std::uint64_t mb_id, int target_rank);

  // ---- introspection / export ----
  const placement_stats& stats() const { return st_; }
  /// Bytes placement served closer than the allocation-time home would
  /// have, per reader rank and per distance class the base home sat at.
  std::uint64_t bytes_saved_of(int rank, int cls) const {
    return saved_[static_cast<std::size_t>(rank)][static_cast<std::size_t>(cls)];
  }
  /// The `n` hottest blocks by cumulative fetch bytes (requires
  /// ITYR_HOT_BLOCKS_TOPN > 0; empty otherwise). Deterministic order:
  /// fetch bytes desc, block id asc.
  std::vector<hot_block> hottest(std::size_t n) const;
  /// Current migrated-home overrides (tests).
  std::size_t n_overrides() const { return overrides_.size(); }
  /// Live replica copies across all nodes (tests).
  std::size_t n_replica_copies() const;

private:
  /// Per-pass traffic window of one block. The dominant-consumer candidate
  /// is Misra-Gries with k=1: one counter per block, provably >= the true
  /// majority weight margin.
  struct block_traffic {
    std::uint64_t fetch_bytes = 0;
    std::uint64_t wb_bytes = 0;
    std::uint64_t node_mask = 0;   ///< reader nodes (clamped to the first 64)
    int cand_rank = -1;            ///< heavy-hitter candidate reader
    std::int64_t cand_margin = 0;  ///< its surplus byte weight over all others
  };

  /// Cumulative per-block profile for the hot-block export (topn > 0 only).
  struct cum_traffic {
    std::uint64_t fetch_bytes = 0;
    std::uint64_t wb_bytes = 0;
    std::uint64_t reader_mask = 0;  ///< reader ranks (clamped to the first 64)
  };

  /// One committed home override: the block's bytes live in `rank`'s
  /// migration pool at slot `slot`.
  struct override_rec {
    int rank = -1;
    std::uint32_t slot = 0;
  };

  /// Per-node replica slots of one block (-1 = no copy on that node).
  struct replica_rec {
    std::vector<std::int32_t> node_slot;
  };

  static void bump_candidate(block_traffic& t, int rank, std::uint64_t bytes);
  bool block_busy_anywhere(std::uint64_t mb_id) const;
  /// Drop every rank's directory record of the block (counts purged_blocks).
  void purge_everywhere(std::uint64_t mb_id);
  void invalidate_replicas(std::uint64_t mb_id);
  /// Commit a home move to `target` (caller already checked busy/pool).
  /// `cur` is the block's current resolved location.
  void migrate_block(std::uint64_t mb_id, int target, const home_loc& cur);
  void replicate_block(std::uint64_t mb_id, const home_loc& cur, std::uint64_t node_mask);
  /// Drop overrides/replicas of blocks whose allocation died (a freed-then-
  /// reused gaddr range must not inherit stale placement).
  void gc_dead_blocks();
  void bump_gen(std::uint64_t mb_id);
  int clamp_class(int reader, int target) const;

  sim::engine& eng_;
  rma::context& rma_;
  global_heap& heap_;
  std::vector<cache_system*> caches_;

  const bool mig_;
  const bool repl_;
  const double interval_;
  const std::uint64_t mig_min_bytes_;
  const double mig_share_;
  const std::uint64_t repl_min_bytes_;
  const int repl_min_readers_;
  const std::size_t topn_;
  const std::size_t block_size_;
  const int n_nodes_;
  const int ranks_per_node_;

  // Migrated-home pools: one per rank, registered as one window whose
  // region r is rank r's pool (so fetch/write-back address migrated blocks
  // exactly like allocation-time homes).
  std::vector<std::unique_ptr<vm::physical_pool>> mig_pools_;
  rma::window* mig_win_ = nullptr;
  std::vector<std::vector<std::uint32_t>> mig_free_;  ///< per-rank free slots

  // Replica pools: one per *node*; the window's region for rank r aliases
  // r's node pool, so a reader fetching from its node replica targets
  // itself — intra-node (class 0) traffic by construction.
  std::vector<std::unique_ptr<vm::physical_pool>> repl_pools_;
  rma::window* repl_win_ = nullptr;
  std::vector<std::vector<std::uint32_t>> repl_free_;  ///< per-node free slots

  std::unordered_map<std::uint64_t, override_rec> overrides_;
  std::unordered_map<std::uint64_t, std::uint32_t> gen_;  ///< forwarding generations
  std::unordered_map<std::uint64_t, replica_rec> replicas_;
  std::unordered_map<std::uint64_t, block_traffic> window_;
  std::unordered_map<std::uint64_t, cum_traffic> cum_;

  /// Per-rank, per-class bytes served closer than the base home.
  std::vector<std::array<std::uint64_t, cache_stats::max_stall_classes>> saved_;

  double next_pass_ = 0;
  bool in_pass_ = false;   ///< reentrancy guard: the end-of-pass wait yields
  double pass_done_ = 0;   ///< latest modelled completion of the pass's copies
  placement_stats st_;

  std::vector<std::byte> scratch_;          ///< one block, reused per copy
  std::vector<std::uint64_t> pass_ids_;     ///< reused per pass (sorted keys)
};

}  // namespace ityr::pgas
