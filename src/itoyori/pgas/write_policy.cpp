#include "itoyori/pgas/write_policy.hpp"

namespace ityr::pgas {

bool write_through_policy::on_dirty(mem_block& mb, common::interval iv) {
  ch_.put_nb(*mb.home.win, mb.home.rank, mb.home.pool_off + iv.begin,
             dir_.slot_ptr(mb) + iv.begin, iv.size());
  st_.write_through_bytes += iv.size();
  return true;
}

std::unique_ptr<write_policy> make_write_policy(common::cache_policy p, rma::channel& ch,
                                                block_directory& dir, writeback_engine& wb,
                                                cache_stats& st) {
  if (p == common::cache_policy::write_through) {
    return std::make_unique<write_through_policy>(ch, dir, st);
  }
  return std::make_unique<write_back_policy>(wb);
}

}  // namespace ityr::pgas
