#include "itoyori/pgas/write_policy.hpp"

#include "itoyori/pgas/placement.hpp"

namespace ityr::pgas {

bool write_through_policy::on_dirty(mem_block& mb, common::interval iv) {
  // The put lands on mb.home directly: safe under migration because a pinned
  // block's home never moves and the write-through happens under the same
  // checkout that pinned it. Replicas of the block are stale the moment the
  // put is issued.
  if (pl_ != nullptr) pl_->note_writeback(mb.mb_id, rank_, iv.size());
  ch_.put_nb(*mb.home.win, mb.home.rank, mb.home.pool_off + iv.begin,
             dir_.slot_ptr(mb) + iv.begin, iv.size());
  st_.write_through_bytes += iv.size();
  return true;
}

std::unique_ptr<write_policy> make_write_policy(common::cache_policy p, rma::channel& ch,
                                                block_directory& dir, writeback_engine& wb,
                                                cache_stats& st, placement_engine* pl, int rank) {
  if (p == common::cache_policy::write_through) {
    return std::make_unique<write_through_policy>(ch, dir, st, pl, rank);
  }
  return std::make_unique<write_back_policy>(wb);
}

}  // namespace ityr::pgas
