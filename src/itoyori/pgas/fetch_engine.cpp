#include "itoyori/pgas/fetch_engine.hpp"

#include <algorithm>

#include "itoyori/pgas/placement.hpp"

namespace ityr::pgas {

fetch_engine::fetch_engine(sim::engine& eng, rma::channel& ch, block_directory& dir,
                           const block_locator& heap, cache_stats& st, const config& cfg)
    : eng_(eng),
      ch_(ch),
      dir_(dir),
      heap_(heap),
      st_(st),
      rank_(cfg.rank),
      block_size_(cfg.block_size),
      sub_block_size_(cfg.sub_block_size),
      prefetch_on_(cfg.prefetch),
      prefetch_depth_(cfg.prefetch_depth),
      prefetch_max_inflight_(cfg.prefetch_max_inflight),
      batch_(ch, cfg.coalesce, st.coalesced_messages),
      pl_(cfg.placement) {}

void fetch_engine::queue_demand(mem_block& mb, common::interval padded, const home_loc& src,
                                bool from_replica) {
  // Fetch at sub-block granularity for spatial locality, skipping
  // already-valid (possibly dirty!) byte ranges (Fig. 4 lines 18-21).
  bool queued = false;
  std::uint64_t bytes = 0;
  for (const auto& miss : mb.valid.missing(padded)) {
    if (from_replica) {
      // Eager issue: the rma layer copies at issue time, so the data is
      // taken while the replica is provably live (no yield since the
      // read_source lookup); the completion joins the round wait below.
      const double done = ch_.get_nb(*src.win, src.rank, src.pool_off + miss.begin,
                                     dir_.slot_ptr(mb) + miss.begin, miss.size());
      extra_wait_ = std::max(extra_wait_, done);
      st_.replica_fetch_bytes += miss.size();
    } else {
      batch_.add(src.win, src.rank, src.pool_off + miss.begin, dir_.slot_ptr(mb) + miss.begin,
                 miss.size());
    }
    st_.fetched_bytes += miss.size();
    bytes += miss.size();
    mb.valid.add(miss);
    queued = true;
  }
  if (queued) {
    // The round's stall is attributed to the farthest source it waits on (a
    // replica read is class 0: the reader's own node hosts the copy).
    const int cls = std::min(eng_.topo().class_of(rank_, src.rank),
                             cache_stats::max_stall_classes - 1);
    if (cls > round_cls_) round_cls_ = cls;
  }
  mb.update_fully_valid(block_size_);
  if (pl_ != nullptr && bytes > 0) pl_->note_fetch(mb.mb_id, rank_, bytes, src, mb.home);
}

void fetch_engine::wait_round(double round_done) {
  const double stall_from = eng_.now();
  if (prefetch_on_) {
    // Wait only for this round's demand fetches plus any in-flight prefetch
    // the round consumed; untouched prefetches stay pending instead of
    // serializing the checkout behind them.
    ch_.wait_until(std::max({round_done, pf_wait_, extra_wait_}));
    if (pf_wait_ > round_done && pf_wait_ > stall_from) st_.prefetch_late++;
  } else {
    ch_.flush();
  }
  const double stalled = eng_.now() - stall_from;
  st_.fetch_stall_s += stalled;
  st_.fetch_stall_class_s[round_cls_] += stalled;
}

// ---------------------------------------------------------------------------
// Prefetcher (ITYR_PREFETCH): stream detection + nonblocking fetch pipeline
// ---------------------------------------------------------------------------

void fetch_engine::consume_prefetch(mem_block& mb, common::interval span, bool is_write) {
  if (mb.prefetched.overlaps(span)) {
    std::uint64_t bytes = 0;
    for (const auto& iv : mb.prefetched.overlapping(span)) bytes += iv.size();
    if (is_write) {
      st_.prefetch_wasted_bytes += bytes;
    } else {
      st_.prefetch_useful_bytes += bytes;
    }
    mb.prefetched.subtract(span);
  }
  if (mb.pf_segs.empty()) return;
  const double now = eng_.now_precise();
  for (auto it = mb.pf_segs.begin(); it != mb.pf_segs.end();) {
    if (intersect(it->iv, span).empty()) {
      ++it;
      continue;
    }
    // The consumer (or overwriter) must wait out this segment's modelled
    // completion; the checkout tail waits once for the round's maximum.
    pf_wait_ = std::max(pf_wait_, it->ready_at);
    if (is_write && !(span.begin <= it->iv.begin && it->iv.end <= span.end)) {
      // Partial overwrite: the rest of the segment may still be read later;
      // keep it (its terminator comes from that read, or from eviction).
      ++it;
      continue;
    }
    if (trace_ != nullptr) {
      trace_->instant(rank_, now, is_write ? "prefetch evict" : "prefetch consume");
    }
    it = mb.pf_segs.erase(it);
  }
}

void fetch_engine::drop_prefetched(mem_block& mb) {
  if (!mb.prefetched.empty()) {
    st_.prefetch_wasted_bytes += mb.prefetched.size();
    mb.prefetched.clear();
  }
  if (!mb.pf_segs.empty()) {
    if (trace_ != nullptr) {
      const double now = eng_.now_precise();
      for (std::size_t i = 0; i < mb.pf_segs.size(); i++) {
        trace_->instant(rank_, now, "prefetch evict");
      }
    }
    mb.pf_segs.clear();
  }
}

void fetch_engine::feed_stream(std::int64_t a, std::int64_t b, bool was_miss) {
  const auto depth = static_cast<std::int64_t>(prefetch_depth_);
  // Confirmed streams first. Matching is tolerant up to `depth` sub-blocks
  // ahead of the expected position: once prefetched blocks become fully
  // valid the front table serves them without reaching this detector, so
  // the next slow-path visit can land anywhere inside the issued window.
  for (stream& s : streams_) {
    if (!s.live || s.dir == 0) continue;
    if (s.dir > 0 && a >= s.next && a <= s.next + depth) {
      s.next = std::max(s.next, b + 1);
      if (s.issued_until < s.next) s.issued_until = s.next;
      // Top up with hysteresis: refill once the lead shrinks to half.
      if (s.issued_until - s.next < (depth + 1) / 2) issue_stream(s);
      return;
    }
    if (s.dir < 0 && b <= s.next && b >= s.next - depth) {
      s.next = std::min(s.next, a - 1);
      if (s.issued_until > s.next) s.issued_until = s.next;
      if (s.next - s.issued_until < (depth + 1) / 2) issue_stream(s);
      return;
    }
  }
  // Unconfirmed streams: the second sequential touch confirms a direction.
  for (stream& s : streams_) {
    if (!s.live || s.dir != 0) continue;
    if (a >= s.next_fwd && a <= s.next_fwd + depth) {
      s.dir = +1;
      s.next = b + 1;
      s.issued_until = s.next;
      issue_stream(s);
      return;
    }
    if (b <= s.next_bwd && b >= s.next_bwd - depth) {
      s.dir = -1;
      s.next = a - 1;
      s.issued_until = s.next;
      issue_stream(s);
      return;
    }
  }
  // No stream matched: a demand miss seeds a new (unconfirmed) candidate.
  if (!was_miss) return;
  stream& s = streams_[stream_rr_++ % kNStreams];
  s = {};
  s.live = true;
  s.next_fwd = b + 1;
  s.next_bwd = a - 1;
}

void fetch_engine::issue_stream(stream& s) {
  const auto depth = static_cast<std::int64_t>(prefetch_depth_);
  if (s.dir > 0) {
    const std::int64_t target = s.next + depth;
    while (s.issued_until < target) {
      const pf_result r = prefetch_sub_block(s.issued_until);
      if (r == pf_result::dead) {
        s = {};
        return;
      }
      if (r == pf_result::stall) return;  // retried at the next advance
      s.issued_until++;
    }
  } else {
    const std::int64_t target = s.next - depth;
    while (s.issued_until > target) {
      const pf_result r = prefetch_sub_block(s.issued_until);
      if (r == pf_result::dead) {
        s = {};
        return;
      }
      if (r == pf_result::stall) return;
      s.issued_until--;
    }
  }
}

fetch_engine::pf_result fetch_engine::prefetch_sub_block(std::int64_t sub) {
  if (sub < 0) return pf_result::dead;
  const std::uint64_t voff = static_cast<std::uint64_t>(sub) * sub_block_size_;
  if (voff >= heap_.total_size()) return pf_result::dead;
  const std::uint64_t mb_id = voff / block_size_;
  home_loc home;
  // Stop at unallocated territory: running past the end of an allocation is
  // how most streams die.
  if (!heap_.try_locate_block(mb_id, home)) return pf_result::dead;
  // Home data is already authoritative; the stream just passes through.
  if (home.rank == rank_ || eng_.same_node(home.rank, rank_)) return pf_result::ok;

  const double now = eng_.now();
  // Drain the modelled in-flight FIFO: transfers whose completion time has
  // passed no longer occupy the budget.
  while (inflight_head_ < inflight_.size() && inflight_[inflight_head_].ready_at <= now) {
    inflight_bytes_ -= inflight_[inflight_head_].bytes;
    inflight_head_++;
  }
  if (inflight_head_ == inflight_.size()) {
    inflight_.clear();
    inflight_head_ = 0;
  }

  const std::uint64_t block_base = mb_id * block_size_;
  const common::interval sub_iv{voff - block_base, voff - block_base + sub_block_size_};

  // No LRU touch on an existing block: speculation must not look like use.
  mem_block* mb = dir_.find_cache_block(mb_id);
  if (mb == nullptr) {
    mb = dir_.alloc_cache_block_speculative(mb_id, home);
    if (mb == nullptr) return pf_result::stall;
  }

  if (mb->valid.contains(sub_iv)) return pf_result::ok;
  for (const auto& miss : mb->valid.missing(sub_iv)) {
    if (inflight_bytes_ + miss.size() > prefetch_max_inflight_) return pf_result::stall;
    const double done = ch_.get_nb(*home.win, home.rank, home.pool_off + miss.begin,
                                   dir_.slot_ptr(*mb) + miss.begin, miss.size());
    mb->valid.add(miss);
    mb->prefetched.add(miss);
    mb->pf_segs.push_back({miss, done});
    inflight_.push_back({done, miss.size()});
    inflight_bytes_ += miss.size();
    st_.prefetch_issued++;
    st_.prefetch_issued_bytes += miss.size();
    if (trace_ != nullptr) trace_->flow(rank_, now, rank_, done, "prefetch");
  }
  mb->update_fully_valid(block_size_);
  return pf_result::ok;
}

}  // namespace ityr::pgas
