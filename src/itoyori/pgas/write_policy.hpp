#pragma once

#include <memory>

#include "itoyori/common/interval_set.hpp"
#include "itoyori/common/options.hpp"
#include "itoyori/pgas/block_directory.hpp"
#include "itoyori/pgas/cache_stats.hpp"
#include "itoyori/pgas/mem_block.hpp"
#include "itoyori/pgas/writeback_engine.hpp"
#include "itoyori/rma/channel.hpp"

namespace ityr::pgas {

class placement_engine;

/// Dirty-byte handling seam of the checkin paths (paper Section 4.4): what
/// happens to a written range when its checkout ends. Expressed as an object
/// instead of per-call-site policy branches so the facade and the front
/// table share one decision point.
class write_policy {
public:
  virtual ~write_policy() = default;

  virtual const char* name() const = 0;

  /// Register `iv` (block-relative) of cache block `mb` as written. Returns
  /// true iff the bytes were pushed to the home immediately and the caller
  /// must flush before relying on them (write-through); false means the
  /// range is tracked for a later write-back round.
  virtual bool on_dirty(mem_block& mb, common::interval iv) = 0;
};

/// write_through: every checkin pushes its bytes to the home right away.
class write_through_policy final : public write_policy {
public:
  write_through_policy(rma::channel& ch, block_directory& dir, cache_stats& st,
                       placement_engine* pl, int rank)
      : ch_(ch), dir_(dir), st_(st), pl_(pl), rank_(rank) {}

  const char* name() const override { return "write_through"; }
  bool on_dirty(mem_block& mb, common::interval iv) override;

private:
  rma::channel& ch_;
  block_directory& dir_;
  cache_stats& st_;
  placement_engine* pl_;  ///< dynamic placement (null when off)
  const int rank_;
};

/// write_back (and write_back_lazy): dirty ranges accumulate until a release
/// fence or eviction pressure flushes them.
class write_back_policy final : public write_policy {
public:
  explicit write_back_policy(writeback_engine& wb) : wb_(wb) {}

  const char* name() const override { return "write_back"; }
  bool on_dirty(mem_block& mb, common::interval iv) override {
    wb_.mark_dirty(mb, iv);
    return false;
  }

private:
  writeback_engine& wb_;
};

/// Maps the user-facing cache_policy to a policy object. Only write_through
/// changes checkin behaviour; none/write_back/write_back_lazy all defer to
/// the write-back engine (laziness lives in the fence protocol, not here).
std::unique_ptr<write_policy> make_write_policy(common::cache_policy p, rma::channel& ch,
                                                block_directory& dir, writeback_engine& wb,
                                                cache_stats& st, placement_engine* pl, int rank);

}  // namespace ityr::pgas
