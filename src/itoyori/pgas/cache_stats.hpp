#pragma once

#include <cstdint>

namespace ityr::pgas {

/// Counters of one rank's software cache. Owned by the cache_system facade
/// and shared (by reference) with every layer of the coherence stack, so the
/// aggregate view stays a single flat struct for metrics/bench consumers.
struct cache_stats {
  std::uint64_t checkouts = 0;
  std::uint64_t checkins = 0;
  std::uint64_t block_visits = 0;      ///< (checkout, block) pairs processed
  std::uint64_t block_hits = 0;        ///< visits needing no fetch (incl. home)
  std::uint64_t block_misses = 0;      ///< visits that fetched remote data
  std::uint64_t write_skips = 0;       ///< write-mode visits (fetch elided)
  std::uint64_t fast_path_hits = 0;    ///< checkouts served by the front table
  std::uint64_t front_table_conflicts = 0;  ///< probes losing to a different block's memo
  std::uint64_t coalesced_messages = 0;  ///< RMA messages saved by coalescing
  std::uint64_t fetched_bytes = 0;
  std::uint64_t written_back_bytes = 0;
  // dynamic placement (all zero unless ITYR_MIGRATION / ITYR_REPLICATION)
  std::uint64_t forward_retries = 0;   ///< stale home_loc fixed via fresh locate
  std::uint64_t replica_fetch_bytes = 0;  ///< fetched bytes served by a node replica
  std::uint64_t write_through_bytes = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t home_evictions = 0;
  std::uint64_t releases = 0;          ///< write-back-all rounds
  std::uint64_t acquires = 0;          ///< invalidate-all rounds
  std::uint64_t lazy_release_waits = 0;  ///< acquires that had to wait
  // prefetcher (all zero unless ITYR_PREFETCH is on)
  std::uint64_t prefetch_issued = 0;        ///< prefetch get segments issued
  std::uint64_t prefetch_issued_bytes = 0;  ///< bytes those segments carried
  std::uint64_t prefetch_useful_bytes = 0;  ///< prefetched bytes later read
  std::uint64_t prefetch_wasted_bytes = 0;  ///< evicted/overwritten unread
  std::uint64_t prefetch_late = 0;     ///< consumes that waited on in-flight data
  /// Virtual time checkout spent stalled on fetch completion (the flush /
  /// targeted wait at the end of the block walk). Accounted identically
  /// with prefetching off, so on/off stall times are directly comparable.
  double fetch_stall_s = 0;
  /// The same stall time split by topology distance class (class 0 =
  /// intra-node; see common::topology). A round touching several homes is
  /// attributed to its *max* class — the farthest home bounds the wait.
  /// Deeper topologies than this are clamped into the last slot. Invariant:
  /// the per-class entries sum to fetch_stall_s (resp. release_stall_s).
  static constexpr int max_stall_classes = 8;
  double fetch_stall_class_s[max_stall_classes] = {};
  // release pipeline (counted in both modes unless noted)
  std::uint64_t releases_noop = 0;   ///< release fences with nothing dirty
  std::uint64_t async_wb_rounds = 0; ///< nonblocking write-back rounds (async only)
  std::uint64_t idle_flush_bytes = 0;  ///< dirty bytes flushed from the idle loop
  std::uint64_t epochs_in_flight = 0;  ///< peak write-back rounds pending at once
  /// Virtual time release fences spent blocked: the flush in synchronous
  /// mode, the over-budget stall in async mode. Accounted identically in
  /// both modes, so blocking/async stall times are directly comparable.
  double release_stall_s = 0;
  /// release_stall_s split by distance class (same convention as
  /// fetch_stall_class_s; over-budget async stalls are attributed to the
  /// class of the most recently collected round).
  double release_stall_class_s[max_stall_classes] = {};
};

}  // namespace ityr::pgas
