#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "itoyori/common/job.hpp"

namespace ityr::pgas {

/// Per-job software-cache counters (serving mode, docs/internals.md
/// "Multi-job serving"). One row per job id; row 0 collects untagged traffic
/// (the admission driver, SPMD-mode operations) and is omitted from metrics.
///
/// Attribution is by the job current on the rank when the traffic happens:
/// fetches always belong to the faulting job; write-backs are attributed at
/// flush time, so dirty bytes flushed lazily by a later fence may land on a
/// successor job's row (exact producer tracking would need per-byte tags).
struct job_cache_stats {
  std::uint64_t fetched_bytes = 0;
  std::uint64_t written_back_bytes = 0;  ///< incl. write-through bytes
  std::uint64_t block_fetches = 0;       ///< block misses that entered a fetch round
  std::uint64_t cached_bytes = 0;        ///< cache slots currently tagged to the job
  std::uint64_t cached_bytes_peak = 0;
  std::uint64_t quota_recycles = 0;      ///< own-block evictions forced by the quota
};

/// Shared accounting state between cache_system (facade counter deltas) and
/// block_directory (block tags + the capacity quota): the current job on
/// this rank, the optional per-job quota, and the per-job rows. Disabled
/// (single-job mode) it costs one predicted branch per facade call.
struct job_cache_accounting {
  bool enabled = false;
  std::size_t quota = 0;  ///< ITYR_CACHE_JOB_QUOTA bytes per job; 0 = off
  common::job_id_t cur = common::no_job;
  std::vector<job_cache_stats> rows;

  job_cache_stats& of(common::job_id_t j) {
    if (j >= rows.size()) rows.resize(static_cast<std::size_t>(j) + 1);
    return rows[j];
  }
};

}  // namespace ityr::pgas
