#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "itoyori/common/interval_set.hpp"
#include "itoyori/common/options.hpp"
#include "itoyori/common/trace.hpp"
#include "itoyori/pgas/block_directory.hpp"
#include "itoyori/pgas/cache_stats.hpp"
#include "itoyori/pgas/eviction_policy.hpp"
#include "itoyori/pgas/fetch_engine.hpp"
#include "itoyori/pgas/front_table.hpp"
#include "itoyori/pgas/global_heap.hpp"
#include "itoyori/pgas/mem_block.hpp"
#include "itoyori/pgas/types.hpp"
#include "itoyori/pgas/write_policy.hpp"
#include "itoyori/pgas/writeback_engine.hpp"
#include "itoyori/rma/window.hpp"
#include "itoyori/sim/engine.hpp"
#include "itoyori/vm/view_region.hpp"

namespace ityr::pgas {

class placement_engine;

/// Per-rank software cache and coherence engine (paper Sections 4 and 5.2):
/// the orchestrating facade of a layered stack.
///
/// checkout()/checkin() implement Fig. 4; coherence follows SC-for-DRF with
/// self-invalidation: release() writes all dirty bytes back to their homes,
/// acquire() invalidates every cache block, and release_lazy()/
/// acquire(handler)/poll() implement the epoch-based lazy release protocol
/// of Fig. 6.
///
/// The machinery lives in four cooperating layers (docs/internals.md has the
/// full diagram and ownership rules):
///
/// * block_directory — home/cache mem_block ownership, the recency lists and
///   mapping-entry budget (Section 4.3), eviction via the eviction_policy
///   seam (LRU default, clock via ITYR_EVICTION_POLICY), and the per-rank
///   view region + cache pool.
/// * fetch_engine — demand-fetch gap collection at sub-block granularity,
///   coalesced nonblocking gets, the round completion wait, and the adaptive
///   stream prefetcher (ITYR_PREFETCH) with its in-flight pipeline.
/// * writeback_engine — the dirty list, blocking and asynchronous
///   epoch-pipelined write-back rounds (ITYR_ASYNC_RELEASE), the epoch words
///   and fence handshakes, visibility watermarks and idle-time flushing.
/// * front_table — the direct-mapped fast-path memo serving single-block
///   checkouts without touching the generic machinery.
///
/// Checkin dirty-byte handling is a write_policy object (write-through vs
/// write-back), not a branch. The facade walks blocks, keeps the pinned-set
/// rollback for too-much-checkout, and wires the layers together; each layer
/// takes its dependencies by reference and is unit-tested in isolation
/// against a mock rma::channel.
class cache_system : private block_directory::client {
public:
  using stats = cache_stats;

  /// `ctrl_win` must expose, at offsets 0 and 8 of each rank's region, the
  /// current-epoch and request-epoch words of that rank. `pl` (optional) is
  /// the dynamic placement engine: fetches route through its read sources,
  /// writes invalidate its replicas, and stale cached homes are fixed up via
  /// the forwarding generation.
  cache_system(sim::engine& eng, rma::context& rma, global_heap& heap, rma::window& ctrl_win,
               int rank, placement_engine* pl = nullptr);

  // ---- checkout/checkin (Section 3.3 / Fig. 4) ----
  void* checkout(gaddr_t g, std::size_t size, access_mode mode);
  void checkin(gaddr_t g, std::size_t size, access_mode mode);

  // ---- front-table fast paths ----
  /// Single-block fast path: non-null iff the block is memoized, mapped and
  /// home or fully valid. Pins the block like checkout(). checkout() tries
  /// this first, so callers only need it to skip the generic prologue.
  void* checkout_fast(gaddr_t g, std::size_t size, access_mode mode) {
    return front_.checkout_fast(g, size, mode);
  }
  /// Matching fast checkin; false means the caller must use checkin().
  bool checkin_fast(gaddr_t g, std::size_t size, access_mode mode) {
    return front_.checkin_fast(g, size, mode);
  }
  /// One-shot single-element load/store: checkout+copy+checkin fused, no
  /// pin/unpin (nothing can intervene — the copy cannot yield). False means
  /// the caller must fall back to the generic span path.
  bool get_fast(gaddr_t g, std::size_t size, void* out) { return front_.get_fast(g, size, out); }
  bool put_fast(gaddr_t g, std::size_t size, const void* in) {
    return front_.put_fast(g, size, in);
  }

  // ---- fences (Section 4.4, Fig. 6) ----
  void release();
  release_handler release_lazy();
  void acquire();                    ///< plain acquire: self-invalidate
  void acquire(release_handler h);   ///< wait for the releaser's epoch first
  /// Multi-origin acquire (batch steals over mixed-origin deques): wait for
  /// every handler's releaser epoch, then self-invalidate once. Handlers
  /// target distinct ranks; wait_handler only synchronizes with a single
  /// rank, so a batch spanning several pushing ranks must pass them all.
  void acquire(const release_handler* hs, std::size_t n);
  void poll() { wb_.poll(); }        ///< DoReleaseIfRequested

  // ---- asynchronous release pipeline (ITYR_ASYNC_RELEASE) ----
  /// Opportunistic flush from the worker loop's steal-backoff branch: issues
  /// a nonblocking write-back round for any dirty data (skipped, not
  /// stalled, when over the in-flight byte budget) so the next real fence
  /// finds an empty dirty list. No-op unless async release is enabled.
  void idle_flush() { wb_.idle_flush(); }
  /// Visibility watermark: the latest modelled completion time of any async
  /// write-back round this cache issued or transitively observed. Always 0
  /// in synchronous mode (every fence completes inline), so callers can
  /// stamp/wait unconditionally.
  double visibility_watermark() const { return wb_.visibility_watermark(); }
  /// Wait (targeted, not a flush) until `w`, then fold it into our own
  /// watermark: data observed under `w` may include third-party rounds that
  /// later handoffs must also respect. No-op for w <= now.
  void wait_visibility(double w) { wb_.wait_visibility(w); }
  /// Plain acquire whose releaser's watermark is known locally (join with a
  /// finished child, barrier): wait out the watermark, then self-invalidate.
  /// Equivalent to acquire() in synchronous mode.
  void acquire_watermark(double w);
  /// Modelled completion time of the write-back round that advanced this
  /// rank's epoch to `epoch` (0 when nothing needs waiting). Monotone in
  /// `epoch`; epochs older than the ring conservatively report the latest
  /// recorded completion. Peers reach this through the pgas_space callback.
  double release_ready_at(std::uint64_t epoch) const { return wb_.release_ready_at(epoch); }
  /// Async-release peer lookup, wired by pgas_space: maps (rank, epoch) to
  /// that rank's release_ready_at (cache_system cannot see sibling caches).
  void set_peer_ready(std::function<double(int, std::uint64_t)> fn) {
    wb_.set_peer_ready(std::move(fn));
  }

  // ---- introspection ----
  bool has_dirty() const { return wb_.has_dirty(); }
  std::uint64_t current_epoch() const { return wb_.current_epoch(); }
  std::size_t n_cache_blocks() const { return dir_.n_cache_blocks(); }
  std::size_t home_mapped_limit() const { return dir_.home_mapped_limit(); }
  std::size_t checked_out_bytes() const { return checked_out_bytes_; }
  std::size_t front_table_entries() const { return front_.entries(); }
  const stats& get_stats() const { return st_; }

  // ---- per-job accounting (serving mode) ----
  /// Attribute cache traffic since the last sync to the previously-current
  /// job, then switch attribution to `j`. The scheduler calls this whenever
  /// the job running on this rank changes; no-op when serving is off.
  ///
  /// Attribution is snapshot-based: the facade counters (fetched bytes,
  /// written-back + write-through bytes, block misses) only advance while
  /// this rank executes, and `cur` is constant between switches, so the
  /// delta since the last sync belongs entirely to the outgoing job.
  void set_current_job(common::job_id_t j) {
    if (!jobs_acct_.enabled) return;
    sync_job_deltas();
    jobs_acct_.cur = j;
  }
  /// Per-job cache counters, synced to the latest traffic on access.
  const job_cache_accounting& job_accounting() {
    if (jobs_acct_.enabled) sync_job_deltas();
    return jobs_acct_;
  }
  const vm::view_region& view() const { return dir_.view(); }

  /// Emit eviction instants and write-back spans into `t` (nullptr detaches).
  void set_tracer(common::tracer* t) {
    dir_.set_tracer(t);
    fetch_.set_tracer(t);
    wb_.set_tracer(t);
  }

  /// Raw view pointer for a gaddr (valid only while checked out).
  std::byte* view_ptr(gaddr_t g) { return dir_.view().at(heap_.view_off(g)); }

  // ---- dynamic placement hooks (placement_engine only) ----
  /// True iff the block is pinned or dirty in this rank's directory (its
  /// home must not migrate).
  bool placement_block_busy(std::uint64_t mb_id) const { return dir_.block_busy(mb_id); }
  /// Drop this rank's directory record of the block ahead of a home
  /// migration; true iff a record existed.
  bool placement_purge(std::uint64_t mb_id) { return dir_.purge_block(mb_id); }

private:
  // block_directory::client: a block is about to die / eviction needs clean
  // victims.
  void on_block_evicted(mem_block& mb) override;
  void flush_dirty_for_eviction() override { wb_.writeback_all(); }

  void invalidate_all();
  void sync_job_deltas();

  sim::engine& eng_;
  rma::channel& ch_;
  global_heap& heap_;
  const int rank_;
  const std::size_t block_size_;
  const std::size_t sub_block_size_;
  placement_engine* pl_;  ///< dynamic placement (null when off)

  cache_stats st_;
  std::size_t checked_out_bytes_ = 0;

  // Serving mode: per-job rows shared with the directory (block tags, quota)
  // plus the counter snapshots backing the delta attribution.
  job_cache_accounting jobs_acct_;
  std::uint64_t job_sync_fetched_ = 0;
  std::uint64_t job_sync_wb_ = 0;
  std::uint64_t job_sync_misses_ = 0;

  std::unique_ptr<eviction_policy> evict_;
  block_directory dir_;
  writeback_engine wb_;
  std::unique_ptr<write_policy> write_policy_;
  fetch_engine fetch_;
  front_table front_;

  // Reused per checkout round (no allocation on the hot path).
  std::vector<mem_block*> blocks_to_map_;
  struct touched {
    mem_block* mb;
    common::interval write_added;  // empty unless write-mode valid.add
  };
  std::vector<touched> pinned_;
};

}  // namespace ityr::pgas
