#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "itoyori/common/interval_set.hpp"
#include "itoyori/common/lru_list.hpp"
#include "itoyori/common/options.hpp"
#include "itoyori/common/trace.hpp"
#include "itoyori/pgas/global_heap.hpp"
#include "itoyori/pgas/types.hpp"
#include "itoyori/rma/window.hpp"
#include "itoyori/sim/engine.hpp"
#include "itoyori/vm/view_region.hpp"

namespace ityr::pgas {

/// Per-rank software cache and coherence engine (paper Sections 4 and 5.2).
///
/// Owns this rank's global view (a reserved VA range covering the whole
/// heap) and a fixed pool of cache blocks. checkout()/checkin() implement
/// Fig. 4: per-block hash lookup with LRU eviction, byte-granularity valid
/// and dirty interval sets, sub-block remote fetch, deferred mmap of view
/// mappings, and refcount pinning. Home blocks — blocks whose home rank is
/// this rank or an intra-node peer — are mapped directly from the owner's
/// pool (zero copy, no cache), and are themselves dynamically managed
/// because of the mapping-entry budget (Section 4.3.2).
///
/// Two hot-path optimizations sit in front of the generic machinery:
///
/// * A small direct-mapped *front table* memoizes recently touched blocks.
///   A single-block checkout whose block is memoized, mapped and fully
///   valid (or a home block) is served without touching the hash map, the
///   heap's home lookup, or any interval algebra; dedicated single-element
///   get/put entry points additionally skip the pin/unpin pair. Eviction,
///   unmap and invalidate_all purge memoized entries, so a front-table hit
///   can never reference a dead or stale block.
/// * Remote fetches and write-backs are *coalesced*: all gaps addressed to
///   the same (window, rank) within one checkout or write-back round leave
///   as one RMA message, with pool-contiguous runs (e.g. consecutive blocks
///   of one rank's span) merged outright across block boundaries.
///
/// Coherence follows SC-for-DRF with self-invalidation: release() writes
/// all dirty bytes back to their homes; acquire() invalidates every cache
/// block. release_lazy()/acquire(handler)/poll() implement the epoch-based
/// lazy release protocol of Fig. 6.
class cache_system {
public:
  struct stats {
    std::uint64_t checkouts = 0;
    std::uint64_t checkins = 0;
    std::uint64_t block_visits = 0;      ///< (checkout, block) pairs processed
    std::uint64_t block_hits = 0;        ///< visits needing no fetch (incl. home)
    std::uint64_t block_misses = 0;      ///< visits that fetched remote data
    std::uint64_t write_skips = 0;       ///< write-mode visits (fetch elided)
    std::uint64_t fast_path_hits = 0;    ///< checkouts served by the front table
    std::uint64_t coalesced_messages = 0;  ///< RMA messages saved by coalescing
    std::uint64_t fetched_bytes = 0;
    std::uint64_t written_back_bytes = 0;
    std::uint64_t write_through_bytes = 0;
    std::uint64_t cache_evictions = 0;
    std::uint64_t home_evictions = 0;
    std::uint64_t releases = 0;          ///< write-back-all rounds
    std::uint64_t acquires = 0;          ///< invalidate-all rounds
    std::uint64_t lazy_release_waits = 0;  ///< acquires that had to wait
    // prefetcher (all zero unless ITYR_PREFETCH is on)
    std::uint64_t prefetch_issued = 0;        ///< prefetch get segments issued
    std::uint64_t prefetch_issued_bytes = 0;  ///< bytes those segments carried
    std::uint64_t prefetch_useful_bytes = 0;  ///< prefetched bytes later read
    std::uint64_t prefetch_wasted_bytes = 0;  ///< evicted/overwritten unread
    std::uint64_t prefetch_late = 0;     ///< consumes that waited on in-flight data
    /// Virtual time checkout spent stalled on fetch completion (the flush /
    /// targeted wait at the end of the block walk). Accounted identically
    /// with prefetching off, so on/off stall times are directly comparable.
    double fetch_stall_s = 0;
    // release pipeline (counted in both modes unless noted)
    std::uint64_t releases_noop = 0;   ///< release fences with nothing dirty
    std::uint64_t async_wb_rounds = 0; ///< nonblocking write-back rounds (async only)
    std::uint64_t idle_flush_bytes = 0;  ///< dirty bytes flushed from the idle loop
    std::uint64_t epochs_in_flight = 0;  ///< peak write-back rounds pending at once
    /// Virtual time release fences spent blocked: the flush in synchronous
    /// mode, the over-budget stall in async mode. Accounted identically in
    /// both modes, so blocking/async stall times are directly comparable.
    double release_stall_s = 0;
  };

  /// `ctrl_win` must expose, at offsets 0 and 8 of each rank's region, the
  /// current-epoch and request-epoch words of that rank.
  cache_system(sim::engine& eng, rma::context& rma, global_heap& heap, rma::window& ctrl_win,
               int rank);

  // ---- checkout/checkin (Section 3.3 / Fig. 4) ----
  void* checkout(gaddr_t g, std::size_t size, access_mode mode);
  void checkin(gaddr_t g, std::size_t size, access_mode mode);

  // ---- front-table fast paths ----
  /// Single-block fast path: non-null iff the block is memoized, mapped and
  /// home or fully valid. Pins the block like checkout(). checkout() tries
  /// this first, so callers only need it to skip the generic prologue.
  void* checkout_fast(gaddr_t g, std::size_t size, access_mode mode);
  /// Matching fast checkin; false means the caller must use checkin().
  bool checkin_fast(gaddr_t g, std::size_t size, access_mode mode);
  /// One-shot single-element load/store: checkout+copy+checkin fused, no
  /// pin/unpin (nothing can intervene — the copy cannot yield). False means
  /// the caller must fall back to the generic span path.
  bool get_fast(gaddr_t g, std::size_t size, void* out);
  bool put_fast(gaddr_t g, std::size_t size, const void* in);

  // ---- fences (Section 4.4, Fig. 6) ----
  void release();
  release_handler release_lazy();
  void acquire();                    ///< plain acquire: self-invalidate
  void acquire(release_handler h);   ///< wait for the releaser's epoch first
  void poll();                       ///< DoReleaseIfRequested

  // ---- asynchronous release pipeline (ITYR_ASYNC_RELEASE) ----
  /// Opportunistic flush from the worker loop's steal-backoff branch: issues
  /// a nonblocking write-back round for any dirty data (skipped, not
  /// stalled, when over the in-flight byte budget) so the next real fence
  /// finds an empty dirty list. No-op unless async release is enabled.
  void idle_flush();
  /// Visibility watermark: the latest modelled completion time of any async
  /// write-back round this cache issued or transitively observed. Always 0
  /// in synchronous mode (every fence completes inline), so callers can
  /// stamp/wait unconditionally.
  double visibility_watermark() const { return vis_watermark_; }
  /// Wait (targeted, not a flush) until `w`, then fold it into our own
  /// watermark: data observed under `w` may include third-party rounds that
  /// later handoffs must also respect. No-op for w <= now.
  void wait_visibility(double w);
  /// Plain acquire whose releaser's watermark is known locally (join with a
  /// finished child, barrier): wait out the watermark, then self-invalidate.
  /// Equivalent to acquire() in synchronous mode.
  void acquire_watermark(double w);
  /// Modelled completion time of the write-back round that advanced this
  /// rank's epoch to `epoch` (0 when nothing needs waiting). Monotone in
  /// `epoch`; epochs older than the ring conservatively report the latest
  /// recorded completion. Peers reach this through the pgas_space callback.
  double release_ready_at(std::uint64_t epoch) const;
  /// Async-release peer lookup, wired by pgas_space: maps (rank, epoch) to
  /// that rank's release_ready_at (cache_system cannot see sibling caches).
  void set_peer_ready(std::function<double(int, std::uint64_t)> fn) {
    peer_ready_ = std::move(fn);
  }

  // ---- introspection ----
  bool has_dirty() const { return !dirty_blocks_.empty(); }
  std::uint64_t current_epoch() const { return epoch_words()[0]; }
  std::size_t n_cache_blocks() const { return n_cache_blocks_; }
  std::size_t home_mapped_limit() const { return home_mapped_limit_; }
  std::size_t checked_out_bytes() const { return checked_out_bytes_; }
  std::size_t front_table_entries() const { return front_.size(); }
  const stats& get_stats() const { return st_; }
  const vm::view_region& view() const { return view_; }

  /// Emit eviction instants and write-back spans into `t` (nullptr detaches).
  void set_tracer(common::tracer* t) { trace_ = t; }

  /// Raw view pointer for a gaddr (valid only while checked out).
  std::byte* view_ptr(gaddr_t g) { return view_.at(heap_.view_off(g)); }

private:
  /// One in-flight prefetch segment: a block-relative byte range whose
  /// nonblocking get was issued at some past virtual time and whose data is
  /// usable from `ready_at` on. The segment is retired (erased) when a
  /// consumer first touches it, when a write fully overwrites it, or when
  /// the block is evicted/invalidated — each retirement emits exactly one
  /// "prefetch consume" or "prefetch evict" trace terminator for the flow
  /// arrow recorded at issue time (tools/trace_lint checks the pairing).
  struct pf_seg {
    common::interval iv;     ///< block-relative range
    double ready_at = 0;     ///< modelled completion time of the get
  };

  struct mem_block : common::lru_hook {
    enum class kind : std::uint8_t { home, cache };
    kind k{};
    std::uint64_t mb_id = 0;
    global_heap::home_loc home{};
    bool mapped = false;
    std::uint32_t ref_count = 0;
    // cache blocks only:
    std::size_t slot = 0;                 ///< index into the cache pool
    common::interval_set valid;           ///< block-relative [0, block_size)
    common::interval_set dirty;
    bool fully_valid = false;             ///< valid == [0, block_size)
    bool in_dirty_list = false;
    // prefetcher state (cache blocks only; empty unless ITYR_PREFETCH):
    common::interval_set prefetched;      ///< prefetched, not yet consumed
    std::vector<pf_seg> pf_segs;          ///< unretired prefetch segments
  };

  /// One detected access stream (sequential run of sub-blocks, forward or
  /// backward). `next` and `issued_until` are *global* sub-block indices
  /// (view offset / sub-block size), so streams run across block
  /// boundaries and straight through home-block spans.
  struct stream {
    bool live = false;
    int dir = 0;                    ///< 0 = unconfirmed, +1 fwd, -1 bwd
    std::int64_t next_fwd = 0;      ///< unconfirmed: expected next if forward
    std::int64_t next_bwd = 0;      ///< unconfirmed: expected next if backward
    std::int64_t next = 0;          ///< confirmed: next expected consume
    std::int64_t issued_until = 0;  ///< next sub-block to issue (fwd: >= next)
  };

  /// Modelled in-flight prefetch budget entry (drained by virtual time).
  struct inflight_entry {
    double ready_at = 0;
    std::size_t bytes = 0;
  };

  /// Direct-mapped memo of recently touched blocks (mapped ones only).
  struct front_entry {
    std::uint64_t mb_id = kNoBlock;
    mem_block* mb = nullptr;
  };
  static constexpr std::uint64_t kNoBlock = ~std::uint64_t{0};

  /// One remote range of a pending coalescable transfer.
  struct xfer_seg {
    rma::window* win = nullptr;
    int rank = -1;
    std::uint64_t off = 0;    ///< window offset
    std::byte* local = nullptr;
    std::size_t len = 0;
  };

  std::uint64_t* epoch_words() const;  // [0]=currentEpoch, [1]=requestEpoch

  mem_block& get_home_block(std::uint64_t mb_id, const global_heap::home_loc& home);
  mem_block& get_cache_block(std::uint64_t mb_id, const global_heap::home_loc& home);
  void evict_home_block();
  bool try_evict_cache_block();  // returns false if nothing evictable
  void map_block(mem_block& mb);
  void unmap_block(mem_block& mb);
  void writeback_all();  // flush dirty + bump epoch
  /// Async-mode write-back round: stall on the byte budget (or bail if
  /// `opportunistic`), issue the dirty segments nonblocking, record the
  /// round's completion in the epoch ring, advance the epoch. Returns false
  /// only when an opportunistic round was skipped for budget.
  bool async_writeback_round(bool opportunistic);
  /// Record `ready` as the completion time of the round advancing the epoch
  /// to `epoch`. Stored as a running max so ready_at is monotone in epoch
  /// even though per-round channel completions are not.
  void record_epoch_ready(std::uint64_t epoch, double ready);
  /// Drop in-flight write-back FIFO entries whose completion time passed.
  void drain_wb_inflight();
  void invalidate_all();
  void mark_dirty(mem_block& mb, common::interval iv);
  std::byte* cache_slot_ptr(const mem_block& mb) const {
    return cache_pool_.block_ptr(mb.slot);
  }
  void charge_mmap();

  void update_fully_valid(mem_block& mb) {
    mb.fully_valid = mb.valid.contains({0, block_size_});
  }
  void memoize(mem_block& mb) {
    if (!front_.empty() && mb.mapped) {
      front_[mb.mb_id & front_mask_] = {mb.mb_id, &mb};
    }
  }
  void purge_front(std::uint64_t mb_id) {
    if (front_.empty()) return;
    front_entry& fe = front_[mb_id & front_mask_];
    if (fe.mb_id == mb_id) fe = {};
  }
  void purge_front_all() {
    for (front_entry& fe : front_) fe = {};
  }
  /// Front-table probe shared by the fast paths: the memoized block iff the
  /// request is in-heap, within one block, and memoized.
  mem_block* front_probe(gaddr_t g, std::size_t size);

  /// Issue `segs` as nonblocking gets or puts, coalescing per (window, rank)
  /// when enabled; clears `segs`. Checkout and write-back rounds keep
  /// separate vectors because a write-back can fire mid-checkout (eviction
  /// pressure inside get_cache_block). Returns the latest modelled
  /// completion time of the issued messages (0 if none).
  double issue_segs(std::vector<xfer_seg>& segs, bool is_put);

  // ---- prefetcher (ITYR_PREFETCH; all no-ops when disabled) ----
  /// Account a checkout touching `span` of `mb` against the block's
  /// prefetched bytes and in-flight segments: useful/wasted byte counting,
  /// retirement (consume/evict terminators), and recording the latest
  /// in-flight completion the round must wait for in `pf_wait_`.
  void consume_prefetch(mem_block& mb, common::interval span, bool is_write);
  /// Feed the stream detector with a read visit covering global sub-blocks
  /// [a, b]; confirmed/advanced streams top up their prefetch window.
  /// Streams are only created on demand misses.
  void feed_stream(std::int64_t a, std::int64_t b, bool was_miss);
  /// Issue prefetches for `s` up to `next +/- depth`, stopping early on
  /// budget or slot pressure (retried at the next advance) and killing the
  /// stream when it runs off the heap or a live allocation.
  void issue_stream(stream& s);
  enum class pf_result { ok, stall, dead };
  pf_result prefetch_sub_block(std::int64_t sub);
  /// Drop a block's prefetcher state on eviction/invalidation: unread bytes
  /// count as wasted, unretired segments emit "prefetch evict" terminators.
  void drop_prefetched(mem_block& mb);

  sim::engine& eng_;
  rma::context& rma_;
  global_heap& heap_;
  rma::window& ctrl_win_;
  const int rank_;
  const std::size_t block_size_;
  const std::size_t sub_block_size_;
  const common::cache_policy policy_;
  const bool coalesce_;
  const bool prefetch_on_;
  const std::size_t prefetch_depth_;         ///< sub-blocks ahead of a stream
  const std::size_t prefetch_max_inflight_;  ///< modelled in-flight byte cap
  const bool async_release_;
  const std::size_t wb_max_inflight_;        ///< in-flight write-back byte cap

  vm::view_region view_;
  vm::physical_pool cache_pool_;
  std::size_t n_cache_blocks_;
  std::size_t home_mapped_limit_;

  std::unordered_map<std::uint64_t, std::unique_ptr<mem_block>> cache_blocks_;
  std::unordered_map<std::uint64_t, std::unique_ptr<mem_block>> home_blocks_;
  common::lru_list cache_lru_;
  common::lru_list home_lru_;
  std::vector<std::size_t> free_slots_;
  std::vector<mem_block*> dirty_blocks_;
  std::size_t checked_out_bytes_ = 0;

  std::vector<front_entry> front_;  ///< size is a power of two (or empty)
  std::uint64_t front_mask_ = 0;

  // Reused per checkout/write-back round (no allocation on the hot path).
  std::vector<mem_block*> blocks_to_map_;
  std::vector<xfer_seg> segs_;     ///< checkout fetch gaps
  std::vector<xfer_seg> wb_segs_;  ///< write-back runs
  std::vector<rma::io_segment> iov_;
  struct touched {
    mem_block* mb;
    common::interval write_added;  // empty unless write-mode valid.add
  };
  std::vector<touched> pinned_;

  // Prefetcher state (untouched unless prefetch_on_).
  static constexpr std::size_t kNStreams = 4;
  stream streams_[kNStreams];
  std::size_t stream_rr_ = 0;        ///< round-robin stream replacement
  std::vector<inflight_entry> inflight_;  ///< FIFO, drained by virtual time
  std::size_t inflight_head_ = 0;
  std::size_t inflight_bytes_ = 0;
  double pf_wait_ = 0;               ///< per-round: latest in-flight completion hit

  // Async-release state (untouched unless async_release_). The epoch ring
  // maps epoch -> cumulative-max completion time of the round that advanced
  // to it; overwritten (too-old) entries are superseded by later — larger —
  // values, so stale reads only ever wait longer, never too little.
  static constexpr std::size_t kEpochRing = 64;
  double epoch_ready_[kEpochRing] = {};
  double epoch_ready_last_ = 0;           ///< running max of recorded completions
  std::vector<inflight_entry> wb_inflight_;  ///< FIFO, drained by virtual time
  std::size_t wb_inflight_head_ = 0;
  std::size_t wb_inflight_bytes_ = 0;
  double vis_watermark_ = 0;
  std::function<double(int, std::uint64_t)> peer_ready_;

  common::tracer* trace_ = nullptr;
  stats st_;
};

}  // namespace ityr::pgas
