#include "itoyori/pgas/pgas_space.hpp"

namespace ityr::pgas {

pgas_space::pgas_space(sim::engine& eng, rma::context& rma)
    : eng_(eng), rma_(rma), heap_(eng, rma) {
  const auto n = static_cast<std::size_t>(eng_.n_ranks());
  epochs_.assign(n, {0, 0});
  std::vector<rma::window::region> regions;
  regions.reserve(n);
  for (auto& e : epochs_) {
    regions.push_back({reinterpret_cast<std::byte*>(e.data()), sizeof(e)});
  }
  ctrl_win_ = rma_.create_window(std::move(regions));

  caches_.reserve(n);
  for (std::size_t r = 0; r < n; r++) {
    caches_.push_back(
        std::make_unique<cache_system>(eng_, rma_, heap_, *ctrl_win_, static_cast<int>(r)));
  }
}

void pgas_space::get(gaddr_t from, void* to, std::size_t size) {
  ITYR_CHECK(size > 0);
  if (!heap_.in_heap(from, size)) throw common::api_error("GET outside the global heap");
  const std::size_t bs = heap_.block_size();
  const std::uint64_t off0 = heap_.view_off(from);
  auto* dst = static_cast<std::byte*>(to);
  std::uint64_t pos = off0;
  const std::uint64_t end = off0 + size;
  while (pos < end) {
    const std::uint64_t mb_id = pos / bs;
    const std::uint64_t in_block = pos % bs;
    const std::uint64_t len = std::min<std::uint64_t>(bs - in_block, end - pos);
    const auto home = heap_.locate_block(mb_id);
    rma_.get_nb(*home.win, home.rank, home.pool_off + in_block, dst + (pos - off0), len);
    pos += len;
  }
  rma_.flush();
}

void pgas_space::put(const void* from, gaddr_t to, std::size_t size) {
  ITYR_CHECK(size > 0);
  if (!heap_.in_heap(to, size)) throw common::api_error("PUT outside the global heap");
  const std::size_t bs = heap_.block_size();
  const std::uint64_t off0 = heap_.view_off(to);
  const auto* src = static_cast<const std::byte*>(from);
  std::uint64_t pos = off0;
  const std::uint64_t end = off0 + size;
  while (pos < end) {
    const std::uint64_t mb_id = pos / bs;
    const std::uint64_t in_block = pos % bs;
    const std::uint64_t len = std::min<std::uint64_t>(bs - in_block, end - pos);
    const auto home = heap_.locate_block(mb_id);
    rma_.put_nb(*home.win, home.rank, home.pool_off + in_block, src + (pos - off0), len);
    pos += len;
  }
  rma_.flush();
}

void pgas_space::barrier() {
  // Release before the rendezvous, acquire after: a barrier is a global
  // synchronization point under SC-for-DRF.
  cache().release();

  const int n = eng_.n_ranks();
  const std::uint64_t my_generation = barrier_generation_;
  if (++barrier_arrived_ == n) {
    barrier_arrived_ = 0;
    barrier_generation_++;
  } else {
    while (barrier_generation_ == my_generation) {
      if (eng_.any_rank_failed()) {
        // A peer died with an exception; unblock so the error surfaces
        // instead of spinning forever.
        barrier_arrived_--;
        throw common::resource_error("barrier aborted: another rank failed");
      }
      eng_.advance(eng_.opts().poll_interval);
    }
  }
  // Latency of the barrier tree itself. This must *advance* (yield), not
  // just charge: a barrier is a synchronization point, and yielding commits
  // the measured compute of the slice that ran before it — otherwise a
  // single-rank barrier would leave the preceding computation's time
  // uncommitted and invisible to now().
  double depth = 0.0;
  for (int p = 1; p < n; p *= 2) depth += 1.0;
  eng_.advance(depth * eng_.opts().net.inter_latency);

  cache().acquire();
}

cache_system::stats pgas_space::aggregate_stats() const {
  cache_system::stats agg;
  for (const auto& c : caches_) {
    const auto& s = c->get_stats();
    agg.checkouts += s.checkouts;
    agg.checkins += s.checkins;
    agg.block_hits += s.block_hits;
    agg.block_misses += s.block_misses;
    agg.fetched_bytes += s.fetched_bytes;
    agg.written_back_bytes += s.written_back_bytes;
    agg.write_through_bytes += s.write_through_bytes;
    agg.cache_evictions += s.cache_evictions;
    agg.home_evictions += s.home_evictions;
    agg.releases += s.releases;
    agg.acquires += s.acquires;
    agg.lazy_release_waits += s.lazy_release_waits;
  }
  return agg;
}

}  // namespace ityr::pgas
