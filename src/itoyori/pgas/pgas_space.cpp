#include "itoyori/pgas/pgas_space.hpp"

namespace ityr::pgas {

pgas_space::pgas_space(sim::engine& eng, rma::context& rma)
    : eng_(eng), rma_(rma), heap_(eng, rma) {
  const auto n = static_cast<std::size_t>(eng_.n_ranks());
  epochs_.assign(n, {0, 0});
  std::vector<rma::window::region> regions;
  regions.reserve(n);
  for (auto& e : epochs_) {
    regions.push_back({reinterpret_cast<std::byte*>(e.data()), sizeof(e)});
  }
  ctrl_win_ = rma_.create_window(std::move(regions));

  // Placement sits between the control window and the caches so its pool
  // windows get deterministic creation-order ids whether or not the features
  // are enabled elsewhere in the stack.
  const auto& o = eng_.opts();
  if (o.migration || o.replication || o.hot_blocks_topn > 0) {
    placement_engine::config pc;
    pc.migration = o.migration;
    pc.replication = o.replication;
    pc.interval = o.placement_interval;
    pc.migration_min_bytes = o.migration_min_bytes;
    pc.migration_share = o.migration_share;
    pc.migration_pool_blocks = o.migration_pool_blocks;
    pc.replication_min_bytes = o.replication_min_bytes;
    pc.replication_min_readers = o.replication_min_readers;
    pc.replication_pool_blocks = o.replication_pool_blocks;
    pc.hot_blocks_topn = o.hot_blocks_topn;
    placement_ = std::make_unique<placement_engine>(eng_, rma_, heap_, pc);
    heap_.set_override_source(placement_.get());
  }

  caches_.reserve(n);
  for (std::size_t r = 0; r < n; r++) {
    caches_.push_back(std::make_unique<cache_system>(eng_, rma_, heap_, *ctrl_win_,
                                                     static_cast<int>(r), placement_.get()));
  }
  if (placement_) {
    std::vector<cache_system*> raw;
    raw.reserve(n);
    for (auto& c : caches_) raw.push_back(c.get());
    placement_->set_caches(std::move(raw));
  }
  // Async-release visibility: an acquirer that observed a releaser's epoch
  // word still has to wait out that round's modelled completion time; the
  // caches cannot see each other, so the lookup goes through us.
  for (auto& c : caches_) {
    c->set_peer_ready(
        [this](int r, std::uint64_t epoch) { return cache_of(r).release_ready_at(epoch); });
  }
}

void pgas_space::get(gaddr_t from, void* to, std::size_t size) {
  xfer(from, static_cast<std::byte*>(to), size, /*is_put=*/false);
}

void pgas_space::put(const void* from, gaddr_t to, std::size_t size) {
  xfer(to, const_cast<std::byte*>(static_cast<const std::byte*>(from)), size, /*is_put=*/true);
}

void pgas_space::xfer(gaddr_t g, std::byte* local, std::size_t size, bool is_put) {
  ITYR_CHECK(size > 0);
  if (!heap_.in_heap(g, size))
    throw common::api_error(is_put ? "PUT outside the global heap" : "GET outside the global heap");
  const std::size_t bs = heap_.block_size();
  const bool coalesce = eng_.opts().coalesce_rma;
  const std::uint64_t off0 = heap_.view_off(g);
  std::uint64_t pos = off0;
  const std::uint64_t end = off0 + size;

  // Per-block spans whose homes sit back-to-back in one rank's pool (block
  // distribution, or a rank's successive cyclic blocks) ride one message:
  // both the remote range and the user buffer are contiguous across the
  // block boundary, so plain run-merging suffices — no gather list needed.
  global_heap::home_loc run_home{};   // home of the run's first block
  global_heap::home_loc prev_home{};  // home of the last block appended
  std::uint64_t run_begin = 0;        // view offset where the current run starts
  std::uint64_t run_len = 0;

  auto flush_run = [&] {
    if (run_len == 0) return;
    if (is_put) {
      rma_.put_nb(*run_home.win, run_home.rank, run_home.pool_off + run_begin % bs,
                  local + (run_begin - off0), run_len);
    } else {
      rma_.get_nb(*run_home.win, run_home.rank, run_home.pool_off + run_begin % bs,
                  local + (run_begin - off0), run_len);
    }
    run_len = 0;
  };

  while (pos < end) {
    const std::uint64_t mb_id = pos / bs;
    const std::uint64_t in_block = pos % bs;
    const std::uint64_t len = std::min<std::uint64_t>(bs - in_block, end - pos);
    // An uncached PUT is a write intent: replicas must be stale before the
    // bytes land on the home.
    if (is_put && placement_) placement_->note_write_intent(mb_id);
    const auto home = heap_.locate_block(mb_id);
    // A new block can only extend the run if the run ended exactly at the
    // previous block boundary (in_block == 0 guarantees it) and its home
    // bytes directly follow the previous block's in the same pool.
    if (run_len > 0 && coalesce && in_block == 0 && heap_.homes_contiguous(prev_home, home)) {
      run_len += len;
    } else {
      flush_run();
      run_home = home;
      run_begin = pos;
      run_len = len;
    }
    prev_home = home;
    pos += len;
  }
  flush_run();
  rma_.flush();
}

void pgas_space::barrier() {
  // Release before the rendezvous, acquire after: a barrier is a global
  // synchronization point under SC-for-DRF.
  cache().release();

  const int n = eng_.n_ranks();
  const std::uint64_t my_generation = barrier_generation_;
  barrier_vis_pending_ = std::max(barrier_vis_pending_, cache().visibility_watermark());
  if (++barrier_arrived_ == n) {
    barrier_arrived_ = 0;
    // Seal the watermark of this generation before releasing the spinners; a
    // laggard of generation g reads `sealed` strictly before it can arrive at
    // generation g+1, so the two-variable scheme cannot race.
    barrier_vis_sealed_ = barrier_vis_pending_;
    barrier_vis_pending_ = 0;
    barrier_generation_++;
  } else {
    while (barrier_generation_ == my_generation) {
      if (eng_.any_rank_failed()) {
        // A peer died with an exception; unblock so the error surfaces
        // instead of spinning forever.
        barrier_arrived_--;
        throw common::resource_error("barrier aborted: another rank failed");
      }
      eng_.advance(eng_.opts().poll_interval);
    }
  }
  // Latency of the barrier tree itself. This must *advance* (yield), not
  // just charge: a barrier is a synchronization point, and yielding commits
  // the measured compute of the slice that ran before it — otherwise a
  // single-rank barrier would leave the preceding computation's time
  // uncommitted and invisible to now().
  double depth = 0.0;
  for (int p = 1; p < n; p *= 2) depth += 1.0;
  eng_.advance(depth * eng_.opts().net.inter_latency);

  // Under async release the pre-barrier releases may still be in flight;
  // wait out the sealed watermark before invalidating (no-op when 0).
  cache().acquire_watermark(barrier_vis_sealed_);
}

cache_system::stats pgas_space::aggregate_stats() const {
  cache_system::stats agg;
  for (const auto& c : caches_) {
    const auto& s = c->get_stats();
    agg.checkouts += s.checkouts;
    agg.checkins += s.checkins;
    agg.block_visits += s.block_visits;
    agg.block_hits += s.block_hits;
    agg.block_misses += s.block_misses;
    agg.write_skips += s.write_skips;
    agg.fast_path_hits += s.fast_path_hits;
    agg.front_table_conflicts += s.front_table_conflicts;
    agg.coalesced_messages += s.coalesced_messages;
    agg.fetched_bytes += s.fetched_bytes;
    agg.written_back_bytes += s.written_back_bytes;
    agg.write_through_bytes += s.write_through_bytes;
    agg.cache_evictions += s.cache_evictions;
    agg.home_evictions += s.home_evictions;
    agg.releases += s.releases;
    agg.acquires += s.acquires;
    agg.lazy_release_waits += s.lazy_release_waits;
    agg.prefetch_issued += s.prefetch_issued;
    agg.prefetch_issued_bytes += s.prefetch_issued_bytes;
    agg.prefetch_useful_bytes += s.prefetch_useful_bytes;
    agg.prefetch_wasted_bytes += s.prefetch_wasted_bytes;
    agg.prefetch_late += s.prefetch_late;
    agg.fetch_stall_s += s.fetch_stall_s;
    agg.releases_noop += s.releases_noop;
    agg.async_wb_rounds += s.async_wb_rounds;
    agg.idle_flush_bytes += s.idle_flush_bytes;
    agg.epochs_in_flight = std::max(agg.epochs_in_flight, s.epochs_in_flight);
    agg.release_stall_s += s.release_stall_s;
    agg.forward_retries += s.forward_retries;
    agg.replica_fetch_bytes += s.replica_fetch_bytes;
  }
  return agg;
}

}  // namespace ityr::pgas
