#include "itoyori/pgas/front_table.hpp"

#include <algorithm>
#include <cstring>

#include "itoyori/pgas/placement.hpp"

namespace ityr::pgas {

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

front_table::front_table(sim::engine& eng, global_heap& heap, block_directory& dir,
                         write_policy& wp, rma::channel& ch, cache_stats& st,
                         std::size_t& checked_out_bytes, std::size_t n_entries,
                         std::size_t block_size, int rank, placement_engine* pl)
    : eng_(eng),
      heap_(heap),
      dir_(dir),
      wp_(wp),
      ch_(ch),
      st_(st),
      checked_out_bytes_(checked_out_bytes),
      block_size_(block_size),
      rank_(rank),
      pl_(pl) {
  if (n_entries > 0) {
    // Clamped: a garbage ITYR_FRONT_TABLE_SIZE (e.g. "-5" read as 2^64-5)
    // must not wedge startup in round_up_pow2 or exhaust memory.
    const std::size_t entries = std::min<std::size_t>(n_entries, std::size_t(1) << 20);
    table_.resize(round_up_pow2(entries));
    mask_ = table_.size() - 1;
  }
}

mem_block* front_table::probe(gaddr_t g, std::size_t size) {
  if (table_.empty() || size == 0) return nullptr;
  ITYR_CHECK(eng_.my_rank() == rank_);
  if (!heap_.in_heap(g, size)) return nullptr;
  const std::uint64_t off0 = heap_.view_off(g);
  const std::uint64_t mb_id = off0 / block_size_;
  if ((off0 + size - 1) / block_size_ != mb_id) return nullptr;  // spans blocks
  const entry& fe = table_[mb_id & mask_];
  if (fe.mb_id != mb_id) {
    // Occupied by a different block: a direct-mapped conflict miss (as
    // opposed to a cold/purged slot). This counter is what sizes the table
    // and decides whether 2-way associativity would pay (BENCH_checkout.json
    // reports it at 16/64/256 entries).
    if (fe.mb_id != kNoBlock) st_.front_table_conflicts++;
    return nullptr;
  }
  ITYR_CHECK(fe.mb != nullptr);
  ITYR_CHECK(fe.mb->mapped);
  return fe.mb;
}

void* front_table::checkout_fast(gaddr_t g, std::size_t size, access_mode mode) {
  mem_block* mb = probe(g, size);
  if (mb == nullptr) return nullptr;
  // Read-mode data must be present: only home blocks (always authoritative)
  // and fully-valid cache blocks qualify. Write-mode never fetches, so any
  // memoized cache block qualifies.
  if (mb->k == mem_block::kind::cache && mode != access_mode::write && !mb->fully_valid)
    return nullptr;
  // A block with unretired prefetch segments takes the slow path: reads may
  // have to wait out in-flight data, writes would race the incoming RDMA,
  // and the slow path keeps feeding the stream detector.
  if (mb->k == mem_block::kind::cache && !mb->pf_segs.empty()) return nullptr;

  const std::uint64_t off0 = heap_.view_off(g);
  // Write intent must invalidate replicas even on the fast path: a home
  // block's writes land in the authoritative bytes with no checkin hook to
  // catch them (cache blocks are caught again, harmlessly, at checkin).
  if (pl_ != nullptr && mode != access_mode::read) pl_->note_write_intent(mb->mb_id);
  st_.checkouts++;
  st_.fast_path_hits++;
  st_.block_visits++;
  if (mb->k == mem_block::kind::home) {
    dir_.touch(*mb);
    st_.block_hits++;
  } else {
    dir_.touch(*mb);
    if (mode == access_mode::write) {
      if (!mb->fully_valid) {
        const std::uint64_t block_base = mb->mb_id * block_size_;
        mb->valid.add({off0 - block_base, off0 - block_base + size});
        mb->update_fully_valid(block_size_);
      }
      st_.write_skips++;
    } else {
      st_.block_hits++;
    }
  }
  mb->ref_count++;
  checked_out_bytes_ += size;
  return dir_.view().at(off0);
}

bool front_table::checkin_fast(gaddr_t g, std::size_t size, access_mode mode) {
  mem_block* mb = probe(g, size);
  if (mb == nullptr) return false;
  if (mb->ref_count == 0) return false;  // mismatched: let checkin() report it

  if (mb->k == mem_block::kind::cache && mode != access_mode::read) {
    const std::uint64_t off0 = heap_.view_off(g);
    const std::uint64_t block_base = mb->mb_id * block_size_;
    const common::interval req{off0 - block_base, off0 - block_base + size};
    if (wp_.on_dirty(*mb, req)) ch_.flush();
  }
  st_.checkins++;
  mb->ref_count--;
  ITYR_CHECK(checked_out_bytes_ >= size);
  checked_out_bytes_ -= size;
  return true;
}

bool front_table::get_fast(gaddr_t g, std::size_t size, void* out) {
  mem_block* mb = probe(g, size);
  if (mb == nullptr) return false;
  if (mb->k == mem_block::kind::cache && (!mb->fully_valid || !mb->pf_segs.empty())) return false;

  std::memcpy(out, dir_.view().at(heap_.view_off(g)), size);
  dir_.touch(*mb);
  // Counted as a fused checkout+checkin pair so aggregate stats stay
  // comparable with the generic path.
  st_.checkouts++;
  st_.checkins++;
  st_.fast_path_hits++;
  st_.block_visits++;
  st_.block_hits++;
  return true;
}

bool front_table::put_fast(gaddr_t g, std::size_t size, const void* in) {
  mem_block* mb = probe(g, size);
  if (mb == nullptr) return false;
  if (mb->k == mem_block::kind::cache && !mb->pf_segs.empty()) return false;

  const std::uint64_t off0 = heap_.view_off(g);
  if (pl_ != nullptr) pl_->note_write_intent(mb->mb_id);
  std::memcpy(dir_.view().at(off0), in, size);
  st_.checkouts++;
  st_.checkins++;
  st_.fast_path_hits++;
  st_.block_visits++;
  if (mb->k == mem_block::kind::home) {
    dir_.touch(*mb);
    st_.block_hits++;
    return true;
  }
  dir_.touch(*mb);
  st_.write_skips++;
  const std::uint64_t block_base = mb->mb_id * block_size_;
  const common::interval req{off0 - block_base, off0 - block_base + size};
  if (!mb->fully_valid) {
    mb->valid.add(req);
    mb->update_fully_valid(block_size_);
  }
  if (wp_.on_dirty(*mb, req)) ch_.flush();
  return true;
}

}  // namespace ityr::pgas
