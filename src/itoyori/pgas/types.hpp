#pragma once

#include <cstdint>

namespace ityr::pgas {

/// A global address: a virtual address in the unified global view. Every
/// rank reserves the same-size view region, so a gaddr denotes the same
/// global datum on every rank (paper Section 3.2 "unified virtual
/// addresses"); 0 is the null global address.
using gaddr_t = std::uint64_t;

inline constexpr gaddr_t null_gaddr = 0;

/// Access mode for checkout/checkin (paper Section 3.3).
///
/// Note the paper's semantics: the mode describes *events*, not privileges.
/// read_write/write at checkin marks every byte of the region dirty whether
/// or not it was actually stored to, so "always read_write" is NOT a
/// conservative default — concurrent read_write checkouts of the same
/// region are a data race.
enum class access_mode {
  read,        ///< read event at checkout
  write,       ///< write event at checkin; region may start uninitialized
  read_write,  ///< both
};

inline const char* to_string(access_mode m) {
  switch (m) {
    case access_mode::read:       return "read";
    case access_mode::write:      return "write";
    case access_mode::read_write: return "read_write";
  }
  return "?";
}

/// Handle returned by a lazy release fence (paper Fig. 6): identifies "the
/// next write-back epoch of process `rank`". Passed by value to the matching
/// acquire fence. A default-constructed handler means Unneeded.
struct release_handler {
  int rank = -1;
  std::uint64_t epoch = 0;

  bool needed() const { return rank >= 0; }

  friend bool operator==(const release_handler&, const release_handler&) = default;
};

}  // namespace ityr::pgas
