#pragma once

#include <memory>

#include "itoyori/common/lru_list.hpp"
#include "itoyori/common/options.hpp"
#include "itoyori/pgas/mem_block.hpp"

namespace ityr::pgas {

/// Victim-selection seam of the block_directory. The directory owns the
/// intrusive recency lists (one for cache blocks, one for home blocks) and
/// routes every insertion, touch and eviction sweep through one policy
/// object; the policy decides where blocks sit in the list and which
/// evictable block dies first. Policies are stateless across lists, so one
/// shared instance serves both.
class eviction_policy {
public:
  /// Predicate form the directory uses: "may this block be evicted at all"
  /// (pin/dirty rules), orthogonal to the policy's recency decision.
  using evictable_fn = bool (*)(const mem_block&);

  virtual ~eviction_policy() = default;

  virtual const char* name() const = 0;
  /// A demand allocation enters the list.
  virtual void on_insert(common::lru_list& l, mem_block& mb) = 0;
  /// A speculative (prefetch) allocation enters the list: must not look as
  /// young as demanded data.
  virtual void on_insert_speculative(common::lru_list& l, mem_block& mb) = 0;
  /// The block was used (checkout hit, fast-path touch).
  virtual void on_access(common::lru_list& l, mem_block& mb) = 0;
  /// Pick the block to evict, or nullptr if no evictable block exists.
  virtual mem_block* select_victim(common::lru_list& l, evictable_fn evictable) = 0;
};

std::unique_ptr<eviction_policy> make_eviction_policy(common::eviction_kind k);

}  // namespace ityr::pgas
