#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "itoyori/common/error.hpp"

namespace ityr::pgas {

/// First-fit free-list allocator over an abstract [0, capacity) offset
/// space. Used for both the symmetric collective heap (block-granular) and
/// the per-rank noncollective heaps (64-byte granular).
class free_list {
public:
  free_list() = default;
  explicit free_list(std::uint64_t capacity) { free_.emplace(0, capacity); }

  /// Allocate `size` bytes aligned to `align` (power of two). Returns the
  /// offset, or nullopt if no fit exists.
  std::optional<std::uint64_t> alloc(std::uint64_t size, std::uint64_t align = 1) {
    ITYR_CHECK(size > 0);
    ITYR_CHECK(align > 0 && (align & (align - 1)) == 0);
    for (auto it = free_.begin(); it != free_.end(); ++it) {
      const std::uint64_t lo = it->first;
      const std::uint64_t hi = it->second;
      const std::uint64_t start = (lo + align - 1) & ~(align - 1);
      if (start + size > hi || start + size < size /*overflow*/) continue;
      free_.erase(it);
      if (start > lo) free_.emplace(lo, start);
      if (start + size < hi) free_.emplace(start + size, hi);
      in_use_ += size;
      return start;
    }
    return std::nullopt;
  }

  /// Return [off, off+size) to the pool, coalescing with neighbours.
  void dealloc(std::uint64_t off, std::uint64_t size) {
    ITYR_CHECK(size > 0);
    std::uint64_t lo = off, hi = off + size;
    auto it = free_.upper_bound(lo);
    if (it != free_.begin()) {
      auto prev = std::prev(it);
      ITYR_CHECK(prev->second <= lo);  // double-free detection
      if (prev->second == lo) {
        lo = prev->first;
        free_.erase(prev);
      }
    }
    it = free_.lower_bound(hi);
    if (it != free_.end() && it->first == hi) {
      hi = it->second;
      free_.erase(it);
    } else if (it != free_.begin()) {
      ITYR_CHECK(std::prev(it)->second <= off);  // overlap = double free
    }
    free_.emplace(lo, hi);
    ITYR_CHECK(in_use_ >= size);
    in_use_ -= size;
  }

  std::uint64_t bytes_in_use() const { return in_use_; }
  std::size_t fragments() const { return free_.size(); }

private:
  std::map<std::uint64_t, std::uint64_t> free_;  // begin -> end
  std::uint64_t in_use_ = 0;
};

}  // namespace ityr::pgas
