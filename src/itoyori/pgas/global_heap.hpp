#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "itoyori/common/options.hpp"
#include "itoyori/pgas/free_list.hpp"
#include "itoyori/pgas/home_loc.hpp"
#include "itoyori/pgas/types.hpp"
#include "itoyori/rma/window.hpp"
#include "itoyori/sim/engine.hpp"
#include "itoyori/vm/physical_pool.hpp"

namespace ityr::pgas {

/// Layout and allocation of the global address space (paper Section 4.2).
///
/// The heap is a single gaddr range shared by all ranks:
///
///   [ collective region | noncollective seg rank0 | seg rank1 | ... ]
///
/// * Collective allocations (block or block-cyclic distribution) are made
///   symmetrically by all ranks; each rank contributes an equal, identically
///   placed slice of its collective home pool, so the gaddr->home mapping is
///   pure arithmetic per allocation record.
/// * Noncollective allocations are rank-local first-fit allocations inside
///   the caller's segment — fine-grained and asynchronous, usable from any
///   thread in the fork-join region. Remote frees are forwarded to the
///   owner and drained at its next poll.
///
/// Every home block's physical bytes live in the owner's memfd pool; pools
/// are registered as RMA windows at construction (MPI_Win_create), so cache
/// fetches/flushes address them as (rank, pool offset).
class global_heap : public block_locator {
public:
  /// Home location of one heap block (shared with the cache layers).
  using home_loc = pgas::home_loc;

  global_heap(sim::engine& eng, rma::context& rma);

  // ---- layout ----
  gaddr_t heap_base() const { return base_; }
  std::size_t total_size() const override { return total_; }
  std::size_t block_size() const { return block_size_; }

  bool in_heap(gaddr_t g, std::size_t size) const {
    return g >= base_ && g - base_ + size <= total_;
  }
  std::uint64_t view_off(gaddr_t g) const {
    ITYR_CHECK(g >= base_ && g - base_ < total_);
    return g - base_;
  }
  gaddr_t gaddr_of_view(std::uint64_t off) const { return base_ + off; }

  std::uint64_t block_id_of(gaddr_t g) const { return view_off(g) / block_size_; }

  /// Home of heap block `mb_id` (mb_id = view offset / block size).
  /// Collective-region blocks must belong to a live allocation. When a
  /// placement override source is wired (ITYR_MIGRATION), the returned
  /// location is the block's *current* owner with its forwarding generation
  /// stamped; otherwise it is the allocation-time home with gen 0.
  home_loc locate_block(std::uint64_t mb_id) const;

  /// Allocation-time (base) home of a block: the pure block / block-cyclic
  /// arithmetic of Section 4.2, never redirected by placement. The placement
  /// engine uses this as the un-migration target and as the baseline for
  /// per-class bytes-saved accounting.
  home_loc locate_block_base(std::uint64_t mb_id) const;

  /// Wire (or clear) the placement engine's home-override seam. All locates
  /// from then on resolve through it; pass nullptr to restore pure
  /// allocation-time homes.
  void set_override_source(const home_override_source* s) { override_ = s; }

  /// Non-throwing locate_block for speculative lookups (prefetch): false iff
  /// the block is out of range or a collective block outside any live
  /// allocation. Never a substitute for locate_block on the demand path,
  /// where such an access is an API error worth reporting.
  bool try_locate_block(std::uint64_t mb_id, home_loc& out) const override;

  /// True iff block `b` directly follows block `a` in the same rank's home
  /// pool, i.e. their physical bytes form one contiguous window range (so
  /// RMA transfers touching both can ride a single message). Holds for
  /// consecutive blocks of a block-distributed allocation within one rank's
  /// span, and for a rank's successive blocks of a block-cyclic allocation.
  bool homes_contiguous(const home_loc& a, const home_loc& b) const {
    return a.rank == b.rank && a.win == b.win && b.pool_off == a.pool_off + block_size_;
  }

  // ---- collective allocation (call from every rank, in order) ----
  gaddr_t coll_alloc(std::size_t size, common::dist_policy policy);
  void coll_free(gaddr_t g);

  // ---- noncollective allocation ----
  gaddr_t alloc(std::size_t size);
  void free(gaddr_t g, std::size_t size);
  /// Drain remote-free requests addressed to the calling rank.
  void poll();

  // ---- physical pools (for the cache system / view mapping) ----
  const vm::physical_pool& coll_pool(int rank) const { return *coll_pools_[static_cast<std::size_t>(rank)]; }
  const vm::physical_pool& nc_pool(int rank) const { return *nc_pools_[static_cast<std::size_t>(rank)]; }
  rma::window& coll_win() { return *coll_win_; }
  rma::window& nc_win() { return *nc_win_; }

  // ---- statistics / introspection ----
  std::uint64_t coll_bytes_in_use() const { return coll_gspace_.bytes_in_use(); }
  std::uint64_t nc_bytes_in_use(int rank) const {
    return nc_space_[static_cast<std::size_t>(rank)].bytes_in_use();
  }
  /// Free-list fragment count of a rank's noncollective segment (allocation
  /// health: bump-like workloads must keep this O(live holes), not O(allocs)).
  std::size_t nc_fragments(int rank) const {
    return nc_space_[static_cast<std::size_t>(rank)].fragments();
  }
  std::size_t live_coll_allocs() const { return coll_allocs_.size(); }

private:
  struct coll_record {
    std::uint64_t vbase = 0;          ///< view offset of the allocation
    std::size_t user_size = 0;        ///< bytes requested
    std::size_t gspan = 0;            ///< gaddr bytes reserved (block multiple)
    common::dist_policy policy{};
    std::uint64_t pool_base = 0;      ///< identical offset in every rank's pool
    std::size_t per_rank_span = 0;    ///< bytes contributed per rank
  };

  struct coll_op {
    enum class kind { alloc, dealloc };
    kind k{};
    gaddr_t g = 0;
  };

  struct pending_free {
    std::uint64_t off = 0;
    std::size_t size = 0;
  };

  void charge_collective();

  sim::engine& eng_;
  rma::context& rma_;

  std::size_t block_size_;
  gaddr_t base_;
  std::size_t coll_total_;
  std::size_t nc_per_rank_;
  std::size_t total_;

  std::vector<std::unique_ptr<vm::physical_pool>> coll_pools_;
  std::vector<std::unique_ptr<vm::physical_pool>> nc_pools_;
  rma::window* coll_win_ = nullptr;
  rma::window* nc_win_ = nullptr;

  // Collective state is symmetric across ranks; ops are performed once by
  // the first caller and replayed (as results) to the others.
  free_list coll_gspace_;                      ///< gaddr space of coll region
  free_list coll_pool_space_;                  ///< per-rank pool offsets (symmetric)
  std::map<std::uint64_t, coll_record> coll_allocs_;  ///< keyed by vbase
  std::vector<coll_op> coll_log_;
  std::vector<std::size_t> coll_seq_;          ///< per-rank replay cursor

  std::vector<free_list> nc_space_;            ///< per-rank noncollective space
  std::vector<std::vector<pending_free>> pending_frees_;  ///< per owner rank

  const home_override_source* override_ = nullptr;  ///< dynamic placement seam
};

}  // namespace ityr::pgas
