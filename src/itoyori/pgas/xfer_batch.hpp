#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "itoyori/rma/channel.hpp"
#include "itoyori/rma/window.hpp"

namespace ityr::pgas {

/// One remote range of a pending coalescable transfer.
struct xfer_seg {
  rma::window* win = nullptr;
  int rank = -1;
  std::uint64_t off = 0;    ///< window offset
  std::byte* local = nullptr;
  std::size_t len = 0;
};

/// Accumulates the remote ranges of one transfer round (a checkout's fetch
/// gaps, a write-back's dirty runs) and issues them as nonblocking RMA,
/// coalescing per (window, rank) when enabled. The fetch and write-back
/// engines each own their own batch because a write-back can fire
/// mid-checkout (eviction pressure inside the block walk); buffers are
/// reused across rounds so the hot path never allocates.
class xfer_batch {
public:
  /// `coalesced_messages` is the shared stats counter credited with the
  /// messages saved by grouping.
  xfer_batch(rma::channel& ch, bool coalesce, std::uint64_t& coalesced_messages)
      : ch_(ch), coalesce_(coalesce), coalesced_messages_(coalesced_messages) {}

  void add(rma::window* win, int rank, std::uint64_t off, std::byte* local, std::size_t len) {
    segs_.push_back({win, rank, off, local, len});
  }

  bool empty() const { return segs_.empty(); }

  /// Issue the accumulated segments as nonblocking gets or puts, coalescing
  /// per (window, rank) when enabled; clears the batch. Returns the latest
  /// modelled completion time of the issued messages (0 if none).
  double issue(bool is_put);

private:
  rma::channel& ch_;
  const bool coalesce_;
  std::uint64_t& coalesced_messages_;
  std::vector<xfer_seg> segs_;
  std::vector<rma::io_segment> iov_;
};

}  // namespace ityr::pgas
