#include "itoyori/pgas/placement.hpp"

#include <algorithm>
#include <bit>

#include "itoyori/pgas/cache_system.hpp"
#include "itoyori/rma/window.hpp"

namespace ityr::pgas {

namespace {
// Modelled cost of one placement pass: a fixed directory-scan overhead plus a
// per-candidate decision term, charged (no yield) to whichever rank's poll
// crossed the pass deadline — the directory-service work has to be paid by
// somebody, and the poller is the rank that would host it.
constexpr double kPassBaseCost = 0.5e-6;
constexpr double kPerCandidateCost = 5.0e-8;
}  // namespace

placement_engine::placement_engine(sim::engine& eng, rma::context& rma, global_heap& heap,
                                   const config& cfg)
    : eng_(eng),
      rma_(rma),
      heap_(heap),
      mig_(cfg.migration),
      repl_(cfg.replication),
      interval_(cfg.interval),
      mig_min_bytes_(cfg.migration_min_bytes),
      mig_share_(cfg.migration_share),
      repl_min_bytes_(cfg.replication_min_bytes),
      repl_min_readers_(cfg.replication_min_readers),
      topn_(cfg.hot_blocks_topn),
      block_size_(eng.opts().block_size),
      n_nodes_((eng.n_ranks() + eng.opts().ranks_per_node - 1) / eng.opts().ranks_per_node),
      ranks_per_node_(eng.opts().ranks_per_node) {
  const auto n = static_cast<std::size_t>(eng_.n_ranks());
  saved_.assign(n, {});
  next_pass_ = interval_;
  scratch_.resize(block_size_);

  if (mig_) {
    std::vector<rma::window::region> regions;
    regions.reserve(n);
    mig_pools_.reserve(n);
    mig_free_.resize(n);
    for (std::size_t r = 0; r < n; r++) {
      mig_pools_.push_back(std::make_unique<vm::physical_pool>(
          block_size_, cfg.migration_pool_blocks, "ityr-mig-home"));
      regions.push_back({mig_pools_.back()->base(), block_size_ * cfg.migration_pool_blocks});
      auto& fl = mig_free_[r];
      fl.reserve(cfg.migration_pool_blocks);
      for (std::size_t s = cfg.migration_pool_blocks; s-- > 0;)
        fl.push_back(static_cast<std::uint32_t>(s));
    }
    mig_win_ = rma_.create_window(std::move(regions));
  }

  if (repl_) {
    // One pool per *node*; the window's region for rank r aliases r's node
    // pool, so a reader fetching from its node replica targets itself —
    // class-0 (intra-node) traffic by construction.
    repl_pools_.reserve(static_cast<std::size_t>(n_nodes_));
    repl_free_.resize(static_cast<std::size_t>(n_nodes_));
    for (int nd = 0; nd < n_nodes_; nd++) {
      repl_pools_.push_back(std::make_unique<vm::physical_pool>(
          block_size_, cfg.replication_pool_blocks, "ityr-replica"));
      auto& fl = repl_free_[static_cast<std::size_t>(nd)];
      fl.reserve(cfg.replication_pool_blocks);
      for (std::size_t s = cfg.replication_pool_blocks; s-- > 0;)
        fl.push_back(static_cast<std::uint32_t>(s));
    }
    std::vector<rma::window::region> regions;
    regions.reserve(n);
    for (std::size_t r = 0; r < n; r++) {
      auto& pool = *repl_pools_[static_cast<std::size_t>(eng_.node_of(static_cast<int>(r)))];
      regions.push_back({pool.base(), block_size_ * cfg.replication_pool_blocks});
    }
    repl_win_ = rma_.create_window(std::move(regions));
  }
}

void placement_engine::apply_override(std::uint64_t mb_id, home_loc& h) const {
  if (gen_.empty()) return;  // hot path: placement exists but never migrated
  const auto g = gen_.find(mb_id);
  if (g == gen_.end()) return;
  h.gen = g->second;
  const auto it = overrides_.find(mb_id);
  if (it == overrides_.end()) return;  // un-migrated: base home, bumped gen
  const override_rec& o = it->second;
  h.rank = o.rank;
  h.pool = mig_pools_[static_cast<std::size_t>(o.rank)].get();
  h.pool_off = static_cast<std::uint64_t>(o.slot) * block_size_;
  h.win = mig_win_;
}

home_loc placement_engine::read_source(std::uint64_t mb_id, const home_loc& owner, int reader,
                                       bool& from_replica) const {
  from_replica = false;
  const auto it = replicas_.find(mb_id);
  if (it == replicas_.end()) return owner;
  if (eng_.same_node(owner.rank, reader)) return owner;  // owner is already close
  const auto nd = static_cast<std::size_t>(eng_.node_of(reader));
  const std::int32_t slot = it->second.node_slot[nd];
  if (slot < 0) return owner;
  home_loc h = owner;  // keep the owner's gen: this is a source, not a home
  h.rank = reader;     // the reader's region of repl_win_ is its node's pool
  h.pool = repl_pools_[nd].get();
  h.pool_off = static_cast<std::uint64_t>(slot) * block_size_;
  h.win = repl_win_;
  from_replica = true;
  return h;
}

void placement_engine::bump_candidate(block_traffic& t, int rank, std::uint64_t bytes) {
  // Misra-Gries with k=1: if the final margin is m, the candidate's true
  // byte weight exceeds every other consumer's combined weight by >= m.
  const auto w = static_cast<std::int64_t>(bytes);
  if (t.cand_rank == rank) {
    t.cand_margin += w;
  } else if (t.cand_margin >= w) {
    t.cand_margin -= w;
  } else {
    t.cand_rank = rank;
    t.cand_margin = w - t.cand_margin;
  }
}

void placement_engine::note_fetch(std::uint64_t mb_id, int reader, std::uint64_t bytes,
                                  const home_loc& src, const home_loc& owner) {
  if (mig_ || repl_) {
    block_traffic& t = window_[mb_id];
    t.fetch_bytes += bytes;
    const int nd = eng_.node_of(reader);
    if (nd < 64) t.node_mask |= std::uint64_t{1} << nd;
    bump_candidate(t, reader, bytes);
  }
  if (topn_ > 0) {
    cum_traffic& c = cum_[mb_id];
    c.fetch_bytes += bytes;
    if (reader < 64) c.reader_mask |= std::uint64_t{1} << reader;
  }
  // Bytes-saved accounting vs the allocation-time home. Skip the base locate
  // when the source provably *is* the base home (never migrated, no replica).
  if (owner.gen == 0 && src.rank == owner.rank) return;
  const home_loc base = heap_.locate_block_base(mb_id);
  const int cls_src = clamp_class(reader, src.rank);
  const int cls_base = clamp_class(reader, base.rank);
  if (cls_src < cls_base)
    saved_[static_cast<std::size_t>(reader)][static_cast<std::size_t>(cls_base)] += bytes;
}

void placement_engine::note_local_home_visit(std::uint64_t mb_id, int reader, std::uint64_t bytes,
                                             const home_loc& home) {
  if (bytes == 0) return;
  if (mig_ || repl_) {
    // Home-path visits keep feeding dominance so a migrated-in block is not
    // immediately dragged elsewhere by the remaining remote readers.
    block_traffic& t = window_[mb_id];
    const int nd = eng_.node_of(reader);
    if (nd < 64) t.node_mask |= std::uint64_t{1} << nd;
    bump_candidate(t, reader, bytes);
  }
  if (topn_ > 0) {
    cum_traffic& c = cum_[mb_id];
    if (reader < 64) c.reader_mask |= std::uint64_t{1} << reader;
  }
  if (home.gen == 0) return;  // never migrated: nothing was saved
  const home_loc base = heap_.locate_block_base(mb_id);
  const int cls_home = clamp_class(reader, home.rank);
  const int cls_base = clamp_class(reader, base.rank);
  if (cls_home < cls_base)
    saved_[static_cast<std::size_t>(reader)][static_cast<std::size_t>(cls_base)] += bytes;
}

void placement_engine::note_writeback(std::uint64_t mb_id, int writer, std::uint64_t bytes) {
  if (mig_ || repl_) {
    block_traffic& t = window_[mb_id];
    t.wb_bytes += bytes;
    const int nd = eng_.node_of(writer);
    if (nd < 64) t.node_mask |= std::uint64_t{1} << nd;
    bump_candidate(t, writer, bytes);
  }
  if (topn_ > 0) {
    cum_traffic& c = cum_[mb_id];
    c.wb_bytes += bytes;
    if (writer < 64) c.reader_mask |= std::uint64_t{1} << writer;
  }
  invalidate_replicas(mb_id);
}

void placement_engine::invalidate_replicas(std::uint64_t mb_id) {
  if (replicas_.empty()) return;
  const auto it = replicas_.find(mb_id);
  if (it == replicas_.end()) return;
  for (std::size_t nd = 0; nd < it->second.node_slot.size(); nd++) {
    const std::int32_t s = it->second.node_slot[nd];
    if (s >= 0) {
      repl_free_[nd].push_back(static_cast<std::uint32_t>(s));
      st_.replica_invalidations++;
    }
  }
  replicas_.erase(it);
}

int placement_engine::clamp_class(int reader, int target) const {
  return std::min(eng_.topo().class_of(reader, target), cache_stats::max_stall_classes - 1);
}

bool placement_engine::block_busy_anywhere(std::uint64_t mb_id) const {
  for (cache_system* c : caches_) {
    if (c->placement_block_busy(mb_id)) return true;
  }
  return false;
}

void placement_engine::purge_everywhere(std::uint64_t mb_id) {
  for (cache_system* c : caches_) {
    if (c->placement_purge(mb_id)) st_.purged_blocks++;
  }
}

void placement_engine::bump_gen(std::uint64_t mb_id) { gen_[mb_id]++; }

void placement_engine::migrate_block(std::uint64_t mb_id, int target, const home_loc& cur) {
  // Two-phase commit, with no yield between the busy check (caller) and the
  // directory purges: every rank's record of the old home dies first, so no
  // fetch or write-back can be routed by a stale location afterwards.
  purge_everywhere(mb_id);

  // The rma layer moves data at issue time, so get-into-scratch-then-put is
  // a complete copy even though the modelled completions are only waited for
  // at the end of the pass.
  double done = rma_.get_nb(*cur.win, cur.rank, cur.pool_off, scratch_.data(), block_size_);
  pass_done_ = std::max(pass_done_, done);

  if (const auto it = overrides_.find(mb_id); it != overrides_.end()) {
    mig_free_[static_cast<std::size_t>(it->second.rank)].push_back(it->second.slot);
    overrides_.erase(it);
  }

  const home_loc base = heap_.locate_block_base(mb_id);
  if (target == base.rank) {
    // Un-migration: the dominant consumer is the allocation-time owner again;
    // restore the base home and release the pool slot.
    done = rma_.put_nb(*base.win, base.rank, base.pool_off, scratch_.data(), block_size_);
  } else {
    auto& fl = mig_free_[static_cast<std::size_t>(target)];
    ITYR_CHECK(!fl.empty());  // caller checked pool space
    const std::uint32_t slot = fl.back();
    fl.pop_back();
    done = rma_.put_nb(*mig_win_, target, static_cast<std::uint64_t>(slot) * block_size_,
                       scratch_.data(), block_size_);
    overrides_.emplace(mb_id, override_rec{target, slot});
  }
  pass_done_ = std::max(pass_done_, done);

  bump_gen(mb_id);
  st_.migrations++;
  st_.migration_bytes += block_size_;
}

void placement_engine::replicate_block(std::uint64_t mb_id, const home_loc& cur,
                                       std::uint64_t node_mask) {
  replica_rec& rec = replicas_[mb_id];
  if (rec.node_slot.empty()) rec.node_slot.assign(static_cast<std::size_t>(n_nodes_), -1);
  bool fetched = false;
  bool any = false;
  for (int nd = 0; nd < n_nodes_ && nd < 64; nd++) {
    if ((node_mask >> nd & 1) == 0) continue;
    if (nd == eng_.node_of(cur.rank)) continue;  // the owner's node is served by the home
    auto& slot_ref = rec.node_slot[static_cast<std::size_t>(nd)];
    if (slot_ref >= 0) {
      any = true;  // already replicated there
      continue;
    }
    auto& fl = repl_free_[static_cast<std::size_t>(nd)];
    if (fl.empty()) {
      st_.pool_full_skips++;
      continue;
    }
    if (!fetched) {
      pass_done_ = std::max(
          pass_done_, rma_.get_nb(*cur.win, cur.rank, cur.pool_off, scratch_.data(), block_size_));
      fetched = true;
    }
    const std::uint32_t slot = fl.back();
    fl.pop_back();
    // Charge the copy as a message to the target node's first rank.
    pass_done_ = std::max(pass_done_, rma_.put_nb(*repl_win_, nd * ranks_per_node_,
                                                  static_cast<std::uint64_t>(slot) * block_size_,
                                                  scratch_.data(), block_size_));
    slot_ref = static_cast<std::int32_t>(slot);
    st_.replicas++;
    st_.replica_bytes += block_size_;
    any = true;
  }
  if (!any) replicas_.erase(mb_id);  // nothing materialized; keep the map lean
}

void placement_engine::gc_dead_blocks() {
  // A freed-then-reused gaddr range must not inherit stale placement, and a
  // dead override would leak its pool slot forever.
  pass_ids_.clear();
  for (const auto& [id, rec] : overrides_) {
    home_loc h;
    if (!heap_.try_locate_block(id, h)) pass_ids_.push_back(id);
  }
  for (const std::uint64_t id : pass_ids_) {
    if (block_busy_anywhere(id)) continue;  // freed while checked out; retry
    purge_everywhere(id);
    const auto it = overrides_.find(id);
    mig_free_[static_cast<std::size_t>(it->second.rank)].push_back(it->second.slot);
    overrides_.erase(it);
    bump_gen(id);
  }
  pass_ids_.clear();
  for (const auto& [id, rec] : replicas_) {
    home_loc h;
    if (!heap_.try_locate_block(id, h)) pass_ids_.push_back(id);
  }
  for (const std::uint64_t id : pass_ids_) invalidate_replicas(id);
}

void placement_engine::run_pass() {
  in_pass_ = true;
  st_.passes++;
  pass_done_ = 0;
  gc_dead_blocks();

  eng_.charge(kPassBaseCost + kPerCandidateCost * static_cast<double>(window_.size()));

  // Deterministic decision order regardless of hash-map iteration.
  pass_ids_.clear();
  pass_ids_.reserve(window_.size());
  for (const auto& [id, t] : window_) pass_ids_.push_back(id);
  std::sort(pass_ids_.begin(), pass_ids_.end());

  for (const std::uint64_t id : pass_ids_) {
    const block_traffic& t = window_[id];
    home_loc cur;
    if (!heap_.try_locate_block(id, cur)) continue;  // allocation died mid-window

    if (repl_ && t.wb_bytes == 0 && t.fetch_bytes >= repl_min_bytes_ &&
        std::popcount(t.node_mask) >= repl_min_readers_) {
      // Read-mostly and node-shared: replicate. Replication and migration
      // are mutually exclusive per block — a replicated block's home stays
      // put (un-replication happens via write invalidation).
      replicate_block(id, cur, t.node_mask);
      continue;
    }

    if (!mig_) continue;
    if (replicas_.count(id) != 0) continue;
    const std::uint64_t vol = t.fetch_bytes + t.wb_bytes;
    if (vol < mig_min_bytes_) continue;
    if (t.cand_rank < 0 || t.cand_rank == cur.rank) continue;
    if (static_cast<double>(t.cand_margin) < mig_share_ * static_cast<double>(vol)) continue;
    // A block that is pinned (checked out) or dirty in any rank's cache must
    // not move: a pinned block's view mapping is live, and a dirty writer on
    // the new home's node would flip to the home path and read its own
    // un-written-back bytes as stale.
    if (block_busy_anywhere(id)) {
      st_.migrations_skipped++;
      continue;
    }
    const home_loc base = heap_.locate_block_base(id);
    if (t.cand_rank != base.rank && mig_free_[static_cast<std::size_t>(t.cand_rank)].empty()) {
      st_.pool_full_skips++;
      continue;
    }
    migrate_block(id, t.cand_rank, cur);
  }

  window_.clear();
  next_pass_ = eng_.now() + interval_;
  // One targeted wait for every copy the pass issued (this may yield; the
  // in_pass_ guard keeps a reentrant poll from running a nested pass).
  if (pass_done_ > 0) rma_.wait_until(pass_done_);
  in_pass_ = false;
}

bool placement_engine::request_migration(std::uint64_t mb_id, int target_rank) {
  if (!mig_) return false;
  if (target_rank < 0 || target_rank >= eng_.n_ranks()) return false;
  home_loc cur;
  if (!heap_.try_locate_block(mb_id, cur)) return false;
  if (target_rank == cur.rank) return false;
  if (replicas_.count(mb_id) != 0) return false;
  if (block_busy_anywhere(mb_id)) {
    st_.migrations_skipped++;
    return false;
  }
  const home_loc base = heap_.locate_block_base(mb_id);
  if (target_rank != base.rank && mig_free_[static_cast<std::size_t>(target_rank)].empty()) {
    st_.pool_full_skips++;
    return false;
  }
  const double prev = pass_done_;
  pass_done_ = 0;
  migrate_block(mb_id, target_rank, cur);
  if (pass_done_ > 0) rma_.wait_until(pass_done_);
  pass_done_ = prev;
  return true;
}

std::vector<hot_block> placement_engine::hottest(std::size_t n) const {
  std::vector<hot_block> v;
  v.reserve(cum_.size());
  for (const auto& [id, c] : cum_) {
    hot_block hb;
    hb.mb_id = id;
    hb.reader_mask = c.reader_mask;
    hb.fetch_bytes = c.fetch_bytes;
    hb.writeback_bytes = c.wb_bytes;
    home_loc h;
    hb.owner = heap_.try_locate_block(id, h) ? h.rank : -1;
    v.push_back(hb);
  }
  std::sort(v.begin(), v.end(), [](const hot_block& a, const hot_block& b) {
    if (a.fetch_bytes != b.fetch_bytes) return a.fetch_bytes > b.fetch_bytes;
    return a.mb_id < b.mb_id;
  });
  if (v.size() > n) v.resize(n);
  return v;
}

std::size_t placement_engine::n_replica_copies() const {
  std::size_t n = 0;
  for (const auto& [id, rec] : replicas_) {
    for (const std::int32_t s : rec.node_slot) {
      if (s >= 0) n++;
    }
  }
  return n;
}

}  // namespace ityr::pgas
