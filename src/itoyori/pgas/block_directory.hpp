#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "itoyori/common/trace.hpp"
#include "itoyori/pgas/cache_stats.hpp"
#include "itoyori/pgas/eviction_policy.hpp"
#include "itoyori/pgas/job_cache_accounting.hpp"
#include "itoyori/pgas/mem_block.hpp"
#include "itoyori/sim/engine.hpp"
#include "itoyori/vm/physical_pool.hpp"
#include "itoyori/vm/view_region.hpp"

namespace ityr::pgas {

/// Ownership layer of the coherence stack: the home/cache mem_block maps,
/// their recency lists, the cache-slot free list, the per-rank view region
/// and cache pool, and the mapping-entry budget (paper Section 4.3.2).
/// All block lifetime decisions — allocation, LRU/clock accounting via the
/// eviction_policy seam, eviction, view (un)mapping — happen here.
///
/// Blocks are destroyed only by the directory. Before a block dies, the
/// client callback fires so layers holding raw pointers into it (front-table
/// memos, prefetch segments) can let go; flush_dirty_for_eviction() is the
/// escalation hook when every cache block is pinned or dirty.
class block_directory {
public:
  struct client {
    virtual ~client() = default;
    /// The directory is about to destroy `mb`: purge any raw pointers and
    /// retire its speculative state. Called for home and cache blocks.
    virtual void on_block_evicted(mem_block& mb) = 0;
    /// Every cache block is pinned or dirty: write all dirty data back so
    /// the eviction retry below finds clean victims (paper Section 4.4).
    virtual void flush_dirty_for_eviction() = 0;
  };

  block_directory(sim::engine& eng, eviction_policy& evict, client& cl, cache_stats& st,
                  std::size_t block_size, std::size_t view_size, std::size_t cache_size,
                  int rank);

  /// Emit eviction instants into `t` (nullptr detaches).
  void set_tracer(common::tracer* t) { trace_ = t; }

  /// Attach the per-job accounting shared with the cache_system facade
  /// (serving mode): new cache blocks are tagged with the current job, their
  /// capacity is charged to it, and ITYR_CACHE_JOB_QUOTA is enforced softly
  /// at allocation time (an over-quota job recycles its own clean blocks
  /// before touching anyone else's).
  void set_job_accounting(job_cache_accounting* a) { jobs_ = a; }

  vm::view_region& view() { return view_; }
  const vm::view_region& view() const { return view_; }
  std::byte* slot_ptr(const mem_block& mb) const { return cache_pool_.block_ptr(mb.slot); }

  std::size_t n_cache_blocks() const { return n_cache_blocks_; }
  std::size_t home_mapped_limit() const { return home_mapped_limit_; }

  /// Lookup-or-allocate with an access touch (the demand path). Allocation
  /// may evict (throwing too_much_checkout_error if everything is pinned);
  /// get_cache_block escalates through the client's dirty flush first.
  mem_block& get_home_block(std::uint64_t mb_id, const home_loc& home);
  mem_block& get_cache_block(std::uint64_t mb_id, const home_loc& home);

  /// Plain lookups: no allocation, no access touch (checkin, speculation).
  mem_block* find_home_block(std::uint64_t mb_id);
  mem_block* find_cache_block(std::uint64_t mb_id);

  /// Gentle allocation for the speculative (prefetch) path: a free slot or a
  /// clean unpinned victim, else nullptr. Never a write-back round and never
  /// too-much-checkout from speculation. The new block enters the recency
  /// list via the policy's speculative insertion.
  mem_block* alloc_cache_block_speculative(std::uint64_t mb_id, const home_loc& home);

  /// Access touch for fast paths that bypass get_*_block.
  void touch(mem_block& mb) {
    evict_.on_access(mb.k == mem_block::kind::home ? home_lru_ : cache_lru_, mb);
  }

  /// Evict one clean, unpinned cache block; false if none exists.
  bool try_evict_cache_block();
  /// Quota recycle: evict one clean, unpinned cache block TAGGED to `job`;
  /// false if the job holds none. Same recency order as the generic path.
  bool try_evict_cache_block_of(common::job_id_t job);

  // ---- dynamic placement hooks (placement_engine, via cache_system) ----
  /// True iff migrating the block's home out from under this rank is unsafe:
  /// its home or cache record is pinned by an outstanding checkout, or its
  /// cache copy holds not-yet-written-back dirty bytes.
  bool block_busy(std::uint64_t mb_id) const;
  /// Forget this rank's record of the block (home and/or cache) ahead of a
  /// home migration, so every later access re-locates through the heap.
  /// Fires the client eviction callback like a real eviction (front-table
  /// memos and prefetch state must not outlive the record) but counts
  /// nothing as an eviction. Returns true iff a record existed and died;
  /// must not be called on a busy block.
  bool purge_block(std::uint64_t mb_id);

  /// Map a block's view pages (deferred until after a round's communication
  /// has been issued, Fig. 4 lines 25-29).
  void map_block(mem_block& mb);

  /// Iterate every live cache block in map order (invalidate_all).
  template <typename F>
  void for_each_cache_block(F&& f) {
    for (auto& [id, mb] : cache_blocks_) f(*mb);
  }

private:
  void evict_home_block();
  void evict_cache_block(mem_block& mb);  ///< shared teardown of both evict paths
  void unmap_block(mem_block& mb);
  void charge_mmap();
  void tag_new_cache_block(mem_block& mb);

  sim::engine& eng_;
  eviction_policy& evict_;
  client& client_;
  cache_stats& st_;
  const int rank_;
  const std::size_t block_size_;

  vm::view_region view_;
  vm::physical_pool cache_pool_;
  std::size_t n_cache_blocks_;
  std::size_t home_mapped_limit_;

  std::unordered_map<std::uint64_t, std::unique_ptr<mem_block>> cache_blocks_;
  std::unordered_map<std::uint64_t, std::unique_ptr<mem_block>> home_blocks_;
  common::lru_list cache_lru_;
  common::lru_list home_lru_;
  std::vector<std::size_t> free_slots_;

  common::tracer* trace_ = nullptr;
  job_cache_accounting* jobs_ = nullptr;  ///< serving mode (null/disabled otherwise)
};

}  // namespace ityr::pgas
