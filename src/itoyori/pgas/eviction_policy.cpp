#include "itoyori/pgas/eviction_policy.hpp"

namespace ityr::pgas {

namespace {

/// Strict LRU (paper Section 4.3.1, the default): every access moves the
/// block to MRU; the eviction sweep takes the first evictable block from the
/// LRU end.
class lru_policy final : public eviction_policy {
public:
  const char* name() const override { return "lru"; }

  void on_insert(common::lru_list& l, mem_block& mb) override { l.push_back(mb); }

  void on_insert_speculative(common::lru_list& l, mem_block& mb) override {
    // Mid-point insertion: a useless prefetch is evicted before any
    // demand-fetched block, a useful one has half the list to live in.
    l.insert_middle(mb);
  }

  void on_access(common::lru_list& l, mem_block& mb) override { l.touch(mb); }

  mem_block* select_victim(common::lru_list& l, evictable_fn evictable) override {
    auto* hook = l.find_from_lru(
        [&](common::lru_hook& h) { return evictable(static_cast<mem_block&>(h)); });
    return hook != nullptr ? static_cast<mem_block*>(hook) : nullptr;
  }
};

/// Clock / second-chance: accesses only set the block's reference bit (O(1),
/// no list movement — the appeal of clock over LRU in a real cache). The
/// eviction sweep walks from the cold end, clears reference bits it passes,
/// and takes the first evictable block found cold; if every evictable block
/// was referenced, the sweep just spent all their second chances and the
/// oldest one is taken.
class clock_policy final : public eviction_policy {
public:
  const char* name() const override { return "clock"; }

  void on_insert(common::lru_list& l, mem_block& mb) override {
    mb.referenced = false;
    l.push_back(mb);
  }

  void on_insert_speculative(common::lru_list& l, mem_block& mb) override {
    mb.referenced = false;
    l.insert_middle(mb);
  }

  void on_access(common::lru_list&, mem_block& mb) override { mb.referenced = true; }

  mem_block* select_victim(common::lru_list& l, evictable_fn evictable) override {
    mem_block* victim = nullptr;
    l.find_from_lru([&](common::lru_hook& h) {
      auto& mb = static_cast<mem_block&>(h);
      if (!evictable(mb)) return false;
      if (mb.referenced) {
        mb.referenced = false;  // second chance spent
        return false;
      }
      victim = &mb;
      return true;
    });
    if (victim == nullptr) {
      auto* hook = l.find_from_lru(
          [&](common::lru_hook& h) { return evictable(static_cast<mem_block&>(h)); });
      victim = hook != nullptr ? static_cast<mem_block*>(hook) : nullptr;
    }
    return victim;
  }
};

}  // namespace

std::unique_ptr<eviction_policy> make_eviction_policy(common::eviction_kind k) {
  switch (k) {
    case common::eviction_kind::lru:   return std::make_unique<lru_policy>();
    case common::eviction_kind::clock: return std::make_unique<clock_policy>();
  }
  return std::make_unique<lru_policy>();
}

}  // namespace ityr::pgas
