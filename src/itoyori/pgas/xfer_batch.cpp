#include "itoyori/pgas/xfer_batch.hpp"

#include <algorithm>

namespace ityr::pgas {

double xfer_batch::issue(bool is_put) {
  if (segs_.empty()) return 0.0;
  double round_done = 0.0;
  if (!coalesce_) {
    // Baseline: one message per gap/run, in discovery order.
    for (const xfer_seg& s : segs_) {
      const double done = is_put ? ch_.put_nb(*s.win, s.rank, s.off, s.local, s.len)
                                 : ch_.get_nb(*s.win, s.rank, s.off, s.local, s.len);
      round_done = std::max(round_done, done);
    }
    segs_.clear();
    return round_done;
  }

  // Deterministic order: window creation id, not pointer value.
  std::sort(segs_.begin(), segs_.end(), [](const xfer_seg& a, const xfer_seg& b) {
    if (a.win->id != b.win->id) return a.win->id < b.win->id;
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.off < b.off;
  });

  std::size_t i = 0;
  while (i < segs_.size()) {
    rma::window* const win = segs_[i].win;
    const int rank = segs_[i].rank;
    iov_.clear();
    std::size_t n_in_group = 0;
    for (; i < segs_.size() && segs_[i].win == win && segs_[i].rank == rank; i++) {
      // Merge runs that are contiguous both remotely (pool offsets) and
      // locally (e.g. consecutive blocks of one rank's span fetched into the
      // user buffer) into a single range spanning block boundaries.
      if (!iov_.empty() && iov_.back().off + iov_.back().len == segs_[i].off &&
          iov_.back().local + iov_.back().len == segs_[i].local) {
        iov_.back().len += segs_[i].len;
      } else {
        iov_.push_back({segs_[i].off, segs_[i].local, segs_[i].len});
      }
      n_in_group++;
    }
    // The whole (window, rank) group rides one message: contiguous runs
    // merged outright, the rest as a gather/scatter list.
    double done;
    if (iov_.size() == 1) {
      done = is_put ? ch_.put_nb(*win, rank, iov_[0].off, iov_[0].local, iov_[0].len)
                    : ch_.get_nb(*win, rank, iov_[0].off, iov_[0].local, iov_[0].len);
    } else if (is_put) {
      done = ch_.put_nb_multi(*win, rank, iov_.data(), iov_.size());
    } else {
      done = ch_.get_nb_multi(*win, rank, iov_.data(), iov_.size());
    }
    round_done = std::max(round_done, done);
    coalesced_messages_ += n_in_group - 1;
  }
  segs_.clear();
  return round_done;
}

}  // namespace ityr::pgas
