#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "itoyori/pgas/block_directory.hpp"
#include "itoyori/pgas/cache_stats.hpp"
#include "itoyori/pgas/global_heap.hpp"
#include "itoyori/pgas/mem_block.hpp"
#include "itoyori/pgas/types.hpp"
#include "itoyori/pgas/write_policy.hpp"
#include "itoyori/rma/channel.hpp"
#include "itoyori/sim/engine.hpp"

namespace ityr::pgas {

class placement_engine;

/// Fast-path layer of the coherence stack: a small direct-mapped memo of
/// recently touched blocks, and the four entry points served from it. A
/// single-block checkout whose block is memoized, mapped and fully valid (or
/// a home block) bypasses the hash map, the heap's home lookup and all
/// interval algebra; the get/put variants additionally skip the pin/unpin
/// pair.
///
/// Memos hold raw mem_block pointers, so the directory's eviction callback
/// must purge() a block before destroying it, and invalidate_all must
/// purge_all() — a front-table hit can then never reference a dead or stale
/// block.
class front_table {
public:
  front_table(sim::engine& eng, global_heap& heap, block_directory& dir, write_policy& wp,
              rma::channel& ch, cache_stats& st, std::size_t& checked_out_bytes,
              std::size_t n_entries, std::size_t block_size, int rank,
              placement_engine* pl = nullptr);

  std::size_t entries() const { return table_.size(); }

  void memoize(mem_block& mb) {
    if (!table_.empty() && mb.mapped) {
      table_[mb.mb_id & mask_] = {mb.mb_id, &mb};
    }
  }
  void purge(std::uint64_t mb_id) {
    if (table_.empty()) return;
    entry& fe = table_[mb_id & mask_];
    if (fe.mb_id == mb_id) fe = {};
  }
  void purge_all() {
    for (entry& fe : table_) fe = {};
  }

  /// Single-block fast checkout: non-null iff served from the memo.
  void* checkout_fast(gaddr_t g, std::size_t size, access_mode mode);
  /// Matching fast checkin; false means the caller must use the slow path.
  bool checkin_fast(gaddr_t g, std::size_t size, access_mode mode);
  /// One-shot single-element load/store: checkout+copy+checkin fused, no
  /// pin/unpin (nothing can intervene — the copy cannot yield).
  bool get_fast(gaddr_t g, std::size_t size, void* out);
  bool put_fast(gaddr_t g, std::size_t size, const void* in);

private:
  /// Direct-mapped memo of recently touched blocks (mapped ones only).
  struct entry {
    std::uint64_t mb_id = kNoBlock;
    mem_block* mb = nullptr;
  };
  static constexpr std::uint64_t kNoBlock = ~std::uint64_t{0};

  /// Probe shared by the fast paths: the memoized block iff the request is
  /// in-heap, within one block, and memoized.
  mem_block* probe(gaddr_t g, std::size_t size);

  sim::engine& eng_;
  global_heap& heap_;
  block_directory& dir_;
  write_policy& wp_;
  rma::channel& ch_;
  cache_stats& st_;
  std::size_t& checked_out_bytes_;
  const std::size_t block_size_;
  const int rank_;

  placement_engine* pl_;  ///< dynamic placement (null when off)

  std::vector<entry> table_;  ///< size is a power of two (or empty)
  std::uint64_t mask_ = 0;
};

}  // namespace ityr::pgas
