#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "itoyori/common/interval_set.hpp"
#include "itoyori/common/trace.hpp"
#include "itoyori/pgas/block_directory.hpp"
#include "itoyori/pgas/cache_stats.hpp"
#include "itoyori/pgas/mem_block.hpp"
#include "itoyori/pgas/types.hpp"
#include "itoyori/pgas/xfer_batch.hpp"
#include "itoyori/rma/channel.hpp"
#include "itoyori/sim/engine.hpp"

namespace ityr::pgas {

class placement_engine;

/// Dirty-data layer of the coherence stack: the dirty-block list, blocking
/// write-back rounds, the epoch words of the lazy-release protocol (Fig. 6),
/// and the asynchronous epoch-pipelined release (ITYR_ASYNC_RELEASE) with
/// its ready-time ring, visibility watermarks, in-flight byte budget and
/// idle-time flushing.
///
/// `ctrl_win` must expose, at offsets 0 and 8 of each rank's region, the
/// current-epoch and request-epoch words of that rank. The engine holds raw
/// mem_block pointers in its dirty list; the directory never evicts a dirty
/// block, so these cannot dangle.
class writeback_engine {
public:
  struct config {
    bool coalesce = true;
    bool async = false;
    std::size_t wb_max_inflight = 0;  ///< in-flight write-back byte cap
    int rank = -1;
    placement_engine* placement = nullptr;  ///< dynamic placement (may be null)
  };

  writeback_engine(sim::engine& eng, rma::channel& ch, block_directory& dir,
                   rma::window& ctrl_win, cache_stats& st, const config& cfg);

  void set_tracer(common::tracer* t) { trace_ = t; }

  void mark_dirty(mem_block& mb, common::interval iv);
  bool has_dirty() const { return !dirty_blocks_.empty(); }
  std::uint64_t current_epoch() const { return epoch_words()[0]; }

  /// Flush dirty data and bump the epoch: blocking in synchronous mode, an
  /// issue-and-return round in async mode. No-op (releases_noop) when clean.
  void writeback_all();

  /// Lazy release fence: a handler naming our next epoch (Fig. 6), or
  /// Unneeded when nothing is dirty.
  release_handler release_lazy();
  /// The acquire side of a handler: make the releaser reach h.epoch (local
  /// round or remote request + poll) and wait out its round's visibility.
  /// The caller still self-invalidates afterwards.
  void wait_handler(release_handler h);
  /// DoReleaseIfRequested (Fig. 6 lines 55-58).
  void poll();

  // ---- asynchronous release pipeline (ITYR_ASYNC_RELEASE) ----
  /// Opportunistic flush from the worker loop's steal-backoff branch: issues
  /// a nonblocking write-back round for any dirty data (skipped, not
  /// stalled, when over the in-flight byte budget). No-op unless async.
  void idle_flush();
  /// Latest modelled completion of any async round issued or transitively
  /// observed; always 0 in synchronous mode.
  double visibility_watermark() const { return vis_watermark_; }
  /// Wait (targeted, not a flush) until `w`, then fold it into our own
  /// watermark. No-op for w <= now.
  void wait_visibility(double w);
  /// Modelled completion time of the round that advanced this rank's epoch
  /// to `epoch` (0 when nothing needs waiting). Monotone in `epoch`.
  double release_ready_at(std::uint64_t epoch) const;
  /// Peer lookup wired by pgas_space: (rank, epoch) -> that rank's
  /// release_ready_at.
  void set_peer_ready(std::function<double(int, std::uint64_t)> fn) {
    peer_ready_ = std::move(fn);
  }

private:
  /// Modelled in-flight write-back budget entry (drained by virtual time).
  struct inflight_entry {
    double ready_at = 0;
    std::size_t bytes = 0;
  };

  std::uint64_t* epoch_words() const;  // [0]=currentEpoch, [1]=requestEpoch

  /// Async-mode write-back round: stall on the byte budget (or bail if
  /// `opportunistic`), issue the dirty segments nonblocking, record the
  /// round's completion in the epoch ring, advance the epoch. Returns false
  /// only when an opportunistic round was skipped for budget.
  bool async_writeback_round(bool opportunistic);
  /// Record `ready` as the completion time of the round advancing the epoch
  /// to `epoch`. Stored as a running max so ready_at is monotone in epoch
  /// even though per-round channel completions are not.
  void record_epoch_ready(std::uint64_t epoch, double ready);
  /// Drop in-flight write-back FIFO entries whose completion time passed.
  void drain_wb_inflight();
  /// Move every dirty run into the batch and clear the dirty list.
  void collect_dirty();

  sim::engine& eng_;
  rma::channel& ch_;
  block_directory& dir_;
  rma::window& ctrl_win_;
  cache_stats& st_;
  const int rank_;
  const bool async_;
  const std::size_t wb_max_inflight_;

  std::vector<mem_block*> dirty_blocks_;
  xfer_batch batch_;  ///< write-back runs (separate from the fetch batch)
  int wb_cls_ = 0;    ///< max distance class of the last collected round
  placement_engine* pl_ = nullptr;  ///< dynamic placement (null when off)

  // The epoch ring maps epoch -> cumulative-max completion time of the round
  // that advanced to it; overwritten (too-old) entries are superseded by
  // later — larger — values, so stale reads only ever wait longer, never too
  // little.
  static constexpr std::size_t kEpochRing = 64;
  double epoch_ready_[kEpochRing] = {};
  double epoch_ready_last_ = 0;           ///< running max of recorded completions
  std::vector<inflight_entry> wb_inflight_;  ///< FIFO, drained by virtual time
  std::size_t wb_inflight_head_ = 0;
  std::size_t wb_inflight_bytes_ = 0;
  double vis_watermark_ = 0;
  std::function<double(int, std::uint64_t)> peer_ready_;

  common::tracer* trace_ = nullptr;
};

}  // namespace ityr::pgas
