#include "itoyori/pgas/cache_system.hpp"

#include <algorithm>

#include "itoyori/common/error.hpp"
#include "itoyori/pgas/placement.hpp"

namespace ityr::pgas {

namespace {
// Geometry must be validated before any member sized off it is constructed,
// so the check rides the first initializer.
std::size_t checked_block_size(const common::options& o) {
  common::validate_cache_geometry(o.block_size, o.sub_block_size);
  return o.block_size;
}
}  // namespace

cache_system::cache_system(sim::engine& eng, rma::context& rma, global_heap& heap,
                           rma::window& ctrl_win, int rank, placement_engine* pl)
    : eng_(eng),
      ch_(rma),
      heap_(heap),
      rank_(rank),
      block_size_(checked_block_size(eng.opts())),
      sub_block_size_(eng.opts().sub_block_size),
      pl_(pl),
      evict_(make_eviction_policy(eng.opts().eviction)),
      dir_(eng, *evict_, *this, st_, block_size_, heap.total_size(), eng.opts().cache_size, rank),
      wb_(eng, ch_, dir_, ctrl_win, st_,
          {eng.opts().coalesce_rma, eng.opts().async_release, eng.opts().async_wb_max_inflight,
           rank, pl_}),
      write_policy_(make_write_policy(eng.opts().policy, ch_, dir_, wb_, st_, pl_, rank)),
      fetch_(eng, ch_, dir_, heap, st_,
             {block_size_, sub_block_size_, eng.opts().coalesce_rma,
              eng.opts().prefetch && eng.opts().prefetch_depth > 0 &&
                  eng.opts().prefetch_max_inflight > 0,
              eng.opts().prefetch_depth, eng.opts().prefetch_max_inflight, rank, pl_}),
      front_(eng, heap, dir_, *write_policy_, ch_, st_, checked_out_bytes_,
             eng.opts().front_table_size, block_size_, rank, pl_) {
  jobs_acct_.enabled = eng.opts().serve;
  jobs_acct_.quota = eng.opts().cache_job_quota;
  if (jobs_acct_.enabled) dir_.set_job_accounting(&jobs_acct_);
}

void cache_system::sync_job_deltas() {
  job_cache_stats& row = jobs_acct_.of(jobs_acct_.cur);
  const std::uint64_t wb = st_.written_back_bytes + st_.write_through_bytes;
  row.fetched_bytes += st_.fetched_bytes - job_sync_fetched_;
  row.written_back_bytes += wb - job_sync_wb_;
  row.block_fetches += st_.block_misses - job_sync_misses_;
  job_sync_fetched_ = st_.fetched_bytes;
  job_sync_wb_ = wb;
  job_sync_misses_ = st_.block_misses;
}

void cache_system::on_block_evicted(mem_block& mb) {
  // Unread prefetches die with the block; the front table must never hold a
  // pointer that outlives it.
  fetch_.drop_prefetched(mb);
  front_.purge(mb.mb_id);
}

void* cache_system::checkout(gaddr_t g, std::size_t size, access_mode mode) {
  if (void* p = front_.checkout_fast(g, size, mode)) return p;

  ITYR_CHECK(eng_.my_rank() == rank_);
  ITYR_CHECK(size > 0);
  if (!heap_.in_heap(g, size)) throw common::api_error("checkout outside the global heap");
  st_.checkouts++;

  const std::uint64_t off0 = heap_.view_off(g);
  const std::uint64_t off1 = off0 + size;
  blocks_to_map_.clear();
  fetch_.begin_round();
  // Blocks already pinned by this checkout, for rollback if a later block
  // raises too-much-checkout: the failed checkout must leave no dangling
  // refcounts and no "valid" claims over never-fetched write-mode bytes.
  pinned_.clear();

  auto rollback = [&] {
    for (auto& t : pinned_) {
      ITYR_CHECK(t.mb->ref_count > 0);
      t.mb->ref_count--;
      if (!t.write_added.empty()) {
        t.mb->valid.subtract(t.write_added);
        t.mb->fully_valid = false;
      }
    }
  };

  try {
    for (std::uint64_t mb_id = off0 / block_size_; mb_id <= (off1 - 1) / block_size_; mb_id++) {
      const std::uint64_t block_base = mb_id * block_size_;
      const auto home = heap_.locate_block(mb_id);
      st_.block_visits++;
      // Write intent (write or read_write) invalidates replicas up front:
      // replica bytes must never be fetchable once a writer holds the block.
      if (pl_ != nullptr && mode != access_mode::read) pl_->note_write_intent(mb_id);

      if (home.rank == rank_ || eng_.same_node(home.rank, rank_)) {
        mem_block& mb = dir_.get_home_block(mb_id, home);
        ITYR_CHECK(mb.home.gen == home.gen);
        st_.block_hits++;  // home data is authoritative; nothing to fetch
        if (pl_ != nullptr && home.gen != 0) {
          // Migrated-to-us block: feed the traffic window (and bytes-saved
          // accounting) so a later pass can judge whether to keep it here.
          const std::uint64_t r0 = std::max(off0, block_base);
          const std::uint64_t r1 = std::min(off1, block_base + block_size_);
          pl_->note_local_home_visit(mb_id, rank_, r1 - r0, home);
        }
        if (!mb.mapped) blocks_to_map_.push_back(&mb);
        mb.ref_count++;
        pinned_.push_back({&mb, {}});
        if (fetch_.prefetch_enabled() && mode != access_mode::write) {
          // Home blocks have nothing to prefetch, but a sequential stream
          // runs straight through them (block-cyclic interleaves home and
          // remote blocks), so they still advance the detector.
          const std::uint64_t r0 = std::max(off0, block_base);
          const std::uint64_t r1 = std::min(off1, block_base + block_size_);
          fetch_.feed_stream(static_cast<std::int64_t>(r0 / sub_block_size_),
                             static_cast<std::int64_t>((r1 - 1) / sub_block_size_),
                             /*was_miss=*/false);
        }
        continue;
      }

      mem_block& mb = dir_.get_cache_block(mb_id, home);
      if (pl_ != nullptr && mb.home.gen != home.gen) {
        // A cached record survived a home migration (defensive: migration
        // purges every rank's record first, so this should be unreachable,
        // but a forwarding retry is cheap insurance against future reorders).
        st_.forward_retries++;
        fetch_.drop_prefetched(mb);
        front_.purge(mb.mb_id);
        mb.home = home;
      }
      // Requested region, block-relative.
      const common::interval req{std::max(off0, block_base) - block_base,
                                 std::min(off1, block_base + block_size_) - block_base};
      common::interval write_added{};
      bool was_miss = false;
      if (mode == access_mode::write) {
        // Write-only: the bytes will be fully overwritten; no fetch (Fig. 4
        // line 16). They become "valid" in the sense that the cache copy is
        // the authoritative one from now on.
        st_.write_skips++;
        if (!mb.valid.contains(req)) {
          mb.valid.add(req);
          mb.update_fully_valid(block_size_);
          write_added = req;
        }
      } else if (mb.valid.contains(req)) {
        st_.block_hits++;
      } else {
        st_.block_misses++;
        was_miss = true;
        // Fetch at sub-block granularity for spatial locality, skipping
        // already-valid (possibly dirty!) byte ranges (Fig. 4 lines 18-21).
        if (pl_ != nullptr && pl_->has_replicas()) {
          // Resolve the read source right before queueing: replica reads are
          // issued eagerly inside queue_demand, with no yield in between, so
          // the slot cannot be invalidated under us.
          bool from_replica = false;
          const auto src = pl_->read_source(mb_id, home, rank_, from_replica);
          fetch_.queue_demand(mb, fetch_.pad_to_sub_blocks(req), src, from_replica);
        } else {
          fetch_.queue_demand(mb, fetch_.pad_to_sub_blocks(req));
        }
      }
      if (!mb.mapped) blocks_to_map_.push_back(&mb);
      mb.ref_count++;
      pinned_.push_back({&mb, write_added});
      if (fetch_.prefetch_enabled()) {
        if (mode == access_mode::write) {
          // A write into a range with in-flight prefetches must wait them
          // out (a real RDMA get would overwrite the buffer); prefetched
          // bytes overwritten before being read count as wasted.
          fetch_.consume_prefetch(mb, req, /*is_write=*/true);
        } else {
          // Consume at demand-fetch granularity: every prefetched byte in
          // the padded range is a byte a demand miss would have fetched.
          const common::interval padded = fetch_.pad_to_sub_blocks(req);
          fetch_.consume_prefetch(mb, padded, /*is_write=*/false);
          fetch_.feed_stream(
              static_cast<std::int64_t>((block_base + padded.begin) / sub_block_size_),
              static_cast<std::int64_t>((block_base + padded.end - 1) / sub_block_size_),
              was_miss);
        }
      }
    }
  } catch (const common::too_much_checkout_error&) {
    // Gaps collected so far were already claimed valid; their data must
    // still land before anyone trusts those claims.
    fetch_.issue_round();
    rollback();
    ch_.flush();
    throw;
  }

  const double round_done = fetch_.issue_round();
  // Update memory mappings only after all communication has been issued, to
  // overlap the mmap syscalls with the transfers (Fig. 4 lines 25-29).
  for (mem_block* mb : blocks_to_map_) dir_.map_block(*mb);
  fetch_.wait_round(round_done);
  for (auto& t : pinned_) front_.memoize(*t.mb);

  checked_out_bytes_ += size;
  return dir_.view().at(off0);
}

void cache_system::checkin(gaddr_t g, std::size_t size, access_mode mode) {
  if (front_.checkin_fast(g, size, mode)) return;

  ITYR_CHECK(eng_.my_rank() == rank_);
  ITYR_CHECK(size > 0);
  if (!heap_.in_heap(g, size)) throw common::api_error("checkin outside the global heap");
  st_.checkins++;

  const std::uint64_t off0 = heap_.view_off(g);
  const std::uint64_t off1 = off0 + size;
  bool flushed_any = false;

  for (std::uint64_t mb_id = off0 / block_size_; mb_id <= (off1 - 1) / block_size_; mb_id++) {
    const std::uint64_t block_base = mb_id * block_size_;
    const auto home = heap_.locate_block(mb_id);

    if (home.rank == rank_ || eng_.same_node(home.rank, rank_)) {
      mem_block* mb = dir_.find_home_block(mb_id);
      if (mb == nullptr || mb->ref_count == 0)
        throw common::api_error("checkin without matching checkout (home block)");
      mb->ref_count--;
      continue;
    }

    mem_block* mb = dir_.find_cache_block(mb_id);
    if (mb == nullptr || mb->ref_count == 0)
      throw common::api_error("checkin without matching checkout (cache block)");

    if (mode != access_mode::read) {
      const common::interval req{std::max(off0, block_base) - block_base,
                                 std::min(off1, block_base + block_size_) - block_base};
      flushed_any |= write_policy_->on_dirty(*mb, req);
    }
    mb->ref_count--;
  }

  if (flushed_any) ch_.flush();
  ITYR_CHECK(checked_out_bytes_ >= size);
  checked_out_bytes_ -= size;
}

void cache_system::invalidate_all() {
  dir_.for_each_cache_block([&](mem_block& mb) {
    // Self-invalidation must not happen while data is checked out: checkouts
    // must be checked in before any point where threads can migrate
    // (Section 3.3).
    ITYR_CHECK(mb.ref_count == 0);
    ITYR_CHECK(mb.dirty.empty());
    fetch_.drop_prefetched(mb);
    mb.valid.clear();
    mb.fully_valid = false;
  });
  // Memoized cache blocks just lost all their data; drop every memo (home
  // entries too — an acquire is rare enough that refilling is cheap).
  front_.purge_all();
  // Streams were tracking a working set that a sync point just cut off;
  // start detection afresh rather than prefetching across the fence.
  fetch_.reset_streams();
  st_.acquires++;
}

void cache_system::release() {
  ITYR_CHECK(eng_.my_rank() == rank_);
  wb_.writeback_all();
}

release_handler cache_system::release_lazy() {
  ITYR_CHECK(eng_.my_rank() == rank_);
  return wb_.release_lazy();
}

void cache_system::acquire() {
  ITYR_CHECK(eng_.my_rank() == rank_);
  ITYR_CHECK(!has_dirty());
  invalidate_all();
}

void cache_system::acquire(release_handler h) {
  ITYR_CHECK(eng_.my_rank() == rank_);
  wb_.wait_handler(h);
  invalidate_all();
}

void cache_system::acquire(const release_handler* hs, std::size_t n) {
  ITYR_CHECK(eng_.my_rank() == rank_);
  for (std::size_t i = 0; i < n; i++) wb_.wait_handler(hs[i]);
  invalidate_all();
}

void cache_system::acquire_watermark(double w) {
  ITYR_CHECK(eng_.my_rank() == rank_);
  ITYR_CHECK(!has_dirty());
  wb_.wait_visibility(w);
  invalidate_all();
}

}  // namespace ityr::pgas
