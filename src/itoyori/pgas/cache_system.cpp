#include "itoyori/pgas/cache_system.hpp"

#include <algorithm>
#include <cstring>

namespace ityr::pgas {

namespace {
// Fixed virtual cost of one mmap/munmap when running in deterministic mode
// (in measured mode the real syscall cost is captured by the engine).
constexpr double kDeterministicMmapCost = 2.0e-6;

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

cache_system::cache_system(sim::engine& eng, rma::context& rma, global_heap& heap,
                           rma::window& ctrl_win, int rank)
    : eng_(eng),
      rma_(rma),
      heap_(heap),
      ctrl_win_(ctrl_win),
      rank_(rank),
      block_size_(eng.opts().block_size),
      sub_block_size_(std::min(eng.opts().sub_block_size, eng.opts().block_size)),
      policy_(eng.opts().policy),
      coalesce_(eng.opts().coalesce_rma),
      prefetch_on_(eng.opts().prefetch && eng.opts().prefetch_depth > 0 &&
                   eng.opts().prefetch_max_inflight > 0),
      prefetch_depth_(eng.opts().prefetch_depth),
      prefetch_max_inflight_(eng.opts().prefetch_max_inflight),
      async_release_(eng.opts().async_release),
      wb_max_inflight_(eng.opts().async_wb_max_inflight),
      view_(heap.total_size()),
      cache_pool_(block_size_, std::max<std::size_t>(1, eng.opts().cache_size / block_size_),
                  "ityr-cache"),
      n_cache_blocks_(cache_pool_.n_blocks()) {
  ITYR_CHECK(block_size_ % sub_block_size_ == 0);

  // Mapping-entry budget (paper Section 4.3.2): the OS limit is shared by
  // the whole simulated cluster (one real process), and each mapped block
  // can cost up to two entries. Split the budget evenly across ranks,
  // reserve the cache blocks' share, and let home blocks use the rest.
  const std::size_t per_rank_budget =
      eng.opts().max_map_entries / (2 * static_cast<std::size_t>(eng.n_ranks()) + 2);
  home_mapped_limit_ = per_rank_budget > n_cache_blocks_ + 64
                           ? per_rank_budget - n_cache_blocks_
                           : 64;

  free_slots_.reserve(n_cache_blocks_);
  for (std::size_t s = n_cache_blocks_; s-- > 0;) free_slots_.push_back(s);

  if (eng.opts().front_table_size > 0) {
    // Clamped: a garbage ITYR_FRONT_TABLE_SIZE (e.g. "-5" read as 2^64-5)
    // must not wedge startup in round_up_pow2 or exhaust memory.
    const std::size_t entries =
        std::min<std::size_t>(eng.opts().front_table_size, std::size_t(1) << 20);
    front_.resize(round_up_pow2(entries));
    front_mask_ = front_.size() - 1;
  }
}

std::uint64_t* cache_system::epoch_words() const {
  return reinterpret_cast<std::uint64_t*>(ctrl_win_.addr(rank_, 0, 2 * sizeof(std::uint64_t)));
}

void cache_system::charge_mmap() {
  if (eng_.opts().deterministic) eng_.charge(kDeterministicMmapCost);
}

void cache_system::map_block(mem_block& mb) {
  ITYR_CHECK(!mb.mapped);
  const std::uint64_t voff = mb.mb_id * block_size_;
  if (mb.k == mem_block::kind::home) {
    view_.map(voff, *mb.home.pool, mb.home.pool_off, block_size_);
  } else {
    view_.map(voff, cache_pool_, mb.slot * block_size_, block_size_);
  }
  mb.mapped = true;
  charge_mmap();
}

void cache_system::unmap_block(mem_block& mb) {
  ITYR_CHECK(mb.mapped);
  view_.unmap(mb.mb_id * block_size_, block_size_);
  mb.mapped = false;
  charge_mmap();
}

cache_system::mem_block& cache_system::get_home_block(std::uint64_t mb_id,
                                                      const global_heap::home_loc& home) {
  auto it = home_blocks_.find(mb_id);
  if (it != home_blocks_.end()) {
    home_lru_.touch(*it->second);
    return *it->second;
  }
  if (home_blocks_.size() >= home_mapped_limit_) evict_home_block();

  auto mb = std::make_unique<mem_block>();
  mb->k = mem_block::kind::home;
  mb->mb_id = mb_id;
  mb->home = home;
  mem_block& ref = *mb;
  home_blocks_.emplace(mb_id, std::move(mb));
  home_lru_.push_back(ref);
  return ref;
}

void cache_system::evict_home_block() {
  auto* hook = home_lru_.find_from_lru(
      [](common::lru_hook& h) { return static_cast<mem_block&>(h).ref_count == 0; });
  if (hook == nullptr) {
    throw common::too_much_checkout_error(
        "all home-block mapping entries are pinned by outstanding checkouts");
  }
  auto& mb = static_cast<mem_block&>(*hook);
  purge_front(mb.mb_id);  // the front table must never outlive a block
  if (mb.mapped) unmap_block(mb);
  home_lru_.erase(mb);
  st_.home_evictions++;
  if (trace_ != nullptr) trace_->instant(rank_, eng_.now_precise(), "home evict");
  home_blocks_.erase(mb.mb_id);
}

cache_system::mem_block& cache_system::get_cache_block(std::uint64_t mb_id,
                                                       const global_heap::home_loc& home) {
  auto it = cache_blocks_.find(mb_id);
  if (it != cache_blocks_.end()) {
    cache_lru_.touch(*it->second);
    return *it->second;
  }
  if (free_slots_.empty()) {
    if (!try_evict_cache_block()) {
      // Everything is pinned or dirty: write back all dirty data and retry
      // (paper Section 4.4). After the write-back every block is clean, so
      // a block that still cannot be evicted is pinned by an outstanding
      // checkout — the checkout request exceeds the cache capacity.
      writeback_all();
      if (!try_evict_cache_block()) {
        throw common::too_much_checkout_error(
            "cache capacity exhausted by pinned blocks (too-much-checkout)");
      }
    }
  }
  const std::size_t slot = free_slots_.back();
  free_slots_.pop_back();

  auto mb = std::make_unique<mem_block>();
  mb->k = mem_block::kind::cache;
  mb->mb_id = mb_id;
  mb->home = home;
  mb->slot = slot;
  mem_block& ref = *mb;
  cache_blocks_.emplace(mb_id, std::move(mb));
  cache_lru_.push_back(ref);
  return ref;
}

bool cache_system::try_evict_cache_block() {
  auto* hook = cache_lru_.find_from_lru([](common::lru_hook& h) {
    auto& mb = static_cast<mem_block&>(h);
    return mb.ref_count == 0 && mb.dirty.empty();
  });
  if (hook == nullptr) return false;
  auto& mb = static_cast<mem_block&>(*hook);
  drop_prefetched(mb);    // unread prefetches die with the block
  purge_front(mb.mb_id);  // the front table must never outlive a block
  if (mb.mapped) unmap_block(mb);
  cache_lru_.erase(mb);
  free_slots_.push_back(mb.slot);
  st_.cache_evictions++;
  if (trace_ != nullptr) trace_->instant(rank_, eng_.now_precise(), "cache evict");
  cache_blocks_.erase(mb.mb_id);
  return true;
}

cache_system::mem_block* cache_system::front_probe(gaddr_t g, std::size_t size) {
  if (front_.empty() || size == 0) return nullptr;
  ITYR_CHECK(eng_.my_rank() == rank_);
  if (!heap_.in_heap(g, size)) return nullptr;
  const std::uint64_t off0 = heap_.view_off(g);
  const std::uint64_t mb_id = off0 / block_size_;
  if ((off0 + size - 1) / block_size_ != mb_id) return nullptr;  // spans blocks
  const front_entry& fe = front_[mb_id & front_mask_];
  if (fe.mb_id != mb_id) return nullptr;
  ITYR_CHECK(fe.mb != nullptr);
  ITYR_CHECK(fe.mb->mapped);
  return fe.mb;
}

void* cache_system::checkout_fast(gaddr_t g, std::size_t size, access_mode mode) {
  mem_block* mb = front_probe(g, size);
  if (mb == nullptr) return nullptr;
  // Read-mode data must be present: only home blocks (always authoritative)
  // and fully-valid cache blocks qualify. Write-mode never fetches, so any
  // memoized cache block qualifies.
  if (mb->k == mem_block::kind::cache && mode != access_mode::write && !mb->fully_valid)
    return nullptr;
  // A block with unretired prefetch segments takes the slow path: reads may
  // have to wait out in-flight data, writes would race the incoming RDMA,
  // and the slow path keeps feeding the stream detector.
  if (mb->k == mem_block::kind::cache && !mb->pf_segs.empty()) return nullptr;

  const std::uint64_t off0 = heap_.view_off(g);
  st_.checkouts++;
  st_.fast_path_hits++;
  st_.block_visits++;
  if (mb->k == mem_block::kind::home) {
    home_lru_.touch(*mb);
    st_.block_hits++;
  } else {
    cache_lru_.touch(*mb);
    if (mode == access_mode::write) {
      if (!mb->fully_valid) {
        const std::uint64_t block_base = mb->mb_id * block_size_;
        mb->valid.add({off0 - block_base, off0 - block_base + size});
        update_fully_valid(*mb);
      }
      st_.write_skips++;
    } else {
      st_.block_hits++;
    }
  }
  mb->ref_count++;
  checked_out_bytes_ += size;
  return view_.at(off0);
}

bool cache_system::checkin_fast(gaddr_t g, std::size_t size, access_mode mode) {
  mem_block* mb = front_probe(g, size);
  if (mb == nullptr) return false;
  if (mb->ref_count == 0) return false;  // mismatched: let checkin() report it

  if (mb->k == mem_block::kind::cache && mode != access_mode::read) {
    const std::uint64_t off0 = heap_.view_off(g);
    const std::uint64_t block_base = mb->mb_id * block_size_;
    const common::interval req{off0 - block_base, off0 - block_base + size};
    if (policy_ == common::cache_policy::write_through) {
      rma_.put_nb(*mb->home.win, mb->home.rank, mb->home.pool_off + req.begin,
                  cache_slot_ptr(*mb) + req.begin, req.size());
      st_.write_through_bytes += req.size();
      rma_.flush();
    } else {
      mark_dirty(*mb, req);
    }
  }
  st_.checkins++;
  mb->ref_count--;
  ITYR_CHECK(checked_out_bytes_ >= size);
  checked_out_bytes_ -= size;
  return true;
}

bool cache_system::get_fast(gaddr_t g, std::size_t size, void* out) {
  mem_block* mb = front_probe(g, size);
  if (mb == nullptr) return false;
  if (mb->k == mem_block::kind::cache && (!mb->fully_valid || !mb->pf_segs.empty())) return false;

  std::memcpy(out, view_.at(heap_.view_off(g)), size);
  (mb->k == mem_block::kind::home ? home_lru_ : cache_lru_).touch(*mb);
  // Counted as a fused checkout+checkin pair so aggregate stats stay
  // comparable with the generic path.
  st_.checkouts++;
  st_.checkins++;
  st_.fast_path_hits++;
  st_.block_visits++;
  st_.block_hits++;
  return true;
}

bool cache_system::put_fast(gaddr_t g, std::size_t size, const void* in) {
  mem_block* mb = front_probe(g, size);
  if (mb == nullptr) return false;
  if (mb->k == mem_block::kind::cache && !mb->pf_segs.empty()) return false;

  const std::uint64_t off0 = heap_.view_off(g);
  std::memcpy(view_.at(off0), in, size);
  st_.checkouts++;
  st_.checkins++;
  st_.fast_path_hits++;
  st_.block_visits++;
  if (mb->k == mem_block::kind::home) {
    home_lru_.touch(*mb);
    st_.block_hits++;
    return true;
  }
  cache_lru_.touch(*mb);
  st_.write_skips++;
  const std::uint64_t block_base = mb->mb_id * block_size_;
  const common::interval req{off0 - block_base, off0 - block_base + size};
  if (!mb->fully_valid) {
    mb->valid.add(req);
    update_fully_valid(*mb);
  }
  if (policy_ == common::cache_policy::write_through) {
    rma_.put_nb(*mb->home.win, mb->home.rank, mb->home.pool_off + req.begin,
                cache_slot_ptr(*mb) + req.begin, req.size());
    st_.write_through_bytes += req.size();
    rma_.flush();
  } else {
    mark_dirty(*mb, req);
  }
  return true;
}

double cache_system::issue_segs(std::vector<xfer_seg>& segs, bool is_put) {
  if (segs.empty()) return 0.0;
  double round_done = 0.0;
  if (!coalesce_) {
    // Baseline: one message per gap/run, in discovery order.
    for (const xfer_seg& s : segs) {
      const double done = is_put ? rma_.put_nb(*s.win, s.rank, s.off, s.local, s.len)
                                 : rma_.get_nb(*s.win, s.rank, s.off, s.local, s.len);
      round_done = std::max(round_done, done);
    }
    segs.clear();
    return round_done;
  }

  // Deterministic order: window creation id, not pointer value.
  std::sort(segs.begin(), segs.end(), [](const xfer_seg& a, const xfer_seg& b) {
    if (a.win->id != b.win->id) return a.win->id < b.win->id;
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.off < b.off;
  });

  std::size_t i = 0;
  while (i < segs.size()) {
    rma::window* const win = segs[i].win;
    const int rank = segs[i].rank;
    iov_.clear();
    std::size_t n_in_group = 0;
    for (; i < segs.size() && segs[i].win == win && segs[i].rank == rank; i++) {
      // Merge runs that are contiguous both remotely (pool offsets) and
      // locally (e.g. consecutive blocks of one rank's span fetched into the
      // user buffer) into a single range spanning block boundaries.
      if (!iov_.empty() && iov_.back().off + iov_.back().len == segs[i].off &&
          iov_.back().local + iov_.back().len == segs[i].local) {
        iov_.back().len += segs[i].len;
      } else {
        iov_.push_back({segs[i].off, segs[i].local, segs[i].len});
      }
      n_in_group++;
    }
    // The whole (window, rank) group rides one message: contiguous runs
    // merged outright, the rest as a gather/scatter list.
    double done;
    if (iov_.size() == 1) {
      done = is_put ? rma_.put_nb(*win, rank, iov_[0].off, iov_[0].local, iov_[0].len)
                    : rma_.get_nb(*win, rank, iov_[0].off, iov_[0].local, iov_[0].len);
    } else if (is_put) {
      done = rma_.put_nb_multi(*win, rank, iov_.data(), iov_.size());
    } else {
      done = rma_.get_nb_multi(*win, rank, iov_.data(), iov_.size());
    }
    round_done = std::max(round_done, done);
    st_.coalesced_messages += n_in_group - 1;
  }
  segs.clear();
  return round_done;
}

void* cache_system::checkout(gaddr_t g, std::size_t size, access_mode mode) {
  if (void* p = checkout_fast(g, size, mode)) return p;

  ITYR_CHECK(eng_.my_rank() == rank_);
  ITYR_CHECK(size > 0);
  if (!heap_.in_heap(g, size)) throw common::api_error("checkout outside the global heap");
  st_.checkouts++;

  const std::uint64_t off0 = heap_.view_off(g);
  const std::uint64_t off1 = off0 + size;
  blocks_to_map_.clear();
  segs_.clear();
  pf_wait_ = 0.0;
  // Blocks already pinned by this checkout, for rollback if a later block
  // raises too-much-checkout: the failed checkout must leave no dangling
  // refcounts and no "valid" claims over never-fetched write-mode bytes.
  pinned_.clear();

  auto rollback = [&] {
    for (auto& t : pinned_) {
      ITYR_CHECK(t.mb->ref_count > 0);
      t.mb->ref_count--;
      if (!t.write_added.empty()) {
        t.mb->valid.subtract(t.write_added);
        t.mb->fully_valid = false;
      }
    }
  };

  try {
    for (std::uint64_t mb_id = off0 / block_size_; mb_id <= (off1 - 1) / block_size_; mb_id++) {
      const std::uint64_t block_base = mb_id * block_size_;
      const auto home = heap_.locate_block(mb_id);
      st_.block_visits++;

      if (home.rank == rank_ || eng_.same_node(home.rank, rank_)) {
        mem_block& mb = get_home_block(mb_id, home);
        st_.block_hits++;  // home data is authoritative; nothing to fetch
        if (!mb.mapped) blocks_to_map_.push_back(&mb);
        mb.ref_count++;
        pinned_.push_back({&mb, {}});
        if (prefetch_on_ && mode != access_mode::write) {
          // Home blocks have nothing to prefetch, but a sequential stream
          // runs straight through them (block-cyclic interleaves home and
          // remote blocks), so they still advance the detector.
          const std::uint64_t r0 = std::max(off0, block_base);
          const std::uint64_t r1 = std::min(off1, block_base + block_size_);
          feed_stream(static_cast<std::int64_t>(r0 / sub_block_size_),
                      static_cast<std::int64_t>((r1 - 1) / sub_block_size_),
                      /*was_miss=*/false);
        }
        continue;
      }

      mem_block& mb = get_cache_block(mb_id, home);
      // Requested region, block-relative.
      const common::interval req{std::max(off0, block_base) - block_base,
                                 std::min(off1, block_base + block_size_) - block_base};
      common::interval write_added{};
      bool was_miss = false;
      if (mode == access_mode::write) {
        // Write-only: the bytes will be fully overwritten; no fetch (Fig. 4
        // line 16). They become "valid" in the sense that the cache copy is
        // the authoritative one from now on.
        st_.write_skips++;
        if (!mb.valid.contains(req)) {
          mb.valid.add(req);
          update_fully_valid(mb);
          write_added = req;
        }
      } else if (mb.valid.contains(req)) {
        st_.block_hits++;
      } else {
        st_.block_misses++;
        was_miss = true;
        // Fetch at sub-block granularity for spatial locality, skipping
        // already-valid (possibly dirty!) byte ranges (Fig. 4 lines 18-21).
        // Gaps are collected and issued together after the block walk so
        // that same-home gaps can ride one message.
        const common::interval padded{req.begin / sub_block_size_ * sub_block_size_,
                                      std::min<std::uint64_t>(
                                          (req.end + sub_block_size_ - 1) / sub_block_size_ *
                                              sub_block_size_,
                                          block_size_)};
        for (const auto& miss : mb.valid.missing(padded)) {
          segs_.push_back({home.win, home.rank, home.pool_off + miss.begin,
                           cache_slot_ptr(mb) + miss.begin, miss.size()});
          st_.fetched_bytes += miss.size();
          mb.valid.add(miss);
        }
        update_fully_valid(mb);
      }
      if (!mb.mapped) blocks_to_map_.push_back(&mb);
      mb.ref_count++;
      pinned_.push_back({&mb, write_added});
      if (prefetch_on_) {
        if (mode == access_mode::write) {
          // A write into a range with in-flight prefetches must wait them
          // out (a real RDMA get would overwrite the buffer); prefetched
          // bytes overwritten before being read count as wasted.
          consume_prefetch(mb, req, /*is_write=*/true);
        } else {
          // Consume at demand-fetch granularity: every prefetched byte in
          // the padded range is a byte a demand miss would have fetched.
          const common::interval padded{
              req.begin / sub_block_size_ * sub_block_size_,
              std::min<std::uint64_t>(
                  (req.end + sub_block_size_ - 1) / sub_block_size_ * sub_block_size_,
                  block_size_)};
          consume_prefetch(mb, padded, /*is_write=*/false);
          feed_stream(static_cast<std::int64_t>((block_base + padded.begin) / sub_block_size_),
                      static_cast<std::int64_t>((block_base + padded.end - 1) / sub_block_size_),
                      was_miss);
        }
      }
    }
  } catch (const common::too_much_checkout_error&) {
    // Gaps collected so far were already claimed valid; their data must
    // still land before anyone trusts those claims.
    issue_segs(segs_, /*is_put=*/false);
    rollback();
    rma_.flush();
    throw;
  }

  const double round_done = issue_segs(segs_, /*is_put=*/false);
  // Update memory mappings only after all communication has been issued, to
  // overlap the mmap syscalls with the transfers (Fig. 4 lines 25-29).
  for (mem_block* mb : blocks_to_map_) map_block(*mb);
  const double stall_from = eng_.now();
  if (prefetch_on_) {
    // Wait only for this round's demand fetches plus any in-flight prefetch
    // the round consumed; untouched prefetches stay pending instead of
    // serializing the checkout behind them.
    rma_.net().wait_until(std::max(round_done, pf_wait_));
    if (pf_wait_ > round_done && pf_wait_ > stall_from) st_.prefetch_late++;
  } else {
    rma_.flush();
  }
  st_.fetch_stall_s += eng_.now() - stall_from;
  for (auto& t : pinned_) memoize(*t.mb);

  checked_out_bytes_ += size;
  return view_.at(off0);
}

void cache_system::checkin(gaddr_t g, std::size_t size, access_mode mode) {
  if (checkin_fast(g, size, mode)) return;

  ITYR_CHECK(eng_.my_rank() == rank_);
  ITYR_CHECK(size > 0);
  if (!heap_.in_heap(g, size)) throw common::api_error("checkin outside the global heap");
  st_.checkins++;

  const std::uint64_t off0 = heap_.view_off(g);
  const std::uint64_t off1 = off0 + size;
  bool flushed_any = false;

  for (std::uint64_t mb_id = off0 / block_size_; mb_id <= (off1 - 1) / block_size_; mb_id++) {
    const std::uint64_t block_base = mb_id * block_size_;
    const auto home = heap_.locate_block(mb_id);

    if (home.rank == rank_ || eng_.same_node(home.rank, rank_)) {
      auto it = home_blocks_.find(mb_id);
      if (it == home_blocks_.end() || it->second->ref_count == 0)
        throw common::api_error("checkin without matching checkout (home block)");
      it->second->ref_count--;
      continue;
    }

    auto it = cache_blocks_.find(mb_id);
    if (it == cache_blocks_.end() || it->second->ref_count == 0)
      throw common::api_error("checkin without matching checkout (cache block)");
    mem_block& mb = *it->second;

    if (mode != access_mode::read) {
      const common::interval req{std::max(off0, block_base) - block_base,
                                 std::min(off1, block_base + block_size_) - block_base};
      if (policy_ == common::cache_policy::write_through) {
        rma_.put_nb(*home.win, home.rank, home.pool_off + req.begin,
                    cache_slot_ptr(mb) + req.begin, req.size());
        st_.write_through_bytes += req.size();
        flushed_any = true;
      } else {
        mark_dirty(mb, req);
      }
    }
    mb.ref_count--;
  }

  if (flushed_any) rma_.flush();
  ITYR_CHECK(checked_out_bytes_ >= size);
  checked_out_bytes_ -= size;
}

void cache_system::mark_dirty(mem_block& mb, common::interval iv) {
  mb.dirty.add(iv);
  if (!mb.in_dirty_list) {
    mb.in_dirty_list = true;
    dirty_blocks_.push_back(&mb);
  }
}

void cache_system::writeback_all() {
  if (dirty_blocks_.empty()) {
    st_.releases_noop++;
    return;
  }
  if (async_release_) {
    async_writeback_round(/*opportunistic=*/false);
    return;
  }
  if (trace_ != nullptr) trace_->span_begin(rank_, eng_.now_precise(), "Write Back");
  wb_segs_.clear();
  for (mem_block* mb : dirty_blocks_) {
    for (const auto& iv : mb->dirty.to_vector()) {
      wb_segs_.push_back({mb->home.win, mb->home.rank, mb->home.pool_off + iv.begin,
                          cache_slot_ptr(*mb) + iv.begin, iv.size()});
      st_.written_back_bytes += iv.size();
    }
    mb->dirty.clear();
    mb->in_dirty_list = false;
  }
  dirty_blocks_.clear();
  issue_segs(wb_segs_, /*is_put=*/true);
  const double stall_from = eng_.now();
  rma_.flush();
  st_.release_stall_s += eng_.now() - stall_from;
  // Completing a write-back round advances this process's epoch, releasing
  // any acquirer waiting on a handler from before this round (Fig. 6).
  epoch_words()[0]++;
  st_.releases++;
  if (trace_ != nullptr) trace_->span_end(rank_, eng_.now_precise(), "Write Back");
}

void cache_system::drain_wb_inflight() {
  const double now = eng_.now();
  while (wb_inflight_head_ < wb_inflight_.size() &&
         wb_inflight_[wb_inflight_head_].ready_at <= now) {
    wb_inflight_bytes_ -= wb_inflight_[wb_inflight_head_].bytes;
    wb_inflight_head_++;
  }
  if (wb_inflight_head_ == wb_inflight_.size()) {
    wb_inflight_.clear();
    wb_inflight_head_ = 0;
  }
}

void cache_system::record_epoch_ready(std::uint64_t epoch, double ready) {
  epoch_ready_last_ = std::max(epoch_ready_last_, ready);
  epoch_ready_[epoch % kEpochRing] = epoch_ready_last_;
}

double cache_system::release_ready_at(std::uint64_t epoch) const {
  if (epoch == 0 || !async_release_) return 0.0;
  const std::uint64_t cur = epoch_words()[0];
  // Epochs beyond the current word or evicted from the ring fall back to the
  // latest recorded completion: always conservative (waits no less).
  if (epoch > cur || cur - epoch >= kEpochRing) return epoch_ready_last_;
  return epoch_ready_[epoch % kEpochRing];
}

bool cache_system::async_writeback_round(bool opportunistic) {
  ITYR_CHECK(!dirty_blocks_.empty());
  std::size_t round_bytes = 0;
  for (mem_block* mb : dirty_blocks_) round_bytes += mb->dirty.size();

  drain_wb_inflight();
  if (wb_inflight_bytes_ + round_bytes > wb_max_inflight_) {
    // Over the in-flight budget. An opportunistic (idle-time) round just
    // bails and retries at the next backoff; a real fence stalls until
    // enough older rounds complete — bounded, never dropped.
    if (opportunistic) return false;
    const double stall_from = eng_.now();
    while (wb_inflight_bytes_ + round_bytes > wb_max_inflight_ &&
           wb_inflight_head_ < wb_inflight_.size()) {
      rma_.net().wait_until(wb_inflight_[wb_inflight_head_].ready_at);
      drain_wb_inflight();
    }
    st_.release_stall_s += eng_.now() - stall_from;
  }

  const double t_issue = eng_.now_precise();
  if (trace_ != nullptr) trace_->span_begin(rank_, t_issue, "Write Back (async)");
  wb_segs_.clear();
  for (mem_block* mb : dirty_blocks_) {
    for (const auto& iv : mb->dirty.to_vector()) {
      wb_segs_.push_back({mb->home.win, mb->home.rank, mb->home.pool_off + iv.begin,
                          cache_slot_ptr(*mb) + iv.begin, iv.size()});
      st_.written_back_bytes += iv.size();
    }
    mb->dirty.clear();
    mb->in_dirty_list = false;
  }
  dirty_blocks_.clear();
  const double done = std::max(issue_segs(wb_segs_, /*is_put=*/true), eng_.now());

  // The epoch word advances at issue; visibility is what the ready_at ring
  // models. Acquirers that observe the new epoch wait until `done` via a
  // targeted wait instead of this releaser flushing.
  const std::uint64_t epoch = epoch_words()[0] + 1;
  record_epoch_ready(epoch, done);
  vis_watermark_ = std::max(vis_watermark_, done);
  wb_inflight_.push_back({done, round_bytes});
  wb_inflight_bytes_ += round_bytes;
  st_.epochs_in_flight =
      std::max<std::uint64_t>(st_.epochs_in_flight, wb_inflight_.size() - wb_inflight_head_);
  epoch_words()[0] = epoch;
  st_.releases++;
  st_.async_wb_rounds++;
  if (trace_ != nullptr) {
    trace_->span_end(rank_, eng_.now_precise(), "Write Back (async)");
    // One flow arrow per round: issue -> modelled completion, both on this
    // rank's track (tools/trace_lint pairs them with the span count).
    trace_->flow(rank_, t_issue, rank_, std::max(done, t_issue), "writeback");
  }
  return true;
}

void cache_system::idle_flush() {
  if (!async_release_) return;
  drain_wb_inflight();
  if (dirty_blocks_.empty()) return;
  std::size_t round_bytes = 0;
  for (mem_block* mb : dirty_blocks_) round_bytes += mb->dirty.size();
  if (async_writeback_round(/*opportunistic=*/true)) {
    st_.idle_flush_bytes += round_bytes;
  }
}

void cache_system::wait_visibility(double w) {
  if (!async_release_ || w <= 0) return;
  rma_.net().wait_until(w);
  vis_watermark_ = std::max(vis_watermark_, w);
}

void cache_system::acquire_watermark(double w) {
  ITYR_CHECK(eng_.my_rank() == rank_);
  ITYR_CHECK(!has_dirty());
  wait_visibility(w);
  invalidate_all();
}

void cache_system::invalidate_all() {
  for (auto& [id, mb] : cache_blocks_) {
    // Self-invalidation must not happen while data is checked out: checkouts
    // must be checked in before any point where threads can migrate
    // (Section 3.3).
    ITYR_CHECK(mb->ref_count == 0);
    ITYR_CHECK(mb->dirty.empty());
    drop_prefetched(*mb);
    mb->valid.clear();
    mb->fully_valid = false;
  }
  // Memoized cache blocks just lost all their data; drop every memo (home
  // entries too — an acquire is rare enough that refilling is cheap).
  purge_front_all();
  // Streams were tracking a working set that a sync point just cut off;
  // start detection afresh rather than prefetching across the fence.
  for (stream& s : streams_) s = {};
  st_.acquires++;
}

// ---------------------------------------------------------------------------
// Prefetcher (ITYR_PREFETCH): stream detection + nonblocking fetch pipeline
// ---------------------------------------------------------------------------

void cache_system::consume_prefetch(mem_block& mb, common::interval span, bool is_write) {
  if (mb.prefetched.overlaps(span)) {
    std::uint64_t bytes = 0;
    for (const auto& iv : mb.prefetched.overlapping(span)) bytes += iv.size();
    if (is_write) {
      st_.prefetch_wasted_bytes += bytes;
    } else {
      st_.prefetch_useful_bytes += bytes;
    }
    mb.prefetched.subtract(span);
  }
  if (mb.pf_segs.empty()) return;
  const double now = eng_.now_precise();
  for (auto it = mb.pf_segs.begin(); it != mb.pf_segs.end();) {
    if (intersect(it->iv, span).empty()) {
      ++it;
      continue;
    }
    // The consumer (or overwriter) must wait out this segment's modelled
    // completion; the checkout tail waits once for the round's maximum.
    pf_wait_ = std::max(pf_wait_, it->ready_at);
    if (is_write && !(span.begin <= it->iv.begin && it->iv.end <= span.end)) {
      // Partial overwrite: the rest of the segment may still be read later;
      // keep it (its terminator comes from that read, or from eviction).
      ++it;
      continue;
    }
    if (trace_ != nullptr) {
      trace_->instant(rank_, now, is_write ? "prefetch evict" : "prefetch consume");
    }
    it = mb.pf_segs.erase(it);
  }
}

void cache_system::drop_prefetched(mem_block& mb) {
  if (!mb.prefetched.empty()) {
    st_.prefetch_wasted_bytes += mb.prefetched.size();
    mb.prefetched.clear();
  }
  if (!mb.pf_segs.empty()) {
    if (trace_ != nullptr) {
      const double now = eng_.now_precise();
      for (std::size_t i = 0; i < mb.pf_segs.size(); i++) {
        trace_->instant(rank_, now, "prefetch evict");
      }
    }
    mb.pf_segs.clear();
  }
}

void cache_system::feed_stream(std::int64_t a, std::int64_t b, bool was_miss) {
  const auto depth = static_cast<std::int64_t>(prefetch_depth_);
  // Confirmed streams first. Matching is tolerant up to `depth` sub-blocks
  // ahead of the expected position: once prefetched blocks become fully
  // valid the front table serves them without reaching this detector, so
  // the next slow-path visit can land anywhere inside the issued window.
  for (stream& s : streams_) {
    if (!s.live || s.dir == 0) continue;
    if (s.dir > 0 && a >= s.next && a <= s.next + depth) {
      s.next = std::max(s.next, b + 1);
      if (s.issued_until < s.next) s.issued_until = s.next;
      // Top up with hysteresis: refill once the lead shrinks to half.
      if (s.issued_until - s.next < (depth + 1) / 2) issue_stream(s);
      return;
    }
    if (s.dir < 0 && b <= s.next && b >= s.next - depth) {
      s.next = std::min(s.next, a - 1);
      if (s.issued_until > s.next) s.issued_until = s.next;
      if (s.next - s.issued_until < (depth + 1) / 2) issue_stream(s);
      return;
    }
  }
  // Unconfirmed streams: the second sequential touch confirms a direction.
  for (stream& s : streams_) {
    if (!s.live || s.dir != 0) continue;
    if (a >= s.next_fwd && a <= s.next_fwd + depth) {
      s.dir = +1;
      s.next = b + 1;
      s.issued_until = s.next;
      issue_stream(s);
      return;
    }
    if (b <= s.next_bwd && b >= s.next_bwd - depth) {
      s.dir = -1;
      s.next = a - 1;
      s.issued_until = s.next;
      issue_stream(s);
      return;
    }
  }
  // No stream matched: a demand miss seeds a new (unconfirmed) candidate.
  if (!was_miss) return;
  stream& s = streams_[stream_rr_++ % kNStreams];
  s = {};
  s.live = true;
  s.next_fwd = b + 1;
  s.next_bwd = a - 1;
}

void cache_system::issue_stream(stream& s) {
  const auto depth = static_cast<std::int64_t>(prefetch_depth_);
  if (s.dir > 0) {
    const std::int64_t target = s.next + depth;
    while (s.issued_until < target) {
      const pf_result r = prefetch_sub_block(s.issued_until);
      if (r == pf_result::dead) {
        s = {};
        return;
      }
      if (r == pf_result::stall) return;  // retried at the next advance
      s.issued_until++;
    }
  } else {
    const std::int64_t target = s.next - depth;
    while (s.issued_until > target) {
      const pf_result r = prefetch_sub_block(s.issued_until);
      if (r == pf_result::dead) {
        s = {};
        return;
      }
      if (r == pf_result::stall) return;
      s.issued_until--;
    }
  }
}

cache_system::pf_result cache_system::prefetch_sub_block(std::int64_t sub) {
  if (sub < 0) return pf_result::dead;
  const std::uint64_t voff = static_cast<std::uint64_t>(sub) * sub_block_size_;
  if (voff >= heap_.total_size()) return pf_result::dead;
  const std::uint64_t mb_id = voff / block_size_;
  global_heap::home_loc home;
  // Stop at unallocated territory: running past the end of an allocation is
  // how most streams die.
  if (!heap_.try_locate_block(mb_id, home)) return pf_result::dead;
  // Home data is already authoritative; the stream just passes through.
  if (home.rank == rank_ || eng_.same_node(home.rank, rank_)) return pf_result::ok;

  const double now = eng_.now();
  // Drain the modelled in-flight FIFO: transfers whose completion time has
  // passed no longer occupy the budget.
  while (inflight_head_ < inflight_.size() && inflight_[inflight_head_].ready_at <= now) {
    inflight_bytes_ -= inflight_[inflight_head_].bytes;
    inflight_head_++;
  }
  if (inflight_head_ == inflight_.size()) {
    inflight_.clear();
    inflight_head_ = 0;
  }

  const std::uint64_t block_base = mb_id * block_size_;
  const common::interval sub_iv{voff - block_base, voff - block_base + sub_block_size_};

  mem_block* mb;
  auto it = cache_blocks_.find(mb_id);
  if (it != cache_blocks_.end()) {
    mb = it->second.get();  // no LRU touch: speculation must not look like use
  } else {
    // Gentle allocation only: a free slot or a clean unpinned victim. No
    // write-back rounds and no too-much-checkout from a speculative path.
    if (free_slots_.empty() && !try_evict_cache_block()) return pf_result::stall;
    const std::size_t slot = free_slots_.back();
    free_slots_.pop_back();
    auto owned = std::make_unique<mem_block>();
    owned->k = mem_block::kind::cache;
    owned->mb_id = mb_id;
    owned->home = home;
    owned->slot = slot;
    mb = owned.get();
    cache_blocks_.emplace(mb_id, std::move(owned));
    // Mid-point insertion: a useless prefetch is evicted before any
    // demand-fetched block, a useful one has half the list to live in.
    cache_lru_.insert_middle(*mb);
  }

  if (mb->valid.contains(sub_iv)) return pf_result::ok;
  for (const auto& miss : mb->valid.missing(sub_iv)) {
    if (inflight_bytes_ + miss.size() > prefetch_max_inflight_) return pf_result::stall;
    const double done = rma_.get_nb(*home.win, home.rank, home.pool_off + miss.begin,
                                    cache_slot_ptr(*mb) + miss.begin, miss.size());
    mb->valid.add(miss);
    mb->prefetched.add(miss);
    mb->pf_segs.push_back({miss, done});
    inflight_.push_back({done, miss.size()});
    inflight_bytes_ += miss.size();
    st_.prefetch_issued++;
    st_.prefetch_issued_bytes += miss.size();
    if (trace_ != nullptr) trace_->flow(rank_, now, rank_, done, "prefetch");
  }
  update_fully_valid(*mb);
  return pf_result::ok;
}

void cache_system::release() {
  ITYR_CHECK(eng_.my_rank() == rank_);
  writeback_all();
}

release_handler cache_system::release_lazy() {
  ITYR_CHECK(eng_.my_rank() == rank_);
  if (!has_dirty()) return {};  // Unneeded
  return {rank_, epoch_words()[0] + 1};
}

void cache_system::acquire() {
  ITYR_CHECK(eng_.my_rank() == rank_);
  ITYR_CHECK(!has_dirty());
  invalidate_all();
}

void cache_system::acquire(release_handler h) {
  ITYR_CHECK(eng_.my_rank() == rank_);
  if (h.needed()) {
    if (h.rank == rank_) {
      // Degenerate case: the handler refers to our own cache; a local
      // write-back round satisfies it directly.
      if (epoch_words()[0] < h.epoch) writeback_all();
      if (async_release_) {
        // The round was issued, not flushed: wait out its modelled
        // completion before trusting re-fetched home data.
        const double ready = release_ready_at(h.epoch);
        wait_visibility(ready);
        if (trace_ != nullptr && ready > 0) {
          trace_->flow(rank_, ready, rank_, eng_.now_precise(), "wb acquire");
        }
      }
    } else {
      ITYR_CHECK(!has_dirty());
      bool first = true;
      while (rma_.get_value(ctrl_win_, h.rank, 0) < h.epoch) {
        if (first) {
          // Ask the releaser (once) to perform its next write-back round.
          // Multiple acquirers race benignly: only the max epoch matters,
          // hence the remote atomic max (Fig. 6 lines 51-53).
          rma_.atomic_max(ctrl_win_, h.rank, sizeof(std::uint64_t), h.epoch);
          first = false;
          st_.lazy_release_waits++;
        }
        eng_.advance(eng_.opts().poll_interval);
      }
      if (async_release_ && peer_ready_) {
        // The releaser advanced its epoch at issue time; its round's data is
        // only visible from ready_at on. Wait there (targeted MPI_Wait
        // analog), not a full flush — unrelated in-flight traffic keeps
        // flying. The flow arrow starts at the releaser's round completion,
        // so trace_lint's f>=s check pins "no acquire lands early" down.
        const double ready = peer_ready_(h.rank, h.epoch);
        wait_visibility(ready);
        if (trace_ != nullptr && ready > 0) {
          trace_->flow(h.rank, ready, rank_, eng_.now_precise(), "wb acquire");
        }
      }
    }
  }
  invalidate_all();
}

void cache_system::poll() {
  std::uint64_t* ew = epoch_words();
  if (ew[0] < ew[1]) {
    // A thief requested a write-back of the data it stole a continuation
    // for (DoReleaseIfRequested, Fig. 6 lines 55-58).
    if (has_dirty()) {
      writeback_all();  // bumps the epoch (at issue time in async mode)
    } else {
      // The dirty data the handler covered was already flushed by an
      // eviction or another fence; still advance the epoch so the waiting
      // acquirer makes progress.
      ew[0]++;
      st_.releases++;
      if (async_release_) {
        // No data rides this advance, but earlier rounds might still be in
        // flight; the running max keeps the ring monotone and conservative.
        record_epoch_ready(ew[0], eng_.now());
      }
    }
  }
}

}  // namespace ityr::pgas
