#pragma once

#include <cstdint>

namespace ityr::common {

/// Identity of one admitted job in multi-job serving mode (ITYR_SERVE).
///
/// Job ids are dense and assigned by the job manager in admission order,
/// starting at 1. Id 0 is reserved for "no job": the admission driver, the
/// single root task of a non-serving run, and every SPMD-mode operation run
/// untagged, so all job plumbing degenerates to a constant in single-job
/// mode (the off-path differential tests pin this down).
using job_id_t = std::uint32_t;

inline constexpr job_id_t no_job = 0;

}  // namespace ityr::common
