#pragma once

#include <cstddef>

#include "itoyori/common/error.hpp"

namespace ityr::common {

/// Hook to embed in objects managed by an lru_list.
struct lru_hook {
  lru_hook* prev = nullptr;
  lru_hook* next = nullptr;

  bool linked() const { return prev != nullptr; }
};

/// Intrusive doubly-linked LRU list (paper Section 4.3.1).
///
/// Head = least recently used, tail = most recently used. The block managers
/// move a block to the tail on every GetMemBlock() and scan from the head on
/// eviction. Intrusive linkage keeps touch() allocation-free and O(1), which
/// matters because it sits on the checkout fast path.
///
/// `T` must derive from (or contain as first member) lru_hook; the list
/// stores hooks and the owner converts back via static_cast.
class lru_list {
public:
  lru_list() {
    sentinel_.prev = &sentinel_;
    sentinel_.next = &sentinel_;
  }

  lru_list(const lru_list&) = delete;
  lru_list& operator=(const lru_list&) = delete;

  bool empty() const { return sentinel_.next == &sentinel_; }
  std::size_t size() const { return size_; }

  /// Insert as most-recently-used.
  void push_back(lru_hook& h) {
    ITYR_CHECK(!h.linked());
    h.prev                = sentinel_.prev;
    h.next                = &sentinel_;
    sentinel_.prev->next  = &h;
    sentinel_.prev        = &h;
    size_++;
  }

  void erase(lru_hook& h) {
    ITYR_CHECK(h.linked());
    h.prev->next = h.next;
    h.next->prev = h.prev;
    h.prev = h.next = nullptr;
    size_--;
  }

  /// Mark as most-recently-used.
  void touch(lru_hook& h) {
    erase(h);
    push_back(h);
  }

  /// Insert at the list's mid-point (size/2 hops from the LRU end) instead
  /// of at MRU. Speculatively filled blocks (prefetch) use this so that a
  /// useless prefetch is evicted before any demand-fetched block, while a
  /// useful one still has half the LRU distance to be consumed in.
  void insert_middle(lru_hook& h) {
    ITYR_CHECK(!h.linked());
    lru_hook* pos = sentinel_.next;  // == &sentinel_ when empty
    for (std::size_t i = size_ / 2; i > 0; i--) pos = pos->next;
    h.prev          = pos->prev;
    h.next          = pos;
    pos->prev->next = &h;
    pos->prev       = &h;
    size_++;
  }

  /// Least-recently-used element, or nullptr if empty.
  lru_hook* lru() const { return empty() ? nullptr : sentinel_.next; }

  /// Iterate from LRU to MRU; `f(hook&)` returns true to stop.
  /// Returns the hook that stopped the scan, or nullptr.
  template <typename F>
  lru_hook* find_from_lru(F&& f) const {
    for (lru_hook* h = sentinel_.next; h != &sentinel_; h = h->next) {
      if (f(*h)) return h;
    }
    return nullptr;
  }

private:
  lru_hook sentinel_;
  std::size_t size_ = 0;
};

}  // namespace ityr::common
