#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "itoyori/common/error.hpp"
#include "itoyori/common/trace.hpp"

namespace ityr::common {

/// Profiling categories matching the paper's Fig. 9 breakdown, plus a few
/// runtime-internal ones.
enum class prof_event : std::uint8_t {
  get,            ///< single-element global loads (e.g. binary search)
  put,            ///< single-element global stores
  checkout,
  checkin,
  release,        ///< normal releases (Release #2/#3)
  release_lazy,   ///< delayed write-backs requested by thieves (Release #1)
  acquire,        ///< includes lazy-release wait time
  steal,          ///< steal attempts and migrations
  spmd,           ///< SPMD-mode collective work (alloc, barrier, init)
  serial_a,       ///< app-defined serial kernel A (e.g. Serial Quicksort)
  serial_b,       ///< app-defined serial kernel B (e.g. Serial Merge)
  serial_c,       ///< app-defined serial kernel C
  count_
};

inline constexpr std::size_t n_prof_events = static_cast<std::size_t>(prof_event::count_);

inline const char* to_string(prof_event e) {
  switch (e) {
    case prof_event::get:          return "Get";
    case prof_event::put:          return "Put";
    case prof_event::checkout:     return "Checkout";
    case prof_event::checkin:      return "Checkin";
    case prof_event::release:      return "Release";
    case prof_event::release_lazy: return "Lazy Release";
    case prof_event::acquire:      return "Acquire";
    case prof_event::steal:        return "Steal";
    case prof_event::spmd:         return "SPMD";
    case prof_event::serial_a:     return "Serial A";
    case prof_event::serial_b:     return "Serial B";
    case prof_event::serial_c:     return "Serial C";
    case prof_event::count_:       break;
  }
  return "?";
}

/// Nested-scope profiler over virtual time (the basis of Fig. 9).
///
/// Each rank has its own scope stack; intervals are attributed exclusively
/// to the innermost scope (a child scope's duration is subtracted from its
/// parent). Alongside accumulated self-time, each (rank, event) records its
/// invocation count and maximum inclusive duration. Time and rank come from
/// injected sources so this layer stays independent of the simulator.
///
/// When a tracer is attached, every profiled scope is mirrored as a B/E
/// span on the owning rank's trace track, so enabling ITYR_TRACE gives a
/// full timeline of checkout/release/acquire/steal/SPMD/serial-kernel
/// activity without separate instrumentation.
class profiler {
public:
  /// Reconfiguring a profiler that still holds state (open scopes or
  /// accumulated data) would silently discard it; that is an API error.
  void configure(int n_ranks, std::function<double()> time_source,
                 std::function<int()> rank_source) {
    if (live()) {
      throw api_error(
          "profiler::configure() called on a live profiler "
          "(open scopes or unreset accumulated data)");
    }
    acc_.assign(static_cast<std::size_t>(n_ranks), {});
    counts_.assign(static_cast<std::size_t>(n_ranks), {});
    max_.assign(static_cast<std::size_t>(n_ranks), {});
    stacks_.assign(static_cast<std::size_t>(n_ranks), {});
    time_ = std::move(time_source);
    rank_ = std::move(rank_source);
  }

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Mirror scopes into `t`'s per-rank trace tracks (nullptr detaches).
  void set_tracer(tracer* t) { trace_ = t; }

  /// Whether begin()/end() currently record anything: profiling enabled or
  /// an attached tracer collecting span events.
  bool active() const { return enabled_ || (trace_ != nullptr && trace_->enabled()); }

  void begin(prof_event e) {
    if (!active()) return;
    auto& st = stacks_[static_cast<std::size_t>(rank_())];
    const double now = time_();
    st.push_back({e, now, 0.0});
    if (trace_ != nullptr) trace_->span_begin(rank_(), now, to_string(e));
  }

  void end(prof_event e) {
    if (!active()) return;
    const auto r = static_cast<std::size_t>(rank_());
    auto& st = stacks_[r];
    ITYR_CHECK(!st.empty() && st.back().e == e);
    const double now = time_();
    const double total = now - st.back().t0;
    const double self = total - st.back().child_time;
    const auto ei = static_cast<std::size_t>(e);
    acc_[r][ei] += self > 0 ? self : 0;
    counts_[r][ei]++;
    if (total > max_[r][ei]) max_[r][ei] = total;
    st.pop_back();
    if (!st.empty()) st.back().child_time += total;
    if (trace_ != nullptr) trace_->span_end(static_cast<int>(r), now, to_string(e));
  }

  /// RAII scope.
  class scope {
  public:
    scope(profiler& p, prof_event e) : p_(p), e_(e) { p_.begin(e_); }
    ~scope() { p_.end(e_); }
    scope(const scope&) = delete;
    scope& operator=(const scope&) = delete;

  private:
    profiler& p_;
    prof_event e_;
  };

  /// RAII scope over a possibly-null profiler (for layers where profiling
  /// is optional).
  class maybe_scope {
  public:
    maybe_scope(profiler* p, prof_event e) : p_(p != nullptr && p->active() ? p : nullptr), e_(e) {
      if (p_ != nullptr) p_->begin(e_);
    }
    ~maybe_scope() {
      if (p_ != nullptr) p_->end(e_);
    }
    maybe_scope(const maybe_scope&) = delete;
    maybe_scope& operator=(const maybe_scope&) = delete;

  private:
    profiler* p_;
    prof_event e_;
  };

  /// Per-rank accumulated self-time. Deliberately not checked against open
  /// scopes: the metrics sampler reads mid-run while other ranks legally
  /// hold open SPMD scopes across barrier suspension.
  double accumulated(int rank, prof_event e) const {
    return acc_[static_cast<std::size_t>(rank)][static_cast<std::size_t>(e)];
  }
  std::uint64_t count_of(int rank, prof_event e) const {
    return counts_[static_cast<std::size_t>(rank)][static_cast<std::size_t>(e)];
  }
  /// Maximum inclusive (wall) duration of a single scope.
  double max_duration_of(int rank, prof_event e) const {
    return max_[static_cast<std::size_t>(rank)][static_cast<std::size_t>(e)];
  }

  /// Aggregate reads assert that no scope is still open anywhere — a
  /// missing end() would otherwise surface as silently-low totals.
  double total(prof_event e) const {
    check_stacks_empty();
    double t = 0;
    for (const auto& a : acc_) t += a[static_cast<std::size_t>(e)];
    return t;
  }
  std::uint64_t total_count(prof_event e) const {
    check_stacks_empty();
    std::uint64_t c = 0;
    for (const auto& a : counts_) c += a[static_cast<std::size_t>(e)];
    return c;
  }
  double max_duration(prof_event e) const {
    check_stacks_empty();
    double m = 0;
    for (const auto& a : max_) {
      if (a[static_cast<std::size_t>(e)] > m) m = a[static_cast<std::size_t>(e)];
    }
    return m;
  }
  double total_all_events() const {
    check_stacks_empty();
    double t = 0;
    for (const auto& a : acc_) {
      for (std::size_t i = 0; i < n_prof_events; i++) t += a[i];
    }
    return t;
  }

  /// Zero the accumulators (open scopes, if any, survive and attribute
  /// their self-time from their original begin on their eventual end()).
  void reset() {
    for (auto& a : acc_) a.fill(0.0);
    for (auto& c : counts_) c.fill(0);
    for (auto& m : max_) m.fill(0.0);
  }

private:
  struct frame {
    prof_event e;
    double t0;
    double child_time;
  };

  bool live() const {
    for (const auto& st : stacks_) {
      if (!st.empty()) return true;
    }
    for (const auto& a : acc_) {
      for (const double v : a) {
        if (v != 0) return true;
      }
    }
    for (const auto& c : counts_) {
      for (const std::uint64_t v : c) {
        if (v != 0) return true;
      }
    }
    return false;
  }

  void check_stacks_empty() const {
    for (const auto& st : stacks_) ITYR_CHECK(st.empty());
  }

  bool enabled_ = false;
  tracer* trace_ = nullptr;
  std::function<double()> time_;
  std::function<int()> rank_;
  std::vector<std::array<double, n_prof_events>> acc_;
  std::vector<std::array<std::uint64_t, n_prof_events>> counts_;
  std::vector<std::array<double, n_prof_events>> max_;
  std::vector<std::vector<frame>> stacks_;
};

}  // namespace ityr::common
