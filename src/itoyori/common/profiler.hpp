#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "itoyori/common/error.hpp"

namespace ityr::common {

/// Profiling categories matching the paper's Fig. 9 breakdown, plus a few
/// runtime-internal ones.
enum class prof_event : std::uint8_t {
  get,            ///< single-element global loads (e.g. binary search)
  put,            ///< single-element global stores
  checkout,
  checkin,
  release,        ///< normal releases (Release #2/#3)
  release_lazy,   ///< delayed write-backs requested by thieves (Release #1)
  acquire,        ///< includes lazy-release wait time
  steal,          ///< steal attempts and migrations
  spmd,           ///< SPMD-mode collective work (alloc, barrier, init)
  serial_a,       ///< app-defined serial kernel A (e.g. Serial Quicksort)
  serial_b,       ///< app-defined serial kernel B (e.g. Serial Merge)
  serial_c,       ///< app-defined serial kernel C
  count_
};

inline constexpr std::size_t n_prof_events = static_cast<std::size_t>(prof_event::count_);

inline const char* to_string(prof_event e) {
  switch (e) {
    case prof_event::get:          return "Get";
    case prof_event::put:          return "Put";
    case prof_event::checkout:     return "Checkout";
    case prof_event::checkin:      return "Checkin";
    case prof_event::release:      return "Release";
    case prof_event::release_lazy: return "Lazy Release";
    case prof_event::acquire:      return "Acquire";
    case prof_event::steal:        return "Steal";
    case prof_event::spmd:         return "SPMD";
    case prof_event::serial_a:     return "Serial A";
    case prof_event::serial_b:     return "Serial B";
    case prof_event::serial_c:     return "Serial C";
    case prof_event::count_:       break;
  }
  return "?";
}

/// Nested-scope profiler over virtual time (the basis of Fig. 9).
///
/// Each rank has its own scope stack; intervals are attributed exclusively
/// to the innermost scope (a child scope's duration is subtracted from its
/// parent). Time and rank come from injected sources so this layer stays
/// independent of the simulator.
class profiler {
public:
  void configure(int n_ranks, std::function<double()> time_source,
                 std::function<int()> rank_source) {
    acc_.assign(static_cast<std::size_t>(n_ranks), {});
    stacks_.assign(static_cast<std::size_t>(n_ranks), {});
    time_ = std::move(time_source);
    rank_ = std::move(rank_source);
  }

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void begin(prof_event e) {
    if (!enabled_) return;
    auto& st = stacks_[static_cast<std::size_t>(rank_())];
    st.push_back({e, time_(), 0.0});
  }

  void end(prof_event e) {
    if (!enabled_) return;
    const auto r = static_cast<std::size_t>(rank_());
    auto& st = stacks_[r];
    ITYR_CHECK(!st.empty() && st.back().e == e);
    const double now = time_();
    const double total = now - st.back().t0;
    const double self = total - st.back().child_time;
    acc_[r][static_cast<std::size_t>(e)] += self > 0 ? self : 0;
    st.pop_back();
    if (!st.empty()) st.back().child_time += total;
  }

  /// RAII scope.
  class scope {
  public:
    scope(profiler& p, prof_event e) : p_(p), e_(e) { p_.begin(e_); }
    ~scope() { p_.end(e_); }
    scope(const scope&) = delete;
    scope& operator=(const scope&) = delete;

  private:
    profiler& p_;
    prof_event e_;
  };

  /// RAII scope over a possibly-null profiler (for layers where profiling
  /// is optional).
  class maybe_scope {
  public:
    maybe_scope(profiler* p, prof_event e) : p_(p != nullptr && p->enabled() ? p : nullptr), e_(e) {
      if (p_ != nullptr) p_->begin(e_);
    }
    ~maybe_scope() {
      if (p_ != nullptr) p_->end(e_);
    }
    maybe_scope(const maybe_scope&) = delete;
    maybe_scope& operator=(const maybe_scope&) = delete;

  private:
    profiler* p_;
    prof_event e_;
  };

  double accumulated(int rank, prof_event e) const {
    return acc_[static_cast<std::size_t>(rank)][static_cast<std::size_t>(e)];
  }
  double total(prof_event e) const {
    double t = 0;
    for (const auto& a : acc_) t += a[static_cast<std::size_t>(e)];
    return t;
  }
  double total_all_events() const {
    double t = 0;
    for (std::size_t i = 0; i < n_prof_events; i++) t += total(static_cast<prof_event>(i));
    return t;
  }

  void reset() {
    for (auto& a : acc_) a.fill(0.0);
  }

private:
  struct frame {
    prof_event e;
    double t0;
    double child_time;
  };

  bool enabled_ = false;
  std::function<double()> time_;
  std::function<int()> rank_;
  std::vector<std::array<double, n_prof_events>> acc_;
  std::vector<std::vector<frame>> stacks_;
};

}  // namespace ityr::common
