#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace ityr::common {

/// Minimal SHA-1 implementation (FIPS 180-1).
///
/// The UTS benchmark (Olivier et al., LCPC '06) derives the shape of its
/// unbalanced tree from SHA-1 of (parent digest, child index); reproducing
/// UTS-Mem therefore needs a bit-exact SHA-1. This is a from-scratch,
/// dependency-free implementation; correctness is pinned by the FIPS test
/// vectors in tests/common/sha1_test.cpp.
class sha1 {
public:
  static constexpr std::size_t digest_size = 20;
  using digest_type = std::array<std::uint8_t, digest_size>;

  sha1() { reset(); }

  void reset();
  void update(const void* data, std::size_t len);
  digest_type finish();

  /// One-shot convenience.
  static digest_type hash(const void* data, std::size_t len) {
    sha1 h;
    h.update(data, len);
    return h.finish();
  }

private:
  void process_block(const std::uint8_t* block);

  std::uint32_t h_[5]{};
  std::uint64_t total_len_ = 0;
  std::uint8_t buf_[64]{};
  std::size_t buf_len_ = 0;
};

}  // namespace ityr::common
