#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "itoyori/common/error.hpp"

namespace ityr::common {

/// Mergeable log2-bucketed histogram for latency/size distributions
/// (docs/observability.md). Bucket i >= 1 covers (min_value * 2^(i-1),
/// min_value * 2^i]; bucket 0 absorbs everything <= min_value and the last
/// bucket everything beyond the range. Counts are exact integers, so merging
/// is an elementwise add — associative, commutative, and deterministic
/// across rank orders — which is what lets O(1000) per-rank histograms
/// collapse into one at finalize without losing the percentile estimates.
///
/// Percentiles interpolate geometrically inside the target bucket (a log
/// bucket is "uniform in log space"), so estimates are stable under merge
/// and off by at most one bucket width (2x with the default geometry).
class log_histogram {
public:
  /// `n_buckets` spans [4, 512] (ITYR_HIST_BUCKETS); 48 buckets over a 1 ns
  /// floor cover ~77 hours, comfortably past any simulated duration.
  explicit log_histogram(std::size_t n_buckets = 48, double min_value = 1.0e-9) {
    configure(n_buckets, min_value);
  }

  /// Re-geometry (drops all counts). Used by owners that are constructed
  /// before options are known.
  void configure(std::size_t n_buckets, double min_value) {
    if (n_buckets < 4) n_buckets = 4;
    if (n_buckets > 512) n_buckets = 512;
    if (!(min_value > 0)) min_value = 1.0e-9;
    min_value_ = min_value;
    counts_.assign(n_buckets, 0);
    total_ = 0;
  }

  std::size_t n_buckets() const { return counts_.size(); }
  double min_value() const { return min_value_; }
  std::uint64_t count() const { return total_; }
  std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }
  const std::vector<std::uint64_t>& buckets() const { return counts_; }

  void record(double v) {
    counts_[bucket_of(v)]++;
    total_++;
  }

  /// Lower/upper edge of bucket i (bucket 0 is (0, min_value]).
  double bucket_lo(std::size_t i) const {
    return i == 0 ? 0.0 : min_value_ * std::ldexp(1.0, static_cast<int>(i) - 1);
  }
  double bucket_hi(std::size_t i) const {
    return min_value_ * std::ldexp(1.0, static_cast<int>(i));
  }

  /// Elementwise count add; geometries must match (callers merge histograms
  /// of one metric, configured identically on every rank).
  void merge(const log_histogram& o) {
    ITYR_CHECK(o.counts_.size() == counts_.size());
    ITYR_CHECK(o.min_value_ == min_value_);
    for (std::size_t i = 0; i < counts_.size(); i++) counts_[i] += o.counts_[i];
    total_ += o.total_;
  }

  /// Elementwise count subtract (for snapshot deltas; counts are monotone).
  void subtract(const log_histogram& o) {
    ITYR_CHECK(o.counts_.size() == counts_.size());
    for (std::size_t i = 0; i < counts_.size(); i++) {
      counts_[i] = counts_[i] >= o.counts_[i] ? counts_[i] - o.counts_[i] : 0;
    }
    total_ = total_ >= o.total_ ? total_ - o.total_ : 0;
  }

  /// p in [0, 100]. Returns 0 for an empty histogram. Deterministic: depends
  /// only on the (integer) counts and the geometry.
  double percentile(double p) const {
    if (total_ == 0) return 0.0;
    if (p < 0) p = 0;
    if (p > 100) p = 100;
    // Rank of the target sample, 1-based, ceil like classic nearest-rank.
    const double target = p / 100.0 * static_cast<double>(total_);
    std::uint64_t need = static_cast<std::uint64_t>(std::ceil(target));
    if (need == 0) need = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); i++) {
      if (counts_[i] == 0) continue;
      if (seen + counts_[i] >= need) {
        // Geometric interpolation within the bucket: fraction f of the
        // bucket's samples below the target maps to lo * 2^f.
        const double f = static_cast<double>(need - seen) / static_cast<double>(counts_[i]);
        if (i == 0) return min_value_ * f;  // degenerate linear floor bucket
        return bucket_lo(i) * std::exp2(f);
      }
      seen += counts_[i];
    }
    return bucket_hi(counts_.size() - 1);
  }

private:
  std::size_t bucket_of(double v) const {
    if (!(v > min_value_)) return 0;  // also catches NaN/negatives
    // frexp(x) = m * 2^e with m in [0.5, 1): values in (2^(e-1), 2^e] of
    // min_value land in bucket e — one exact integer exponent read, no log().
    int e = 0;
    const double m = std::frexp(v / min_value_, &e);
    // Exact powers of two belong to the lower bucket (interval is lo-open).
    if (m == 0.5) e--;
    if (e < 1) return 1;
    const auto i = static_cast<std::size_t>(e);
    return i < counts_.size() ? i : counts_.size() - 1;
  }

  double min_value_ = 1.0e-9;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace ityr::common
