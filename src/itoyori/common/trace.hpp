#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "itoyori/common/error.hpp"
#include "itoyori/common/job.hpp"

namespace ityr::common {

/// Per-rank virtual-time event tracer dumping Chrome/Perfetto trace_events
/// JSON (the "observability layer" counterpart of the nested-scope
/// profiler: the profiler aggregates, the tracer keeps the timeline).
///
/// Model: one trace "process" per simulated node, one "thread" per rank.
/// Timestamps are virtual seconds from the DES clock (dumped as
/// microseconds, the unit Perfetto expects). Event kinds mirror the
/// trace_events phases:
///
///  * span_begin/span_end ("B"/"E") — nested duration slices (checkout,
///    release, steal, serial kernels, busy phases, ...),
///  * instant ("i") — point events (evictions, write-back rounds),
///  * flow ("s"/"f") — cross-rank arrows pairing thief and victim of a
///    steal, or issue and completion of an RMA message,
///  * counter ("C") — sampled counter time-series (ITYR_METRICS_SAMPLE_INTERVAL).
///
/// Storage is one bounded ring buffer per rank (`cap` events; oldest events
/// are evicted first and counted in dropped()). Buffers grow lazily, so a
/// large cap costs nothing until events actually arrive. The dump repairs
/// eviction damage: span-end events whose begin was evicted are skipped and
/// spans still open at dump time are closed at their rank's last timestamp,
/// so the emitted JSON always has balanced B/E pairs.
///
/// Event names must be string literals (or otherwise outlive the tracer);
/// they are stored by pointer.
///
/// Determinism: with options::deterministic set, all timestamps derive from
/// the virtual clock, so the same seed and configuration produce a
/// byte-identical dump.
class tracer {
public:
  /// Events per rank retained in the ring buffer; caps outside
  /// [min_cap, max_cap] (e.g. a malformed ITYR_TRACE_CAP read as 0 or as
  /// 2^64-1) are clamped.
  static constexpr std::size_t min_cap = 16;
  static constexpr std::size_t max_cap = std::size_t{1} << 26;

  void configure(int n_ranks, int ranks_per_node, std::size_t cap_per_rank);

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // ---- event recording (rank and virtual time injected by the caller) ----
  void span_begin(int rank, double t, const char* name) {
    if (!enabled_) return;
    push(rank, {event_kind::begin, t, name, 0, 0.0, 0, 0});
  }
  void span_end(int rank, double t, const char* name) {
    if (!enabled_) return;
    push(rank, {event_kind::end, t, name, 0, 0.0, 0, 0});
  }
  /// `job` > 0 annotates the event with its job id ("args":{"job":N});
  /// 0 (the default) emits the historic unannotated form byte-identically.
  /// Job lifecycle instants ("job admit"/"job start"/"job complete") use
  /// this, and validate_trace_json checks that every job-annotated event
  /// nests inside its job's admit->complete window.
  void instant(int rank, double t, const char* name, job_id_t job = no_job) {
    if (!enabled_) return;
    push(rank, {event_kind::instant, t, name, 0, 0.0, 0, 0, job});
  }
  /// Record a cross-rank flow arrow: start on src_rank at t_src, finish on
  /// dst_rank at t_dst (>= t_src). Returns the flow id used for pairing.
  /// `job` > 0 annotates both halves with the job id (steal flows carry the
  /// claimed continuation's job in serving mode).
  std::uint64_t flow(int src_rank, double t_src, int dst_rank, double t_dst, const char* name,
                     job_id_t job = no_job) {
    if (!enabled_) return 0;
    const std::uint64_t id = ++flow_id_;
    push(src_rank, {event_kind::flow_start, t_src, name, id, 0.0, 0, 0, job});
    push(dst_rank, {event_kind::flow_finish, t_dst, name, id, 0.0, 0, 0, job});
    return id;
  }
  /// Like flow(), but annotated for batch steals: the one arrow carries the
  /// batch size plus each endpoint's deque depth before/after the claim,
  /// emitted as "args":{"batch","deque_before","deque_after"} on both
  /// halves. validate_trace_json cross-checks the deltas (src loses `batch`
  /// entries, dst gains `batch - 1` — the triggering entry runs immediately
  /// and never lands on the dst deque).
  std::uint64_t flow_batch(int src_rank, double t_src, int dst_rank, double t_dst,
                           const char* name, std::uint32_t batch,
                           std::uint32_t src_before, std::uint32_t src_after,
                           std::uint32_t dst_before, std::uint32_t dst_after,
                           job_id_t job = no_job) {
    if (!enabled_) return 0;
    const std::uint64_t id = ++flow_id_;
    push(src_rank, {event_kind::flow_start, t_src, name, id, static_cast<double>(batch),
                    src_before, src_after, job});
    push(dst_rank, {event_kind::flow_finish, t_dst, name, id, static_cast<double>(batch),
                    dst_before, dst_after, job});
    return id;
  }
  void counter(int rank, double t, const char* name, double value) {
    if (!enabled_) return;
    push(rank, {event_kind::counter, t, name, 0, value, 0, 0});
  }

  // ---- periodic counter sampling (ITYR_METRICS_SAMPLE_INTERVAL) ----
  /// interval <= 0 (including malformed env values parsed as 0) disables
  /// sampling. The sampler callback is expected to emit counter() events.
  void set_sample_interval(double seconds) { sample_interval_ = seconds; }
  double sample_interval() const { return sample_interval_; }
  void set_sampler(std::function<void(int rank, double now)> fn) { sampler_ = std::move(fn); }

  /// Cheap poll hook (called from the scheduler's poll points): fires the
  /// sampler for `rank` at most once per sample interval of virtual time.
  void poll_sample(int rank, double now) {
    if (!enabled_ || sample_interval_ <= 0 || !sampler_) return;
    auto& next = next_sample_[static_cast<std::size_t>(rank)];
    if (now < next) return;
    next = now + sample_interval_;
    sampler_(rank, now);
  }

  // ---- introspection ----
  int n_ranks() const { return static_cast<int>(rings_.size()); }
  std::size_t n_events(int rank) const { return rings_[static_cast<std::size_t>(rank)].n; }
  std::size_t total_events() const;
  std::uint64_t dropped(int rank) const { return rings_[static_cast<std::size_t>(rank)].dropped; }
  std::uint64_t total_dropped() const;
  void clear();

  // ---- dump ----
  /// Chrome trace_events JSON ({"traceEvents": [...]}); open the file in
  /// https://ui.perfetto.dev or chrome://tracing.
  std::string to_json() const;
  /// Write to_json() to `path`; returns false (with a stderr note) on I/O
  /// failure.
  bool write_json(const std::string& path) const;

private:
  enum class event_kind : std::uint8_t { begin, end, instant, flow_start, flow_finish, counter };

  struct event {
    event_kind k;
    double t;              ///< virtual seconds
    const char* name;      ///< static string
    std::uint64_t id;      ///< flow pairing id
    double value;          ///< counter value; batch size (>0) for batch flows
    std::uint32_t a0 = 0;  ///< batch flows: deque depth before the claim
    std::uint32_t a1 = 0;  ///< batch flows: deque depth after the claim
    job_id_t job = no_job; ///< > 0: event belongs to this serving-mode job
  };

  struct ring {
    std::vector<event> buf;  ///< grows lazily up to cap
    std::size_t head = 0;    ///< oldest event once full
    std::size_t n = 0;
    std::uint64_t dropped = 0;
  };

  void push(int rank, event e) {
    ring& r = rings_[static_cast<std::size_t>(rank)];
    if (r.n < cap_) {
      r.buf.push_back(e);
      r.n++;
    } else {
      r.buf[r.head] = e;
      r.head = (r.head + 1) % cap_;
      r.dropped++;
    }
  }

  bool enabled_ = false;
  int ranks_per_node_ = 1;
  std::size_t cap_ = std::size_t{1} << 20;
  std::vector<ring> rings_;
  std::vector<double> next_sample_;
  std::uint64_t flow_id_ = 0;
  double sample_interval_ = 0;
  std::function<void(int, double)> sampler_;
};

/// Result of validate_trace_json(). `ok` iff the text parses as JSON, has a
/// traceEvents array, every per-(pid,tid) track has balanced and properly
/// nested B/E pairs with non-decreasing timestamps, and every flow id has
/// both its "s" and "f" half.
struct trace_check_result {
  bool ok = false;
  std::string error;           ///< first violation, empty when ok
  std::size_t n_events = 0;    ///< total traceEvents entries (incl. metadata)
  std::size_t n_spans = 0;     ///< completed B/E pairs
  std::size_t n_flows = 0;     ///< paired flows
  std::size_t n_counters = 0;  ///< counter samples
  // Prefetch lifecycle (tools/trace_lint checks that, in a complete trace,
  // every "prefetch" issue flow is terminated by exactly one consume-or-evict
  // instant: n_prefetch_flows == n_prefetch_consumes + n_prefetch_evicts).
  std::size_t n_prefetch_flows = 0;     ///< "prefetch" flow-start events
  std::size_t n_prefetch_consumes = 0;  ///< "prefetch consume" instants
  std::size_t n_prefetch_evicts = 0;    ///< "prefetch evict" instants
  // Async-release lifecycle (tools/trace_lint checks that, in a complete
  // trace, every "Write Back (async)" span is terminated by exactly one
  // "writeback" completion flow, and the generic finish>=start flow check
  // guarantees no "wb acquire" lands before the releaser's ready_at).
  std::size_t n_wb_async_spans = 0;     ///< completed "Write Back (async)" spans
  std::size_t n_writeback_flows = 0;    ///< "writeback" flow-start events
  std::size_t n_wb_acquire_flows = 0;   ///< "wb acquire" flow-start events
  // Steal flows (tools/trace_lint checks that every "steal" flow annotated
  // with batch>1 carries matching deque-depth deltas on both endpoints:
  // victim loses `batch` entries, thief gains `batch - 1`, and both halves
  // agree on the batch size).
  std::size_t n_steal_flows = 0;        ///< "steal" flow-start events
  std::size_t n_batch_steal_flows = 0;  ///< "steal" flow starts with batch > 1
  // Job lifecycle (multi-job serving): every job id seen in a "job start" /
  // "job complete" instant or a job-annotated span/flow must have a "job
  // admit" instant, and every job-annotated event's timestamp must nest
  // inside its job's admit->complete window (tools/trace_lint's serving
  // mode additionally requires at least one admitted job).
  std::size_t n_job_admits = 0;     ///< "job admit" instants
  std::size_t n_job_starts = 0;     ///< "job start" instants
  std::size_t n_job_completes = 0;  ///< "job complete" instants
  std::size_t n_job_annotated = 0;  ///< events carrying a "job" annotation
  std::uint64_t dropped_events = 0;     ///< root "dropped_events" (ring eviction)
};

/// Minimal in-tree checker for Chrome trace JSON (no external dependencies);
/// shared by the trace_lint ctest and the unit tests.
trace_check_result validate_trace_json(const std::string& json_text);

/// Per-rank busy/steal/idle accounting over virtual time: the single source
/// of truth for the idleness metric (paper Table 2) and the capacity term of
/// the Fig. 9 breakdown. The scheduler drives it for fork-join regions; the
/// static (MPI-style) baselines drive it directly from SPMD code.
///
/// Ranks transition between three phases inside a region bracketed by
/// begin_region()/end_region(); time not spent busy or stealing is idle.
/// When a tracer is attached and enabled, busy phases are additionally
/// emitted as "Busy" trace spans.
class phase_timeline {
public:
  enum class phase : std::uint8_t { idle = 0, busy = 1, steal = 2 };

  void configure(int n_ranks) { ranks_.assign(static_cast<std::size_t>(n_ranks), {}); }
  void set_tracer(tracer* t) { trace_ = t; }

  /// Start (or restart) this rank's measurement region: accumulators reset,
  /// phase starts as idle.
  void begin_region(int rank, double now) {
    per_rank& r = ranks_[static_cast<std::size_t>(rank)];
    close_phase(rank, r, now);
    r = {};
    r.start = r.since = r.end = now;
    r.open = true;
  }

  /// Transition this rank to `p`; no-op if already in `p`.
  void enter(int rank, phase p, double now) {
    per_rank& r = ranks_[static_cast<std::size_t>(rank)];
    if (!r.open || r.cur == p) return;
    account(rank, r, now);
    r.cur = p;
    if (p == phase::busy && trace_ != nullptr) trace_->span_begin(rank, now, "Busy");
  }

  /// Close the region: the current phase is accounted up to `now`.
  void end_region(int rank, double now) {
    per_rank& r = ranks_[static_cast<std::size_t>(rank)];
    close_phase(rank, r, now);
    r.end = now;
  }

  double busy_of(int rank) const { return ranks_[static_cast<std::size_t>(rank)].busy; }
  double steal_of(int rank) const { return ranks_[static_cast<std::size_t>(rank)].steal; }
  double idle_of(int rank) const { return ranks_[static_cast<std::size_t>(rank)].idle; }

  double total_busy() const;
  double total_steal() const;
  double total_idle() const;

  /// Region makespan: max end over ranks minus min start.
  double makespan() const;

  /// Paper Table 2: 1 - sum(busy) / (n_ranks * makespan).
  double idleness() const;

private:
  struct per_rank {
    double busy = 0, steal = 0, idle = 0;
    double start = 0, end = 0, since = 0;
    phase cur = phase::idle;
    bool open = false;
  };

  void account(int rank, per_rank& r, double now) {
    // Transitions must move forward in virtual time: a phase can only be
    // closed at or after the instant it was entered. A violation means a
    // caller fed a stale `now` (e.g. cached before a yield) and the
    // busy/steal/idle split is garbage from here on.
    ITYR_CHECK(now >= r.since);
    const double dt = now - r.since;
    if (dt > 0) {
      if (r.cur == phase::busy) {
        r.busy += dt;
      } else if (r.cur == phase::steal) {
        r.steal += dt;
      } else {
        r.idle += dt;
      }
    }
    if (r.cur == phase::busy && trace_ != nullptr) trace_->span_end(rank, now, "Busy");
    r.since = now;
  }

  void close_phase(int rank, per_rank& r, double now) {
    if (!r.open) return;
    account(rank, r, now);
    r.cur = phase::idle;
    r.open = false;
  }

  tracer* trace_ = nullptr;
  std::vector<per_rank> ranks_;
};

}  // namespace ityr::common
