#include "itoyori/common/topology.hpp"

#include <cstdlib>

#include "itoyori/common/options.hpp"

namespace ityr::common {

const char* to_string(topology_kind k) {
  switch (k) {
    case topology_kind::flat:      return "flat";
    case topology_kind::fat_tree:  return "fat_tree";
    case topology_kind::dragonfly: return "dragonfly";
  }
  return "?";
}

namespace {

/// Strict nonnegative integer parse of a full token (no trailing junk).
bool parse_int(const std::string& s, int& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || v < 0 || v > 1'000'000'000L) return false;
  out = static_cast<int>(v);
  return true;
}

[[noreturn]] void malformed(const std::string& s, const std::string& why) {
  throw error("malformed ITYR_TOPOLOGY '" + s + "': " + why +
              " (expected flat | fat_tree:<arity>,<levels> | dragonfly:<groups>)");
}

}  // namespace

topology_spec topology_spec::parse(const std::string& s) {
  topology_spec spec;
  const std::size_t colon = s.find(':');
  const std::string kind = s.substr(0, colon);
  const std::string args = colon == std::string::npos ? "" : s.substr(colon + 1);
  if (kind == "flat") {
    if (!args.empty()) malformed(s, "flat takes no parameters");
    spec.kind = topology_kind::flat;
  } else if (kind == "fat_tree") {
    spec.kind = topology_kind::fat_tree;
    const std::size_t comma = args.find(',');
    if (comma == std::string::npos) malformed(s, "fat_tree needs <arity>,<levels>");
    if (!parse_int(args.substr(0, comma), spec.fat_tree_arity) ||
        !parse_int(args.substr(comma + 1), spec.fat_tree_levels)) {
      malformed(s, "fat_tree parameters must be nonnegative integers");
    }
  } else if (kind == "dragonfly") {
    spec.kind = topology_kind::dragonfly;
    if (!parse_int(args, spec.dragonfly_groups)) {
      malformed(s, "dragonfly needs a nonnegative integer group count");
    }
  } else {
    malformed(s, "unknown topology kind '" + kind + "'");
  }
  return spec;
}

std::string topology_spec::str() const {
  switch (kind) {
    case topology_kind::flat:
      return "flat";
    case topology_kind::fat_tree:
      return "fat_tree:" + std::to_string(fat_tree_arity) + "," +
             std::to_string(fat_tree_levels);
    case topology_kind::dragonfly:
      return "dragonfly:" + std::to_string(dragonfly_groups);
  }
  return "?";
}

void validate_topology(int n_nodes, int ranks_per_node, const topology_spec& spec) {
  if (n_nodes <= 0) {
    throw error("invalid cluster shape: n_nodes (ITYR_N_NODES) must be positive, got " +
                std::to_string(n_nodes));
  }
  if (ranks_per_node <= 0) {
    throw error("invalid cluster shape: ranks_per_node (ITYR_RANKS_PER_NODE) must be "
                "positive, got " + std::to_string(ranks_per_node));
  }
  if (spec.kind == topology_kind::fat_tree) {
    if (spec.fat_tree_arity < 2) {
      throw error("invalid topology: fat_tree arity must be >= 2, got " +
                  std::to_string(spec.fat_tree_arity));
    }
    if (spec.fat_tree_levels < 1 || spec.fat_tree_levels > 30) {
      throw error("invalid topology: fat_tree levels must be in [1, 30], got " +
                  std::to_string(spec.fat_tree_levels));
    }
    // Leaf capacity arity^levels must cover the nodes; overflow-safe walk.
    std::uint64_t capacity = 1;
    for (int l = 0; l < spec.fat_tree_levels && capacity < static_cast<std::uint64_t>(n_nodes);
         l++) {
      capacity *= static_cast<std::uint64_t>(spec.fat_tree_arity);
    }
    if (capacity < static_cast<std::uint64_t>(n_nodes)) {
      throw error("invalid topology: fat_tree:" + std::to_string(spec.fat_tree_arity) + "," +
                  std::to_string(spec.fat_tree_levels) + " holds only " +
                  std::to_string(capacity) + " nodes but the cluster has " +
                  std::to_string(n_nodes) + " (ITYR_N_NODES)");
    }
  } else if (spec.kind == topology_kind::dragonfly) {
    if (spec.dragonfly_groups < 1 || spec.dragonfly_groups > n_nodes) {
      throw error("invalid topology: dragonfly group count must be in [1, n_nodes=" +
                  std::to_string(n_nodes) + "], got " +
                  std::to_string(spec.dragonfly_groups));
    }
  }
}

topology::topology(int n_nodes, int ranks_per_node, const topology_spec& spec,
                   const network_model& nm)
    : n_nodes_(n_nodes), ranks_per_node_(ranks_per_node), spec_(spec) {
  validate_topology(n_nodes, ranks_per_node, spec);

  // Class 0 is intra-node shared memory for every topology.
  class_latency_ = {nm.intra_latency};
  class_bandwidth_ = {nm.intra_bandwidth};

  const auto n = static_cast<std::size_t>(n_nodes_);
  node_class_.assign(n * n, 1);

  switch (spec.kind) {
    case topology_kind::flat: {
      // One inter-node class at the base cost: bit-identical to the historic
      // two-tier model (same doubles, same arithmetic).
      class_latency_.push_back(nm.inter_latency);
      class_bandwidth_.push_back(nm.inter_bandwidth);
      break;
    }
    case topology_kind::fat_tree: {
      const int a = spec.fat_tree_arity;
      const int levels = spec.fat_tree_levels;
      for (int c = 1; c <= levels; c++) {
        class_latency_.push_back(nm.inter_latency * static_cast<double>(c));
        class_bandwidth_.push_back(nm.inter_bandwidth /
                                   static_cast<double>(std::uint64_t{1} << (c - 1)));
      }
      for (int i = 0; i < n_nodes_; i++) {
        for (int j = 0; j < n_nodes_; j++) {
          if (i == j) continue;
          // Lowest common ancestor level: divide both leaf ids by the arity
          // until they meet.
          int x = i, y = j, c = 0;
          while (x != y) {
            x /= a;
            y /= a;
            c++;
          }
          node_class_[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(j)] =
              static_cast<std::uint8_t>(c);
        }
      }
      break;
    }
    case topology_kind::dragonfly: {
      // Class 1: intra-group local link. Class 2: local-global-local route.
      class_latency_.push_back(nm.inter_latency);
      class_bandwidth_.push_back(nm.inter_bandwidth);
      class_latency_.push_back(nm.inter_latency * 2.0);
      class_bandwidth_.push_back(nm.inter_bandwidth * 0.5);
      const int g = spec.dragonfly_groups;
      const int per_group = (n_nodes_ + g - 1) / g;  // block partition
      for (int i = 0; i < n_nodes_; i++) {
        for (int j = 0; j < n_nodes_; j++) {
          if (i == j) continue;
          node_class_[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(j)] =
              (i / per_group == j / per_group) ? 1 : 2;
        }
      }
      break;
    }
  }
}

}  // namespace ityr::common
