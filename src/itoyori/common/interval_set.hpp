#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <vector>

#include "itoyori/common/error.hpp"

namespace ityr::common {

/// Half-open interval [begin, end) of byte offsets or addresses.
struct interval {
  std::uint64_t begin = 0;
  std::uint64_t end   = 0;

  constexpr bool empty() const { return begin >= end; }
  constexpr std::uint64_t size() const { return empty() ? 0 : end - begin; }

  friend constexpr bool operator==(const interval&, const interval&) = default;

  friend constexpr interval intersect(interval a, interval b) {
    return {a.begin > b.begin ? a.begin : b.begin, a.end < b.end ? a.end : b.end};
  }
};

inline std::ostream& operator<<(std::ostream& os, const interval& iv) {
  return os << "[" << iv.begin << ", " << iv.end << ")";
}

/// Ordered set of disjoint, coalesced half-open intervals.
///
/// This is the workhorse behind per-block `validRegions` and dirty-region
/// tracking (paper Fig. 4): byte-granularity region algebra with union,
/// subtraction, and containment queries. The paper implements it as a linked
/// list of intervals; we use a std::map keyed by interval start, which keeps
/// the same O(k) merge behaviour with O(log n) lookup.
class interval_set {
public:
  interval_set() = default;

  bool empty() const { return ivs_.empty(); }
  std::size_t count() const { return ivs_.size(); }

  /// Total number of bytes covered.
  std::uint64_t size() const {
    std::uint64_t n = 0;
    for (const auto& [b, e] : ivs_) n += e - b;
    return n;
  }

  void clear() { ivs_.clear(); }

  /// Union with [iv.begin, iv.end), coalescing adjacent/overlapping runs.
  void add(interval iv) {
    if (iv.empty()) return;
    // First interval whose end could touch iv: predecessor of iv.begin.
    auto it = ivs_.upper_bound(iv.begin);
    if (it != ivs_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= iv.begin) {  // touches or overlaps on the left
        iv.begin = prev->first;
        iv.end   = iv.end > prev->second ? iv.end : prev->second;
        it       = ivs_.erase(prev);
      }
    }
    // Absorb all intervals starting within (or touching) [begin, end].
    while (it != ivs_.end() && it->first <= iv.end) {
      iv.end = iv.end > it->second ? iv.end : it->second;
      it     = ivs_.erase(it);
    }
    ivs_.emplace(iv.begin, iv.end);
  }

  /// Remove [iv.begin, iv.end) from the set, splitting runs as needed.
  void subtract(interval iv) {
    if (iv.empty() || ivs_.empty()) return;
    auto it = ivs_.upper_bound(iv.begin);
    if (it != ivs_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > iv.begin) it = prev;
    }
    while (it != ivs_.end() && it->first < iv.end) {
      interval cur{it->first, it->second};
      it = ivs_.erase(it);
      if (cur.begin < iv.begin) ivs_.emplace(cur.begin, iv.begin);
      if (cur.end > iv.end) {
        ivs_.emplace(iv.end, cur.end);
        break;
      }
    }
  }

  /// True iff [iv.begin, iv.end) is entirely covered.
  bool contains(interval iv) const {
    if (iv.empty()) return true;
    auto it = ivs_.upper_bound(iv.begin);
    if (it == ivs_.begin()) return false;
    auto prev = std::prev(it);
    return prev->first <= iv.begin && iv.end <= prev->second;
  }

  /// True iff some byte of [iv.begin, iv.end) is covered.
  bool overlaps(interval iv) const {
    if (iv.empty() || ivs_.empty()) return false;
    auto it = ivs_.upper_bound(iv.begin);
    if (it != ivs_.begin() && std::prev(it)->second > iv.begin) return true;
    return it != ivs_.end() && it->first < iv.end;
  }

  /// The parts of `iv` NOT covered by this set, in increasing order.
  /// This is `{iv} \ validRegions` from Fig. 4 line 19.
  std::vector<interval> missing(interval iv) const {
    std::vector<interval> out;
    if (iv.empty()) return out;
    std::uint64_t pos = iv.begin;
    auto it = ivs_.upper_bound(iv.begin);
    if (it != ivs_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > pos) pos = prev->second;
    }
    for (; it != ivs_.end() && it->first < iv.end && pos < iv.end; ++it) {
      if (it->first > pos) out.push_back({pos, it->first});
      if (it->second > pos) pos = it->second;
    }
    if (pos < iv.end) out.push_back({pos, iv.end});
    return out;
  }

  /// The parts of `iv` that ARE covered, in increasing order.
  std::vector<interval> overlapping(interval iv) const {
    std::vector<interval> out;
    if (iv.empty() || ivs_.empty()) return out;
    auto it = ivs_.upper_bound(iv.begin);
    if (it != ivs_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > iv.begin) it = prev;
    }
    for (; it != ivs_.end() && it->first < iv.end; ++it) {
      interval x = intersect({it->first, it->second}, iv);
      if (!x.empty()) out.push_back(x);
    }
    return out;
  }

  /// All intervals, in increasing order.
  std::vector<interval> to_vector() const {
    std::vector<interval> out;
    out.reserve(ivs_.size());
    for (const auto& [b, e] : ivs_) out.push_back({b, e});
    return out;
  }

  friend bool operator==(const interval_set& a, const interval_set& b) {
    return a.ivs_ == b.ivs_;
  }

private:
  std::map<std::uint64_t, std::uint64_t> ivs_;  // begin -> end
};

inline std::ostream& operator<<(std::ostream& os, const interval_set& s) {
  os << "{";
  bool first = true;
  for (const auto& iv : s.to_vector()) {
    if (!first) os << ", ";
    os << iv;
    first = false;
  }
  return os << "}";
}

}  // namespace ityr::common
