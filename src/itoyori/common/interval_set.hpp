#pragma once

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <vector>

#include "itoyori/common/error.hpp"

namespace ityr::common {

/// Half-open interval [begin, end) of byte offsets or addresses.
struct interval {
  std::uint64_t begin = 0;
  std::uint64_t end   = 0;

  constexpr bool empty() const { return begin >= end; }
  constexpr std::uint64_t size() const { return empty() ? 0 : end - begin; }

  friend constexpr bool operator==(const interval&, const interval&) = default;

  friend constexpr interval intersect(interval a, interval b) {
    return {a.begin > b.begin ? a.begin : b.begin, a.end < b.end ? a.end : b.end};
  }
};

inline std::ostream& operator<<(std::ostream& os, const interval& iv) {
  return os << "[" << iv.begin << ", " << iv.end << ")";
}

/// Ordered set of disjoint, coalesced half-open intervals.
///
/// This is the workhorse behind per-block `validRegions` and dirty-region
/// tracking (paper Fig. 4): byte-granularity region algebra with union,
/// subtraction, and containment queries. It sits on the checkout/checkin/
/// writeback critical path, so the representation is a flat sorted
/// std::vector of runs rather than a node-based tree: per-block sets almost
/// always hold a handful of runs, and a contiguous array keeps lookups a
/// cache-friendly binary search and mutations a short memmove — no
/// allocation per run, no pointer chasing (the paper itself uses a linked
/// list of intervals; same O(k) merge behaviour, much smaller constants).
class interval_set {
public:
  interval_set() = default;

  bool empty() const { return ivs_.empty(); }
  std::size_t count() const { return ivs_.size(); }

  /// Total number of bytes covered.
  std::uint64_t size() const {
    std::uint64_t n = 0;
    for (const auto& iv : ivs_) n += iv.size();
    return n;
  }

  void clear() { ivs_.clear(); }

  /// Union with [iv.begin, iv.end), coalescing adjacent/overlapping runs.
  void add(interval iv) {
    if (iv.empty()) return;
    // First run that could touch iv on the left: the first with end >= begin.
    auto it = touch_lower_bound(iv.begin);
    if (it == ivs_.end() || iv.end < it->begin) {
      ivs_.insert(it, iv);  // disjoint from every run; plain insert
      return;
    }
    // Merge iv into *it, then absorb every following run it now touches.
    it->begin = std::min(it->begin, iv.begin);
    it->end   = std::max(it->end, iv.end);
    auto last = it + 1;
    while (last != ivs_.end() && last->begin <= it->end) {
      it->end = std::max(it->end, last->end);
      ++last;
    }
    ivs_.erase(it + 1, last);
  }

  /// Remove [iv.begin, iv.end) from the set, splitting runs as needed.
  void subtract(interval iv) {
    if (iv.empty() || ivs_.empty()) return;
    // First run overlapping iv: the first with end > begin.
    auto it = overlap_lower_bound(iv.begin);
    if (it == ivs_.end() || it->begin >= iv.end) return;
    if (it->begin < iv.begin && it->end > iv.end) {
      // iv is strictly inside one run: split it in two.
      const interval right{iv.end, it->end};
      it->end = iv.begin;
      ivs_.insert(it + 1, right);
      return;
    }
    if (it->begin < iv.begin) {  // left remainder survives
      it->end = iv.begin;
      ++it;
    }
    auto last = it;
    while (last != ivs_.end() && last->end <= iv.end) ++last;  // fully covered
    if (last != ivs_.end() && last->begin < iv.end) last->begin = iv.end;
    ivs_.erase(it, last);
  }

  /// True iff [iv.begin, iv.end) is entirely covered.
  bool contains(interval iv) const {
    if (iv.empty()) return true;
    auto it = overlap_lower_bound(iv.begin);
    return it != ivs_.end() && it->begin <= iv.begin && iv.end <= it->end;
  }

  /// True iff some byte of [iv.begin, iv.end) is covered.
  bool overlaps(interval iv) const {
    if (iv.empty()) return false;
    auto it = overlap_lower_bound(iv.begin);
    return it != ivs_.end() && it->begin < iv.end;
  }

  /// The parts of `iv` NOT covered by this set, in increasing order.
  /// This is `{iv} \ validRegions` from Fig. 4 line 19.
  std::vector<interval> missing(interval iv) const {
    std::vector<interval> out;
    if (iv.empty()) return out;
    std::uint64_t pos = iv.begin;
    for (auto it = overlap_lower_bound(iv.begin);
         it != ivs_.end() && it->begin < iv.end && pos < iv.end; ++it) {
      if (it->begin > pos) out.push_back({pos, it->begin});
      if (it->end > pos) pos = it->end;
    }
    if (pos < iv.end) out.push_back({pos, iv.end});
    return out;
  }

  /// The parts of `iv` that ARE covered, in increasing order.
  std::vector<interval> overlapping(interval iv) const {
    std::vector<interval> out;
    if (iv.empty()) return out;
    for (auto it = overlap_lower_bound(iv.begin); it != ivs_.end() && it->begin < iv.end; ++it) {
      interval x = intersect(*it, iv);
      if (!x.empty()) out.push_back(x);
    }
    return out;
  }

  /// All intervals, in increasing order.
  const std::vector<interval>& to_vector() const { return ivs_; }

  friend bool operator==(const interval_set& a, const interval_set& b) {
    return a.ivs_ == b.ivs_;
  }

private:
  using iter = std::vector<interval>::iterator;
  using citer = std::vector<interval>::const_iterator;

  /// First run with end >= pos (may merely touch pos).
  iter touch_lower_bound(std::uint64_t pos) {
    return std::lower_bound(ivs_.begin(), ivs_.end(), pos,
                            [](const interval& r, std::uint64_t p) { return r.end < p; });
  }
  /// First run with end > pos (covers or lies beyond pos).
  citer overlap_lower_bound(std::uint64_t pos) const {
    return std::lower_bound(ivs_.begin(), ivs_.end(), pos,
                            [](const interval& r, std::uint64_t p) { return r.end <= p; });
  }
  iter overlap_lower_bound(std::uint64_t pos) {
    return std::lower_bound(ivs_.begin(), ivs_.end(), pos,
                            [](const interval& r, std::uint64_t p) { return r.end <= p; });
  }

  std::vector<interval> ivs_;  // sorted, disjoint, coalesced
};

inline std::ostream& operator<<(std::ostream& os, const interval_set& s) {
  os << "{";
  bool first = true;
  for (const auto& iv : s.to_vector()) {
    if (!first) os << ", ";
    os << iv;
    first = false;
  }
  return os << "}";
}

}  // namespace ityr::common
