#include "itoyori/common/options.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <string>

#include "itoyori/common/error.hpp"

namespace ityr::common {

const char* to_string(cache_policy p) {
  switch (p) {
    case cache_policy::none:            return "none";
    case cache_policy::write_through:   return "write_through";
    case cache_policy::write_back:      return "write_back";
    case cache_policy::write_back_lazy: return "write_back_lazy";
  }
  return "?";
}

cache_policy cache_policy_from_string(const std::string& s) {
  if (s == "none") return cache_policy::none;
  if (s == "write_through") return cache_policy::write_through;
  if (s == "write_back") return cache_policy::write_back;
  if (s == "write_back_lazy") return cache_policy::write_back_lazy;
  throw api_error("unknown cache policy: " + s);
}

const char* to_string(eviction_kind k) {
  switch (k) {
    case eviction_kind::lru:   return "lru";
    case eviction_kind::clock: return "clock";
  }
  return "?";
}

eviction_kind eviction_kind_from_string(const std::string& s) {
  if (s == "lru") return eviction_kind::lru;
  if (s == "clock") return eviction_kind::clock;
  throw api_error("unknown eviction policy: " + s);
}

const char* to_string(steal_policy p) {
  switch (p) {
    case steal_policy::random:       return "random";
    case steal_policy::node_first:   return "node_first";
    case steal_policy::hierarchical: return "hierarchical";
  }
  return "?";
}

steal_policy steal_policy_from_string(const std::string& s) {
  if (s == "random") return steal_policy::random;
  if (s == "node_first") return steal_policy::node_first;
  if (s == "hierarchical") return steal_policy::hierarchical;
  throw api_error("unknown steal policy (ITYR_STEAL_POLICY): " + s +
                  " (expected random, node_first, or hierarchical)");
}

const char* to_string(steal_fairness_kind k) {
  switch (k) {
    case steal_fairness_kind::off:          return "off";
    case steal_fairness_kind::job_weighted: return "job_weighted";
  }
  return "?";
}

steal_fairness_kind steal_fairness_from_string(const std::string& s) {
  if (s == "off") return steal_fairness_kind::off;
  if (s == "job_weighted") return steal_fairness_kind::job_weighted;
  throw api_error("unknown steal fairness policy (ITYR_STEAL_FAIRNESS): " + s +
                  " (expected off or job_weighted)");
}

const char* to_string(fiber_backend_kind k) {
  switch (k) {
    case fiber_backend_kind::asm_switch: return "asm";
    case fiber_backend_kind::ucontext:   return "ucontext";
  }
  return "?";
}

fiber_backend_kind fiber_backend_from_string(const std::string& s) {
  if (s == "asm") return fiber_backend_kind::asm_switch;
  if (s == "ucontext") return fiber_backend_kind::ucontext;
  throw api_error("unknown fiber backend (ITYR_FIBER_BACKEND): " + s +
                  " (expected asm or ucontext)");
}

namespace {

#if defined(__SANITIZE_ADDRESS__)
#define ITYR_UNDER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ITYR_UNDER_ASAN 1
#endif
#endif

constexpr bool asm_fiber_supported() {
#if (defined(__x86_64__) || defined(__aarch64__)) && defined(__ELF__) && \
    !defined(ITYR_UNDER_ASAN)
  return true;
#else
  return false;
#endif
}

}  // namespace

bool asm_fiber_backend_supported() { return asm_fiber_supported(); }

fiber_backend_kind default_fiber_backend() {
  // Honoring the env var here (not only in from_env) lets test suites that
  // build options programmatically be re-run under ITYR_FIBER_BACKEND=
  // ucontext without editing every test, mirroring the fixture's
  // ITYR_ASYNC_RELEASE handling.
  const char* v = std::getenv("ITYR_FIBER_BACKEND");
  if (v != nullptr && *v != '\0') {
    const fiber_backend_kind k = fiber_backend_from_string(v);
    if (k == fiber_backend_kind::asm_switch && !asm_fiber_supported()) {
      return fiber_backend_kind::ucontext;  // portability/ASan fallback
    }
    return k;
  }
  return asm_fiber_supported() ? fiber_backend_kind::asm_switch
                               : fiber_backend_kind::ucontext;
}

const char* to_string(sim_sched_kind k) {
  switch (k) {
    case sim_sched_kind::indexed: return "indexed";
    case sim_sched_kind::linear:  return "linear";
  }
  return "?";
}

sim_sched_kind sim_sched_from_string(const std::string& s) {
  if (s == "indexed") return sim_sched_kind::indexed;
  if (s == "linear") return sim_sched_kind::linear;
  throw api_error("unknown simulator scheduler (ITYR_SIM_SCHEDULER): " + s +
                  " (expected indexed or linear)");
}

const char* to_string(dist_policy p) {
  switch (p) {
    case dist_policy::block:        return "block";
    case dist_policy::block_cyclic: return "block_cyclic";
  }
  return "?";
}

namespace {

template <typename T>
void env_get(const char* name, T& out) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return;  // empty counts as unset (CI matrices)
  if constexpr (std::is_same_v<T, bool>) {
    out = std::string(v) == "1" || std::string(v) == "true";
  } else if constexpr (std::is_floating_point_v<T>) {
    out = static_cast<T>(std::strtod(v, nullptr));
  } else if constexpr (std::is_same_v<T, cache_policy>) {
    out = cache_policy_from_string(v);
  } else if constexpr (std::is_same_v<T, eviction_kind>) {
    out = eviction_kind_from_string(v);
  } else if constexpr (std::is_same_v<T, fiber_backend_kind>) {
    out = fiber_backend_from_string(v);
  } else if constexpr (std::is_same_v<T, sim_sched_kind>) {
    out = sim_sched_from_string(v);
  } else if constexpr (std::is_same_v<T, steal_policy>) {
    out = steal_policy_from_string(v);
  } else if constexpr (std::is_same_v<T, steal_fairness_kind>) {
    out = steal_fairness_from_string(v);
  } else if constexpr (std::is_same_v<T, topology_spec>) {
    out = topology_spec::parse(v);
  } else if constexpr (std::is_same_v<T, std::string>) {
    out = v;
  } else {
    out = static_cast<T>(std::strtoull(v, nullptr, 0));
  }
}

}  // namespace

options options::from_env() {
  options o;
  env_get("ITYR_N_NODES", o.n_nodes);
  env_get("ITYR_RANKS_PER_NODE", o.ranks_per_node);
  env_get("ITYR_BLOCK_SIZE", o.block_size);
  env_get("ITYR_SUB_BLOCK_SIZE", o.sub_block_size);
  env_get("ITYR_CACHE_SIZE", o.cache_size);
  env_get("ITYR_COLL_HEAP_PER_RANK", o.coll_heap_per_rank);
  env_get("ITYR_NONCOLL_HEAP_PER_RANK", o.noncoll_heap_per_rank);
  env_get("ITYR_MAX_MAP_ENTRIES", o.max_map_entries);
  env_get("ITYR_POLICY", o.policy);
  env_get("ITYR_EVICTION_POLICY", o.eviction);
  env_get("ITYR_COALESCE_RMA", o.coalesce_rma);
  env_get("ITYR_FRONT_TABLE_SIZE", o.front_table_size);
  env_get("ITYR_PREFETCH", o.prefetch);
  env_get("ITYR_PREFETCH_DEPTH", o.prefetch_depth);
  env_get("ITYR_PREFETCH_MAX_INFLIGHT", o.prefetch_max_inflight);
  env_get("ITYR_ASYNC_RELEASE", o.async_release);
  env_get("ITYR_ASYNC_WB_MAX_INFLIGHT", o.async_wb_max_inflight);
  env_get("ITYR_MIGRATION", o.migration);
  env_get("ITYR_MIGRATION_INTERVAL", o.placement_interval);
  env_get("ITYR_MIGRATION_MIN_BYTES", o.migration_min_bytes);
  env_get("ITYR_MIGRATION_SHARE", o.migration_share);
  env_get("ITYR_MIGRATION_POOL_BLOCKS", o.migration_pool_blocks);
  env_get("ITYR_REPLICATION", o.replication);
  env_get("ITYR_REPLICATION_MIN_BYTES", o.replication_min_bytes);
  env_get("ITYR_REPLICATION_MIN_READERS", o.replication_min_readers);
  env_get("ITYR_REPLICATION_POOL_BLOCKS", o.replication_pool_blocks);
  env_get("ITYR_HOT_BLOCKS_TOPN", o.hot_blocks_topn);
  env_get("ITYR_ULT_STACK_SIZE", o.ult_stack_size);
  env_get("ITYR_STEAL_POLICY", o.steal);
  env_get("ITYR_NODE_FIRST_PROB", o.node_first_prob);
  env_get("ITYR_STEAL_BATCH", o.steal_batch);
  env_get("ITYR_STEAL_ESCALATION_ROUNDS", o.steal_escalation_rounds);
  env_get("ITYR_STEAL_ADAPTIVE_BACKOFF", o.steal_adaptive_backoff);
  env_get("ITYR_SERVE", o.serve);
  env_get("ITYR_SERVE_ARRIVAL_RATE", o.serve_arrival_rate);
  env_get("ITYR_SERVE_JOBS", o.serve_jobs);
  env_get("ITYR_SERVE_MIX", o.serve_mix);
  env_get("ITYR_STEAL_FAIRNESS", o.steal_fairness);
  env_get("ITYR_CACHE_JOB_QUOTA", o.cache_job_quota);
  env_get("ITYR_FIBER_BACKEND", o.fiber_backend);
  env_get("ITYR_SIM_SCHEDULER", o.sim_sched);
  env_get("ITYR_FIBER_POOL_CAP", o.fiber_pool_cap);
  env_get("ITYR_TOPOLOGY", o.topology);
  env_get("ITYR_COMPUTE_SCALE", o.compute_scale);
  env_get("ITYR_DETERMINISTIC", o.deterministic);
  env_get("ITYR_TRACE", o.trace_path);
  env_get("ITYR_TRACE_CAP", o.trace_cap);
  env_get("ITYR_TRACE_FLOW_SAMPLE", o.trace_flow_sample);
  env_get("ITYR_CRITPATH", o.critpath);
  env_get("ITYR_HIST_BUCKETS", o.hist_buckets);
  env_get("ITYR_STATS_JSON", o.stats_json_path);
  env_get("ITYR_METRICS_SAMPLE_INTERVAL", o.metrics_sample_interval);
  env_get("ITYR_SEED", o.seed);
  env_get("ITYR_NET_INTER_LATENCY", o.net.inter_latency);
  env_get("ITYR_NET_INTER_BANDWIDTH", o.net.inter_bandwidth);
  env_get("ITYR_NET_INTRA_LATENCY", o.net.intra_latency);
  env_get("ITYR_NET_INTRA_BANDWIDTH", o.net.intra_bandwidth);
  validate_cache_geometry(o.block_size, o.sub_block_size);
  validate_topology(o.n_nodes, o.ranks_per_node, o.topology);
  validate_sim_core(o.ult_stack_size);
  validate_observability(o.hist_buckets);
  validate_placement(o.migration, o.replication, o.placement_interval, o.migration_share,
                     o.migration_pool_blocks, o.replication_pool_blocks,
                     o.replication_min_readers, o.hot_blocks_topn);
  validate_steal(o.steal_batch, o.steal_escalation_rounds, o.node_first_prob);
  validate_serving(o.serve, o.serve_arrival_rate, o.serve_jobs, o.serve_mix);
  return o;
}

namespace {

bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

void validate_cache_geometry(std::size_t block_size, std::size_t sub_block_size) {
  if (!is_pow2(block_size)) {
    throw error("invalid cache geometry: block size (ITYR_BLOCK_SIZE) must be a nonzero "
                "power of two, got " + std::to_string(block_size));
  }
  const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  if (block_size % page != 0) {
    throw error("invalid cache geometry: block size (ITYR_BLOCK_SIZE = " +
                std::to_string(block_size) + ") must be a multiple of the OS page size (" +
                std::to_string(page) + "), since blocks are mmap/unmap granules");
  }
  if (!is_pow2(sub_block_size)) {
    throw error("invalid cache geometry: sub-block size (ITYR_SUB_BLOCK_SIZE) must be a "
                "nonzero power of two, got " + std::to_string(sub_block_size));
  }
  if (sub_block_size > block_size) {
    throw error("invalid cache geometry: sub-block size (ITYR_SUB_BLOCK_SIZE = " +
                std::to_string(sub_block_size) + ") must not exceed block size "
                "(ITYR_BLOCK_SIZE = " + std::to_string(block_size) + ")");
  }
}

void validate_sim_core(std::size_t ult_stack_size) {
  if (ult_stack_size < 16 * KiB) {
    throw error("invalid ULT stack size (ITYR_ULT_STACK_SIZE = " +
                std::to_string(ult_stack_size) +
                "): must be at least 16 KiB or the guard page fires on the first fork");
  }
}

void validate_observability(std::size_t hist_buckets) {
  if (hist_buckets < 4 || hist_buckets > 512) {
    throw error("invalid histogram bucket count (ITYR_HIST_BUCKETS = " +
                std::to_string(hist_buckets) + "): must be in [4, 512]");
  }
}

void validate_placement(bool migration, bool replication, double placement_interval,
                        double migration_share, std::size_t migration_pool_blocks,
                        std::size_t replication_pool_blocks, int replication_min_readers,
                        std::size_t hot_blocks_topn) {
  if (!(placement_interval > 0)) {
    throw error("invalid placement pass interval (ITYR_MIGRATION_INTERVAL = " +
                std::to_string(placement_interval) +
                "): must be a positive number of virtual seconds");
  }
  if (!(migration_share > 0) || migration_share > 1.0) {
    throw error("invalid migration dominance share (ITYR_MIGRATION_SHARE = " +
                std::to_string(migration_share) + "): must be in (0, 1]");
  }
  if (migration && migration_pool_blocks == 0) {
    throw error("invalid migration pool size (ITYR_MIGRATION_POOL_BLOCKS = 0): "
                "ITYR_MIGRATION needs at least one per-rank pool block to move homes into");
  }
  if (replication && replication_pool_blocks == 0) {
    throw error("invalid replication pool size (ITYR_REPLICATION_POOL_BLOCKS = 0): "
                "ITYR_REPLICATION needs at least one per-node pool block for read-only copies");
  }
  if (replication_min_readers < 2) {
    throw error("invalid replication reader threshold (ITYR_REPLICATION_MIN_READERS = " +
                std::to_string(replication_min_readers) +
                "): must be >= 2 — a single-reader block is a migration candidate, "
                "not a replication one");
  }
  if (hot_blocks_topn > 65536) {
    throw error("invalid hot-block export count (ITYR_HOT_BLOCKS_TOPN = " +
                std::to_string(hot_blocks_topn) +
                "): must be <= 65536 (this is a top-N list length, not a byte size)");
  }
}

void validate_steal(std::size_t steal_batch, int steal_escalation_rounds,
                    double node_first_prob) {
  if (steal_batch == 0) {
    throw error("invalid steal batch cap (ITYR_STEAL_BATCH = 0): a steal must claim "
                "at least one deque entry per probe+CAS round (1 = the paper's "
                "single-entry steal)");
  }
  if (steal_escalation_rounds < 1) {
    throw error("invalid steal escalation round count (ITYR_STEAL_ESCALATION_ROUNDS = " +
                std::to_string(steal_escalation_rounds) +
                "): the hierarchical ladder needs at least one failed probe per "
                "distance class before escalating");
  }
  if (!(node_first_prob >= 0.0) || node_first_prob > 1.0) {
    throw error("invalid node-first steal probability (ITYR_NODE_FIRST_PROB = " +
                std::to_string(node_first_prob) + "): must be in [0, 1]");
  }
}

std::vector<std::pair<std::string, int>> parse_serve_mix(const std::string& spec) {
  std::vector<std::pair<std::string, int>> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    std::string tok = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (tok.empty()) {
      throw api_error("malformed serve mix (ITYR_SERVE_MIX = \"" + spec +
                      "\"): empty workload token");
    }
    int weight = 1;
    const std::size_t colon = tok.find(':');
    if (colon != std::string::npos) {
      const std::string w = tok.substr(colon + 1);
      char* end = nullptr;
      const long v = std::strtol(w.c_str(), &end, 10);
      if (w.empty() || end != w.c_str() + w.size() || v < 1) {
        throw api_error("malformed serve mix (ITYR_SERVE_MIX = \"" + spec +
                        "\"): weight \"" + w + "\" must be a positive integer");
      }
      weight = static_cast<int>(v);
      tok = tok.substr(0, colon);
    }
    if (tok != "cilksort" && tok != "uts" && tok != "taskbench") {
      throw api_error("unknown serve workload (ITYR_SERVE_MIX): \"" + tok +
                      "\" (expected cilksort, uts, or taskbench)");
    }
    out.emplace_back(tok, weight);
  }
  return out;
}

void validate_serving(bool serve, double serve_arrival_rate, std::size_t serve_jobs,
                      const std::string& serve_mix) {
  if (!(serve_arrival_rate > 0)) {
    throw error("invalid serve arrival rate (ITYR_SERVE_ARRIVAL_RATE = " +
                std::to_string(serve_arrival_rate) +
                "): must be a positive number of jobs per virtual second — an "
                "open-loop arrival process with rate 0 never admits anything");
  }
  if (serve && serve_jobs == 0) {
    throw error("invalid serve job count (ITYR_SERVE_JOBS = 0): ITYR_SERVE needs at "
                "least one job to admit");
  }
  parse_serve_mix(serve_mix);  // throws api_error on a malformed spec
}

}  // namespace ityr::common
