#pragma once

#include <cstdint>

namespace ityr::common {

/// splitmix64: used to seed other generators and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna: fast, high-quality, deterministic.
/// Each simulated rank owns one instance seeded from (global seed, rank), so
/// victim selection sequences are reproducible across runs.
class xoshiro256ss {
public:
  using result_type = std::uint64_t;

  explicit constexpr xoshiro256ss(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& si : s_) si = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t      = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Unbiased-enough bounded draw (Lemire-style multiply-shift).
  constexpr std::uint64_t below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace ityr::common
