#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "itoyori/common/topology.hpp"

namespace ityr::common {

inline constexpr std::size_t KiB = std::size_t{1} << 10;
inline constexpr std::size_t MiB = std::size_t{1} << 20;
inline constexpr std::size_t GiB = std::size_t{1} << 30;

/// Dirty-data handling policy for the software cache (paper Section 4.4/5.2).
enum class cache_policy {
  none,             ///< no cache: GET/PUT baseline (paper Section 6.1)
  write_through,    ///< flush dirty bytes on every checkin
  write_back,       ///< flush dirty bytes at release fences
  write_back_lazy,  ///< + delay Release #1 until the continuation is stolen
};

const char* to_string(cache_policy p);
cache_policy cache_policy_from_string(const std::string& s);

/// Victim-selection policy for the software cache's block lists
/// (paper Section 4.3.1 describes the LRU baseline).
enum class eviction_kind {
  lru,    ///< strict LRU: every touch moves the block to MRU
  clock,  ///< clock/second-chance: touches set a reference bit; the eviction
          ///< sweep clears bits and takes the first unreferenced block
};

const char* to_string(eviction_kind k);
eviction_kind eviction_kind_from_string(const std::string& s);

/// Memory distribution policy for collective allocations (paper Section 4.2).
enum class dist_policy {
  block,         ///< contiguous even split across ranks
  block_cyclic,  ///< fixed-size blocks round-robin across ranks
};

const char* to_string(dist_policy p);

/// Victim-selection policy for work stealing. `random` is the paper's
/// uniformly random stealing; `node_first` is an extension implementing the
/// paper's Section 8 future-work direction (locality-aware scheduling):
/// thieves prefer victims on their own node, making most migrations
/// intra-node (cheap, shared-memory) and improving cache affinity.
/// `hierarchical` generalizes the node-first coin flip into a per-distance-
/// class escalation ladder over the topology's LCA classes: probe class-0
/// peers first and escalate to farther classes only after
/// steal_escalation_rounds consecutive failures, with last-successful-victim
/// affinity (docs/internals.md "Steal protocol").
enum class steal_policy {
  random,
  node_first,
  hierarchical,
};

const char* to_string(steal_policy p);
steal_policy steal_policy_from_string(const std::string& s);

/// Steal-fairness policy under multi-job serving (ITYR_STEAL_FAIRNESS).
/// `off` is the job-blind protocol: thieves always claim the victim's
/// front-most (oldest) continuation. `job_weighted` makes the probe read the
/// victim's per-job deque occupancy (piggybacking on the one-sided bounds
/// read — no extra modelled traffic) and claim the front-most entry of the
/// job with the FEWEST queued entries, so a job with a deep subtree cannot
/// monopolize the steal channel and starve small jobs' continuations buried
/// behind it. In single-job mode every entry carries job 0, the minimum is
/// the whole deque, and the claim degenerates to the front entry —
/// bit-identical to `off`.
enum class steal_fairness_kind {
  off,
  job_weighted,
};

const char* to_string(steal_fairness_kind k);
steal_fairness_kind steal_fairness_from_string(const std::string& s);

/// How fibers switch contexts (ITYR_FIBER_BACKEND). `asm_switch` is a
/// minimal hand-rolled callee-saved-register switch (no signal-mask syscall,
/// ~10ns); `ucontext` is the portable swapcontext path. The default is
/// asm_switch where supported (x86-64/aarch64, not under ASan), ucontext
/// otherwise.
enum class fiber_backend_kind {
  asm_switch,
  ucontext,
};

const char* to_string(fiber_backend_kind k);
fiber_backend_kind fiber_backend_from_string(const std::string& s);

/// Default backend for this build: honors ITYR_FIBER_BACKEND, then falls
/// back to asm_switch when the architecture supports it and the build is not
/// sanitized (ASan tracks fiber stacks through swapcontext only).
fiber_backend_kind default_fiber_backend();

/// Whether this build can run the asm backend at all (x86-64/aarch64 ELF,
/// not sanitized). Tests use this to skip asm-specific cases gracefully.
bool asm_fiber_backend_supported();

/// Which min-clock structure the DES run loop uses to pick the next rank
/// (ITYR_SIM_SCHEDULER). `indexed` is a position-indexed d-ary min-heap
/// (O(log n) per resume); `linear` is the O(n) scan kept as the
/// bit-for-bit oracle for differential tests.
enum class sim_sched_kind {
  indexed,
  linear,
};

const char* to_string(sim_sched_kind k);
sim_sched_kind sim_sched_from_string(const std::string& s);

/// Network cost-model constants, LogGP-flavoured.
///
/// An RMA operation of n bytes issued by rank r to rank t costs the issuer
/// `o` (injection overhead) immediately; the payload occupies r's injection
/// channel for n/bandwidth and the data lands at `latency` after the channel
/// slot. Remote atomics are round trips. Defaults approximate a Tofu-D-like
/// interconnect (the paper's testbed): ~1.2 us put/get latency, ~6 GB/s per
/// link; intra-node transfers go through shared memory and are much cheaper.
struct network_model {
  double inter_latency   = 1.2e-6;   ///< seconds, one-way, inter-node
  double inter_bandwidth = 6.0e9;    ///< bytes/second, inter-node
  double intra_latency   = 0.15e-6;  ///< seconds, one-way, intra-node
  double intra_bandwidth = 12.0e9;   ///< bytes/second, intra-node
  double injection_overhead = 0.2e-6;  ///< seconds of issuer CPU per message
  double atomic_latency  = 1.8e-6;   ///< seconds per remote atomic round trip
};

/// All tunables of the runtime, settable programmatically and via
/// ITYR_*-prefixed environment variables (see from_env()).
struct options {
  // --- simulated cluster topology ---
  int n_nodes        = 2;
  int ranks_per_node = 4;

  /// Interconnect shape (ITYR_TOPOLOGY: "flat", "fat_tree:<arity>,<levels>",
  /// "dragonfly:<groups>"); see common/topology.hpp. The default `flat`
  /// reproduces the historic two-tier intra/inter-node cost model
  /// bit-for-bit.
  topology_spec topology;

  // --- memory system (paper Section 6.1 defaults, scaled) ---
  std::size_t block_size     = 64 * KiB;  ///< cache/home block granularity
  std::size_t sub_block_size = 4 * KiB;   ///< remote-fetch granularity
  std::size_t cache_size     = 16 * MiB;  ///< per-rank software cache capacity

  /// Per-rank collective-heap home segment and noncollective-heap segment.
  std::size_t coll_heap_per_rank    = 64 * MiB;
  std::size_t noncoll_heap_per_rank = 32 * MiB;

  /// Modelled `vm.max_map_count`-style ledger (paper Section 4.3.2). The
  /// number of home blocks simultaneously mapped per rank is limited so the
  /// worst-case 2N+1 mapping entries stay under this bound.
  std::size_t max_map_entries = 65530;

  cache_policy policy       = cache_policy::write_back_lazy;
  dist_policy default_dist  = dist_policy::block_cyclic;

  /// Block-list victim selection (ITYR_EVICTION_POLICY): strict LRU by
  /// default; "clock" selects the second-chance policy.
  eviction_kind eviction    = eviction_kind::lru;

  /// Cross-block RMA coalescing: fetch gaps and write-back runs addressed to
  /// the same (window, rank) within one checkout or write-back round are
  /// issued as a single message (contiguous remote runs are merged outright;
  /// disjoint runs ride one gather message, MPI-datatype style). Off = one
  /// message per gap, the paper's baseline behaviour.
  bool coalesce_rma = true;

  /// Entries in the per-rank direct-mapped front table memoizing recently
  /// touched memory blocks; single-block checkouts hitting a memoized
  /// mapped, fully-valid (or home) block skip the hash map, home lookup and
  /// interval algebra entirely. 0 disables the fast path. Rounded up to a
  /// power of two.
  std::size_t front_table_size = 64;

  /// Adaptive sub-block prefetching (ITYR_PREFETCH): read-mode checkout
  /// misses feed a per-rank stream detector; a confirmed sequential stream
  /// (forward or backward) issues nonblocking gets for the next sub-blocks
  /// ahead of the consumer, tracked as in-flight intervals so a later
  /// checkout only waits out the remaining modelled latency. Off by default:
  /// with prefetching disabled every counter, bench and trace is
  /// bit-identical to the pre-prefetch runtime.
  bool prefetch = false;
  /// How far ahead of a confirmed stream to prefetch, in sub-blocks
  /// (ITYR_PREFETCH_DEPTH). 0 disables prefetching.
  std::size_t prefetch_depth = 8;
  /// Cap on modelled in-flight prefetched bytes per rank
  /// (ITYR_PREFETCH_MAX_INFLIGHT). 0 disables prefetching.
  std::size_t prefetch_max_inflight = 1 * MiB;

  /// Asynchronous epoch-pipelined release (ITYR_ASYNC_RELEASE): write-back
  /// rounds issue their put segments nonblocking, record the round's modelled
  /// completion time in a per-rank epoch->ready_at ring, and return to
  /// compute immediately; visibility is enforced on the *acquire* side by a
  /// targeted wait on the releaser's round completion. Idle workers flush
  /// dirty data opportunistically between failed steals. Off by default:
  /// with it disabled every counter, bench and trace is bit-identical to the
  /// synchronous-release runtime.
  bool async_release = false;
  /// Cap on modelled in-flight write-back bytes per rank
  /// (ITYR_ASYNC_WB_MAX_INFLIGHT). A release fence over budget stalls until
  /// enough older rounds complete — never unbounded. 0 degenerates to
  /// draining every previous round before issuing the next.
  std::size_t async_wb_max_inflight = 4 * MiB;

  // --- dynamic data placement (docs/internals.md "dynamic data placement") ---
  /// Counter-driven home migration (ITYR_MIGRATION): a periodic placement
  /// pass moves a block's home to the rank generating most of its miss
  /// traffic; stale cached locations carry a forwarding generation and are
  /// retried through global_heap. Off by default; with it (and replication)
  /// disabled every counter, bench and trace is bit-identical to the
  /// fixed-home runtime.
  bool migration = false;
  /// Virtual seconds between placement passes (ITYR_MIGRATION_INTERVAL).
  /// Shared by migration and replication; must be positive.
  double placement_interval = 1.0e-3;
  /// Minimum remote-miss traffic (bytes) a block must draw within one pass
  /// window before migration considers it (ITYR_MIGRATION_MIN_BYTES).
  std::uint64_t migration_min_bytes = 64 * KiB;
  /// Dominance threshold (ITYR_MIGRATION_SHARE) in (0, 1]: the candidate
  /// rank's surplus over all other readers combined, as a fraction of the
  /// block's window traffic, must reach this before its home moves.
  double migration_share = 0.5;
  /// Per-rank capacity of the migrated-home pool, in blocks
  /// (ITYR_MIGRATION_POOL_BLOCKS); pool-full candidates are skipped, counted
  /// in pgas.pool_full_skips.
  std::size_t migration_pool_blocks = 256;
  /// Read-mostly replication (ITYR_REPLICATION): the placement pass copies
  /// blocks read by several nodes into per-node read-only replicas served on
  /// the cache fetch path; any write intent or write-back invalidates them.
  bool replication = false;
  /// Minimum fetch traffic (bytes) within one pass window before a block is
  /// replicated (ITYR_REPLICATION_MIN_BYTES).
  std::uint64_t replication_min_bytes = 64 * KiB;
  /// Distinct reader nodes (>= 2) required before replication pays off
  /// (ITYR_REPLICATION_MIN_READERS); a single-reader block is a migration
  /// candidate, not a replication one.
  int replication_min_readers = 2;
  /// Per-node capacity of the replica pool, in blocks
  /// (ITYR_REPLICATION_POOL_BLOCKS).
  std::size_t replication_pool_blocks = 256;
  /// Export the N hottest home blocks (id, owner, reader mask, fetch bytes)
  /// as pgas.hot_blocks in the stats JSON (ITYR_HOT_BLOCKS_TOPN); 0 (the
  /// default) disables collection entirely.
  std::size_t hot_blocks_topn = 0;

  // --- scheduler ---
  std::size_t ult_stack_size = 256 * KiB;  ///< user-level thread stacks (ITYR_ULT_STACK_SIZE)
  double steal_backoff       = 2.0e-6;     ///< seconds between failed steal rounds
  double poll_interval       = 0.5e-6;     ///< epoch-poll spin granularity
  /// Victim selection (ITYR_STEAL_POLICY: random | node_first | hierarchical).
  /// The default `random` is the paper's protocol, bit-identical to every
  /// pre-knob run.
  steal_policy steal         = steal_policy::random;
  double node_first_prob     = 0.75;       ///< node_first: P(choose intra-node victim)
  /// Max deque entries one steal's probe+CAS round may claim
  /// (ITYR_STEAL_BATCH). The thief takes min(steal_batch, ceil(depth/2))
  /// contiguous top-of-deque entries — "steal half", capped. 1 (the default)
  /// is the paper's single-entry steal, bit-identical to pre-batch runs; a
  /// large value (e.g. 64) is effectively uncapped steal-half.
  std::size_t steal_batch    = 1;
  /// hierarchical only: consecutive failed probes at the current distance
  /// class before the ladder escalates to the next farther class
  /// (ITYR_STEAL_ESCALATION_ROUNDS); must be >= 1. The default of 3 is the
  /// sweet spot measured at 1024 ranks on a fat tree: 2 gives up on near
  /// victims too early and re-inflates far probe traffic, 4+ lingers on
  /// drained classes.
  int steal_escalation_rounds = 3;
  /// Adaptive per-victim backoff (ITYR_STEAL_ADAPTIVE_BACKOFF): remember
  /// recently-empty victims in a small per-rank table and suppress probes to
  /// them for an exponentially growing window, so failed-probe traffic stops
  /// growing linearly with rank count. Off by default (bit-identical probe
  /// traffic to pre-backoff runs); the idle loop's idle_flush() keeps
  /// running on every suppressed round.
  bool steal_adaptive_backoff = false;

  // --- multi-job serving (docs/internals.md "multi-job serving") ---
  /// Multi-tenant job-stream serving (ITYR_SERVE): the runtime admits an
  /// open-loop stream of independent fork-join jobs through the job manager
  /// instead of running one root task, tags every task and deque entry with
  /// its job id, and accounts cache traffic per job. Off by default: with it
  /// disabled every counter, bench and trace is bit-identical to the
  /// single-root-task runtime.
  bool serve = false;
  /// Open-loop arrival rate in jobs per virtual second
  /// (ITYR_SERVE_ARRIVAL_RATE); inter-arrival gaps are exponential,
  /// generated deterministically from the run seed. Must be positive.
  double serve_arrival_rate = 1000.0;
  /// Number of jobs the default serve driver admits (ITYR_SERVE_JOBS);
  /// must be >= 1 when ITYR_SERVE is on.
  std::size_t serve_jobs = 16;
  /// Workload mix for the default serve driver (ITYR_SERVE_MIX):
  /// comma-separated `name[:weight]` tokens over {cilksort, uts, taskbench},
  /// e.g. "cilksort:3,uts:1". Weights are positive integers (default 1);
  /// jobs draw their body from the mix deterministically by the run seed.
  std::string serve_mix = "cilksort";
  /// Victim-side steal fairness across jobs (ITYR_STEAL_FAIRNESS:
  /// off | job_weighted); see steal_fairness_kind. Composes with the PR-9
  /// steal knobs; batch claims never span job boundaries either way.
  steal_fairness_kind steal_fairness = steal_fairness_kind::off;
  /// Per-job software-cache capacity quota in bytes (ITYR_CACHE_JOB_QUOTA);
  /// 0 (the default) disables it. A job holding more cached bytes than the
  /// quota recycles its own clean blocks first when it needs a new slot, so
  /// a scan-heavy job cannot evict a latency-sensitive job's working set.
  /// The quota is soft: pinned or dirty blocks never block an allocation.
  std::size_t cache_job_quota = 0;

  // --- simulator core (docs/internals.md "simulator core") ---
  /// Context-switch backend for fibers (ITYR_FIBER_BACKEND). Defaults to
  /// the syscall-free asm backend where supported; see default_fiber_backend.
  fiber_backend_kind fiber_backend = default_fiber_backend();
  /// DES next-rank selection structure (ITYR_SIM_SCHEDULER): indexed d-ary
  /// heap (default) or the linear-scan oracle.
  sim_sched_kind sim_sched = sim_sched_kind::indexed;
  /// Max idle fiber stacks retained by the recycling pool
  /// (ITYR_FIBER_POOL_CAP); stacks released beyond the cap are unmapped.
  /// 0 = unbounded retention.
  std::size_t fiber_pool_cap = 64;

  // --- time model ---
  /// Scale factor from measured host-CPU seconds to virtual seconds. The
  /// simulation host differs from A64FX; 1.0 keeps compute:network ratios
  /// in a realistic regime for the scaled-down problem sizes.
  double compute_scale = 1.0;
  /// If true, measured compute time is replaced by a fixed cost per resume,
  /// making the whole simulation bit-deterministic (used by tests).
  bool deterministic = false;
  double deterministic_resume_cost = 0.5e-6;

  network_model net;

  // --- observability (docs/observability.md) ---
  /// Dump a Chrome/Perfetto trace_events JSON timeline here when the
  /// runtime is destroyed; empty disables tracing (ITYR_TRACE).
  std::string trace_path;
  /// Per-rank ring-buffer capacity in events (ITYR_TRACE_CAP); oldest
  /// events are evicted first once full.
  std::size_t trace_cap = std::size_t{1} << 20;
  /// Dump the unified metrics-registry snapshot here when the runtime is
  /// destroyed; empty disables it (ITYR_STATS_JSON).
  std::string stats_json_path;
  /// Virtual-seconds period for sampling counter time-series into the
  /// trace (ITYR_METRICS_SAMPLE_INTERVAL); <= 0 disables sampling. Only
  /// active while tracing is on.
  double metrics_sample_interval = 1.0e-4;
  /// Emit one per-message "rma" trace flow for every Nth message a rank
  /// issues (ITYR_TRACE_FLOW_SAMPLE). 1 = every message (historic
  /// behaviour), 0 = none; sampling keeps O(1000)-rank traces writable.
  std::uint64_t trace_flow_sample = 1;
  /// Online critical-path (work/span) profiler (ITYR_CRITPATH): every task
  /// carries a running work/span accumulator, joins take the max over child
  /// spans, and span time is attributed into compute / fetch-stall /
  /// release-stall / steal-wait / acquire-fence buckets plus per-distance-
  /// class network shares for the what-if projection. Off by default; the
  /// hooks charge nothing to the virtual clock, so enabling it never
  /// changes a run's schedule or timing.
  bool critpath = false;
  /// Bucket count of the mergeable log2 histograms (task execution time,
  /// steal latency, fence time, RMA message size) exported with p50/p90/p99
  /// in the stats JSON (ITYR_HIST_BUCKETS). Valid range [4, 512].
  std::size_t hist_buckets = 48;

  std::uint64_t seed = 42;

  int n_ranks() const { return n_nodes * ranks_per_node; }

  /// Read overrides from ITYR_* environment variables on top of defaults.
  /// Throws common::error if the resulting cache geometry, cluster shape,
  /// or topology is invalid (see validate_cache_geometry /
  /// validate_topology / validate_sim_core).
  static options from_env();
};

/// Check the cache-geometry invariants the block/interval arithmetic relies
/// on: both sizes are nonzero powers of two and the sub-block (remote-fetch
/// granularity) fits inside a block. Throws common::error with the offending
/// value otherwise — a garbage ITYR_BLOCK_SIZE must fail loudly at startup,
/// not corrupt interval math later. Called by options::from_env() and by the
/// cache system's constructor (covering programmatically built options).
void validate_cache_geometry(std::size_t block_size, std::size_t sub_block_size);

/// Check the simulator-core knobs: ULT stacks must hold at least a few
/// frames (>= 16 KiB) or the guard page fires on the first fork. Throws
/// common::error with the offending value otherwise. Called by
/// options::from_env() and the engine constructor (covering programmatically
/// built options).
void validate_sim_core(std::size_t ult_stack_size);

/// Check the observability knobs: the histogram bucket count must land in
/// [4, 512] — fewer buckets cannot resolve percentiles, more is a typo'd
/// byte size. Throws common::error with the offending value otherwise.
/// Called by options::from_env().
void validate_observability(std::size_t hist_buckets);

/// Check the dynamic-data-placement knobs (ITYR_MIGRATION* /
/// ITYR_REPLICATION* / ITYR_HOT_BLOCKS_TOPN): the pass interval must be
/// positive, the dominance share must land in (0, 1], enabled features need
/// nonzero pools, replication needs >= 2 reader nodes, and the hot-block
/// export count must be a sane list length. Throws common::error with the
/// offending value otherwise. Called by options::from_env() and the
/// placement engine's constructor (covering programmatically built options).
void validate_placement(bool migration, bool replication, double placement_interval,
                        double migration_share, std::size_t migration_pool_blocks,
                        std::size_t replication_pool_blocks, int replication_min_readers,
                        std::size_t hot_blocks_topn);

/// Check the work-stealing knobs (ITYR_STEAL_BATCH /
/// ITYR_STEAL_ESCALATION_ROUNDS / ITYR_NODE_FIRST_PROB): the batch cap must
/// be >= 1 entry (0, e.g. a malformed env value, would claim nothing and
/// livelock the steal loop), the escalation round count must be >= 1, and
/// the node-first probability must be a valid probability in [0, 1]. Throws
/// common::error with the offending value otherwise. Called by
/// options::from_env() and the scheduler's constructor (covering
/// programmatically built options).
void validate_steal(std::size_t steal_batch, int steal_escalation_rounds,
                    double node_first_prob);

/// Check the multi-job serving knobs (ITYR_SERVE / ITYR_SERVE_ARRIVAL_RATE /
/// ITYR_SERVE_JOBS / ITYR_SERVE_MIX): the arrival rate must be a positive
/// number of jobs per virtual second (an open-loop process with rate 0 never
/// admits anything), serving needs at least one job to admit, and the mix
/// spec must parse (see parse_serve_mix). Throws common::error (or
/// common::api_error for a malformed mix) with the offending value
/// otherwise. Called by options::from_env() and the job manager (covering
/// programmatically built options).
void validate_serving(bool serve, double serve_arrival_rate, std::size_t serve_jobs,
                      const std::string& serve_mix);

/// Parse an ITYR_SERVE_MIX spec — comma-separated `name[:weight]` tokens
/// over {cilksort, uts, taskbench} with positive integer weights — into
/// (name, weight) pairs. Throws common::api_error naming the env var on an
/// unknown workload name, a malformed weight, or an empty spec.
std::vector<std::pair<std::string, int>> parse_serve_mix(const std::string& spec);

}  // namespace ityr::common
