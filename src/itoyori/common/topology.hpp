#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "itoyori/common/error.hpp"

namespace ityr::common {

struct network_model;

/// Which interconnect shape the simulated cluster is wired as
/// (ITYR_TOPOLOGY). `flat` is the two-tier intra/inter-node model the paper's
/// Tofu-D discussion starts from; `fat_tree` and `dragonfly` refine the
/// inter-node tier into per-(src,dst) distance classes.
enum class topology_kind {
  flat,       ///< every inter-node pair is one hop ("flat")
  fat_tree,   ///< complete k-ary switch tree ("fat_tree:<arity>,<levels>")
  dragonfly,  ///< groups with all-to-all global links ("dragonfly:<groups>")
};

const char* to_string(topology_kind k);

/// Parsed form of an ITYR_TOPOLOGY string. Parameter validity against the
/// cluster shape is checked separately by validate_topology() — parse() only
/// rejects syntactically malformed strings.
struct topology_spec {
  topology_kind kind = topology_kind::flat;
  int fat_tree_arity = 2;   ///< children per switch
  int fat_tree_levels = 2;  ///< switch levels above the nodes
  int dragonfly_groups = 2;

  /// Accepts "flat", "fat_tree:<arity>,<levels>", "dragonfly:<groups>".
  /// Throws common::error naming the malformed piece otherwise.
  static topology_spec parse(const std::string& s);

  /// Canonical string form (round-trips through parse()).
  std::string str() const;

  friend bool operator==(const topology_spec&, const topology_spec&) = default;
};

/// Check cluster-shape invariants at startup with clear errors instead of
/// corrupt distance math later: positive n_nodes / ranks_per_node, fat-tree
/// capacity >= n_nodes, dragonfly group count in [1, n_nodes].
void validate_topology(int n_nodes, int ranks_per_node, const topology_spec& spec);

/// Distance-class map of the simulated cluster: every (src,dst) rank pair
/// falls into one class, and each class has one modelled latency/bandwidth.
///
/// Class 0 is always intra-node (shared memory). Classes >= 1 refine the
/// inter-node tier:
///  * flat            — one class (1): every inter-node pair, at the base
///    inter-node latency/bandwidth. Costs are bit-identical to the historic
///    two-tier model.
///  * fat_tree:a,L    — class c is "lowest common ancestor switch at level
///    c" (1..L). Latency scales with the hop count (c * inter_latency) and
///    bandwidth halves per level above the first (2:1 oversubscription per
///    uplink stage), so traffic crossing the core is both slower and
///    thinner than traffic within a leaf switch.
///  * dragonfly:g     — class 1 is intra-group (base cost); class 2 is
///    inter-group: a local-global-local route, modelled as twice the base
///    latency at half the base bandwidth.
///
/// The per-node class matrix is computed once at construction (n_nodes^2
/// bytes), so class_of() is one table load on the message hot path.
class topology {
public:
  topology(int n_nodes, int ranks_per_node, const topology_spec& spec,
           const network_model& nm);

  int n_nodes() const { return n_nodes_; }
  int ranks_per_node() const { return ranks_per_node_; }
  int n_ranks() const { return n_nodes_ * ranks_per_node_; }
  const topology_spec& spec() const { return spec_; }

  int node_of(int rank) const { return rank / ranks_per_node_; }
  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  /// Number of distance classes, including class 0 (intra-node).
  int n_classes() const { return static_cast<int>(class_latency_.size()); }

  /// Distance class of a (src,dst) rank pair; 0 iff same node (including
  /// src == dst).
  int class_of(int src_rank, int dst_rank) const {
    const int a = node_of(src_rank), b = node_of(dst_rank);
    if (a == b) return 0;
    return node_class_[static_cast<std::size_t>(a) * static_cast<std::size_t>(n_nodes_) +
                       static_cast<std::size_t>(b)];
  }

  double latency_of_class(int c) const { return class_latency_[static_cast<std::size_t>(c)]; }
  double bandwidth_of_class(int c) const { return class_bandwidth_[static_cast<std::size_t>(c)]; }

  /// One-way latency / channel bandwidth between two ranks (class lookup).
  double latency(int src_rank, int dst_rank) const {
    return latency_of_class(class_of(src_rank, dst_rank));
  }
  double bandwidth(int src_rank, int dst_rank) const {
    return bandwidth_of_class(class_of(src_rank, dst_rank));
  }

private:
  int n_nodes_;
  int ranks_per_node_;
  topology_spec spec_;
  std::vector<std::uint8_t> node_class_;  ///< n_nodes x n_nodes, row-major
  std::vector<double> class_latency_;
  std::vector<double> class_bandwidth_;
};

}  // namespace ityr::common
